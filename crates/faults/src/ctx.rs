//! The fault-injecting [`MemCtx`] wrapper.

use std::cell::Cell;

use armbar_core::MemCtx;
use armbar_simcoh::rng::SplitMix64;
use armbar_simcoh::Addr;

use crate::plan::FaultPlan;

/// Wraps one thread's `&dyn MemCtx` and perturbs it according to a
/// [`FaultPlan`]. Because the injection happens below the [`MemCtx`]
/// trait, the wrapped barrier runs unmodified and the same plan means the
/// same faults on the simulator and on host threads:
///
/// * **straggler** — the victim's first operation is preceded by the
///   planned `compute_ns` delay (virtual time on the simulator, busy-wait
///   wall time on the host);
/// * **lost wakeup** — the victim's n-th `store` is swallowed;
/// * **crash** — the victim panics once its operation count is reached
///   (surfacing as `SimError::ThreadPanic` under simulation, and as a
///   poisoned barrier on the host when used with `RobustBarrier`);
/// * **latency** — every operation of every thread is preceded by a
///   seeded random delay, its stream derived from `(plan seed, tid)` so
///   runs replay bit-identically regardless of scheduling.
///
/// Construct one per participating thread; the wrapper is single-threaded
/// by design (interior `Cell` state) exactly like the contexts it wraps.
pub struct FaultyCtx<'a> {
    inner: &'a dyn MemCtx,
    plan: &'a FaultPlan,
    ops: Cell<u64>,
    stores: Cell<u64>,
    rng_state: Cell<u64>,
    straggled: Cell<bool>,
}

impl<'a> FaultyCtx<'a> {
    /// Wraps `inner`, deriving this thread's jitter stream from the plan
    /// seed and `inner.tid()`.
    pub fn new(inner: &'a dyn MemCtx, plan: &'a FaultPlan) -> Self {
        // One next_u64 of warm-up decorrelates neighboring tids.
        let mut rng = SplitMix64::new(plan.seed() ^ (inner.tid() as u64).wrapping_mul(0x9E37));
        let state = rng.next_u64();
        Self {
            inner,
            plan,
            ops: Cell::new(0),
            stores: Cell::new(0),
            rng_state: Cell::new(state),
            straggled: Cell::new(false),
        }
    }

    /// Memory operations this wrapper has passed through (or dropped).
    pub fn ops(&self) -> u64 {
        self.ops.get()
    }

    fn next_f64(&self) -> f64 {
        let mut rng = SplitMix64::new(self.rng_state.get());
        let v = rng.next_f64();
        self.rng_state.set(rng.next_u64());
        v
    }

    /// Runs the per-operation fault machinery: one-shot straggler delay,
    /// crash countdown, latency perturbation.
    fn before_op(&self) {
        let tid = self.inner.tid();
        if !self.straggled.replace(true) {
            if let Some(delay) = self.plan.straggler_delay(tid) {
                self.inner.compute_ns(delay);
            }
        }
        let n = self.ops.get() + 1;
        self.ops.set(n);
        if self.plan.crash_after(tid) == Some(n) {
            panic!("injected crash: participant {tid} dies at op {n}");
        }
        if let Some(amp) = self.plan.latency_amp() {
            self.inner.compute_ns(self.next_f64() * amp);
        }
    }
}

impl MemCtx for FaultyCtx<'_> {
    fn tid(&self) -> usize {
        self.inner.tid()
    }
    fn nthreads(&self) -> usize {
        self.inner.nthreads()
    }
    fn load(&self, addr: Addr) -> u32 {
        self.before_op();
        self.inner.load(addr)
    }
    fn store(&self, addr: Addr, value: u32) {
        self.before_op();
        let nth = self.stores.get() + 1;
        self.stores.set(nth);
        if self.plan.lost_store(self.inner.tid()) == Some(nth) {
            return; // the store vanishes: nobody ever sees this value
        }
        self.inner.store(addr, value);
    }
    fn load_relaxed(&self, addr: Addr) -> u32 {
        self.before_op();
        self.inner.load_relaxed(addr)
    }
    fn store_relaxed(&self, addr: Addr, value: u32) {
        self.before_op();
        // Shares the store counter with `store`, so a lost-store plan kills
        // the N-th store regardless of its ordering annotation.
        let nth = self.stores.get() + 1;
        self.stores.set(nth);
        if self.plan.lost_store(self.inner.tid()) == Some(nth) {
            return;
        }
        self.inner.store_relaxed(addr, value);
    }
    fn fence(&self) {
        self.before_op();
        self.inner.fence()
    }
    fn fetch_add(&self, addr: Addr, delta: u32) -> u32 {
        self.before_op();
        self.inner.fetch_add(addr, delta)
    }
    fn compare_exchange(&self, addr: Addr, current: u32, new: u32) -> u32 {
        self.before_op();
        self.inner.compare_exchange(addr, current, new)
    }
    fn swap(&self, addr: Addr, new: u32) -> u32 {
        self.before_op();
        self.inner.swap(addr, new)
    }
    fn spin_until_eq(&self, addr: Addr, value: u32) -> u32 {
        self.before_op();
        self.inner.spin_until_eq(addr, value)
    }
    fn spin_until_ge(&self, addr: Addr, value: u32) -> u32 {
        self.before_op();
        self.inner.spin_until_ge(addr, value)
    }
    fn spin_until_all_ge(&self, addrs: &[Addr], value: u32) {
        self.before_op();
        self.inner.spin_until_all_ge(addrs, value)
    }
    fn compute_ns(&self, ns: f64) {
        self.inner.compute_ns(ns)
    }
    fn mark(&self, label: u32) {
        self.inner.mark(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Fault, Scenario};
    use armbar_simcoh::{Arena, SimBuilder, SimError};
    use armbar_topology::{Platform, Topology};
    use std::sync::Arc;

    fn topo() -> Arc<armbar_topology::Topology> {
        Arc::new(Topology::preset(Platform::Kunpeng920))
    }

    #[test]
    fn baseline_plan_is_transparent() {
        let plan = FaultPlan::new(1);
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let faulty = SimBuilder::new(topo(), 2)
            .run(move |sim| {
                let ctx = FaultyCtx::new(sim, &plan);
                if ctx.tid() == 0 {
                    ctx.store(a, 1);
                } else {
                    ctx.spin_until_eq(a, 1);
                }
            })
            .unwrap();
        let clean = SimBuilder::new(topo(), 2)
            .run(move |sim| {
                let ctx: &dyn MemCtx = sim;
                if ctx.tid() == 0 {
                    ctx.store(a, 1);
                } else {
                    ctx.spin_until_eq(a, 1);
                }
            })
            .unwrap();
        assert_eq!(faulty.max_time_ns(), clean.max_time_ns());
    }

    #[test]
    fn straggler_delays_only_the_victim() {
        let plan = FaultPlan::new(1).with(Fault::Straggler { tid: 1, delay_ns: 5_000.0 });
        let stats = SimBuilder::new(topo(), 2)
            .run(move |sim| {
                let ctx = FaultyCtx::new(sim, &plan);
                ctx.compute_ns(1.0); // first op triggers the one-shot delay
            })
            .unwrap();
        // compute_ns passes through without before_op; use load to trigger.
        assert!(stats.max_time_ns() < 5_000.0, "compute-only body must not straggle");

        let plan = FaultPlan::new(1).with(Fault::Straggler { tid: 1, delay_ns: 5_000.0 });
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let stats = SimBuilder::new(topo(), 2)
            .run(move |sim| {
                let ctx = FaultyCtx::new(sim, &plan);
                ctx.load(a);
            })
            .unwrap();
        assert!(stats.per_thread_time_ns()[1] >= 5_000.0);
        assert!(stats.per_thread_time_ns()[0] < 5_000.0);
    }

    #[test]
    fn lost_store_is_invisible_to_peers() {
        let plan = FaultPlan::new(1).with(Fault::LostWakeup { tid: 0, nth_store: 2 });
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let b = arena.alloc_padded_u32(64);
        let err = SimBuilder::new(topo(), 2)
            .run(move |sim| {
                let ctx = FaultyCtx::new(sim, &plan);
                if ctx.tid() == 0 {
                    ctx.store(a, 1); // store #1 lands
                    ctx.store(b, 1); // store #2 dropped
                } else {
                    ctx.spin_until_eq(a, 1); // satisfied
                    ctx.spin_until_eq(b, 1); // never satisfied -> deadlock
                }
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { waiters } => {
                assert_eq!(waiters.len(), 1);
                assert_eq!(waiters[0].addr, b);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn crash_panics_at_the_planned_op() {
        let plan = FaultPlan::new(1).with(Fault::Crash { tid: 1, after_ops: 3 });
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let err = SimBuilder::new(topo(), 2)
            .run(move |sim| {
                let ctx = FaultyCtx::new(sim, &plan);
                for _ in 0..10 {
                    ctx.load(a);
                }
            })
            .unwrap_err();
        match err {
            SimError::ThreadPanic { tid, message, .. } => {
                assert_eq!(tid, 1);
                assert!(message.contains("injected crash"), "{message}");
                assert!(message.contains("op 3"), "{message}");
            }
            other => panic!("expected panic, got {other}"),
        }
    }

    #[test]
    fn latency_perturbation_slows_but_replays_identically() {
        let run = |seed: u64| {
            let plan = FaultPlan::scenario(Scenario::Latency, seed, 2);
            let mut arena = Arena::new();
            let a = arena.alloc_u32();
            SimBuilder::new(topo(), 2)
                .run(move |sim| {
                    let ctx = FaultyCtx::new(sim, &plan);
                    for _ in 0..20 {
                        ctx.fetch_add(a, 1);
                    }
                })
                .unwrap()
                .max_time_ns()
        };
        let clean = {
            let mut arena = Arena::new();
            let a = arena.alloc_u32();
            SimBuilder::new(topo(), 2)
                .run(move |sim| {
                    for _ in 0..20 {
                        sim.fetch_add(a, 1);
                    }
                })
                .unwrap()
                .max_time_ns()
        };
        assert!(run(7) > clean, "perturbation must add latency");
        assert_eq!(run(7), run(7), "same seed, same perturbed schedule");
        assert_ne!(run(7), run(8), "different seeds must perturb differently");
    }
}

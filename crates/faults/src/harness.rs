//! The chaos matrix: algorithms × platforms × scenarios → survival table.
//!
//! Each cell runs one barrier under one seeded [`Scenario`] and classifies
//! the result:
//!
//! * **simulator cells** are fully deterministic — faults surface as typed
//!   [`SimError`]s (deadlock, panic, live-lock) and the same seed replays
//!   the same table bit-for-bit;
//! * **host cells** run real threads under [`RobustBarrier`], so a fault
//!   can never hang the harness past the configured deadline — it surfaces
//!   as a typed `BarrierError` instead. Survivable scenarios classify
//!   deterministically; for lost wakeups the *detection* is deterministic
//!   on the simulator while the host guarantees bounded-time detection
//!   (which error each peer reports depends on thread interleaving, so the
//!   table collapses them into one status).
//!
//! Simulator cells run through `SimBuilder::run` and therefore on the
//! ambient `armbar_simcoh::SimTeam`: worker threads are reused across
//! cells, and an episode that dies of a deadlock abort or an injected
//! panic cannot poison the next one — the team catches both per episode
//! (covered by `armbar_simcoh::team` tests).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use armbar_core::{
    AlgorithmId, Barrier, BarrierError, CentralPhaser, HostMem, MemCtx, Phaser, RobustBarrier,
    RobustConfig, RobustPhaser, SpinPolicy, TreePhaser,
};
use armbar_simcoh::{Addr, Arena, SimBuilder, SimError};
use armbar_sweep::{Job, SweepPool};
use armbar_topology::{Platform, Topology};

use crate::plan::{ChurnPlan, FaultPlan, Scenario};
use crate::FaultyCtx;

/// Which execution backend a chaos cell ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The deterministic coherence simulator.
    Sim,
    /// Real threads on host atomics, deadline-guarded by `RobustBarrier`.
    Host,
}

impl Backend {
    /// Both backends, in table order.
    pub const ALL: [Backend; 2] = [Backend::Sim, Backend::Host];

    /// Stable table label.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Host => "host",
        }
    }

    /// Parses a table label (case-insensitive), for CLI use.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.to_ascii_lowercase();
        Self::ALL.into_iter().find(|b| b.label() == s)
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What to run: the cross product of everything listed here, in listed
/// order (the row order of the survival table is fully determined).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Modeled machines (the simulator charges their coherence costs; the
    /// host uses their cache-line size for arena layout).
    pub platforms: Vec<Platform>,
    /// Barrier algorithms under test.
    pub algorithms: Vec<AlgorithmId>,
    /// Fault scenarios per algorithm.
    pub scenarios: Vec<Scenario>,
    /// Execution backends.
    pub backends: Vec<Backend>,
    /// Participating threads per cell.
    pub threads: usize,
    /// Barrier episodes per cell (keep ≥ 3 so every planned fault fires).
    pub episodes: u32,
    /// Master seed: plans, victims, and jitter all derive from it.
    pub seed: u64,
    /// Per-episode deadline for host cells.
    pub deadline: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            platforms: vec![Platform::Kunpeng920],
            // The paper's 14 algorithms plus the shyper contenders: the
            // survival table should show what a *lock-guarded* counter
            // does under faults (a crashed lock holder wedges everyone).
            algorithms: AlgorithmId::ALL.into_iter().chain(AlgorithmId::CONTENDERS).collect(),
            scenarios: Scenario::ALL.to_vec(),
            backends: vec![Backend::Sim],
            threads: 8,
            episodes: 3,
            seed: 0xC4A05,
            deadline: Duration::from_secs(5),
        }
    }
}

impl ChaosConfig {
    /// The churn matrix preset: both phasers × the [`Scenario::CHURN`]
    /// scenarios, with enough episodes (5) for a flap to leave, sit out,
    /// rejoin and arrive again within one run.
    pub fn churn() -> Self {
        Self {
            algorithms: AlgorithmId::PHASERS.to_vec(),
            scenarios: Scenario::CHURN.to_vec(),
            episodes: 5,
            ..Self::default()
        }
    }
}

/// How one cell ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// All threads completed every episode.
    Completed,
    /// The fault was caught by a typed error; `mechanism` names how.
    Detected { mechanism: String },
    /// The episode hung and the deadline tripped (host only) — the fault
    /// was detected, but only as lost progress.
    TimedOut,
    /// Churn: every episode completed, but only because a survivor evicted
    /// the scripted deserter and proxy-arrived on its behalf.
    Degraded { mechanism: String },
    /// Churn: recovery gave up (or never applied) and the team poisoned —
    /// the failure mode [`armbar_core::RobustPhaser`] exists to avoid.
    Poisoned { mechanism: String },
}

/// One row of the survival table.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Execution backend.
    pub backend: Backend,
    /// Modeled machine.
    pub platform: Platform,
    /// Barrier algorithm.
    pub algorithm: AlgorithmId,
    /// Injected scenario.
    pub scenario: Scenario,
    /// Participating threads.
    pub threads: usize,
    /// How the cell ended.
    pub outcome: CellOutcome,
}

impl ChaosCell {
    /// Table status: `ok` (baseline completed), `recovered` (completed
    /// despite planned faults/churn), `detected` (typed error),
    /// `timed-out`, `degraded` (completed through an eviction), or
    /// `poisoned` (churn recovery failed).
    pub fn status(&self) -> &'static str {
        match (&self.outcome, self.scenario) {
            (CellOutcome::Completed, Scenario::Baseline) => "ok",
            (CellOutcome::Completed, _) => "recovered",
            (CellOutcome::Detected { .. }, _) => "detected",
            (CellOutcome::TimedOut, _) => "timed-out",
            (CellOutcome::Degraded { .. }, _) => "degraded",
            (CellOutcome::Poisoned { .. }, _) => "poisoned",
        }
    }

    /// Free-text detail for `detected`/`degraded`/`poisoned` rows, empty
    /// otherwise.
    pub fn detail(&self) -> &str {
        match &self.outcome {
            CellOutcome::Detected { mechanism }
            | CellOutcome::Degraded { mechanism }
            | CellOutcome::Poisoned { mechanism } => mechanism,
            _ => "",
        }
    }
}

/// Runs the full matrix described by `config` and returns one cell per
/// (backend × platform × algorithm × scenario) combination, in that
/// nesting order. Cells fan out over the ambient [`SweepPool`]
/// (`--jobs`/`ARMBAR_JOBS` workers); see [`chaos_matrix_on`].
pub fn chaos_matrix(config: &ChaosConfig) -> Vec<ChaosCell> {
    chaos_matrix_on(&SweepPool::ambient(), config)
}

/// [`chaos_matrix`] on an explicit pool. Simulator cells are pure
/// functions of the seed and run concurrently; host cells spawn real
/// threads, race a wall-clock deadline, and would misclassify under
/// oversubscription — they are [`Job::serial`] and run alone with the
/// pool idle. Either way the table order (and thus the rendered CSV/JSON)
/// is fixed by the submission order, independent of the worker count.
pub fn chaos_matrix_on(pool: &SweepPool, config: &ChaosConfig) -> Vec<ChaosCell> {
    silence_injected_crashes();
    let mut jobs: Vec<Job<'_, ChaosCell>> = Vec::new();
    for &backend in &config.backends {
        for &platform in &config.platforms {
            for &algorithm in &config.algorithms {
                for &scenario in &config.scenarios {
                    let cell = move |outcome| ChaosCell {
                        backend,
                        platform,
                        algorithm,
                        scenario,
                        threads: config.threads,
                        outcome,
                    };
                    let churn = Scenario::CHURN.contains(&scenario);
                    jobs.push(match (backend, churn) {
                        (Backend::Sim, false) => Job::parallel(move || {
                            cell(run_sim_cell(platform, algorithm, scenario, config))
                        }),
                        (Backend::Sim, true) => Job::parallel(move || {
                            cell(run_churn_sim_cell(platform, algorithm, scenario, config))
                        }),
                        (Backend::Host, false) => Job::serial(move || {
                            cell(run_host_cell(platform, algorithm, scenario, config))
                        }),
                        (Backend::Host, true) => Job::serial(move || {
                            cell(run_churn_host_cell(platform, algorithm, scenario, config))
                        }),
                    });
                }
            }
        }
    }
    pool.run(jobs)
}

/// Keeps planned crashes from spraying panic messages and backtraces over
/// the survival table: they are expected, caught, and classified. Public
/// so integration tests that drive [`FaultyCtx`] crash plans directly can
/// reuse the same filter.
pub fn silence_injected_crashes() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if !msg.is_some_and(|m| m.starts_with("injected crash")) {
                prev(info);
            }
        }));
    });
}

fn run_sim_cell(
    platform: Platform,
    algorithm: AlgorithmId,
    scenario: Scenario,
    config: &ChaosConfig,
) -> CellOutcome {
    let topo = Arc::new(Topology::preset(platform));
    let p = config.threads.min(topo.num_cores());
    let mut arena = Arena::new();
    let barrier: Arc<dyn Barrier> = Arc::from(algorithm.build(&mut arena, p, &topo));
    let plan = FaultPlan::scenario(scenario, config.seed, p);
    let episodes = config.episodes;
    let result = SimBuilder::new(topo, p).seed(config.seed).run(move |sim| {
        let ctx = FaultyCtx::new(sim, &plan);
        for _ in 0..episodes {
            barrier.wait(&ctx);
        }
    });
    match result {
        Ok(_) => CellOutcome::Completed,
        Err(SimError::Deadlock { waiters }) => CellOutcome::Detected {
            mechanism: match waiters.first() {
                Some(w) => format!("deadlock; {} blocked; first: {w}", waiters.len()),
                None => "deadlock".to_string(),
            },
        },
        Err(SimError::ThreadPanic { tid, .. }) => {
            CellOutcome::Detected { mechanism: format!("panic; t{tid} died mid-episode") }
        }
        Err(SimError::OpBudgetExhausted { .. }) => {
            CellOutcome::Detected { mechanism: "live-lock; op budget exhausted".to_string() }
        }
    }
}

fn run_host_cell(
    platform: Platform,
    algorithm: AlgorithmId,
    scenario: Scenario,
    config: &ChaosConfig,
) -> CellOutcome {
    let topo = Topology::preset(platform);
    let p = config.threads.min(topo.num_cores());
    let mut arena = Arena::new();
    let inner = algorithm.build(&mut arena, p, &topo);
    let robust = RobustBarrier::new(
        &mut arena,
        topo.cacheline_bytes(),
        inner,
        RobustConfig { deadline: config.deadline, policy: SpinPolicy::from_env(), max_polls: None },
    );
    let plan = FaultPlan::scenario(scenario, config.seed, p);
    let mem = HostMem::new(&arena);
    let episodes = config.episodes;

    // Per-thread verdicts: did it finish, fail typed, or crash?
    enum Verdict {
        Done,
        Failed(#[allow(dead_code)] BarrierError),
        Crashed,
    }

    let verdicts: Vec<Verdict> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|tid| {
                let robust = &robust;
                let plan = &plan;
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    let host = mem.ctx(tid, p);
                    let ctx = FaultyCtx::new(&host, plan);
                    let body = || -> Result<(), BarrierError> {
                        let guard = robust.guard(&ctx);
                        for _ in 0..episodes {
                            robust.wait(&ctx)?;
                        }
                        guard.disarm();
                        Ok(())
                    };
                    match catch_unwind(AssertUnwindSafe(body)) {
                        Ok(Ok(())) => Verdict::Done,
                        Ok(Err(e)) => Verdict::Failed(e),
                        Err(_) => Verdict::Crashed, // injected crash; guard poisoned
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker must not die unwound")).collect()
    });

    // Aggregate with a fixed precedence so the cell outcome does not depend
    // on which peer happened to observe the failure first:
    // crash > timeout/poison > completed.
    if verdicts.iter().any(|v| matches!(v, Verdict::Crashed)) {
        return CellOutcome::Detected {
            mechanism: "panic; crash poisoned the episode".to_string(),
        };
    }
    if verdicts.iter().any(|v| matches!(v, Verdict::Failed(_))) {
        return CellOutcome::TimedOut;
    }
    CellOutcome::Completed
}

/// Stall-detection budget for simulator churn cells, in failed polls (see
/// [`RobustConfig::max_polls`]). Far above any healthy wait at chaos-sized
/// teams, so the only timeouts are the scripted desertion — and the same
/// seed detects it at the same virtual time on every run.
pub const CHURN_SIM_MAX_POLLS: u64 = 20_000;

/// Builds the dynamic-membership phaser behind a churn cell; `None` for
/// fixed-membership algorithms, which cannot run membership churn.
pub fn build_phaser(
    algorithm: AlgorithmId,
    arena: &mut Arena,
    cap: usize,
    initial: usize,
    topo: &Topology,
) -> Option<Box<dyn Phaser>> {
    match algorithm {
        AlgorithmId::PhaserCentral => Some(Box::new(CentralPhaser::new(arena, cap, initial, topo))),
        AlgorithmId::PhaserTree => Some(Box::new(TreePhaser::new(arena, cap, initial, topo))),
        _ => None,
    }
}

/// How one churn participant ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnVerdict {
    /// Ran its script to the end (all arrivals, or an orderly leave).
    Done,
    /// Collected the one-shot eviction report after its scripted desertion.
    Evicted { episode: u32 },
    /// The script broke down: a scripted step failed in an unexpected way.
    Unexpected(String),
    /// A typed failure (timeout / poison) — recovery did not hold.
    Error(BarrierError),
}

/// One thread's run of its [`ChurnPlan`] script: identical on both
/// backends, since every churn event is membership-driven (no memory
/// faults are injected). `aux` is the scripted handshake word behind
/// [`ChurnPlan::gate`]. Public so the conformance checker can drive the
/// *same* script under its schedule explorer.
pub fn churn_thread(
    robust: &RobustPhaser,
    ctx: &dyn MemCtx,
    plan: &ChurnPlan,
    aux: Addr,
    episodes: u32,
) -> ChurnVerdict {
    let slot = ctx.tid();
    let script = plan.script(slot);
    let mut next: u32 = 1;
    if let Some(j) = script.join_after {
        // Late joiner: sit out until the release clock reaches the
        // scripted epoch, then request-signal-await so the shepherd keeps
        // a boundary alive for the ack.
        if j > 0 {
            if let Err(e) = robust.wait_epoch(ctx, j) {
                return ChurnVerdict::Error(e);
            }
        }
        let token = robust.request_join(ctx);
        ctx.store(aux, 1);
        next = robust.await_join(ctx, token);
    }
    while next <= episodes {
        if plan.gate() == Some((slot, next)) {
            // Shepherd: hold this arrival until the joiner's request is
            // visible, so this epoch's boundary is guaranteed to commit
            // the join (otherwise a request landing after the team's final
            // boundary would never be acked). Bounded: if the joiner died
            // before signaling, an unbounded spin here would hang the
            // shepherd forever; the deadline turns that into a failed
            // cell instead.
            if let Err(e) = robust.wait_signal(ctx, aux, 1) {
                return ChurnVerdict::Error(e);
            }
        }
        if script.desert_at == Some(next) {
            // Desert silently: sit out while the survivors time out, vote,
            // and proxy-arrive; then come back for the one-shot report.
            if let Err(e) = robust.wait_epoch(ctx, next) {
                return ChurnVerdict::Error(e);
            }
            return match robust.arrive_and_wait(ctx) {
                Err(BarrierError::Evicted { episode, .. }) => ChurnVerdict::Evicted { episode },
                Ok(e) => ChurnVerdict::Unexpected(format!(
                    "deserter of epoch {next} arrived for epoch {e} without an eviction report"
                )),
                Err(e) => ChurnVerdict::Error(e),
            };
        }
        if script.leave_at == Some(next) {
            let final_epoch = match robust.deregister(ctx) {
                Ok(e) => e,
                Err(e) => return ChurnVerdict::Error(e),
            };
            if !script.rejoin {
                return ChurnVerdict::Done;
            }
            // Flap: the leave must commit before the same slot may rejoin.
            if let Err(e) = robust.wait_epoch(ctx, final_epoch) {
                return ChurnVerdict::Error(e);
            }
            let token = robust.request_join(ctx);
            ctx.store(aux, 1);
            next = robust.await_join(ctx, token);
            continue;
        }
        match robust.arrive_and_wait(ctx) {
            Ok(e) => next = e + 1,
            Err(e) => return ChurnVerdict::Error(e),
        }
    }
    ChurnVerdict::Done
}

/// Folds per-thread verdicts into the cell outcome: errors dominate
/// (recovery failed), exactly one eviction report is `degraded`, a clean
/// sheet is `completed`.
fn classify_churn(plan: &ChurnPlan, verdicts: &[ChurnVerdict]) -> CellOutcome {
    for v in verdicts {
        match v {
            ChurnVerdict::Error(e) => return CellOutcome::Poisoned { mechanism: e.to_string() },
            ChurnVerdict::Unexpected(why) => {
                return CellOutcome::Poisoned { mechanism: why.clone() }
            }
            _ => {}
        }
    }
    let evictions: Vec<u32> = verdicts
        .iter()
        .filter_map(|v| match v {
            ChurnVerdict::Evicted { episode } => Some(*episode),
            _ => None,
        })
        .collect();
    match evictions.as_slice() {
        [] => CellOutcome::Completed,
        [episode] => CellOutcome::Degraded {
            mechanism: format!(
                "evicted t{} at epoch {episode}; survivors completed degraded",
                plan.victim()
            ),
        },
        more => CellOutcome::Poisoned {
            mechanism: format!("{} eviction reports for one deserter", more.len()),
        },
    }
}

fn run_churn_sim_cell(
    platform: Platform,
    algorithm: AlgorithmId,
    scenario: Scenario,
    config: &ChaosConfig,
) -> CellOutcome {
    let topo = Arc::new(Topology::preset(platform));
    let p = config.threads.min(topo.num_cores()).max(2);
    let episodes = config.episodes;
    let plan = ChurnPlan::scenario(scenario, config.seed, p, episodes);
    let mut arena = Arena::new();
    let Some(inner) = build_phaser(algorithm, &mut arena, p, plan.initial_members(), &topo) else {
        return CellOutcome::Detected {
            mechanism: "churn scenarios require a phaser algorithm".to_string(),
        };
    };
    let aux = arena.alloc_padded_u32(topo.cacheline_bytes());
    let robust = Arc::new(RobustPhaser::new(
        &mut arena,
        topo.cacheline_bytes(),
        inner,
        RobustConfig { max_polls: Some(CHURN_SIM_MAX_POLLS), ..RobustConfig::default() },
    ));
    let verdicts = Arc::new(Mutex::new(vec![None; p]));
    let result = SimBuilder::new(topo, p).seed(config.seed).run({
        let robust = Arc::clone(&robust);
        let verdicts = Arc::clone(&verdicts);
        let plan = plan.clone();
        move |sim| {
            let v = churn_thread(&robust, sim, &plan, aux, episodes);
            verdicts.lock().unwrap()[sim.tid()] = Some(v);
        }
    });
    if let Err(e) = result {
        return CellOutcome::Poisoned { mechanism: format!("sim aborted: {e}") };
    }
    let verdicts: Vec<ChurnVerdict> =
        verdicts.lock().unwrap().iter().cloned().map(Option::unwrap).collect();
    classify_churn(&plan, &verdicts)
}

fn run_churn_host_cell(
    platform: Platform,
    algorithm: AlgorithmId,
    scenario: Scenario,
    config: &ChaosConfig,
) -> CellOutcome {
    let topo = Topology::preset(platform);
    let p = config.threads.min(topo.num_cores()).max(2);
    let episodes = config.episodes;
    let plan = ChurnPlan::scenario(scenario, config.seed, p, episodes);
    let mut arena = Arena::new();
    let Some(inner) = build_phaser(algorithm, &mut arena, p, plan.initial_members(), &topo) else {
        return CellOutcome::Detected {
            mechanism: "churn scenarios require a phaser algorithm".to_string(),
        };
    };
    let aux = arena.alloc_padded_u32(topo.cacheline_bytes());
    let robust = RobustPhaser::new(
        &mut arena,
        topo.cacheline_bytes(),
        inner,
        RobustConfig { deadline: config.deadline, policy: SpinPolicy::from_env(), max_polls: None },
    );
    let mem = HostMem::new(&arena);
    let verdicts: Vec<ChurnVerdict> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|tid| {
                let robust = &robust;
                let plan = &plan;
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    let ctx = mem.ctx(tid, p);
                    churn_thread(robust, &ctx, plan, aux, episodes)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("churn worker must not die")).collect()
    });
    classify_churn(&plan, &verdicts)
}

/// Renders cells as CSV with a `#`-prefixed provenance header. Contains no
/// wall-clock values, so equal seeds yield byte-identical output.
pub fn render_csv(cells: &[ChaosCell], config: &ChaosConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# chaos: seed {:#x}, episodes {}, deadline {} ms\n",
        config.seed,
        config.episodes,
        config.deadline.as_millis()
    ));
    out.push_str("backend,platform,threads,algorithm,scenario,status,detail\n");
    for c in cells {
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            c.backend,
            c.platform.label(),
            c.threads,
            c.algorithm.label(),
            c.scenario,
            c.status(),
            c.detail()
        ));
    }
    out
}

/// Renders cells as a JSON document (same fields as the CSV).
pub fn render_json(cells: &[ChaosCell], config: &ChaosConfig) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {},\n", config.seed));
    out.push_str(&format!("  \"episodes\": {},\n", config.episodes));
    out.push_str(&format!("  \"deadline_ms\": {},\n", config.deadline.as_millis()));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"platform\": \"{}\", \"threads\": {}, \
             \"algorithm\": \"{}\", \"scenario\": \"{}\", \"status\": \"{}\", \
             \"detail\": \"{}\"}}{}\n",
            c.backend,
            c.platform.label(),
            c.threads,
            c.algorithm.label(),
            c.scenario,
            c.status(),
            c.detail().replace('"', "'"),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ChaosConfig {
        ChaosConfig {
            algorithms: vec![AlgorithmId::Sense, AlgorithmId::Dissemination],
            threads: 4,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn sim_matrix_classifies_survivable_scenarios_as_survived() {
        let cells = chaos_matrix(&small_config());
        for c in &cells {
            if Scenario::SURVIVABLE.contains(&c.scenario) {
                assert!(
                    matches!(c.outcome, CellOutcome::Completed),
                    "{}/{}/{} should survive, got {:?}",
                    c.algorithm.label(),
                    c.scenario,
                    c.backend,
                    c.outcome
                );
            }
        }
    }

    #[test]
    fn sim_matrix_detects_crashes_with_typed_errors() {
        let cells = chaos_matrix(&small_config());
        for c in cells.iter().filter(|c| c.scenario == Scenario::Crash) {
            assert!(
                matches!(&c.outcome, CellOutcome::Detected { mechanism } if mechanism.starts_with("panic")),
                "{}: crash must surface as a panic, got {:?}",
                c.algorithm.label(),
                c.outcome
            );
        }
    }

    #[test]
    fn matrix_is_identical_at_any_worker_count() {
        // The sweep-pool fan-out must not reorder or perturb the table:
        // jobs=1 is the serial reference, jobs=4 must match byte for byte.
        let config = small_config();
        let serial = render_csv(&chaos_matrix_on(&SweepPool::new(1), &config), &config);
        let parallel = render_csv(&chaos_matrix_on(&SweepPool::new(4), &config), &config);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sim_matrix_replays_bit_identically() {
        let config = small_config();
        let a = render_csv(&chaos_matrix(&config), &config);
        let b = render_csv(&chaos_matrix(&config), &config);
        assert_eq!(a, b);
        let mut reseeded = small_config();
        reseeded.seed ^= 1;
        let c = render_csv(&chaos_matrix(&reseeded), &reseeded);
        assert_ne!(a, c, "different seed must perturb the table");
    }

    #[test]
    fn host_cells_never_hang_and_report_typed_outcomes() {
        let config = ChaosConfig {
            backends: vec![Backend::Host],
            algorithms: vec![AlgorithmId::Dissemination],
            scenarios: vec![Scenario::Baseline, Scenario::LostWakeup, Scenario::Crash],
            threads: 4,
            deadline: Duration::from_millis(300),
            ..ChaosConfig::default()
        };
        let cells = chaos_matrix(&config);
        assert_eq!(cells.len(), 3);
        assert!(matches!(cells[0].outcome, CellOutcome::Completed), "{:?}", cells[0].outcome);
        // Dissemination: every thread stores a flag each round, so the
        // dropped store always hangs the episode -> deadline trips.
        assert!(matches!(cells[1].outcome, CellOutcome::TimedOut), "{:?}", cells[1].outcome);
        assert!(
            matches!(&cells[2].outcome, CellOutcome::Detected { mechanism } if mechanism.starts_with("panic")),
            "{:?}",
            cells[2].outcome
        );
    }

    fn churn_config() -> ChaosConfig {
        ChaosConfig { threads: 8, ..ChaosConfig::churn() }
    }

    #[test]
    fn churn_matrix_recovers_joins_leaves_and_flaps_on_sim() {
        let cells = chaos_matrix(&churn_config());
        assert_eq!(cells.len(), 8, "2 phasers x 4 churn scenarios");
        for c in &cells {
            match c.scenario {
                Scenario::CrashEvict => assert_eq!(
                    c.status(),
                    "degraded",
                    "{}/{}: deserter must be evicted, got {:?}",
                    c.algorithm.label(),
                    c.scenario,
                    c.outcome
                ),
                _ => assert_eq!(
                    c.status(),
                    "recovered",
                    "{}/{}: churn must complete, got {:?}",
                    c.algorithm.label(),
                    c.scenario,
                    c.outcome
                ),
            }
        }
    }

    #[test]
    fn churn_matrix_replays_bit_identically_at_any_worker_count() {
        let config = churn_config();
        let serial = render_csv(&chaos_matrix_on(&SweepPool::new(1), &config), &config);
        let parallel = render_csv(&chaos_matrix_on(&SweepPool::new(4), &config), &config);
        assert_eq!(serial, parallel);
        let again = render_csv(&chaos_matrix(&config), &config);
        assert_eq!(serial, again, "same seed must replay the same churn table");
    }

    #[test]
    fn churn_cells_on_host_complete_degraded_not_poisoned() {
        let config = ChaosConfig {
            backends: vec![Backend::Host],
            scenarios: Scenario::CHURN.to_vec(),
            threads: 4,
            deadline: Duration::from_millis(500),
            ..ChaosConfig::churn()
        };
        let cells = chaos_matrix(&config);
        for c in &cells {
            let want = if c.scenario == Scenario::CrashEvict { "degraded" } else { "recovered" };
            assert_eq!(
                c.status(),
                want,
                "host {}/{}: got {:?}",
                c.algorithm.label(),
                c.scenario,
                c.outcome
            );
        }
    }

    #[test]
    fn churn_scenarios_reject_fixed_membership_algorithms() {
        let config = ChaosConfig {
            algorithms: vec![AlgorithmId::Sense],
            scenarios: vec![Scenario::CrashEvict],
            ..ChaosConfig::churn()
        };
        let cells = chaos_matrix(&config);
        assert_eq!(cells.len(), 1);
        assert!(
            matches!(&cells[0].outcome, CellOutcome::Detected { mechanism } if mechanism.contains("phaser")),
            "{:?}",
            cells[0].outcome
        );
    }

    #[test]
    fn renderers_are_stable_and_quote_free() {
        let config = ChaosConfig {
            algorithms: vec![AlgorithmId::Sense],
            scenarios: vec![Scenario::Baseline, Scenario::Crash],
            threads: 2,
            ..ChaosConfig::default()
        };
        let cells = chaos_matrix(&config);
        let csv = render_csv(&cells, &config);
        assert!(csv.starts_with("# chaos: seed 0xc4a05"));
        assert_eq!(csv.lines().count(), 2 + cells.len());
        for line in csv.lines().skip(2) {
            assert_eq!(line.matches(',').count(), 6, "unescaped comma in: {line}");
        }
        let json = render_json(&cells, &config);
        assert!(json.contains("\"scenario\": \"crash\""));
        assert!(json.contains("\"status\": \"detected\""));
    }
}

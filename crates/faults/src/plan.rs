//! Declarative, seeded fault plans.

use armbar_simcoh::rng::SplitMix64;

/// One injected fault. Thread-targeted faults name their victim
/// explicitly so a plan is self-describing in test output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The victim's first memory operation is preceded by `delay_ns` of
    /// extra compute: it arrives late at every barrier after that point.
    Straggler { tid: usize, delay_ns: f64 },
    /// The victim's `nth_store` (1-based, counted across its lifetime) is
    /// silently dropped — the classic lost wakeup / lost arrival.
    LostWakeup { tid: usize, nth_store: u64 },
    /// The victim panics when its operation count reaches `after_ops` —
    /// a participant crashing mid-episode.
    Crash { tid: usize, after_ops: u64 },
    /// Every thread's memory operations are preceded by a seeded random
    /// delay in `[0, max_extra_ns)` — OS noise, SMIs, frequency wobble.
    Latency { max_extra_ns: f64 },
}

/// The named fault scenarios of the chaos matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// No faults — the control row of the survival table.
    Baseline,
    /// One seeded victim arrives late.
    Straggler,
    /// All threads see perturbed operation latency.
    Latency,
    /// One seeded victim drops one seeded store.
    LostWakeup,
    /// One seeded victim crashes after a few operations.
    Crash,
    /// Churn: one seeded late joiner registers mid-run (phasers only).
    Join,
    /// Churn: one seeded member deregisters mid-run (phasers only).
    Leave,
    /// Churn: one seeded member silently deserts an episode; the
    /// survivors must evict it via proxy arrival and complete degraded
    /// (phasers under [`armbar_core::RobustPhaser`] only).
    CrashEvict,
    /// Churn: one seeded member leaves, sits out an epoch, and rejoins
    /// the same slot (phasers only).
    Flap,
}

impl Scenario {
    /// The fixed-membership scenarios, in survival-table row order.
    /// Deliberately unchanged by the churn extension: every fixed-P chaos
    /// fixture and CI grep pins this set.
    pub const ALL: [Scenario; 5] = [
        Scenario::Baseline,
        Scenario::Straggler,
        Scenario::Latency,
        Scenario::LostWakeup,
        Scenario::Crash,
    ];

    /// The dynamic-membership (phaser) scenarios, in churn-table order.
    pub const CHURN: [Scenario; 4] =
        [Scenario::Join, Scenario::Leave, Scenario::CrashEvict, Scenario::Flap];

    /// Scenarios a correct barrier must *absorb* (complete despite the
    /// fault), as opposed to ones it can only *detect*.
    pub const SURVIVABLE: [Scenario; 3] =
        [Scenario::Baseline, Scenario::Straggler, Scenario::Latency];

    /// Stable table label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Baseline => "baseline",
            Scenario::Straggler => "straggler",
            Scenario::Latency => "latency",
            Scenario::LostWakeup => "lost-wakeup",
            Scenario::Crash => "crash",
            Scenario::Join => "join",
            Scenario::Leave => "leave",
            Scenario::CrashEvict => "crash-evict",
            Scenario::Flap => "flap",
        }
    }

    /// Parses a label (case-insensitive), for CLI use. Accepts fuzzy
    /// spellings the same way the CLI's algorithm parsing does: all
    /// non-alphanumerics are stripped, so `lost-wakeup`, `lost_wakeup`
    /// and `lostwakeup` are one scenario (and `crash-evict`/`crash_evict`
    /// /`crashevict` stay distinct from `crash`).
    pub fn parse(s: &str) -> Option<Self> {
        let norm = |s: &str| -> String {
            s.chars().filter(char::is_ascii_alphanumeric).collect::<String>().to_ascii_lowercase()
        };
        let s = norm(s);
        Self::ALL.into_iter().chain(Self::CHURN).find(|sc| norm(sc.label()) == s)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A deterministic set of faults to inject into one run. The seed feeds
/// both the plan generation ([`FaultPlan::scenario`]) and the per-thread
/// jitter streams of [`crate::FaultyCtx`], so a `(plan, program)` pair
/// replays bit-identically.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (inject nothing) with the given jitter seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, faults: Vec::new() }
    }

    /// Adds a fault.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The seeded realization of a named scenario for `p` threads: victim
    /// choice and fault parameters are drawn from `seed`, so the same
    /// `(scenario, seed, p)` triple always builds the same plan.
    pub fn scenario(scenario: Scenario, seed: u64, p: usize) -> Self {
        assert!(p >= 1, "need at least one thread");
        // Mix the scenario into the stream so each matrix row draws
        // independent victims from one user-facing seed.
        let mix = (scenario.label().len() as u64) << 56;
        let mut rng = SplitMix64::new(seed ^ mix ^ 0xFA_17);
        let victim = (rng.next_u64() % p as u64) as usize;
        let plan = Self::new(seed);
        match scenario {
            Scenario::Baseline => plan,
            Scenario::Straggler => plan.with(Fault::Straggler {
                tid: victim,
                // 50–150 µs: several barrier episodes long on every modeled
                // machine, far below any sane host deadline.
                delay_ns: 50_000.0 + rng.next_f64() * 100_000.0,
            }),
            Scenario::Latency => {
                plan.with(Fault::Latency { max_extra_ns: 100.0 + rng.next_f64() * 400.0 })
            }
            // Bounds chosen so the fault is guaranteed to fire within a
            // three-episode run of even the leanest algorithm (the central
            // counter does ~2 ops and ≤ 1 store per thread per episode).
            Scenario::LostWakeup => {
                plan.with(Fault::LostWakeup { tid: victim, nth_store: 1 + rng.next_u64() % 3 })
            }
            Scenario::Crash => {
                plan.with(Fault::Crash { tid: victim, after_ops: 2 + rng.next_u64() % 4 })
            }
            // Churn scenarios inject no memory faults: the misbehavior is
            // membership-driven and scripted by [`ChurnPlan::scenario`].
            Scenario::Join | Scenario::Leave | Scenario::CrashEvict | Scenario::Flap => plan,
        }
    }

    /// The jitter seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The planned faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Straggler delay for `tid`, if planned (summed if several).
    pub(crate) fn straggler_delay(&self, tid: usize) -> Option<f64> {
        let total: f64 = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::Straggler { tid: t, delay_ns } if *t == tid => Some(*delay_ns),
                _ => None,
            })
            .sum();
        (total > 0.0).then_some(total)
    }

    /// The store ordinal to drop for `tid`, if planned.
    pub(crate) fn lost_store(&self, tid: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::LostWakeup { tid: t, nth_store } if *t == tid => Some(*nth_store),
            _ => None,
        })
    }

    /// The op count at which `tid` crashes, if planned.
    pub(crate) fn crash_after(&self, tid: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::Crash { tid: t, after_ops } if *t == tid => Some(*after_ops),
            _ => None,
        })
    }

    /// The latency-perturbation amplitude, if planned.
    pub(crate) fn latency_amp(&self) -> Option<f64> {
        self.faults.iter().find_map(|f| match f {
            Fault::Latency { max_extra_ns } => Some(*max_extra_ns),
            _ => None,
        })
    }
}

/// What one slot does across a churn run (epochs are 1-based, matching the
/// phaser's release clock). At most one of the events is scripted per
/// slot; a default script is a steady member for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotScript {
    /// The slot starts **out** and requests membership once the release
    /// clock reaches this epoch (0 = request immediately).
    pub join_after: Option<u32>,
    /// The slot's final arrival is this epoch (`deregister` there); with
    /// `rejoin` it then requests membership again after the leave commits.
    pub leave_at: Option<u32>,
    /// Flap: re-register after the leave committed.
    pub rejoin: bool,
    /// The slot silently stops arriving from this epoch on — survivors
    /// must evict it and complete the epoch degraded.
    pub desert_at: Option<u32>,
}

impl SlotScript {
    /// Is this slot a member of epoch 1?
    pub fn is_initial_member(&self) -> bool {
        self.join_after.is_none()
    }
}

/// A deterministic membership-churn script for one phaser run: which slot
/// joins/leaves/deserts/flaps and when, drawn from a seed with the same
/// mixing discipline as [`FaultPlan::scenario`] so a
/// `(scenario, seed, p, episodes)` quadruple always replays the same run
/// on either backend.
///
/// Liveness: a join request that lands after the team's **final** boundary
/// would never be acked, so every joining script comes with a *shepherd* —
/// a steady member that holds its arrival for [`ChurnPlan::gate`]'s epoch
/// until the joiner has stored its request (signalled through a scripted
/// handshake word). The runner wires the handshake; the plan only names
/// the shepherd and the gated epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnPlan {
    seed: u64,
    scenario: Scenario,
    victim: usize,
    scripts: Vec<SlotScript>,
    gate: Option<(usize, u32)>,
}

impl ChurnPlan {
    /// The seeded realization of a churn scenario for `p` slots over
    /// `episodes` epochs. Panics on non-churn scenarios.
    pub fn scenario(scenario: Scenario, seed: u64, p: usize, episodes: u32) -> Self {
        assert!(p >= 2, "churn needs a victim and at least one survivor");
        assert!(
            Scenario::CHURN.contains(&scenario),
            "{scenario} is a fault scenario, not a churn scenario"
        );
        let mix = (scenario.label().len() as u64) << 56;
        let mut rng = SplitMix64::new(seed ^ mix ^ 0xFA_17);
        let e = episodes;
        let mut scripts = vec![SlotScript::default(); p];
        let (victim, gate) = match scenario {
            Scenario::Join => {
                // The joiner must be the top slot: initial members are the
                // prefix 0..p-1 (the phaser's zero-word decoding).
                let victim = p - 1;
                let j = if e >= 3 {
                    1 + (rng.next_u64() % u64::from((e - 2).min(2))) as u32
                } else {
                    0
                };
                scripts[victim].join_after = Some(j);
                (victim, Some((0, (j + 2).min(e))))
            }
            Scenario::Leave => {
                let victim = (rng.next_u64() % p as u64) as usize;
                let l = if e >= 2 { 2 + (rng.next_u64() % u64::from(e - 1)) as u32 } else { 1 };
                scripts[victim].leave_at = Some(l);
                (victim, None)
            }
            Scenario::CrashEvict => {
                let victim = (rng.next_u64() % p as u64) as usize;
                let d = if e >= 2 { 2 + (rng.next_u64() % u64::from(e - 1)) as u32 } else { 1 };
                scripts[victim].desert_at = Some(d);
                (victim, None)
            }
            Scenario::Flap => {
                let victim = (rng.next_u64() % p as u64) as usize;
                let l = if e >= 5 {
                    1 + (rng.next_u64() % u64::from((e - 4).min(2))) as u32
                } else {
                    1
                };
                scripts[victim].leave_at = Some(l);
                scripts[victim].rejoin = true;
                (victim, Some(((victim + 1) % p, (l + 2).min(e))))
            }
            _ => unreachable!(),
        };
        Self { seed, scenario, victim, scripts, gate }
    }

    /// The seed the plan was drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
    /// The scenario the plan realizes.
    pub fn kind(&self) -> Scenario {
        self.scenario
    }
    /// The churning slot.
    pub fn victim(&self) -> usize {
        self.victim
    }
    /// Per-slot scripts, indexed by slot.
    pub fn scripts(&self) -> &[SlotScript] {
        &self.scripts
    }
    /// The script of one slot.
    pub fn script(&self, slot: usize) -> SlotScript {
        self.scripts[slot]
    }
    /// `(shepherd slot, gated epoch)` for joining scripts: the shepherd
    /// must hold its arrival for the gated epoch until the joiner's
    /// request is visible, so at least one boundary commits the join.
    pub fn gate(&self) -> Option<(usize, u32)> {
        self.gate
    }
    /// How many slots are members of epoch 1 (always the prefix `0..n`).
    pub fn initial_members(&self) -> usize {
        self.scripts.iter().filter(|s| s.is_initial_member()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_in_the_seed() {
        for sc in Scenario::ALL {
            let a = FaultPlan::scenario(sc, 42, 8);
            let b = FaultPlan::scenario(sc, 42, 8);
            assert_eq!(a.faults(), b.faults(), "{sc}");
        }
    }

    #[test]
    fn different_seeds_pick_different_victims_eventually() {
        let victims: std::collections::HashSet<usize> = (0..32)
            .filter_map(|seed| match FaultPlan::scenario(Scenario::Crash, seed, 8).faults()[0] {
                Fault::Crash { tid, .. } => Some(tid),
                _ => None,
            })
            .collect();
        assert!(victims.len() > 1, "32 seeds never varied the victim");
    }

    #[test]
    fn victims_stay_in_range() {
        for seed in 0..64 {
            for p in [1usize, 2, 7, 64] {
                for sc in [Scenario::Straggler, Scenario::LostWakeup, Scenario::Crash] {
                    for f in FaultPlan::scenario(sc, seed, p).faults() {
                        let tid = match f {
                            Fault::Straggler { tid, .. }
                            | Fault::LostWakeup { tid, .. }
                            | Fault::Crash { tid, .. } => *tid,
                            Fault::Latency { .. } => 0,
                        };
                        assert!(tid < p, "{sc} seed {seed}: victim {tid} out of range {p}");
                    }
                }
            }
        }
    }

    #[test]
    fn baseline_plans_nothing() {
        assert!(FaultPlan::scenario(Scenario::Baseline, 7, 4).faults().is_empty());
    }

    #[test]
    fn accessors_filter_by_tid() {
        let plan = FaultPlan::new(0)
            .with(Fault::Straggler { tid: 1, delay_ns: 10.0 })
            .with(Fault::Straggler { tid: 1, delay_ns: 5.0 })
            .with(Fault::LostWakeup { tid: 2, nth_store: 3 })
            .with(Fault::Crash { tid: 0, after_ops: 9 })
            .with(Fault::Latency { max_extra_ns: 50.0 });
        assert_eq!(plan.straggler_delay(1), Some(15.0));
        assert_eq!(plan.straggler_delay(0), None);
        assert_eq!(plan.lost_store(2), Some(3));
        assert_eq!(plan.lost_store(1), None);
        assert_eq!(plan.crash_after(0), Some(9));
        assert_eq!(plan.latency_amp(), Some(50.0));
    }

    #[test]
    fn scenario_labels_round_trip() {
        for sc in Scenario::ALL.into_iter().chain(Scenario::CHURN) {
            assert_eq!(Scenario::parse(sc.label()), Some(sc));
            assert_eq!(Scenario::parse(&sc.label().to_uppercase()), Some(sc));
        }
        assert_eq!(Scenario::parse("nonsense"), None);
    }

    /// Satellite: underscore/compact spellings parse like the CLI's fuzzy
    /// algorithm names, and the compact churn label stays distinct from
    /// the plain crash scenario.
    #[test]
    fn scenario_parse_accepts_fuzzy_aliases() {
        for alias in ["lost_wakeup", "lostwakeup", "Lost-Wakeup", "LOST_WAKEUP"] {
            assert_eq!(Scenario::parse(alias), Some(Scenario::LostWakeup), "{alias}");
        }
        for alias in ["crash_evict", "crashevict", "crash-evict", "CRASH_EVICT"] {
            assert_eq!(Scenario::parse(alias), Some(Scenario::CrashEvict), "{alias}");
        }
        assert_eq!(Scenario::parse("crash"), Some(Scenario::Crash));
        assert_eq!(Scenario::parse("all scenarios"), None);
    }

    #[test]
    fn churn_plans_are_deterministic_and_in_range() {
        for sc in Scenario::CHURN {
            for seed in 0..32 {
                for (p, e) in [(2usize, 5u32), (8, 5), (8, 3), (16, 8), (64, 5)] {
                    let plan = ChurnPlan::scenario(sc, seed, p, e);
                    assert_eq!(plan, ChurnPlan::scenario(sc, seed, p, e), "{sc}");
                    assert!(plan.victim() < p, "{sc} seed {seed}: victim out of range");
                    assert_eq!(plan.scripts().len(), p);
                    let s = plan.script(plan.victim());
                    for epoch in [s.join_after, s.leave_at, s.desert_at].into_iter().flatten() {
                        assert!(epoch <= e, "{sc} seed {seed}: scripted epoch {epoch} > {e}");
                    }
                    if let Some((shepherd, gate)) = plan.gate() {
                        assert_ne!(shepherd, plan.victim(), "{sc}: shepherd must be steady");
                        assert!(plan.script(shepherd) == SlotScript::default(), "{sc}");
                        assert!((1..=e).contains(&gate), "{sc}: gate {gate} outside run");
                    }
                    // Steady slots: everyone but the victim.
                    for (slot, script) in plan.scripts().iter().enumerate() {
                        if slot != plan.victim() {
                            assert_eq!(*script, SlotScript::default(), "{sc} slot {slot}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn churn_victims_vary_with_the_seed() {
        let victims: std::collections::HashSet<usize> = (0..32)
            .map(|seed| ChurnPlan::scenario(Scenario::CrashEvict, seed, 8, 5).victim())
            .collect();
        assert!(victims.len() > 1, "32 seeds never varied the churn victim");
    }

    #[test]
    fn join_plans_put_the_joiner_on_the_top_slot() {
        let plan = ChurnPlan::scenario(Scenario::Join, 3, 8, 5);
        assert_eq!(plan.victim(), 7);
        assert_eq!(plan.initial_members(), 7);
        assert!(plan.script(7).join_after.is_some());
        assert!(plan.gate().is_some(), "joins always carry a shepherd gate");
    }
}

//! Declarative, seeded fault plans.

use armbar_simcoh::rng::SplitMix64;

/// One injected fault. Thread-targeted faults name their victim
/// explicitly so a plan is self-describing in test output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The victim's first memory operation is preceded by `delay_ns` of
    /// extra compute: it arrives late at every barrier after that point.
    Straggler { tid: usize, delay_ns: f64 },
    /// The victim's `nth_store` (1-based, counted across its lifetime) is
    /// silently dropped — the classic lost wakeup / lost arrival.
    LostWakeup { tid: usize, nth_store: u64 },
    /// The victim panics when its operation count reaches `after_ops` —
    /// a participant crashing mid-episode.
    Crash { tid: usize, after_ops: u64 },
    /// Every thread's memory operations are preceded by a seeded random
    /// delay in `[0, max_extra_ns)` — OS noise, SMIs, frequency wobble.
    Latency { max_extra_ns: f64 },
}

/// The named fault scenarios of the chaos matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// No faults — the control row of the survival table.
    Baseline,
    /// One seeded victim arrives late.
    Straggler,
    /// All threads see perturbed operation latency.
    Latency,
    /// One seeded victim drops one seeded store.
    LostWakeup,
    /// One seeded victim crashes after a few operations.
    Crash,
}

impl Scenario {
    /// Every scenario, in survival-table row order.
    pub const ALL: [Scenario; 5] = [
        Scenario::Baseline,
        Scenario::Straggler,
        Scenario::Latency,
        Scenario::LostWakeup,
        Scenario::Crash,
    ];

    /// Scenarios a correct barrier must *absorb* (complete despite the
    /// fault), as opposed to ones it can only *detect*.
    pub const SURVIVABLE: [Scenario; 3] =
        [Scenario::Baseline, Scenario::Straggler, Scenario::Latency];

    /// Stable table label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Baseline => "baseline",
            Scenario::Straggler => "straggler",
            Scenario::Latency => "latency",
            Scenario::LostWakeup => "lost-wakeup",
            Scenario::Crash => "crash",
        }
    }

    /// Parses a table label (case-insensitive), for CLI use.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.to_ascii_lowercase();
        Self::ALL.into_iter().find(|sc| sc.label() == s)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A deterministic set of faults to inject into one run. The seed feeds
/// both the plan generation ([`FaultPlan::scenario`]) and the per-thread
/// jitter streams of [`crate::FaultyCtx`], so a `(plan, program)` pair
/// replays bit-identically.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (inject nothing) with the given jitter seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, faults: Vec::new() }
    }

    /// Adds a fault.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The seeded realization of a named scenario for `p` threads: victim
    /// choice and fault parameters are drawn from `seed`, so the same
    /// `(scenario, seed, p)` triple always builds the same plan.
    pub fn scenario(scenario: Scenario, seed: u64, p: usize) -> Self {
        assert!(p >= 1, "need at least one thread");
        // Mix the scenario into the stream so each matrix row draws
        // independent victims from one user-facing seed.
        let mix = (scenario.label().len() as u64) << 56;
        let mut rng = SplitMix64::new(seed ^ mix ^ 0xFA_17);
        let victim = (rng.next_u64() % p as u64) as usize;
        let plan = Self::new(seed);
        match scenario {
            Scenario::Baseline => plan,
            Scenario::Straggler => plan.with(Fault::Straggler {
                tid: victim,
                // 50–150 µs: several barrier episodes long on every modeled
                // machine, far below any sane host deadline.
                delay_ns: 50_000.0 + rng.next_f64() * 100_000.0,
            }),
            Scenario::Latency => {
                plan.with(Fault::Latency { max_extra_ns: 100.0 + rng.next_f64() * 400.0 })
            }
            // Bounds chosen so the fault is guaranteed to fire within a
            // three-episode run of even the leanest algorithm (the central
            // counter does ~2 ops and ≤ 1 store per thread per episode).
            Scenario::LostWakeup => {
                plan.with(Fault::LostWakeup { tid: victim, nth_store: 1 + rng.next_u64() % 3 })
            }
            Scenario::Crash => {
                plan.with(Fault::Crash { tid: victim, after_ops: 2 + rng.next_u64() % 4 })
            }
        }
    }

    /// The jitter seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The planned faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Straggler delay for `tid`, if planned (summed if several).
    pub(crate) fn straggler_delay(&self, tid: usize) -> Option<f64> {
        let total: f64 = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::Straggler { tid: t, delay_ns } if *t == tid => Some(*delay_ns),
                _ => None,
            })
            .sum();
        (total > 0.0).then_some(total)
    }

    /// The store ordinal to drop for `tid`, if planned.
    pub(crate) fn lost_store(&self, tid: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::LostWakeup { tid: t, nth_store } if *t == tid => Some(*nth_store),
            _ => None,
        })
    }

    /// The op count at which `tid` crashes, if planned.
    pub(crate) fn crash_after(&self, tid: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::Crash { tid: t, after_ops } if *t == tid => Some(*after_ops),
            _ => None,
        })
    }

    /// The latency-perturbation amplitude, if planned.
    pub(crate) fn latency_amp(&self) -> Option<f64> {
        self.faults.iter().find_map(|f| match f {
            Fault::Latency { max_extra_ns } => Some(*max_extra_ns),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_in_the_seed() {
        for sc in Scenario::ALL {
            let a = FaultPlan::scenario(sc, 42, 8);
            let b = FaultPlan::scenario(sc, 42, 8);
            assert_eq!(a.faults(), b.faults(), "{sc}");
        }
    }

    #[test]
    fn different_seeds_pick_different_victims_eventually() {
        let victims: std::collections::HashSet<usize> = (0..32)
            .filter_map(|seed| match FaultPlan::scenario(Scenario::Crash, seed, 8).faults()[0] {
                Fault::Crash { tid, .. } => Some(tid),
                _ => None,
            })
            .collect();
        assert!(victims.len() > 1, "32 seeds never varied the victim");
    }

    #[test]
    fn victims_stay_in_range() {
        for seed in 0..64 {
            for p in [1usize, 2, 7, 64] {
                for sc in [Scenario::Straggler, Scenario::LostWakeup, Scenario::Crash] {
                    for f in FaultPlan::scenario(sc, seed, p).faults() {
                        let tid = match f {
                            Fault::Straggler { tid, .. }
                            | Fault::LostWakeup { tid, .. }
                            | Fault::Crash { tid, .. } => *tid,
                            Fault::Latency { .. } => 0,
                        };
                        assert!(tid < p, "{sc} seed {seed}: victim {tid} out of range {p}");
                    }
                }
            }
        }
    }

    #[test]
    fn baseline_plans_nothing() {
        assert!(FaultPlan::scenario(Scenario::Baseline, 7, 4).faults().is_empty());
    }

    #[test]
    fn accessors_filter_by_tid() {
        let plan = FaultPlan::new(0)
            .with(Fault::Straggler { tid: 1, delay_ns: 10.0 })
            .with(Fault::Straggler { tid: 1, delay_ns: 5.0 })
            .with(Fault::LostWakeup { tid: 2, nth_store: 3 })
            .with(Fault::Crash { tid: 0, after_ops: 9 })
            .with(Fault::Latency { max_extra_ns: 50.0 });
        assert_eq!(plan.straggler_delay(1), Some(15.0));
        assert_eq!(plan.straggler_delay(0), None);
        assert_eq!(plan.lost_store(2), Some(3));
        assert_eq!(plan.lost_store(1), None);
        assert_eq!(plan.crash_after(0), Some(9));
        assert_eq!(plan.latency_amp(), Some(50.0));
    }

    #[test]
    fn scenario_labels_round_trip() {
        for sc in Scenario::ALL {
            assert_eq!(Scenario::parse(sc.label()), Some(sc));
            assert_eq!(Scenario::parse(&sc.label().to_uppercase()), Some(sc));
        }
        assert_eq!(Scenario::parse("nonsense"), None);
    }
}

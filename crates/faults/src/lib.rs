//! # armbar-faults — deterministic fault injection for barrier episodes
//!
//! The barriers in this workspace assume that every participant arrives and
//! every wakeup lands. This crate breaks those assumptions *on purpose*,
//! reproducibly, and on **both** backends, by interposing on the
//! [`armbar_core::MemCtx`] trait the algorithms are written against:
//!
//! * [`FaultPlan`] — a seeded, declarative description of what goes wrong:
//!   stragglers (delayed arrival), lost wakeups (dropped stores), crashed
//!   participants (mid-episode panic), and latency perturbation (extra
//!   per-operation delay). Same seed, same faults, every run.
//! * [`FaultyCtx`] — wraps any `&dyn MemCtx` (a simulator thread or a host
//!   context) and injects the plan's faults as the wrapped thread performs
//!   its operations. The barrier under test is byte-for-byte the production
//!   code; only its view of memory misbehaves.
//! * [`harness`] — the chaos matrix: every algorithm × platform × scenario,
//!   deterministic on the simulator (faults surface as typed
//!   `SimError`s) and deadline-guarded on the host (faults surface as
//!   typed `BarrierError`s via `RobustBarrier`), rendered as a survival
//!   table in CSV or JSON.
//!
//! ```
//! use armbar_core::MemCtx;
//! use armbar_faults::{FaultPlan, FaultyCtx, Scenario};
//! use armbar_simcoh::{Arena, SimBuilder};
//! use armbar_topology::{Platform, Topology};
//! use std::sync::Arc;
//!
//! let plan = FaultPlan::scenario(Scenario::Straggler, 0xC4A05, 4);
//! let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
//! let mut arena = Arena::new();
//! let flag = arena.alloc_u32();
//! SimBuilder::new(topo, 4)
//!     .run(move |sim| {
//!         let ctx = FaultyCtx::new(sim, &plan);
//!         // one thread arrives late; the flag still gets everyone through
//!         if ctx.tid() == 0 {
//!             ctx.store(flag, 1);
//!         } else {
//!             ctx.spin_until_ge(flag, 1);
//!         }
//!     })
//!     .unwrap();
//! ```

pub mod ctx;
pub mod harness;
pub mod plan;

pub use ctx::FaultyCtx;
pub use harness::{
    build_phaser, chaos_matrix, chaos_matrix_on, churn_thread, render_csv, render_json,
    silence_injected_crashes, Backend, CellOutcome, ChaosCell, ChaosConfig, ChurnVerdict,
};
pub use plan::{ChurnPlan, Fault, FaultPlan, Scenario, SlotScript};

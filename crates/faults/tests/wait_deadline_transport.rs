//! `RobustBarrier::wait_deadline` outcome tables on the simulator, under
//! every fixed-membership [`Scenario`], pinned to a golden table.
//!
//! The assertion is transport-blind on purpose: CI runs this test under
//! both simulator transports (stackful fibers, the default, and OS
//! threads via `ARMBAR_SIM_FIBERS=0`), and both must reproduce the same
//! bytes — per-thread error typing, first-poisoner attribution, and the
//! crashed slot all included. A transport that reorders detection would
//! change who wins the poison ticket and show up as a diff here.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use armbar_core::registry::AlgorithmId;
use armbar_core::robust::{BarrierError, RobustBarrier, RobustConfig};
use armbar_faults::{silence_injected_crashes, FaultPlan, FaultyCtx, Scenario};
use armbar_simcoh::{Arena, SimBuilder, SimError};
use armbar_topology::{Platform, Topology};

const SEED: u64 = 0xDEAD_0011;
const THREADS: usize = 8;
const EPISODES: u32 = 3;
/// Poll-count deadline: deterministic on the simulator (the wall-clock
/// `Duration` passed to `wait_deadline` stays far away at sim speeds).
const MAX_POLLS: u64 = 20_000;

/// Runs one (algorithm, scenario) cell and returns the per-tid outcome
/// labels, plus the run-level result label.
fn run_cell(algorithm: AlgorithmId, scenario: Scenario) -> (Vec<String>, String) {
    let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
    let mut arena = Arena::new();
    let inner = algorithm.build(&mut arena, THREADS, &topo);
    let robust = Arc::new(RobustBarrier::new(
        &mut arena,
        topo.cacheline_bytes(),
        inner,
        RobustConfig { max_polls: Some(MAX_POLLS), ..RobustConfig::default() },
    ));
    let plan = FaultPlan::scenario(scenario, SEED, THREADS);
    let verdicts = Arc::new(Mutex::new(vec![String::new(); THREADS]));
    let result = SimBuilder::new(Arc::clone(&topo), THREADS).seed(SEED).run({
        let robust = Arc::clone(&robust);
        let verdicts = Arc::clone(&verdicts);
        move |sim| {
            let ctx = FaultyCtx::new(sim, &plan);
            let tid = sim.tid();
            for e in 0..EPISODES {
                match robust.wait_deadline(&ctx, Duration::from_secs(5)) {
                    Ok(()) => {}
                    Err(err) => {
                        let label = match err {
                            BarrierError::Timeout { .. } => format!("timeout@e{e}"),
                            BarrierError::Poisoned { by, .. } => {
                                format!("poisoned-by-t{by}@e{e}")
                            }
                            BarrierError::Evicted { .. } => unreachable!("fixed membership"),
                        };
                        verdicts.lock().unwrap()[tid] = label;
                        return;
                    }
                }
            }
            verdicts.lock().unwrap()[tid] = "ok".to_string();
        }
    });
    let run = match &result {
        Ok(_) => "completed".to_string(),
        Err(SimError::ThreadPanic { tid, .. }) => {
            // The scripted crash: the victim's own slot never records.
            verdicts.lock().unwrap()[*tid] = "crashed".to_string();
            format!("panic-t{tid}")
        }
        Err(other) => format!("{other:?}"),
    };
    // A panic aborts the episode engine-side; peers cut off mid-episode
    // record nothing — render those slots as `-`.
    let v = verdicts
        .lock()
        .unwrap()
        .iter()
        .map(|s| if s.is_empty() { "-".to_string() } else { s.clone() })
        .collect();
    (v, run)
}

fn outcome_table() -> String {
    silence_injected_crashes();
    let mut out = String::from("algorithm,scenario,run,per-tid\n");
    for algorithm in [AlgorithmId::Sense, AlgorithmId::Stour] {
        for scenario in Scenario::ALL {
            let (verdicts, run) = run_cell(algorithm, scenario);
            out.push_str(&format!(
                "{},{},{},{}\n",
                algorithm.label(),
                scenario.label(),
                run,
                verdicts.join("|")
            ));
        }
    }
    out
}

#[test]
fn wait_deadline_outcome_table_is_golden_on_any_transport() {
    let table = outcome_table();
    print!("{table}");
    assert_eq!(table, GOLDEN, "outcome table diverged from the golden table");
}

/// Regenerate by running this test with `--nocapture` and pasting stdout.
///
/// Reading the table: the poll deadline (20k polls) is deliberately tight,
/// so even the *survivable* straggler trips it — every scenario becomes a
/// deadline exercise, which is the point (survivability itself is covered
/// by the chaos harness, with its unbounded sim waits). The straggler rows
/// pin first-poisoner attribution: exactly one `timeout` (the first
/// detector by virtual time), everyone else `poisoned-by` that winner.
const GOLDEN: &str = "\
algorithm,scenario,run,per-tid
SENSE,baseline,completed,ok|ok|ok|ok|ok|ok|ok|ok
SENSE,straggler,completed,poisoned-by-t6@e0|poisoned-by-t6@e0|poisoned-by-t6@e0|poisoned-by-t6@e0|poisoned-by-t6@e0|poisoned-by-t6@e0|timeout@e0|poisoned-by-t6@e0
SENSE,latency,completed,ok|ok|ok|ok|ok|ok|ok|ok
SENSE,lost-wakeup,completed,ok|ok|ok|ok|ok|ok|ok|ok
SENSE,crash,panic-t3,-|-|-|crashed|-|-|-|-
STOUR,baseline,completed,ok|ok|ok|ok|ok|ok|ok|ok
STOUR,straggler,completed,poisoned-by-t7@e0|poisoned-by-t7@e0|poisoned-by-t7@e0|poisoned-by-t7@e0|poisoned-by-t7@e0|poisoned-by-t7@e0|poisoned-by-t7@e0|timeout@e0
STOUR,latency,completed,ok|ok|ok|ok|ok|ok|ok|ok
STOUR,lost-wakeup,completed,poisoned-by-t3@e0|poisoned-by-t3@e0|poisoned-by-t3@e0|timeout@e0|poisoned-by-t3@e0|poisoned-by-t3@e0|poisoned-by-t3@e0|poisoned-by-t3@e0
STOUR,crash,panic-t3,-|-|-|crashed|-|-|-|-
";

//! Subcommand implementations and flag parsing for the `armbar` CLI.

use std::sync::Arc;

use armbar_conformance::{
    conform_matrix_on, phaser_conform_matrix_on, ConformConfig, PhaserConformConfig,
};
use armbar_core::prelude::*;
use armbar_epcc::{
    latency_table, phase_breakdown, sim_overhead_ns, trace_episodes, EpisodeTrace, OverheadConfig,
};
use armbar_faults::{chaos_matrix_on, render_csv, render_json, Backend, ChaosConfig, Scenario};
use armbar_model::{optimal_fanin_int, recommend_wakeup, WakeupChoice};
use armbar_simcoh::{Arena, SimError};
use armbar_sweep::{Job, SweepPool};
use armbar_topology::{Platform, Topology};

/// Top-level usage text.
pub const USAGE: &str = "\
armbar — barrier synchronization toolkit (CLUSTER'21 reproduction)

USAGE:
  armbar platforms
      List the built-in machine models.
  armbar latency <platform>
      Regenerate the machine's core-to-core latency table (Tables I-III).
  armbar sweep <platform> [--threads N,N,...] [--algos NAME,NAME,...] [--jobs N]
      Simulated barrier overhead per algorithm and thread count. The
      default set includes the shyper contender barriers (SHY-CTR,
      SHY-PROXY) alongside the paper algorithms.
  armbar recommend <platform> [--threads N]
      Model-driven configuration (fan-in, wake-up) with validation runs.
  armbar phases <platform> [--threads N]
      Arrival/notification phase breakdown of the marked algorithms.
  armbar trace <platform> [--algorithm NAME[,NAME,...]] [--threads N]
               [--episodes N] [--jobs N] [--format csv|json] [--out FILE]
      Per-episode arrival/notification timings plus coherence-op counter
      deltas (local/remote reads, RFO invalidation fan-out, stalls) as
      structured CSV or JSON. Several algorithms trace concurrently.
  armbar chaos [--churn] [--platforms NAME,...] [--algos NAME,...]
               [--scenarios NAME,...] [--backend sim|host|both] [--threads N]
               [--episodes N] [--seed N] [--deadline-ms N] [--jobs N]
               [--format csv|json] [--out FILE]
      Fault-injection survival table: every algorithm x platform under
      seeded straggler / latency / lost-wakeup / crash scenarios —
      deterministic on the simulator, deadline-guarded on the host.
      --churn switches to the membership-churn preset: both phasers under
      the join / leave / crash-evict / flap scenarios, with recovered /
      degraded / poisoned outcomes.
  armbar conform [--quick] [--phasers] [--platforms NAME,...]
                 [--algos NAME,...] [--scenarios NAME,...] [--threads N]
                 [--episodes N] [--seeds N] [--schedule-seed N] [--budget N]
                 [--jobs N] [--format csv|json] [--out FILE]
      Schedule-exploring conformance check: each (platform, algorithm)
      cell is driven through --seeds seeded, perturbed interleavings and
      audited by safety oracles (no early exit, epoch consistency, no
      lost wake-up, quiescence). Violations ship a shrunk deterministic
      reproducer and make the command exit nonzero. --quick = all 14
      algorithms plus the SHY-CTR/SHY-PROXY contenders on Kunpeng920 at
      8 threads, 1200 seeds per cell.
      --phasers searches register/deregister interleavings of the dynamic
      phasers under churn scripts instead, auditing the membership oracles
      (no lost member, no phantom arrival), 800 seeds per cell by default.
  armbar serve [--teams N] [--members N] [--episodes N] [--shards N]
               [--seed N] [--zipf S] [--drop-frac F] [--jobs N]
               [--format csv|json] [--out FILE]
      Barrier-as-a-service load replay: drives a seeded Zipf-skewed
      multi-tenant episode plan (with scripted connection drops) through
      the sharded coordination server and emits the per-tenant metrics
      table (episodes, arrivals, proxy arrivals, drops, final status) as
      CSV or JSON. The table is byte-identical at any --shards/--jobs;
      wall-clock aggregates (episodes/sec, latency percentiles, wakeup
      batching counters) go to stderr.

Sweeps fan out over min(--jobs | ARMBAR_JOBS, available cores) workers;
results are byte-identical at any worker count (host-backend cells always
run serially — they measure wall time). Platforms match case-insensitively
ignoring punctuation, as a positional argument or via --platform: phytium,
thunderx2, kunpeng920, xeon.";

/// Parses `--flag value` style options out of `rest`; returns the value.
fn flag_value(rest: &[String], flag: &str) -> Option<String> {
    rest.iter().position(|a| a == flag).and_then(|i| rest.get(i + 1).cloned())
}

/// Lowercases and strips punctuation so `phytium2000p` matches the label
/// "Phytium 2000+".
fn normalize(s: &str) -> String {
    s.chars().filter(char::is_ascii_alphanumeric).collect::<String>().to_ascii_lowercase()
}

fn parse_platform(rest: &[String]) -> Result<Platform, String> {
    let name = flag_value(rest, "--platform")
        .or_else(|| rest.first().cloned())
        .ok_or_else(|| "missing <platform> argument".to_string())?;
    let name = normalize(&name);
    Platform::EVERY
        .into_iter()
        .find(|p| {
            let label = normalize(p.label());
            !name.is_empty() && (label.contains(&name) || name.contains(&label))
        })
        .ok_or_else(|| {
            format!(
                "unknown platform {name:?}; known: {}",
                Platform::EVERY.map(|p| p.label()).join(", ")
            )
        })
}

fn parse_threads(rest: &[String], default: &[usize], max: usize) -> Result<Vec<usize>, String> {
    let Some(spec) = flag_value(rest, "--threads") else {
        return Ok(default.iter().copied().filter(|&p| p <= max).collect());
    };
    let mut out = Vec::new();
    for part in spec.split(',') {
        let p: usize = part.trim().parse().map_err(|_| format!("bad thread count {part:?}"))?;
        if p == 0 || p > max {
            return Err(format!("thread count {p} out of range 1..={max}"));
        }
        out.push(p);
    }
    if out.is_empty() {
        return Err("--threads needs at least one value".into());
    }
    Ok(out)
}

/// `--jobs N` → a pool of `min(N, available cores)` workers; without the
/// flag, the ambient pool (`ARMBAR_JOBS` or all cores).
fn parse_pool(rest: &[String]) -> Result<SweepPool, String> {
    match flag_value(rest, "--jobs") {
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(SweepPool::new(n.min(armbar_sweep::available_parallelism()))),
            _ => Err(format!("bad --jobs value {s:?} (need a positive integer)")),
        },
        None => Ok(SweepPool::ambient()),
    }
}

fn parse_algos(rest: &[String]) -> Result<Vec<AlgorithmId>, String> {
    let Some(spec) = flag_value(rest, "--algos") else {
        return Ok(AlgorithmId::SEVEN
            .into_iter()
            .chain([AlgorithmId::LlvmHyper, AlgorithmId::Optimized])
            .chain(AlgorithmId::CONTENDERS)
            .collect());
    };
    let mut out = Vec::new();
    for part in spec.split(',') {
        let id = AlgorithmId::parse(part.trim())
            .ok_or_else(|| format!("unknown algorithm {part:?} (try SENSE, DIS, CMB, MCS, TOUR, STOUR, DTOUR, LLVM, OPT, HYBRID, NDIS, RING, SHY-CTR, SHY-PROXY)"))?;
        out.push(id);
    }
    Ok(out)
}

/// `armbar platforms`
pub fn platforms() -> Result<(), String> {
    for p in Platform::EVERY {
        let t = Topology::preset(p);
        println!(
            "{:18} {:3} cores, N_c = {:2}, {}-byte lines, {} latency layers",
            t.name(),
            t.num_cores(),
            t.n_c(),
            t.cacheline_bytes(),
            t.layers().len()
        );
    }
    Ok(())
}

/// `armbar latency <platform>`
pub fn latency(rest: &[String]) -> Result<(), String> {
    let platform = parse_platform(rest)?;
    let topo = Arc::new(Topology::preset(platform));
    println!("core-to-core latencies on {} (ns):", topo.name());
    println!("{:>6}  {:24} {:>10} {:>10}", "layer", "description", "table", "measured");
    for row in latency_table(&topo) {
        println!(
            "{:>6}  {:24} {:>10.2} {:>10.2}",
            row.layer.to_string(),
            row.name,
            row.expected_ns,
            row.measured_ns
        );
    }
    Ok(())
}

/// `armbar sweep <platform> [--threads ...] [--algos ...] [--jobs N]`
pub fn sweep(rest: &[String]) -> Result<(), String> {
    let platform = parse_platform(rest)?;
    let topo = Arc::new(Topology::preset(platform));
    let threads = parse_threads(rest, &[2, 4, 8, 16, 32, 64], topo.num_cores())?;
    let algos = parse_algos(rest)?;
    let pool = parse_pool(rest)?;

    // One independent simulation per (threads × algorithm) cell, fanned
    // out over the pool; results come back in submission (row-major)
    // order, so the table prints exactly as the serial path would.
    let topo_ref = &topo;
    let jobs: Vec<Job<'_, Result<f64, SimError>>> = threads
        .iter()
        .flat_map(|&p| {
            algos.iter().map(move |&id| {
                Job::parallel(move || sim_overhead_ns(topo_ref, p, id, OverheadConfig::default()))
            })
        })
        .collect();
    let mut cells = pool.run(jobs).into_iter();

    println!("barrier overhead (us/episode) on simulated {}:", topo.name());
    print!("{:>8}", "threads");
    for id in &algos {
        print!("{:>11}", id.label());
    }
    println!();
    for &p in &threads {
        print!("{p:>8}");
        for _ in &algos {
            let ns = cells.next().expect("cell count mismatch").map_err(|e| e.to_string())?;
            print!("{:>11.2}", ns / 1000.0);
        }
        println!();
    }
    Ok(())
}

/// `armbar recommend <platform> [--threads N]`
pub fn recommend(rest: &[String]) -> Result<(), String> {
    let platform = parse_platform(rest)?;
    let topo = Arc::new(Topology::preset(platform));
    let p = parse_threads(rest, &[topo.num_cores()], topo.num_cores())?[0];

    let f = optimal_fanin_int(&topo, p);
    let wake = match recommend_wakeup(&topo, p) {
        WakeupChoice::Global => WakeupKind::Global,
        WakeupChoice::Tree => {
            if topo.num_clusters() > 1 {
                WakeupKind::NumaTree
            } else {
                WakeupKind::BinaryTree
            }
        }
    };
    println!("{} at {p} threads:", topo.name());
    println!("  model-optimal fan-in:  {f}");
    println!("  recommended wake-up:   {}", wake.label());

    // Validate against the machine default and the GCC baseline.
    let opt = sim_overhead_ns(&topo, p, AlgorithmId::Optimized, OverheadConfig::default())
        .map_err(|e| e.to_string())?;
    let gcc = sim_overhead_ns(&topo, p, AlgorithmId::Sense, OverheadConfig::default())
        .map_err(|e| e.to_string())?;
    println!("  optimized barrier:     {:.2} us/episode", opt / 1000.0);
    println!("  GCC-style barrier:     {:.2} us/episode ({:.1}x)", gcc / 1000.0, gcc / opt);
    Ok(())
}

/// `armbar phases <platform> [--threads N]`
pub fn phases(rest: &[String]) -> Result<(), String> {
    let platform = parse_platform(rest)?;
    let topo = Arc::new(Topology::preset(platform));
    let p = parse_threads(rest, &[topo.num_cores()], topo.num_cores())?[0];

    println!("phase breakdown on {} at {p} threads (us):", topo.name());
    println!("{:>10} {:>10} {:>14}", "algorithm", "arrival", "notification");
    for id in
        [AlgorithmId::Sense, AlgorithmId::Stour, AlgorithmId::Padded4Way, AlgorithmId::Optimized]
    {
        let mut arena = Arena::new();
        let barrier: Arc<dyn Barrier> = Arc::from(id.build(&mut arena, p, &topo));
        match phase_breakdown(&topo, p, barrier, 4).map_err(|e| e.to_string())? {
            Some(b) => println!(
                "{:>10} {:>10.2} {:>14.2}",
                id.label(),
                b.arrival_ns / 1000.0,
                b.notification_ns / 1000.0
            ),
            None => println!("{:>10} (no phase marks)", id.label()),
        }
    }
    Ok(())
}

/// `armbar trace <platform> [--algorithm NAME[,NAME,...]] [--threads N]
/// [--episodes N] [--jobs N] [--format csv|json] [--out FILE]`
pub fn trace(rest: &[String]) -> Result<(), String> {
    let platform = parse_platform(rest)?;
    let topo = Arc::new(Topology::preset(platform));
    let p = parse_threads(rest, &[topo.num_cores()], topo.num_cores())?[0];
    let algos = match flag_value(rest, "--algorithm").or_else(|| flag_value(rest, "--algo")) {
        Some(spec) => {
            let mut out = Vec::new();
            for part in spec.split(',') {
                out.push(AlgorithmId::parse(part.trim()).ok_or_else(|| {
                    format!("unknown algorithm {part:?} (try SENSE, DIS, OPT, ...)")
                })?);
            }
            out
        }
        None => vec![AlgorithmId::Optimized],
    };
    let episodes: u32 = match flag_value(rest, "--episodes") {
        Some(s) => s.parse().map_err(|_| format!("bad episode count {s:?}"))?,
        None => 8,
    };
    if episodes == 0 {
        return Err("--episodes must be at least 1".into());
    }
    let format = flag_value(rest, "--format").unwrap_or_else(|| "csv".into());
    if format != "csv" && format != "json" {
        return Err(format!("unknown format {format:?} (expected csv or json)"));
    }
    let pool = parse_pool(rest)?;

    // One deterministic simulation per algorithm; concurrent traces
    // cannot perturb each other, and output order follows the flag order.
    let cfg = OverheadConfig { episodes, ..OverheadConfig::default() };
    let topo_ref = &topo;
    let jobs: Vec<Job<'_, Result<Vec<EpisodeTrace>, String>>> = algos
        .iter()
        .map(|&algo| {
            Job::parallel(move || {
                let mut arena = Arena::new();
                let barrier: Arc<dyn Barrier> = Arc::from(algo.build(&mut arena, p, topo_ref));
                trace_episodes(topo_ref, p, barrier, cfg).map_err(|e| e.to_string())
            })
        })
        .collect();
    let per_algo: Vec<Vec<EpisodeTrace>> = pool.run(jobs).into_iter().collect::<Result<_, _>>()?;

    let text = if format == "csv" {
        // Multiple algorithms concatenate as self-describing CSV blocks
        // (each carries its own `#` provenance header).
        algos
            .iter()
            .zip(&per_algo)
            .map(|(&algo, traces)| trace_csv(&topo, p, algo, traces))
            .collect::<String>()
    } else if let ([algo], [traces]) = (algos.as_slice(), per_algo.as_slice()) {
        trace_json(&topo, p, *algo, traces)
    } else {
        // Multiple algorithms become a JSON array of the per-algorithm
        // documents.
        let docs: Vec<String> = algos
            .iter()
            .zip(&per_algo)
            .map(|(&algo, traces)| trace_json(&topo, p, algo, traces).trim_end().to_string())
            .collect();
        format!("[\n{}\n]\n", docs.join(",\n"))
    };
    let total: usize = per_algo.iter().map(Vec::len).sum();
    match flag_value(rest, "--out") {
        Some(path) => {
            std::fs::write(&path, &text).map_err(|e| format!("writing {path:?}: {e}"))?;
            eprintln!("wrote {total} episodes to {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// `armbar chaos [--platforms ...] [--algos ...] [--scenarios ...]
/// [--backend sim|host|both] [--threads N] [--episodes N] [--seed N]
/// [--deadline-ms N] [--jobs N] [--format csv|json] [--out FILE]`
pub fn chaos(rest: &[String]) -> Result<(), String> {
    // `--churn` swaps in the membership-churn preset (both phasers under
    // the churn scenarios); every explicit flag still overrides it.
    let churn = rest.iter().any(|a| a == "--churn");
    let defaults = if churn { ChaosConfig::churn() } else { ChaosConfig::default() };

    let platforms = match flag_value(rest, "--platforms").or_else(|| flag_value(rest, "--platform"))
    {
        Some(spec) => {
            let mut out = Vec::new();
            for part in spec.split(',') {
                out.push(parse_platform(&[part.trim().to_string()])?);
            }
            out
        }
        // Default: the three ARM machines of the paper (churn cells are
        // membership-driven, so one machine model suffices there).
        None if churn => defaults.platforms.clone(),
        None => Platform::ARM.to_vec(),
    };
    let algorithms = if flag_value(rest, "--algos").is_some() {
        parse_algos(rest)?
    } else {
        defaults.algorithms.clone()
    };
    let scenarios = match flag_value(rest, "--scenarios") {
        Some(spec) => {
            let mut out = Vec::new();
            for part in spec.split(',') {
                let sc = Scenario::parse(part.trim()).ok_or_else(|| {
                    format!(
                        "unknown scenario {part:?} (known: {})",
                        Scenario::ALL
                            .into_iter()
                            .chain(Scenario::CHURN)
                            .map(Scenario::label)
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?;
                out.push(sc);
            }
            out
        }
        None => defaults.scenarios.clone(),
    };
    let backends = match flag_value(rest, "--backend").as_deref() {
        None => vec![Backend::Sim],
        Some("both") => Backend::ALL.to_vec(),
        Some(s) => vec![Backend::parse(s)
            .ok_or_else(|| format!("unknown backend {s:?} (expected sim, host, or both)"))?],
    };
    let threads = match flag_value(rest, "--threads") {
        Some(s) => match s.parse() {
            Ok(0) | Err(_) => return Err(format!("bad thread count {s:?} (need at least 1)")),
            Ok(n) => n,
        },
        None => defaults.threads,
    };
    let episodes = match flag_value(rest, "--episodes") {
        Some(s) => match s.parse() {
            Ok(0) | Err(_) => return Err(format!("bad episode count {s:?} (need at least 1)")),
            Ok(n) => n,
        },
        None => defaults.episodes,
    };
    let seed = match flag_value(rest, "--seed") {
        Some(s) => match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => s.parse(),
        }
        .map_err(|_| format!("bad seed {s:?}"))?,
        None => defaults.seed,
    };
    let deadline = match flag_value(rest, "--deadline-ms") {
        Some(s) => match s.parse() {
            Ok(0) | Err(_) => return Err(format!("bad deadline {s:?} (need at least 1 ms)")),
            Ok(ms) => std::time::Duration::from_millis(ms),
        },
        None => defaults.deadline,
    };
    let config = ChaosConfig {
        platforms,
        algorithms,
        scenarios,
        backends,
        threads,
        episodes,
        seed,
        deadline,
    };
    let format = flag_value(rest, "--format").unwrap_or_else(|| "csv".into());
    if format != "csv" && format != "json" {
        return Err(format!("unknown format {format:?} (expected csv or json)"));
    }
    let pool = parse_pool(rest)?;

    let cells = chaos_matrix_on(&pool, &config);
    let text =
        if format == "csv" { render_csv(&cells, &config) } else { render_json(&cells, &config) };
    match flag_value(rest, "--out") {
        Some(path) => {
            std::fs::write(&path, &text).map_err(|e| format!("writing {path:?}: {e}"))?;
            eprintln!("wrote {} chaos cells to {path}", cells.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// `armbar conform [--quick] [--weak] [--platforms ...] [--algos ...]
/// [--threads N] [--episodes N] [--seeds N] [--schedule-seed N]
/// [--budget N] [--reorder-budget N] [--fence-report FILE] [--jobs N]
/// [--format csv|json] [--out FILE]`
///
/// `--weak` turns on the bounded weak-memory search (reordering budget 64
/// per trial) and extends the sweep to the phasers: the fixed-membership
/// matrix runs first, then the churn matrix, both under the same
/// reordering explorer. `--reorder-budget N` sets the budget explicitly
/// (without `--weak`, the default 0 keeps the engine sequentially
/// consistent). `--fence-report FILE` additionally runs the
/// fence-minimization matrix (`--fence-seeds N` seeds per demotion
/// level) and writes its Markdown report.
///
/// Exits nonzero (after writing the table) if any cell records a
/// violation, so CI can gate on it directly.
pub fn conform(rest: &[String]) -> Result<(), String> {
    if rest.iter().any(|a| a == "--phasers") {
        return conform_phasers(rest);
    }
    let quick = rest.iter().any(|a| a == "--quick");
    let weak = rest.iter().any(|a| a == "--weak");
    let mut config = ConformConfig::default();
    if quick {
        // The acceptance sweep: every algorithm, ≥1000 distinct schedules
        // per cell.
        config.seeds = 1200;
    }
    if weak {
        config.explorer =
            armbar_conformance::ExplorerConfig { reorder_prob: 0.8, ..config.explorer }
                .with_reorder_budget(64);
    }

    if let Some(spec) = flag_value(rest, "--platforms").or_else(|| flag_value(rest, "--platform")) {
        let mut out = Vec::new();
        for part in spec.split(',') {
            out.push(parse_platform(&[part.trim().to_string()])?);
        }
        config.platforms = out;
    }
    if flag_value(rest, "--algos").is_some() {
        config.algorithms = parse_algos(rest)?;
    }
    if let Some(s) = flag_value(rest, "--threads") {
        config.threads = match s.parse() {
            Ok(0) | Err(_) => return Err(format!("bad thread count {s:?} (need at least 1)")),
            Ok(n) => n,
        };
    }
    if let Some(s) = flag_value(rest, "--episodes") {
        config.episodes = match s.parse() {
            Ok(0) | Err(_) => return Err(format!("bad episode count {s:?} (need at least 1)")),
            Ok(n) => n,
        };
    }
    if let Some(s) = flag_value(rest, "--seeds") {
        config.seeds = match s.parse() {
            Ok(0) | Err(_) => return Err(format!("bad seed count {s:?} (need at least 1)")),
            Ok(n) => n,
        };
    }
    if let Some(s) = flag_value(rest, "--schedule-seed") {
        config.base_seed = match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => s.parse(),
        }
        .map_err(|_| format!("bad --schedule-seed {s:?}"))?;
    }
    if let Some(s) = flag_value(rest, "--budget") {
        let budget = s.parse().map_err(|_| format!("bad --budget {s:?}"))?;
        config.explorer = config.explorer.with_budget(budget);
    }
    if let Some(s) = flag_value(rest, "--reorder-budget") {
        let rb = s.parse().map_err(|_| format!("bad --reorder-budget {s:?}"))?;
        config.explorer = config.explorer.with_reorder_budget(rb);
    }
    let fence_seeds = match flag_value(rest, "--fence-seeds") {
        Some(s) => match s.parse() {
            Ok(0) | Err(_) => return Err(format!("bad --fence-seeds {s:?} (need at least 1)")),
            Ok(n) => Some(n),
        },
        None => None,
    };
    let format = flag_value(rest, "--format").unwrap_or_else(|| "csv".into());
    if format != "csv" && format != "json" {
        return Err(format!("unknown format {format:?} (expected csv or json)"));
    }
    let pool = parse_pool(rest)?;

    let cells = conform_matrix_on(&pool, &config);
    let mut text = if format == "csv" {
        armbar_conformance::render_csv(&cells, &config)
    } else {
        armbar_conformance::render_json(&cells, &config)
    };

    let mut violated: Vec<String> = cells
        .iter()
        .filter(|c| !c.violations.is_empty())
        .map(|c| format!("{} on {}: {}", c.algorithm.label(), c.platform.label(), c.detail()))
        .collect();

    // Under --weak the phasers ride along: dynamic membership is where
    // a reordered arrival or eviction store does the most damage.
    let mut phaser_cell_count = 0;
    if weak {
        let mut pconfig = PhaserConformConfig {
            platforms: config.platforms.clone(),
            explorer: config.explorer,
            threads: config.threads.max(2),
            ..PhaserConformConfig::default()
        };
        if let Some(s) = flag_value(rest, "--seeds") {
            pconfig.seeds = s.parse().map_err(|_| format!("bad seed count {s:?}"))?;
        }
        if let Some(s) = flag_value(rest, "--schedule-seed") {
            pconfig.base_seed = match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            }
            .map_err(|_| format!("bad --schedule-seed {s:?}"))?;
        }
        let pcells = phaser_conform_matrix_on(&pool, &pconfig);
        phaser_cell_count = pcells.len();
        text.push_str(&if format == "csv" {
            armbar_conformance::render_phaser_csv(&pcells, &pconfig)
        } else {
            armbar_conformance::render_phaser_json(&pcells, &pconfig)
        });
        violated.extend(pcells.iter().filter(|c| !c.violations.is_empty()).map(|c| {
            format!(
                "{} under {} on {}: {}",
                c.algorithm.label(),
                c.scenario.label(),
                c.platform.label(),
                c.detail()
            )
        }));
    }

    match flag_value(rest, "--out") {
        Some(path) => {
            std::fs::write(&path, &text).map_err(|e| format!("writing {path:?}: {e}"))?;
            eprintln!("wrote {} conformance cells to {path}", cells.len() + phaser_cell_count);
        }
        None => print!("{text}"),
    }

    if let Some(path) = flag_value(rest, "--fence-report") {
        let mut fcfg = armbar_conformance::FenceConfig {
            platforms: config.platforms.clone(),
            algorithms: config.algorithms.clone(),
            threads: config.threads,
            ..armbar_conformance::FenceConfig::default()
        };
        if let Some(n) = fence_seeds {
            fcfg.seeds = n;
        }
        let fcells = armbar_conformance::fence_matrix_on(&pool, &fcfg);
        let md = armbar_conformance::render_fence_markdown(&fcells, &fcfg);
        std::fs::write(&path, &md).map_err(|e| format!("writing {path:?}: {e}"))?;
        eprintln!("wrote fence report ({} cells) to {path}", fcells.len());
        violated.extend(fcells.iter().filter(|c| c.weakest_passing().is_none()).map(|c| {
            format!(
                "{} on {}: shipped fence placement VIOLATED (see {path})",
                c.algorithm.label(),
                c.platform.label()
            )
        }));
    }

    if violated.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} cell(s) violated the safety oracles:\n  {}",
            violated.len(),
            violated.join("\n  ")
        ))
    }
}

/// `armbar conform --phasers [--platforms ...] [--algos ...]
/// [--scenarios ...] [--threads N] [--episodes N] [--seeds N]
/// [--schedule-seed N] [--budget N] [--jobs N] [--format csv|json]
/// [--out FILE]`
///
/// The dynamic-membership arm of `conform`: searches
/// register/deregister/eviction interleavings of the phasers under seeded
/// churn scripts and audits the membership oracles. Exits nonzero on any
/// violation, with a shrunk reproducer in the table.
fn conform_phasers(rest: &[String]) -> Result<(), String> {
    let mut config = PhaserConformConfig::default();
    if rest.iter().any(|a| a == "--weak") {
        config.explorer =
            armbar_conformance::ExplorerConfig { reorder_prob: 0.8, ..config.explorer }
                .with_reorder_budget(64);
    }

    if let Some(spec) = flag_value(rest, "--platforms").or_else(|| flag_value(rest, "--platform")) {
        let mut out = Vec::new();
        for part in spec.split(',') {
            out.push(parse_platform(&[part.trim().to_string()])?);
        }
        config.platforms = out;
    }
    if flag_value(rest, "--algos").is_some() {
        let algos = parse_algos(rest)?;
        if let Some(bad) = algos.iter().find(|a| !AlgorithmId::PHASERS.contains(a)) {
            return Err(format!(
                "{} has fixed membership; --phasers audits {}",
                bad.label(),
                AlgorithmId::PHASERS.map(|a| a.label()).join(", ")
            ));
        }
        config.algorithms = algos;
    }
    if let Some(spec) = flag_value(rest, "--scenarios") {
        let mut out = Vec::new();
        for part in spec.split(',') {
            let sc = Scenario::parse(part.trim())
                .filter(|sc| Scenario::CHURN.contains(sc))
                .ok_or_else(|| {
                    format!(
                        "unknown churn scenario {part:?} (known: {})",
                        Scenario::CHURN.map(Scenario::label).join(", ")
                    )
                })?;
            out.push(sc);
        }
        config.scenarios = out;
    }
    if let Some(s) = flag_value(rest, "--threads") {
        config.threads = match s.parse() {
            Ok(0) | Ok(1) | Err(_) => {
                return Err(format!("bad thread count {s:?} (churn needs at least 2)"))
            }
            Ok(n) => n,
        };
    }
    if let Some(s) = flag_value(rest, "--episodes") {
        config.episodes = match s.parse() {
            Ok(0) | Err(_) => return Err(format!("bad episode count {s:?} (need at least 1)")),
            Ok(n) => n,
        };
    }
    if let Some(s) = flag_value(rest, "--seeds") {
        config.seeds = match s.parse() {
            Ok(0) | Err(_) => return Err(format!("bad seed count {s:?} (need at least 1)")),
            Ok(n) => n,
        };
    }
    if let Some(s) = flag_value(rest, "--schedule-seed") {
        config.base_seed = match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => s.parse(),
        }
        .map_err(|_| format!("bad --schedule-seed {s:?}"))?;
    }
    if let Some(s) = flag_value(rest, "--budget") {
        let budget = s.parse().map_err(|_| format!("bad --budget {s:?}"))?;
        config.explorer = config.explorer.with_budget(budget);
    }
    if let Some(s) = flag_value(rest, "--reorder-budget") {
        let rb = s.parse().map_err(|_| format!("bad --reorder-budget {s:?}"))?;
        config.explorer = config.explorer.with_reorder_budget(rb);
    }
    let format = flag_value(rest, "--format").unwrap_or_else(|| "csv".into());
    if format != "csv" && format != "json" {
        return Err(format!("unknown format {format:?} (expected csv or json)"));
    }
    let pool = parse_pool(rest)?;

    let cells = phaser_conform_matrix_on(&pool, &config);
    let text = if format == "csv" {
        armbar_conformance::render_phaser_csv(&cells, &config)
    } else {
        armbar_conformance::render_phaser_json(&cells, &config)
    };
    match flag_value(rest, "--out") {
        Some(path) => {
            std::fs::write(&path, &text).map_err(|e| format!("writing {path:?}: {e}"))?;
            eprintln!("wrote {} phaser conformance cells to {path}", cells.len());
        }
        None => print!("{text}"),
    }

    let violated: Vec<String> = cells
        .iter()
        .filter(|c| !c.violations.is_empty())
        .map(|c| {
            format!(
                "{} under {} on {}: {}",
                c.algorithm.label(),
                c.scenario.label(),
                c.platform.label(),
                c.detail()
            )
        })
        .collect();
    if violated.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} cell(s) violated the membership oracles:\n  {}",
            violated.len(),
            violated.join("\n  ")
        ))
    }
}

/// Column order shared by the CSV header and both renderers.
const TRACE_COLUMNS: &str = "episode,arrival_ns,notification_ns,total_ns,\
local_reads,remote_reads,reader_contention,local_writes,remote_writes,\
rfo_invalidations,read_stalls,write_stalls,read_stall_ns,write_stall_ns,spin_wakeups";

fn trace_csv(topo: &Topology, p: usize, algo: AlgorithmId, traces: &[EpisodeTrace]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# trace: {} on {} at {p} threads, {} measured episodes\n",
        algo.label(),
        topo.name(),
        traces.len()
    ));
    out.push_str(
        "# times are ns of simulated virtual time; counters are machine-wide per-episode deltas\n",
    );
    out.push_str(TRACE_COLUMNS);
    out.push('\n');
    for t in traces {
        let c = &t.counters;
        let opt = |v: Option<f64>| v.map(|x| format!("{x:.1}")).unwrap_or_default();
        out.push_str(&format!(
            "{},{},{},{:.1},{},{},{},{},{},{},{},{},{:.1},{:.1},{}\n",
            t.episode,
            opt(t.arrival_ns()),
            opt(t.notification_ns()),
            t.total_ns(),
            c.local_reads,
            c.remote_reads,
            c.reader_contention_events,
            c.local_writes,
            c.remote_writes,
            c.rfo_invalidations,
            c.read_stalls,
            c.write_stalls,
            c.read_stall_ns,
            c.write_stall_ns,
            c.spin_wakeups
        ));
    }
    out
}

fn trace_json(topo: &Topology, p: usize, algo: AlgorithmId, traces: &[EpisodeTrace]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"platform\": \"{}\",\n", topo.name()));
    out.push_str(&format!("  \"algorithm\": \"{}\",\n", algo.label()));
    out.push_str(&format!("  \"threads\": {p},\n"));
    out.push_str("  \"episodes\": [\n");
    for (i, t) in traces.iter().enumerate() {
        let c = &t.counters;
        let opt = |v: Option<f64>| v.map(|x| format!("{x:.1}")).unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "    {{\"episode\": {}, \"arrival_ns\": {}, \"notification_ns\": {}, \
\"total_ns\": {:.1}, \"counters\": {{\"local_reads\": {}, \"remote_reads\": {}, \
\"reader_contention\": {}, \"local_writes\": {}, \"remote_writes\": {}, \
\"rfo_invalidations\": {}, \"read_stalls\": {}, \"write_stalls\": {}, \
\"read_stall_ns\": {:.1}, \"write_stall_ns\": {:.1}, \"spin_wakeups\": {}}}}}{}\n",
            t.episode,
            opt(t.arrival_ns()),
            opt(t.notification_ns()),
            t.total_ns(),
            c.local_reads,
            c.remote_reads,
            c.reader_contention_events,
            c.local_writes,
            c.remote_writes,
            c.rfo_invalidations,
            c.read_stalls,
            c.write_stalls,
            c.read_stall_ns,
            c.write_stall_ns,
            c.spin_wakeups,
            if i + 1 < traces.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// `armbar serve [--teams N] [--members N] [--episodes N] [--shards N]
/// [--seed N] [--zipf S] [--drop-frac F] [--jobs N] [--format csv|json]
/// [--out FILE]`
///
/// Replays the seeded multi-tenant load against the coordination server
/// and renders the per-tenant metrics table. The table is the
/// deterministic artifact (CI byte-diffs it across shard counts); the
/// timing summary and wakeup-batching counters go to stderr.
pub fn serve(rest: &[String]) -> Result<(), String> {
    let mut cfg =
        armbar_serve::LoadConfig { teams: 2_000, episodes: 200_000, ..Default::default() };
    let parse_usize = |flag: &str, default: usize, min: usize| -> Result<usize, String> {
        match flag_value(rest, flag) {
            Some(s) => match s.parse() {
                Ok(n) if n >= min => Ok(n),
                _ => Err(format!("bad {flag} value {s:?} (need an integer >= {min})")),
            },
            None => Ok(default),
        }
    };
    let parse_f64 = |flag: &str, default: f64| -> Result<f64, String> {
        match flag_value(rest, flag) {
            Some(s) => match s.parse::<f64>() {
                Ok(v) if v >= 0.0 => Ok(v),
                _ => Err(format!("bad {flag} value {s:?} (need a non-negative number)")),
            },
            None => Ok(default),
        }
    };
    cfg.teams = parse_usize("--teams", cfg.teams, 1)?;
    cfg.members = parse_usize("--members", cfg.members, 1)?;
    cfg.episodes = parse_usize("--episodes", cfg.episodes as usize, 1)? as u64;
    cfg.shards = parse_usize("--shards", cfg.shards, 1)?;
    cfg.workers = parse_usize("--jobs", 0, 1)?; // 0 = the ambient pool width
    cfg.zipf = parse_f64("--zipf", cfg.zipf)?;
    cfg.drop_frac = parse_f64("--drop-frac", cfg.drop_frac)?;
    if cfg.drop_frac > 1.0 {
        return Err(format!("bad --drop-frac value {} (need 0..=1)", cfg.drop_frac));
    }
    if let Some(s) = flag_value(rest, "--seed") {
        cfg.seed = match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => s.parse(),
        }
        .map_err(|_| format!("bad seed {s:?}"))?;
    }
    let format = flag_value(rest, "--format").unwrap_or_else(|| "csv".into());
    if format != "csv" && format != "json" {
        return Err(format!("unknown format {format:?} (expected csv or json)"));
    }

    let report = armbar_serve::run_load(&cfg);
    eprint!("{}", armbar_serve::summary_text(&report));
    let text = if format == "csv" {
        armbar_serve::outcome_csv(&report)
    } else {
        armbar_serve::outcome_json(&report)
    };
    match flag_value(rest, "--out") {
        Some(path) => {
            std::fs::write(&path, &text).map_err(|e| format!("writing {path:?}: {e}"))?;
            eprintln!("wrote {} tenant rows to {path}", report.outcomes.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_parsing_accepts_substrings() {
        assert_eq!(parse_platform(&["kunpeng".into()]).unwrap(), Platform::Kunpeng920);
        assert_eq!(parse_platform(&["THUNDER".into()]).unwrap(), Platform::ThunderX2);
        assert!(parse_platform(&["riscv".into()]).is_err());
        assert!(parse_platform(&[]).is_err());
    }

    #[test]
    fn platform_parsing_reaches_kilocore_presets() {
        assert_eq!(parse_platform(&["mempool1024".into()]).unwrap(), Platform::MemPool1024);
        assert_eq!(parse_platform(&["MemPool-256".into()]).unwrap(), Platform::MemPool256);
        // Bare "mempool" resolves to the first (smaller) preset.
        assert_eq!(parse_platform(&["mempool".into()]).unwrap(), Platform::MemPool256);
    }

    #[test]
    fn thread_parsing_validates_ranges() {
        let rest = vec!["x".to_string(), "--threads".into(), "2,8,64".into()];
        assert_eq!(parse_threads(&rest, &[1], 64).unwrap(), vec![2, 8, 64]);
        let bad = vec!["x".to_string(), "--threads".into(), "0".into()];
        assert!(parse_threads(&bad, &[1], 64).is_err());
        let big = vec!["x".to_string(), "--threads".into(), "65".into()];
        assert!(parse_threads(&big, &[1], 64).is_err());
    }

    #[test]
    fn thread_default_respects_core_count() {
        assert_eq!(parse_threads(&[], &[2, 64, 128], 64).unwrap(), vec![2, 64]);
    }

    #[test]
    fn algo_parsing_round_trips_labels() {
        let rest = vec!["x".to_string(), "--algos".into(), "sense,OPT,ring".into()];
        assert_eq!(
            parse_algos(&rest).unwrap(),
            vec![AlgorithmId::Sense, AlgorithmId::Optimized, AlgorithmId::Ring]
        );
        let bad = vec!["x".to_string(), "--algos".into(), "bogus".into()];
        assert!(parse_algos(&bad).is_err());
    }

    #[test]
    fn subcommands_run_end_to_end() {
        platforms().unwrap();
        latency(&["xeon".into()]).unwrap();
        sweep(&[
            "kunpeng".into(),
            "--threads".into(),
            "2,16".into(),
            "--algos".into(),
            "TOUR,OPT".into(),
        ])
        .unwrap();
        recommend(&["thunderx2".into(), "--threads".into(), "32".into()]).unwrap();
        phases(&["phytium".into(), "--threads".into(), "16".into()]).unwrap();
    }

    #[test]
    fn serve_rejects_bad_flags() {
        let bad = |flags: &[&str]| {
            let rest: Vec<String> = flags.iter().map(|s| s.to_string()).collect();
            assert!(serve(&rest).is_err(), "expected rejection: {flags:?}");
        };
        bad(&["--teams", "0"]);
        bad(&["--members", "zero"]);
        bad(&["--drop-frac", "1.5"]);
        bad(&["--drop-frac", "-0.1"]);
        bad(&["--seed", "0xZZ"]);
        bad(&["--format", "yaml"]);
        bad(&["--jobs", "0"]);
    }

    #[test]
    fn serve_writes_a_deterministic_tenant_table() {
        let dir = std::env::temp_dir().join("armbar-serve-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = |name: &str| dir.join(name).to_string_lossy().into_owned();
        let base = |shards: &str, path: String| {
            vec![
                "--teams".to_string(),
                "64".into(),
                "--episodes".into(),
                "2000".into(),
                "--drop-frac".into(),
                "0.2".into(),
                "--shards".into(),
                shards.into(),
                "--out".into(),
                path,
            ]
        };
        serve(&base("1", out("s1.csv"))).unwrap();
        serve(&base("4", out("s4.csv"))).unwrap();
        let s1 = std::fs::read_to_string(out("s1.csv")).unwrap();
        let s4 = std::fs::read_to_string(out("s4.csv")).unwrap();
        assert_eq!(s1, s4, "tenant table must not depend on --shards");
        assert!(s1.starts_with("team,members,episodes,"));
        assert!(s1.contains(",degraded\n"), "20% drops must leave degraded tenants");
        let mut json_args = base("4", out("s4.json"));
        json_args.extend(["--format".to_string(), "json".into()]);
        serve(&json_args).unwrap();
        let json = std::fs::read_to_string(out("s4.json")).unwrap();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"tenants\": ["));
    }

    #[test]
    fn platform_parsing_ignores_punctuation_and_accepts_flag() {
        // The acceptance-criteria spelling of the paper's 64-core machine.
        let rest = vec!["--platform".to_string(), "phytium2000p".into()];
        assert_eq!(parse_platform(&rest).unwrap(), Platform::Phytium2000Plus);
        assert_eq!(
            parse_platform(&["Phytium-2000+".to_string()]).unwrap(),
            Platform::Phytium2000Plus
        );
    }

    fn demo_traces() -> (Arc<Topology>, Vec<EpisodeTrace>) {
        let topo = Arc::new(Topology::preset(Platform::ThunderX2));
        let mut arena = Arena::new();
        let barrier: Arc<dyn Barrier> =
            Arc::from(AlgorithmId::Optimized.build(&mut arena, 16, &topo));
        let cfg = OverheadConfig { episodes: 3, ..OverheadConfig::default() };
        let traces = trace_episodes(&topo, 16, barrier, cfg).unwrap();
        (topo, traces)
    }

    #[test]
    fn trace_csv_has_header_note_and_counter_columns() {
        let (topo, traces) = demo_traces();
        let csv = trace_csv(&topo, 16, AlgorithmId::Optimized, &traces);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("# trace: OPT on ThunderX2"));
        assert!(lines.next().unwrap().starts_with("# times are ns"));
        assert_eq!(lines.next().unwrap(), TRACE_COLUMNS);
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), 3);
        let cols = TRACE_COLUMNS.split(',').count();
        for row in rows {
            assert_eq!(row.split(',').count(), cols, "{row}");
        }
    }

    #[test]
    fn trace_json_is_structurally_sound() {
        let (topo, traces) = demo_traces();
        let json = trace_json(&topo, 16, AlgorithmId::Optimized, &traces);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches("\"episode\":").count(), 3);
        assert!(json.contains("\"rfo_invalidations\":"));
        assert!(json.contains("\"arrival_ns\":"));
        assert!(!json.contains("null"), "16-thread OPT episodes always split");
    }

    #[test]
    fn trace_runs_the_acceptance_invocation() {
        // `armbar trace --algorithm optimized --platform phytium2000p
        //  --threads 64` (episodes capped for test speed).
        trace(&[
            "--algorithm".to_string(),
            "optimized".into(),
            "--platform".into(),
            "phytium2000p".into(),
            "--threads".into(),
            "64".into(),
            "--episodes".into(),
            "2".into(),
            "--format".into(),
            "json".into(),
        ])
        .unwrap();
    }

    #[test]
    fn chaos_runs_a_small_sim_matrix() {
        chaos(&[
            "--platforms".to_string(),
            "kunpeng".into(),
            "--algos".into(),
            "SENSE,DIS".into(),
            "--scenarios".into(),
            "baseline,straggler,crash".into(),
            "--threads".into(),
            "4".into(),
            "--seed".into(),
            "0x7".into(),
        ])
        .unwrap();
    }

    #[test]
    fn chaos_rejects_bad_flags() {
        assert!(chaos(&["--scenarios".to_string(), "meteor".into()]).is_err());
        assert!(chaos(&["--backend".to_string(), "quantum".into()]).is_err());
        assert!(chaos(&["--threads".to_string(), "0".into()]).is_err());
        assert!(chaos(&["--deadline-ms".to_string(), "0".into()]).is_err());
        assert!(chaos(&["--seed".to_string(), "xyz".into()]).is_err());
        assert!(chaos(&["--format".to_string(), "xml".into()]).is_err());
    }

    #[test]
    fn trace_rejects_bad_flags() {
        assert!(trace(&["phytium".to_string(), "--episodes".into(), "0".into()]).is_err());
        assert!(trace(&["phytium".to_string(), "--format".into(), "xml".into()]).is_err());
        assert!(trace(&["phytium".to_string(), "--algorithm".into(), "bogus".into()]).is_err());
        assert!(trace(&["phytium".to_string(), "--algorithm".into(), "OPT,bogus".into()]).is_err());
    }

    #[test]
    fn jobs_flag_parses_and_clamps() {
        assert_eq!(parse_pool(&[]).unwrap().workers(), SweepPool::ambient().workers());
        assert_eq!(parse_pool(&["--jobs".to_string(), "1".into()]).unwrap().workers(), 1);
        let big = parse_pool(&["--jobs".to_string(), "9999".into()]).unwrap();
        assert!(big.workers() <= armbar_sweep::available_parallelism());
        assert!(parse_pool(&["--jobs".to_string(), "0".into()]).is_err());
        assert!(parse_pool(&["--jobs".to_string(), "lots".into()]).is_err());
    }

    #[test]
    fn trace_handles_multiple_algorithms() {
        // Two algorithms through the pool: runs end-to-end and writes one
        // CSV block per algorithm, in flag order.
        let out = std::env::temp_dir().join("armbar_trace_multi.csv");
        trace(&[
            "thunderx2".to_string(),
            "--algorithm".into(),
            "SENSE,OPT".into(),
            "--threads".into(),
            "8".into(),
            "--episodes".into(),
            "2".into(),
            "--jobs".into(),
            "2".into(),
            "--out".into(),
            out.to_str().unwrap().into(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let _ = std::fs::remove_file(&out);
        let headers: Vec<&str> = text.lines().filter(|l| l.starts_with("# trace:")).collect();
        assert_eq!(headers.len(), 2);
        assert!(headers[0].contains("SENSE"));
        assert!(headers[1].contains("OPT"));
    }

    #[test]
    fn conform_runs_a_small_clean_matrix() {
        let out = std::env::temp_dir().join("armbar_conform_small.csv");
        conform(&[
            "--platforms".to_string(),
            "kunpeng".into(),
            "--algos".into(),
            "SENSE,DIS".into(),
            "--threads".into(),
            "4".into(),
            "--episodes".into(),
            "1".into(),
            "--seeds".into(),
            "20".into(),
            "--schedule-seed".into(),
            "0x5EED".into(),
            "--out".into(),
            out.to_str().unwrap().into(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let _ = std::fs::remove_file(&out);
        assert!(text.starts_with("# conform: base seed 0x5eed"));
        assert_eq!(text.lines().filter(|l| l.ends_with("distinct schedules")).count(), 2);
        assert!(text.contains(",ok,"));
    }

    #[test]
    fn chaos_churn_preset_runs_both_phasers() {
        let out = std::env::temp_dir().join("armbar_chaos_churn.csv");
        chaos(&[
            "--churn".to_string(),
            "--threads".into(),
            "4".into(),
            "--jobs".into(),
            "2".into(),
            "--out".into(),
            out.to_str().unwrap().into(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let _ = std::fs::remove_file(&out);
        for needle in ["PH-CTR", "PH-TREE", "crash-evict", "degraded", "flap"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert!(!text.contains("poisoned"), "churn preset must recover:\n{text}");
    }

    #[test]
    fn conform_phasers_runs_a_small_clean_matrix() {
        let out = std::env::temp_dir().join("armbar_conform_phasers.csv");
        conform(&[
            "--phasers".to_string(),
            "--threads".into(),
            "4".into(),
            "--episodes".into(),
            "4".into(),
            "--seeds".into(),
            "6".into(),
            "--scenarios".into(),
            "leave,flap".into(),
            "--jobs".into(),
            "2".into(),
            "--out".into(),
            out.to_str().unwrap().into(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let _ = std::fs::remove_file(&out);
        assert!(text.starts_with("# conform-phasers:"));
        for needle in ["PH-CTR,leave", "PH-TREE,flap", ",ok,"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert!(!text.contains("VIOLATED"), "{text}");
    }

    #[test]
    fn conform_phasers_rejects_bad_flags() {
        assert!(conform(&["--phasers".to_string(), "--algos".into(), "SENSE".into()]).is_err());
        assert!(conform(&["--phasers".to_string(), "--scenarios".into(), "crash".into()]).is_err());
        assert!(conform(&["--phasers".to_string(), "--threads".into(), "1".into()]).is_err());
        assert!(conform(&["--phasers".to_string(), "--format".into(), "xml".into()]).is_err());
    }

    #[test]
    fn conform_rejects_bad_flags() {
        assert!(conform(&["--threads".to_string(), "0".into()]).is_err());
        assert!(conform(&["--episodes".to_string(), "0".into()]).is_err());
        assert!(conform(&["--seeds".to_string(), "none".into()]).is_err());
        assert!(conform(&["--schedule-seed".to_string(), "0xzz".into()]).is_err());
        assert!(conform(&["--budget".to_string(), "many".into()]).is_err());
        assert!(conform(&["--reorder-budget".to_string(), "many".into()]).is_err());
        assert!(conform(&["--format".to_string(), "xml".into()]).is_err());
        assert!(conform(&["--platforms".to_string(), "riscv".into()]).is_err());
    }

    #[test]
    fn conform_weak_runs_barriers_and_phasers() {
        // --weak must drive both matrices under the reordering explorer
        // and record the reordering knobs in both provenance headers.
        let out = std::env::temp_dir().join("armbar_conform_weak.csv");
        conform(&[
            "--weak".to_string(),
            "--platforms".into(),
            "kunpeng".into(),
            "--algos".into(),
            "SENSE".into(),
            "--threads".into(),
            "4".into(),
            "--episodes".into(),
            "2".into(),
            "--seeds".into(),
            "6".into(),
            "--jobs".into(),
            "2".into(),
            "--out".into(),
            out.to_str().unwrap().into(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let _ = std::fs::remove_file(&out);
        assert!(text.starts_with("# conform:"), "{text}");
        assert!(text.contains("rbudget 64 (p=0.8)"), "{text}");
        assert!(text.contains("# conform-phasers:"), "barriers AND phasers:\n{text}");
        assert!(text.contains("PH-CTR"), "{text}");
        assert!(text.contains("PH-TREE"), "{text}");
        assert!(!text.contains("VIOLATED"), "{text}");
    }

    #[test]
    fn conform_replay_flags_round_trip_the_reproducer_line() {
        // Every field of a violation's `[replay: seed S budget B
        // rbudget R episodes E]` line maps onto a flag; the provenance
        // header must echo the values back exactly.
        let out = std::env::temp_dir().join("armbar_conform_replay.csv");
        conform(&[
            "--platforms".to_string(),
            "kunpeng".into(),
            "--algos".into(),
            "SENSE".into(),
            "--threads".into(),
            "4".into(),
            "--schedule-seed".into(),
            "0xBEEF".into(),
            "--budget".into(),
            "2".into(),
            "--reorder-budget".into(),
            "4".into(),
            "--episodes".into(),
            "1".into(),
            "--seeds".into(),
            "1".into(),
            "--out".into(),
            out.to_str().unwrap().into(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let _ = std::fs::remove_file(&out);
        assert!(
            text.starts_with(
                "# conform: base seed 0xbeef, seeds/cell 1, episodes 1, threads 4, \
                 budget 2, rbudget 4"
            ),
            "{text}"
        );
    }

    #[test]
    fn conform_fence_report_writes_markdown() {
        let out = std::env::temp_dir().join("armbar_conform_fence_cells.csv");
        let report = std::env::temp_dir().join("armbar_fence_report.md");
        conform(&[
            "--platforms".to_string(),
            "kunpeng".into(),
            "--algos".into(),
            "SENSE".into(),
            "--threads".into(),
            "4".into(),
            "--episodes".into(),
            "1".into(),
            "--seeds".into(),
            "1".into(),
            "--fence-seeds".into(),
            "10".into(),
            "--fence-report".into(),
            report.to_str().unwrap().into(),
            "--jobs".into(),
            "2".into(),
            "--out".into(),
            out.to_str().unwrap().into(),
        ])
        .unwrap();
        let _ = std::fs::remove_file(&out);
        let md = std::fs::read_to_string(&report).unwrap();
        let _ = std::fs::remove_file(&report);
        assert!(md.starts_with("# Fence minimization report"), "{md}");
        assert!(md.contains("| Kunpeng920 | SENSE |"), "{md}");
        assert!(conform(&[
            "--fence-seeds".to_string(),
            "0".into(),
            "--fence-report".into(),
            "x".into()
        ])
        .is_err());
    }

    #[test]
    fn sweep_accepts_jobs_flag() {
        sweep(&[
            "kunpeng".to_string(),
            "--threads".into(),
            "2,8".into(),
            "--algos".into(),
            "DIS,OPT".into(),
            "--jobs".into(),
            "2".into(),
        ])
        .unwrap();
        assert!(sweep(&["kunpeng".to_string(), "--jobs".into(), "zero".into()]).is_err());
    }
}

//! Subcommand implementations and flag parsing for the `armbar` CLI.

use std::sync::Arc;

use armbar_core::prelude::*;
use armbar_epcc::{latency_table, phase_breakdown, sim_overhead_ns, OverheadConfig};
use armbar_model::{optimal_fanin_int, recommend_wakeup, WakeupChoice};
use armbar_simcoh::Arena;
use armbar_topology::{Platform, Topology};

/// Top-level usage text.
pub const USAGE: &str = "\
armbar — barrier synchronization toolkit (CLUSTER'21 reproduction)

USAGE:
  armbar platforms
      List the built-in machine models.
  armbar latency <platform>
      Regenerate the machine's core-to-core latency table (Tables I-III).
  armbar sweep <platform> [--threads N,N,...] [--algos NAME,NAME,...]
      Simulated barrier overhead per algorithm and thread count.
  armbar recommend <platform> [--threads N]
      Model-driven configuration (fan-in, wake-up) with validation runs.
  armbar phases <platform> [--threads N]
      Arrival/notification phase breakdown of the marked algorithms.

Platforms match case-insensitive substrings: phytium, thunderx2,
kunpeng920, xeon.";

/// Parses `--flag value` style options out of `rest`; returns the value.
fn flag_value(rest: &[String], flag: &str) -> Option<String> {
    rest.iter().position(|a| a == flag).and_then(|i| rest.get(i + 1).cloned())
}

fn parse_platform(rest: &[String]) -> Result<Platform, String> {
    let name = rest
        .first()
        .ok_or_else(|| "missing <platform> argument".to_string())?
        .to_ascii_lowercase();
    Platform::ALL
        .into_iter()
        .find(|p| p.label().to_ascii_lowercase().contains(&name))
        .ok_or_else(|| {
            format!(
                "unknown platform {name:?}; known: {}",
                Platform::ALL.map(|p| p.label()).join(", ")
            )
        })
}

fn parse_threads(rest: &[String], default: &[usize], max: usize) -> Result<Vec<usize>, String> {
    let Some(spec) = flag_value(rest, "--threads") else {
        return Ok(default.iter().copied().filter(|&p| p <= max).collect());
    };
    let mut out = Vec::new();
    for part in spec.split(',') {
        let p: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("bad thread count {part:?}"))?;
        if p == 0 || p > max {
            return Err(format!("thread count {p} out of range 1..={max}"));
        }
        out.push(p);
    }
    if out.is_empty() {
        return Err("--threads needs at least one value".into());
    }
    Ok(out)
}

fn parse_algos(rest: &[String]) -> Result<Vec<AlgorithmId>, String> {
    let Some(spec) = flag_value(rest, "--algos") else {
        return Ok(AlgorithmId::SEVEN
            .into_iter()
            .chain([AlgorithmId::LlvmHyper, AlgorithmId::Optimized])
            .collect());
    };
    let mut out = Vec::new();
    for part in spec.split(',') {
        let id = AlgorithmId::parse(part.trim())
            .ok_or_else(|| format!("unknown algorithm {part:?} (try SENSE, DIS, CMB, MCS, TOUR, STOUR, DTOUR, LLVM, OPT, HYBRID, NDIS, RING)"))?;
        out.push(id);
    }
    Ok(out)
}

/// `armbar platforms`
pub fn platforms() -> Result<(), String> {
    for p in Platform::ALL {
        let t = Topology::preset(p);
        println!(
            "{:18} {:3} cores, N_c = {:2}, {}-byte lines, {} latency layers",
            t.name(),
            t.num_cores(),
            t.n_c(),
            t.cacheline_bytes(),
            t.layers().len()
        );
    }
    Ok(())
}

/// `armbar latency <platform>`
pub fn latency(rest: &[String]) -> Result<(), String> {
    let platform = parse_platform(rest)?;
    let topo = Arc::new(Topology::preset(platform));
    println!("core-to-core latencies on {} (ns):", topo.name());
    println!("{:>6}  {:24} {:>10} {:>10}", "layer", "description", "table", "measured");
    for row in latency_table(&topo) {
        println!(
            "{:>6}  {:24} {:>10.2} {:>10.2}",
            row.layer.to_string(),
            row.name,
            row.expected_ns,
            row.measured_ns
        );
    }
    Ok(())
}

/// `armbar sweep <platform> [--threads ...] [--algos ...]`
pub fn sweep(rest: &[String]) -> Result<(), String> {
    let platform = parse_platform(rest)?;
    let topo = Arc::new(Topology::preset(platform));
    let threads = parse_threads(rest, &[2, 4, 8, 16, 32, 64], topo.num_cores())?;
    let algos = parse_algos(rest)?;

    println!("barrier overhead (us/episode) on simulated {}:", topo.name());
    print!("{:>8}", "threads");
    for id in &algos {
        print!("{:>11}", id.label());
    }
    println!();
    for &p in &threads {
        print!("{p:>8}");
        for &id in &algos {
            let ns = sim_overhead_ns(&topo, p, id, OverheadConfig::default())
                .map_err(|e| e.to_string())?;
            print!("{:>11.2}", ns / 1000.0);
        }
        println!();
    }
    Ok(())
}

/// `armbar recommend <platform> [--threads N]`
pub fn recommend(rest: &[String]) -> Result<(), String> {
    let platform = parse_platform(rest)?;
    let topo = Arc::new(Topology::preset(platform));
    let p = parse_threads(rest, &[topo.num_cores()], topo.num_cores())?[0];

    let f = optimal_fanin_int(&topo, p);
    let wake = match recommend_wakeup(&topo, p) {
        WakeupChoice::Global => WakeupKind::Global,
        WakeupChoice::Tree => {
            if topo.num_clusters() > 1 {
                WakeupKind::NumaTree
            } else {
                WakeupKind::BinaryTree
            }
        }
    };
    println!("{} at {p} threads:", topo.name());
    println!("  model-optimal fan-in:  {f}");
    println!("  recommended wake-up:   {}", wake.label());

    // Validate against the machine default and the GCC baseline.
    let opt = sim_overhead_ns(&topo, p, AlgorithmId::Optimized, OverheadConfig::default())
        .map_err(|e| e.to_string())?;
    let gcc = sim_overhead_ns(&topo, p, AlgorithmId::Sense, OverheadConfig::default())
        .map_err(|e| e.to_string())?;
    println!("  optimized barrier:     {:.2} us/episode", opt / 1000.0);
    println!("  GCC-style barrier:     {:.2} us/episode ({:.1}x)", gcc / 1000.0, gcc / opt);
    Ok(())
}

/// `armbar phases <platform> [--threads N]`
pub fn phases(rest: &[String]) -> Result<(), String> {
    let platform = parse_platform(rest)?;
    let topo = Arc::new(Topology::preset(platform));
    let p = parse_threads(rest, &[topo.num_cores()], topo.num_cores())?[0];

    println!("phase breakdown on {} at {p} threads (us):", topo.name());
    println!("{:>10} {:>10} {:>14}", "algorithm", "arrival", "notification");
    for id in [AlgorithmId::Sense, AlgorithmId::Stour, AlgorithmId::Padded4Way, AlgorithmId::Optimized]
    {
        let mut arena = Arena::new();
        let barrier: Arc<dyn Barrier> = Arc::from(id.build(&mut arena, p, &topo));
        match phase_breakdown(&topo, p, barrier, 4).map_err(|e| e.to_string())? {
            Some(b) => println!(
                "{:>10} {:>10.2} {:>14.2}",
                id.label(),
                b.arrival_ns / 1000.0,
                b.notification_ns / 1000.0
            ),
            None => println!("{:>10} (no phase marks)", id.label()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_parsing_accepts_substrings() {
        assert_eq!(parse_platform(&["kunpeng".into()]).unwrap(), Platform::Kunpeng920);
        assert_eq!(parse_platform(&["THUNDER".into()]).unwrap(), Platform::ThunderX2);
        assert!(parse_platform(&["riscv".into()]).is_err());
        assert!(parse_platform(&[]).is_err());
    }

    #[test]
    fn thread_parsing_validates_ranges() {
        let rest = vec!["x".to_string(), "--threads".into(), "2,8,64".into()];
        assert_eq!(parse_threads(&rest, &[1], 64).unwrap(), vec![2, 8, 64]);
        let bad = vec!["x".to_string(), "--threads".into(), "0".into()];
        assert!(parse_threads(&bad, &[1], 64).is_err());
        let big = vec!["x".to_string(), "--threads".into(), "65".into()];
        assert!(parse_threads(&big, &[1], 64).is_err());
    }

    #[test]
    fn thread_default_respects_core_count() {
        assert_eq!(parse_threads(&[], &[2, 64, 128], 64).unwrap(), vec![2, 64]);
    }

    #[test]
    fn algo_parsing_round_trips_labels() {
        let rest = vec!["x".to_string(), "--algos".into(), "sense,OPT,ring".into()];
        assert_eq!(
            parse_algos(&rest).unwrap(),
            vec![AlgorithmId::Sense, AlgorithmId::Optimized, AlgorithmId::Ring]
        );
        let bad = vec!["x".to_string(), "--algos".into(), "bogus".into()];
        assert!(parse_algos(&bad).is_err());
    }

    #[test]
    fn subcommands_run_end_to_end() {
        platforms().unwrap();
        latency(&["xeon".into()]).unwrap();
        sweep(&[
            "kunpeng".into(),
            "--threads".into(),
            "2,16".into(),
            "--algos".into(),
            "TOUR,OPT".into(),
        ])
        .unwrap();
        recommend(&["thunderx2".into(), "--threads".into(), "32".into()]).unwrap();
        phases(&["phytium".into(), "--threads".into(), "16".into()]).unwrap();
    }
}

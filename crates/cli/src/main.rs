//! `armbar` — command-line front end for the barrier workspace.
//!
//! ```text
//! armbar platforms
//! armbar latency <platform>
//! armbar sweep <platform> [--threads 2,8,32,64] [--algos SENSE,OPT]
//! armbar recommend <platform> [--threads 64]
//! armbar phases <platform> [--threads 64]
//! armbar trace <platform> [--algorithm OPT] [--threads 64] [--episodes 8]
//!              [--format csv|json] [--out FILE]
//! armbar chaos [--churn] [--platforms kunpeng,phytium] [--algos SENSE,OPT]
//!              [--scenarios straggler,crash-evict] [--backend sim|host|both]
//!              [--threads 8] [--seed 0xC4A05] [--format csv|json]
//! armbar conform [--quick] [--phasers] [--platforms kunpeng]
//!                [--algos SENSE,OPT] [--threads 8] [--episodes 2]
//!                [--seeds 1200] [--schedule-seed 0xC0F0] [--budget 64]
//!                [--format csv|json]
//! armbar serve [--teams 2000] [--members 4] [--episodes 200000]
//!              [--shards 8] [--seed 0xBA5E] [--zipf 0.8] [--drop-frac 0.01]
//!              [--format csv|json] [--out FILE]
//! ```

mod cmds;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", cmds::USAGE);
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "platforms" => cmds::platforms(),
        "latency" => cmds::latency(rest),
        "sweep" => cmds::sweep(rest),
        "recommend" => cmds::recommend(rest),
        "phases" => cmds::phases(rest),
        "trace" => cmds::trace(rest),
        "chaos" => cmds::chaos(rest),
        "conform" => cmds::conform(rest),
        "serve" => cmds::serve(rest),
        "help" | "--help" | "-h" => {
            println!("{}", cmds::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", cmds::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Golden-file regression for the `armbar` CLI's structured output: the
//! `trace` and `chaos` CSV formats are pinned byte-for-byte.
//!
//! Unlike `tests/golden_master.rs` (which pins the *model's numbers*
//! through the library API), these tests pin the *CLI contract*: flag
//! parsing, column order, provenance headers, float formatting — anything
//! a downstream script parsing `armbar trace`/`armbar chaos` output would
//! notice. The binary is invoked for real via `CARGO_BIN_EXE_armbar`, with
//! `--jobs 1` and fixed seeds so the bytes are reproducible anywhere.
//!
//! To regenerate after an *intentional* format or model change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p armbar-cli --test golden_cli
//! ```

use std::path::PathBuf;
use std::process::Command;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Runs the real `armbar` binary and returns its stdout.
fn armbar(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_armbar"))
        .args(args)
        .output()
        .expect("failed to spawn the armbar binary");
    assert!(
        out.status.success(),
        "armbar {args:?} exited with {}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("armbar wrote non-UTF-8 output")
}

fn check_golden(name: &str, fresh: &str) {
    let path = fixture_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, fresh).expect("failed to write fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {} ({e}); run with GOLDEN_REGEN=1", path.display())
    });
    assert_eq!(
        fresh, &committed,
        "CLI output diverged from the committed fixture {name}; if the \
         format or model change is intentional, regenerate with GOLDEN_REGEN=1"
    );
}

#[test]
fn trace_csv_matches_committed_fixture_byte_for_byte() {
    let fresh = armbar(&[
        "trace",
        "--platform",
        "kunpeng920",
        "--algorithm",
        "SENSE,OPT",
        "--threads",
        "8",
        "--episodes",
        "3",
        "--jobs",
        "1",
        "--format",
        "csv",
    ]);
    check_golden("golden_trace_kunpeng_sense_opt.csv", &fresh);
}

#[test]
fn chaos_csv_matches_committed_fixture_byte_for_byte() {
    let fresh = armbar(&[
        "chaos",
        "--platforms",
        "kunpeng920",
        "--algos",
        "SENSE,DIS,OPT",
        "--scenarios",
        "baseline,straggler,crash",
        "--backend",
        "sim",
        "--threads",
        "4",
        "--episodes",
        "3",
        "--seed",
        "0xC4A05",
        "--jobs",
        "1",
        "--format",
        "csv",
    ]);
    check_golden("golden_chaos_kunpeng_sim.csv", &fresh);
}

//! The four memory-operation costs of Section III-B.
//!
//! With `ε` the local-cache latency, `L_i` the layer latency, `α_i` the RFO
//! weight and `n` the number of shared copies held by other cores:
//!
//! * `O(R_L) = ε` — local read;
//! * `O(R_R) = L_i` — remote read;
//! * `O(W_L) = n·α_i·L_i` — local write (RFO to each copy);
//! * `O(W_R) = (1 + n·α_i)·L_i` — remote write (transfer + RFO).
//!
//! PR 10 adds the per-op-kind atomic RMW surcharges (DESIGN.md §17),
//! mirroring the simulator's split of the old shared `ε + 0.5·transfer`:
//!
//! * `O(RMW_L, k) = O(W_L) + alu_k·ε + frac_k·ε` — the transfer of a
//!   locally-owned line is `ε`;
//! * `O(RMW_R, k) = O(W_R) + alu_k·ε + frac_k·L_i`;
//!
//! with `(alu_k, frac_k)` the platform's [`RmwCosts`] entry for kind `k`.

use armbar_topology::{LayerId, RmwOp, Topology};

/// Cost calculator for one (machine, layer) pair.
#[derive(Debug, Clone, Copy)]
pub struct CacheOps<'a> {
    topo: &'a Topology,
    layer: LayerId,
}

impl<'a> CacheOps<'a> {
    /// Costs for operations crossing `layer` of `topo`.
    pub fn new(topo: &'a Topology, layer: LayerId) -> Self {
        Self { topo, layer }
    }

    /// Costs for the layer joining two specific cores.
    pub fn between(topo: &'a Topology, a: usize, b: usize) -> Self {
        Self { topo, layer: topo.layer(a, b) }
    }

    /// `L_i` for this layer (or `ε` for the local layer).
    pub fn layer_latency_ns(&self) -> f64 {
        self.topo.layer_latency_ns(self.layer)
    }

    /// `O(R_L) = ε`.
    pub fn local_read_ns(&self) -> f64 {
        self.topo.epsilon_ns()
    }

    /// `O(R_R) = L_i`.
    pub fn remote_read_ns(&self) -> f64 {
        self.layer_latency_ns()
    }

    /// `O(W_L) = n·α_i·L_i`: a write hitting a locally-owned line that `n`
    /// other cores still share.
    pub fn local_write_ns(&self, n_copies: usize) -> f64 {
        let l = self.layer_latency_ns();
        n_copies as f64 * self.topo.alpha(self.layer) * l
    }

    /// `O(W_R) = (1 + n·α_i)·L_i`: a write that must first fetch the line
    /// across the layer.
    pub fn remote_write_ns(&self, n_copies: usize) -> f64 {
        let l = self.layer_latency_ns();
        (1.0 + n_copies as f64 * self.topo.alpha(self.layer)) * l
    }

    /// The per-kind RMW surcharge for an op whose ownership transfer
    /// crosses this layer: `alu_k·ε + frac_k·L_i` (the simulator's
    /// `RmwCosts::surcharge_ns` with `transfer = L_i`).
    pub fn rmw_surcharge_ns(&self, op: RmwOp) -> f64 {
        self.topo.rmw_costs().surcharge_ns(op, self.topo.epsilon_ns(), self.layer_latency_ns())
    }

    /// `O(RMW_L, k)`: an atomic RMW of kind `k` hitting a locally-owned
    /// line that `n` other cores share. The transfer leg of an owned line
    /// is `ε`, so the surcharge uses `transfer = ε`.
    pub fn local_rmw_ns(&self, op: RmwOp, n_copies: usize) -> f64 {
        let eps = self.topo.epsilon_ns();
        self.local_write_ns(n_copies) + self.topo.rmw_costs().surcharge_ns(op, eps, eps)
    }

    /// `O(RMW_R, k) = O(W_R) + alu_k·ε + frac_k·L_i`: an atomic RMW of
    /// kind `k` that must first fetch the line across the layer.
    pub fn remote_rmw_ns(&self, op: RmwOp, n_copies: usize) -> f64 {
        self.remote_write_ns(n_copies) + self.rmw_surcharge_ns(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_topology::{Platform, Topology};

    #[test]
    fn formulas_match_section_3b() {
        let t = Topology::preset(Platform::ThunderX2);
        let ops = CacheOps::new(&t, LayerId(0)); // L0 = 24 ns, α = 0.9
        assert_eq!(ops.local_read_ns(), 1.2);
        assert_eq!(ops.remote_read_ns(), 24.0);
        assert!((ops.local_write_ns(1) - 0.9 * 24.0).abs() < 1e-12);
        assert!((ops.remote_write_ns(1) - (1.0 + 0.9) * 24.0).abs() < 1e-12);
        // No copies elsewhere → free local write, plain transfer remote.
        assert_eq!(ops.local_write_ns(0), 0.0);
        assert_eq!(ops.remote_write_ns(0), 24.0);
    }

    #[test]
    fn write_cost_scales_linearly_in_copies() {
        let t = Topology::preset(Platform::Kunpeng920);
        let ops = CacheOps::new(&t, LayerId(1));
        let w1 = ops.local_write_ns(1);
        let w4 = ops.local_write_ns(4);
        assert!((w4 - 4.0 * w1).abs() < 1e-9);
    }

    #[test]
    fn between_uses_the_pair_layer() {
        let t = Topology::preset(Platform::Phytium2000Plus);
        let near = CacheOps::between(&t, 0, 1); // same core group
        let far = CacheOps::between(&t, 0, 63); // panel 0 → 7
        assert_eq!(near.remote_read_ns(), 9.1);
        assert_eq!(far.remote_read_ns(), 84.5);
    }

    #[test]
    fn remote_write_exceeds_remote_read() {
        let t = Topology::preset(Platform::ThunderX2);
        for layer in [LayerId(0), LayerId(1)] {
            let ops = CacheOps::new(&t, layer);
            assert!(ops.remote_write_ns(1) > ops.remote_read_ns());
        }
    }

    /// Hand-computed Section III-B costs from the paper's Tables I–III
    /// parameters, one pin per machine.
    #[test]
    fn table_parameter_pins() {
        // Kunpeng 920 (Table III), SCCL layer L1 = 44.2 ns, α = 0.5:
        //   W_R(3) = (1 + 3·0.5)·44.2 = 110.5;  W_L(7) = 7·0.5·44.2 = 154.7.
        let k = Topology::preset(Platform::Kunpeng920);
        let sccl = CacheOps::new(&k, LayerId(1));
        assert!((sccl.remote_write_ns(3) - 110.5).abs() < 1e-9);
        assert!((sccl.local_write_ns(7) - 154.7).abs() < 1e-9);
        assert_eq!(sccl.local_read_ns(), 1.15); // ε, Table III

        // Phytium 2000+ (Table I), panel 0 → 7: L = 84.5 ns, α = 0.55:
        //   W_R(1) = 1.55·84.5 = 130.975.
        let ph = Topology::preset(Platform::Phytium2000Plus);
        let far = CacheOps::between(&ph, 0, 63);
        assert!((far.remote_write_ns(1) - 130.975).abs() < 1e-9);

        // ThunderX2 (Table II), cross-socket L1 = 140.7 ns, α = 0.9:
        //   W_L(31) = 31·0.9·140.7 = 3925.53 — the hot-spot release cost
        //   that motivates tree wake-up on this machine.
        let tx = Topology::preset(Platform::ThunderX2);
        let cross = CacheOps::new(&tx, LayerId(1));
        assert!((cross.local_write_ns(31) - 3925.53).abs() < 1e-9);
    }

    /// Hand-computed per-op-kind RMW costs from the platform presets'
    /// `RmwCosts` tables, Tables I–III style (DESIGN.md §17).
    #[test]
    fn rmw_cost_pins_per_platform() {
        use armbar_topology::RmwOp;

        // ThunderX2 — LSE shape lse(0.6, 1.1): FAA/SWP (0.6, 0.35),
        // CAS-ok (1.1, 0.5), CAS-fail (0.825, 0.35). Socket layer
        // L0 = 24 ns, ε = 1.2, α = 0.9.
        //   surcharge(FAA)     = 0.6·1.2  + 0.35·24 = 0.72 + 8.4  = 9.12
        //   surcharge(CAS-ok)  = 1.1·1.2  + 0.5·24  = 1.32 + 12   = 13.32
        //   surcharge(CAS-no)  = 0.825·1.2 + 0.35·24 = 0.99 + 8.4 = 9.39
        //   RMW_R(FAA, 1 copy) = (1 + 0.9)·24 + 9.12 = 54.72.
        let tx = Topology::preset(Platform::ThunderX2);
        let ops = CacheOps::new(&tx, LayerId(0));
        assert!((ops.rmw_surcharge_ns(RmwOp::FetchAdd) - 9.12).abs() < 1e-9);
        assert!((ops.rmw_surcharge_ns(RmwOp::CmpXchgOk) - 13.32).abs() < 1e-9);
        assert!((ops.rmw_surcharge_ns(RmwOp::CmpXchgFail) - 9.39).abs() < 1e-9);
        assert_eq!(ops.rmw_surcharge_ns(RmwOp::Swap), ops.rmw_surcharge_ns(RmwOp::FetchAdd));
        assert!((ops.remote_rmw_ns(RmwOp::FetchAdd, 1) - 54.72).abs() < 1e-9);

        // Phytium 2000+ — LL/SC shape llsc(1.6, 1.2): FAA/SWP (1.6, 1.2),
        // CAS-ok (1.6, 0.5), CAS-fail (0.8, 0.2). Core-group layer
        // L0 = 9.1 ns, ε = 1.8.
        //   surcharge(FAA)    = 1.6·1.8 + 1.2·9.1 = 2.88 + 10.92 = 13.8
        //   surcharge(CAS-ok) = 1.6·1.8 + 0.5·9.1 = 2.88 + 4.55  = 7.43
        //   surcharge(CAS-no) = 0.8·1.8 + 0.2·9.1 = 1.44 + 1.82  = 3.26
        // The LL/SC inversion: contended FAA above CAS, unlike LSE parts.
        let ph = Topology::preset(Platform::Phytium2000Plus);
        let grp = CacheOps::new(&ph, LayerId(0));
        assert!((grp.rmw_surcharge_ns(RmwOp::FetchAdd) - 13.8).abs() < 1e-9);
        assert!((grp.rmw_surcharge_ns(RmwOp::CmpXchgOk) - 7.43).abs() < 1e-9);
        assert!((grp.rmw_surcharge_ns(RmwOp::CmpXchgFail) - 3.26).abs() < 1e-9);
        assert!(grp.rmw_surcharge_ns(RmwOp::FetchAdd) > grp.rmw_surcharge_ns(RmwOp::CmpXchgOk));

        // Kunpeng 920 — LSE shape lse(0.7, 1.2): FAA (0.7, 0.35),
        // CAS-ok (1.2, 0.5), CAS-fail (0.9, 0.35). CCL layer L0 = 14.2,
        // ε = 1.15.
        //   surcharge(FAA)      = 0.7·1.15 + 0.35·14.2 = 0.805 + 4.97 = 5.775
        //   RMW_L(FAA, 3 copies) = 3·0.5·14.2 + (0.7·1.15 + 0.35·1.15)
        //                        = 21.3 + 1.2075 = 22.5075.
        let k = Topology::preset(Platform::Kunpeng920);
        let ccl = CacheOps::new(&k, LayerId(0));
        assert!((ccl.rmw_surcharge_ns(RmwOp::FetchAdd) - 5.775).abs() < 1e-9);
        assert!((ccl.local_rmw_ns(RmwOp::FetchAdd, 3) - 22.5075).abs() < 1e-9);

        // Legacy identity: under a legacy table every kind's remote RMW is
        // the old W_R + ε + 0.5·L.
        let legacy = Topology::preset(Platform::XeonGold);
        let xo = CacheOps::new(&legacy, LayerId(0));
        for op in RmwOp::ALL {
            assert_eq!(xo.remote_rmw_ns(op, 1), xo.remote_write_ns(1) + 1.0 + 0.5 * 20.0);
        }
    }
}

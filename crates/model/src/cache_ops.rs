//! The four memory-operation costs of Section III-B.
//!
//! With `ε` the local-cache latency, `L_i` the layer latency, `α_i` the RFO
//! weight and `n` the number of shared copies held by other cores:
//!
//! * `O(R_L) = ε` — local read;
//! * `O(R_R) = L_i` — remote read;
//! * `O(W_L) = n·α_i·L_i` — local write (RFO to each copy);
//! * `O(W_R) = (1 + n·α_i)·L_i` — remote write (transfer + RFO).

use armbar_topology::{LayerId, Topology};

/// Cost calculator for one (machine, layer) pair.
#[derive(Debug, Clone, Copy)]
pub struct CacheOps<'a> {
    topo: &'a Topology,
    layer: LayerId,
}

impl<'a> CacheOps<'a> {
    /// Costs for operations crossing `layer` of `topo`.
    pub fn new(topo: &'a Topology, layer: LayerId) -> Self {
        Self { topo, layer }
    }

    /// Costs for the layer joining two specific cores.
    pub fn between(topo: &'a Topology, a: usize, b: usize) -> Self {
        Self { topo, layer: topo.layer(a, b) }
    }

    /// `L_i` for this layer (or `ε` for the local layer).
    pub fn layer_latency_ns(&self) -> f64 {
        self.topo.layer_latency_ns(self.layer)
    }

    /// `O(R_L) = ε`.
    pub fn local_read_ns(&self) -> f64 {
        self.topo.epsilon_ns()
    }

    /// `O(R_R) = L_i`.
    pub fn remote_read_ns(&self) -> f64 {
        self.layer_latency_ns()
    }

    /// `O(W_L) = n·α_i·L_i`: a write hitting a locally-owned line that `n`
    /// other cores still share.
    pub fn local_write_ns(&self, n_copies: usize) -> f64 {
        let l = self.layer_latency_ns();
        n_copies as f64 * self.topo.alpha(self.layer) * l
    }

    /// `O(W_R) = (1 + n·α_i)·L_i`: a write that must first fetch the line
    /// across the layer.
    pub fn remote_write_ns(&self, n_copies: usize) -> f64 {
        let l = self.layer_latency_ns();
        (1.0 + n_copies as f64 * self.topo.alpha(self.layer)) * l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_topology::{Platform, Topology};

    #[test]
    fn formulas_match_section_3b() {
        let t = Topology::preset(Platform::ThunderX2);
        let ops = CacheOps::new(&t, LayerId(0)); // L0 = 24 ns, α = 0.9
        assert_eq!(ops.local_read_ns(), 1.2);
        assert_eq!(ops.remote_read_ns(), 24.0);
        assert!((ops.local_write_ns(1) - 0.9 * 24.0).abs() < 1e-12);
        assert!((ops.remote_write_ns(1) - (1.0 + 0.9) * 24.0).abs() < 1e-12);
        // No copies elsewhere → free local write, plain transfer remote.
        assert_eq!(ops.local_write_ns(0), 0.0);
        assert_eq!(ops.remote_write_ns(0), 24.0);
    }

    #[test]
    fn write_cost_scales_linearly_in_copies() {
        let t = Topology::preset(Platform::Kunpeng920);
        let ops = CacheOps::new(&t, LayerId(1));
        let w1 = ops.local_write_ns(1);
        let w4 = ops.local_write_ns(4);
        assert!((w4 - 4.0 * w1).abs() < 1e-9);
    }

    #[test]
    fn between_uses_the_pair_layer() {
        let t = Topology::preset(Platform::Phytium2000Plus);
        let near = CacheOps::between(&t, 0, 1); // same core group
        let far = CacheOps::between(&t, 0, 63); // panel 0 → 7
        assert_eq!(near.remote_read_ns(), 9.1);
        assert_eq!(far.remote_read_ns(), 84.5);
    }

    #[test]
    fn remote_write_exceeds_remote_read() {
        let t = Topology::preset(Platform::ThunderX2);
        for layer in [LayerId(0), LayerId(1)] {
            let ops = CacheOps::new(&t, layer);
            assert!(ops.remote_write_ns(1) > ops.remote_read_ns());
        }
    }

    /// Hand-computed Section III-B costs from the paper's Tables I–III
    /// parameters, one pin per machine.
    #[test]
    fn table_parameter_pins() {
        // Kunpeng 920 (Table III), SCCL layer L1 = 44.2 ns, α = 0.5:
        //   W_R(3) = (1 + 3·0.5)·44.2 = 110.5;  W_L(7) = 7·0.5·44.2 = 154.7.
        let k = Topology::preset(Platform::Kunpeng920);
        let sccl = CacheOps::new(&k, LayerId(1));
        assert!((sccl.remote_write_ns(3) - 110.5).abs() < 1e-9);
        assert!((sccl.local_write_ns(7) - 154.7).abs() < 1e-9);
        assert_eq!(sccl.local_read_ns(), 1.15); // ε, Table III

        // Phytium 2000+ (Table I), panel 0 → 7: L = 84.5 ns, α = 0.55:
        //   W_R(1) = 1.55·84.5 = 130.975.
        let ph = Topology::preset(Platform::Phytium2000Plus);
        let far = CacheOps::between(&ph, 0, 63);
        assert!((far.remote_write_ns(1) - 130.975).abs() < 1e-9);

        // ThunderX2 (Table II), cross-socket L1 = 140.7 ns, α = 0.9:
        //   W_L(31) = 31·0.9·140.7 = 3925.53 — the hot-spot release cost
        //   that motivates tree wake-up on this machine.
        let tx = Topology::preset(Platform::ThunderX2);
        let cross = CacheOps::new(&tx, LayerId(1));
        assert!((cross.local_write_ns(31) - 3925.53).abs() < 1e-9);
    }
}

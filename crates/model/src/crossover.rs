//! Closed-form lock-counter vs SENSE/STOUR crossover prediction
//! (DESIGN.md §17).
//!
//! The shyper contender barriers (`SHY-CTR`, `SHY-PROXY`) guard a plain
//! counter with a spinlock, so every arrival pays the platform's *CAS/SWP*
//! pricing (lock grab + a failed attempt per lost race + an extra hot-line
//! store for the unlock) where SENSE pays one *fetch-add* and STOUR pays
//! no atomics at all. With the per-op-kind split of DESIGN.md §17 those
//! prices differ per platform — LSE parts make FAA cheap and CAS dear,
//! LL/SC parts price every contended RMW high — so the model can predict,
//! per platform, the thread count at which the lock-guarded counter loses
//! to the best no-lock barrier. The `crossover` experiment then measures
//! the same curves in the simulator and checks the predicted crossover
//! lands within one sweep step of the simulated one.
//!
//! All costs below use the same scalar abstractions as the rest of the
//! model crate: `L = mean_remote_latency_ns(p)` for the hot line's
//! ownership transfers, the outermost crossed layer's `α` for RFO, and the
//! calibrated `inv`/`read contention` coherence parameters for crowd
//! effects — mirroring [`crate::notification::recommend_wakeup`].

use armbar_topology::{RmwOp, Topology};

use crate::fanin::{arrival_cost_ns, optimal_fanin_int};

/// Predicted per-episode cost of the four curves at one thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossoverPoint {
    /// Thread count.
    pub p: usize,
    /// Spinlock-guarded counter, CAS lock (`SHY-CTR`).
    pub shy_ctr_ns: f64,
    /// Spinlock-guarded counter, SWP lock + episode slots (`SHY-PROXY`).
    pub shy_proxy_ns: f64,
    /// Sense-reversing centralized barrier (one FAA per arrival).
    pub sense_ns: f64,
    /// Static f-way tournament at the model-optimal fan-in (no atomics).
    pub stour_ns: f64,
}

impl CrossoverPoint {
    /// The best no-lock reference the contender must beat.
    pub fn reference_ns(&self) -> f64 {
        self.sense_ns.min(self.stour_ns)
    }
}

/// Effective scalar parameters for `p` threads on cores `0..p`.
struct Params {
    eps: f64,
    l: f64,
    alpha: f64,
    inv: f64,
    read_c: f64,
}

impl Params {
    fn of(topo: &Topology, p: usize) -> Self {
        let span = p.min(topo.num_cores());
        let outer = topo.layer(0, span.saturating_sub(1).max(1).min(topo.num_cores() - 1));
        Self {
            eps: topo.epsilon_ns(),
            l: topo.mean_remote_latency_ns(span),
            alpha: topo.alpha(outer),
            inv: topo.coherence().inv_ns,
            read_c: topo.coherence().read_contention_ns,
        }
    }

    /// Hot-line release observed by `p − 1` spinners: the calibrated
    /// global-wakeup term of `recommend_wakeup`.
    fn wakeup_ns(&self, p: usize) -> f64 {
        let n = (p - 1) as f64;
        (1.0 + self.alpha) * self.l + (self.inv + self.read_c) * n
    }

    /// One exclusive grab of the hot line when `j` other cores share it:
    /// transfer + RFO + crowd invalidation.
    fn hot_write_ns(&self, j: usize) -> f64 {
        self.l + self.alpha * self.l + self.inv * j as f64
    }
}

/// Predicted per-episode cost of `SENSE` at `p` threads: `p` serialized
/// fetch-adds on the hot counter line (arrival `j` invalidates the `j`
/// spinners already camped on it), then the global wakeup.
pub fn sense_episode_ns(topo: &Topology, p: usize) -> f64 {
    if p <= 1 {
        return topo.epsilon_ns();
    }
    let k = Params::of(topo, p);
    let s_faa = topo.rmw_costs().surcharge_ns(RmwOp::FetchAdd, k.eps, k.l);
    let arrivals: f64 = (0..p).map(|j| k.hot_write_ns(j) + s_faa).sum();
    arrivals + k.wakeup_ns(p)
}

/// Predicted per-episode cost of `SHY-CTR` at `p` threads. Arrival `j`
/// pays: the winning CAS, one failed CAS if anyone was there to race
/// (`j ≥ 1`), two local counter ops inside the lock, and the unlock store
/// — the store leaves the freshly-owned line local (`ε`) but still
/// invalidates the `j` camped spinners. Exit is the same hot-line wakeup
/// as SENSE.
pub fn shy_ctr_episode_ns(topo: &Topology, p: usize) -> f64 {
    if p <= 1 {
        return topo.epsilon_ns();
    }
    let k = Params::of(topo, p);
    let costs = topo.rmw_costs();
    let s_ok = costs.surcharge_ns(RmwOp::CmpXchgOk, k.eps, k.l);
    let s_fail = costs.surcharge_ns(RmwOp::CmpXchgFail, k.eps, k.l);
    let arrivals: f64 = (0..p)
        .map(|j| {
            let contended = if j >= 1 { k.hot_write_ns(j) + s_fail } else { 0.0 };
            k.hot_write_ns(j) + s_ok + contended + 2.0 * k.eps + (k.eps + k.inv * j as f64)
        })
        .sum();
    arrivals + k.wakeup_ns(p)
}

/// Predicted per-episode cost of `SHY-PROXY` at `p` threads: same shape as
/// [`shy_ctr_episode_ns`] with the SWP test-and-set price in place of the
/// CAS pair (a lost SWP race costs a full swap — there is no cheap failed
/// leg) plus two local episode-slot ops.
pub fn shy_proxy_episode_ns(topo: &Topology, p: usize) -> f64 {
    if p <= 1 {
        return topo.epsilon_ns();
    }
    let k = Params::of(topo, p);
    let s_swap = topo.rmw_costs().surcharge_ns(RmwOp::Swap, k.eps, k.l);
    let arrivals: f64 = (0..p)
        .map(|j| {
            let contended = if j >= 1 { k.hot_write_ns(j) + s_swap } else { 0.0 };
            k.hot_write_ns(j) + s_swap + contended + 2.0 * k.eps + (k.eps + k.inv * j as f64)
        })
        .sum();
    arrivals + k.wakeup_ns(p) + 2.0 * k.eps
}

/// Predicted per-episode cost of `STOUR` at `p` threads: the Eq. 1 f-way
/// tournament arrival at the model-optimal fan-in plus the hot-line
/// wakeup (STOUR's notification is the same released flag).
pub fn stour_episode_ns(topo: &Topology, p: usize) -> f64 {
    if p <= 1 {
        return topo.epsilon_ns();
    }
    let k = Params::of(topo, p);
    let f = optimal_fanin_int(topo, p);
    arrival_cost_ns(p, f, k.alpha, k.l) + k.wakeup_ns(p)
}

/// The four predicted curves over a sweep grid.
pub fn predicted_curves(topo: &Topology, grid: &[usize]) -> Vec<CrossoverPoint> {
    grid.iter()
        .map(|&p| CrossoverPoint {
            p,
            shy_ctr_ns: shy_ctr_episode_ns(topo, p),
            shy_proxy_ns: shy_proxy_episode_ns(topo, p),
            sense_ns: sense_episode_ns(topo, p),
            stour_ns: stour_episode_ns(topo, p),
        })
        .collect()
}

/// Index into `grid` of the first thread count at which `SHY-CTR` costs
/// more than the best no-lock barrier, or `None` if the contender never
/// loses on this grid. Index 0 is the degenerate "loses everywhere"
/// verdict — the common case on LSE parts, where FAA is priced well below
/// the CAS pair.
pub fn predicted_crossover_index(topo: &Topology, grid: &[usize]) -> Option<usize> {
    predicted_curves(topo, grid).iter().position(|pt| pt.shy_ctr_ns > pt.reference_ns())
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_topology::{Platform, RmwCosts, Topology};

    const GRID: [usize; 6] = [2, 4, 8, 16, 32, 64];

    #[test]
    fn curves_grow_monotonically_in_p() {
        for platform in Platform::ARM {
            let t = Topology::preset(platform);
            let curves = predicted_curves(&t, &GRID);
            for w in curves.windows(2) {
                assert!(w[1].shy_ctr_ns > w[0].shy_ctr_ns, "{platform}: SHY-CTR not monotone");
                assert!(w[1].sense_ns > w[0].sense_ns, "{platform}: SENSE not monotone");
                assert!(w[1].stour_ns > w[0].stour_ns, "{platform}: STOUR not monotone");
            }
        }
    }

    #[test]
    fn contender_loses_somewhere_on_every_arm_platform() {
        for platform in Platform::ARM {
            let t = Topology::preset(platform);
            let idx = predicted_crossover_index(&t, &GRID);
            assert!(idx.is_some(), "{platform}: SHY-CTR never loses — model broken");
        }
    }

    #[test]
    fn contender_gap_widens_with_scale() {
        // The lock adds a second hot-line write (plus failed CASes) per
        // arrival, so its deficit vs SENSE must grow superlinearly in p.
        let t = Topology::preset(Platform::Kunpeng920);
        let c = predicted_curves(&t, &GRID);
        let gap_small = c[0].shy_ctr_ns - c[0].sense_ns;
        let gap_large = c[5].shy_ctr_ns - c[5].sense_ns;
        assert!(gap_large > gap_small * 4.0, "gap {gap_small} → {gap_large}");
    }

    /// Hand-computed SENSE pin, ThunderX2 at p = 2 (one socket):
    /// L = mean remote latency over 2 cores = 24, α = 0.9, ε = 1.2,
    /// inv = 22, c = 12; FAA surcharge = 0.6·1.2 + 0.35·24 = 9.12.
    ///   arrival 0: 24 + 21.6 + 9.12        = 54.72
    ///   arrival 1: 24 + 21.6 + 22 + 9.12   = 76.72
    ///   wakeup:    1.9·24 + (22 + 12)·1    = 79.6
    ///   total                               = 211.04
    #[test]
    fn sense_pin_thunderx2_p2() {
        let t = Topology::preset(Platform::ThunderX2);
        let inv = t.coherence().inv_ns;
        let read_c = t.coherence().read_contention_ns;
        assert_eq!((inv, read_c), (22.0, 12.0), "pin assumes calibrated coherence params");
        assert!((sense_episode_ns(&t, 2) - 211.04).abs() < 1e-9);
    }

    #[test]
    fn llsc_pricing_narrows_the_contender_deficit() {
        // Phytium's LL/SC table makes the contended FAA (frac 1.2) dearer
        // than the CAS-ok (frac 0.5), so SHY-CTR's relative deficit vs
        // SENSE at p = 2 must be smaller than on the LSE parts, where FAA
        // is the cheap op.
        let rel_deficit = |pf: Platform| {
            let t = Topology::preset(pf);
            (shy_ctr_episode_ns(&t, 2) - sense_episode_ns(&t, 2)) / sense_episode_ns(&t, 2)
        };
        let phytium = rel_deficit(Platform::Phytium2000Plus);
        for lse in [Platform::ThunderX2, Platform::Kunpeng920] {
            assert!(
                phytium < rel_deficit(lse),
                "LL/SC FAA pricing should flatter the contender: {phytium} vs {:?}",
                rel_deficit(lse)
            );
        }
    }

    #[test]
    fn equal_costs_still_leave_the_lock_overhead() {
        // Under a legacy (uniform) table the contender still loses — the
        // split pricing changes the margin, not the verdict.
        let t = Topology::preset(Platform::Kunpeng920).with_rmw_costs(RmwCosts::legacy());
        assert_eq!(predicted_crossover_index(&t, &GRID), Some(0));
    }

    #[test]
    fn degenerate_p1_is_free() {
        let t = Topology::preset(Platform::Phytium2000Plus);
        assert_eq!(shy_ctr_episode_ns(&t, 1), t.epsilon_ns());
        assert_eq!(sense_episode_ns(&t, 1), t.epsilon_ns());
    }
}

//! Notification-Phase cost models (Section V-C, Eqs. 3–5) and the
//! per-platform wake-up recommendation.
//!
//! * Global wake-up: `T_global = ((P−1)·α_i + 1)·L_i + c·(P−1)` — one store
//!   invalidating P−1 spinner copies, then P−1 contended re-reads.
//! * Binary-tree wake-up: `T_tree = ⌈log₂(P+1)⌉·(α_i + 1)·L_i` — a chain of
//!   single-copy flag writes down the tree.
//! * NUMA-tree wake-up: a binary tree over the `⌈P/N_c⌉` cluster leaders
//!   at the far layer, then one global flip per cluster at the near layer
//!   — [`numa_tree_wakeup_ns`].
//!
//! Which wins depends on the machine's `α_i` and contention coefficient
//! `c`: the paper finds global wake-up best on Kunpeng 920 and tree
//! wake-up best on Phytium 2000+ and ThunderX2, with the curves merging for
//! small `P` — all three behaviours fall out of these two formulas.

use armbar_topology::{LayerId, Topology};

/// Eq. 3: global (sense-flip) wake-up cost for `p` threads.
pub fn global_wakeup_ns(p: usize, alpha: f64, l_ns: f64, c_ns: f64) -> f64 {
    assert!(p >= 1);
    if p == 1 {
        return 0.0;
    }
    let n = (p - 1) as f64;
    (n * alpha + 1.0) * l_ns + c_ns * n
}

/// Eq. 4: binary-tree wake-up cost for `p` threads.
pub fn tree_wakeup_ns(p: usize, alpha: f64, l_ns: f64) -> f64 {
    assert!(p >= 1);
    if p == 1 {
        return 0.0;
    }
    ((p + 1) as f64).log2().ceil() * (alpha + 1.0) * l_ns
}

/// Eq. 5: NUMA-aware hierarchical wake-up cost for `p` threads on a
/// machine with clusters of `n_c` cores.
///
/// The `m = ⌈p / n_c⌉` cluster leaders are woken by a binary tree over the
/// far layer (Eq. 4 with `m` participants), after which every leader flips
/// one cluster-local flag waking its `k − 1` siblings, `k = min(n_c, p)`,
/// at the near layer's global cost (Eq. 3):
///
/// ```text
/// T_numa = ⌈log₂(m+1)⌉·(α_far + 1)·L_far          (cross-cluster tree)
///        + ((k−1)·α_near + 1)·L_near + c·(k−1)    (intra-cluster flip)
/// ```
///
/// With a single cluster (`n_c ≥ p`) the cross term vanishes and the
/// formula reduces exactly to Eq. 3; with single-core clusters it reduces
/// to Eq. 4 over the far layer.
pub fn numa_tree_wakeup_ns(
    p: usize,
    n_c: usize,
    alpha_far: f64,
    l_far_ns: f64,
    alpha_near: f64,
    l_near_ns: f64,
    c_ns: f64,
) -> f64 {
    assert!(p >= 1);
    assert!(n_c >= 1, "a cluster holds at least one core");
    if p == 1 {
        return 0.0;
    }
    let m = p.div_ceil(n_c);
    let k = n_c.min(p);
    let cross =
        if m > 1 { ((m + 1) as f64).log2().ceil() * (alpha_far + 1.0) * l_far_ns } else { 0.0 };
    let local = if k > 1 {
        ((k - 1) as f64 * alpha_near + 1.0) * l_near_ns + c_ns * (k - 1) as f64
    } else {
        0.0
    };
    cross + local
}

/// A wake-up policy recommendation derived from the models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeupChoice {
    /// Global sense flip is modeled cheaper.
    Global,
    /// Tree wake-up is modeled cheaper.
    Tree,
}

/// Compares the two wake-up schemes on `topo` at `p` threads.
///
/// This uses the *contention-calibrated* variants rather than Eq. 3
/// verbatim: on real parts the invalidation of the P−1 spinner copies is a
/// broadcast whose cost grows with the per-sharer serialization
/// coefficients (`CoherenceParams`), not a full `α·L` per copy — taking
/// Eq. 3 literally, global wake-up could never win, contradicting the
/// paper's own Kunpeng 920 measurement. The tree cost uses Eq. 4 with the
/// second-innermost layer latency, the typical parent→child distance of a
/// binary tree that spans clusters.
pub fn recommend_wakeup(topo: &Topology, p: usize) -> WakeupChoice {
    let alpha0 = topo.alpha(LayerId(0));
    let l0 = topo.layers()[0].latency_ns;
    let per_thread = topo.coherence().read_contention_ns + topo.coherence().inv_ns;
    let global = (1.0 + alpha0) * l0 + per_thread * (p.saturating_sub(1)) as f64;

    let edge_layer = topo.layers().len().min(2) - 1;
    let edge = &topo.layers()[edge_layer];
    let tree = tree_wakeup_ns(p, edge.alpha, edge.latency_ns);

    if global <= tree {
        WakeupChoice::Global
    } else {
        WakeupChoice::Tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_topology::Platform;

    #[test]
    fn formulas_at_small_p_are_near_equal() {
        // Paper Fig. 12: the global and tree curves coincide for small P.
        let (alpha, l, c) = (0.5, 24.0, 3.0);
        for p in 2..=4 {
            let g = global_wakeup_ns(p, alpha, l, c);
            let t = tree_wakeup_ns(p, alpha, l);
            assert!((g - t).abs() / t < 0.8, "p={p}: {g} vs {t}");
        }
    }

    #[test]
    fn global_grows_linearly_tree_logarithmically() {
        let (alpha, l, c) = (0.9, 24.0, 10.0);
        let g64 = global_wakeup_ns(64, alpha, l, c);
        let g32 = global_wakeup_ns(32, alpha, l, c);
        let t64 = tree_wakeup_ns(64, alpha, l);
        let t32 = tree_wakeup_ns(32, alpha, l);
        assert!(g64 / g32 > 1.9, "global should ~double");
        assert!(t64 / t32 < 1.3, "tree should grow by one level");
    }

    #[test]
    fn recommendations_match_the_paper() {
        // Section VI-B: global wins on Kunpeng 920; tree on Phytium and
        // ThunderX2 (at full machine width).
        use armbar_topology::Topology;
        assert_eq!(
            recommend_wakeup(&Topology::preset(Platform::Kunpeng920), 64),
            WakeupChoice::Global
        );
        assert_eq!(
            recommend_wakeup(&Topology::preset(Platform::Phytium2000Plus), 64),
            WakeupChoice::Tree
        );
        assert_eq!(
            recommend_wakeup(&Topology::preset(Platform::ThunderX2), 64),
            WakeupChoice::Tree
        );
    }

    #[test]
    fn single_thread_wakeup_is_free() {
        assert_eq!(global_wakeup_ns(1, 0.5, 24.0, 3.0), 0.0);
        assert_eq!(tree_wakeup_ns(1, 0.5, 24.0), 0.0);
    }

    #[test]
    fn costs_scale_with_layer_latency() {
        assert!(global_wakeup_ns(16, 0.5, 100.0, 0.0) > global_wakeup_ns(16, 0.5, 10.0, 0.0));
        assert!(tree_wakeup_ns(16, 0.5, 100.0) > tree_wakeup_ns(16, 0.5, 10.0));
    }

    #[test]
    fn numa_tree_reduces_to_eq3_on_one_cluster_and_eq4_on_singleton_clusters() {
        // n_c ≥ p: no cross-cluster tree, exactly Eq. 3 at the near layer.
        let a = numa_tree_wakeup_ns(16, 32, 0.9, 140.7, 0.5, 24.0, 3.0);
        assert!((a - global_wakeup_ns(16, 0.5, 24.0, 3.0)).abs() < 1e-12);
        // n_c = 1: no intra-cluster flip, exactly Eq. 4 at the far layer.
        let b = numa_tree_wakeup_ns(16, 1, 0.9, 140.7, 0.5, 24.0, 3.0);
        assert!((b - tree_wakeup_ns(16, 0.9, 140.7)).abs() < 1e-12);
        assert_eq!(numa_tree_wakeup_ns(1, 4, 0.5, 44.2, 0.5, 14.2, 0.8), 0.0);
    }

    /// Hand-computed Eq. 3–5 values from the paper's Tables I–III
    /// parameters (`ε`/`L_i` measured; `α_i` and `c` as calibrated in the
    /// presets). Any drift in the formulas trips these exact pins.
    #[test]
    fn table_parameter_pins() {
        // ThunderX2 (Table II: L0 = 24 ns, α = 0.9, c = 12 ns), p = 64:
        //   Eq. 3 = (63·0.9 + 1)·24 + 12·63 = 57.7·24 + 756 = 2140.8.
        assert!((global_wakeup_ns(64, 0.9, 24.0, 12.0) - 2140.8).abs() < 1e-9);
        //   Eq. 4 = ⌈log₂ 65⌉·1.9·24 = 7·45.6 = 319.2.
        assert!((tree_wakeup_ns(64, 0.9, 24.0) - 319.2).abs() < 1e-9);

        // Phytium 2000+ (Table I: L0 = 9.1, L1 = 42.3, α = 0.55, c = 5),
        // p = 64, N_c = 4: m = 16 leaders, k = 4 per core group.
        //   cross = ⌈log₂ 17⌉·1.55·42.3 = 5·65.565  = 327.825
        //   local = (3·0.55 + 1)·9.1 + 5·3 = 24.115 + 15 = 39.115
        let phytium = numa_tree_wakeup_ns(64, 4, 0.55, 42.3, 0.55, 9.1, 5.0);
        assert!((phytium - (327.825 + 39.115)).abs() < 1e-9, "{phytium}");

        // Kunpeng 920 (Table III: L0 = 14.2, L1 = 44.2, α = 0.5, c = 0.8),
        // p = 64, N_c = 4:
        //   cross = 5·1.5·44.2 = 331.5;  local = 2.5·14.2 + 0.8·3 = 37.9.
        let kunpeng = numa_tree_wakeup_ns(64, 4, 0.5, 44.2, 0.5, 14.2, 0.8);
        assert!((kunpeng - 369.4).abs() < 1e-9, "{kunpeng}");

        // ThunderX2, p = 64, N_c = 32: m = 2 sockets, k = 32.
        //   cross = ⌈log₂ 3⌉·1.9·140.7 = 2·267.33 = 534.66
        //   local = (31·0.9 + 1)·24 + 12·31 = 693.6 + 372 = 1065.6
        let tx2 = numa_tree_wakeup_ns(64, 32, 0.9, 140.7, 0.9, 24.0, 12.0);
        assert!((tx2 - (534.66 + 1065.6)).abs() < 1e-9, "{tx2}");
    }
}

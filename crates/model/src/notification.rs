//! Notification-Phase cost models (Section V-C, Eqs. 3 and 4) and the
//! per-platform wake-up recommendation.
//!
//! * Global wake-up: `T_global = ((P−1)·α_i + 1)·L_i + c·(P−1)` — one store
//!   invalidating P−1 spinner copies, then P−1 contended re-reads.
//! * Binary-tree wake-up: `T_tree = ⌈log₂(P+1)⌉·(α_i + 1)·L_i` — a chain of
//!   single-copy flag writes down the tree.
//!
//! Which wins depends on the machine's `α_i` and contention coefficient
//! `c`: the paper finds global wake-up best on Kunpeng 920 and tree
//! wake-up best on Phytium 2000+ and ThunderX2, with the curves merging for
//! small `P` — all three behaviours fall out of these two formulas.

use armbar_topology::{LayerId, Topology};

/// Eq. 3: global (sense-flip) wake-up cost for `p` threads.
pub fn global_wakeup_ns(p: usize, alpha: f64, l_ns: f64, c_ns: f64) -> f64 {
    assert!(p >= 1);
    if p == 1 {
        return 0.0;
    }
    let n = (p - 1) as f64;
    (n * alpha + 1.0) * l_ns + c_ns * n
}

/// Eq. 4: binary-tree wake-up cost for `p` threads.
pub fn tree_wakeup_ns(p: usize, alpha: f64, l_ns: f64) -> f64 {
    assert!(p >= 1);
    if p == 1 {
        return 0.0;
    }
    ((p + 1) as f64).log2().ceil() * (alpha + 1.0) * l_ns
}

/// A wake-up policy recommendation derived from the models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeupChoice {
    /// Global sense flip is modeled cheaper.
    Global,
    /// Tree wake-up is modeled cheaper.
    Tree,
}

/// Compares the two wake-up schemes on `topo` at `p` threads.
///
/// This uses the *contention-calibrated* variants rather than Eq. 3
/// verbatim: on real parts the invalidation of the P−1 spinner copies is a
/// broadcast whose cost grows with the per-sharer serialization
/// coefficients (`CoherenceParams`), not a full `α·L` per copy — taking
/// Eq. 3 literally, global wake-up could never win, contradicting the
/// paper's own Kunpeng 920 measurement. The tree cost uses Eq. 4 with the
/// second-innermost layer latency, the typical parent→child distance of a
/// binary tree that spans clusters.
pub fn recommend_wakeup(topo: &Topology, p: usize) -> WakeupChoice {
    let alpha0 = topo.alpha(LayerId(0));
    let l0 = topo.layers()[0].latency_ns;
    let per_thread = topo.coherence().read_contention_ns + topo.coherence().inv_ns;
    let global = (1.0 + alpha0) * l0 + per_thread * (p.saturating_sub(1)) as f64;

    let edge_layer = topo.layers().len().min(2) - 1;
    let edge = &topo.layers()[edge_layer];
    let tree = tree_wakeup_ns(p, edge.alpha, edge.latency_ns);

    if global <= tree {
        WakeupChoice::Global
    } else {
        WakeupChoice::Tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_topology::Platform;

    #[test]
    fn formulas_at_small_p_are_near_equal() {
        // Paper Fig. 12: the global and tree curves coincide for small P.
        let (alpha, l, c) = (0.5, 24.0, 3.0);
        for p in 2..=4 {
            let g = global_wakeup_ns(p, alpha, l, c);
            let t = tree_wakeup_ns(p, alpha, l);
            assert!((g - t).abs() / t < 0.8, "p={p}: {g} vs {t}");
        }
    }

    #[test]
    fn global_grows_linearly_tree_logarithmically() {
        let (alpha, l, c) = (0.9, 24.0, 10.0);
        let g64 = global_wakeup_ns(64, alpha, l, c);
        let g32 = global_wakeup_ns(32, alpha, l, c);
        let t64 = tree_wakeup_ns(64, alpha, l);
        let t32 = tree_wakeup_ns(32, alpha, l);
        assert!(g64 / g32 > 1.9, "global should ~double");
        assert!(t64 / t32 < 1.3, "tree should grow by one level");
    }

    #[test]
    fn recommendations_match_the_paper() {
        // Section VI-B: global wins on Kunpeng 920; tree on Phytium and
        // ThunderX2 (at full machine width).
        use armbar_topology::Topology;
        assert_eq!(
            recommend_wakeup(&Topology::preset(Platform::Kunpeng920), 64),
            WakeupChoice::Global
        );
        assert_eq!(
            recommend_wakeup(&Topology::preset(Platform::Phytium2000Plus), 64),
            WakeupChoice::Tree
        );
        assert_eq!(
            recommend_wakeup(&Topology::preset(Platform::ThunderX2), 64),
            WakeupChoice::Tree
        );
    }

    #[test]
    fn single_thread_wakeup_is_free() {
        assert_eq!(global_wakeup_ns(1, 0.5, 24.0, 3.0), 0.0);
        assert_eq!(tree_wakeup_ns(1, 0.5, 24.0), 0.0);
    }

    #[test]
    fn costs_scale_with_layer_latency() {
        assert!(global_wakeup_ns(16, 0.5, 100.0, 0.0) > global_wakeup_ns(16, 0.5, 10.0, 0.0));
        assert!(tree_wakeup_ns(16, 0.5, 100.0) > tree_wakeup_ns(16, 0.5, 10.0));
    }
}

//! Arrival-Phase cost model and the optimal fan-in (Section V-B-2).
//!
//! Under the paper's two assumptions — each arrival flag has a single copy
//! (padded flags), and the best case `W_R + (f−1)·R_R` holds at each
//! synchronization point — the Arrival-Phase of an f-way tournament costs
//!
//! ```text
//! T(f) = ⌈log_f P⌉ · ((1+α_i)·L_i + (f−1)·L_i) ≈ ⌈log_f P⌉ · (f+1) · L_i   (Eq. 1)
//! ```
//!
//! Setting `T'(f) = 0` (Eq. 2) gives `(ln f − 1)·f = α_i`; since the left
//! side is increasing and `0 ≤ α_i ≤ 1`, the continuous optimum lies in
//! `[e, 3.591]`, so the best integer fan-in is 3 or 4 — and because
//! power-of-two fan-ins preserve cluster alignment (`N_c ∈ {4, 32}`), the
//! paper fixes `f = 4`.

use armbar_topology::Topology;

/// Eq. 1: modeled Arrival-Phase cost for `p` threads with fan-in `f`, using
/// the α of the innermost layer and an effective layer latency `l_ns`.
///
/// # Panics
/// Panics when `f < 2` or `p < 1`.
pub fn arrival_cost_ns(p: usize, f: usize, alpha: f64, l_ns: f64) -> f64 {
    assert!(p >= 1);
    assert!(f >= 2, "a tournament group needs at least two members");
    if p == 1 {
        return 0.0;
    }
    let rounds = (p as f64).log(f as f64).ceil();
    rounds * ((1.0 + alpha) + (f as f64 - 1.0)) * l_ns
}

/// Eq. 2 solved: the continuous `f*` with `(ln f − 1)·f = α`, found by
/// bisection (the left side is strictly increasing for `f ≥ e`).
pub fn optimal_fanin_continuous(alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "the paper assumes 0 ≤ α ≤ 1");
    let g = |f: f64| (f.ln() - 1.0) * f - alpha;
    let (mut lo, mut hi) = (std::f64::consts::E, 3.591_122);
    // Guard the bracket (g(e) = -α ≤ 0; g(3.5912) ≈ 1 ≥ α).
    debug_assert!(g(lo) <= 1e-9 && g(hi) >= -1e-3);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if g(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The best *integer* fan-in for a machine: evaluates Eq. 1 with the
/// machine's innermost-layer parameters at the candidate integers around
/// the continuous optimum and returns the cheapest, preferring powers of
/// two on ties (the paper's cluster-alignment argument).
pub fn optimal_fanin_int(topo: &Topology, p: usize) -> usize {
    let alpha = topo.alpha(armbar_topology::LayerId(0));
    let l = topo.layers()[0].latency_ns;
    let mut best = 2usize;
    let mut best_cost = f64::INFINITY;
    for f in 2..=8 {
        let mut cost = arrival_cost_ns(p, f, alpha, l);
        // Tie-break: power-of-two fan-ins keep groups inside clusters.
        if !f.is_power_of_two() {
            cost += 1e-9;
        }
        if cost < best_cost {
            best = f;
            best_cost = cost;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_topology::{Platform, Topology};

    #[test]
    fn continuous_optimum_brackets_match_paper() {
        // Paper: 2.718 ≤ f* ≤ 3.591 over α ∈ [0, 1].
        let lo = optimal_fanin_continuous(0.0);
        let hi = optimal_fanin_continuous(1.0);
        assert!((lo - std::f64::consts::E).abs() < 1e-3, "f*(0) = {lo}");
        assert!((hi - 3.591).abs() < 1e-2, "f*(1) = {hi}");
    }

    #[test]
    fn continuous_optimum_is_monotone_in_alpha() {
        let mut prev = 0.0;
        for i in 0..=10 {
            let f = optimal_fanin_continuous(i as f64 / 10.0);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn continuous_optimum_satisfies_eq2() {
        for alpha in [0.0, 0.3, 0.55, 0.9, 1.0] {
            let f = optimal_fanin_continuous(alpha);
            assert!(((f.ln() - 1.0) * f - alpha).abs() < 1e-6, "α={alpha}");
        }
    }

    #[test]
    fn integer_optimum_is_4_on_all_paper_platforms() {
        for p in Platform::ARM {
            let t = Topology::preset(p);
            assert_eq!(optimal_fanin_int(&t, 64), 4, "{p}");
        }
    }

    #[test]
    fn arrival_cost_decreases_then_increases_in_f() {
        // T(f) over f ∈ 2..64 at P=64 should be non-monotone with an
        // interior minimum (this is what Figure 13 sweeps).
        let costs: Vec<f64> = (2..=64).map(|f| arrival_cost_ns(64, f, 0.5, 24.0)).collect();
        let min_idx = costs.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert!(min_idx > 0, "minimum must not be at f=2");
        assert!(min_idx < costs.len() - 1, "minimum must not be at f=64");
    }

    #[test]
    fn arrival_cost_single_thread_is_free() {
        assert_eq!(arrival_cost_ns(1, 4, 0.5, 24.0), 0.0);
    }

    #[test]
    fn arrival_cost_grows_with_latency() {
        assert!(arrival_cost_ns(64, 4, 0.5, 100.0) > arrival_cost_ns(64, 4, 0.5, 10.0));
    }

    #[test]
    #[should_panic(expected = "at least two members")]
    fn arrival_cost_rejects_fanin_1() {
        let _ = arrival_cost_ns(8, 1, 0.5, 10.0);
    }

    /// Hand-computed Eq. 1 values from the paper's Tables I–III parameters.
    #[test]
    fn table_parameter_pins() {
        // ThunderX2 (L0 = 24 ns, α = 0.9), p = 64, f = 4:
        //   ⌈log₄ 64⌉·((1 + 0.9) + 3)·24 = 3·4.9·24 = 352.8.
        assert!((arrival_cost_ns(64, 4, 0.9, 24.0) - 352.8).abs() < 1e-9);

        // Phytium 2000+ (L0 = 9.1 ns, α = 0.55), p = 64: f = 4 beats both
        // neighbours, with the exact costs
        //   f=2: 6·2.55·9.1 = 139.23   f=4: 3·4.55·9.1 = 124.215
        //   f=8: 2·8.55·9.1 = 155.61
        assert!((arrival_cost_ns(64, 2, 0.55, 9.1) - 139.23).abs() < 1e-9);
        assert!((arrival_cost_ns(64, 4, 0.55, 9.1) - 124.215).abs() < 1e-9);
        assert!((arrival_cost_ns(64, 8, 0.55, 9.1) - 155.61).abs() < 1e-9);

        // Kunpeng 920 (L0 = 14.2 ns, α = 0.5), p = 64, f = 4:
        //   3·4.5·14.2 = 191.7.
        assert!((arrival_cost_ns(64, 4, 0.5, 14.2) - 191.7).abs() < 1e-9);

        // Eq. 2 at the calibrated α values: f* stays in [e, 3.591], hence
        // integer fan-in 4 on every paper machine (power-of-two tie rule).
        assert!((optimal_fanin_continuous(0.55) - 3.2239).abs() < 1e-3);
        assert!((optimal_fanin_continuous(0.9) - 3.5123).abs() < 1e-3);
    }
}

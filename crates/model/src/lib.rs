//! # armbar-model — the paper's analytical cost models
//!
//! Executable forms of the equations in Sections III and V of
//! *"Optimizing Barrier Synchronization on ARMv8 Many-Core Architectures"*:
//!
//! * the four cache-operation costs `R_L`, `R_R`, `W_L`, `W_R`
//!   (Section III-B) — [`cache_ops`];
//! * the Arrival-Phase cost `T(f) = ⌈log_f P⌉(f+1)L_i` (Eq. 1), its
//!   derivative condition `(ln f − 1)f = α_i` (Eq. 2), and the optimal
//!   fan-in solver — [`fanin`];
//! * the Notification-Phase costs `T_global` (Eq. 3) and `T_tree` (Eq. 4)
//!   and the per-platform wake-up recommendation — [`notification`];
//! * the per-op-kind atomics pricing (DESIGN.md §17) and the predicted
//!   lock-counter-vs-SENSE/STOUR crossover per platform — [`crossover`].
//!
//! The models are deliberately simple — they exist to *choose parameters*
//! (fan-in 4; wake-up policy per platform) and to sanity-check the
//! simulator, not to predict absolute microseconds.

pub mod cache_ops;
pub mod crossover;
pub mod fanin;
pub mod notification;

pub use cache_ops::CacheOps;
pub use crossover::{
    predicted_crossover_index, predicted_curves, sense_episode_ns, shy_ctr_episode_ns,
    shy_proxy_episode_ns, stour_episode_ns, CrossoverPoint,
};
pub use fanin::{arrival_cost_ns, optimal_fanin_continuous, optimal_fanin_int};
pub use notification::{
    global_wakeup_ns, numa_tree_wakeup_ns, recommend_wakeup, tree_wakeup_ns, WakeupChoice,
};

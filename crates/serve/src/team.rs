//! Multi-tenant barrier teams: the server-side episode protocol.
//!
//! A [`Team`] is one named barrier group hosted by the coordination
//! server. Its hot path is deliberately leaner than the in-process
//! phasers: the entire arrival state of an epoch is **one** epoch-stamped
//! word — the same `(epoch << 12) | count` encoding as the phaser
//! membership word ([`armbar_core::phaser::EPOCH_SHIFT`]) — so N member
//! arrivals cost N fetch-adds on one cache line plus a *single* batched
//! wakeup flush through the owning shard, never N per-member notifies.
//!
//! The robustness semantics are the `RobustBarrier`/`RobustPhaser` ones,
//! re-derived for connections instead of threads:
//!
//! * **connection drop → eviction**: closing (or abruptly dropping) a
//!   [`Conn`] mid-epoch proxy-arrives on the slot's behalf so survivors
//!   never wait on a dead connection, and the next boundary reforms the
//!   team without it — abrupt drops mark the team `degraded`;
//! * **timeout → eviction**: a waiter past the team deadline evicts one
//!   unarrived slot per deadline lap (CAS-arbitrated against the slot's
//!   own late arrival, exactly like `Slots::claim_arrival`);
//! * **poisoning**: when recovery cannot apply (no evictable slot and the
//!   epoch still stuck), the first claimant poisons the team and every
//!   member fails fast with [`BarrierError::Poisoned`].
//!
//! ## Why the proxy claims are safe
//!
//! A proxy arrival must never count a slot into an epoch whose membership
//! word excludes it (that would release real members early). The commit
//! path therefore stores the terminal `DEAD_*` slot states **before**
//! publishing the next membership word, and every proxy path re-reads the
//! slot state *after* loading the word: under the crate's SeqCst
//! discipline, "state not yet dead after the word was read" proves the
//! slot is still counted in that word, and the per-slot ledger CAS then
//! arbitrates the claim exactly once. The one unclosable race — a commit
//! scan that misses a just-posted `LEAVING` flag and republishes the slot
//! into the next epoch — is bounded by the timeout eviction path, which
//! accepts `LEAVING` slots as candidates.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::Arc;
use std::time::{Duration, Instant};

use armbar_core::phaser::{COUNT_MASK, EPOCH_SHIFT};
use armbar_core::robust::BarrierError;

use crate::registry::ShardWake;

/// Slot lifecycle. `ACTIVE` slots are counted members; `LEAVING`/`EVICTED`
/// are transitions applied (to their `DEAD_*` terminal) at the next
/// boundary commit; `DEAD_*` slots are out of every later epoch.
const ACTIVE: u32 = 0;
const LEAVING: u32 = 1;
const EVICTED: u32 = 2;
const DEAD_LEFT: u32 = 3;
const DEAD_EVICTED: u32 = 4;

/// Per-slot connection state: a lifecycle word and the arrival ledger
/// (the last epoch this slot arrived — or was proxied — for). The ledger
/// CAS is the same claim arbitration the phaser uses: exactly one of
/// {own arrival, drop proxy, eviction proxy} counts per epoch.
#[derive(Default)]
struct Slot {
    state: AtomicU32,
    ledger: AtomicU32,
    evicted_at: AtomicU32,
}

/// Patience knobs for one team; the registry stamps its defaults onto
/// every team it creates.
#[derive(Debug, Clone)]
pub struct TeamConfig {
    /// Wall-clock budget per epoch before a waiter starts evicting (and,
    /// when eviction cannot apply, poisons).
    pub deadline: Duration,
    /// One timed park on the shard condvar; bounds wakeup loss windows.
    pub park_slice: Duration,
    /// Busy polls on the release word before parking.
    pub spin: u32,
}

impl Default for TeamConfig {
    fn default() -> Self {
        Self { deadline: Duration::from_secs(5), park_slice: Duration::from_millis(2), spin: 96 }
    }
}

/// Per-tenant counters (the serve-side analogue of the PR 1 tracing
/// counters): all Relaxed — exact totals, no ordering role.
#[derive(Default)]
struct Counters {
    arrivals: AtomicU64,
    proxy_arrivals: AtomicU64,
    episodes: AtomicU64,
    drops: AtomicU64,
    evictions: AtomicU64,
    parked_waits: AtomicU64,
}

/// A snapshot of one team's per-tenant metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeamMetrics {
    /// Own (non-proxy) arrivals counted into the batch word.
    pub arrivals: u64,
    /// Arrivals counted on behalf of dropped/evicted slots.
    pub proxy_arrivals: u64,
    /// Completed epochs that released at least one live member (a final
    /// all-proxy drain commit is not an episode — it releases nobody).
    pub episodes: u64,
    /// Abrupt connection drops (a `Conn` dropped without `close`).
    pub drops: u64,
    /// Timeout-path evictions by surviving waiters.
    pub evictions: u64,
    /// Waits that outlasted the spin stage and parked on the shard.
    pub parked_waits: u64,
}

/// One named barrier group hosted by the server. Created only through
/// [`Registry::register`](crate::registry::Registry::register); members
/// attach with [`Team::connect`] and synchronize through their [`Conn`].
pub struct Team {
    name: String,
    shard: usize,
    capacity: u32,
    /// The batched-arrival word: `(epoch << 12) | arrived`.
    arrivals: AtomicU32,
    /// The committed membership word: `(epoch << 12) | members`.
    membership: AtomicU32,
    /// Monotonic release clock: epochs `<= release` have committed.
    release: AtomicU32,
    /// 0 = healthy, else poisoner slot + 1.
    poison: AtomicU32,
    /// 0 = full strength, else the first epoch completed short-handed.
    degraded_at: AtomicU32,
    /// Set by the boundary commit that drained membership to zero.
    retired: AtomicU32,
    /// Next slot handed out by [`Team::connect`].
    next_conn: AtomicU32,
    slots: Box<[Slot]>,
    wake: Arc<ShardWake>,
    cfg: TeamConfig,
    counters: Counters,
}

impl Team {
    pub(crate) fn new(
        name: &str,
        members: usize,
        shard: usize,
        wake: Arc<ShardWake>,
        cfg: TeamConfig,
    ) -> Self {
        assert!(
            members >= 1 && members <= COUNT_MASK as usize,
            "team capacity must be 1..=4095, got {members}"
        );
        let capacity = members as u32;
        Self {
            name: name.to_string(),
            shard,
            capacity,
            arrivals: AtomicU32::new(1 << EPOCH_SHIFT),
            membership: AtomicU32::new((1 << EPOCH_SHIFT) | capacity),
            release: AtomicU32::new(0),
            poison: AtomicU32::new(0),
            degraded_at: AtomicU32::new(0),
            retired: AtomicU32::new(0),
            next_conn: AtomicU32::new(0),
            slots: (0..members).map(|_| Slot::default()).collect(),
            wake,
            cfg,
            counters: Counters::default(),
        }
    }

    /// The team's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Index of the registry shard that owns this team.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The member count the team was registered with.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// The epoch currently accepting arrivals.
    pub fn epoch(&self) -> u32 {
        self.membership.load(SeqCst) >> EPOCH_SHIFT
    }

    /// Members of the current epoch (shrinks as slots drop out).
    pub fn members(&self) -> usize {
        (self.membership.load(SeqCst) & COUNT_MASK) as usize
    }

    /// `"poisoned"`, `"degraded"` or `"ok"` — worst state wins.
    pub fn status(&self) -> &'static str {
        if self.poison.load(SeqCst) != 0 {
            "poisoned"
        } else if self.degraded_at.load(SeqCst) != 0 {
            "degraded"
        } else {
            "ok"
        }
    }

    /// Has membership drained to zero (every slot left or was evicted)?
    /// Retired teams are reclaimable by the registry sweep.
    pub fn retired(&self) -> bool {
        self.retired.load(SeqCst) != 0
    }

    /// Snapshot of the per-tenant counters.
    pub fn metrics(&self) -> TeamMetrics {
        TeamMetrics {
            arrivals: self.counters.arrivals.load(Relaxed),
            proxy_arrivals: self.counters.proxy_arrivals.load(Relaxed),
            episodes: self.counters.episodes.load(Relaxed),
            drops: self.counters.drops.load(Relaxed),
            evictions: self.counters.evictions.load(Relaxed),
            parked_waits: self.counters.parked_waits.load(Relaxed),
        }
    }

    /// Attaches the next free member slot; `None` once all `capacity`
    /// connections have been handed out (slots are never reused — a
    /// dropped member's slot stays dead and the team reforms smaller).
    pub fn connect(self: &Arc<Self>) -> Option<Conn> {
        let slot = self.next_conn.fetch_add(1, SeqCst);
        if slot < self.capacity {
            Some(Conn { team: Arc::clone(self), slot: slot as usize, attached: true })
        } else {
            None
        }
    }

    /// Claims the arrival of `slot` for `epoch` on the per-slot ledger.
    /// Exactly one claimant per (slot, epoch) wins; a stale claim (the
    /// ledger already at or past `epoch`) loses.
    fn claim(&self, slot: usize, epoch: u32) -> bool {
        let ledger = &self.slots[slot].ledger;
        let mut prev = ledger.load(SeqCst);
        loop {
            if prev >= epoch {
                return false;
            }
            match ledger.compare_exchange(prev, epoch, SeqCst, SeqCst) {
                Ok(_) => return true,
                Err(now) => prev = now,
            }
        }
    }

    /// Counts one claimed arrival into the batch word; the filling
    /// arrival commits the boundary inline.
    fn add_arrival(&self, epoch: u32, members: u32) {
        let prev = self.arrivals.fetch_add(1, SeqCst);
        debug_assert_eq!(prev >> EPOCH_SHIFT, epoch, "arrival word epoch drift");
        if (prev & COUNT_MASK) + 1 == members {
            self.commit(epoch);
        }
    }

    /// Boundary commit, run inline by whichever arrival (own or proxy)
    /// filled the batch word. Order matters: terminal slot states first
    /// (the proxy-safety proof depends on it), then the next epoch's
    /// words, then the release clock, then one batched wakeup flush.
    fn commit(&self, epoch: u32) {
        assert!(
            epoch < (u32::MAX >> EPOCH_SHIFT) - 1,
            "team {} exhausted its epoch space",
            self.name
        );
        let mut members = 0u32;
        for s in self.slots.iter() {
            match s.state.load(SeqCst) {
                ACTIVE => members += 1,
                LEAVING => s.state.store(DEAD_LEFT, SeqCst),
                EVICTED => s.state.store(DEAD_EVICTED, SeqCst),
                _ => {}
            }
        }
        if members == 0 {
            self.retired.store(1, SeqCst);
        }
        self.arrivals.store((epoch + 1) << EPOCH_SHIFT, SeqCst);
        self.membership.store(((epoch + 1) << EPOCH_SHIFT) | members, SeqCst);
        if members > 0 {
            self.counters.episodes.fetch_add(1, Relaxed);
        }
        self.release.store(epoch, SeqCst);
        self.wake.flush();
    }

    /// Health gate for `slot` — poisoned team or dead slot fails fast.
    fn check_health(&self, slot: usize) -> Result<(), BarrierError> {
        let by = self.poison.load(SeqCst);
        if by != 0 {
            return Err(BarrierError::Poisoned { tid: slot, by: by as usize - 1 });
        }
        match self.slots[slot].state.load(SeqCst) {
            ACTIVE => Ok(()),
            _ => Err(BarrierError::Evicted {
                tid: slot,
                episode: self.slots[slot].evicted_at.load(SeqCst),
            }),
        }
    }

    /// One member arrival: a ledger claim plus one fetch-add on the batch
    /// word. Returns the epoch arrived for (pass it to [`Team::wait`]).
    fn arrive(&self, slot: usize) -> Result<u32, BarrierError> {
        // Word first, health second: if the word already excludes this
        // slot, the commit that excluded it stored the dead state before
        // publishing, so the health check is guaranteed to catch it here
        // (claiming into a word we are not part of would over-count).
        let m = self.membership.load(SeqCst);
        self.check_health(slot)?;
        let epoch = m >> EPOCH_SHIFT;
        if !self.claim(slot, epoch) {
            // An eviction proxy raced us and already counted this epoch;
            // the eviction itself surfaces on the next health check.
            return Ok(epoch);
        }
        self.counters.arrivals.fetch_add(1, Relaxed);
        self.add_arrival(epoch, m & COUNT_MASK);
        Ok(epoch)
    }

    /// Blocks until `epoch` releases: a short spin on the release clock,
    /// then timed parks on the owning shard's condvar. Past the team
    /// deadline each lap evicts one unarrived slot (proxy-arriving for
    /// it); when no slot is evictable and the epoch is still stuck, the
    /// waiter poisons the team — first claimant reports `Timeout`,
    /// everyone else `Poisoned`.
    fn wait(&self, slot: usize, epoch: u32) -> Result<(), BarrierError> {
        for _ in 0..self.cfg.spin {
            if self.release.load(SeqCst) >= epoch {
                return Ok(());
            }
            std::hint::spin_loop();
        }
        self.counters.parked_waits.fetch_add(1, Relaxed);
        let mut polls = u64::from(self.cfg.spin);
        let mut next_recovery = Instant::now() + self.cfg.deadline;
        loop {
            if self.release.load(SeqCst) >= epoch {
                return Ok(());
            }
            let by = self.poison.load(SeqCst);
            if by != 0 {
                return Err(BarrierError::Poisoned { tid: slot, by: by as usize - 1 });
            }
            if Instant::now() >= next_recovery {
                if !self.try_evict(slot, epoch) && self.release.load(SeqCst) < epoch {
                    if self.claim_poison(slot) {
                        return Err(BarrierError::Timeout { tid: slot, addr: 0, spins: polls });
                    }
                    continue; // someone else poisoned first; report theirs
                }
                // Eviction (or a completed boundary) made progress; grant
                // the proxy a fresh deadline before escalating further.
                next_recovery = Instant::now() + self.cfg.deadline;
            }
            polls += 1;
            self.wake.park(self.cfg.park_slice, || {
                self.release.load(SeqCst) >= epoch || self.poison.load(SeqCst) != 0
            });
        }
    }

    /// Deadline recovery: evict one slot that has not arrived for the
    /// stuck `epoch`. Returns `true` when it made progress (evicted and
    /// proxied a slot, or found the boundary already moved). The waiter's
    /// own slot (`by`) is never a candidate — a member cannot evict
    /// itself; when its own arrival is the missing one, escalation falls
    /// through to poisoning.
    fn try_evict(&self, by: usize, epoch: u32) -> bool {
        for (i, s) in self.slots.iter().enumerate() {
            if i == by {
                continue;
            }
            let st = s.state.load(SeqCst);
            if st != ACTIVE && st != LEAVING {
                continue;
            }
            if s.ledger.load(SeqCst) >= epoch {
                continue;
            }
            if st == ACTIVE {
                if s.state.compare_exchange(ACTIVE, EVICTED, SeqCst, SeqCst).is_err() {
                    continue;
                }
                s.evicted_at.store(epoch, SeqCst);
                self.counters.evictions.fetch_add(1, Relaxed);
                self.mark_degraded(epoch);
            }
            // (A LEAVING candidate is a drop whose boundary-race corner
            // hit: its proxy claim lost to a commit that republished the
            // slot. Re-proxy it here.)
            let m = self.membership.load(SeqCst);
            if m >> EPOCH_SHIFT != epoch {
                return true; // the stuck epoch committed meanwhile
            }
            let now = s.state.load(SeqCst);
            if now == DEAD_LEFT || now == DEAD_EVICTED {
                continue; // a boundary excluded it after all
            }
            if self.claim(i, epoch) {
                self.counters.proxy_arrivals.fetch_add(1, Relaxed);
                self.add_arrival(epoch, m & COUNT_MASK);
            }
            return true;
        }
        false
    }

    /// Detach `slot`: flags it for removal at the next boundary and
    /// proxy-arrives for the open epoch so nobody waits on it. `abrupt`
    /// distinguishes a connection drop (marks the team degraded) from a
    /// graceful [`Conn::close`] (does not).
    fn disconnect(&self, slot: usize, abrupt: bool) {
        if self.slots[slot].state.compare_exchange(ACTIVE, LEAVING, SeqCst, SeqCst).is_err() {
            return; // already leaving, evicted, or dead
        }
        let m = self.membership.load(SeqCst);
        let epoch = m >> EPOCH_SHIFT;
        if abrupt {
            self.counters.drops.fetch_add(1, Relaxed);
            self.mark_degraded(epoch);
        }
        // Safe-claim order (see module docs): the state is re-read after
        // the membership word; not-yet-dead proves the word counts us.
        if self.slots[slot].state.load(SeqCst) != LEAVING {
            return;
        }
        if self.claim(slot, epoch) {
            self.counters.proxy_arrivals.fetch_add(1, Relaxed);
            self.add_arrival(epoch, m & COUNT_MASK);
        }
    }

    fn mark_degraded(&self, epoch: u32) {
        let _ = self.degraded_at.compare_exchange(0, epoch.max(1), SeqCst, SeqCst);
    }

    /// First-poisoner ticket (the `RobustBarrier::claim_poison` shape).
    fn claim_poison(&self, by: usize) -> bool {
        let won = self.poison.compare_exchange(0, by as u32 + 1, SeqCst, SeqCst).is_ok();
        if won {
            self.wake.flush_now(); // wake everyone parked on the shard
        }
        won
    }
}

/// One member's connection to a [`Team`]. Dropping it without
/// [`Conn::close`] models an abrupt connection loss: the slot is proxied
/// out and the team completes the epoch `degraded`.
pub struct Conn {
    team: Arc<Team>,
    slot: usize,
    attached: bool,
}

impl Conn {
    /// The member slot this connection holds.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The team this connection belongs to.
    pub fn team(&self) -> &Arc<Team> {
        &self.team
    }

    /// Arrives at the open epoch; returns the epoch to [`Conn::wait`] on.
    pub fn arrive(&self) -> Result<u32, BarrierError> {
        self.team.arrive(self.slot)
    }

    /// Blocks until `epoch` releases (see [`Team::wait`] semantics).
    pub fn wait(&self, epoch: u32) -> Result<(), BarrierError> {
        self.team.wait(self.slot, epoch)
    }

    /// `arrive` + `wait`: one full barrier episode for this member.
    pub fn arrive_and_wait(&self) -> Result<u32, BarrierError> {
        let epoch = self.arrive()?;
        self.team.wait(self.slot, epoch)?;
        Ok(epoch)
    }

    /// Graceful goodbye: leaves the team at the next boundary without
    /// marking it degraded.
    pub fn close(mut self) {
        self.attached = false;
        self.team.disconnect(self.slot, false);
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        if self.attached {
            self.team.disconnect(self.slot, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn team(members: usize, cfg: TeamConfig) -> (Registry, Arc<Team>) {
        let reg = Registry::new(1, cfg);
        let team = reg.register("t", members).unwrap();
        (reg, team)
    }

    fn patient() -> TeamConfig {
        TeamConfig { deadline: Duration::from_secs(30), ..TeamConfig::default() }
    }

    fn impatient() -> TeamConfig {
        TeamConfig { deadline: Duration::from_millis(40), ..TeamConfig::default() }
    }

    #[test]
    fn single_driver_completes_episodes() {
        let (_reg, team) = team(3, patient());
        let conns: Vec<Conn> = (0..3).map(|_| team.connect().unwrap()).collect();
        assert!(team.connect().is_none(), "capacity is exhausted");
        for ep in 1..=10u32 {
            for c in &conns {
                assert_eq!(c.arrive().unwrap(), ep);
            }
            for c in &conns {
                c.wait(ep).unwrap();
            }
        }
        let m = team.metrics();
        assert_eq!(m.episodes, 10);
        assert_eq!(m.arrivals, 30);
        assert_eq!((m.proxy_arrivals, m.drops, m.evictions), (0, 0, 0));
        assert_eq!(team.status(), "ok");
    }

    #[test]
    fn threaded_members_rendezvous() {
        let (_reg, team) = team(4, patient());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = team.connect().unwrap();
                s.spawn(move || {
                    for _ in 0..50 {
                        c.arrive_and_wait().unwrap();
                    }
                    c.close();
                });
            }
        });
        let m = team.metrics();
        assert_eq!(m.episodes, 50);
        assert_eq!(m.arrivals, 200);
        assert_eq!(team.status(), "ok");
        assert!(team.retired(), "all members closed -> drained");
    }

    #[test]
    fn abrupt_drop_proxies_and_degrades() {
        let (_reg, team) = team(3, patient());
        let a = team.connect().unwrap();
        let b = team.connect().unwrap();
        let victim = team.connect().unwrap();
        drop(victim); // no close(): abrupt connection loss
        let ep = a.arrive().unwrap();
        b.arrive().unwrap();
        a.wait(ep).unwrap(); // must not hang: the drop proxied slot 2
        b.wait(ep).unwrap();
        let m = team.metrics();
        assert_eq!((m.episodes, m.drops, m.proxy_arrivals), (1, 1, 1));
        assert_eq!(team.status(), "degraded");
        assert_eq!(team.members(), 2, "next epoch reformed without the victim");
    }

    #[test]
    fn graceful_close_does_not_degrade() {
        let (_reg, team) = team(2, patient());
        let a = team.connect().unwrap();
        let b = team.connect().unwrap();
        b.close();
        let ep = a.arrive().unwrap();
        a.wait(ep).unwrap();
        assert_eq!(team.status(), "ok");
        assert_eq!(team.members(), 1);
        assert_eq!(team.metrics().drops, 0);
    }

    #[test]
    fn timeout_evicts_silent_member_and_survivors_continue() {
        let (_reg, team) = team(2, impatient());
        let a = team.connect().unwrap();
        let silent = team.connect().unwrap();
        let ep = a.arrive().unwrap();
        a.wait(ep).unwrap(); // deadline lap evicts the silent slot
        assert_eq!(team.status(), "degraded");
        assert_eq!(team.metrics().evictions, 1);
        // The evicted member's next arrival fails fast, survivors carry on.
        assert!(matches!(silent.arrive(), Err(BarrierError::Evicted { tid: 1, .. })));
        let ep = a.arrive().unwrap();
        a.wait(ep).unwrap();
        assert_eq!(team.metrics().episodes, 2);
    }

    #[test]
    fn unarrivable_epoch_poisons_all_members() {
        // A sole member that never arrives but waits on a future epoch:
        // nothing is evictable (its own arrival is the one missing), so the
        // waiter must poison, and later members see Poisoned.
        let (_reg, team) = team(1, impatient());
        let a = team.connect().unwrap();
        let err = a.wait(1).unwrap_err();
        assert!(matches!(err, BarrierError::Timeout { tid: 0, .. }), "got {err:?}");
        assert_eq!(team.status(), "poisoned");
        assert!(matches!(a.arrive(), Err(BarrierError::Poisoned { by: 0, .. })));
    }

    #[test]
    fn wrongful_evictee_sees_evicted_not_hang() {
        let (_reg, team) = team(2, impatient());
        let a = team.connect().unwrap();
        let late = team.connect().unwrap();
        let ep = a.arrive().unwrap();
        a.wait(ep).unwrap(); // evicts `late`
                             // The late member's own arrival claim lost to the eviction proxy;
                             // arrive() swallows that, and the error surfaces on re-arrival.
        match late.arrive() {
            Err(BarrierError::Evicted { tid: 1, episode }) => assert_eq!(episode, 1),
            other => panic!("expected Evicted, got {other:?}"),
        }
    }

    #[test]
    fn drain_commit_is_not_an_episode() {
        let (_reg, team) = team(2, patient());
        let a = team.connect().unwrap();
        let b = team.connect().unwrap();
        let ep = a.arrive().unwrap();
        b.arrive().unwrap();
        a.wait(ep).unwrap();
        // Both leave mid-epoch: the closing proxies fill epoch 2, but that
        // commit releases nobody and must not count as an episode.
        a.close();
        b.close();
        assert!(team.retired());
        assert_eq!(team.metrics().episodes, 1);
    }
}

//! The sharded team registry and the per-shard batched wakeup path.
//!
//! ## Shard ownership
//!
//! Teams are owned by `shards` independent shards, selected by an FNV-1a
//! hash of the team name — registration and lookup lock only the owning
//! shard's map, so tenant churn never serializes globally. The shard also
//! owns the *wakeup* state its teams share: one mutex + condvar pair that
//! every parked waiter of every co-shard team sleeps on.
//!
//! ## Batched, backpressure-aware wakeups
//!
//! A boundary commit does not notify its waiters directly. It bumps the
//! team's release clock and calls [`ShardWake::flush`], which:
//!
//! * **elides** the flush entirely when nobody in the shard is parked
//!   (the common case under a load driver that self-releases teams) —
//!   zero syscalls on the fast path;
//! * **coalesces** with an in-flight flush: if another commit already
//!   holds the flush ticket, its broadcast is ordered after this one's
//!   release store, so this commit skips the syscall — releases for
//!   co-shard teams merge into one condvar broadcast;
//! * otherwise takes the shard lock and broadcasts once; every parked
//!   waiter re-checks its own team's release clock.
//!
//! The elision is sound because a waiter increments the parked count
//! *before* checking its predicate under the shard lock: a flusher that
//! reads `parked == 0` after its release store is therefore ordered
//! before the waiter's predicate check, which must then observe the
//! release (all SeqCst). Timed park slices bound the cost of any window
//! this argument does not cover (e.g. future relaxations).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::team::{Team, TeamConfig};

/// FNV-1a, the workspace's stable name hash: deterministic across runs,
/// platforms, and toolchains (a seeded `HashMap` hasher is none of those,
/// and shard placement must be reproducible for the balance metrics).
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Aggregated wakeup-path counters across all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WakeStats {
    /// Condvar broadcasts actually issued.
    pub flushes: u64,
    /// Flushes skipped because no waiter was parked on the shard.
    pub elided: u64,
    /// Flushes merged into another commit's in-flight broadcast.
    pub coalesced: u64,
}

/// Per-shard wakeup state shared by every team the shard owns.
pub struct ShardWake {
    mx: Mutex<()>,
    cv: Condvar,
    parked: AtomicU32,
    /// Flush ticket: set while a broadcast is pending; a second committer
    /// seeing it set may skip its own (coalescing).
    pending: AtomicU32,
    flushes: AtomicU64,
    elided: AtomicU64,
    coalesced: AtomicU64,
}

impl ShardWake {
    fn new() -> Self {
        Self {
            mx: Mutex::new(()),
            cv: Condvar::new(),
            parked: AtomicU32::new(0),
            pending: AtomicU32::new(0),
            flushes: AtomicU64::new(0),
            elided: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// The batched wakeup: one broadcast covers every release that landed
    /// since the last flush, and no broadcast happens at all when nobody
    /// is parked. Call *after* storing the release the waiters poll.
    pub(crate) fn flush(&self) {
        if self.parked.load(SeqCst) == 0 {
            self.elided.fetch_add(1, Relaxed);
            return;
        }
        if self.pending.swap(1, SeqCst) != 0 {
            // An in-flight flusher clears the ticket *before* broadcasting,
            // so its broadcast is ordered after our release store.
            self.coalesced.fetch_add(1, Relaxed);
            return;
        }
        self.flush_now();
    }

    /// Unconditional broadcast (poison path, and the tail of `flush`).
    pub(crate) fn flush_now(&self) {
        let g = self.mx.lock();
        self.pending.store(0, SeqCst);
        drop(g);
        self.cv.notify_all();
        self.flushes.fetch_add(1, Relaxed);
    }

    /// One timed park: sleeps up to `slice` unless `pred` already holds
    /// (checked under the shard lock, so a concurrent flush cannot slip
    /// between the check and the sleep). Callers loop.
    pub(crate) fn park(&self, slice: Duration, pred: impl Fn() -> bool) {
        self.parked.fetch_add(1, SeqCst);
        let mut g = self.mx.lock();
        if !pred() {
            let _ = self.cv.wait_for(&mut g, slice);
        }
        drop(g);
        self.parked.fetch_sub(1, SeqCst);
    }

    fn stats(&self) -> WakeStats {
        WakeStats {
            flushes: self.flushes.load(Relaxed),
            elided: self.elided.load(Relaxed),
            coalesced: self.coalesced.load(Relaxed),
        }
    }
}

struct Shard {
    teams: Mutex<HashMap<String, Arc<Team>>>,
    wake: Arc<ShardWake>,
}

/// The name-sharded team registry: the server's front door.
pub struct Registry {
    shards: Box<[Shard]>,
    cfg: TeamConfig,
}

impl Registry {
    /// A registry of `shards` independent shards; `cfg` is stamped onto
    /// every team registered through it.
    pub fn new(shards: usize, cfg: TeamConfig) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let shards = (0..shards)
            .map(|_| Shard { teams: Mutex::new(HashMap::new()), wake: Arc::new(ShardWake::new()) })
            .collect();
        Self { shards, cfg }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `name`.
    pub fn shard_of(&self, name: &str) -> usize {
        (fnv1a(name) % self.shards.len() as u64) as usize
    }

    /// Registers (or re-joins) the named team. Registering an existing
    /// name with the same member count returns the existing team — that
    /// is how late members find their group; a different member count is
    /// a configuration clash and errors.
    pub fn register(&self, name: &str, members: usize) -> Result<Arc<Team>, String> {
        let shard = self.shard_of(name);
        let mut teams = self.shards[shard].teams.lock();
        match teams.get(name) {
            Some(t) if t.capacity() == members => Ok(Arc::clone(t)),
            Some(t) => Err(format!(
                "team {name:?} already registered with {} members (asked for {members})",
                t.capacity()
            )),
            None => {
                let team = Arc::new(Team::new(
                    name,
                    members,
                    shard,
                    Arc::clone(&self.shards[shard].wake),
                    self.cfg.clone(),
                ));
                teams.insert(name.to_string(), Arc::clone(&team));
                Ok(team)
            }
        }
    }

    /// Looks up a registered team.
    pub fn get(&self, name: &str) -> Option<Arc<Team>> {
        let shard = self.shard_of(name);
        self.shards[shard].teams.lock().get(name).cloned()
    }

    /// Removes retired teams (membership drained to zero); returns how
    /// many were reclaimed.
    pub fn sweep_retired(&self) -> usize {
        let mut swept = 0;
        for shard in self.shards.iter() {
            let mut teams = shard.teams.lock();
            let before = teams.len();
            teams.retain(|_, t| !t.retired());
            swept += before - teams.len();
        }
        swept
    }

    /// Registered teams per shard (the balance the hash is meant to buy).
    pub fn teams_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.teams.lock().len()).collect()
    }

    /// Every registered team, sorted by name (a stable iteration order
    /// for metrics rendering, independent of shard count).
    pub fn teams_sorted(&self) -> Vec<Arc<Team>> {
        let mut all: Vec<Arc<Team>> = self
            .shards
            .iter()
            .flat_map(|s| s.teams.lock().values().cloned().collect::<Vec<_>>())
            .collect();
        all.sort_by(|a, b| a.name().cmp(b.name()));
        all
    }

    /// Wakeup-path counters summed over all shards.
    pub fn wake_stats(&self) -> WakeStats {
        let mut total = WakeStats::default();
        for s in self.shards.iter() {
            let w = s.wake.stats();
            total.flushes += w.flushes;
            total.elided += w.elided;
            total.coalesced += w.coalesced;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors; shard placement (and hence
        // the bench balance metric) depends on these never changing.
        assert_eq!(fnv1a(""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a("a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a("foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn register_is_get_or_create_and_rejects_clashes() {
        let reg = Registry::new(4, TeamConfig::default());
        let a = reg.register("alpha", 3).unwrap();
        let again = reg.register("alpha", 3).unwrap();
        assert!(Arc::ptr_eq(&a, &again), "same name + members rejoins");
        assert!(reg.register("alpha", 5).is_err(), "member-count clash");
        assert!(reg.get("alpha").is_some());
        assert!(reg.get("beta").is_none());
    }

    #[test]
    fn shard_of_is_stable_and_teams_land_on_their_shard() {
        let reg = Registry::new(8, TeamConfig::default());
        for name in ["a", "b", "team-00042", "zz-top"] {
            let t = reg.register(name, 2).unwrap();
            assert_eq!(t.shard(), reg.shard_of(name));
            assert_eq!(reg.shard_of(name), (fnv1a(name) % 8) as usize);
        }
        assert_eq!(reg.teams_per_shard().iter().sum::<usize>(), 4);
    }

    #[test]
    fn teams_sorted_is_name_ordered_across_shard_counts() {
        let names = ["delta", "alpha", "charlie", "bravo"];
        for shards in [1, 3, 8] {
            let reg = Registry::new(shards, TeamConfig::default());
            for n in names {
                reg.register(n, 2).unwrap();
            }
            let sorted: Vec<String> =
                reg.teams_sorted().iter().map(|t| t.name().to_string()).collect();
            assert_eq!(sorted, ["alpha", "bravo", "charlie", "delta"]);
        }
    }

    #[test]
    fn sweep_reclaims_only_retired_teams() {
        let reg = Registry::new(2, TeamConfig::default());
        let live = reg.register("live", 2).unwrap();
        let done = reg.register("done", 1).unwrap();
        done.connect().unwrap().close(); // drains membership to zero
        assert!(done.retired());
        assert_eq!(reg.sweep_retired(), 1);
        assert!(reg.get("done").is_none());
        assert!(reg.get("live").is_some());
        drop(live);
    }

    #[test]
    fn flush_with_nobody_parked_is_elided() {
        let wake = ShardWake::new();
        wake.flush();
        wake.flush();
        let stats = wake.stats();
        assert_eq!(stats.elided, 2);
        assert_eq!(stats.flushes, 0);
    }

    #[test]
    fn park_wakes_on_flush() {
        let wake = Arc::new(ShardWake::new());
        let released = Arc::new(AtomicU32::new(0));
        let (w, r) = (Arc::clone(&wake), Arc::clone(&released));
        let h = std::thread::spawn(move || {
            while r.load(SeqCst) == 0 {
                w.park(Duration::from_millis(50), || r.load(SeqCst) != 0);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        released.store(1, SeqCst);
        wake.flush();
        h.join().unwrap();
        // Either the flush broadcast or a timed slice woke it; both fine —
        // the counters just have to account for every flush call.
        let stats = wake.stats();
        assert_eq!(stats.flushes + stats.elided + stats.coalesced, 1);
    }
}

//! `BENCH_serve.json` rendering: the workspace's baseline-carry-forward
//! convention (see `bench_sim`/`bench_churn`), factored into a reusable
//! library so both the `serve_load` binary and tests share one writer.
//!
//! Document shape:
//!
//! ```json
//! {
//!   "benches": { "serve_episodes_per_sec": 123, ... },
//!   "baseline": { "serve_episodes_per_sec": 120, ... }
//! }
//! ```
//!
//! `benches` is always this run; `baseline` is carried forward verbatim
//! from the committed file, with keys new to this run seeded from the
//! fresh measurement so future deltas always have a reference.

/// One reported metric: a stable key and an integral-rendered value.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// JSON key (e.g. `serve_episodes_per_sec`).
    pub key: String,
    /// Value; rendered with no fractional digits.
    pub value: f64,
}

impl Point {
    /// Convenience constructor.
    pub fn new(key: &str, value: f64) -> Self {
        Self { key: key.to_string(), value }
    }
}

/// Minimal flat-JSON number extraction: finds `"key": <number>` anywhere
/// (first hit wins — `benches` precedes `baseline`).
pub fn first_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))?;
    rest[..end].parse().ok()
}

/// Extracts the committed `baseline` section verbatim, if present.
pub fn baseline_section(json: &str) -> Option<String> {
    let at = json.find("\"baseline\": {")?;
    let open = at + "\"baseline\": ".len();
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn render_section(points: &[Point]) -> String {
    let mut s = String::from("{\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        s.push_str(&format!("    \"{}\": {:.0}{sep}\n", p.key, p.value));
    }
    s.push_str("  }");
    s
}

/// Renders the full two-section document, carrying `previous`'s baseline
/// forward (new keys seeded from the fresh points).
pub fn render_doc(points: &[Point], previous: Option<&str>) -> String {
    let old_baseline = previous.and_then(baseline_section);
    let carried: Vec<Point> = points
        .iter()
        .map(|p| {
            let value =
                old_baseline.as_deref().and_then(|o| first_number(o, &p.key)).unwrap_or(p.value);
            Point { key: p.key.clone(), value }
        })
        .collect();
    format!(
        "{{\n  \"benches\": {},\n  \"baseline\": {}\n}}\n",
        render_section(points),
        render_section(&carried)
    )
}

/// `(key, committed, fresh)` rows for every point also present in the
/// committed document's `benches` section.
pub fn deltas(points: &[Point], previous: &str) -> Vec<(String, f64, f64)> {
    points
        .iter()
        .filter_map(|p| first_number(previous, &p.key).map(|old| (p.key.clone(), old, p.value)))
        .collect()
}

/// The CI step-summary markdown table for a set of deltas (falls back to
/// a committed-less table when `rows` is empty).
pub fn summary_markdown(title: &str, points: &[Point], rows: &[(String, f64, f64)]) -> String {
    let mut md =
        format!("## {title}\n\n| key | committed | this run | delta |\n|---|---:|---:|---:|\n");
    if rows.is_empty() {
        for p in points {
            md.push_str(&format!("| `{}` | _none_ | {:.0} | |\n", p.key, p.value));
        }
    } else {
        for (key, old, new) in rows {
            md.push_str(&format!(
                "| `{key}` | {old:.0} | {new:.0} | {:+.1}% |\n",
                (new / old - 1.0) * 100.0
            ));
        }
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Point> {
        vec![Point::new("serve_episodes_per_sec", 1_500_000.0), Point::new("serve_teams", 10_000.0)]
    }

    #[test]
    fn fresh_doc_seeds_baseline_from_run() {
        let doc = render_doc(&pts(), None);
        let base = baseline_section(&doc).expect("baseline present");
        assert_eq!(first_number(&base, "serve_episodes_per_sec"), Some(1_500_000.0));
        assert_eq!(first_number(&doc, "serve_teams"), Some(10_000.0));
    }

    #[test]
    fn baseline_carries_forward_and_new_keys_seed_fresh() {
        let first = render_doc(&pts(), None);
        let mut next = pts();
        next[0].value = 2_000_000.0; // faster run must not move the baseline
        next.push(Point::new("serve_p99_episode_ns", 900.0)); // new key
        let doc = render_doc(&next, Some(&first));
        let base = baseline_section(&doc).expect("baseline present");
        assert_eq!(first_number(&base, "serve_episodes_per_sec"), Some(1_500_000.0));
        assert_eq!(first_number(&base, "serve_p99_episode_ns"), Some(900.0));
        // benches section always reflects this run (first hit wins).
        assert_eq!(first_number(&doc, "serve_episodes_per_sec"), Some(2_000_000.0));
    }

    #[test]
    fn deltas_pair_committed_with_fresh() {
        let first = render_doc(&pts(), None);
        let mut next = pts();
        next[1].value = 20_000.0;
        let d = deltas(&next, &first);
        assert!(d.contains(&("serve_teams".to_string(), 10_000.0, 20_000.0)));
    }

    #[test]
    fn summary_markdown_has_header_and_rows() {
        let rows = vec![("serve_teams".to_string(), 10_000.0, 11_000.0)];
        let md = summary_markdown("Serve load", &pts(), &rows);
        assert!(md.contains("## Serve load"));
        assert!(md.contains("| `serve_teams` | 10000 | 11000 | +10.0% |"));
        let md_empty = summary_markdown("Serve load", &pts(), &[]);
        assert!(md_empty.contains("_none_"));
    }
}

//! Machine-readable serve throughput: `BENCH_serve.json`.
//!
//! Drives the seeded Zipf multi-tenant load (10k teams of 4 by default,
//! heavy-tailed episode skew, 1% scripted connection drops) through a
//! fresh [`armbar_serve::Registry`] and records aggregate episodes/sec,
//! sampled episode-latency percentiles, and the per-shard episode balance.
//!
//! ```text
//! serve_load [--quick] [--teams N] [--members N] [--episodes N]
//!            [--shards N] [--seed N] [--zipf S] [--drop-frac F]
//!            [--out PATH] [--summary PATH]
//! ```
//!
//! Same reporting conventions as `bench_sim`/`bench_churn`: best of
//! several timed attempts (shared-VM clocks are noisy; the max estimates
//! capability), delta versus the committed file on stderr, an optional
//! `--summary` markdown append for the CI step summary, and the committed
//! `baseline` section carried forward. The per-shard balance is reported
//! as `max/min × 100` so it fits the integral-value JSON convention.

use armbar_serve::report::{deltas, render_doc, summary_markdown, Point};
use armbar_serve::{run_load, LoadConfig, LoadReport};

/// Timed attempts; best throughput wins (outcomes are identical across
/// attempts by the determinism contract, so any attempt's report serves).
const ATTEMPTS: u32 = 3;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned());
    let parse = |flag: &str, default: f64| -> f64 {
        flag_value(flag)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {flag} value: {v:?}")))
            .unwrap_or(default)
    };
    let quick = args.iter().any(|a| a == "--quick");
    let (d_teams, d_episodes) = if quick { (2_000.0, 400_000.0) } else { (10_000.0, 3_000_000.0) };
    let cfg = LoadConfig {
        teams: parse("--teams", d_teams) as usize,
        members: parse("--members", 4.0) as usize,
        episodes: parse("--episodes", d_episodes) as u64,
        shards: parse("--shards", 8.0) as usize,
        zipf: parse("--zipf", 0.8),
        drop_frac: parse("--drop-frac", 0.01),
        seed: parse("--seed", 0xBA5E as f64) as u64,
        ..LoadConfig::default()
    };
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let summary_path = flag_value("--summary");

    let mut best: Option<LoadReport> = None;
    for attempt in 0..ATTEMPTS {
        let report = run_load(&cfg);
        eprintln!(
            "attempt {}/{ATTEMPTS}: {:.0} episodes/s (p50 {} ns, p99 {} ns)",
            attempt + 1,
            report.eps,
            report.p50_ns,
            report.p99_ns
        );
        if best.as_ref().is_none_or(|b| report.eps > b.eps) {
            best = Some(report);
        }
    }
    let report = best.expect("at least one attempt");
    eprint!("{}", armbar_serve::summary_text(&report));

    let points = vec![
        Point::new("serve_episodes_per_sec", report.eps),
        Point::new("serve_p50_episode_ns", report.p50_ns as f64),
        Point::new("serve_p99_episode_ns", report.p99_ns as f64),
        Point::new("serve_shard_balance_x100", report.shard_balance() * 100.0),
        Point::new("serve_teams", report.outcomes.len() as f64),
    ];

    let previous = std::fs::read_to_string(&out).ok();
    let rows = previous.as_deref().map(|p| deltas(&points, p)).unwrap_or_default();
    if !rows.is_empty() {
        eprintln!("-- delta vs committed {out} --");
        for (key, old, new) in &rows {
            eprintln!("{key:>28}: {:+.1}% ({old:.0} -> {new:.0})", (new / old - 1.0) * 100.0);
        }
    }
    if let Some(path) = &summary_path {
        let md = summary_markdown("Serve load bench (non-gating)", &points, &rows);
        use std::io::Write as _;
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(md.as_bytes()))
            .expect("failed to append --summary file");
    }
    std::fs::write(&out, render_doc(&points, previous.as_deref()))
        .expect("failed to write bench JSON");
    eprintln!("wrote {out}");
}

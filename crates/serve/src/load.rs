//! The seeded Zipf load driver behind `BENCH_serve.json` and the
//! `armbar serve` subcommand.
//!
//! A load run replays a deterministic plan against a fresh [`Registry`]:
//! `teams` named teams of `members` connections each, with the total
//! episode budget spread by a seeded Zipf draw (heavy-tailed tenant skew
//! — a few hot teams, a long cold tail) and a seeded fraction of teams
//! suffering a connection drop mid-run, scripted by the faults crate's
//! [`ChurnPlan`] crash-evict scenario.
//!
//! Determinism contract (pinned by `tests/serve_determinism.rs` and the
//! `serve-smoke` CI job): every per-tenant *outcome* — episodes, arrival
//! counts, proxy arrivals, drops, final status — is a pure function of
//! the seeded plan. Each team is driven whole by exactly one worker, so
//! neither the worker count nor the shard count can change an outcome;
//! [`outcome_csv`] is byte-identical at any `--shards`/`--jobs`. Only
//! wall-clock aggregates (episodes/sec, latency percentiles, wakeup
//! counters) vary run to run, and those are reported separately.
//!
//! Episode drive is split-phase, the shape a batching server actually
//! sees: the worker fires all of a team's arrivals back-to-back (N
//! fetch-adds on the team's batch word), the filling arrival commits and
//! flushes, and the trailing waits are satisfied reads. Cross-team
//! blocking still happens whenever drops and evictions reshape a team.

use std::time::{Duration, Instant};

use armbar_faults::{ChurnPlan, Scenario};
use armbar_simcoh::rng::SplitMix64;

use crate::registry::{Registry, WakeStats};
use crate::team::{Conn, TeamConfig, TeamMetrics};

/// Seed-stream separators, one per independent draw family (same
/// discipline as the faults crate's scenario mixing).
const MIX_EPISODES: u64 = 0xE915_0DE5;
const MIX_DROPS: u64 = 0xD209_0CCA;

/// Everything a load run needs; a pure value, so two runs with equal
/// configs replay the same plan.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Number of tenant teams.
    pub teams: usize,
    /// Connections per team.
    pub members: usize,
    /// Registry shards.
    pub shards: usize,
    /// Total episodes across all teams (Zipf-split between them).
    pub episodes: u64,
    /// Zipf skew exponent: team `i` draws weight `(i+1)^-zipf`.
    pub zipf: f64,
    /// Fraction of (droppable) teams that lose one connection mid-run.
    pub drop_frac: f64,
    /// Master seed for the episode split and the drop scripts.
    pub seed: u64,
    /// Driver worker threads; 0 = the sweep-pool ambient default.
    pub workers: usize,
    /// Per-epoch deadline stamped onto every team.
    pub deadline: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            teams: 256,
            members: 4,
            shards: 8,
            episodes: 25_600,
            zipf: 0.8,
            drop_frac: 0.02,
            seed: 0xBA5E,
            workers: 0,
            deadline: Duration::from_secs(10),
        }
    }
}

/// One team's slice of the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeamPlan {
    /// Barrier episodes this team drives.
    pub episodes: u32,
    /// `(victim slot, epoch)` of a scripted connection drop, if any.
    pub drop: Option<(usize, u32)>,
}

/// The driven outcome of one team — all fields deterministic.
#[derive(Debug, Clone)]
pub struct TeamOutcome {
    /// Registered team name (`team-00042` style, stable across runs).
    pub name: String,
    /// Members the team was registered with.
    pub members: usize,
    /// Per-tenant counters at the end of the run.
    pub metrics: TeamMetrics,
    /// `"ok"`, `"degraded"` or `"poisoned"`.
    pub status: &'static str,
}

/// The full result of a load run.
pub struct LoadReport {
    /// Per-team outcomes, in team order (deterministic).
    pub outcomes: Vec<TeamOutcome>,
    /// Total episodes driven (the plan total).
    pub episodes: u64,
    /// Wall time of the drive phase.
    pub wall: Duration,
    /// Episodes per wall-second.
    pub eps: f64,
    /// Sampled episode-latency percentiles, in nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile of the same samples.
    pub p99_ns: u64,
    /// Driven episodes per registry shard (plan + hash determined).
    pub shard_episodes: Vec<u64>,
    /// Wakeup-path counters (timing-dependent; summary only).
    pub wake: WakeStats,
}

impl LoadReport {
    /// max/min per-shard episode ratio — the balance the name hash buys.
    /// 1.0 is perfect; the acceptance bar is 2.0.
    pub fn shard_balance(&self) -> f64 {
        let max = self.shard_episodes.iter().copied().max().unwrap_or(0);
        let min = self.shard_episodes.iter().copied().min().unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

/// Stable tenant name for team index `i`.
pub fn team_name(i: usize) -> String {
    format!("team-{i:05}")
}

/// Splits `cfg.episodes` across teams by a seeded Zipf draw and scripts
/// the connection drops. Pure function of the config.
pub fn plan(cfg: &LoadConfig) -> Vec<TeamPlan> {
    assert!(cfg.teams >= 1, "need at least one team");
    assert!(cfg.zipf >= 0.0, "zipf exponent must be non-negative");
    // Zipf weights and their running sum (for inverse-CDF sampling).
    let mut cumulative = Vec::with_capacity(cfg.teams);
    let mut total = 0.0f64;
    for i in 0..cfg.teams {
        total += ((i + 1) as f64).powf(-cfg.zipf);
        cumulative.push(total);
    }
    let mut episodes = vec![0u32; cfg.teams];
    let mut rng = SplitMix64::new(cfg.seed ^ MIX_EPISODES);
    for _ in 0..cfg.episodes {
        let r = rng.next_f64() * total;
        let idx = cumulative.partition_point(|&c| c <= r).min(cfg.teams - 1);
        episodes[idx] += 1;
    }
    // The batch word carries a 20-bit epoch; a run must stay far below it.
    let top = episodes.iter().copied().max().unwrap_or(0);
    assert!(top < (1 << 20) - 2, "hottest team would exhaust its epoch space ({top} episodes)");
    episodes
        .into_iter()
        .enumerate()
        .map(|(i, eps)| {
            // Droppable: needs a survivor and an epoch to desert at.
            let droppable = cfg.members >= 2 && eps >= 2;
            let dropped = droppable
                && SplitMix64::new(cfg.seed ^ MIX_DROPS ^ (i as u64)).next_f64() < cfg.drop_frac;
            let drop = dropped.then(|| {
                // Reuse the churn scripting: the crash-evict scenario picks
                // the victim slot and the epoch it deserts at.
                let churn = ChurnPlan::scenario(
                    Scenario::CrashEvict,
                    cfg.seed ^ (i as u64),
                    cfg.members,
                    eps,
                );
                let victim = churn.victim();
                let at = churn.script(victim).desert_at.expect("crash-evict scripts a desertion");
                (victim, at.min(eps))
            });
            TeamPlan { episodes: eps, drop }
        })
        .collect()
}

/// Drives the plan for one team: split-phase arrivals, a scripted drop,
/// a graceful drain. Returns sampled episode latencies (ns).
fn drive_team(conns: &mut Vec<Option<Conn>>, plan: &TeamPlan, samples: &mut Vec<u64>) {
    for ep in 1..=plan.episodes {
        if let Some((victim, at)) = plan.drop {
            if ep == at {
                conns[victim] = None; // abrupt: Drop proxies the slot out
            }
        }
        let sample = ep % 64 == 1;
        let t0 = sample.then(Instant::now);
        for conn in conns.iter().flatten() {
            // A dropped team completes degraded; survivors never error.
            conn.arrive().expect("live member failed to arrive");
        }
        for conn in conns.iter().flatten() {
            conn.wait(ep).expect("live member failed to release");
        }
        if let Some(t0) = t0 {
            samples.push(t0.elapsed().as_nanos() as u64);
        }
    }
    for conn in conns.drain(..).flatten() {
        conn.close();
    }
}

/// Runs the full load: registers every team, partitions them round-robin
/// over the workers, drives all episodes, and collects outcomes.
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    let plans = plan(cfg);
    let registry =
        Registry::new(cfg.shards, TeamConfig { deadline: cfg.deadline, ..TeamConfig::default() });
    // Setup (untimed): register teams, attach connections.
    let mut teams = Vec::with_capacity(cfg.teams);
    let mut conns: Vec<Vec<Option<Conn>>> = Vec::with_capacity(cfg.teams);
    for i in 0..cfg.teams {
        let team = registry.register(&team_name(i), cfg.members).expect("fresh registry");
        conns.push((0..cfg.members).map(|_| team.connect()).collect());
        teams.push(team);
    }
    let workers = if cfg.workers == 0 {
        armbar_sweep::SweepPool::ambient().workers()
    } else {
        cfg.workers.min(armbar_sweep::available_parallelism())
    };
    // Drive (timed): each worker owns the teams `i % workers == w`.
    let t0 = Instant::now();
    let mut lanes: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        let plans = &plans;
        for chunk in partition(conns, workers) {
            handles.push(s.spawn(move || {
                let mut samples = Vec::new();
                for (i, mut team_conns) in chunk {
                    drive_team(&mut team_conns, &plans[i], &mut samples);
                }
                samples
            }));
        }
        lanes = handles.into_iter().map(|h| h.join().expect("load worker panicked")).collect();
    });
    let wall = t0.elapsed();

    let mut samples: Vec<u64> = lanes.concat();
    samples.sort_unstable();
    let pct = |p: f64| {
        if samples.is_empty() {
            0
        } else {
            samples[((samples.len() - 1) as f64 * p) as usize]
        }
    };
    let mut shard_episodes = vec![0u64; cfg.shards];
    let outcomes: Vec<TeamOutcome> = teams
        .iter()
        .map(|t| {
            let m = t.metrics();
            shard_episodes[t.shard()] += m.episodes;
            TeamOutcome {
                name: t.name().to_string(),
                members: t.capacity(),
                metrics: m,
                status: t.status(),
            }
        })
        .collect();
    let episodes: u64 = plans.iter().map(|p| u64::from(p.episodes)).sum();
    LoadReport {
        outcomes,
        episodes,
        eps: episodes as f64 / wall.as_secs_f64().max(1e-9),
        wall,
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
        shard_episodes,
        wake: registry.wake_stats(),
    }
}

/// Round-robin split of `(index, item)` pairs into `workers` lanes.
fn partition<T>(items: Vec<T>, workers: usize) -> Vec<Vec<(usize, T)>> {
    let workers = workers.max(1);
    let mut lanes: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        lanes[i % workers].push((i, item));
    }
    lanes
}

/// The deterministic per-tenant outcome table: byte-identical at any
/// shard or worker count (it deliberately carries no shard column and no
/// timing). This is the artifact the CI byte-diff pins.
pub fn outcome_csv(report: &LoadReport) -> String {
    let mut out =
        String::from("team,members,episodes,arrivals,proxy_arrivals,drops,evictions,status\n");
    for o in &report.outcomes {
        let m = &o.metrics;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            o.name,
            o.members,
            m.episodes,
            m.arrivals,
            m.proxy_arrivals,
            m.drops,
            m.evictions,
            o.status
        ));
    }
    out
}

/// The same per-tenant table as a JSON document (deterministic, same
/// contract as [`outcome_csv`]).
pub fn outcome_json(report: &LoadReport) -> String {
    let mut out = String::from("{\n  \"tenants\": [\n");
    for (i, o) in report.outcomes.iter().enumerate() {
        let m = &o.metrics;
        let sep = if i + 1 == report.outcomes.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"team\": \"{}\", \"members\": {}, \"episodes\": {}, \"arrivals\": {}, \
             \"proxy_arrivals\": {}, \"drops\": {}, \"evictions\": {}, \"status\": \"{}\"}}{sep}\n",
            o.name,
            o.members,
            m.episodes,
            m.arrivals,
            m.proxy_arrivals,
            m.drops,
            m.evictions,
            o.status
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LoadConfig {
        LoadConfig {
            teams: 40,
            members: 4,
            shards: 4,
            episodes: 2_000,
            drop_frac: 0.25,
            workers: 2,
            ..LoadConfig::default()
        }
    }

    #[test]
    fn plan_is_deterministic_and_conserves_episodes() {
        let cfg = small();
        let a = plan(&cfg);
        let b = plan(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.iter().map(|p| u64::from(p.episodes)).sum::<u64>(), cfg.episodes);
        // A different seed reshuffles the split.
        let c = plan(&LoadConfig { seed: 1, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_skew_front_loads_the_split() {
        let cfg = LoadConfig { teams: 100, episodes: 100_000, ..small() };
        let p = plan(&cfg);
        let head: u64 = p[..10].iter().map(|t| u64::from(t.episodes)).sum();
        assert!(
            head > cfg.episodes / 4,
            "zipf(0.8) head-10 share too small: {head}/{}",
            cfg.episodes
        );
        assert!(p[0].episodes > p[99].episodes, "rank 1 must out-draw rank 100");
    }

    #[test]
    fn drops_are_scripted_within_bounds() {
        let p = plan(&small());
        let dropped: Vec<_> = p.iter().filter(|t| t.drop.is_some()).collect();
        assert!(!dropped.is_empty(), "25% drop fraction must script some drops");
        for t in dropped {
            let (victim, at) = t.drop.unwrap();
            assert!(victim < 4);
            assert!(at >= 1 && at <= t.episodes);
        }
    }

    #[test]
    fn outcomes_identical_across_shard_and_worker_counts() {
        let base = small();
        let reference = outcome_csv(&run_load(&base));
        for (shards, workers) in [(1, 1), (7, 3), (4, 4)] {
            let got = outcome_csv(&run_load(&LoadConfig { shards, workers, ..base.clone() }));
            assert_eq!(got, reference, "outcome CSV must not depend on shards/workers");
        }
        let json = outcome_json(&run_load(&base));
        assert_eq!(json, outcome_json(&run_load(&LoadConfig { shards: 2, ..base.clone() })));
    }

    #[test]
    fn outcomes_match_the_plan() {
        let cfg = small();
        let plans = plan(&cfg);
        let report = run_load(&cfg);
        assert_eq!(report.episodes, cfg.episodes);
        assert_eq!(report.shard_episodes.iter().sum::<u64>(), cfg.episodes);
        for (i, (p, o)) in plans.iter().zip(&report.outcomes).enumerate() {
            assert_eq!(o.name, team_name(i));
            assert_eq!(o.metrics.episodes, u64::from(p.episodes), "team {i} episode count");
            assert_eq!(o.metrics.evictions, 0, "scripted drops proxy, never time out");
            match p.drop {
                // Dropped team: the victim deserts (1 drop); survivors drive
                // the rest and the close-drain proxies the remaining slots.
                Some(_) => {
                    assert_eq!(o.metrics.drops, 1);
                    assert_eq!(o.status, "degraded");
                }
                None => {
                    assert_eq!(o.metrics.drops, 0);
                    assert_eq!(o.status, "ok");
                }
            }
        }
    }

    #[test]
    fn summary_text_mentions_the_aggregates() {
        let report = run_load(&LoadConfig { teams: 8, episodes: 64, ..small() });
        let s = summary_text(&report);
        assert!(s.contains("64 episodes across 8 teams"));
        assert!(s.contains("balance"));
    }
}

/// Human summary of the run's wall-clock aggregates (stderr material —
/// everything here is timing-dependent and excluded from the CSV).
pub fn summary_text(report: &LoadReport) -> String {
    let degraded = report.outcomes.iter().filter(|o| o.status == "degraded").count();
    format!(
        "serve load: {} episodes across {} teams in {:.3} s => {:.0} episodes/s\n\
         episode latency: p50 {} ns, p99 {} ns (sampled every 64th episode)\n\
         shard episodes: {:?} (balance {:.2}x)\n\
         wakeups: {} broadcast, {} elided (nobody parked), {} coalesced; degraded teams: {}\n",
        report.episodes,
        report.outcomes.len(),
        report.wall.as_secs_f64(),
        report.eps,
        report.p50_ns,
        report.p99_ns,
        report.shard_episodes,
        report.shard_balance(),
        report.wake.flushes,
        report.wake.elided,
        report.wake.coalesced,
        degraded,
    )
}

//! # armbar-serve — barrier-as-a-service
//!
//! A sharded, multi-tenant coordination server hosting thousands of named
//! barrier *teams*. Where the rest of the workspace synchronizes threads
//! inside one process, this crate synchronizes *connections*: members of a
//! team attach through [`Team::connect`], arrive with [`Conn::arrive`],
//! and block in [`Conn::wait`] until the whole team has arrived — with the
//! `RobustBarrier`/`RobustPhaser` failure semantics (timeout eviction,
//! poisoning, dynamic membership) carried over to the connection world.
//!
//! The performance story, in the paper's terms:
//!
//! * **sharded registry** ([`Registry`]) — team ownership is split over
//!   independent shards by a stable FNV-1a name hash; tenant churn and
//!   lookups never take a global lock;
//! * **batched arrivals** ([`Team`]) — one epoch-stamped arrival word per
//!   team (the phaser `(epoch << 12) | count` encoding), so N arrivals are
//!   N fetch-adds on one line, and the boundary costs one commit;
//! * **batched, backpressure-aware wakeups** ([`registry::ShardWake`]) —
//!   releases flush through the owning shard, eliding the broadcast when
//!   nobody is parked and coalescing co-shard releases into one notify.
//!
//! [`load`] is the seeded Zipf load driver behind `BENCH_serve.json` and
//! the `armbar serve` CLI subcommand; [`report`] renders the bench JSON
//! with the workspace's baseline-carry-forward convention.

pub mod load;
pub mod registry;
pub mod report;
pub mod team;

pub use load::{outcome_csv, outcome_json, run_load, summary_text, LoadConfig, LoadReport};
pub use registry::{fnv1a, Registry, WakeStats};
pub use team::{Conn, Team, TeamConfig, TeamMetrics};

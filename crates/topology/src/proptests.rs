//! Property-based tests over all topology presets and random custom
//! hierarchies.

use crate::{LayerId, Platform, Topology, TopologyBuilder};
use proptest::prelude::*;

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop::sample::select(Platform::ALL.to_vec())
}

proptest! {
    /// Latency is symmetric and positive for every pair on every preset.
    #[test]
    fn preset_latency_symmetric(p in arb_platform(), a in 0usize..64, b in 0usize..64) {
        let t = Topology::preset(p);
        let (a, b) = (a % t.num_cores(), b % t.num_cores());
        prop_assert_eq!(t.latency_ns(a, b), t.latency_ns(b, a));
        prop_assert!(t.latency_ns(a, b) > 0.0);
    }

    /// ε is the minimum communication latency on every preset.
    #[test]
    fn epsilon_is_minimal(p in arb_platform(), a in 0usize..64, b in 0usize..64) {
        let t = Topology::preset(p);
        let (a, b) = (a % t.num_cores(), b % t.num_cores());
        prop_assert!(t.latency_ns(a, b) >= t.epsilon_ns());
    }

    /// Cores in the same logical cluster always communicate over the
    /// innermost layer (L0) — the defining property of N_c.
    #[test]
    fn same_cluster_is_innermost_layer(p in arb_platform(), a in 0usize..64, b in 0usize..64) {
        let t = Topology::preset(p);
        let (a, b) = (a % t.num_cores(), b % t.num_cores());
        if a != b && t.same_cluster(a, b) {
            prop_assert_eq!(t.layer(a, b), LayerId(0));
        }
    }

    /// RFO cost never exceeds the transfer latency itself (α ≤ 1).
    #[test]
    fn rfo_bounded_by_latency(p in arb_platform(), a in 0usize..64, b in 0usize..64) {
        let t = Topology::preset(p);
        let (a, b) = (a % t.num_cores(), b % t.num_cores());
        prop_assert!(t.rfo_ns(a, b) <= t.latency_ns(a, b) + 1e-12);
    }

    /// Random two-level hierarchies produce valid, symmetric topologies.
    #[test]
    fn random_hierarchy_builds(
        inner_log in 1u32..4,
        fanout_log in 1u32..3,
        lat0 in 1.0f64..100.0,
        extra in 1.0f64..200.0,
        alpha0 in 0.0f64..1.0,
        alpha1 in 0.0f64..1.0,
    ) {
        let inner = 1usize << inner_log;
        let cores = inner << fanout_log;
        let t = TopologyBuilder::new("prop", cores)
            .layer("in", lat0, alpha0)
            .layer("out", lat0 + extra, alpha1)
            .hierarchy(&[inner])
            .build();
        prop_assert_eq!(t.n_c(), inner);
        for a in 0..cores {
            for b in 0..cores {
                prop_assert_eq!(t.latency_ns(a, b), t.latency_ns(b, a));
            }
        }
        // Inner pairs are strictly cheaper than outer pairs.
        if cores > inner {
            prop_assert!(t.latency_ns(0, 1) < t.latency_ns(0, cores - 1));
        }
    }

    /// mean_remote_latency_ns is monotone in the span on every preset.
    #[test]
    fn mean_latency_monotone(p in arb_platform(), lo in 2usize..32) {
        let t = Topology::preset(p);
        let hi = (lo * 2).min(t.num_cores());
        prop_assert!(t.mean_remote_latency_ns(lo) <= t.mean_remote_latency_ns(hi) + 1e-9);
    }
}

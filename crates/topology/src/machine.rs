//! The [`Topology`] type: a complete latency/coherence description of one
//! machine.

use crate::atomics::RmwCosts;
use crate::layer::{Layer, LayerId};
use crate::platforms::Platform;

/// Index of a physical processor core. The paper pins OpenMP thread `i` to
/// core `i`, and every harness in this workspace does the same, so thread
/// ids and core ids coincide throughout.
pub type CoreId = usize;

/// Coherence-protocol cost parameters consumed by the cache simulator
/// (`armbar-simcoh`), complementing the per-layer `α_i` weights.
///
/// The paper's analytical model (Section III-B) covers the per-operation
/// costs; these additional coefficients capture the *contention* effects the
/// paper describes qualitatively (hot-spot serialization on the on-chip
/// network, Section IV-B) and quantitatively via the reader-contention
/// coefficient `c` of Eq. (3).
#[derive(Debug, Clone, PartialEq)]
pub struct CoherenceParams {
    /// Per-extra-sharer cost (ns) of a store's invalidation fan-out.
    ///
    /// A store to a line shared by `n` other cores pays
    /// `α_i·L_i + inv_ns·(n−1)` on top of the ownership transfer. This is
    /// the serialization of invalidation traffic at the network controller;
    /// it is the term that makes centralized barriers collapse on many-core
    /// ARM parts.
    pub inv_ns: f64,
    /// The paper's reader-contention coefficient `c` (ns): the `j`-th of a
    /// crowd of simultaneous readers of one line pays an extra `c·(j−1)`.
    pub read_contention_ns: f64,
    /// Multiplicative jitter amplitude (fraction of each op's cost),
    /// modelling run-to-run fluctuation. Near zero everywhere except
    /// Kunpeng 920, whose barrier overhead the paper reports as
    /// "fluctuating dramatically".
    pub jitter: f64,
    /// On-chip network service interval (ns per remote transaction).
    ///
    /// Models the aggregate bandwidth of the interconnect: concurrent
    /// remote transfers queue at this rate machine-wide. Near zero for
    /// algorithms that send O(log P) messages per phase; decisive for
    /// all-to-all patterns — the paper blames exactly this for the
    /// dissemination barrier's poor scalability on ARMv8 ("the concurrent
    /// memory accesses for setting flags during pairwise communications
    /// increase the contention of the on-chip network", Section IV-B).
    pub noc_ns: f64,
}

impl CoherenceParams {
    /// Validates ranges. `inv_ns`/`read_contention_ns` must be ≥ 0 and
    /// finite; `jitter` must lie in `[0, 1)`.
    pub fn new(inv_ns: f64, read_contention_ns: f64, jitter: f64) -> Self {
        assert!(inv_ns.is_finite() && inv_ns >= 0.0, "inv_ns out of range: {inv_ns}");
        assert!(
            read_contention_ns.is_finite() && read_contention_ns >= 0.0,
            "read_contention_ns out of range: {read_contention_ns}"
        );
        assert!((0.0..1.0).contains(&jitter), "jitter out of range: {jitter}");
        Self { inv_ns, read_contention_ns, jitter, noc_ns: 0.0 }
    }

    /// Sets the on-chip network service interval (ns per remote
    /// transaction); see [`CoherenceParams::noc_ns`].
    pub fn with_noc_ns(mut self, noc_ns: f64) -> Self {
        assert!(noc_ns.is_finite() && noc_ns >= 0.0, "noc_ns out of range: {noc_ns}");
        self.noc_ns = noc_ns;
        self
    }
}

/// A complete machine model: core count, cache-line size, cluster
/// hierarchy, and the layered core-to-core latency table.
///
/// Construct presets with [`Topology::preset`] or custom machines with
/// [`crate::TopologyBuilder`].
#[derive(Debug, Clone)]
pub struct Topology {
    pub(crate) name: String,
    pub(crate) num_cores: usize,
    pub(crate) cacheline_bytes: usize,
    /// Local cache access latency `ε` in ns.
    pub(crate) epsilon_ns: f64,
    /// Latency layers `L_0..L_k`.
    pub(crate) layers: Vec<Layer>,
    /// Dense `num_cores × num_cores` matrix of layer ids; diagonal is LOCAL.
    pub(crate) pair_layer: Vec<LayerId>,
    /// Dense `num_cores × num_cores` cache of [`Topology::latency_ns`]:
    /// `latency_matrix[a·n + b] = layer_latency_ns(layer(a, b))`. Built once
    /// at construction so the simulator's per-operation hot path is a single
    /// indexed load instead of layer lookup + branch.
    pub(crate) latency_matrix: Vec<f64>,
    /// Dense `num_cores × num_cores` cache of [`Topology::rfo_ns`]:
    /// `rfo_matrix[w·n + h] = α_i · L_i` for the layer joining `w` and `h`.
    pub(crate) rfo_matrix: Vec<f64>,
    /// Logical core-cluster size `N_c` (Section III-A).
    pub(crate) n_c: usize,
    /// Cores per scheduler shard: the granularity at which the simulator
    /// partitions its ready/running tables. Equal to `num_cores` (one
    /// shard) unless the preset opts in to sharding.
    pub(crate) shard_cores: usize,
    pub(crate) coherence: CoherenceParams,
    /// Per-op-kind atomic RMW surcharge parameters (DESIGN.md §17).
    /// [`RmwCosts::legacy`] unless the preset/builder differentiates.
    pub(crate) rmw_costs: RmwCosts,
}

impl Topology {
    /// Builds one of the preset machines: the four evaluated in the paper
    /// plus the two MemPool-style kilocore extrapolations.
    pub fn preset(platform: Platform) -> Self {
        match platform {
            Platform::Phytium2000Plus => crate::platforms::phytium_2000plus(),
            Platform::ThunderX2 => crate::platforms::thunderx2(),
            Platform::Kunpeng920 => crate::platforms::kunpeng920(),
            Platform::XeonGold => crate::platforms::xeon_gold(),
            Platform::MemPool256 => crate::platforms::mempool_256(),
            Platform::MemPool1024 => crate::platforms::mempool_1024(),
        }
    }

    /// Machine name, e.g. `"Phytium 2000+"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical cores (= maximum number of pinned threads).
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// Cache-line size in bytes (64 on Phytium 2000+/ThunderX2/Xeon,
    /// 128 on Kunpeng 920).
    pub fn cacheline_bytes(&self) -> usize {
        self.cacheline_bytes
    }

    /// Local cache access latency `ε` in nanoseconds.
    pub fn epsilon_ns(&self) -> f64 {
        self.epsilon_ns
    }

    /// The logical core-cluster size `N_c`: 4 on Phytium 2000+ (core
    /// group), 32 on ThunderX2 (socket), 4 on Kunpeng 920 (CCL).
    pub fn n_c(&self) -> usize {
        self.n_c
    }

    /// The latency layers `L_0..L_k`, innermost first.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Coherence contention parameters for the simulator.
    pub fn coherence(&self) -> &CoherenceParams {
        &self.coherence
    }

    /// Per-op-kind atomic RMW surcharge parameters.
    #[inline]
    pub fn rmw_costs(&self) -> &RmwCosts {
        &self.rmw_costs
    }

    /// Returns a copy of this machine with a different RMW cost table —
    /// everything else (latencies, coherence, sharding) unchanged. Used by
    /// the identity tests to run an ARM preset under the legacy shared
    /// surcharge, and by experiments that sweep cost shapes.
    pub fn with_rmw_costs(mut self, costs: RmwCosts) -> Self {
        self.rmw_costs = costs;
        self
    }

    /// The latency layer joining cores `a` and `b` ([`LayerId::LOCAL`] when
    /// `a == b`).
    ///
    /// # Panics
    /// Panics if either core id is out of range.
    #[inline]
    pub fn layer(&self, a: CoreId, b: CoreId) -> LayerId {
        assert!(a < self.num_cores && b < self.num_cores, "core id out of range");
        self.pair_layer[a * self.num_cores + b]
    }

    /// Cache-to-cache transfer latency between cores `a` and `b` in ns
    /// (`ε` when `a == b`). Served from the precomputed latency matrix.
    ///
    /// # Panics
    /// Panics if either core id is out of range.
    #[inline]
    pub fn latency_ns(&self, a: CoreId, b: CoreId) -> f64 {
        assert!(a < self.num_cores && b < self.num_cores, "core id out of range");
        self.latency_matrix[a * self.num_cores + b]
    }

    /// Latency of a given layer in ns.
    #[inline]
    pub fn layer_latency_ns(&self, layer: LayerId) -> f64 {
        if layer.is_local() {
            self.epsilon_ns
        } else {
            self.layers[layer.index()].latency_ns
        }
    }

    /// RFO weight `α_i` of a layer (`0` for the local layer: invalidating
    /// your own copy is free).
    #[inline]
    pub fn alpha(&self, layer: LayerId) -> f64 {
        if layer.is_local() {
            0.0
        } else {
            self.layers[layer.index()].alpha
        }
    }

    /// Cost in ns of sending an RFO invalidation from `writer` to a sharer
    /// at `holder`: `α_i · L_i` (Section III-B). Served from the precomputed
    /// RFO matrix.
    ///
    /// # Panics
    /// Panics if either core id is out of range.
    #[inline]
    pub fn rfo_ns(&self, writer: CoreId, holder: CoreId) -> f64 {
        assert!(writer < self.num_cores && holder < self.num_cores, "core id out of range");
        self.rfo_matrix[writer * self.num_cores + holder]
    }

    /// Row `a` of the latency matrix: `latency_ns(a, b)` for every `b`.
    /// The simulator iterates these rows in its per-sharer loops.
    #[inline]
    pub fn latency_row(&self, a: CoreId) -> &[f64] {
        &self.latency_matrix[a * self.num_cores..(a + 1) * self.num_cores]
    }

    /// Row `w` of the RFO matrix: `rfo_ns(w, h)` for every `h`.
    #[inline]
    pub fn rfo_row(&self, w: CoreId) -> &[f64] {
        &self.rfo_matrix[w * self.num_cores..(w + 1) * self.num_cores]
    }

    /// Logical cluster index of a core (cores `[k·N_c, (k+1)·N_c)` form
    /// cluster `k`). Thread grouping and the NUMA-aware wake-up tree are
    /// built from this.
    #[inline]
    pub fn cluster_of(&self, core: CoreId) -> usize {
        core / self.n_c
    }

    /// Number of logical clusters.
    #[inline]
    pub fn num_clusters(&self) -> usize {
        self.num_cores.div_ceil(self.n_c)
    }

    /// `true` when the two cores are in the same logical cluster.
    #[inline]
    pub fn same_cluster(&self, a: CoreId, b: CoreId) -> bool {
        self.cluster_of(a) == self.cluster_of(b)
    }

    /// Cores per scheduler shard. The simulator keeps one ready heap and
    /// one running set per shard (DESIGN.md §13); a machine with
    /// `shard_cores == num_cores` runs the classic single-shard scheduler.
    /// Sharding is a *scheduling* partition only — it never changes which
    /// op the engine processes next, so results are byte-identical at any
    /// shard size.
    #[inline]
    pub fn shard_cores(&self) -> usize {
        self.shard_cores
    }

    /// Scheduler shard index of a core (cores `[k·S, (k+1)·S)` form
    /// shard `k` where `S = shard_cores`).
    #[inline]
    pub fn shard_of(&self, core: CoreId) -> usize {
        core / self.shard_cores
    }

    /// Number of scheduler shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_cores.div_ceil(self.shard_cores)
    }

    /// The largest (outermost) layer latency of the machine, in ns.
    pub fn max_latency_ns(&self) -> f64 {
        self.layers.iter().map(|l| l.latency_ns).fold(self.epsilon_ns, f64::max)
    }

    /// Average of `latency_ns(a, b)` over all ordered pairs of *distinct*
    /// cores among the first `p` cores. Used by the analytical model to
    /// collapse the layered table into a single effective `L`.
    pub fn mean_remote_latency_ns(&self, p: usize) -> f64 {
        let p = p.min(self.num_cores);
        if p < 2 {
            return self.epsilon_ns;
        }
        let mut sum = 0.0;
        let mut n = 0u64;
        for a in 0..p {
            for b in 0..p {
                if a != b {
                    sum += self.latency_ns(a, b);
                    n += 1;
                }
            }
        }
        sum / n as f64
    }

    /// Fills the dense latency/RFO caches from the layer table. Called once
    /// by the builder, after validation; the cached values are exactly the
    /// per-call layer math they replace (same expressions, same `f64`
    /// results), so lookups are bit-identical to the formulas.
    pub(crate) fn compute_matrices(&mut self) {
        let n = self.num_cores;
        let mut latency = vec![0.0; n * n];
        let mut rfo = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                let l = self.pair_layer[a * n + b];
                latency[a * n + b] = self.layer_latency_ns(l);
                rfo[a * n + b] = self.alpha(l) * self.layer_latency_ns(l);
            }
        }
        self.latency_matrix = latency;
        self.rfo_matrix = rfo;
    }

    /// Verifies internal consistency; called by the builder and presets.
    /// Checks the matrix is symmetric, the diagonal is LOCAL, and every
    /// referenced layer exists.
    pub(crate) fn validate(&self) {
        assert_eq!(self.pair_layer.len(), self.num_cores * self.num_cores);
        assert!(self.n_c >= 1 && self.n_c <= self.num_cores);
        assert!(
            self.shard_cores >= 1 && self.shard_cores <= self.num_cores,
            "shard_cores out of range: {}",
            self.shard_cores
        );
        for a in 0..self.num_cores {
            for b in 0..self.num_cores {
                let l = self.pair_layer[a * self.num_cores + b];
                if a == b {
                    assert!(l.is_local(), "diagonal of pair_layer must be LOCAL");
                } else {
                    assert!(!l.is_local(), "off-diagonal must not be LOCAL");
                    assert!(
                        l.index() < self.layers.len(),
                        "layer {l} out of range (machine has {} layers)",
                        self.layers.len()
                    );
                    assert_eq!(
                        self.pair_layer[a * self.num_cores + b],
                        self.pair_layer[b * self.num_cores + a],
                        "pair_layer must be symmetric"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for p in Platform::ALL {
            let t = Topology::preset(p);
            t.validate();
            assert!(t.num_cores() >= 32);
            assert!(t.epsilon_ns() > 0.0);
            assert!(!t.layers().is_empty());
        }
    }

    #[test]
    fn latency_is_symmetric_on_all_presets() {
        for p in Platform::ALL {
            let t = Topology::preset(p);
            for a in (0..t.num_cores()).step_by(7) {
                for b in (0..t.num_cores()).step_by(5) {
                    assert_eq!(t.latency_ns(a, b), t.latency_ns(b, a), "{p:?} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn local_latency_is_epsilon() {
        let t = Topology::preset(Platform::ThunderX2);
        for c in 0..t.num_cores() {
            assert_eq!(t.latency_ns(c, c), t.epsilon_ns());
            assert!(t.layer(c, c).is_local());
        }
    }

    #[test]
    fn cluster_partitions_cores() {
        for p in Platform::ALL {
            let t = Topology::preset(p);
            let mut seen = vec![0usize; t.num_clusters()];
            for c in 0..t.num_cores() {
                seen[t.cluster_of(c)] += 1;
            }
            assert!(seen.iter().all(|&n| n == t.n_c()), "{p:?}: {seen:?}");
        }
    }

    #[test]
    fn shards_partition_cores_on_every_preset() {
        for p in Platform::EVERY {
            let t = Topology::preset(p);
            assert!(t.shard_cores() >= 1 && t.shard_cores() <= t.num_cores());
            let mut seen = vec![0usize; t.num_shards()];
            for c in 0..t.num_cores() {
                seen[t.shard_of(c)] += 1;
            }
            assert_eq!(seen.iter().sum::<usize>(), t.num_cores(), "{p:?}");
            // Shards never split a logical cluster: the scheduler partition
            // is at least as coarse as N_c.
            if t.shard_cores() < t.num_cores() {
                assert_eq!(t.shard_cores() % t.n_c(), 0, "{p:?}");
            }
        }
    }

    #[test]
    fn paper_platforms_default_to_documented_shards() {
        // Phytium and Xeon run the classic single-shard scheduler;
        // ThunderX2 shards by socket, Kunpeng 920 by SCCL.
        assert_eq!(Topology::preset(Platform::Phytium2000Plus).num_shards(), 1);
        assert_eq!(Topology::preset(Platform::XeonGold).num_shards(), 1);
        assert_eq!(Topology::preset(Platform::ThunderX2).num_shards(), 2);
        assert_eq!(Topology::preset(Platform::Kunpeng920).num_shards(), 2);
    }

    #[test]
    fn cached_matrices_equal_layer_math_exactly() {
        // The simulator's hot path reads the dense caches; they must be
        // bit-identical to the formulas they replace, on every preset.
        for p in Platform::ALL {
            let t = Topology::preset(p);
            for a in 0..t.num_cores() {
                for b in 0..t.num_cores() {
                    let l = t.layer(a, b);
                    assert_eq!(t.latency_ns(a, b), t.layer_latency_ns(l), "{p:?} {a} {b}");
                    assert_eq!(t.rfo_ns(a, b), t.alpha(l) * t.layer_latency_ns(l), "{p:?} {a} {b}");
                    assert_eq!(t.latency_row(a)[b], t.latency_ns(a, b));
                    assert_eq!(t.rfo_row(a)[b], t.rfo_ns(a, b));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "core id out of range")]
    fn latency_rejects_out_of_range_core() {
        let t = Topology::preset(Platform::ThunderX2);
        let _ = t.latency_ns(64, 0);
    }

    #[test]
    fn rfo_cost_is_alpha_scaled() {
        let t = Topology::preset(Platform::Phytium2000Plus);
        let l = t.layer(0, 1);
        assert!((t.rfo_ns(0, 1) - t.alpha(l) * t.layer_latency_ns(l)).abs() < 1e-12);
        // RFO to self-cluster is cheaper than cross-panel.
        assert!(t.rfo_ns(0, 1) < t.rfo_ns(0, 63));
    }

    #[test]
    fn mean_remote_latency_grows_with_span() {
        let t = Topology::preset(Platform::Kunpeng920);
        let within_ccl = t.mean_remote_latency_ns(4);
        let within_sccl = t.mean_remote_latency_ns(32);
        let whole = t.mean_remote_latency_ns(64);
        assert!(within_ccl < within_sccl, "{within_ccl} !< {within_sccl}");
        assert!(within_sccl < whole, "{within_sccl} !< {whole}");
    }

    #[test]
    fn mean_remote_latency_degenerate_cases() {
        let t = Topology::preset(Platform::ThunderX2);
        assert_eq!(t.mean_remote_latency_ns(0), t.epsilon_ns());
        assert_eq!(t.mean_remote_latency_ns(1), t.epsilon_ns());
        // Requests beyond the core count clamp.
        assert_eq!(t.mean_remote_latency_ns(10_000), t.mean_remote_latency_ns(64));
    }

    #[test]
    #[should_panic(expected = "core id out of range")]
    fn layer_rejects_out_of_range_core() {
        let t = Topology::preset(Platform::ThunderX2);
        let _ = t.layer(0, 64);
    }

    #[test]
    fn coherence_params_validate() {
        let p = CoherenceParams::new(5.0, 2.0, 0.1);
        assert_eq!(p.inv_ns, 5.0);
    }

    #[test]
    #[should_panic(expected = "jitter out of range")]
    fn coherence_params_reject_bad_jitter() {
        let _ = CoherenceParams::new(5.0, 2.0, 1.0);
    }
}

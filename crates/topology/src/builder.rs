//! Builder for custom machine models.
//!
//! The presets in [`crate::platforms`] cover the paper's machines; this
//! builder lets downstream users describe their own part (or a hypothetical
//! one — e.g. "what if ThunderX2 had 4 sockets?") and run every experiment
//! in the workspace against it. See `examples/custom_topology.rs`.

use crate::atomics::RmwCosts;
use crate::layer::{Layer, LayerId};
use crate::machine::{CoherenceParams, CoreId, Topology};

/// Incremental construction of a [`Topology`].
///
/// Layers are registered with [`TopologyBuilder::layer`]; the core-pair →
/// layer mapping is then either derived from a *hierarchy* of nested
/// cluster sizes ([`TopologyBuilder::hierarchy`]) or given explicitly per
/// pair ([`TopologyBuilder::pair_layer_fn`]).
///
/// ```
/// use armbar_topology::TopologyBuilder;
///
/// // A toy 16-core part: clusters of 4, two latency layers.
/// let topo = TopologyBuilder::new("toy16", 16)
///     .cacheline_bytes(64)
///     .epsilon_ns(1.0)
///     .layer("within cluster", 10.0, 0.5)
///     .layer("across clusters", 50.0, 0.8)
///     .n_c(4)
///     .hierarchy(&[4])
///     .coherence(2.0, 1.0, 0.0)
///     .build();
/// assert_eq!(topo.latency_ns(0, 1), 10.0);
/// assert_eq!(topo.latency_ns(0, 15), 50.0);
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    name: String,
    num_cores: usize,
    cacheline_bytes: usize,
    epsilon_ns: f64,
    layers: Vec<Layer>,
    n_c: Option<usize>,
    shard_cores: Option<usize>,
    pair_layer: Option<Vec<LayerId>>,
    coherence: CoherenceParams,
    rmw_costs: RmwCosts,
}

impl TopologyBuilder {
    /// Starts a builder for a machine with `num_cores` cores.
    ///
    /// # Panics
    /// Panics if `num_cores` is zero.
    pub fn new(name: impl Into<String>, num_cores: usize) -> Self {
        assert!(num_cores > 0, "a machine needs at least one core");
        Self {
            name: name.into(),
            num_cores,
            cacheline_bytes: 64,
            epsilon_ns: 1.0,
            layers: Vec::new(),
            n_c: None,
            shard_cores: None,
            pair_layer: None,
            coherence: CoherenceParams::new(0.0, 0.0, 0.0),
            rmw_costs: RmwCosts::legacy(),
        }
    }

    /// Sets the cache-line size in bytes (default 64). Must be a power of
    /// two ≥ 4.
    pub fn cacheline_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes >= 4 && bytes.is_power_of_two(), "bad cache-line size {bytes}");
        self.cacheline_bytes = bytes;
        self
    }

    /// Sets the local-cache latency `ε` in ns (default 1.0).
    pub fn epsilon_ns(mut self, ns: f64) -> Self {
        assert!(ns.is_finite() && ns > 0.0);
        self.epsilon_ns = ns;
        self
    }

    /// Appends latency layer `L_i` (layers are indexed in registration
    /// order, innermost first). Returns the builder for chaining.
    pub fn layer(mut self, name: &str, latency_ns: f64, alpha: f64) -> Self {
        self.layers.push(Layer::new(name, latency_ns, alpha));
        self
    }

    /// Sets the logical cluster size `N_c`. Defaults to the innermost
    /// hierarchy level (or the whole machine when no hierarchy is given).
    pub fn n_c(mut self, n_c: usize) -> Self {
        assert!(n_c >= 1);
        self.n_c = Some(n_c);
        self
    }

    /// Sets the scheduler shard size (cores per shard; see
    /// [`Topology::shard_cores`]). Defaults to the whole machine — a single
    /// shard, i.e. the classic global scheduler.
    pub fn shard_cores(mut self, cores: usize) -> Self {
        assert!(cores >= 1);
        self.shard_cores = Some(cores);
        self
    }

    /// Derives the pair→layer map from nested cluster sizes, innermost
    /// first. `&[4, 8]` means: cores sharing a 4-core cluster communicate
    /// over `L_0`; cores sharing an 8-core cluster (but not a 4-core one)
    /// over `L_1`; all remaining pairs over `L_2`.
    ///
    /// Requires exactly `sizes.len() + 1` layers to have been registered.
    ///
    /// # Panics
    /// Panics if the sizes are not strictly increasing or don't divide
    /// evenly into each other.
    pub fn hierarchy(mut self, sizes: &[usize]) -> Self {
        for w in sizes.windows(2) {
            assert!(w[0] < w[1], "hierarchy sizes must be strictly increasing");
            assert_eq!(w[1] % w[0], 0, "hierarchy sizes must nest evenly");
        }
        let n = self.num_cores;
        let mut m = vec![LayerId::LOCAL; n * n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let mut layer = sizes.len() as u8; // outermost by default
                for (i, &s) in sizes.iter().enumerate() {
                    if a / s == b / s {
                        layer = i as u8;
                        break;
                    }
                }
                m[a * n + b] = LayerId(layer);
            }
        }
        self.pair_layer = Some(m);
        if self.n_c.is_none() {
            self.n_c = sizes.first().copied();
        }
        self
    }

    /// Sets the pair→layer map from an arbitrary function. The function is
    /// only consulted for `a != b`; it must be symmetric.
    pub fn pair_layer_fn(mut self, f: impl Fn(CoreId, CoreId) -> LayerId) -> Self {
        let n = self.num_cores;
        let mut m = vec![LayerId::LOCAL; n * n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    m[a * n + b] = f(a, b);
                }
            }
        }
        self.pair_layer = Some(m);
        self
    }

    /// Sets the simulator contention parameters
    /// (see [`CoherenceParams`]).
    pub fn coherence(mut self, inv_ns: f64, read_contention_ns: f64, jitter: f64) -> Self {
        let noc = self.coherence.noc_ns;
        self.coherence = CoherenceParams::new(inv_ns, read_contention_ns, jitter).with_noc_ns(noc);
        self
    }

    /// Sets the on-chip network service interval
    /// (see [`CoherenceParams::noc_ns`]).
    pub fn noc_ns(mut self, noc_ns: f64) -> Self {
        self.coherence = self.coherence.clone().with_noc_ns(noc_ns);
        self
    }

    /// Sets the per-op-kind atomic RMW surcharge table (default
    /// [`RmwCosts::legacy`], i.e. the pre-split `ε + 0.5·transfer` for
    /// every kind).
    pub fn rmw_costs(mut self, costs: RmwCosts) -> Self {
        self.rmw_costs = costs;
        self
    }

    /// Finishes construction, validating the model.
    ///
    /// # Panics
    /// Panics when no layers were registered, no pair map was provided, or
    /// validation fails (asymmetric map, dangling layer ids, …).
    pub fn build(self) -> Topology {
        assert!(!self.layers.is_empty(), "register at least one layer");
        let pair_layer =
            self.pair_layer.expect("provide a pair→layer map via hierarchy() or pair_layer_fn()");
        let mut topo = Topology {
            name: self.name,
            num_cores: self.num_cores,
            cacheline_bytes: self.cacheline_bytes,
            epsilon_ns: self.epsilon_ns,
            layers: self.layers,
            pair_layer,
            latency_matrix: Vec::new(),
            rfo_matrix: Vec::new(),
            n_c: self.n_c.unwrap_or(self.num_cores),
            shard_cores: self.shard_cores.unwrap_or(self.num_cores),
            coherence: self.coherence,
            rmw_costs: self.rmw_costs,
        };
        topo.validate();
        topo.compute_matrices();
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Topology {
        TopologyBuilder::new("toy", 8)
            .epsilon_ns(1.0)
            .layer("near", 10.0, 0.4)
            .layer("far", 40.0, 0.8)
            .hierarchy(&[4])
            .coherence(1.0, 0.5, 0.0)
            .build()
    }

    #[test]
    fn hierarchy_assigns_layers() {
        let t = toy();
        assert_eq!(t.layer(0, 1), LayerId(0));
        assert_eq!(t.layer(0, 3), LayerId(0));
        assert_eq!(t.layer(0, 4), LayerId(1));
        assert_eq!(t.layer(3, 7), LayerId(1));
        assert_eq!(t.n_c(), 4);
    }

    #[test]
    fn default_n_c_without_hierarchy_is_whole_machine() {
        let t = TopologyBuilder::new("flat", 6)
            .layer("any", 5.0, 0.2)
            .pair_layer_fn(|_, _| LayerId(0))
            .build();
        assert_eq!(t.n_c(), 6);
        assert_eq!(t.num_clusters(), 1);
    }

    #[test]
    fn explicit_n_c_overrides_hierarchy() {
        let t = TopologyBuilder::new("toy", 8)
            .layer("near", 10.0, 0.4)
            .layer("far", 40.0, 0.8)
            .n_c(2)
            .hierarchy(&[4])
            .build();
        assert_eq!(t.n_c(), 2);
    }

    #[test]
    fn shard_cores_defaults_to_single_shard() {
        let t = toy();
        assert_eq!(t.shard_cores(), 8);
        assert_eq!(t.num_shards(), 1);
        let sharded = TopologyBuilder::new("toy", 8)
            .layer("near", 10.0, 0.4)
            .layer("far", 40.0, 0.8)
            .hierarchy(&[4])
            .shard_cores(4)
            .build();
        assert_eq!(sharded.num_shards(), 2);
        assert_eq!(sharded.shard_of(3), 0);
        assert_eq!(sharded.shard_of(4), 1);
    }

    #[test]
    fn pair_layer_fn_works() {
        let t = TopologyBuilder::new("fn", 4)
            .layer("even-odd", 7.0, 0.1)
            .layer("other", 9.0, 0.2)
            .pair_layer_fn(|a, b| if a % 2 == b % 2 { LayerId(0) } else { LayerId(1) })
            .build();
        assert_eq!(t.latency_ns(0, 2), 7.0);
        assert_eq!(t.latency_ns(0, 1), 9.0);
    }

    #[test]
    fn rmw_costs_default_legacy_and_override() {
        let t = toy();
        assert!(t.rmw_costs().is_legacy());
        let t2 = TopologyBuilder::new("toy", 8)
            .layer("near", 10.0, 0.4)
            .hierarchy(&[])
            .rmw_costs(RmwCosts::lse(0.7, 1.0))
            .build();
        assert!(!t2.rmw_costs().is_legacy());
        // with_rmw_costs swaps the table without touching latencies.
        let back = t2.clone().with_rmw_costs(RmwCosts::legacy());
        assert!(back.rmw_costs().is_legacy());
        assert_eq!(back.latency_ns(0, 5), t2.latency_ns(0, 5));
    }

    #[test]
    #[should_panic(expected = "register at least one layer")]
    fn build_requires_layers() {
        let _ = TopologyBuilder::new("x", 4).pair_layer_fn(|_, _| LayerId(0)).build();
    }

    #[test]
    #[should_panic(expected = "provide a pair")]
    fn build_requires_pair_map() {
        let _ = TopologyBuilder::new("x", 4).layer("l", 1.0, 0.0).build();
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn hierarchy_rejects_nonincreasing() {
        let _ = TopologyBuilder::new("x", 8).layer("a", 1.0, 0.0).hierarchy(&[4, 4]);
    }

    #[test]
    #[should_panic(expected = "layer L1 out of range")]
    fn build_rejects_dangling_layer() {
        let _ = TopologyBuilder::new("x", 4)
            .layer("only", 1.0, 0.0)
            .pair_layer_fn(|_, _| LayerId(1))
            .build();
    }
}

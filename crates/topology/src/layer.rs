//! Communication-latency layers.
//!
//! The paper groups core-to-core communication latencies into *layers*
//! `L_0, L_1, …` according to the relative position of the two cores in the
//! machine's cluster hierarchy (Section III-A). `ε` — access to the local
//! cache of the core itself — is represented here as the distinguished
//! [`LayerId::LOCAL`] layer.

/// Identifier of a latency layer.
///
/// `LayerId::LOCAL` is `ε` (a core talking to itself); `LayerId(0)` is the
/// paper's `L_0` (within the innermost cluster), `LayerId(1)` is `L_1`, and
/// so on outwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LayerId(pub u8);

impl LayerId {
    /// The local-cache layer `ε`.
    pub const LOCAL: LayerId = LayerId(u8::MAX);

    /// Returns `true` for the local-cache layer `ε`.
    #[inline]
    pub fn is_local(self) -> bool {
        self == Self::LOCAL
    }

    /// The `L_i` index of a non-local layer.
    ///
    /// # Panics
    /// Panics when called on [`LayerId::LOCAL`].
    #[inline]
    pub fn index(self) -> usize {
        assert!(!self.is_local(), "LOCAL layer has no L_i index");
        self.0 as usize
    }
}

impl std::fmt::Display for LayerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_local() {
            write!(f, "eps")
        } else {
            write!(f, "L{}", self.0)
        }
    }
}

/// One latency layer of a machine: a name, a measured round-trip cache
/// transfer latency, and the RFO (read-for-ownership) weight `α_i` used by
/// the analytical model of Section III-B (`0 ≤ α_i ≤ 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Human-readable description, e.g. `"within a core group"`.
    pub name: String,
    /// Cache-to-cache transfer latency in nanoseconds (Tables I–III).
    pub latency_ns: f64,
    /// RFO weight `α_i` for invalidations travelling over this layer.
    pub alpha: f64,
}

impl Layer {
    /// Creates a layer, validating the paper's parameter ranges.
    ///
    /// # Panics
    /// Panics if `latency_ns` is not finite and positive, or if `alpha`
    /// falls outside `[0, 1]` (the range assumed by the paper's model).
    pub fn new(name: impl Into<String>, latency_ns: f64, alpha: f64) -> Self {
        assert!(
            latency_ns.is_finite() && latency_ns > 0.0,
            "layer latency must be positive and finite, got {latency_ns}"
        );
        assert!((0.0..=1.0).contains(&alpha), "alpha must lie in [0, 1], got {alpha}");
        Self { name: name.into(), latency_ns, alpha }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_layer_is_distinguished() {
        assert!(LayerId::LOCAL.is_local());
        assert!(!LayerId(0).is_local());
        assert!(!LayerId(8).is_local());
    }

    #[test]
    fn layer_index_roundtrips() {
        for i in 0..9u8 {
            assert_eq!(LayerId(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "LOCAL layer has no L_i index")]
    fn local_layer_has_no_index() {
        let _ = LayerId::LOCAL.index();
    }

    #[test]
    fn display_forms() {
        assert_eq!(LayerId::LOCAL.to_string(), "eps");
        assert_eq!(LayerId(3).to_string(), "L3");
    }

    #[test]
    fn layer_new_accepts_valid_parameters() {
        let l = Layer::new("within a panel", 42.3, 0.5);
        assert_eq!(l.name, "within a panel");
        assert_eq!(l.latency_ns, 42.3);
        assert_eq!(l.alpha, 0.5);
    }

    #[test]
    #[should_panic(expected = "latency must be positive")]
    fn layer_rejects_zero_latency() {
        let _ = Layer::new("bad", 0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "alpha must lie in [0, 1]")]
    fn layer_rejects_alpha_above_one() {
        let _ = Layer::new("bad", 10.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "alpha must lie in [0, 1]")]
    fn layer_rejects_negative_alpha() {
        let _ = Layer::new("bad", 10.0, -0.1);
    }

    #[test]
    fn layer_ordering_by_id() {
        assert!(LayerId(0) < LayerId(1));
        assert!(LayerId(8) < LayerId::LOCAL); // LOCAL sorts last
    }
}

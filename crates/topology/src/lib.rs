//! Machine topology and core-to-core communication latency models.
//!
//! This crate describes the three ARMv8 many-core processors studied in
//! *"Optimizing Barrier Synchronization on ARMv8 Many-Core Architectures"*
//! (CLUSTER 2021) — Phytium 2000+, Marvell ThunderX2 and HiSilicon
//! Kunpeng 920 — plus an Intel Xeon Gold reference machine, as data:
//!
//! * the **cluster hierarchy** (core groups / panels / sockets / CCLs / SCCLs),
//! * the **measured core-to-core latency layers** `L_i` from Tables I–III of
//!   the paper, and the local-cache latency `ε`,
//! * the coherence-cost parameters of the paper's analytical model
//!   (Section III): the RFO weights `α_i`, plus the contention coefficients
//!   used by the cache simulator,
//! * the **logical core-cluster size** `N_c` (4 on Phytium 2000+, 32 on
//!   ThunderX2, 4 on Kunpeng 920) that drives the NUMA-aware optimizations.
//!
//! A [`Topology`] is pure data — it performs no synchronization itself. The
//! `armbar-simcoh` crate interprets it to cost memory operations, and the
//! barrier algorithms in `armbar-core` consult it to shape their arrival and
//! wake-up trees.
//!
//! # Example
//!
//! ```
//! use armbar_topology::{Platform, Topology};
//!
//! let topo = Topology::preset(Platform::Phytium2000Plus);
//! assert_eq!(topo.num_cores(), 64);
//! assert_eq!(topo.n_c(), 4);
//! // Cores 0 and 1 share a core group: latency L0 = 9.1 ns.
//! assert_eq!(topo.latency_ns(0, 1), 9.1);
//! // Cores 0 and 63 are on panels 0 and 7: latency L8 = 84.5 ns.
//! assert_eq!(topo.latency_ns(0, 63), 84.5);
//! ```

pub mod atomics;
pub mod builder;
pub mod layer;
pub mod machine;
pub mod platforms;

pub use atomics::{RmwCost, RmwCosts, RmwOp};
pub use builder::TopologyBuilder;
pub use layer::{Layer, LayerId};
pub use machine::{CoherenceParams, CoreId, Topology};
pub use platforms::Platform;

#[cfg(test)]
mod proptests;

//! The four machines evaluated in the paper, with the measured
//! core-to-core latencies of Tables I–III.
//!
//! The latency numbers (`ε`, `L_i`) are the paper's measurements verbatim.
//! The coherence parameters (`α_i`, invalidation/read contention, jitter)
//! are *calibrated*, not measured: the paper constrains `0 ≤ α_i ≤ 1` and
//! describes contention qualitatively; the values below were fitted so the
//! simulator reproduces the anchor points of Figures 5–7 (see DESIGN.md §2
//! and EXPERIMENTS.md).

use crate::atomics::RmwCosts;
use crate::builder::TopologyBuilder;
use crate::layer::LayerId;
use crate::machine::Topology;

/// The machines evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Phytium 2000+ — 64 ARMv8 cores @ 2.2 GHz, 8 panels × 2 core groups × 4 cores.
    Phytium2000Plus,
    /// Marvell/Cavium ThunderX2 — 2 sockets × 32 ARMv8 cores @ 2.5 GHz (CCPI2 interconnect).
    ThunderX2,
    /// HiSilicon Kunpeng 920 — 2 SCCLs × 8 CCLs × 4 ARMv8 cores @ 2.6 GHz.
    Kunpeng920,
    /// 32-core Intel Xeon Gold @ 2.1 GHz — the x86 reference of Figure 5.
    XeonGold,
    /// MemPool-style 256-core hierarchical cluster: 64 tiles × 4 cores,
    /// 4 groups of 16 tiles (the kilocore family's quarter-scale point).
    MemPool256,
    /// MemPool-style 1024-core hierarchical cluster: 256 tiles × 4 cores,
    /// 16 groups of 64 cores (PAPERS.md: "Fast Shared-Memory Barrier
    /// Synchronization for a 1024-Cores RISC-V Many-Core Cluster").
    MemPool1024,
}

impl Platform {
    /// The four platforms evaluated in the paper, ARM first, in the
    /// paper's order. The heavy experiment suites iterate this set; the
    /// kilocore extrapolations have their own family.
    pub const ALL: [Platform; 4] =
        [Platform::Phytium2000Plus, Platform::ThunderX2, Platform::Kunpeng920, Platform::XeonGold];

    /// The three ARMv8 platforms (the paper's evaluation targets).
    pub const ARM: [Platform; 3] =
        [Platform::Phytium2000Plus, Platform::ThunderX2, Platform::Kunpeng920];

    /// The MemPool-style kilocore extrapolations (ROADMAP open item 1).
    pub const KILOCORE: [Platform; 2] = [Platform::MemPool256, Platform::MemPool1024];

    /// Every preset machine: the paper's four plus the kilocore pair.
    pub const EVERY: [Platform; 6] = [
        Platform::Phytium2000Plus,
        Platform::ThunderX2,
        Platform::Kunpeng920,
        Platform::XeonGold,
        Platform::MemPool256,
        Platform::MemPool1024,
    ];

    /// Short display name as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Platform::Phytium2000Plus => "Phytium 2000+",
            Platform::ThunderX2 => "ThunderX2",
            Platform::Kunpeng920 => "Kunpeng920",
            Platform::XeonGold => "Intel Xeon Gold",
            Platform::MemPool256 => "MemPool-256",
            Platform::MemPool1024 => "MemPool-1024",
        }
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Phytium 2000+ (Table I). 64 cores in 8 panels of 8; every 4 cores form
/// a core group sharing an L2 cache. Cross-panel latency depends on the
/// panel pair; the paper reports latencies from panel 0 to panels 1–7, which
/// we index by panel distance `|p − q|`.
pub fn phytium_2000plus() -> Topology {
    // Table I: ε, L0 (core group), L1 (panel), L2..L8 (panel 0-1 .. 0-7).
    const CROSS_PANEL: [f64; 7] = [54.1, 76.3, 65.6, 61.4, 72.7, 95.5, 84.5];
    let mut b = TopologyBuilder::new("Phytium 2000+", 64)
        .cacheline_bytes(64)
        .epsilon_ns(1.8)
        .layer("within a core group", 9.1, 0.55)
        .layer("within a panel", 42.3, 0.55);
    for (d, &l) in CROSS_PANEL.iter().enumerate() {
        b = b.layer(&format!("panel distance {}", d + 1), l, 0.55);
    }
    b.n_c(4)
        .pair_layer_fn(|a, c| {
            if a / 4 == c / 4 {
                LayerId(0) // same core group
            } else if a / 8 == c / 8 {
                LayerId(1) // same panel
            } else {
                let d = (a / 8).abs_diff(c / 8);
                LayerId(1 + d as u8) // L2..L8 by panel distance
            }
        })
        .coherence(5.0, 10.0, 0.03)
        .noc_ns(3.0)
        // FT-2000+ cores are ARMv8.0: every atomic is an LDXR…STXR
        // exclusive loop that retries under contention (expensive FAA/SWP,
        // cheap failed CAS). See DESIGN.md §17.
        .rmw_costs(RmwCosts::llsc(1.6, 1.2))
        .build()
}

/// ThunderX2 (Table II). Two 32-core sockets; uniform ~24 ns within a
/// socket (dual-ring LLC), 140.7 ns across the CCPI2 link. The dual-ring
/// bus saturates under hot-spot traffic, hence the large invalidation
/// contention coefficient.
pub fn thunderx2() -> Topology {
    TopologyBuilder::new("ThunderX2", 64)
        .cacheline_bytes(64)
        .epsilon_ns(1.2)
        .layer("within a socket", 24.0, 0.9)
        .layer("across sockets", 140.7, 0.9)
        .n_c(32)
        .hierarchy(&[32])
        .shard_cores(32) // one scheduler shard per socket
        .coherence(22.0, 12.0, 0.03)
        .noc_ns(4.0)
        // Vulcan cores are ARMv8.1: LSE far atomics execute FAA/SWP near
        // the home node (cheap), CAS carries a compare leg and a failed
        // CAS skips the write-back. See DESIGN.md §17.
        .rmw_costs(RmwCosts::lse(0.6, 1.1))
        .build()
}

/// Kunpeng 920 (Table III). 2 SCCLs × 8 CCLs × 4 cores; 128-byte cache
/// lines. Reader-side contention is cheap (the paper finds global wake-up
/// *wins* here), but the LLC tag partitioning makes individual transfers
/// noisy — the paper reports dramatically fluctuating barrier overheads,
/// modelled as high multiplicative jitter.
pub fn kunpeng920() -> Topology {
    TopologyBuilder::new("Kunpeng920", 64)
        .cacheline_bytes(128)
        .epsilon_ns(1.15)
        .layer("within a CCL", 14.2, 0.5)
        .layer("within an SCCL", 44.2, 0.5)
        .layer("across SCCLs", 75.0, 0.5)
        .n_c(4)
        .hierarchy(&[4, 32])
        .shard_cores(32) // one scheduler shard per SCCL
        .coherence(5.0, 0.8, 0.22)
        .noc_ns(2.5)
        // TSV110 cores are ARMv8.2 with LSE far atomics, same shape as
        // ThunderX2 but a slightly costlier CAS leg (128-byte lines make
        // the exclusive grab heavier). See DESIGN.md §17.
        .rmw_costs(RmwCosts::lse(0.7, 1.2))
        .build()
}

/// 32-core Intel Xeon Gold reference (Figure 5's x86 baseline): a flat
/// mesh with low, uniform core-to-core latency and a fast on-die
/// interconnect (low contention coefficients).
pub fn xeon_gold() -> Topology {
    TopologyBuilder::new("Intel Xeon Gold", 32)
        .cacheline_bytes(64)
        .epsilon_ns(1.0)
        .layer("on die", 20.0, 0.25)
        .hierarchy(&[])
        .n_c(32)
        .coherence(2.0, 0.5, 0.01)
        .noc_ns(0.5)
        .build()
}

/// Shared core of the MemPool-style hierarchical presets: tiles of 4 cores
/// (banked L1 interconnect, ~1-cycle), groups of 64 cores (local NoC
/// stage), and the full cluster (global NoC stage). Latencies extrapolate
/// the MemPool paper's 1/5/9-11-cycle access hierarchy at a 2 GHz clock;
/// the coherence coefficients are calibrated the same way as the paper
/// platforms' (low contention — the design goal of that machine is a
/// sub-logarithmic-diameter NoC).
fn mempool(name: &str, cores: usize) -> Topology {
    TopologyBuilder::new(name, cores)
        .cacheline_bytes(64)
        .epsilon_ns(0.5)
        .layer("within a tile", 2.0, 0.35)
        .layer("within a group", 10.0, 0.45)
        .layer("across groups", 21.0, 0.55)
        .n_c(4)
        .hierarchy(&[4, 64])
        .shard_cores(64) // one scheduler shard per group
        .coherence(1.5, 0.6, 0.01)
        .noc_ns(0.8)
        .build()
}

/// MemPool-style 256-core cluster: 64 tiles × 4 cores, 4 groups of 64.
pub fn mempool_256() -> Topology {
    mempool("MemPool-256", 256)
}

/// MemPool-style 1024-core cluster: 256 tiles × 4 cores, 16 groups of 64.
pub fn mempool_1024() -> Topology {
    mempool("MemPool-1024", 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phytium_matches_table_1() {
        let t = phytium_2000plus();
        assert_eq!(t.num_cores(), 64);
        assert_eq!(t.epsilon_ns(), 1.8);
        // Same core group: cores 0 and 3.
        assert_eq!(t.latency_ns(0, 3), 9.1);
        // Same panel, different core group: cores 0 and 7.
        assert_eq!(t.latency_ns(0, 7), 42.3);
        // Panel 0 → 1..7 (first core of each panel).
        let expect = [54.1, 76.3, 65.6, 61.4, 72.7, 95.5, 84.5];
        for (p, &l) in expect.iter().enumerate() {
            assert_eq!(t.latency_ns(0, (p + 1) * 8), l, "panel 0-{}", p + 1);
        }
        assert_eq!(t.n_c(), 4);
    }

    #[test]
    fn thunderx2_matches_table_2() {
        let t = thunderx2();
        assert_eq!(t.num_cores(), 64);
        assert_eq!(t.epsilon_ns(), 1.2);
        assert_eq!(t.latency_ns(0, 31), 24.0);
        assert_eq!(t.latency_ns(0, 32), 140.7);
        assert_eq!(t.latency_ns(33, 63), 24.0);
        assert_eq!(t.n_c(), 32);
        assert_eq!(t.num_clusters(), 2);
    }

    #[test]
    fn kunpeng920_matches_table_3() {
        let t = kunpeng920();
        assert_eq!(t.num_cores(), 64);
        assert_eq!(t.epsilon_ns(), 1.15);
        assert_eq!(t.latency_ns(0, 3), 14.2); // within CCL
        assert_eq!(t.latency_ns(0, 4), 44.2); // within SCCL
        assert_eq!(t.latency_ns(0, 63), 75.0); // across SCCLs
        assert_eq!(t.cacheline_bytes(), 128);
        assert_eq!(t.n_c(), 4);
    }

    #[test]
    fn xeon_is_flat() {
        let t = xeon_gold();
        assert_eq!(t.num_cores(), 32);
        for a in 0..32 {
            for b in 0..32 {
                if a != b {
                    assert_eq!(t.latency_ns(a, b), 20.0);
                }
            }
        }
    }

    #[test]
    fn phytium_panel_distance_symmetry() {
        let t = phytium_2000plus();
        // Panel 2 → panel 5 is distance 3, same as panel 0 → 3.
        assert_eq!(t.latency_ns(16, 40), t.latency_ns(0, 24));
    }

    #[test]
    fn arm_platforms_have_more_contention_than_xeon() {
        let xeon = xeon_gold();
        for p in Platform::ARM {
            let t = Topology::preset(p);
            assert!(
                t.coherence().inv_ns > xeon.coherence().inv_ns,
                "{p}: expected higher invalidation contention than Xeon"
            );
        }
    }

    #[test]
    fn platform_labels_are_stable() {
        assert_eq!(Platform::Phytium2000Plus.to_string(), "Phytium 2000+");
        assert_eq!(Platform::ThunderX2.to_string(), "ThunderX2");
        assert_eq!(Platform::Kunpeng920.to_string(), "Kunpeng920");
        assert_eq!(Platform::XeonGold.to_string(), "Intel Xeon Gold");
        assert_eq!(Platform::MemPool256.to_string(), "MemPool-256");
        assert_eq!(Platform::MemPool1024.to_string(), "MemPool-1024");
    }

    #[test]
    fn every_is_all_plus_kilocore() {
        assert_eq!(Platform::EVERY.len(), Platform::ALL.len() + Platform::KILOCORE.len());
        for p in Platform::ALL.iter().chain(Platform::KILOCORE.iter()) {
            assert!(Platform::EVERY.contains(p), "{p:?} missing from EVERY");
        }
    }

    #[test]
    fn mempool_1024_matches_the_tile_group_cluster_hierarchy() {
        let t = mempool_1024();
        assert_eq!(t.num_cores(), 1024);
        assert_eq!(t.n_c(), 4);
        assert_eq!(t.num_clusters(), 256); // tiles
        assert_eq!(t.shard_cores(), 64); // groups
        assert_eq!(t.num_shards(), 16);
        assert_eq!(t.latency_ns(0, 3), 2.0); // within a tile
        assert_eq!(t.latency_ns(0, 63), 10.0); // within a group
        assert_eq!(t.latency_ns(0, 1023), 21.0); // across groups
                                                 // The latency hierarchy is strictly increasing outward.
        assert!(t.epsilon_ns() < 2.0);
    }

    #[test]
    fn mempool_256_is_the_quarter_scale_point() {
        let t = mempool_256();
        assert_eq!(t.num_cores(), 256);
        assert_eq!(t.num_shards(), 4);
        // Same per-layer numbers as the 1024-core machine — only the
        // group count differs, so curves are comparable across scales.
        let big = mempool_1024();
        assert_eq!(t.latency_ns(0, 3), big.latency_ns(0, 3));
        assert_eq!(t.latency_ns(0, 63), big.latency_ns(0, 63));
        assert_eq!(t.latency_ns(0, 255), big.latency_ns(0, 1023));
        assert_eq!(t.cacheline_bytes(), big.cacheline_bytes());
    }

    #[test]
    fn mempool_contention_is_below_the_arm_parts() {
        // The MemPool design goal is a low-contention NoC: its
        // invalidation and NoC service coefficients sit below every
        // paper ARM platform.
        for p in Platform::KILOCORE {
            let t = Topology::preset(p);
            for arm in Platform::ARM {
                let a = Topology::preset(arm);
                assert!(t.coherence().inv_ns < a.coherence().inv_ns, "{p:?} vs {arm:?}");
                assert!(t.coherence().noc_ns < a.coherence().noc_ns, "{p:?} vs {arm:?}");
            }
        }
    }

    #[test]
    fn arm_presets_carry_differentiated_rmw_costs() {
        use crate::atomics::RmwOp;
        // The three ARM parts split the RMW surcharge by op kind; the
        // Xeon reference and the MemPool extrapolations keep the legacy
        // shared surcharge (their goldens must not move).
        for p in Platform::ARM {
            assert!(!Topology::preset(p).rmw_costs().is_legacy(), "{p}");
        }
        for p in [Platform::XeonGold, Platform::MemPool256, Platform::MemPool1024] {
            assert!(Topology::preset(p).rmw_costs().is_legacy(), "{p}");
        }
        // LL/SC vs LSE: contended FAA is pricier than a successful CAS on
        // Phytium (exclusive-loop retries) and cheaper on the LSE parts.
        let (eps, t) = (1.0, 50.0);
        let phy = phytium_2000plus();
        assert!(
            phy.rmw_costs().surcharge_ns(RmwOp::FetchAdd, eps, t)
                > phy.rmw_costs().surcharge_ns(RmwOp::CmpXchgOk, eps, t)
        );
        for p in [Platform::ThunderX2, Platform::Kunpeng920] {
            let c = Topology::preset(p).rmw_costs().clone();
            assert!(
                c.surcharge_ns(RmwOp::FetchAdd, eps, t) < c.surcharge_ns(RmwOp::CmpXchgOk, eps, t),
                "{p}"
            );
            // Failed CAS is cheaper than successful on every ARM part.
            assert!(
                c.surcharge_ns(RmwOp::CmpXchgFail, eps, t)
                    < c.surcharge_ns(RmwOp::CmpXchgOk, eps, t),
                "{p}"
            );
        }
    }

    #[test]
    fn kunpeng_jitter_dominates_other_platforms() {
        let kp = kunpeng920();
        for p in [Platform::Phytium2000Plus, Platform::ThunderX2, Platform::XeonGold] {
            assert!(kp.coherence().jitter > Topology::preset(p).coherence().jitter);
        }
    }
}

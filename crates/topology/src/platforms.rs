//! The four machines evaluated in the paper, with the measured
//! core-to-core latencies of Tables I–III.
//!
//! The latency numbers (`ε`, `L_i`) are the paper's measurements verbatim.
//! The coherence parameters (`α_i`, invalidation/read contention, jitter)
//! are *calibrated*, not measured: the paper constrains `0 ≤ α_i ≤ 1` and
//! describes contention qualitatively; the values below were fitted so the
//! simulator reproduces the anchor points of Figures 5–7 (see DESIGN.md §2
//! and EXPERIMENTS.md).

use crate::builder::TopologyBuilder;
use crate::layer::LayerId;
use crate::machine::Topology;

/// The machines evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Phytium 2000+ — 64 ARMv8 cores @ 2.2 GHz, 8 panels × 2 core groups × 4 cores.
    Phytium2000Plus,
    /// Marvell/Cavium ThunderX2 — 2 sockets × 32 ARMv8 cores @ 2.5 GHz (CCPI2 interconnect).
    ThunderX2,
    /// HiSilicon Kunpeng 920 — 2 SCCLs × 8 CCLs × 4 ARMv8 cores @ 2.6 GHz.
    Kunpeng920,
    /// 32-core Intel Xeon Gold @ 2.1 GHz — the x86 reference of Figure 5.
    XeonGold,
}

impl Platform {
    /// All four platforms, ARM first, in the paper's order.
    pub const ALL: [Platform; 4] =
        [Platform::Phytium2000Plus, Platform::ThunderX2, Platform::Kunpeng920, Platform::XeonGold];

    /// The three ARMv8 platforms (the paper's evaluation targets).
    pub const ARM: [Platform; 3] =
        [Platform::Phytium2000Plus, Platform::ThunderX2, Platform::Kunpeng920];

    /// Short display name as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Platform::Phytium2000Plus => "Phytium 2000+",
            Platform::ThunderX2 => "ThunderX2",
            Platform::Kunpeng920 => "Kunpeng920",
            Platform::XeonGold => "Intel Xeon Gold",
        }
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Phytium 2000+ (Table I). 64 cores in 8 panels of 8; every 4 cores form
/// a core group sharing an L2 cache. Cross-panel latency depends on the
/// panel pair; the paper reports latencies from panel 0 to panels 1–7, which
/// we index by panel distance `|p − q|`.
pub fn phytium_2000plus() -> Topology {
    // Table I: ε, L0 (core group), L1 (panel), L2..L8 (panel 0-1 .. 0-7).
    const CROSS_PANEL: [f64; 7] = [54.1, 76.3, 65.6, 61.4, 72.7, 95.5, 84.5];
    let mut b = TopologyBuilder::new("Phytium 2000+", 64)
        .cacheline_bytes(64)
        .epsilon_ns(1.8)
        .layer("within a core group", 9.1, 0.55)
        .layer("within a panel", 42.3, 0.55);
    for (d, &l) in CROSS_PANEL.iter().enumerate() {
        b = b.layer(&format!("panel distance {}", d + 1), l, 0.55);
    }
    b.n_c(4)
        .pair_layer_fn(|a, c| {
            if a / 4 == c / 4 {
                LayerId(0) // same core group
            } else if a / 8 == c / 8 {
                LayerId(1) // same panel
            } else {
                let d = (a / 8).abs_diff(c / 8);
                LayerId(1 + d as u8) // L2..L8 by panel distance
            }
        })
        .coherence(5.0, 10.0, 0.03)
        .noc_ns(3.0)
        .build()
}

/// ThunderX2 (Table II). Two 32-core sockets; uniform ~24 ns within a
/// socket (dual-ring LLC), 140.7 ns across the CCPI2 link. The dual-ring
/// bus saturates under hot-spot traffic, hence the large invalidation
/// contention coefficient.
pub fn thunderx2() -> Topology {
    TopologyBuilder::new("ThunderX2", 64)
        .cacheline_bytes(64)
        .epsilon_ns(1.2)
        .layer("within a socket", 24.0, 0.9)
        .layer("across sockets", 140.7, 0.9)
        .n_c(32)
        .hierarchy(&[32])
        .coherence(22.0, 12.0, 0.03)
        .noc_ns(4.0)
        .build()
}

/// Kunpeng 920 (Table III). 2 SCCLs × 8 CCLs × 4 cores; 128-byte cache
/// lines. Reader-side contention is cheap (the paper finds global wake-up
/// *wins* here), but the LLC tag partitioning makes individual transfers
/// noisy — the paper reports dramatically fluctuating barrier overheads,
/// modelled as high multiplicative jitter.
pub fn kunpeng920() -> Topology {
    TopologyBuilder::new("Kunpeng920", 64)
        .cacheline_bytes(128)
        .epsilon_ns(1.15)
        .layer("within a CCL", 14.2, 0.5)
        .layer("within an SCCL", 44.2, 0.5)
        .layer("across SCCLs", 75.0, 0.5)
        .n_c(4)
        .hierarchy(&[4, 32])
        .coherence(5.0, 0.8, 0.22)
        .noc_ns(2.5)
        .build()
}

/// 32-core Intel Xeon Gold reference (Figure 5's x86 baseline): a flat
/// mesh with low, uniform core-to-core latency and a fast on-die
/// interconnect (low contention coefficients).
pub fn xeon_gold() -> Topology {
    TopologyBuilder::new("Intel Xeon Gold", 32)
        .cacheline_bytes(64)
        .epsilon_ns(1.0)
        .layer("on die", 20.0, 0.25)
        .hierarchy(&[])
        .n_c(32)
        .coherence(2.0, 0.5, 0.01)
        .noc_ns(0.5)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phytium_matches_table_1() {
        let t = phytium_2000plus();
        assert_eq!(t.num_cores(), 64);
        assert_eq!(t.epsilon_ns(), 1.8);
        // Same core group: cores 0 and 3.
        assert_eq!(t.latency_ns(0, 3), 9.1);
        // Same panel, different core group: cores 0 and 7.
        assert_eq!(t.latency_ns(0, 7), 42.3);
        // Panel 0 → 1..7 (first core of each panel).
        let expect = [54.1, 76.3, 65.6, 61.4, 72.7, 95.5, 84.5];
        for (p, &l) in expect.iter().enumerate() {
            assert_eq!(t.latency_ns(0, (p + 1) * 8), l, "panel 0-{}", p + 1);
        }
        assert_eq!(t.n_c(), 4);
    }

    #[test]
    fn thunderx2_matches_table_2() {
        let t = thunderx2();
        assert_eq!(t.num_cores(), 64);
        assert_eq!(t.epsilon_ns(), 1.2);
        assert_eq!(t.latency_ns(0, 31), 24.0);
        assert_eq!(t.latency_ns(0, 32), 140.7);
        assert_eq!(t.latency_ns(33, 63), 24.0);
        assert_eq!(t.n_c(), 32);
        assert_eq!(t.num_clusters(), 2);
    }

    #[test]
    fn kunpeng920_matches_table_3() {
        let t = kunpeng920();
        assert_eq!(t.num_cores(), 64);
        assert_eq!(t.epsilon_ns(), 1.15);
        assert_eq!(t.latency_ns(0, 3), 14.2); // within CCL
        assert_eq!(t.latency_ns(0, 4), 44.2); // within SCCL
        assert_eq!(t.latency_ns(0, 63), 75.0); // across SCCLs
        assert_eq!(t.cacheline_bytes(), 128);
        assert_eq!(t.n_c(), 4);
    }

    #[test]
    fn xeon_is_flat() {
        let t = xeon_gold();
        assert_eq!(t.num_cores(), 32);
        for a in 0..32 {
            for b in 0..32 {
                if a != b {
                    assert_eq!(t.latency_ns(a, b), 20.0);
                }
            }
        }
    }

    #[test]
    fn phytium_panel_distance_symmetry() {
        let t = phytium_2000plus();
        // Panel 2 → panel 5 is distance 3, same as panel 0 → 3.
        assert_eq!(t.latency_ns(16, 40), t.latency_ns(0, 24));
    }

    #[test]
    fn arm_platforms_have_more_contention_than_xeon() {
        let xeon = xeon_gold();
        for p in Platform::ARM {
            let t = Topology::preset(p);
            assert!(
                t.coherence().inv_ns > xeon.coherence().inv_ns,
                "{p}: expected higher invalidation contention than Xeon"
            );
        }
    }

    #[test]
    fn platform_labels_are_stable() {
        assert_eq!(Platform::Phytium2000Plus.to_string(), "Phytium 2000+");
        assert_eq!(Platform::ThunderX2.to_string(), "ThunderX2");
        assert_eq!(Platform::Kunpeng920.to_string(), "Kunpeng920");
        assert_eq!(Platform::XeonGold.to_string(), "Intel Xeon Gold");
    }

    #[test]
    fn kunpeng_jitter_dominates_other_platforms() {
        let kp = kunpeng920();
        for p in [Platform::Phytium2000Plus, Platform::ThunderX2, Platform::XeonGold] {
            assert!(kp.coherence().jitter > Topology::preset(p).coherence().jitter);
        }
    }
}

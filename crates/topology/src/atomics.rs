//! Per-op-kind atomic RMW cost parameters.
//!
//! The paper's cost model — and the simulator through PR 9 — charged every
//! atomic read-modify-write the same surcharge on top of the ownership
//! transfer: `ε + 0.5·transfer`. But *"Evaluating the Cost of Atomic
//! Operations on Modern Architectures"* (PAPERS.md) measures CAS, FAA and
//! SWP at distinct costs, and ARMv8.1 LSE far-atomics (single `LDADD`/`CAS`
//! instructions executed near the home node) behave very differently from
//! ARMv8.0 LL/SC retry loops (`LDXR`/`STXR`, which bounce the line and
//! retry under contention).
//!
//! [`RmwCosts`] carries one [`RmwCost`] per [`RmwOp`] kind. The simulator
//! charges a successful RMW
//!
//! ```text
//! surcharge = alu_eps·ε + transfer_frac·transfer
//! ```
//!
//! on top of the queue/transfer/RFO terms it already pays (see
//! `armbar-simcoh::engine::do_write`). [`RmwCosts::legacy`] sets
//! `{alu_eps: 1.0, transfer_frac: 0.5}` for every kind, which reproduces
//! the pre-split engine **bit-identically** (`1.0·ε ≡ ε` in IEEE 754, and
//! the addition order is unchanged) — the golden-master identity test pins
//! this.
//!
//! Two named shapes capture the architectural split:
//!
//! * [`RmwCosts::lse`] — ARMv8.1 far atomics. FAA and SWP are cheap
//!   fire-and-forget near-memory ops; CAS carries a compare leg, and a
//!   *failed* CAS is cheaper than a successful one (no data to write
//!   back through the ALU).
//! * [`RmwCosts::llsc`] — ARMv8.0 exclusives. Every RMW is an
//!   `LDXR…STXR` loop; under contention the store-exclusive fails and
//!   retries, so FAA/SWP pay a large transfer-proportional penalty. A
//!   failed CAS is the *cheapest* outcome: the compare fails after the
//!   `LDXR` and the `STXR` never issues.

/// Which atomic read-modify-write a cost entry prices.
///
/// `CmpXchgOk` and `CmpXchgFail` split the two outcomes of a
/// compare-exchange: both take the line exclusively (a failed CAS still
/// performs the coherence transaction — this is deliberate, and what real
/// CAS does), but they may charge different ALU/transfer surcharges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// `fetch_add` (ARMv8.1 `LDADD` / LL-SC add loop).
    FetchAdd,
    /// `swap` (ARMv8.1 `SWP` / LL-SC exchange loop).
    Swap,
    /// A compare-exchange whose compare succeeded and stored the new value.
    CmpXchgOk,
    /// A compare-exchange whose compare failed (the old value is rewritten;
    /// the line is still taken exclusively).
    CmpXchgFail,
}

impl RmwOp {
    /// All four kinds, in a fixed order (used by validation and reports).
    pub const ALL: [RmwOp; 4] =
        [RmwOp::FetchAdd, RmwOp::Swap, RmwOp::CmpXchgOk, RmwOp::CmpXchgFail];
}

/// The surcharge parameters for one RMW kind:
/// `surcharge = alu_eps·ε + transfer_frac·transfer`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmwCost {
    /// Multiple of the local cache latency `ε` charged for the ALU /
    /// near-memory leg of the op.
    pub alu_eps: f64,
    /// Fraction of the op's ownership-transfer latency charged on top of
    /// the transfer itself (LL/SC retry traffic scales with distance, so
    /// this may exceed 1.0 on heavily contended exclusives).
    pub transfer_frac: f64,
}

impl RmwCost {
    /// Validates ranges: both terms must be finite and ≥ 0.
    pub fn new(alu_eps: f64, transfer_frac: f64) -> Self {
        assert!(alu_eps.is_finite() && alu_eps >= 0.0, "alu_eps out of range: {alu_eps}");
        assert!(
            transfer_frac.is_finite() && transfer_frac >= 0.0,
            "transfer_frac out of range: {transfer_frac}"
        );
        Self { alu_eps, transfer_frac }
    }

    /// The pre-split shared surcharge: `ε + 0.5·transfer` for every kind.
    pub const LEGACY: RmwCost = RmwCost { alu_eps: 1.0, transfer_frac: 0.5 };
}

/// Per-kind RMW surcharge table, carried by [`crate::Topology`].
#[derive(Debug, Clone, PartialEq)]
pub struct RmwCosts {
    pub fetch_add: RmwCost,
    pub swap: RmwCost,
    pub cas_ok: RmwCost,
    pub cas_fail: RmwCost,
}

impl RmwCosts {
    /// The pre-split behaviour: every kind charges `ε + 0.5·transfer`.
    /// This is the default for custom-built topologies and the non-ARM
    /// presets, and reproduces the old engine bit-identically.
    pub fn legacy() -> Self {
        Self {
            fetch_add: RmwCost::LEGACY,
            swap: RmwCost::LEGACY,
            cas_ok: RmwCost::LEGACY,
            cas_fail: RmwCost::LEGACY,
        }
    }

    /// ARMv8.1 LSE far-atomic shape: cheap fire-and-forget FAA/SWP
    /// executed near the home node, CAS with a compare leg, failed CAS
    /// cheaper than successful.
    ///
    /// `faa_eps` prices the near-memory ALU pass for FAA/SWP; `cas_eps`
    /// the compare+write pass for CAS. Transfer fractions are fixed at
    /// the shape level: 0.35 for FAA/SWP (the far atomic still rides the
    /// request to the home node), 0.5 / 0.35 for ok/failed CAS.
    pub fn lse(faa_eps: f64, cas_eps: f64) -> Self {
        Self {
            fetch_add: RmwCost::new(faa_eps, 0.35),
            swap: RmwCost::new(faa_eps, 0.35),
            cas_ok: RmwCost::new(cas_eps, 0.5),
            cas_fail: RmwCost::new(cas_eps * 0.75, 0.35),
        }
    }

    /// ARMv8.0 LL/SC exclusive-loop shape: every RMW bounces the line
    /// through an `LDXR…STXR` pair and retries under contention, so
    /// FAA/SWP pay a transfer-proportional retry penalty `retry_frac`
    /// (> 0.5; may exceed 1.0). A failed CAS skips the `STXR` and is the
    /// cheapest outcome.
    pub fn llsc(rmw_eps: f64, retry_frac: f64) -> Self {
        assert!(retry_frac >= 0.5, "LL/SC retry fraction below the legacy surcharge: {retry_frac}");
        Self {
            fetch_add: RmwCost::new(rmw_eps, retry_frac),
            swap: RmwCost::new(rmw_eps, retry_frac),
            cas_ok: RmwCost::new(rmw_eps, 0.5),
            cas_fail: RmwCost::new(rmw_eps * 0.5, 0.2),
        }
    }

    /// The cost entry for one op kind.
    #[inline]
    pub fn cost(&self, op: RmwOp) -> RmwCost {
        match op {
            RmwOp::FetchAdd => self.fetch_add,
            RmwOp::Swap => self.swap,
            RmwOp::CmpXchgOk => self.cas_ok,
            RmwOp::CmpXchgFail => self.cas_fail,
        }
    }

    /// The surcharge in ns for one op, given the machine's `ε` and the
    /// op's ownership-transfer latency. Under [`RmwCosts::legacy`] this is
    /// bit-identical to the pre-split `ε + 0.5·transfer`.
    #[inline]
    pub fn surcharge_ns(&self, op: RmwOp, epsilon_ns: f64, transfer_ns: f64) -> f64 {
        let c = self.cost(op);
        c.alu_eps * epsilon_ns + c.transfer_frac * transfer_ns
    }

    /// `true` when every kind equals the legacy shared surcharge.
    pub fn is_legacy(&self) -> bool {
        RmwOp::ALL.iter().all(|&op| self.cost(op) == RmwCost::LEGACY)
    }
}

impl Default for RmwCosts {
    fn default() -> Self {
        Self::legacy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_matches_presplit_surcharge_bitwise() {
        let c = RmwCosts::legacy();
        for &op in &RmwOp::ALL {
            for &(eps, transfer) in &[(1.8, 54.1), (1.15, 75.0), (1.2, 140.7), (0.5, 2.0)] {
                // Bit-for-bit: 1.0·ε ≡ ε and the addition order matches the
                // old `ε + 0.5·transfer` expression.
                assert_eq!(c.surcharge_ns(op, eps, transfer), eps + 0.5 * transfer, "{op:?}");
            }
        }
        assert!(c.is_legacy());
        assert_eq!(RmwCosts::default(), RmwCosts::legacy());
    }

    #[test]
    fn lse_shape_orders_ops() {
        let c = RmwCosts::lse(0.8, 1.1);
        let (eps, t) = (1.15, 44.2);
        // Far FAA/SWP cheaper than CAS; failed CAS cheaper than successful.
        assert!(c.surcharge_ns(RmwOp::FetchAdd, eps, t) < c.surcharge_ns(RmwOp::CmpXchgOk, eps, t));
        assert!(
            c.surcharge_ns(RmwOp::CmpXchgFail, eps, t) < c.surcharge_ns(RmwOp::CmpXchgOk, eps, t)
        );
        assert_eq!(c.surcharge_ns(RmwOp::Swap, eps, t), c.surcharge_ns(RmwOp::FetchAdd, eps, t));
        assert!(!c.is_legacy());
    }

    #[test]
    fn llsc_shape_orders_ops() {
        let c = RmwCosts::llsc(1.5, 1.2);
        let (eps, t) = (1.8, 54.1);
        // Exclusive-loop FAA pricier than CAS-ok (retry traffic); failed
        // CAS (no STXR) cheapest of all.
        assert!(c.surcharge_ns(RmwOp::FetchAdd, eps, t) > c.surcharge_ns(RmwOp::CmpXchgOk, eps, t));
        let fail = c.surcharge_ns(RmwOp::CmpXchgFail, eps, t);
        for &op in &[RmwOp::FetchAdd, RmwOp::Swap, RmwOp::CmpXchgOk] {
            assert!(fail < c.surcharge_ns(op, eps, t), "{op:?}");
        }
    }

    #[test]
    #[should_panic(expected = "retry fraction below")]
    fn llsc_rejects_sub_legacy_retry() {
        let _ = RmwCosts::llsc(1.0, 0.4);
    }

    #[test]
    #[should_panic(expected = "alu_eps out of range")]
    fn cost_rejects_negative_alu() {
        let _ = RmwCost::new(-1.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "transfer_frac out of range")]
    fn cost_rejects_nan_frac() {
        let _ = RmwCost::new(1.0, f64::NAN);
    }
}

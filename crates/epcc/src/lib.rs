//! # armbar-epcc — measurement harness
//!
//! The measurement methodology of the paper, reimplemented for both
//! backends:
//!
//! * [`overhead`] — EPCC-style barrier overhead: time a loop of
//!   `work(delay); barrier()` and subtract the reference work, per
//!   episode. The paper runs the EPCC OpenMP micro-benchmark suite 20
//!   times and reports averages; [`overhead::repeat_sim`] mirrors that with
//!   independently seeded simulator runs.
//! * [`pingpong`] — the core-to-core communication micro-benchmark of
//!   Section III-A: one thread *places* data (becoming the cache owner),
//!   another *accesses* it; the per-line read latency is the layer latency
//!   `L_i`. Regenerates Tables I–III from the simulator.
//! * [`phases`] — Arrival/Notification split of one episode from the
//!   centralized phase hooks (`Barrier::wait_traced` + champion ARRIVED).
//! * [`episodes`] — per-episode traces: phase timings plus coherence-op
//!   counter deltas for every measured episode (feeds the CLI `trace`
//!   subcommand).
//! * [`summary`] — small-sample statistics used by the experiment reports.

pub mod episodes;
pub mod overhead;
pub mod phases;
pub mod pingpong;
pub mod summary;

pub use episodes::{trace_episodes, EpisodeTrace};
pub use overhead::{
    host_overhead_ns, repeat_sim, repeat_sim_of, repeat_sim_of_on, repeat_sim_on, sim_overhead_ns,
    sim_overhead_of, OverheadConfig, SEED_STRIDE,
};
pub use phases::{phase_breakdown, PhaseBreakdown};
pub use pingpong::{latency_table, measure_latency_ns, LatencyRow};
pub use summary::Summary;

//! Phase attribution: splitting one barrier episode into the paper's
//! Arrival-Phase and Notification-Phase using the centralized phase hooks
//! (`armbar_core::env::MARK_*`): the harness brackets every episode with
//! `Barrier::wait_traced` (ENTER/EXIT) and the algorithms' champion paths —
//! mostly via `Wakeup::release` — emit ARRIVED, so every algorithm reports
//! a split without hand instrumentation.

use std::sync::Arc;

use armbar_core::env::{Barrier, MARK_ARRIVED, MARK_ENTER, MARK_EXIT};
use armbar_simcoh::{SimBuilder, SimError};
use armbar_topology::Topology;

/// Phase timing of one barrier episode, in ns of virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseBreakdown {
    /// Last enter → champion observed the last arrival.
    pub arrival_ns: f64,
    /// Champion's observation → last thread released.
    pub notification_ns: f64,
}

impl PhaseBreakdown {
    /// Total episode span covered by the two phases.
    pub fn total_ns(&self) -> f64 {
        self.arrival_ns + self.notification_ns
    }
}

/// Measures the phase breakdown of `barrier` with `p` threads on `topo`:
/// a few warm-up episodes followed by one measured episode (the marks of
/// the *last* episode are the measurement).
///
/// Returns `None` (inside `Ok`) if the algorithm emits no phase marks.
pub fn phase_breakdown(
    topo: &Arc<Topology>,
    p: usize,
    barrier: Arc<dyn Barrier>,
    warmup: u32,
) -> Result<Option<PhaseBreakdown>, SimError> {
    let stats = SimBuilder::new(Arc::clone(topo), p).run(move |ctx| {
        for _ in 0..=warmup {
            ctx.compute_ns(100.0);
            barrier.wait_traced(ctx);
        }
    })?;
    let (Some(enter), Some(arrived), Some(exit)) = (
        stats.last_mark_time(MARK_ENTER),
        stats.last_mark_time(MARK_ARRIVED),
        stats.last_mark_time(MARK_EXIT),
    ) else {
        return Ok(None);
    };
    Ok(Some(PhaseBreakdown {
        arrival_ns: (arrived - enter).max(0.0),
        notification_ns: (exit - arrived).max(0.0),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_core::prelude::*;
    use armbar_simcoh::Arena;
    use armbar_topology::Platform;

    fn breakdown(platform: Platform, p: usize, id: AlgorithmId) -> Option<PhaseBreakdown> {
        let topo = Arc::new(Topology::preset(platform));
        let mut arena = Arena::new();
        let barrier: Arc<dyn Barrier> = Arc::from(id.build(&mut arena, p, &topo));
        phase_breakdown(&topo, p, barrier, 3).unwrap()
    }

    #[test]
    fn optimized_barrier_reports_both_phases() {
        let b = breakdown(Platform::ThunderX2, 64, AlgorithmId::Optimized).unwrap();
        assert!(b.arrival_ns > 0.0);
        assert!(b.notification_ns > 0.0);
        assert!(b.total_ns() < 10_000.0, "{b:?}");
    }

    #[test]
    fn sense_notification_is_the_smaller_share_at_scale() {
        // SENSE's cost is the serialized arrival RMW storm; the release is
        // one store plus staggered wakeups.
        let b = breakdown(Platform::ThunderX2, 64, AlgorithmId::Sense).unwrap();
        assert!(
            b.arrival_ns > b.notification_ns,
            "arrival {:.0} vs notification {:.0}",
            b.arrival_ns,
            b.notification_ns
        );
    }

    #[test]
    fn every_algorithm_reports_phases_via_central_hooks() {
        // No per-algorithm instrumentation needed: wait_traced brackets the
        // episode and the champion paths emit ARRIVED.
        for id in AlgorithmId::ALL {
            let b = breakdown(Platform::ThunderX2, 16, id)
                .unwrap_or_else(|| panic!("{id:?} reported no phase marks"));
            assert!(b.arrival_ns >= 0.0 && b.notification_ns >= 0.0, "{id:?}: {b:?}");
            assert!(b.total_ns() > 0.0, "{id:?}: {b:?}");
        }
    }

    #[test]
    fn single_thread_episode_has_no_arrival_mark() {
        // With p = 1 every algorithm returns before any champion moment, so
        // ARRIVED is absent and the split is undefined.
        assert!(breakdown(Platform::ThunderX2, 1, AlgorithmId::Mcs).is_none());
    }

    #[test]
    fn wakeup_choice_changes_only_notification() {
        use armbar_core::FwayBarrier;
        let topo = Arc::new(Topology::preset(Platform::ThunderX2));
        let get = |wakeup| {
            let mut arena = Arena::new();
            let b: Arc<dyn Barrier> = Arc::new(FwayBarrier::with_config(
                &mut arena,
                64,
                &topo,
                FwayConfig { wakeup, ..FwayConfig::optimized(&topo) },
            ));
            phase_breakdown(&topo, 64, b, 3).unwrap().unwrap()
        };
        let global = get(WakeupKind::Global);
        let numa = get(WakeupKind::NumaTree);
        // Arrival phases should be close; notification should differ more.
        let arrival_gap =
            (global.arrival_ns - numa.arrival_ns).abs() / global.arrival_ns.max(numa.arrival_ns);
        assert!(arrival_gap < 0.35, "arrival {global:?} vs {numa:?}");
        assert!(
            global.notification_ns > numa.notification_ns,
            "on ThunderX2 the NUMA tree must beat the global flip: {global:?} vs {numa:?}"
        );
    }
}

//! The core-to-core communication micro-benchmark of Section III-A.
//!
//! "One thread places the data, and the other thread accesses the data":
//! the placer writes a batch of cache lines (becoming their owner), then
//! the reader pulls each line once; the mean per-line pull time is the
//! cache-to-cache transfer latency of the core pair — `ε` when reading own
//! lines, `L_i` otherwise. Running it over representative core pairs
//! regenerates Tables I–III.

use std::sync::Arc;

use armbar_simcoh::{arena::padded_elem, Arena, SimBuilder};
use armbar_topology::{LayerId, Topology};

/// Lines pulled per measurement (more lines → tighter mean).
const BATCH: usize = 32;

/// Marks bracketing the reader's timed section.
const MARK_START: u32 = 10;
const MARK_END: u32 = 11;

/// Measures the data-access latency (ns) observed by core `reader` pulling
/// lines placed by core `placer` on the simulated `topo`. `reader ==
/// placer` measures `ε`.
pub fn measure_latency_ns(topo: &Arc<Topology>, placer: usize, reader: usize) -> f64 {
    let n = topo.num_cores();
    assert!(placer < n && reader < n);
    let mut arena = Arena::new();
    let line = topo.cacheline_bytes();
    let lines = arena.alloc_padded_u32_array(BATCH, line);
    let ready = arena.alloc_padded_u32(line);
    // Threads are pinned to cores by id: spin up enough threads to cover
    // both cores; bystanders exit immediately.
    let nthreads = placer.max(reader) + 1;

    let stats = SimBuilder::new(Arc::clone(topo), nthreads)
        .run(move |ctx| {
            let me = ctx.tid();
            if me == placer {
                for i in 0..BATCH {
                    ctx.store(padded_elem(lines, i, line), (i + 1) as u32);
                }
                ctx.store(ready, 1);
            }
            if me == reader {
                ctx.spin_until(ready, |v| v == 1);
                if placer == reader {
                    // Local case: the lines are already ours; re-read them.
                }
                ctx.mark(MARK_START);
                for i in 0..BATCH {
                    ctx.load(padded_elem(lines, i, line));
                }
                ctx.mark(MARK_END);
            }
        })
        .expect("ping-pong simulation failed");

    let t0 = stats.last_mark_time(MARK_START).unwrap();
    let t1 = stats.last_mark_time(MARK_END).unwrap();
    (t1 - t0) / BATCH as f64
}

/// One row of a regenerated latency table.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Layer this row describes (`LayerId::LOCAL` for `ε`).
    pub layer: LayerId,
    /// The layer's descriptive name from the topology.
    pub name: String,
    /// The paper's measured value (the topology's configured latency).
    pub expected_ns: f64,
    /// The value measured by the micro-benchmark on the simulator.
    pub measured_ns: f64,
    /// The core pair used for the measurement.
    pub pair: (usize, usize),
}

/// Regenerates the machine's latency table (Tables I–III): one row for `ε`
/// plus one per layer, each measured on the first core pair found in that
/// layer.
pub fn latency_table(topo: &Arc<Topology>) -> Vec<LatencyRow> {
    let n = topo.num_cores();
    let mut rows = vec![LatencyRow {
        layer: LayerId::LOCAL,
        name: "local".into(),
        expected_ns: topo.epsilon_ns(),
        measured_ns: measure_latency_ns(topo, 0, 0),
        pair: (0, 0),
    }];
    for (i, layer) in topo.layers().iter().enumerate() {
        let id = LayerId(i as u8);
        // Prefer pairs involving core 0 (the paper measures from core 0);
        // fall back to any pair in the layer.
        let pair =
            (1..n).map(|b| (0usize, b)).find(|&(a, b)| topo.layer(a, b) == id).or_else(|| {
                (0..n)
                    .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
                    .find(|&(a, b)| topo.layer(a, b) == id)
            });
        if let Some((a, b)) = pair {
            rows.push(LatencyRow {
                layer: id,
                name: layer.name.clone(),
                expected_ns: layer.latency_ns,
                measured_ns: measure_latency_ns(topo, a, b),
                pair: (a, b),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_topology::Platform;

    fn topo(p: Platform) -> Arc<Topology> {
        Arc::new(Topology::preset(p))
    }

    #[test]
    fn local_measurement_recovers_epsilon() {
        let t = topo(Platform::ThunderX2);
        let eps = measure_latency_ns(&t, 5, 5);
        assert!((eps - t.epsilon_ns()).abs() / t.epsilon_ns() < 0.1, "ε = {eps}");
    }

    #[test]
    fn remote_measurement_recovers_layer_latency() {
        let t = topo(Platform::ThunderX2);
        let within = measure_latency_ns(&t, 0, 7);
        let across = measure_latency_ns(&t, 0, 40);
        assert!((within - 24.0).abs() / 24.0 < 0.1, "L0 = {within}");
        assert!((across - 140.7).abs() / 140.7 < 0.1, "L1 = {across}");
    }

    #[test]
    fn table_regeneration_matches_configuration_on_all_platforms() {
        for p in Platform::ALL {
            let t = topo(p);
            for row in latency_table(&t) {
                let rel = (row.measured_ns - row.expected_ns).abs() / row.expected_ns;
                assert!(
                    rel < 0.12,
                    "{p}: layer {} expected {} measured {}",
                    row.layer,
                    row.expected_ns,
                    row.measured_ns
                );
            }
        }
    }

    #[test]
    fn phytium_table_has_all_nine_layers() {
        let rows = latency_table(&topo(Platform::Phytium2000Plus));
        // ε + L0..L8.
        assert_eq!(rows.len(), 10);
        assert!(rows[0].layer.is_local());
    }

    #[test]
    fn measurement_is_symmetric_enough() {
        let t = topo(Platform::Kunpeng920);
        let ab = measure_latency_ns(&t, 3, 60);
        let ba = measure_latency_ns(&t, 60, 3);
        assert!((ab - ba).abs() / ab < 0.25, "{ab} vs {ba}");
    }
}

//! Per-episode traces: phase timings *and* coherence-op counter deltas for
//! every measured barrier episode, the raw material behind the CLI `trace`
//! subcommand and the per-episode experiment tables.
//!
//! Timing comes from the centralized phase hooks (`Barrier::wait_traced`
//! brackets each measured episode with ENTER/EXIT; the champion paths emit
//! ARRIVED). Counters come from [`armbar_simcoh::SimThread::coherence_counters`]
//! snapshots taken by thread 0 at episode boundaries.
//!
//! ## Attribution caveat
//!
//! Counter snapshots are machine-wide totals taken at thread 0's virtual
//! time; threads still finishing an episode's tail (late tree wakeups) are
//! charged to the *next* episode's delta. Per-episode counter rows are
//! therefore attributions — exact in total across all measured episodes,
//! approximate per row. Phase timings are exact: they come from the marks.

use std::sync::{Arc, Mutex};

use armbar_core::env::{Barrier, MARK_ARRIVED, MARK_ENTER, MARK_EXIT};
use armbar_simcoh::{CoherenceCounters, SimBuilder, SimError};
use armbar_topology::Topology;

use crate::overhead::OverheadConfig;

/// One measured barrier episode: absolute phase timestamps (virtual ns)
/// plus the machine-wide coherence-counter delta attributed to it.
#[derive(Debug, Clone, Copy)]
pub struct EpisodeTrace {
    /// Measured-episode index, 1-based (warm-up episodes are not traced).
    pub episode: u32,
    /// Latest ENTER of the episode (the last thread to reach the barrier).
    pub enter_ns: f64,
    /// Champion's ARRIVED (end of the Arrival-Phase), when the algorithm's
    /// mark pattern is recognized; `None` otherwise (e.g. `p = 1`).
    pub arrived_ns: Option<f64>,
    /// Latest EXIT of the episode (the last thread released).
    pub exit_ns: f64,
    /// Coherence-op counter delta attributed to this episode.
    pub counters: CoherenceCounters,
}

impl EpisodeTrace {
    /// Arrival-Phase span: last ENTER → champion's ARRIVED.
    pub fn arrival_ns(&self) -> Option<f64> {
        self.arrived_ns.map(|a| (a - self.enter_ns).max(0.0))
    }

    /// Notification-Phase span: champion's ARRIVED → last EXIT.
    pub fn notification_ns(&self) -> Option<f64> {
        self.arrived_ns.map(|a| (self.exit_ns - a).max(0.0))
    }

    /// Whole-episode span: last ENTER → last EXIT.
    pub fn total_ns(&self) -> f64 {
        (self.exit_ns - self.enter_ns).max(0.0)
    }
}

/// Runs `cfg.warmup` untraced then `cfg.episodes` traced episodes of
/// `barrier` with `p` threads on the simulated `topo` and returns one
/// [`EpisodeTrace`] per measured episode.
pub fn trace_episodes(
    topo: &Arc<Topology>,
    p: usize,
    barrier: Arc<dyn Barrier>,
    cfg: OverheadConfig,
) -> Result<Vec<EpisodeTrace>, SimError> {
    assert!(cfg.episodes >= 1);
    let snapshots: Arc<Mutex<Vec<CoherenceCounters>>> =
        Arc::new(Mutex::new(Vec::with_capacity(cfg.episodes as usize + 1)));
    let snaps = Arc::clone(&snapshots);
    let stats = SimBuilder::new(Arc::clone(topo), p).seed(cfg.seed).run(move |ctx| {
        let snap = |_label: u32| {
            if ctx.tid() == 0 {
                snaps.lock().unwrap().push(ctx.coherence_counters());
            }
        };
        for _ in 0..cfg.warmup {
            ctx.compute_ns(cfg.delay_ns);
            barrier.wait(ctx);
        }
        snap(0); // baseline after warm-up
        for k in 0..cfg.episodes {
            ctx.compute_ns(cfg.delay_ns);
            barrier.wait_traced(ctx);
            snap(k + 1);
        }
    })?;

    // Group marks per thread in program order; thread k's i-th ENTER/EXIT
    // belongs to measured episode i (warm-up episodes are untraced).
    let episodes = cfg.episodes as usize;
    let mut enters: Vec<Vec<f64>> = vec![Vec::with_capacity(episodes); p];
    let mut exits: Vec<Vec<f64>> = vec![Vec::with_capacity(episodes); p];
    let mut arrivals_per_thread: Vec<Vec<f64>> = vec![Vec::new(); p];
    let mut arrivals_in_order: Vec<f64> = Vec::new();
    for m in stats.marks() {
        match m.label {
            MARK_ENTER => enters[m.tid].push(m.time_ns),
            MARK_EXIT => exits[m.tid].push(m.time_ns),
            MARK_ARRIVED => {
                arrivals_per_thread[m.tid].push(m.time_ns);
                arrivals_in_order.push(m.time_ns);
            }
            _ => {}
        }
    }
    for tid in 0..p {
        assert_eq!(enters[tid].len(), episodes, "thread {tid} missed ENTER marks");
        assert_eq!(exits[tid].len(), episodes, "thread {tid} missed EXIT marks");
    }

    // ARRIVED marks also fire during warm-up (they live inside the
    // algorithms), so the measured episodes are the trailing groups. Two
    // recognized patterns: one champion per episode, or one mark per thread
    // per episode (symmetric barriers like dissemination — take the max).
    let rounds = cfg.warmup as usize + episodes;
    let arrived_of = |k: usize| -> Option<f64> {
        if arrivals_in_order.len() == rounds {
            Some(arrivals_in_order[cfg.warmup as usize + k])
        } else if arrivals_per_thread.iter().all(|a| a.len() == rounds) {
            arrivals_per_thread
                .iter()
                .map(|a| a[cfg.warmup as usize + k])
                .fold(None, |acc, t| Some(acc.map_or(t, |m: f64| m.max(t))))
        } else {
            None
        }
    };

    let snapshots = snapshots.lock().unwrap();
    assert_eq!(snapshots.len(), episodes + 1, "missing counter snapshots");
    let traces = (0..episodes)
        .map(|k| EpisodeTrace {
            episode: k as u32 + 1,
            enter_ns: (0..p).map(|t| enters[t][k]).fold(f64::MIN, f64::max),
            arrived_ns: arrived_of(k),
            exit_ns: (0..p).map(|t| exits[t][k]).fold(f64::MIN, f64::max),
            counters: snapshots[k + 1].delta_since(&snapshots[k]),
        })
        .collect();
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_core::prelude::*;
    use armbar_simcoh::Arena;
    use armbar_topology::Platform;

    fn trace(platform: Platform, p: usize, id: AlgorithmId, episodes: u32) -> Vec<EpisodeTrace> {
        let topo = Arc::new(Topology::preset(platform));
        let mut arena = Arena::new();
        let barrier: Arc<dyn Barrier> = Arc::from(id.build(&mut arena, p, &topo));
        let cfg = OverheadConfig { episodes, ..OverheadConfig::default() };
        trace_episodes(&topo, p, barrier, cfg).unwrap()
    }

    #[test]
    fn every_episode_reports_phases_and_counters() {
        let traces = trace(Platform::ThunderX2, 32, AlgorithmId::Optimized, 6);
        assert_eq!(traces.len(), 6);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(t.episode as usize, i + 1);
            assert!(t.arrival_ns().unwrap() > 0.0, "{t:?}");
            assert!(t.notification_ns().unwrap() > 0.0, "{t:?}");
            assert!(t.total_ns() > 0.0);
            assert!(t.counters.total_mem_ops() > 0, "{t:?}");
            assert!(t.counters.spin_wakeups > 0, "{t:?}");
        }
        // Episodes are consecutive in virtual time.
        for w in traces.windows(2) {
            assert!(w[1].enter_ns > w[0].exit_ns);
        }
    }

    #[test]
    fn symmetric_barrier_arrival_uses_per_thread_marks() {
        let traces = trace(Platform::Phytium2000Plus, 16, AlgorithmId::Dissemination, 4);
        for t in &traces {
            assert!(t.arrived_ns.is_some(), "{t:?}");
        }
    }

    #[test]
    fn counter_deltas_sum_to_run_totals_order() {
        // The per-episode attribution must conserve the total op volume:
        // deltas over the measured region sum to (final − baseline) exactly.
        let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
        let mut arena = Arena::new();
        let barrier: Arc<dyn Barrier> = Arc::from(AlgorithmId::Stour.build(&mut arena, 24, &topo));
        let cfg = OverheadConfig { episodes: 5, ..OverheadConfig::default() };
        let traces = trace_episodes(&topo, 24, barrier, cfg).unwrap();
        let mut acc = CoherenceCounters::default();
        for t in &traces {
            acc.accumulate(&t.counters);
        }
        // Every measured episode runs the same barrier: op volume per
        // episode must be steady (identical memory-op counts).
        let ops0 = traces[0].counters.total_mem_ops();
        for t in &traces[1..] {
            let rel = (t.counters.total_mem_ops() as f64 - ops0 as f64).abs() / ops0 as f64;
            assert!(rel < 0.25, "unsteady op volume: {} vs {ops0}", t.counters.total_mem_ops());
        }
        assert_eq!(
            acc.total_mem_ops(),
            traces.iter().map(|t| t.counters.total_mem_ops()).sum::<u64>()
        );
    }

    #[test]
    fn single_thread_trace_has_no_phase_split() {
        let traces = trace(Platform::ThunderX2, 1, AlgorithmId::Optimized, 3);
        for t in &traces {
            assert!(t.arrived_ns.is_none());
            assert!(t.arrival_ns().is_none());
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let a = trace(Platform::Phytium2000Plus, 16, AlgorithmId::Optimized, 4);
        let b = trace(Platform::Phytium2000Plus, 16, AlgorithmId::Optimized, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.enter_ns, y.enter_ns);
            assert_eq!(x.exit_ns, y.exit_ns);
            assert_eq!(x.counters, y.counters);
        }
    }
}

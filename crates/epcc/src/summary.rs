//! Small-sample statistics for repeated measurements.

/// Mean / min / max / sample standard deviation of a set of measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarizes a non-empty slice of samples.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let std = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Self { mean, min, max, std, n }
    }

    /// Coefficient of variation (`std / mean`); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean
        }
    }
}

/// Geometric mean of positive values (used for Table IV's Geomean column).
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    assert!(values.iter().all(|&v| v > 0.0), "geomean needs positive values");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.n, 4);
        assert!((s.std - 1.2909944).abs() < 1e-6);
    }

    #[test]
    fn single_sample_has_zero_std() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn cv_is_relative_noise() {
        let tight = Summary::of(&[100.0, 101.0, 99.0]);
        let loose = Summary::of(&[100.0, 150.0, 50.0]);
        assert!(tight.cv() < 0.02);
        assert!(loose.cv() > 0.3);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        // Paper Table IV row "GCC": 8×, 23×, 11× → geomean ≈ 12.66.
        let g = geomean(&[8.0, 23.0, 11.0]);
        assert!((g - 12.66).abs() < 0.05, "geomean = {g}");
        // And the LLVM row: 2.7, 2.5, 9 → ≈ 3.93... the paper rounds to 4.7?
        // No: geomean(2.7, 2.5, 9) = (60.75)^(1/3) ≈ 3.93. The paper's 4.7
        // suggests their per-platform numbers were rounded for the table;
        // we only rely on the 12.6× row matching exactly.
        let g2 = geomean(&[2.7, 2.5, 9.0]);
        assert!((g2 - 3.93).abs() < 0.05, "geomean = {g2}");
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }
}

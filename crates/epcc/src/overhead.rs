//! EPCC-style barrier overhead measurement.
//!
//! The EPCC synchronization micro-benchmark measures the cost of a
//! construct as *(time of a work+construct loop − time of the work-only
//! reference loop) / iterations*. Here the "work" is a fixed spin
//! (`compute_ns`), so the reference time is known exactly and the barrier
//! overhead of one episode is
//!
//! ```text
//! overhead = (t_last_warm_end → t_end) / episodes − delay
//! ```
//!
//! measured on the simulator's virtual clock (or the host monotonic clock).
//!
//! Simulator rep loops ([`repeat_sim`] / [`repeat_sim_of`]) are hot: a
//! 1000-rep curve point used to spawn 1000×P OS threads. Each rep now
//! runs on its sweep worker's ambient `armbar_simcoh::SimTeam`, which
//! spawns the P simulated-thread workers once and reuses them across
//! episodes (no call-site changes here — `SimBuilder::run` routes through
//! the team; `ARMBAR_SIM_TEAM=0` restores spawn-per-episode).

use std::sync::Arc;

use armbar_core::env::{Barrier, MemCtx};
use armbar_core::host::HostMem;
use armbar_core::registry::AlgorithmId;
use armbar_simcoh::{Arena, SimBuilder, SimError};
use armbar_sweep::{Job, SweepPool};
use armbar_topology::Topology;

use crate::summary::Summary;

/// Mark labels used to bracket the measured region.
const MARK_WARM: u32 = 1;
const MARK_END: u32 = 2;

/// Seed stride between consecutive repetitions of one measurement: the
/// 32-bit golden-ratio constant. Every repeated-measurement path in the
/// workspace — registry algorithms ([`repeat_sim`]) and custom barrier
/// configurations ([`repeat_sim_of`]) alike — derives rep `r`'s seed as
/// `base + r * SEED_STRIDE`, so curves measured through different paths
/// are seed-matched point for point.
pub const SEED_STRIDE: u64 = 0x9E37_79B9;

/// Measurement parameters.
#[derive(Debug, Clone, Copy)]
pub struct OverheadConfig {
    /// Unmeasured warm-up episodes (cold misses, tree line placement).
    pub warmup: u32,
    /// Measured episodes.
    pub episodes: u32,
    /// Per-episode out-of-barrier work, ns.
    pub delay_ns: f64,
    /// Simulator jitter seed.
    pub seed: u64,
}

impl Default for OverheadConfig {
    fn default() -> Self {
        Self { warmup: 4, episodes: 40, delay_ns: 100.0, seed: 0x5EED }
    }
}

impl OverheadConfig {
    /// The configuration for repetition `r` of this measurement: same
    /// parameters, seed advanced by the shared [`SEED_STRIDE`] schedule.
    pub fn rep(self, r: u64) -> Self {
        Self { seed: self.seed.wrapping_add(r.wrapping_mul(SEED_STRIDE)), ..self }
    }
}

/// Measures the per-episode overhead (ns) of `algorithm` with `p` threads
/// on the simulated `topo`.
pub fn sim_overhead_ns(
    topo: &Arc<Topology>,
    p: usize,
    algorithm: AlgorithmId,
    cfg: OverheadConfig,
) -> Result<f64, SimError> {
    let mut arena = Arena::new();
    let barrier: Arc<dyn Barrier> = Arc::from(algorithm.build(&mut arena, p, topo));
    sim_overhead_of(topo, p, barrier, cfg)
}

/// Measures the per-episode overhead (ns) of an already-built barrier.
/// Useful for custom configurations (wake-up sweeps, fan-in sweeps).
pub fn sim_overhead_of(
    topo: &Arc<Topology>,
    p: usize,
    barrier: Arc<dyn Barrier>,
    cfg: OverheadConfig,
) -> Result<f64, SimError> {
    assert!(cfg.episodes >= 1);
    let stats = SimBuilder::new(Arc::clone(topo), p).seed(cfg.seed).run(move |ctx| {
        for _ in 0..cfg.warmup {
            ctx.compute_ns(cfg.delay_ns);
            barrier.wait(ctx);
        }
        ctx.mark(MARK_WARM);
        for _ in 0..cfg.episodes {
            ctx.compute_ns(cfg.delay_ns);
            barrier.wait(ctx);
        }
        ctx.mark(MARK_END);
    })?;
    let t0 = stats.last_mark_time(MARK_WARM).expect("warm mark missing");
    let t1 = stats.last_mark_time(MARK_END).expect("end mark missing");
    let per_episode = (t1 - t0) / cfg.episodes as f64;
    Ok((per_episode - cfg.delay_ns).max(0.0))
}

/// The paper's protocol: `reps` independently seeded runs, averaged
/// (the paper runs each benchmark 20 times and reports the mean).
/// Repetitions fan out over the ambient [`SweepPool`]; each one is an
/// independent simulation, so worker count cannot change the summary.
pub fn repeat_sim(
    topo: &Arc<Topology>,
    p: usize,
    algorithm: AlgorithmId,
    cfg: OverheadConfig,
    reps: u64,
) -> Result<Summary, SimError> {
    repeat_sim_on(&SweepPool::ambient(), topo, p, algorithm, cfg, reps)
}

/// [`repeat_sim`] on an explicit pool (tests pin the worker count).
pub fn repeat_sim_on(
    pool: &SweepPool,
    topo: &Arc<Topology>,
    p: usize,
    algorithm: AlgorithmId,
    cfg: OverheadConfig,
    reps: u64,
) -> Result<Summary, SimError> {
    repeat_sim_of_on(
        pool,
        topo,
        p,
        move |arena| Arc::from(algorithm.build(arena, p, topo)),
        cfg,
        reps,
    )
}

/// Repeated measurement of a *custom* barrier: `build` constructs a fresh
/// instance from a fresh arena for every repetition (so per-rep runs stay
/// independent), and the seed schedule is the same [`SEED_STRIDE`] walk
/// used by [`repeat_sim`] — the two paths are directly comparable.
pub fn repeat_sim_of(
    topo: &Arc<Topology>,
    p: usize,
    build: impl Fn(&mut Arena) -> Arc<dyn Barrier> + Sync,
    cfg: OverheadConfig,
    reps: u64,
) -> Result<Summary, SimError> {
    repeat_sim_of_on(&SweepPool::ambient(), topo, p, build, cfg, reps)
}

/// [`repeat_sim_of`] on an explicit pool.
pub fn repeat_sim_of_on(
    pool: &SweepPool,
    topo: &Arc<Topology>,
    p: usize,
    build: impl Fn(&mut Arena) -> Arc<dyn Barrier> + Sync,
    cfg: OverheadConfig,
    reps: u64,
) -> Result<Summary, SimError> {
    assert!(reps >= 1);
    let build = &build;
    let jobs: Vec<Job<'_, Result<f64, SimError>>> = (0..reps)
        .map(|r| {
            Job::parallel(move || {
                let mut arena = Arena::new();
                let barrier = build(&mut arena);
                sim_overhead_of(topo, p, barrier, cfg.rep(r))
            })
        })
        .collect();
    let samples: Vec<f64> = pool.run(jobs).into_iter().collect::<Result<_, _>>()?;
    Ok(Summary::of(&samples))
}

/// Host-backend overhead of `algorithm` with `p` real threads, in ns per
/// episode. Subject to real scheduler noise; intended for laptop-scale
/// sanity checks and the examples, not for reproducing the paper's
/// figures (that is the simulator's job).
///
/// Follows the same EPCC protocol as [`sim_overhead_of`]: each measured
/// episode is `work(delay_ns); barrier()`, and the cost of the work term
/// is removed by timing the work-only reference loop and subtracting it —
/// so host and simulator numbers answer the same question. Host-backend
/// measurements are wall-clock-sensitive and must never share the machine
/// with a busy sweep pool; callers embedding this in a sweep use
/// `armbar_sweep::Job::serial`.
pub fn host_overhead_ns(p: usize, algorithm: AlgorithmId, cfg: OverheadConfig) -> f64 {
    let topo = Topology::preset(armbar_topology::Platform::Phytium2000Plus);
    let mut arena = Arena::new();
    let barrier: Arc<dyn Barrier> = Arc::from(algorithm.build(&mut arena, p, &topo));
    let mem = HostMem::new(&arena);

    let start_gate = std::sync::Barrier::new(p);
    let mut overhead_ns = vec![0.0f64; p];

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|tid| {
                let mem = Arc::clone(&mem);
                let barrier = Arc::clone(&barrier);
                let gate = &start_gate;
                s.spawn(move || {
                    let ctx = mem.ctx(tid, p);
                    gate.wait();
                    for _ in 0..cfg.warmup {
                        ctx.compute_ns(cfg.delay_ns);
                        barrier.wait(&ctx);
                    }
                    let t0 = std::time::Instant::now();
                    for _ in 0..cfg.episodes {
                        ctx.compute_ns(cfg.delay_ns);
                        barrier.wait(&ctx);
                    }
                    let combined = t0.elapsed();
                    // EPCC reference loop: the same work without the
                    // construct under test.
                    let t1 = std::time::Instant::now();
                    for _ in 0..cfg.episodes {
                        ctx.compute_ns(cfg.delay_ns);
                    }
                    let reference = t1.elapsed();
                    combined.saturating_sub(reference).as_nanos() as f64 / cfg.episodes as f64
                })
            })
            .collect();
        for (tid, h) in handles.into_iter().enumerate() {
            overhead_ns[tid] = h.join().expect("worker panicked");
        }
    });

    overhead_ns.iter().copied().sum::<f64>() / p as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_topology::Platform;

    fn topo(p: Platform) -> Arc<Topology> {
        Arc::new(Topology::preset(p))
    }

    #[test]
    fn overhead_is_positive_and_grows_with_threads() {
        let t = topo(Platform::ThunderX2);
        let cfg = OverheadConfig::default();
        let o8 = sim_overhead_ns(&t, 8, AlgorithmId::Sense, cfg).unwrap();
        let o32 = sim_overhead_ns(&t, 32, AlgorithmId::Sense, cfg).unwrap();
        assert!(o8 > 0.0);
        assert!(o32 > o8, "SENSE must scale poorly: {o8} vs {o32}");
    }

    #[test]
    fn single_thread_overhead_is_tiny() {
        let t = topo(Platform::Phytium2000Plus);
        let o = sim_overhead_ns(&t, 1, AlgorithmId::Stour, OverheadConfig::default()).unwrap();
        assert!(o < 50.0, "P=1 should be near-free, got {o}");
    }

    #[test]
    fn overhead_is_independent_of_delay() {
        // The reference subtraction must cancel the work term.
        let t = topo(Platform::Kunpeng920);
        let base = OverheadConfig::default();
        let a = sim_overhead_ns(&t, 16, AlgorithmId::Tournament, base).unwrap();
        let b = sim_overhead_ns(
            &t,
            16,
            AlgorithmId::Tournament,
            OverheadConfig { delay_ns: 1000.0, ..base },
        )
        .unwrap();
        let rel = (a - b).abs() / a.max(b);
        assert!(rel < 0.35, "delay must mostly cancel: {a} vs {b}");
    }

    #[test]
    fn repeat_sim_summarizes() {
        let t = topo(Platform::Kunpeng920);
        let s = repeat_sim(&t, 16, AlgorithmId::Stour, OverheadConfig::default(), 5).unwrap();
        assert_eq!(s.n, 5);
        assert!(s.min <= s.mean && s.mean <= s.max);
        // Kunpeng 920 is configured jittery: expect visible spread.
        assert!(s.std > 0.0);
    }

    #[test]
    fn determinism_same_seed_same_overhead() {
        let t = topo(Platform::Phytium2000Plus);
        let cfg = OverheadConfig::default();
        let a = sim_overhead_ns(&t, 24, AlgorithmId::Mcs, cfg).unwrap();
        let b = sim_overhead_ns(&t, 24, AlgorithmId::Mcs, cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn host_overhead_runs_small() {
        let o = host_overhead_ns(
            2,
            AlgorithmId::Optimized,
            OverheadConfig { warmup: 2, episodes: 20, ..Default::default() },
        );
        assert!(o > 0.0);
    }

    #[test]
    fn host_overhead_runs_the_work_term_and_subtracts_it() {
        // p = 1 keeps the measurement clean even on a single-core runner
        // (no oversubscription): the compute delay must actually execute
        // (lower-bounds the wall time) and the reference subtraction must
        // cancel it (the reported overhead is the barrier cost alone, far
        // below one delay).
        let delay_ns = 500_000.0; // 0.5 ms dwarfs a 1-thread barrier
        let cfg = OverheadConfig { warmup: 2, episodes: 10, delay_ns, ..Default::default() };
        let t0 = std::time::Instant::now();
        let o = host_overhead_ns(1, AlgorithmId::Optimized, cfg);
        let elapsed = t0.elapsed();
        // warmup + measured + reference loops each run the delay.
        let work_floor = std::time::Duration::from_nanos(
            ((cfg.warmup + 2 * cfg.episodes) as f64 * delay_ns) as u64,
        );
        assert!(elapsed >= work_floor, "work term skipped: {elapsed:?} < {work_floor:?}");
        assert!(o >= 0.0);
        assert!(o < delay_ns, "work term leaked into the overhead: {o}");
    }

    #[test]
    fn rep_seed_schedule_uses_the_shared_stride() {
        let base = OverheadConfig::default();
        assert_eq!(base.rep(0).seed, base.seed);
        assert_eq!(base.rep(3).seed, base.seed.wrapping_add(3 * SEED_STRIDE));
        assert_eq!(base.rep(1).episodes, base.episodes);
    }

    #[test]
    fn repeat_sim_matches_repeat_sim_of_for_registry_barriers() {
        // The two repeated-measurement paths (registry id vs. custom
        // builder) must be seed-matched: same barrier, same summary.
        let t = topo(Platform::ThunderX2);
        let cfg = OverheadConfig { episodes: 10, ..Default::default() };
        let a = repeat_sim(&t, 16, AlgorithmId::Stour, cfg, 3).unwrap();
        let b = repeat_sim_of(
            &t,
            16,
            |arena| Arc::from(AlgorithmId::Stour.build(arena, 16, &t)),
            cfg,
            3,
        )
        .unwrap();
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
    }

    #[test]
    fn repeat_sim_is_independent_of_worker_count() {
        let t = topo(Platform::Kunpeng920);
        let cfg = OverheadConfig { episodes: 10, ..Default::default() };
        let serial =
            repeat_sim_on(&SweepPool::new(1), &t, 16, AlgorithmId::Optimized, cfg, 4).unwrap();
        let parallel =
            repeat_sim_on(&SweepPool::new(4), &t, 16, AlgorithmId::Optimized, cfg, 4).unwrap();
        assert_eq!(serial.mean, parallel.mean);
        assert_eq!(serial.std, parallel.std);
    }
}

//! Tree shapes used by arrival and notification phases.
//!
//! Pure index arithmetic, independent of any backend: binary wake-up trees,
//! the paper's NUMA-aware wake-up tree (Section V-C, Eq. 5), and the
//! balanced fan-in schedule of the static/dynamic f-way tournament
//! (Section II-B).

/// Children of node `n` in the classic binary wake-up tree over `p` nodes:
/// `2n+1` and `2n+2` where in range.
pub fn binary_children(n: usize, p: usize) -> Vec<usize> {
    let mut c = Vec::with_capacity(2);
    for k in [2 * n + 1, 2 * n + 2] {
        if k < p {
            c.push(k);
        }
    }
    c
}

/// Children of node `n` in the NUMA-aware wake-up tree over `p` nodes with
/// logical cluster size `n_c` (Eq. 5 of the paper).
///
/// Nodes are split into *masters* (the first thread of each cluster, i.e.
/// `n % n_c == 0`) and *slaves*. Masters form a binary tree **across
/// clusters** (master of cluster `k` wakes the masters of clusters `2k+1`
/// and `2k+2`) and additionally start their cluster's **local** binary tree
/// (waking local slaves 1 and 2); slaves continue the local binary tree.
/// A master therefore has up to four children — two remote masters, two
/// local slaves — and every cross-cluster edge of the whole tree is a
/// master→master edge, minimizing remote (`L_i`, `i > 0`) accesses while
/// keeping the level count of the binary tree.
///
/// When `p ≤ n_c` there is a single cluster and the tree degenerates to the
/// plain binary tree, matching the paper's observation that the two wake-up
/// schemes coincide for small thread counts.
pub fn numa_children(n: usize, p: usize, n_c: usize) -> Vec<usize> {
    assert!(n_c >= 1);
    let clusters = p.div_ceil(n_c);
    let mut out = Vec::with_capacity(4);
    if n.is_multiple_of(n_c) {
        // Master: wake the masters of clusters 2k+1 and 2k+2 …
        let k = n / n_c;
        for kc in [2 * k + 1, 2 * k + 2] {
            if kc < clusters {
                let m = kc * n_c;
                if m < p {
                    out.push(m);
                }
            }
        }
    }
    // … and everyone continues the local binary tree within the cluster.
    let base = (n / n_c) * n_c;
    let local = n - base;
    let local_size = n_c.min(p - base);
    for lc in [2 * local + 1, 2 * local + 2] {
        if lc < local_size {
            out.push(base + lc);
        }
    }
    out
}

/// A wake-up tree materialized as per-node child lists plus a root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WakeTree {
    /// `children[n]` lists the nodes `n` wakes, in wake order.
    pub children: Vec<Vec<usize>>,
}

impl WakeTree {
    /// Binary tree over `p` nodes rooted at 0.
    pub fn binary(p: usize) -> Self {
        Self { children: (0..p).map(|n| binary_children(n, p)).collect() }
    }

    /// NUMA-aware tree over `p` nodes with cluster size `n_c`, rooted at 0.
    pub fn numa(p: usize, n_c: usize) -> Self {
        Self { children: (0..p).map(|n| numa_children(n, p, n_c)).collect() }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Depth of the tree (number of edges on the longest root→leaf path).
    pub fn depth(&self) -> usize {
        fn rec(t: &WakeTree, n: usize) -> usize {
            t.children[n].iter().map(|&c| 1 + rec(t, c)).max().unwrap_or(0)
        }
        if self.children.is_empty() {
            0
        } else {
            rec(self, 0)
        }
    }

    /// Number of edges whose endpoints lie in different clusters of size
    /// `n_c` — the "remote accesses with `L_i` (i > 0)" the paper's Figure
    /// 10 counts.
    pub fn cross_cluster_edges(&self, n_c: usize) -> usize {
        self.children
            .iter()
            .enumerate()
            .flat_map(|(n, cs)| cs.iter().map(move |&c| (n, c)))
            .filter(|&(a, b)| a / n_c != b / n_c)
            .count()
    }

    /// Verifies the tree is a spanning tree rooted at 0: every node except
    /// the root has exactly one parent and is reachable from the root.
    /// Returns an error description on violation (used by tests).
    pub fn check_spanning(&self) -> Result<(), String> {
        let p = self.children.len();
        let mut parent_count = vec![0usize; p];
        for (n, cs) in self.children.iter().enumerate() {
            for &c in cs {
                if c >= p {
                    return Err(format!("node {n} has out-of-range child {c}"));
                }
                if c == n {
                    return Err(format!("node {n} is its own child"));
                }
                parent_count[c] += 1;
            }
        }
        if p > 0 && parent_count[0] != 0 {
            return Err("root has a parent".into());
        }
        for (n, &k) in parent_count.iter().enumerate().skip(1) {
            if k != 1 {
                return Err(format!("node {n} has {k} parents, expected 1"));
            }
        }
        // Reachability.
        let mut seen = vec![false; p];
        let mut stack = vec![0usize];
        let mut visited = 0;
        while let Some(n) = stack.pop() {
            if seen[n] {
                return Err(format!("cycle through node {n}"));
            }
            seen[n] = true;
            visited += 1;
            stack.extend(self.children[n].iter().copied());
        }
        if visited != p {
            return Err(format!("only {visited} of {p} nodes reachable from root"));
        }
        Ok(())
    }
}

/// Fan-in schedule of an f-way tournament: the group size used at each
/// round, bottom-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaninPlan {
    /// Group size per round; `rounds().len()` is the tree height.
    fanins: Vec<usize>,
}

impl FaninPlan {
    /// The *balanced* schedule of the original static f-way tournament
    /// (Grunwald & Vajracharya): pick the smallest number of rounds
    /// achievable with groups of at most `max_fanin` (8 in the original,
    /// whose packed 32-bit flags allow fan-ins of 2..8), then size each
    /// round as evenly as possible (`f_l ≈ m^(1/levels_left)`).
    pub fn balanced(p: usize, max_fanin: usize) -> Self {
        assert!(p >= 1);
        assert!(max_fanin >= 2);
        if p == 1 {
            return Self { fanins: Vec::new() };
        }
        let mut rounds = 1usize;
        while pow_at_least(max_fanin, rounds) < p {
            rounds += 1;
        }
        let mut fanins = Vec::with_capacity(rounds);
        let mut m = p;
        for l in 0..rounds {
            let left = rounds - l;
            let f = int_root_ceil(m, left).clamp(2, max_fanin);
            fanins.push(f);
            m = m.div_ceil(f);
        }
        debug_assert_eq!(m, 1, "balanced plan must reduce to one champion");
        Self { fanins }
    }

    /// A fixed fan-in schedule: every round uses groups of exactly `f`
    /// (the paper's optimization recommends `f = 4`).
    pub fn fixed(p: usize, f: usize) -> Self {
        assert!(p >= 1);
        assert!(f >= 2);
        let mut fanins = Vec::new();
        let mut m = p;
        while m > 1 {
            fanins.push(f);
            m = m.div_ceil(f);
        }
        Self { fanins }
    }

    /// Group sizes per round, bottom-up.
    pub fn rounds(&self) -> &[usize] {
        &self.fanins
    }

    /// Number of contestants entering round `l` for an initial field of
    /// `p`: `p` reduced by the preceding fan-ins.
    pub fn contestants(&self, p: usize, l: usize) -> usize {
        let mut m = p;
        for &f in &self.fanins[..l] {
            m = m.div_ceil(f);
        }
        m
    }
}

/// `f^rounds`, saturating, for plan sizing.
fn pow_at_least(f: usize, rounds: usize) -> usize {
    let mut x = 1usize;
    for _ in 0..rounds {
        x = x.saturating_mul(f);
    }
    x
}

/// Smallest `f` with `f^k ≥ m` (integer `k`-th root, rounded up).
fn int_root_ceil(m: usize, k: usize) -> usize {
    if m <= 1 {
        return 1;
    }
    let mut f = 1usize;
    while pow_at_least(f, k) < m {
        f += 1;
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_tree_is_spanning_for_all_sizes() {
        for p in 1..=130 {
            WakeTree::binary(p).check_spanning().unwrap();
        }
    }

    #[test]
    fn numa_tree_is_spanning_for_many_shapes() {
        for n_c in [1, 2, 4, 8, 16, 32] {
            for p in 1..=96 {
                let t = WakeTree::numa(p, n_c);
                t.check_spanning().unwrap_or_else(|e| panic!("p={p} n_c={n_c}: {e}"));
            }
        }
    }

    #[test]
    fn numa_tree_degenerates_to_binary_within_one_cluster() {
        // When p ≤ n_c the NUMA tree *is* the binary tree (paper: the two
        // wake-up methods coincide for small thread counts).
        for p in 1..=32 {
            assert_eq!(WakeTree::numa(p, 32).children, WakeTree::binary(p).children, "p={p}");
        }
    }

    #[test]
    fn numa_tree_minimizes_cross_cluster_edges_on_thunderx2_shape() {
        // ThunderX2: 64 threads, two 32-core sockets. The paper's Figure 10:
        // the binary tree sends ~half its edges across the socket link; the
        // NUMA-aware tree sends exactly one (master 0 → master 32).
        let bin = WakeTree::binary(64);
        let numa = WakeTree::numa(64, 32);
        assert!(bin.cross_cluster_edges(32) >= 16);
        assert_eq!(numa.cross_cluster_edges(32), 1);
    }

    #[test]
    fn numa_tree_cross_edges_equal_clusters_minus_one() {
        // Every cluster's master is woken by exactly one cross edge.
        for (p, n_c) in [(64, 4), (64, 8), (48, 4), (40, 8), (64, 32)] {
            let t = WakeTree::numa(p, n_c);
            let clusters = p.div_ceil(n_c);
            assert_eq!(t.cross_cluster_edges(n_c), clusters - 1, "p={p} n_c={n_c}");
        }
    }

    #[test]
    fn numa_master_has_at_most_four_children() {
        let t = WakeTree::numa(64, 4);
        for (n, cs) in t.children.iter().enumerate() {
            let bound = if n % 4 == 0 { 4 } else { 2 };
            assert!(cs.len() <= bound, "node {n} has {} children", cs.len());
        }
    }

    #[test]
    fn numa_depth_stays_close_to_binary_depth() {
        // The paper keeps "the number of levels of the tree unchanged".
        for (p, n_c) in [(64, 32), (64, 4), (64, 8)] {
            let bin = WakeTree::binary(p).depth();
            let numa = WakeTree::numa(p, n_c).depth();
            assert!(numa <= bin + 1, "p={p} n_c={n_c}: numa depth {numa} vs binary {bin}");
        }
    }

    #[test]
    fn binary_depth_is_logarithmic() {
        assert_eq!(WakeTree::binary(1).depth(), 0);
        assert_eq!(WakeTree::binary(3).depth(), 1);
        assert_eq!(WakeTree::binary(7).depth(), 2);
        // 64 nodes: the deepest chain is 0→1→3→7→15→31→63.
        assert_eq!(WakeTree::binary(64).depth(), 6);
    }

    #[test]
    fn balanced_plan_matches_paper_examples() {
        // Paper Figure 9(a): 9 threads balanced → fan-in 3, two rounds.
        assert_eq!(FaninPlan::balanced(9, 8).rounds(), &[3, 3]);
        // 64 threads with max fan-in 8 → two rounds of 8.
        assert_eq!(FaninPlan::balanced(64, 8).rounds(), &[8, 8]);
        // 20 threads → 5 then 4 (Figure 4 uses 20 threads).
        assert_eq!(FaninPlan::balanced(20, 8).rounds(), &[5, 4]);
    }

    #[test]
    fn balanced_plan_reduces_to_champion() {
        for p in 1..=130 {
            let plan = FaninPlan::balanced(p, 8);
            assert_eq!(plan.contestants(p, plan.rounds().len()), 1, "p={p}");
        }
    }

    #[test]
    fn fixed_plan_reduces_to_champion() {
        for f in [2, 4, 8, 16] {
            for p in 1..=130 {
                let plan = FaninPlan::fixed(p, f);
                assert_eq!(plan.contestants(p, plan.rounds().len()), 1, "p={p} f={f}");
            }
        }
    }

    #[test]
    fn fixed_plan_round_count_is_log_f() {
        assert_eq!(FaninPlan::fixed(64, 4).rounds().len(), 3);
        assert_eq!(FaninPlan::fixed(64, 2).rounds().len(), 6);
        assert_eq!(FaninPlan::fixed(64, 8).rounds().len(), 2);
        assert_eq!(FaninPlan::fixed(64, 64).rounds().len(), 1);
        assert_eq!(FaninPlan::fixed(1, 4).rounds().len(), 0);
    }

    #[test]
    fn contestants_shrink_monotonically() {
        let plan = FaninPlan::balanced(100, 8);
        let mut prev = 100;
        for l in 1..=plan.rounds().len() {
            let c = plan.contestants(100, l);
            assert!(c < prev);
            prev = c;
        }
    }
}

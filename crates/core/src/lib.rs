//! # armbar-core — barrier synchronization algorithms
//!
//! The algorithm library of the workspace: the seven barriers evaluated by
//! *"Optimizing Barrier Synchronization on ARMv8 Many-Core Architectures"*
//! (CLUSTER 2021), the LLVM OpenMP reference barrier, and the paper's
//! optimized f-way tournament barrier with padded arrival flags, fixed
//! fan-in 4, and platform-selected wake-up (global / binary tree /
//! NUMA-aware tree).
//!
//! Every algorithm is written once against the [`MemCtx`] trait and runs on
//! two backends:
//!
//! * [`host::HostMem`] — real atomics for real threads (a usable barrier
//!   library);
//! * `armbar_simcoh::SimThread` — the modeled ARMv8 machines, where each
//!   operation is charged its cache-coherence cost.
//!
//! ## Quick start (host backend)
//!
//! ```
//! use std::sync::Arc;
//! use armbar_core::prelude::*;
//! use armbar_simcoh::Arena;
//! use armbar_topology::{Platform, Topology};
//!
//! let threads = 4;
//! let topo = Topology::preset(Platform::Phytium2000Plus);
//! let mut arena = Arena::new();
//! let barrier: Arc<dyn Barrier> = Arc::from(
//!     AlgorithmId::Optimized.build(&mut arena, threads, &topo));
//! let mem = HostMem::new(&arena);
//!
//! std::thread::scope(|s| {
//!     for tid in 0..threads {
//!         let barrier = Arc::clone(&barrier);
//!         let mem = Arc::clone(&mem);
//!         s.spawn(move || {
//!             let ctx = mem.ctx(tid, threads);
//!             for _phase in 0..10 {
//!                 // ... do work ...
//!                 barrier.wait(&ctx);
//!             }
//!         });
//!     }
//! });
//! ```

pub mod algorithms;
pub mod env;
pub mod host;
pub mod oracle;
pub mod phaser;
pub mod registry;
pub mod robust;
pub mod trees;
pub mod wakeup;

pub use algorithms::{
    CombiningTreeBarrier, DisseminationBarrier, FwayBarrier, FwayConfig, HybridBarrier,
    HyperBarrier, McsBarrier, SenseBarrier, TournamentBarrier,
};
pub use env::{Barrier, MemCtx};
pub use host::{HostCtx, HostMem, SpinPolicy};
pub use oracle::EpisodeOracle;
pub use phaser::{CentralPhaser, Phaser, TreePhaser};
pub use registry::AlgorithmId;
pub use robust::{BarrierError, PoisonGuard, RobustBarrier, RobustConfig, RobustPhaser};
pub use wakeup::{Wakeup, WakeupKind};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::algorithms::fway::{Fanin, FwayBarrier, FwayConfig};
    pub use crate::env::{Barrier, MemCtx};
    pub use crate::host::{HostCtx, HostMem, SpinPolicy};
    pub use crate::oracle::EpisodeOracle;
    pub use crate::phaser::{CentralPhaser, Phaser, TreePhaser};
    pub use crate::registry::AlgorithmId;
    pub use crate::robust::{BarrierError, RobustBarrier, RobustConfig, RobustPhaser};
    pub use crate::wakeup::WakeupKind;
}

#[cfg(test)]
mod proptests;

//! Name-indexed construction of every barrier in the workspace — the
//! experiment pipelines and examples select algorithms through this.

use armbar_simcoh::Arena;
use armbar_topology::Topology;

use crate::algorithms::{
    CombiningTreeBarrier, DisseminationBarrier, FwayBarrier, HybridBarrier, HyperBarrier,
    McsBarrier, NwayDisseminationBarrier, RingBarrier, SenseBarrier, ShyCtrBarrier,
    ShyProxyBarrier, TournamentBarrier,
};
use crate::env::Barrier;
use crate::phaser::{CentralPhaser, TreePhaser};

/// Every barrier configuration referenced by the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmId {
    /// Sense-reversing centralized (Figure 7a) = GCC libgomp's barrier.
    Sense,
    /// Dissemination barrier.
    Dissemination,
    /// Software combining tree, fan-in 2.
    Combining,
    /// MCS P-node tree.
    Mcs,
    /// Pairwise tournament.
    Tournament,
    /// Static f-way tournament (original: balanced fan-in, packed flags).
    Stour,
    /// Dynamic f-way tournament.
    Dtour,
    /// LLVM libomp's hypercube-embedded tree barrier.
    LlvmHyper,
    /// STOUR with cache-line-padded flags (Figure 11 "padding static f-way").
    StourPadded,
    /// Padded flags + fixed fan-in 4 (Figure 11 "padding static 4-way").
    Padded4Way,
    /// The paper's full optimized barrier (Table IV "ours").
    Optimized,
    /// Extension: cluster-hierarchical hybrid (counters within clusters,
    /// tournament across) — the Rodchenko-style design of the related work.
    Hybrid,
    /// Cited (ref [4]): Hoefler n-way dissemination, n = 2.
    NwayDissemination,
    /// Cited (ref [7]): Aravind two-pass ring barrier.
    Ring,
    /// Dynamic-membership centralized counter phaser (PR 7). Built here at
    /// fixed full membership; not part of [`AlgorithmId::ALL`] so the
    /// fixed-P sweeps and golden fixtures stay at the paper's 14.
    PhaserCentral,
    /// Dynamic-membership 4-ary reparenting tree phaser (PR 7).
    PhaserTree,
    /// Contender (PR 10): rust_shyper's spinlock-guarded counter barrier
    /// with the `round_up` reuse-safe exit. Not in [`AlgorithmId::ALL`]
    /// (see [`AlgorithmId::CONTENDERS`]) so pre-split golden fixtures
    /// keep the paper's 14.
    ShyCtr,
    /// Contender (PR 10): SHY-CTR plus the `add_barrier_count`
    /// proxy-arrival path for offline cores, SWP test-and-set lock.
    ShyProxy,
}

impl AlgorithmId {
    /// The seven algorithms of the paper's Section IV evaluation, in the
    /// paper's order.
    pub const SEVEN: [AlgorithmId; 7] = [
        AlgorithmId::Sense,
        AlgorithmId::Dissemination,
        AlgorithmId::Combining,
        AlgorithmId::Mcs,
        AlgorithmId::Tournament,
        AlgorithmId::Stour,
        AlgorithmId::Dtour,
    ];

    /// Everything buildable, for exhaustive sweeps.
    pub const ALL: [AlgorithmId; 14] = [
        AlgorithmId::Sense,
        AlgorithmId::Dissemination,
        AlgorithmId::Combining,
        AlgorithmId::Mcs,
        AlgorithmId::Tournament,
        AlgorithmId::Stour,
        AlgorithmId::Dtour,
        AlgorithmId::LlvmHyper,
        AlgorithmId::StourPadded,
        AlgorithmId::Padded4Way,
        AlgorithmId::Optimized,
        AlgorithmId::Hybrid,
        AlgorithmId::NwayDissemination,
        AlgorithmId::Ring,
    ];

    /// The paper's figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            AlgorithmId::Sense => "SENSE",
            AlgorithmId::Dissemination => "DIS",
            AlgorithmId::Combining => "CMB",
            AlgorithmId::Mcs => "MCS",
            AlgorithmId::Tournament => "TOUR",
            AlgorithmId::Stour => "STOUR",
            AlgorithmId::Dtour => "DTOUR",
            AlgorithmId::LlvmHyper => "LLVM",
            AlgorithmId::StourPadded => "STOUR-pad",
            AlgorithmId::Padded4Way => "OPT-4way",
            AlgorithmId::Optimized => "OPT",
            AlgorithmId::Hybrid => "HYBRID",
            AlgorithmId::NwayDissemination => "NDIS",
            AlgorithmId::Ring => "RING",
            AlgorithmId::PhaserCentral => "PH-CTR",
            AlgorithmId::PhaserTree => "PH-TREE",
            AlgorithmId::ShyCtr => "SHY-CTR",
            AlgorithmId::ShyProxy => "SHY-PROXY",
        }
    }

    /// Builds the barrier for `p` threads on `topo`, allocating its state
    /// from `arena`.
    pub fn build(self, arena: &mut Arena, p: usize, topo: &Topology) -> Box<dyn Barrier> {
        match self {
            AlgorithmId::Sense => Box::new(SenseBarrier::gcc_style(arena, p, topo)),
            AlgorithmId::Dissemination => Box::new(DisseminationBarrier::new(arena, p, topo)),
            AlgorithmId::Combining => Box::new(CombiningTreeBarrier::new(arena, p, topo, 2)),
            AlgorithmId::Mcs => Box::new(McsBarrier::new(arena, p, topo)),
            AlgorithmId::Tournament => Box::new(TournamentBarrier::new(arena, p, topo)),
            AlgorithmId::Stour => Box::new(FwayBarrier::stour(arena, p, topo)),
            AlgorithmId::Dtour => Box::new(FwayBarrier::dtour(arena, p, topo)),
            AlgorithmId::LlvmHyper => Box::new(HyperBarrier::new(arena, p, topo)),
            AlgorithmId::StourPadded => Box::new(FwayBarrier::stour_padded(arena, p, topo)),
            AlgorithmId::Padded4Way => Box::new(FwayBarrier::padded_4way(arena, p, topo)),
            AlgorithmId::Optimized => Box::new(FwayBarrier::optimized(arena, p, topo)),
            AlgorithmId::Hybrid => Box::new(HybridBarrier::new(arena, p, topo)),
            AlgorithmId::NwayDissemination => {
                Box::new(NwayDisseminationBarrier::new(arena, p, topo, 2))
            }
            AlgorithmId::Ring => Box::new(RingBarrier::new(arena, p, topo)),
            AlgorithmId::PhaserCentral => Box::new(CentralPhaser::full(arena, p, topo)),
            AlgorithmId::PhaserTree => Box::new(TreePhaser::full(arena, p, topo)),
            AlgorithmId::ShyCtr => Box::new(ShyCtrBarrier::new(arena, p, topo)),
            AlgorithmId::ShyProxy => Box::new(ShyProxyBarrier::new(arena, p, topo)),
        }
    }

    /// The two dynamic-membership phasers (PR 7), kept out of
    /// [`AlgorithmId::ALL`] so the fixed-P experiment grids and golden
    /// fixtures are unchanged; the churn pipelines iterate this instead.
    pub const PHASERS: [AlgorithmId; 2] = [AlgorithmId::PhaserCentral, AlgorithmId::PhaserTree];

    /// The shyper contender barriers (PR 10), kept out of
    /// [`AlgorithmId::ALL`] for the same reason as [`AlgorithmId::PHASERS`]
    /// — the pre-split fixed-P grids and golden fixtures stay at the
    /// paper's 14. The sweep/conform/chaos CLI paths and the `crossover`
    /// family append this set.
    pub const CONTENDERS: [AlgorithmId; 2] = [AlgorithmId::ShyCtr, AlgorithmId::ShyProxy];

    /// Parses a figure-legend label (case-insensitive) or a long-form
    /// alias (`optimized`, `dissemination`, …), for CLI use.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.to_ascii_lowercase();
        if let Some(id) = Self::ALL
            .into_iter()
            .chain(Self::PHASERS)
            .chain(Self::CONTENDERS)
            .find(|a| a.label().to_ascii_lowercase() == s)
        {
            return Some(id);
        }
        Some(match s.as_str() {
            "centralized" | "gcc" => AlgorithmId::Sense,
            "dissemination" => AlgorithmId::Dissemination,
            "combining" | "combining-tree" => AlgorithmId::Combining,
            "tournament" => AlgorithmId::Tournament,
            "static-fway" => AlgorithmId::Stour,
            "dynamic-fway" => AlgorithmId::Dtour,
            "hypercube" | "libomp" => AlgorithmId::LlvmHyper,
            "padded-stour" => AlgorithmId::StourPadded,
            "padded-4way" | "4way" => AlgorithmId::Padded4Way,
            "optimized" | "ours" => AlgorithmId::Optimized,
            "nway-dissemination" | "nway" => AlgorithmId::NwayDissemination,
            "phaser-central" | "phctr" => AlgorithmId::PhaserCentral,
            "phaser-tree" | "phtree" => AlgorithmId::PhaserTree,
            "shyper" | "shyctr" | "shy" => AlgorithmId::ShyCtr,
            "shyproxy" | "shy-prox" | "add-barrier-count" => AlgorithmId::ShyProxy,
            _ => return None,
        })
    }
}

impl std::fmt::Display for AlgorithmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::check_sim;
    use armbar_topology::Platform;

    #[test]
    fn every_algorithm_builds_and_runs() {
        for id in
            AlgorithmId::ALL.into_iter().chain(AlgorithmId::PHASERS).chain(AlgorithmId::CONTENDERS)
        {
            check_sim(Platform::ThunderX2, 16, 2, move |a, p, t| id.build(a, p, t));
        }
    }

    #[test]
    fn phaser_labels_round_trip_and_stay_out_of_all() {
        for id in AlgorithmId::PHASERS {
            assert_eq!(AlgorithmId::parse(id.label()), Some(id));
            assert!(!AlgorithmId::ALL.contains(&id), "{id:?} must not join the fixed-P grid");
        }
        assert_eq!(AlgorithmId::parse("phaser-tree"), Some(AlgorithmId::PhaserTree));
        assert_eq!(AlgorithmId::parse("phctr"), Some(AlgorithmId::PhaserCentral));
    }

    #[test]
    fn contender_labels_round_trip_and_stay_out_of_all() {
        for id in AlgorithmId::CONTENDERS {
            assert_eq!(AlgorithmId::parse(id.label()), Some(id));
            assert!(!AlgorithmId::ALL.contains(&id), "{id:?} must not join the fixed-P grid");
            // Built names match the registry labels.
            let topo = Topology::preset(Platform::ThunderX2);
            let mut arena = Arena::new();
            assert_eq!(id.build(&mut arena, 8, &topo).name(), id.label());
        }
        assert_eq!(AlgorithmId::parse("shyper"), Some(AlgorithmId::ShyCtr));
        assert_eq!(AlgorithmId::parse("shy-proxy"), Some(AlgorithmId::ShyProxy));
        assert_eq!(AlgorithmId::parse("add-barrier-count"), Some(AlgorithmId::ShyProxy));
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for id in AlgorithmId::ALL {
            assert_eq!(AlgorithmId::parse(id.label()), Some(id));
            assert_eq!(AlgorithmId::parse(&id.label().to_uppercase()), Some(id));
        }
        assert_eq!(AlgorithmId::parse("nonsense"), None);
    }

    #[test]
    fn long_form_aliases_parse() {
        assert_eq!(AlgorithmId::parse("optimized"), Some(AlgorithmId::Optimized));
        assert_eq!(AlgorithmId::parse("Dissemination"), Some(AlgorithmId::Dissemination));
        assert_eq!(AlgorithmId::parse("gcc"), Some(AlgorithmId::Sense));
        assert_eq!(AlgorithmId::parse("tournament"), Some(AlgorithmId::Tournament));
    }

    #[test]
    fn seven_is_a_subset_of_all() {
        for id in AlgorithmId::SEVEN {
            assert!(AlgorithmId::ALL.contains(&id));
        }
    }

    #[test]
    fn built_names_match_labels_for_core_seven() {
        let topo = Topology::preset(Platform::ThunderX2);
        for id in AlgorithmId::SEVEN {
            let mut arena = Arena::new();
            let b = id.build(&mut arena, 8, &topo);
            assert_eq!(b.name(), id.label(), "{id:?}");
        }
    }
}

//! Phaser-style barriers with **dynamic membership** (ROADMAP item 2).
//!
//! A [`Phaser`] is a barrier whose team can change while it runs:
//! participants `register` to join, `deregister` to leave, and a crashed
//! member can be *evicted* by a survivor that proxy-arrives on its behalf
//! (the shyper hypervisor's `add_barrier_count` idiom — see SNIPPETS.md and
//! [`crate::robust::RobustPhaser`]). A victim that turns out to be merely
//! slow may race its own arrival against the proxy; a CAS on the slot's
//! `last_arrived` ledger arbitrates, so exactly one of the two is ever
//! counted (see `Slots::claim_arrival`). Membership changes never tear a
//! running episode: they are *requested* mid-epoch and **commit only at the
//! epoch boundary**, applied by the champion (the last arriver) before it
//! publishes the release. Within one epoch the member set is therefore
//! immutable — every arrival-counting and tree-shape decision an algorithm
//! makes is against a stable set — which is what makes the protocol safe
//! without locks (the same reason `java.util.concurrent.Phaser` defers
//! de/registration effects to phase boundaries).
//!
//! Two implementations, mirroring the paper's centralized-vs-tree split:
//!
//! * [`CentralPhaser`] — a counter phaser: `arrive` is one `fetch_add`;
//!   the champion commits the boundary. O(1) per arrival, O(capacity)
//!   boundary scan paid by the champion only; hot-spots like SENSE.
//! * [`TreePhaser`] — a 4-ary arrival tree over the *current* members. The
//!   champion recomputes the dense rank table at every boundary, so the
//!   tree **reparents** itself around joins/leaves/evictions; each epoch
//!   runs on a well-shaped tree of exactly the committed members.
//!
//! ## Word layout (all state in the shared arena, zero-initialized)
//!
//! * `membership` — `(epoch << 12) | count`, the epoch-stamped membership
//!   word. The all-zero word decodes as "epoch 1, the initial members"
//!   so a freshly materialized arena is a valid phaser. Capacity is capped
//!   at 4095 members (the count field) and ~2^20 epochs (the epoch field;
//!   the word is 32 bits — long-running hosts should rebuild the phaser
//!   before the epoch field wraps).
//! * `release` — monotonic completion clock: `release >= e` iff epoch `e`
//!   committed. Waiters spin here; re-entrant fast members can lap slow
//!   ones safely because the comparison is `>=`, never `==`.
//! * per-slot padded words: request `state`, `join_epoch` ack,
//!   `last_arrived` ledger, `evicted_at` one-shot report, `evict_claim`
//!   ticket. "Slot" is the thread id; a slot can leave and rejoin.
//!
//! ## Boundary commit order
//!
//! The champion (1) applies the requested state transitions, (2) rebuilds
//! per-epoch tables (tree ranks / the central arrival counter), (3) stores
//! the new `membership` word, (4) acks joiners via `join_epoch`, and (5)
//! stores `release` **last**. Because every store is Release and every load
//! Acquire, a thread that observes the release (or its join ack) also
//! observes the fully committed membership it is about to run under.

use armbar_simcoh::{arena::padded_elem, Addr, Arena};
use armbar_topology::Topology;

use crate::env::{Barrier, MemCtx};
use crate::robust::BarrierError;

/// Slot-state machine. Requests (`JoinReq`/`LeaveReq`/`EvictReq`) are
/// stored mid-epoch by anyone; transitions commit only at the boundary.
/// The raw zero word means "never touched": initial members decode as
/// `Active`, everyone else as `Out`.
const OUT: u32 = 0;
const JOIN_REQ: u32 = 1;
const ACTIVE: u32 = 2;
const LEAVE_REQ: u32 = 3;
const EVICT_REQ: u32 = 4;
const EVICTED: u32 = 5;
/// Explicit post-leave state (distinct from the raw zero so an initial
/// member that left does not decode back to `Active`).
const LEFT: u32 = 6;

/// Bit position of the epoch field in an epoch-stamped word: the low 12
/// bits carry a count (members or arrivals), the high 20 bits the epoch.
/// Public because `armbar-serve` reuses the same `(epoch << 12) | count`
/// encoding for its per-team batched-arrival word.
pub const EPOCH_SHIFT: u32 = 12;
/// Mask of the count field of an epoch-stamped word (also the count
/// ceiling: at most 4095 members).
pub const COUNT_MASK: u32 = (1 << EPOCH_SHIFT) - 1;

/// Base of the phaser event mark labels (distinct from the `0xB00x` phase
/// marks): `0xC000_0000 | kind << 24 | slot << 12 | epoch`. The slot field
/// is meaningful for [`PH_EVICTED`] (the *evictor* emits it on the victim's
/// behalf); for the self-reported kinds the mark's own `tid` is the slot.
pub const MARK_PHASER: u32 = 0xC000_0000;
/// Event kind: this slot became a member from the encoded epoch on.
pub const PH_JOINED: u32 = 1;
/// Event kind: this slot arrived *and observed the release* of the epoch.
pub const PH_COMPLETED: u32 = 2;
/// Event kind: this slot's final arrival — member through the epoch, gone
/// after its boundary.
pub const PH_LEFT: u32 = 3;
/// Event kind: the encoded slot was evicted at the encoded epoch.
pub const PH_EVICTED: u32 = 4;

/// Largest epoch a phaser event mark can encode (the mark's epoch field
/// is 12 bits). [`phaser_mark`] **saturates** here: every event past this
/// epoch carries `PH_MARK_EPOCH_MAX`, so marks never alias back onto
/// earlier epochs. Ledger-replaying oracles must cap their episode
/// horizon strictly below this value (the conformance checker asserts
/// its configuration against it).
pub const PH_MARK_EPOCH_MAX: u32 = COUNT_MASK;

/// Encodes a phaser event mark (see [`MARK_PHASER`]). The epoch field
/// saturates at [`PH_MARK_EPOCH_MAX`] — a visible ceiling instead of
/// silent aliasing, which a ledger replay would misread as revisits of
/// ancient epochs.
pub fn phaser_mark(kind: u32, slot: usize, epoch: u32) -> u32 {
    MARK_PHASER | (kind << 24) | ((slot as u32) << 12) | epoch.min(PH_MARK_EPOCH_MAX)
}

/// Decodes a phaser event mark into `(kind, slot, epoch)`; `None` for
/// non-phaser labels (e.g. the `MARK_ENTER`/`MARK_EXIT` phase marks).
/// Decoded epochs are exact up to [`PH_MARK_EPOCH_MAX`] and pinned there
/// beyond it (see [`phaser_mark`]).
pub fn decode_phaser_mark(label: u32) -> Option<(u32, usize, u32)> {
    if label & 0xF000_0000 != MARK_PHASER {
        return None;
    }
    Some(((label >> 24) & 0xF, ((label >> 12) & COUNT_MASK) as usize, label & COUNT_MASK))
}

/// A barrier with episode-boundary dynamic membership.
///
/// Contract for callers: a member must not `arrive` again for a new epoch
/// until the epoch of its previous arrival has committed — interleave
/// arrivals with [`Phaser::wait_epoch`] (or use
/// [`Phaser::arrive_and_wait`]). A slot that deregistered may re-register
/// only after its final epoch committed (wait on `wait_epoch` first).
pub trait Phaser: Send + Sync {
    /// Requests membership for this thread's slot and blocks until a
    /// boundary commits it; returns the first epoch this slot is a member
    /// of (its first `arrive` must be for that epoch).
    fn register(&self, ctx: &dyn MemCtx) -> u32 {
        let token = self.request_join(ctx);
        self.await_join(ctx, token)
    }

    /// The non-blocking half of [`Phaser::register`]: stores the join
    /// request and returns a token for [`Phaser::await_join`]. Split so a
    /// caller can make the request visible to a peer (e.g. a scripted
    /// handshake word that keeps the team running boundaries until the
    /// join commits) *before* blocking on the ack.
    fn request_join(&self, ctx: &dyn MemCtx) -> u32;

    /// Blocks until the join requested with `token` commits; returns the
    /// first member epoch.
    fn await_join(&self, ctx: &dyn MemCtx, token: u32) -> u32;

    /// Arrives for the current epoch; returns that epoch. Does **not**
    /// wait for the release (split-phase). Idempotent per epoch: calling
    /// again before the epoch commits re-enters the same arrival, so a
    /// bounded wait that aborted mid-`arrive` can safely retry.
    ///
    /// Fails with [`BarrierError::Evicted`] (exactly once, consuming the
    /// report) if this slot was evicted by a survivor.
    fn arrive(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError>;

    /// Blocks until epoch `epoch` has committed.
    fn wait_epoch(&self, ctx: &dyn MemCtx, epoch: u32);

    /// [`Phaser::arrive`] then [`Phaser::wait_epoch`]; the normal episode.
    fn arrive_and_wait(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError> {
        let e = self.arrive(ctx)?;
        self.wait_epoch(ctx, e);
        ctx.mark(phaser_mark(PH_COMPLETED, ctx.tid(), e));
        Ok(e)
    }

    /// Leaves the team: requests the transition and makes this slot's
    /// *final* arrival (counting toward the current epoch so peers are not
    /// left short), without waiting for the release. Returns the final
    /// epoch; re-registration requires `wait_epoch(final)` first.
    ///
    /// A phaser never drains to zero members: the **last** member must
    /// not deregister (park it with `wait_epoch` instead, or drop the
    /// phaser). The boundary commit enforces this with a panic — an
    /// empty committed membership word would decode as a fresh epoch-1
    /// phaser with the initial members, silently corrupting the state.
    fn deregister(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError>;

    /// Scans for an evictable member of epoch `epoch`: a current member
    /// that has not even *begun* arriving for it — neither the entry
    /// stamp nor the arrival ledger has reached the epoch — (and, for
    /// tree phasers, whose subtree is otherwise complete, so the proxy
    /// arrival can propagate). A live member mid-`arrive` (e.g. spinning
    /// on its subtree) is therefore never named. `None`
    /// when every member has arrived, the stall is not yet attributable,
    /// or `epoch` is no longer current — a recoverer whose timeout
    /// straddled a boundary commit must not scan the *next* epoch, where
    /// every member trivially "has not arrived yet".
    fn find_victim(&self, ctx: &dyn MemCtx, epoch: u32) -> Option<usize>;

    /// Claims and executes the eviction of `victim` for epoch `epoch`:
    /// first-claim-wins ticket, the winner stamps `evicted_at`, requests
    /// the `Evicted` transition, and **proxy-arrives** on the victim's
    /// behalf (running the boundary itself if that was the last arrival).
    /// Returns `false` if another thread already claimed this victim or
    /// `epoch` already committed (the caller should simply re-enter its
    /// wait). Winning the ticket while `epoch` is still current proves the
    /// epoch cannot have committed (the unarrived, unclaimed victim's
    /// count is missing), so the proxy arrival lands in the right epoch.
    ///
    /// The victim is not required to be dead: a merely-slow member may be
    /// running its own `arrive` for the same epoch concurrently. The
    /// proxy arrival and the victim's own are arbitrated by a CAS on the
    /// slot's arrival ledger, so exactly one of them is counted — the
    /// epoch total can never overshoot. A wrongfully evicted live victim
    /// thus still completes the epoch (whichever side counted it), is out
    /// from the boundary on, and learns of the eviction exactly once at
    /// its next `arrive`. One liveness caveat for the tree variant: a
    /// straggler picked as victim *before it began arriving* may enter
    /// `arrive` concurrently with the proxy; if the proxy wins while the
    /// straggler is spinning on its subtree counter, the propagation
    /// resets that counter and the raw spin never terminates —
    /// wrongful-eviction recovery requires bounded waits (see
    /// `RobustPhaser`), which abort the spin and surface the eviction
    /// report on re-entry.
    fn evict(&self, ctx: &dyn MemCtx, victim: usize, epoch: u32) -> bool;

    /// The current epoch (the one arrivals are counted against).
    fn epoch(&self, ctx: &dyn MemCtx) -> u32;

    /// The committed member count of the current epoch.
    fn members(&self, ctx: &dyn MemCtx) -> u32;

    /// Algorithm label (`"PH-CTR"` / `"PH-TREE"`).
    fn name(&self) -> &str;
}

/// The shared slot machinery: membership/release words plus the per-slot
/// request, ack, ledger, report and ticket arrays. Both phaser variants
/// embed one of these; the variant adds only its arrival structure.
struct Slots {
    cap: usize,
    initial: usize,
    membership: Addr,
    release: Addr,
    state: Addr,
    join_epoch: Addr,
    /// CAS-arbitrated arrival ledger (see [`Slots::claim_arrival`]).
    last_arrived: Addr,
    /// Advisory entry stamp: the slot stores the epoch here the moment it
    /// *begins* `arrive`, before any blocking wait. Victim scans consult
    /// it so a live member mid-arrival (e.g. a tree rank spinning on its
    /// subtree, which claims the ledger only afterwards) is never
    /// mistaken for a stalled one. Self-stored only — safety never rests
    /// on it, the CAS claim does. The store must nevertheless stay
    /// release: a buffered (relaxed) stamp would stay invisible for the
    /// whole of a following subtree spin, exactly the window the stamp
    /// exists to cover, and a raw-spinning live member could be named as
    /// a victim.
    entered: Addr,
    evicted_at: Addr,
    evict_claim: Addr,
    stride: usize,
}

impl Slots {
    fn new(arena: &mut Arena, cap: usize, initial: usize, topo: &Topology) -> Self {
        assert!(cap >= 1 && cap <= COUNT_MASK as usize, "capacity must be 1..=4095");
        assert!(initial >= 1 && initial <= cap, "need 1..=cap initial members");
        let line = topo.cacheline_bytes();
        Self {
            cap,
            initial,
            membership: arena.alloc_padded_u32(line),
            release: arena.alloc_padded_u32(line),
            state: arena.alloc_padded_u32_array(cap, line),
            join_epoch: arena.alloc_padded_u32_array(cap, line),
            last_arrived: arena.alloc_padded_u32_array(cap, line),
            entered: arena.alloc_padded_u32_array(cap, line),
            evicted_at: arena.alloc_padded_u32_array(cap, line),
            evict_claim: arena.alloc_padded_u32_array(cap, line),
            stride: line,
        }
    }

    fn state_of(&self, slot: usize) -> Addr {
        padded_elem(self.state, slot, self.stride)
    }
    fn join_epoch_of(&self, slot: usize) -> Addr {
        padded_elem(self.join_epoch, slot, self.stride)
    }
    fn last_arrived_of(&self, slot: usize) -> Addr {
        padded_elem(self.last_arrived, slot, self.stride)
    }
    fn entered_of(&self, slot: usize) -> Addr {
        padded_elem(self.entered, slot, self.stride)
    }
    fn evicted_at_of(&self, slot: usize) -> Addr {
        padded_elem(self.evicted_at, slot, self.stride)
    }
    fn evict_claim_of(&self, slot: usize) -> Addr {
        padded_elem(self.evict_claim, slot, self.stride)
    }

    /// Decodes the raw state word: zero means "never touched", which is
    /// `Active` for the initial members and `Out` for everyone else.
    fn effective_state(&self, raw: u32, slot: usize) -> u32 {
        if raw == 0 {
            if slot < self.initial {
                ACTIVE
            } else {
                OUT
            }
        } else {
            raw
        }
    }

    /// Is `slot` a member of the current epoch? Stable within the epoch:
    /// mid-epoch leave/evict *requests* keep the slot a member until the
    /// boundary commits them.
    fn is_member(&self, ctx: &dyn MemCtx, slot: usize) -> bool {
        matches!(
            self.effective_state(ctx.load(self.state_of(slot)), slot),
            ACTIVE | LEAVE_REQ | EVICT_REQ
        )
    }

    /// `(epoch, count)` of the current epoch. The zero word decodes as
    /// epoch 1 with the initial member count.
    ///
    /// The load must stay acquire: a stale membership word read after the
    /// release would let a thread arrive against the previous epoch's
    /// count or tree shape.
    fn decode(&self, ctx: &dyn MemCtx) -> (u32, u32) {
        let m = ctx.load(self.membership);
        if m & COUNT_MASK == 0 {
            (1, self.initial as u32)
        } else {
            (m >> EPOCH_SHIFT, m & COUNT_MASK)
        }
    }

    /// One-shot eviction report: consumes and returns `Evicted` if a
    /// survivor evicted this slot.
    fn take_eviction(&self, ctx: &dyn MemCtx) -> Result<(), BarrierError> {
        let slot = ctx.tid();
        let at = ctx.load(self.evicted_at_of(slot));
        if at != 0 {
            ctx.store(self.evicted_at_of(slot), 0);
            return Err(BarrierError::Evicted { tid: slot, episode: at });
        }
        Ok(())
    }

    /// Applies the requested transitions for the boundary of `epoch` and
    /// returns the member slots of `epoch + 1` in slot order plus the
    /// subset that joined at this boundary. Only the champion calls this;
    /// the membership/ack/release stores happen in `publish` *after* the
    /// variant rebuilt its arrival structure.
    fn apply_transitions(&self, ctx: &dyn MemCtx) -> (Vec<usize>, Vec<usize>) {
        let mut members = Vec::with_capacity(self.cap);
        let mut joiners = Vec::new();
        for slot in 0..self.cap {
            let raw = ctx.load(self.state_of(slot));
            match self.effective_state(raw, slot) {
                JOIN_REQ => {
                    ctx.store(self.state_of(slot), ACTIVE);
                    members.push(slot);
                    joiners.push(slot);
                }
                ACTIVE => members.push(slot),
                LEAVE_REQ => ctx.store(self.state_of(slot), LEFT),
                EVICT_REQ => ctx.store(self.state_of(slot), EVICTED),
                _ => {}
            }
        }
        // Hard assert, not debug: committing an empty member set would
        // store a membership word whose count field is zero, which
        // `decode` reinterprets as "epoch 1, the initial members" — the
        // phaser silently resurrects with stale state. Refusing loudly is
        // the only safe option; the contract (see [`Phaser::deregister`])
        // is that the last member parks instead of leaving.
        assert!(
            !members.is_empty(),
            "phaser drained to zero members: the last member must not deregister"
        );
        (members, joiners)
    }

    /// Publishes the boundary: the new membership word, the join acks (so
    /// a joiner that wakes also sees the committed membership stored
    /// before its ack), and the release **last**.
    fn publish(&self, ctx: &dyn MemCtx, epoch: u32, members: &[usize], joiners: &[usize]) {
        ctx.store(self.membership, ((epoch + 1) << EPOCH_SHIFT) | members.len() as u32);
        for &slot in joiners {
            ctx.store(self.join_epoch_of(slot), epoch + 1);
        }
        ctx.store(self.release, epoch);
    }

    fn request_join(&self, ctx: &dyn MemCtx) -> u32 {
        let slot = ctx.tid();
        debug_assert!(slot < self.cap, "slot {slot} outside phaser capacity {}", self.cap);
        let cur = ctx.load(self.join_epoch_of(slot));
        ctx.store(self.state_of(slot), JOIN_REQ);
        cur
    }

    fn await_join(&self, ctx: &dyn MemCtx, token: u32) -> u32 {
        let slot = ctx.tid();
        let acked = ctx.spin_until_ge(self.join_epoch_of(slot), token + 1);
        ctx.mark(phaser_mark(PH_JOINED, slot, acked));
        acked
    }

    /// First-claim-wins eviction ticket plus the report/transition stores.
    /// Returns `false` for claim losers. The ticket never resets, so a slot
    /// that rejoined after an eviction cannot be evicted a second time —
    /// its next stall falls back to poisoning (documented limitation).
    fn claim_eviction(&self, ctx: &dyn MemCtx, victim: usize, epoch: u32) -> bool {
        if ctx.fetch_add(self.evict_claim_of(victim), 1) != 0 {
            return false;
        }
        ctx.store(self.evicted_at_of(victim), epoch);
        ctx.store(self.state_of(victim), EVICT_REQ);
        ctx.mark(phaser_mark(PH_EVICTED, victim, epoch));
        true
    }

    /// Atomically claims `slot`'s arrival for `epoch`: a CAS walks
    /// `last_arrived` up to `epoch` and only the caller whose exchange
    /// lands gets `true`. This is the arbitration the eviction race needs:
    /// a slow-but-alive victim's own `arrive` and the elected evictor's
    /// proxy can run concurrently, and with a plain load/store ledger both
    /// would count an arrival for the same slot in the same epoch — the
    /// count overshoots and the next epoch can release early (a barrier
    /// safety violation). With the CAS exactly one of them wins and does
    /// the counting; the loser observes `last_arrived >= epoch` and backs
    /// off (for the slot's own re-entry after a bounded-wait abort, that
    /// back-off is what makes `arrive` idempotent per epoch).
    fn claim_arrival(&self, ctx: &dyn MemCtx, slot: usize, epoch: u32) -> bool {
        let ledger = self.last_arrived_of(slot);
        let mut prev = ctx.load(ledger);
        loop {
            if prev >= epoch {
                return false; // already arrived: re-entry, or the rival won
            }
            let got = ctx.compare_exchange(ledger, prev, epoch);
            if got == prev {
                return true;
            }
            prev = got;
        }
    }

    /// The victim-scan predicate: `slot` has shown no sign of life for
    /// `epoch` — it neither *began* `arrive` (the entry stamp) nor has a
    /// counted arrival (the CAS ledger, which a tree rank claims only
    /// after its subtree spin). Checking the entry stamp keeps a live
    /// member mid-arrival off the victim list.
    fn unarrived(&self, ctx: &dyn MemCtx, slot: usize, epoch: u32) -> bool {
        ctx.load(self.entered_of(slot)) < epoch && ctx.load(self.last_arrived_of(slot)) < epoch
    }
}

/// Centralized counter phaser: one `fetch_add` per arrival, champion
/// commits the boundary. The dynamic-membership analogue of SENSE.
pub struct CentralPhaser {
    slots: Slots,
    arrivals: Addr,
}

impl CentralPhaser {
    /// A phaser for up to `cap` slots of which `0..initial` start as
    /// members. Allocate before the arena is materialized.
    pub fn new(arena: &mut Arena, cap: usize, initial: usize, topo: &Topology) -> Self {
        let line = topo.cacheline_bytes();
        Self {
            slots: Slots::new(arena, cap, initial, topo),
            arrivals: arena.alloc_padded_u32(line),
        }
    }

    /// Fixed-membership construction (all `p` slots start as members), for
    /// the registry / `Barrier` uses.
    pub fn full(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        Self::new(arena, p, p, topo)
    }

    fn commit_boundary(&self, ctx: &dyn MemCtx, epoch: u32) {
        let (members, joiners) = self.slots.apply_transitions(ctx);
        ctx.store(self.arrivals, 0);
        self.slots.publish(ctx, epoch, &members, &joiners);
    }
}

impl Phaser for CentralPhaser {
    fn request_join(&self, ctx: &dyn MemCtx) -> u32 {
        self.slots.request_join(ctx)
    }

    fn await_join(&self, ctx: &dyn MemCtx, token: u32) -> u32 {
        self.slots.await_join(ctx, token)
    }

    fn arrive(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError> {
        self.slots.take_eviction(ctx)?;
        let slot = ctx.tid();
        let (epoch, count) = self.slots.decode(ctx);
        ctx.store(self.slots.entered_of(slot), epoch);
        // The CAS claim arbitrates this arrival against both the slot's
        // own re-entry (a bounded wait that aborted after counting must
        // not count twice) and a survivor's concurrent proxy arrival
        // ([`Phaser::evict`]); only the claim winner touches the counter.
        if self.slots.claim_arrival(ctx, slot, epoch)
            && ctx.fetch_add(self.arrivals, 1) + 1 == count
        {
            self.commit_boundary(ctx, epoch);
        }
        Ok(epoch)
    }

    fn wait_epoch(&self, ctx: &dyn MemCtx, epoch: u32) {
        ctx.spin_until_ge(self.slots.release, epoch);
    }

    fn deregister(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError> {
        self.slots.take_eviction(ctx)?;
        ctx.store(self.slots.state_of(ctx.tid()), LEAVE_REQ);
        let e = self.arrive(ctx)?;
        ctx.mark(phaser_mark(PH_LEFT, ctx.tid(), e));
        Ok(e)
    }

    fn find_victim(&self, ctx: &dyn MemCtx, epoch: u32) -> Option<usize> {
        if self.slots.decode(ctx).0 != epoch {
            return None; // the stalled epoch already committed
        }
        (0..self.slots.cap).find(|&slot| {
            self.slots.is_member(ctx, slot)
                && self.slots.unarrived(ctx, slot, epoch)
                && slot != ctx.tid()
        })
    }

    fn evict(&self, ctx: &dyn MemCtx, victim: usize, epoch: u32) -> bool {
        let (cur, count) = self.slots.decode(ctx);
        if cur != epoch || !self.slots.claim_eviction(ctx, victim, epoch) {
            return false;
        }
        // Proxy arrival (shyper's `add_barrier_count`): the survivor
        // arrives on the victim's behalf — but only if it wins the CAS
        // claim. A slow-but-alive victim may be counting its own arrival
        // concurrently, and with both counted the total would overshoot
        // and the *next* epoch could release early. The eviction stands
        // either way: the victim is out from the boundary on.
        if self.slots.claim_arrival(ctx, victim, epoch)
            && ctx.fetch_add(self.arrivals, 1) + 1 == count
        {
            self.commit_boundary(ctx, epoch);
        }
        true
    }

    fn epoch(&self, ctx: &dyn MemCtx) -> u32 {
        self.slots.decode(ctx).0
    }
    fn members(&self, ctx: &dyn MemCtx) -> u32 {
        self.slots.decode(ctx).1
    }
    fn name(&self) -> &str {
        "PH-CTR"
    }
}

impl Barrier for CentralPhaser {
    fn wait(&self, ctx: &dyn MemCtx) {
        self.arrive_and_wait(ctx).expect("fixed-membership phaser cannot be evicted");
    }
    fn name(&self) -> &str {
        Phaser::name(self)
    }
}

/// 4-ary arrival-tree phaser that **reparents** on membership change: the
/// champion recomputes the dense rank table (member slots in slot order →
/// ranks `0..count`) at every boundary, so each epoch's tree spans exactly
/// the committed members. Rank `r`'s children are ranks `4r+1..=4r+4`
/// (clamped to the member count); internal ranks aggregate child arrivals
/// through per-rank padded counters, rank 0 commits the boundary.
pub struct TreePhaser {
    slots: Slots,
    /// Per-slot rank table, written by the champion: `0` = "use the slot
    /// number" (valid only for the initial membership, where slots 0..p
    /// are ranks 0..p), otherwise `rank + 1`.
    rank_of: Addr,
    /// Per-rank child-arrival counters.
    counter: Addr,
}

const FANIN: usize = 4;

impl TreePhaser {
    /// See [`CentralPhaser::new`]; same slot semantics, tree arrivals.
    pub fn new(arena: &mut Arena, cap: usize, initial: usize, topo: &Topology) -> Self {
        let line = topo.cacheline_bytes();
        Self {
            slots: Slots::new(arena, cap, initial, topo),
            rank_of: arena.alloc_padded_u32_array(cap, line),
            counter: arena.alloc_padded_u32_array(cap, line),
        }
    }

    /// Fixed-membership construction, for the registry / `Barrier` uses.
    pub fn full(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        Self::new(arena, p, p, topo)
    }

    fn rank_addr(&self, slot: usize) -> Addr {
        padded_elem(self.rank_of, slot, self.slots.stride)
    }
    fn counter_addr(&self, rank: usize) -> Addr {
        padded_elem(self.counter, rank, self.slots.stride)
    }

    fn rank(&self, ctx: &dyn MemCtx, slot: usize) -> usize {
        match ctx.load(self.rank_addr(slot)) {
            0 => slot,
            r => r as usize - 1,
        }
    }

    fn nchildren(rank: usize, count: u32) -> usize {
        let lo = FANIN * rank + 1;
        (count as usize).saturating_sub(lo).min(FANIN)
    }

    fn commit_boundary(&self, ctx: &dyn MemCtx, epoch: u32) {
        let (members, joiners) = self.slots.apply_transitions(ctx);
        // Reparent: dense ranks over the new member set, in slot order.
        for (rank, &slot) in members.iter().enumerate() {
            ctx.store(self.rank_addr(slot), rank as u32 + 1);
        }
        self.slots.publish(ctx, epoch, &members, &joiners);
    }

    /// Consumes a complete child set and propagates the arrival upward
    /// from `rank` (running the boundary at rank 0). Shared by the normal
    /// arrival path and the eviction proxy. The counter reset is safe
    /// before the parent bump: every counter in the tree is reset before
    /// the root can commit, so next-epoch bumps always land on zero.
    fn propagate(&self, ctx: &dyn MemCtx, rank: usize, epoch: u32, count: u32) {
        if Self::nchildren(rank, count) > 0 {
            ctx.store(self.counter_addr(rank), 0);
        }
        if rank == 0 {
            self.commit_boundary(ctx, epoch);
        } else {
            ctx.fetch_add(self.counter_addr((rank - 1) / FANIN), 1);
        }
    }
}

impl Phaser for TreePhaser {
    fn request_join(&self, ctx: &dyn MemCtx) -> u32 {
        self.slots.request_join(ctx)
    }

    fn await_join(&self, ctx: &dyn MemCtx, token: u32) -> u32 {
        self.slots.await_join(ctx, token)
    }

    fn arrive(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError> {
        self.slots.take_eviction(ctx)?;
        let slot = ctx.tid();
        let (epoch, count) = self.slots.decode(ctx);
        if ctx.load(self.slots.last_arrived_of(slot)) >= epoch {
            return Ok(epoch); // re-entry: this epoch's arrival is counted
        }
        ctx.store(self.slots.entered_of(slot), epoch);
        let rank = self.rank(ctx, slot);
        let nch = Self::nchildren(rank, count);
        // The only blocking point of `arrive`: a bounded wait that aborts
        // here consumed nothing, so re-entering `arrive` simply re-spins.
        if nch > 0 {
            ctx.spin_until_eq(self.counter_addr(rank), nch as u32);
        }
        // Claimed *after* the spin so the winner propagates immediately —
        // claim and propagate contain no blocking point, so an abort can
        // never strand a won-but-unpropagated claim. The loser (a
        // survivor proxied this arrival concurrently, see
        // [`Phaser::evict`]) must not propagate a second time.
        if self.slots.claim_arrival(ctx, slot, epoch) {
            self.propagate(ctx, rank, epoch, count);
        }
        Ok(epoch)
    }

    fn wait_epoch(&self, ctx: &dyn MemCtx, epoch: u32) {
        ctx.spin_until_ge(self.slots.release, epoch);
    }

    fn deregister(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError> {
        self.slots.take_eviction(ctx)?;
        ctx.store(self.slots.state_of(ctx.tid()), LEAVE_REQ);
        let e = self.arrive(ctx)?;
        ctx.mark(phaser_mark(PH_LEFT, ctx.tid(), e));
        Ok(e)
    }

    fn find_victim(&self, ctx: &dyn MemCtx, epoch: u32) -> Option<usize> {
        let (cur, count) = self.slots.decode(ctx);
        if cur != epoch {
            return None; // the stalled epoch already committed
        }
        // Deepest stalled member whose own subtree is complete, so the
        // proxy arrival can propagate without waiting in the victim's
        // stead. Ranks grow with depth, so scanning for the max rank
        // finds the deepest; a stalled member with an incomplete subtree
        // is not yet attributable (a descendant is the real stall).
        let mut best: Option<(usize, usize)> = None;
        for slot in 0..self.slots.cap {
            if slot == ctx.tid()
                || !self.slots.is_member(ctx, slot)
                || !self.slots.unarrived(ctx, slot, epoch)
            {
                continue;
            }
            let rank = self.rank(ctx, slot);
            let nch = Self::nchildren(rank, count);
            if nch > 0 && ctx.load(self.counter_addr(rank)) != nch as u32 {
                continue;
            }
            if best.is_none_or(|(r, _)| rank > r) {
                best = Some((rank, slot));
            }
        }
        best.map(|(_, slot)| slot)
    }

    fn evict(&self, ctx: &dyn MemCtx, victim: usize, epoch: u32) -> bool {
        let (cur, count) = self.slots.decode(ctx);
        if cur != epoch || !self.slots.claim_eviction(ctx, victim, epoch) {
            return false;
        }
        // Proxy arrival gated on the CAS claim: a slow-but-alive victim
        // may be completing the same epoch itself, and exactly one of the
        // two may consume the subtree counter and bump the parent — a
        // double propagation would overshoot an upstream counter and let
        // the next epoch release early. The eviction stands either way.
        if self.slots.claim_arrival(ctx, victim, epoch) {
            self.propagate(ctx, self.rank(ctx, victim), epoch, count);
        }
        true
    }

    fn epoch(&self, ctx: &dyn MemCtx) -> u32 {
        self.slots.decode(ctx).0
    }
    fn members(&self, ctx: &dyn MemCtx) -> u32 {
        self.slots.decode(ctx).1
    }
    fn name(&self) -> &str {
        "PH-TREE"
    }
}

impl Barrier for TreePhaser {
    fn wait(&self, ctx: &dyn MemCtx) {
        self.arrive_and_wait(ctx).expect("fixed-membership phaser cannot be evicted");
    }
    fn name(&self) -> &str {
        Phaser::name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_simcoh::{SimBuilder, SimError};
    use armbar_topology::Platform;
    use std::sync::Arc;

    fn topo() -> Arc<Topology> {
        Arc::new(Topology::preset(Platform::Kunpeng920))
    }

    fn build(
        which: &str,
        arena: &mut Arena,
        cap: usize,
        initial: usize,
        t: &Topology,
    ) -> Arc<dyn Phaser> {
        match which {
            "ctr" => Arc::new(CentralPhaser::new(arena, cap, initial, t)),
            "tree" => Arc::new(TreePhaser::new(arena, cap, initial, t)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn mark_encoding_round_trips() {
        for (kind, slot, epoch) in [(PH_JOINED, 0, 1), (PH_EVICTED, 4094, 4095), (PH_LEFT, 7, 9)] {
            assert_eq!(
                decode_phaser_mark(phaser_mark(kind, slot, epoch)),
                Some((kind, slot, epoch))
            );
        }
        assert_eq!(decode_phaser_mark(crate::env::MARK_ENTER), None);
        assert_eq!(decode_phaser_mark(0), None);
    }

    #[test]
    fn stale_epoch_recovery_cannot_evict() {
        // Regression: a recoverer whose timeout straddles a boundary
        // commit holds a victim search licensed by the *old* epoch. Once
        // the boundary moves, that license is dead — scanning the fresh
        // epoch (where nobody has arrived yet) must name no victim, and a
        // stale eviction claim must lose.
        for which in ["ctr", "tree"] {
            let t = topo();
            let mut arena = Arena::new();
            let ph = build(which, &mut arena, 4, 4, &t);
            SimBuilder::new(Arc::clone(&t), 4)
                .run({
                    let ph = Arc::clone(&ph);
                    move |ctx| {
                        ph.arrive_and_wait(ctx).unwrap();
                        if ctx.tid() == 0 {
                            // Epoch 1 committed; a vote still pinned to it
                            // must be inert.
                            assert_eq!(ph.find_victim(ctx, 1), None, "{which}");
                            assert!(!ph.evict(ctx, 1, 1), "{which}");
                            // The fresh epoch has no arrivals yet — that
                            // is not evidence of a stall either way; the
                            // scan may name a peer only for the *current*
                            // epoch, which a real detector reaches only
                            // after a timeout.
                        }
                        ph.arrive_and_wait(ctx).unwrap();
                    }
                })
                .unwrap();
        }
    }

    #[test]
    fn fixed_membership_phasers_run_as_barriers() {
        for which in ["ctr", "tree"] {
            let t = topo();
            let mut arena = Arena::new();
            let ph = build(which, &mut arena, 8, 8, &t);
            let stats = SimBuilder::new(Arc::clone(&t), 8)
                .run({
                    let ph = Arc::clone(&ph);
                    move |ctx| {
                        for e in 1..=5u32 {
                            assert_eq!(ph.arrive_and_wait(ctx).unwrap(), e, "{which}");
                        }
                    }
                })
                .unwrap();
            assert!(stats.max_time_ns() > 0.0);
        }
    }

    #[test]
    fn late_joiner_participates_from_its_ack_epoch() {
        for which in ["ctr", "tree"] {
            let t = topo();
            let mut arena = Arena::new();
            let ph = build(which, &mut arena, 6, 5, &t);
            SimBuilder::new(Arc::clone(&t), 6)
                .run({
                    let ph = Arc::clone(&ph);
                    move |ctx| {
                        if ctx.tid() == 5 {
                            let k = ph.register(ctx);
                            assert!(
                                (2..=6).contains(&k),
                                "{which}: join commits at a boundary, got {k}"
                            );
                            // A member must keep arriving until it leaves;
                            // run through the team's final epoch.
                            for e in k..=6 {
                                assert_eq!(ph.arrive_and_wait(ctx).unwrap(), e, "{which}");
                            }
                        } else {
                            let mut last = 0;
                            for _ in 0..6 {
                                last = ph.arrive_and_wait(ctx).unwrap();
                            }
                            assert_eq!(last, 6, "{which}");
                            assert_eq!(ph.members(ctx), 6, "{which}: joiner counted");
                        }
                    }
                })
                .unwrap();
        }
    }

    #[test]
    fn leaver_drops_out_at_the_boundary() {
        for which in ["ctr", "tree"] {
            let t = topo();
            let mut arena = Arena::new();
            let ph = build(which, &mut arena, 8, 8, &t);
            SimBuilder::new(Arc::clone(&t), 8)
                .run({
                    let ph = Arc::clone(&ph);
                    move |ctx| {
                        ph.arrive_and_wait(ctx).unwrap();
                        if ctx.tid() == 3 {
                            // Final arrival for epoch 2; gone afterwards.
                            assert_eq!(ph.deregister(ctx).unwrap(), 2, "{which}");
                        } else {
                            for e in 2..=4u32 {
                                assert_eq!(ph.arrive_and_wait(ctx).unwrap(), e, "{which}");
                            }
                            assert_eq!(ph.members(ctx), 7, "{which}: leaver dropped");
                        }
                    }
                })
                .unwrap();
        }
    }

    #[test]
    fn flap_leave_then_rejoin_same_slot() {
        for which in ["ctr", "tree"] {
            let t = topo();
            let mut arena = Arena::new();
            let ph = build(which, &mut arena, 4, 4, &t);
            SimBuilder::new(Arc::clone(&t), 4)
                .run({
                    let ph = Arc::clone(&ph);
                    move |ctx| {
                        if ctx.tid() == 1 {
                            let e = ph.deregister(ctx).unwrap();
                            ph.wait_epoch(ctx, e); // leave must commit first
                            let k = ph.register(ctx);
                            assert!(k > e, "{which}: rejoined for a later epoch");
                            assert!(k <= 6, "{which}: rejoin ack ran away: {k}");
                            for e in k..=6 {
                                assert_eq!(ph.arrive_and_wait(ctx).unwrap(), e, "{which}");
                            }
                        } else {
                            for _ in 0..6 {
                                ph.arrive_and_wait(ctx).unwrap();
                            }
                        }
                    }
                })
                .unwrap();
        }
    }

    #[test]
    fn mark_epoch_saturates_instead_of_aliasing() {
        let m = phaser_mark(PH_COMPLETED, 3, 70_000);
        assert_eq!(decode_phaser_mark(m), Some((PH_COMPLETED, 3, PH_MARK_EPOCH_MAX)));
        assert_eq!(m, phaser_mark(PH_COMPLETED, 3, PH_MARK_EPOCH_MAX));
        // One below the cap still round-trips exactly.
        assert_eq!(
            decode_phaser_mark(phaser_mark(PH_LEFT, 0, PH_MARK_EPOCH_MAX - 1)),
            Some((PH_LEFT, 0, PH_MARK_EPOCH_MAX - 1))
        );
    }

    #[test]
    fn arrival_claim_elects_exactly_one_winner() {
        let t = topo();
        let mut arena = Arena::new();
        let ph = Arc::new(CentralPhaser::new(&mut arena, 4, 4, &t));
        let wins = arena.alloc_padded_u32(t.cacheline_bytes());
        let done = arena.alloc_padded_u32(t.cacheline_bytes());
        SimBuilder::new(Arc::clone(&t), 2)
            .run({
                let ph = Arc::clone(&ph);
                move |ctx| {
                    if ph.slots.claim_arrival(ctx, 0, 5) {
                        ctx.fetch_add(wins, 1);
                    }
                    ctx.fetch_add(done, 1);
                    ctx.spin_until_eq(done, 2);
                    assert_eq!(ctx.load(wins), 1, "exactly one claimant may win");
                    // The ledger lands on the claimed epoch either way,
                    // and repeat claims for it (re-entries) lose.
                    assert_eq!(ctx.load(ph.slots.last_arrived_of(0)), 5);
                    assert!(!ph.slots.claim_arrival(ctx, 0, 5));
                }
            })
            .unwrap();
    }

    #[test]
    fn evictor_loses_the_arrival_race_to_a_live_victim() {
        // Eviction-vs-arrival race: the victim is alive and has *already*
        // arrived when a survivor evicts it. The proxy arrival must lose
        // the CAS claim — under a plain load/store ledger both sides
        // counted the same slot for the same epoch, the total overshot,
        // and the next epoch could release a member short.
        for which in ["ctr", "tree"] {
            let t = topo();
            let mut arena = Arena::new();
            let ph = build(which, &mut arena, 2, 2, &t);
            let aux = arena.alloc_padded_u32(t.cacheline_bytes());
            SimBuilder::new(Arc::clone(&t), 2)
                .run({
                    let ph = Arc::clone(&ph);
                    move |ctx| {
                        if ctx.tid() == 1 {
                            assert_eq!(ph.arrive(ctx).unwrap(), 1, "{which}");
                            ctx.store(aux, 1); // arrival is on the ledger
                            ph.wait_epoch(ctx, 1);
                            // The wrongful eviction still stands and
                            // reports exactly once at the next arrive.
                            assert_eq!(
                                ph.arrive(ctx).unwrap_err(),
                                BarrierError::Evicted { tid: 1, episode: 1 },
                                "{which}"
                            );
                        } else {
                            ctx.spin_until_ge(aux, 1);
                            assert!(ph.evict(ctx, 1, 1), "{which}");
                            // Had the proxy double-counted, epoch 1 would
                            // have committed on the evict alone and this
                            // arrival would land in epoch 2 (the tree
                            // variant would deadlock on an overshot
                            // counter instead).
                            assert_eq!(ph.arrive(ctx).unwrap(), 1, "{which}");
                            ph.wait_epoch(ctx, 1);
                            assert_eq!(ph.members(ctx), 1, "{which}: victim out");
                            assert_eq!(ph.epoch(ctx), 2, "{which}");
                        }
                    }
                })
                .unwrap();
        }
    }

    #[test]
    fn draining_the_last_member_panics_loudly() {
        // An empty committed membership word would decode as a fresh
        // epoch-1 phaser; the boundary must refuse loudly in release
        // builds, not just under debug assertions.
        for which in ["ctr", "tree"] {
            let t = topo();
            let mut arena = Arena::new();
            let ph = build(which, &mut arena, 1, 1, &t);
            let err = SimBuilder::new(Arc::clone(&t), 1)
                .run({
                    let ph = Arc::clone(&ph);
                    move |ctx| {
                        let _ = ph.deregister(ctx);
                    }
                })
                .unwrap_err();
            match err {
                SimError::ThreadPanic { message, .. } => {
                    assert!(message.contains("drained to zero members"), "{which}: {message}");
                }
                other => panic!("{which}: expected panic, got {other}"),
            }
        }
    }

    #[test]
    fn eviction_completes_the_epoch_and_reports_once() {
        for which in ["ctr", "tree"] {
            let t = topo();
            let mut arena = Arena::new();
            let ph = build(which, &mut arena, 4, 4, &t);
            SimBuilder::new(Arc::clone(&t), 4)
                .run({
                    let ph = Arc::clone(&ph);
                    move |ctx| {
                        ph.arrive_and_wait(ctx).unwrap();
                        match ctx.tid() {
                            2 => {
                                // Deserts epoch 2. Waiting the release is
                                // legal without arriving; the next arrival
                                // then reports the eviction exactly once.
                                ph.wait_epoch(ctx, 2);
                                let err = ph.arrive_and_wait(ctx).unwrap_err();
                                assert_eq!(
                                    err,
                                    BarrierError::Evicted { tid: 2, episode: 2 },
                                    "{which}"
                                );
                            }
                            // Tid 3 detects: it is a leaf in the tree
                            // variant, so its own `arrive` never blocks and
                            // it is free to run the eviction.
                            3 => {
                                ph.arrive(ctx).unwrap();
                                loop {
                                    // Transient scans may blame a slow but
                                    // healthy peer; a real detector only
                                    // runs this after a timeout. Wait for
                                    // the stall to pin on the deserter.
                                    match ph.find_victim(ctx, 2) {
                                        Some(2) => break,
                                        _ => ctx.compute_ns(50.0),
                                    }
                                }
                                assert!(ph.evict(ctx, 2, 2), "{which}");
                                ph.wait_epoch(ctx, 2);
                                assert_eq!(ph.members(ctx), 3, "{which}: reformed P-1");
                                ph.arrive_and_wait(ctx).unwrap();
                            }
                            _ => {
                                ph.arrive_and_wait(ctx).unwrap();
                                ph.arrive_and_wait(ctx).unwrap();
                            }
                        }
                    }
                })
                .unwrap();
        }
    }
}

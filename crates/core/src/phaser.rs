//! Phaser-style barriers with **dynamic membership** (ROADMAP item 2).
//!
//! A [`Phaser`] is a barrier whose team can change while it runs:
//! participants `register` to join, `deregister` to leave, and a crashed
//! member can be *evicted* by a survivor that proxy-arrives on its behalf
//! (the shyper hypervisor's `add_barrier_count` idiom — see SNIPPETS.md and
//! [`crate::robust::RobustPhaser`]). Membership changes never tear a
//! running episode: they are *requested* mid-epoch and **commit only at the
//! epoch boundary**, applied by the champion (the last arriver) before it
//! publishes the release. Within one epoch the member set is therefore
//! immutable — every arrival-counting and tree-shape decision an algorithm
//! makes is against a stable set — which is what makes the protocol safe
//! without locks (the same reason `java.util.concurrent.Phaser` defers
//! de/registration effects to phase boundaries).
//!
//! Two implementations, mirroring the paper's centralized-vs-tree split:
//!
//! * [`CentralPhaser`] — a counter phaser: `arrive` is one `fetch_add`;
//!   the champion commits the boundary. O(1) per arrival, O(capacity)
//!   boundary scan paid by the champion only; hot-spots like SENSE.
//! * [`TreePhaser`] — a 4-ary arrival tree over the *current* members. The
//!   champion recomputes the dense rank table at every boundary, so the
//!   tree **reparents** itself around joins/leaves/evictions; each epoch
//!   runs on a well-shaped tree of exactly the committed members.
//!
//! ## Word layout (all state in the shared arena, zero-initialized)
//!
//! * `membership` — `(epoch << 12) | count`, the epoch-stamped membership
//!   word. The all-zero word decodes as "epoch 1, the initial members"
//!   so a freshly materialized arena is a valid phaser. Capacity is capped
//!   at 4095 members (the count field) and ~2^20 epochs (the epoch field;
//!   the word is 32 bits — long-running hosts should rebuild the phaser
//!   before the epoch field wraps).
//! * `release` — monotonic completion clock: `release >= e` iff epoch `e`
//!   committed. Waiters spin here; re-entrant fast members can lap slow
//!   ones safely because the comparison is `>=`, never `==`.
//! * per-slot padded words: request `state`, `join_epoch` ack,
//!   `last_arrived` ledger, `evicted_at` one-shot report, `evict_claim`
//!   ticket. "Slot" is the thread id; a slot can leave and rejoin.
//!
//! ## Boundary commit order
//!
//! The champion (1) applies the requested state transitions, (2) rebuilds
//! per-epoch tables (tree ranks / the central arrival counter), (3) stores
//! the new `membership` word, (4) acks joiners via `join_epoch`, and (5)
//! stores `release` **last**. Because every store is Release and every load
//! Acquire, a thread that observes the release (or its join ack) also
//! observes the fully committed membership it is about to run under.

use armbar_simcoh::{arena::padded_elem, Addr, Arena};
use armbar_topology::Topology;

use crate::env::{Barrier, MemCtx};
use crate::robust::BarrierError;

/// Slot-state machine. Requests (`JoinReq`/`LeaveReq`/`EvictReq`) are
/// stored mid-epoch by anyone; transitions commit only at the boundary.
/// The raw zero word means "never touched": initial members decode as
/// `Active`, everyone else as `Out`.
const OUT: u32 = 0;
const JOIN_REQ: u32 = 1;
const ACTIVE: u32 = 2;
const LEAVE_REQ: u32 = 3;
const EVICT_REQ: u32 = 4;
const EVICTED: u32 = 5;
/// Explicit post-leave state (distinct from the raw zero so an initial
/// member that left does not decode back to `Active`).
const LEFT: u32 = 6;

const EPOCH_SHIFT: u32 = 12;
const COUNT_MASK: u32 = (1 << EPOCH_SHIFT) - 1;

/// Base of the phaser event mark labels (distinct from the `0xB00x` phase
/// marks): `0xC000_0000 | kind << 24 | slot << 12 | epoch`. The slot field
/// is meaningful for [`PH_EVICTED`] (the *evictor* emits it on the victim's
/// behalf); for the self-reported kinds the mark's own `tid` is the slot.
pub const MARK_PHASER: u32 = 0xC000_0000;
/// Event kind: this slot became a member from the encoded epoch on.
pub const PH_JOINED: u32 = 1;
/// Event kind: this slot arrived *and observed the release* of the epoch.
pub const PH_COMPLETED: u32 = 2;
/// Event kind: this slot's final arrival — member through the epoch, gone
/// after its boundary.
pub const PH_LEFT: u32 = 3;
/// Event kind: the encoded slot was evicted at the encoded epoch.
pub const PH_EVICTED: u32 = 4;

/// Encodes a phaser event mark (see [`MARK_PHASER`]).
pub fn phaser_mark(kind: u32, slot: usize, epoch: u32) -> u32 {
    debug_assert!(epoch <= COUNT_MASK, "mark epoch field saturates at 4095");
    MARK_PHASER | (kind << 24) | ((slot as u32) << 12) | (epoch & COUNT_MASK)
}

/// Decodes a phaser event mark into `(kind, slot, epoch)`; `None` for
/// non-phaser labels (e.g. the `MARK_ENTER`/`MARK_EXIT` phase marks).
pub fn decode_phaser_mark(label: u32) -> Option<(u32, usize, u32)> {
    if label & 0xF000_0000 != MARK_PHASER {
        return None;
    }
    Some(((label >> 24) & 0xF, ((label >> 12) & COUNT_MASK) as usize, label & COUNT_MASK))
}

/// A barrier with episode-boundary dynamic membership.
///
/// Contract for callers: a member must not `arrive` again for a new epoch
/// until the epoch of its previous arrival has committed — interleave
/// arrivals with [`Phaser::wait_epoch`] (or use
/// [`Phaser::arrive_and_wait`]). A slot that deregistered may re-register
/// only after its final epoch committed (wait on `wait_epoch` first).
pub trait Phaser: Send + Sync {
    /// Requests membership for this thread's slot and blocks until a
    /// boundary commits it; returns the first epoch this slot is a member
    /// of (its first `arrive` must be for that epoch).
    fn register(&self, ctx: &dyn MemCtx) -> u32 {
        let token = self.request_join(ctx);
        self.await_join(ctx, token)
    }

    /// The non-blocking half of [`Phaser::register`]: stores the join
    /// request and returns a token for [`Phaser::await_join`]. Split so a
    /// caller can make the request visible to a peer (e.g. a scripted
    /// handshake word that keeps the team running boundaries until the
    /// join commits) *before* blocking on the ack.
    fn request_join(&self, ctx: &dyn MemCtx) -> u32;

    /// Blocks until the join requested with `token` commits; returns the
    /// first member epoch.
    fn await_join(&self, ctx: &dyn MemCtx, token: u32) -> u32;

    /// Arrives for the current epoch; returns that epoch. Does **not**
    /// wait for the release (split-phase). Idempotent per epoch: calling
    /// again before the epoch commits re-enters the same arrival, so a
    /// bounded wait that aborted mid-`arrive` can safely retry.
    ///
    /// Fails with [`BarrierError::Evicted`] (exactly once, consuming the
    /// report) if this slot was evicted by a survivor.
    fn arrive(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError>;

    /// Blocks until epoch `epoch` has committed.
    fn wait_epoch(&self, ctx: &dyn MemCtx, epoch: u32);

    /// [`Phaser::arrive`] then [`Phaser::wait_epoch`]; the normal episode.
    fn arrive_and_wait(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError> {
        let e = self.arrive(ctx)?;
        self.wait_epoch(ctx, e);
        ctx.mark(phaser_mark(PH_COMPLETED, ctx.tid(), e));
        Ok(e)
    }

    /// Leaves the team: requests the transition and makes this slot's
    /// *final* arrival (counting toward the current epoch so peers are not
    /// left short), without waiting for the release. Returns the final
    /// epoch; re-registration requires `wait_epoch(final)` first.
    fn deregister(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError>;

    /// Scans for an evictable member of epoch `epoch`: a current member
    /// that has not arrived for it (and, for tree phasers, whose subtree
    /// is otherwise complete, so the proxy arrival can propagate). `None`
    /// when every member has arrived, the stall is not yet attributable,
    /// or `epoch` is no longer current — a recoverer whose timeout
    /// straddled a boundary commit must not scan the *next* epoch, where
    /// every member trivially "has not arrived yet".
    fn find_victim(&self, ctx: &dyn MemCtx, epoch: u32) -> Option<usize>;

    /// Claims and executes the eviction of `victim` for epoch `epoch`:
    /// first-claim-wins ticket, the winner stamps `evicted_at`, requests
    /// the `Evicted` transition, and **proxy-arrives** on the victim's
    /// behalf (running the boundary itself if that was the last arrival).
    /// Returns `false` if another thread already claimed this victim or
    /// `epoch` already committed (the caller should simply re-enter its
    /// wait). Winning the ticket while `epoch` is still current proves the
    /// epoch cannot have committed (the unarrived, unclaimed victim's
    /// count is missing), so the proxy arrival lands in the right epoch.
    fn evict(&self, ctx: &dyn MemCtx, victim: usize, epoch: u32) -> bool;

    /// The current epoch (the one arrivals are counted against).
    fn epoch(&self, ctx: &dyn MemCtx) -> u32;

    /// The committed member count of the current epoch.
    fn members(&self, ctx: &dyn MemCtx) -> u32;

    /// Algorithm label (`"PH-CTR"` / `"PH-TREE"`).
    fn name(&self) -> &str;
}

/// The shared slot machinery: membership/release words plus the per-slot
/// request, ack, ledger, report and ticket arrays. Both phaser variants
/// embed one of these; the variant adds only its arrival structure.
struct Slots {
    cap: usize,
    initial: usize,
    membership: Addr,
    release: Addr,
    state: Addr,
    join_epoch: Addr,
    last_arrived: Addr,
    evicted_at: Addr,
    evict_claim: Addr,
    stride: usize,
}

impl Slots {
    fn new(arena: &mut Arena, cap: usize, initial: usize, topo: &Topology) -> Self {
        assert!(cap >= 1 && cap <= COUNT_MASK as usize, "capacity must be 1..=4095");
        assert!(initial >= 1 && initial <= cap, "need 1..=cap initial members");
        let line = topo.cacheline_bytes();
        Self {
            cap,
            initial,
            membership: arena.alloc_padded_u32(line),
            release: arena.alloc_padded_u32(line),
            state: arena.alloc_padded_u32_array(cap, line),
            join_epoch: arena.alloc_padded_u32_array(cap, line),
            last_arrived: arena.alloc_padded_u32_array(cap, line),
            evicted_at: arena.alloc_padded_u32_array(cap, line),
            evict_claim: arena.alloc_padded_u32_array(cap, line),
            stride: line,
        }
    }

    fn state_of(&self, slot: usize) -> Addr {
        padded_elem(self.state, slot, self.stride)
    }
    fn join_epoch_of(&self, slot: usize) -> Addr {
        padded_elem(self.join_epoch, slot, self.stride)
    }
    fn last_arrived_of(&self, slot: usize) -> Addr {
        padded_elem(self.last_arrived, slot, self.stride)
    }
    fn evicted_at_of(&self, slot: usize) -> Addr {
        padded_elem(self.evicted_at, slot, self.stride)
    }
    fn evict_claim_of(&self, slot: usize) -> Addr {
        padded_elem(self.evict_claim, slot, self.stride)
    }

    /// Decodes the raw state word: zero means "never touched", which is
    /// `Active` for the initial members and `Out` for everyone else.
    fn effective_state(&self, raw: u32, slot: usize) -> u32 {
        if raw == 0 {
            if slot < self.initial {
                ACTIVE
            } else {
                OUT
            }
        } else {
            raw
        }
    }

    /// Is `slot` a member of the current epoch? Stable within the epoch:
    /// mid-epoch leave/evict *requests* keep the slot a member until the
    /// boundary commits them.
    fn is_member(&self, ctx: &dyn MemCtx, slot: usize) -> bool {
        matches!(
            self.effective_state(ctx.load(self.state_of(slot)), slot),
            ACTIVE | LEAVE_REQ | EVICT_REQ
        )
    }

    /// `(epoch, count)` of the current epoch. The zero word decodes as
    /// epoch 1 with the initial member count.
    fn decode(&self, ctx: &dyn MemCtx) -> (u32, u32) {
        let m = ctx.load(self.membership);
        if m & COUNT_MASK == 0 {
            (1, self.initial as u32)
        } else {
            (m >> EPOCH_SHIFT, m & COUNT_MASK)
        }
    }

    /// One-shot eviction report: consumes and returns `Evicted` if a
    /// survivor evicted this slot.
    fn take_eviction(&self, ctx: &dyn MemCtx) -> Result<(), BarrierError> {
        let slot = ctx.tid();
        let at = ctx.load(self.evicted_at_of(slot));
        if at != 0 {
            ctx.store(self.evicted_at_of(slot), 0);
            return Err(BarrierError::Evicted { tid: slot, episode: at });
        }
        Ok(())
    }

    /// Applies the requested transitions for the boundary of `epoch` and
    /// returns the member slots of `epoch + 1` in slot order plus the
    /// subset that joined at this boundary. Only the champion calls this;
    /// the membership/ack/release stores happen in `publish` *after* the
    /// variant rebuilt its arrival structure.
    fn apply_transitions(&self, ctx: &dyn MemCtx) -> (Vec<usize>, Vec<usize>) {
        let mut members = Vec::with_capacity(self.cap);
        let mut joiners = Vec::new();
        for slot in 0..self.cap {
            let raw = ctx.load(self.state_of(slot));
            match self.effective_state(raw, slot) {
                JOIN_REQ => {
                    ctx.store(self.state_of(slot), ACTIVE);
                    members.push(slot);
                    joiners.push(slot);
                }
                ACTIVE => members.push(slot),
                LEAVE_REQ => ctx.store(self.state_of(slot), LEFT),
                EVICT_REQ => ctx.store(self.state_of(slot), EVICTED),
                _ => {}
            }
        }
        debug_assert!(!members.is_empty(), "a phaser must keep at least one member");
        (members, joiners)
    }

    /// Publishes the boundary: the new membership word, the join acks (so
    /// a joiner that wakes also sees the committed membership stored
    /// before its ack), and the release **last**.
    fn publish(&self, ctx: &dyn MemCtx, epoch: u32, members: &[usize], joiners: &[usize]) {
        ctx.store(self.membership, ((epoch + 1) << EPOCH_SHIFT) | members.len() as u32);
        for &slot in joiners {
            ctx.store(self.join_epoch_of(slot), epoch + 1);
        }
        ctx.store(self.release, epoch);
    }

    fn request_join(&self, ctx: &dyn MemCtx) -> u32 {
        let slot = ctx.tid();
        debug_assert!(slot < self.cap, "slot {slot} outside phaser capacity {}", self.cap);
        let cur = ctx.load(self.join_epoch_of(slot));
        ctx.store(self.state_of(slot), JOIN_REQ);
        cur
    }

    fn await_join(&self, ctx: &dyn MemCtx, token: u32) -> u32 {
        let slot = ctx.tid();
        let acked = ctx.spin_until_ge(self.join_epoch_of(slot), token + 1);
        ctx.mark(phaser_mark(PH_JOINED, slot, acked));
        acked
    }

    /// First-claim-wins eviction ticket plus the report/transition stores.
    /// Returns `false` for claim losers. The ticket never resets, so a slot
    /// that rejoined after an eviction cannot be evicted a second time —
    /// its next stall falls back to poisoning (documented limitation).
    fn claim_eviction(&self, ctx: &dyn MemCtx, victim: usize, epoch: u32) -> bool {
        if ctx.fetch_add(self.evict_claim_of(victim), 1) != 0 {
            return false;
        }
        ctx.store(self.evicted_at_of(victim), epoch);
        ctx.store(self.state_of(victim), EVICT_REQ);
        ctx.mark(phaser_mark(PH_EVICTED, victim, epoch));
        true
    }
}

/// Centralized counter phaser: one `fetch_add` per arrival, champion
/// commits the boundary. The dynamic-membership analogue of SENSE.
pub struct CentralPhaser {
    slots: Slots,
    arrivals: Addr,
}

impl CentralPhaser {
    /// A phaser for up to `cap` slots of which `0..initial` start as
    /// members. Allocate before the arena is materialized.
    pub fn new(arena: &mut Arena, cap: usize, initial: usize, topo: &Topology) -> Self {
        let line = topo.cacheline_bytes();
        Self {
            slots: Slots::new(arena, cap, initial, topo),
            arrivals: arena.alloc_padded_u32(line),
        }
    }

    /// Fixed-membership construction (all `p` slots start as members), for
    /// the registry / `Barrier` uses.
    pub fn full(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        Self::new(arena, p, p, topo)
    }

    fn commit_boundary(&self, ctx: &dyn MemCtx, epoch: u32) {
        let (members, joiners) = self.slots.apply_transitions(ctx);
        ctx.store(self.arrivals, 0);
        self.slots.publish(ctx, epoch, &members, &joiners);
    }
}

impl Phaser for CentralPhaser {
    fn request_join(&self, ctx: &dyn MemCtx) -> u32 {
        self.slots.request_join(ctx)
    }

    fn await_join(&self, ctx: &dyn MemCtx, token: u32) -> u32 {
        self.slots.await_join(ctx, token)
    }

    fn arrive(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError> {
        self.slots.take_eviction(ctx)?;
        let slot = ctx.tid();
        let (epoch, count) = self.slots.decode(ctx);
        // Idempotent re-entry: a bounded wait that aborted after the
        // fetch_add must not arrive twice for the same epoch.
        if ctx.load(self.slots.last_arrived_of(slot)) != epoch {
            ctx.store(self.slots.last_arrived_of(slot), epoch);
            if ctx.fetch_add(self.arrivals, 1) + 1 == count {
                self.commit_boundary(ctx, epoch);
            }
        }
        Ok(epoch)
    }

    fn wait_epoch(&self, ctx: &dyn MemCtx, epoch: u32) {
        ctx.spin_until_ge(self.slots.release, epoch);
    }

    fn deregister(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError> {
        self.slots.take_eviction(ctx)?;
        ctx.store(self.slots.state_of(ctx.tid()), LEAVE_REQ);
        let e = self.arrive(ctx)?;
        ctx.mark(phaser_mark(PH_LEFT, ctx.tid(), e));
        Ok(e)
    }

    fn find_victim(&self, ctx: &dyn MemCtx, epoch: u32) -> Option<usize> {
        if self.slots.decode(ctx).0 != epoch {
            return None; // the stalled epoch already committed
        }
        (0..self.slots.cap).find(|&slot| {
            self.slots.is_member(ctx, slot)
                && ctx.load(self.slots.last_arrived_of(slot)) < epoch
                && slot != ctx.tid()
        })
    }

    fn evict(&self, ctx: &dyn MemCtx, victim: usize, epoch: u32) -> bool {
        let (cur, count) = self.slots.decode(ctx);
        if cur != epoch || !self.slots.claim_eviction(ctx, victim, epoch) {
            return false;
        }
        // Proxy arrival (shyper's `add_barrier_count`): the survivor
        // arrives on the victim's behalf; if that was the last arrival the
        // evictor runs the boundary itself.
        ctx.store(self.slots.last_arrived_of(victim), epoch);
        if ctx.fetch_add(self.arrivals, 1) + 1 == count {
            self.commit_boundary(ctx, epoch);
        }
        true
    }

    fn epoch(&self, ctx: &dyn MemCtx) -> u32 {
        self.slots.decode(ctx).0
    }
    fn members(&self, ctx: &dyn MemCtx) -> u32 {
        self.slots.decode(ctx).1
    }
    fn name(&self) -> &str {
        "PH-CTR"
    }
}

impl Barrier for CentralPhaser {
    fn wait(&self, ctx: &dyn MemCtx) {
        self.arrive_and_wait(ctx).expect("fixed-membership phaser cannot be evicted");
    }
    fn name(&self) -> &str {
        Phaser::name(self)
    }
}

/// 4-ary arrival-tree phaser that **reparents** on membership change: the
/// champion recomputes the dense rank table (member slots in slot order →
/// ranks `0..count`) at every boundary, so each epoch's tree spans exactly
/// the committed members. Rank `r`'s children are ranks `4r+1..=4r+4`
/// (clamped to the member count); internal ranks aggregate child arrivals
/// through per-rank padded counters, rank 0 commits the boundary.
pub struct TreePhaser {
    slots: Slots,
    /// Per-slot rank table, written by the champion: `0` = "use the slot
    /// number" (valid only for the initial membership, where slots 0..p
    /// are ranks 0..p), otherwise `rank + 1`.
    rank_of: Addr,
    /// Per-rank child-arrival counters.
    counter: Addr,
}

const FANIN: usize = 4;

impl TreePhaser {
    /// See [`CentralPhaser::new`]; same slot semantics, tree arrivals.
    pub fn new(arena: &mut Arena, cap: usize, initial: usize, topo: &Topology) -> Self {
        let line = topo.cacheline_bytes();
        Self {
            slots: Slots::new(arena, cap, initial, topo),
            rank_of: arena.alloc_padded_u32_array(cap, line),
            counter: arena.alloc_padded_u32_array(cap, line),
        }
    }

    /// Fixed-membership construction, for the registry / `Barrier` uses.
    pub fn full(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        Self::new(arena, p, p, topo)
    }

    fn rank_addr(&self, slot: usize) -> Addr {
        padded_elem(self.rank_of, slot, self.slots.stride)
    }
    fn counter_addr(&self, rank: usize) -> Addr {
        padded_elem(self.counter, rank, self.slots.stride)
    }

    fn rank(&self, ctx: &dyn MemCtx, slot: usize) -> usize {
        match ctx.load(self.rank_addr(slot)) {
            0 => slot,
            r => r as usize - 1,
        }
    }

    fn nchildren(rank: usize, count: u32) -> usize {
        let lo = FANIN * rank + 1;
        (count as usize).saturating_sub(lo).min(FANIN)
    }

    fn commit_boundary(&self, ctx: &dyn MemCtx, epoch: u32) {
        let (members, joiners) = self.slots.apply_transitions(ctx);
        // Reparent: dense ranks over the new member set, in slot order.
        for (rank, &slot) in members.iter().enumerate() {
            ctx.store(self.rank_addr(slot), rank as u32 + 1);
        }
        self.slots.publish(ctx, epoch, &members, &joiners);
    }

    /// Consumes a complete child set and propagates the arrival upward
    /// from `rank` (running the boundary at rank 0). Shared by the normal
    /// arrival path and the eviction proxy. The counter reset is safe
    /// before the parent bump: every counter in the tree is reset before
    /// the root can commit, so next-epoch bumps always land on zero.
    fn propagate(&self, ctx: &dyn MemCtx, rank: usize, epoch: u32, count: u32) {
        if Self::nchildren(rank, count) > 0 {
            ctx.store(self.counter_addr(rank), 0);
        }
        if rank == 0 {
            self.commit_boundary(ctx, epoch);
        } else {
            ctx.fetch_add(self.counter_addr((rank - 1) / FANIN), 1);
        }
    }
}

impl Phaser for TreePhaser {
    fn request_join(&self, ctx: &dyn MemCtx) -> u32 {
        self.slots.request_join(ctx)
    }

    fn await_join(&self, ctx: &dyn MemCtx, token: u32) -> u32 {
        self.slots.await_join(ctx, token)
    }

    fn arrive(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError> {
        self.slots.take_eviction(ctx)?;
        let slot = ctx.tid();
        let (epoch, count) = self.slots.decode(ctx);
        ctx.store(self.slots.last_arrived_of(slot), epoch);
        let rank = self.rank(ctx, slot);
        let nch = Self::nchildren(rank, count);
        // The only blocking point of `arrive`: a bounded wait that aborts
        // here consumed nothing, so re-entering `arrive` simply re-spins.
        if nch > 0 {
            ctx.spin_until_eq(self.counter_addr(rank), nch as u32);
        }
        self.propagate(ctx, rank, epoch, count);
        Ok(epoch)
    }

    fn wait_epoch(&self, ctx: &dyn MemCtx, epoch: u32) {
        ctx.spin_until_ge(self.slots.release, epoch);
    }

    fn deregister(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError> {
        self.slots.take_eviction(ctx)?;
        ctx.store(self.slots.state_of(ctx.tid()), LEAVE_REQ);
        let e = self.arrive(ctx)?;
        ctx.mark(phaser_mark(PH_LEFT, ctx.tid(), e));
        Ok(e)
    }

    fn find_victim(&self, ctx: &dyn MemCtx, epoch: u32) -> Option<usize> {
        let (cur, count) = self.slots.decode(ctx);
        if cur != epoch {
            return None; // the stalled epoch already committed
        }
        // Deepest stalled member whose own subtree is complete, so the
        // proxy arrival can propagate without waiting in the victim's
        // stead. Ranks grow with depth, so scanning for the max rank
        // finds the deepest; a stalled member with an incomplete subtree
        // is not yet attributable (a descendant is the real stall).
        let mut best: Option<(usize, usize)> = None;
        for slot in 0..self.slots.cap {
            if slot == ctx.tid()
                || !self.slots.is_member(ctx, slot)
                || ctx.load(self.slots.last_arrived_of(slot)) >= epoch
            {
                continue;
            }
            let rank = self.rank(ctx, slot);
            let nch = Self::nchildren(rank, count);
            if nch > 0 && ctx.load(self.counter_addr(rank)) != nch as u32 {
                continue;
            }
            if best.is_none_or(|(r, _)| rank > r) {
                best = Some((rank, slot));
            }
        }
        best.map(|(_, slot)| slot)
    }

    fn evict(&self, ctx: &dyn MemCtx, victim: usize, epoch: u32) -> bool {
        let (cur, count) = self.slots.decode(ctx);
        if cur != epoch || !self.slots.claim_eviction(ctx, victim, epoch) {
            return false;
        }
        ctx.store(self.slots.last_arrived_of(victim), epoch);
        self.propagate(ctx, self.rank(ctx, victim), epoch, count);
        true
    }

    fn epoch(&self, ctx: &dyn MemCtx) -> u32 {
        self.slots.decode(ctx).0
    }
    fn members(&self, ctx: &dyn MemCtx) -> u32 {
        self.slots.decode(ctx).1
    }
    fn name(&self) -> &str {
        "PH-TREE"
    }
}

impl Barrier for TreePhaser {
    fn wait(&self, ctx: &dyn MemCtx) {
        self.arrive_and_wait(ctx).expect("fixed-membership phaser cannot be evicted");
    }
    fn name(&self) -> &str {
        Phaser::name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_simcoh::SimBuilder;
    use armbar_topology::Platform;
    use std::sync::Arc;

    fn topo() -> Arc<Topology> {
        Arc::new(Topology::preset(Platform::Kunpeng920))
    }

    fn build(
        which: &str,
        arena: &mut Arena,
        cap: usize,
        initial: usize,
        t: &Topology,
    ) -> Arc<dyn Phaser> {
        match which {
            "ctr" => Arc::new(CentralPhaser::new(arena, cap, initial, t)),
            "tree" => Arc::new(TreePhaser::new(arena, cap, initial, t)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn mark_encoding_round_trips() {
        for (kind, slot, epoch) in [(PH_JOINED, 0, 1), (PH_EVICTED, 4094, 4095), (PH_LEFT, 7, 9)] {
            assert_eq!(
                decode_phaser_mark(phaser_mark(kind, slot, epoch)),
                Some((kind, slot, epoch))
            );
        }
        assert_eq!(decode_phaser_mark(crate::env::MARK_ENTER), None);
        assert_eq!(decode_phaser_mark(0), None);
    }

    #[test]
    fn stale_epoch_recovery_cannot_evict() {
        // Regression: a recoverer whose timeout straddles a boundary
        // commit holds a victim search licensed by the *old* epoch. Once
        // the boundary moves, that license is dead — scanning the fresh
        // epoch (where nobody has arrived yet) must name no victim, and a
        // stale eviction claim must lose.
        for which in ["ctr", "tree"] {
            let t = topo();
            let mut arena = Arena::new();
            let ph = build(which, &mut arena, 4, 4, &t);
            SimBuilder::new(Arc::clone(&t), 4)
                .run({
                    let ph = Arc::clone(&ph);
                    move |ctx| {
                        ph.arrive_and_wait(ctx).unwrap();
                        if ctx.tid() == 0 {
                            // Epoch 1 committed; a vote still pinned to it
                            // must be inert.
                            assert_eq!(ph.find_victim(ctx, 1), None, "{which}");
                            assert!(!ph.evict(ctx, 1, 1), "{which}");
                            // The fresh epoch has no arrivals yet — that
                            // is not evidence of a stall either way; the
                            // scan may name a peer only for the *current*
                            // epoch, which a real detector reaches only
                            // after a timeout.
                        }
                        ph.arrive_and_wait(ctx).unwrap();
                    }
                })
                .unwrap();
        }
    }

    #[test]
    fn fixed_membership_phasers_run_as_barriers() {
        for which in ["ctr", "tree"] {
            let t = topo();
            let mut arena = Arena::new();
            let ph = build(which, &mut arena, 8, 8, &t);
            let stats = SimBuilder::new(Arc::clone(&t), 8)
                .run({
                    let ph = Arc::clone(&ph);
                    move |ctx| {
                        for e in 1..=5u32 {
                            assert_eq!(ph.arrive_and_wait(ctx).unwrap(), e, "{which}");
                        }
                    }
                })
                .unwrap();
            assert!(stats.max_time_ns() > 0.0);
        }
    }

    #[test]
    fn late_joiner_participates_from_its_ack_epoch() {
        for which in ["ctr", "tree"] {
            let t = topo();
            let mut arena = Arena::new();
            let ph = build(which, &mut arena, 6, 5, &t);
            SimBuilder::new(Arc::clone(&t), 6)
                .run({
                    let ph = Arc::clone(&ph);
                    move |ctx| {
                        if ctx.tid() == 5 {
                            let k = ph.register(ctx);
                            assert!(
                                (2..=6).contains(&k),
                                "{which}: join commits at a boundary, got {k}"
                            );
                            // A member must keep arriving until it leaves;
                            // run through the team's final epoch.
                            for e in k..=6 {
                                assert_eq!(ph.arrive_and_wait(ctx).unwrap(), e, "{which}");
                            }
                        } else {
                            let mut last = 0;
                            for _ in 0..6 {
                                last = ph.arrive_and_wait(ctx).unwrap();
                            }
                            assert_eq!(last, 6, "{which}");
                            assert_eq!(ph.members(ctx), 6, "{which}: joiner counted");
                        }
                    }
                })
                .unwrap();
        }
    }

    #[test]
    fn leaver_drops_out_at_the_boundary() {
        for which in ["ctr", "tree"] {
            let t = topo();
            let mut arena = Arena::new();
            let ph = build(which, &mut arena, 8, 8, &t);
            SimBuilder::new(Arc::clone(&t), 8)
                .run({
                    let ph = Arc::clone(&ph);
                    move |ctx| {
                        ph.arrive_and_wait(ctx).unwrap();
                        if ctx.tid() == 3 {
                            // Final arrival for epoch 2; gone afterwards.
                            assert_eq!(ph.deregister(ctx).unwrap(), 2, "{which}");
                        } else {
                            for e in 2..=4u32 {
                                assert_eq!(ph.arrive_and_wait(ctx).unwrap(), e, "{which}");
                            }
                            assert_eq!(ph.members(ctx), 7, "{which}: leaver dropped");
                        }
                    }
                })
                .unwrap();
        }
    }

    #[test]
    fn flap_leave_then_rejoin_same_slot() {
        for which in ["ctr", "tree"] {
            let t = topo();
            let mut arena = Arena::new();
            let ph = build(which, &mut arena, 4, 4, &t);
            SimBuilder::new(Arc::clone(&t), 4)
                .run({
                    let ph = Arc::clone(&ph);
                    move |ctx| {
                        if ctx.tid() == 1 {
                            let e = ph.deregister(ctx).unwrap();
                            ph.wait_epoch(ctx, e); // leave must commit first
                            let k = ph.register(ctx);
                            assert!(k > e, "{which}: rejoined for a later epoch");
                            assert!(k <= 6, "{which}: rejoin ack ran away: {k}");
                            for e in k..=6 {
                                assert_eq!(ph.arrive_and_wait(ctx).unwrap(), e, "{which}");
                            }
                        } else {
                            for _ in 0..6 {
                                ph.arrive_and_wait(ctx).unwrap();
                            }
                        }
                    }
                })
                .unwrap();
        }
    }

    #[test]
    fn eviction_completes_the_epoch_and_reports_once() {
        for which in ["ctr", "tree"] {
            let t = topo();
            let mut arena = Arena::new();
            let ph = build(which, &mut arena, 4, 4, &t);
            SimBuilder::new(Arc::clone(&t), 4)
                .run({
                    let ph = Arc::clone(&ph);
                    move |ctx| {
                        ph.arrive_and_wait(ctx).unwrap();
                        match ctx.tid() {
                            2 => {
                                // Deserts epoch 2. Waiting the release is
                                // legal without arriving; the next arrival
                                // then reports the eviction exactly once.
                                ph.wait_epoch(ctx, 2);
                                let err = ph.arrive_and_wait(ctx).unwrap_err();
                                assert_eq!(
                                    err,
                                    BarrierError::Evicted { tid: 2, episode: 2 },
                                    "{which}"
                                );
                            }
                            // Tid 3 detects: it is a leaf in the tree
                            // variant, so its own `arrive` never blocks and
                            // it is free to run the eviction.
                            3 => {
                                ph.arrive(ctx).unwrap();
                                loop {
                                    // Transient scans may blame a slow but
                                    // healthy peer; a real detector only
                                    // runs this after a timeout. Wait for
                                    // the stall to pin on the deserter.
                                    match ph.find_victim(ctx, 2) {
                                        Some(2) => break,
                                        _ => ctx.compute_ns(50.0),
                                    }
                                }
                                assert!(ph.evict(ctx, 2, 2), "{which}");
                                ph.wait_epoch(ctx, 2);
                                assert_eq!(ph.members(ctx), 3, "{which}: reformed P-1");
                                ph.arrive_and_wait(ctx).unwrap();
                            }
                            _ => {
                                ph.arrive_and_wait(ctx).unwrap();
                                ph.arrive_and_wait(ctx).unwrap();
                            }
                        }
                    }
                })
                .unwrap();
        }
    }
}

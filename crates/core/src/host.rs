//! Host-atomics backend: a real shared-memory arena for real threads.
//!
//! [`HostMem`] materializes an [`armbar_simcoh::Arena`] layout as one
//! contiguous slab of `AtomicU32`s, so the exact flag placement chosen by a
//! barrier's constructor (packed vs. cache-line padded) is preserved on the
//! host. Memory orderings follow the idioms of *Rust Atomics and Locks*:
//! flag publication is Release, flag observation is Acquire, counters are
//! AcqRel read-modify-writes.
//!
//! Spin loops issue [`std::hint::spin_loop`] and yield to the OS
//! periodically, so barriers remain live even when threads are heavily
//! oversubscribed (e.g. 64 simulated participants on a laptop core).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use armbar_simcoh::{Addr, Arena};

use crate::env::MemCtx;

/// How many spin iterations between `yield_now` calls. Low enough that an
/// oversubscribed host makes progress, high enough that dedicated cores
/// rarely leave userspace.
const SPINS_PER_YIELD: u32 = 128;

/// A shared arena of host atomics matching an [`Arena`] layout.
pub struct HostMem {
    words: Box<[AtomicU32]>,
}

impl HostMem {
    /// Materializes backing storage for everything allocated from `arena`
    /// so far. All words start at zero, mirroring the simulator.
    pub fn new(arena: &Arena) -> Arc<Self> {
        let n_words = arena.len().div_ceil(4);
        let words = (0..n_words).map(|_| AtomicU32::new(0)).collect();
        Arc::new(Self { words })
    }

    /// A per-thread operation context. `nthreads` is the number of barrier
    /// participants; `tid` must be unique per participant.
    ///
    /// # Panics
    /// Panics if `tid >= nthreads`.
    pub fn ctx(self: &Arc<Self>, tid: usize, nthreads: usize) -> HostCtx {
        assert!(tid < nthreads, "tid {tid} out of range for {nthreads} threads");
        HostCtx { mem: Arc::clone(self), tid, nthreads }
    }

    #[inline]
    fn word(&self, addr: Addr) -> &AtomicU32 {
        debug_assert_eq!(addr % 4, 0, "unaligned access at {addr:#x}");
        &self.words[(addr / 4) as usize]
    }
}

/// Per-thread handle over a [`HostMem`].
pub struct HostCtx {
    mem: Arc<HostMem>,
    tid: usize,
    nthreads: usize,
}

impl HostCtx {
    fn spin<F: Fn(u32) -> bool>(&self, addr: Addr, pred: F) -> u32 {
        let w = self.mem.word(addr);
        let mut spins = 0u32;
        loop {
            let v = w.load(Ordering::Acquire);
            if pred(v) {
                return v;
            }
            spins += 1;
            if spins.is_multiple_of(SPINS_PER_YIELD) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl MemCtx for HostCtx {
    fn tid(&self) -> usize {
        self.tid
    }
    fn nthreads(&self) -> usize {
        self.nthreads
    }
    fn load(&self, addr: Addr) -> u32 {
        self.mem.word(addr).load(Ordering::Acquire)
    }
    fn store(&self, addr: Addr, value: u32) {
        self.mem.word(addr).store(value, Ordering::Release)
    }
    fn fetch_add(&self, addr: Addr, delta: u32) -> u32 {
        self.mem.word(addr).fetch_add(delta, Ordering::AcqRel)
    }
    fn spin_until_eq(&self, addr: Addr, value: u32) -> u32 {
        self.spin(addr, |v| v == value)
    }
    fn spin_until_ge(&self, addr: Addr, value: u32) -> u32 {
        self.spin(addr, |v| v >= value)
    }
    fn spin_until_all_ge(&self, addrs: &[Addr], value: u32) {
        // One polling loop over all flags: the loads of different lines
        // issue back-to-back, letting the misses overlap.
        let mut spins = 0u32;
        loop {
            if addrs.iter().all(|&a| self.mem.word(a).load(Ordering::Acquire) >= value) {
                return;
            }
            spins += 1;
            if spins.is_multiple_of(SPINS_PER_YIELD) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
    fn compute_ns(&self, ns: f64) {
        // Host-side "work": a calibration-free busy wait. Coarse, but the
        // harness only needs the work to take *roughly* this long.
        let start = std::time::Instant::now();
        let target = std::time::Duration::from_nanos(ns as u64);
        while start.elapsed() < target {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_layout_is_materialized() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let b = arena.alloc_padded_u32(64);
        let mem = HostMem::new(&arena);
        let ctx = mem.ctx(0, 1);
        ctx.store(a, 11);
        ctx.store(b, 22);
        assert_eq!(ctx.load(a), 11);
        assert_eq!(ctx.load(b), 22);
    }

    #[test]
    fn fetch_add_is_atomic_across_threads() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let mem = HostMem::new(&arena);
        let threads = 4;
        let iters = 1000;
        std::thread::scope(|s| {
            for t in 0..threads {
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    let ctx = mem.ctx(t, threads);
                    for _ in 0..iters {
                        ctx.fetch_add(a, 1);
                    }
                });
            }
        });
        let ctx = mem.ctx(0, threads);
        assert_eq!(ctx.load(a), (threads * iters) as u32);
    }

    #[test]
    fn spin_until_sees_release_store() {
        let mut arena = Arena::new();
        let flag = arena.alloc_u32();
        let data = arena.alloc_u32();
        let mem = HostMem::new(&arena);
        std::thread::scope(|s| {
            {
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    let ctx = mem.ctx(0, 2);
                    ctx.store(data, 99);
                    ctx.store(flag, 1);
                });
            }
            let ctx = mem.ctx(1, 2);
            ctx.spin_until_eq(flag, 1);
            // Release/Acquire pairing makes the data store visible.
            assert_eq!(ctx.load(data), 99);
        });
    }

    #[test]
    fn spin_until_ge_handles_overshoot() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let mem = HostMem::new(&arena);
        let ctx = mem.ctx(0, 1);
        ctx.store(a, 10);
        assert_eq!(ctx.spin_until_ge(a, 3), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ctx_validates_tid() {
        let arena = Arena::new();
        let mem = HostMem::new(&arena);
        let _ = mem.ctx(3, 2);
    }

    #[test]
    fn compute_ns_takes_time() {
        let arena = Arena::new();
        let mem = HostMem::new(&arena);
        let ctx = mem.ctx(0, 1);
        let t0 = std::time::Instant::now();
        ctx.compute_ns(2_000_000.0); // 2 ms
        assert!(t0.elapsed() >= std::time::Duration::from_millis(2));
    }
}

//! Host-atomics backend: a real shared-memory arena for real threads.
//!
//! [`HostMem`] materializes an [`armbar_simcoh::Arena`] layout as one
//! contiguous slab of `AtomicU32`s, so the exact flag placement chosen by a
//! barrier's constructor (packed vs. cache-line padded) is preserved on the
//! host. Memory orderings follow the idioms of *Rust Atomics and Locks*:
//! flag publication is Release, flag observation is Acquire, counters are
//! AcqRel read-modify-writes.
//!
//! Spin loops follow a three-stage [`SpinPolicy`]: busy spinning with
//! [`std::hint::spin_loop`], then periodic `yield_now`, then capped
//! exponential-backoff sleeping — so barriers stay live *and* stop burning
//! whole cores when threads are heavily oversubscribed (e.g. 64 simulated
//! participants on a laptop core). The thresholds are configurable per
//! context ([`HostMem::ctx_with_policy`]) or process-wide via environment
//! variables (`ARMBAR_SPIN_YIELD`, `ARMBAR_BACKOFF_CAP_US`).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use armbar_simcoh::{Addr, Arena};

use crate::env::MemCtx;

/// Staged waiting strategy for host spin loops: `spins_per_yield` busy
/// iterations between yields, `yields_before_backoff` yields before the
/// loop starts sleeping, then exponential backoff from `initial_backoff`
/// doubling up to `max_backoff`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpinPolicy {
    /// Busy-spin iterations between `yield_now` calls. Low enough that an
    /// oversubscribed host makes progress, high enough that dedicated
    /// cores rarely leave userspace.
    pub spins_per_yield: u32,
    /// Yields before the waiter escalates to sleeping.
    pub yields_before_backoff: u32,
    /// First sleep once backoff begins.
    pub initial_backoff: Duration,
    /// Ceiling of the exponential backoff — bounds worst-case wakeup
    /// latency once a waiter has gone to sleep.
    pub max_backoff: Duration,
}

impl Default for SpinPolicy {
    fn default() -> Self {
        Self {
            spins_per_yield: 128,
            yields_before_backoff: 64,
            initial_backoff: Duration::from_micros(20),
            max_backoff: Duration::from_millis(1),
        }
    }
}

impl SpinPolicy {
    /// The process-wide policy: the default, overridden by the environment
    /// variables `ARMBAR_SPIN_YIELD` (spins between yields) and
    /// `ARMBAR_BACKOFF_CAP_US` (backoff ceiling, microseconds; `0` disables
    /// sleeping entirely). Read once and cached.
    pub fn from_env() -> Self {
        static CACHED: std::sync::OnceLock<SpinPolicy> = std::sync::OnceLock::new();
        CACHED
            .get_or_init(|| {
                Self::from_vars(
                    std::env::var("ARMBAR_SPIN_YIELD").ok().as_deref(),
                    std::env::var("ARMBAR_BACKOFF_CAP_US").ok().as_deref(),
                )
            })
            .clone()
    }

    /// Applies the environment-variable overrides to the default policy,
    /// reporting rejected values on stderr (once per process): a spin
    /// override silently replaced by the default would make a liveness
    /// tuning knob appear to work while doing nothing.
    fn from_vars(spin_yield: Option<&str>, cap_us: Option<&str>) -> Self {
        let (p, warnings) = Self::from_vars_checked(spin_yield, cap_us);
        if !warnings.is_empty() {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                for w in &warnings {
                    eprintln!("armbar: {w}");
                }
            });
        }
        p
    }

    /// The override logic itself: returns the resulting policy plus one
    /// warning per rejected value. A valid `spin_yield` must be a positive
    /// integer; a `cap_us` of zero is valid and turns backoff off (pure
    /// spin + yield).
    fn from_vars_checked(spin_yield: Option<&str>, cap_us: Option<&str>) -> (Self, Vec<String>) {
        let mut p = Self::default();
        let mut warnings = Vec::new();
        match spin_yield.map(|s| (s, s.trim().parse::<u32>())) {
            Some((_, Ok(n))) if n > 0 => p.spins_per_yield = n,
            Some((raw, _)) => warnings.push(format!(
                "ignoring ARMBAR_SPIN_YIELD={raw:?} (expected a positive integer); \
                 using the default of {}",
                p.spins_per_yield
            )),
            None => {}
        }
        match cap_us.map(|s| (s, s.trim().parse::<u64>())) {
            Some((_, Ok(0))) => p.yields_before_backoff = u32::MAX,
            Some((_, Ok(us))) => {
                p.max_backoff = Duration::from_micros(us);
                p.initial_backoff = p.initial_backoff.min(p.max_backoff);
            }
            Some((raw, Err(_))) => warnings.push(format!(
                "ignoring ARMBAR_BACKOFF_CAP_US={raw:?} (expected microseconds, 0 disables \
                 backoff); using the default of {} us",
                p.max_backoff.as_micros()
            )),
            None => {}
        }
        (p, warnings)
    }

    /// A fresh staged waiter following this policy.
    pub fn waiter(&self) -> SpinWait<'_> {
        SpinWait { policy: self, spins: 0, yields: 0, backoff: self.initial_backoff }
    }
}

/// Cursor through one spin episode: call [`SpinWait::pause`] after every
/// failed poll and it escalates spin → yield → capped exponential sleep.
pub struct SpinWait<'a> {
    policy: &'a SpinPolicy,
    spins: u64,
    yields: u32,
    backoff: Duration,
}

impl SpinWait<'_> {
    /// One wait step at the current escalation level.
    pub fn pause(&mut self) {
        self.spins += 1;
        if !self.spins.is_multiple_of(self.policy.spins_per_yield as u64) {
            std::hint::spin_loop();
            return;
        }
        if self.yields < self.policy.yields_before_backoff {
            self.yields += 1;
            std::thread::yield_now();
            return;
        }
        std::thread::sleep(self.backoff);
        self.backoff = (self.backoff * 2).min(self.policy.max_backoff);
    }

    /// Failed polls so far.
    pub fn spins(&self) -> u64 {
        self.spins
    }
}

/// A shared arena of host atomics matching an [`Arena`] layout.
pub struct HostMem {
    words: Box<[AtomicU32]>,
}

impl HostMem {
    /// Materializes backing storage for everything allocated from `arena`
    /// so far. All words start at zero, mirroring the simulator.
    pub fn new(arena: &Arena) -> Arc<Self> {
        let n_words = arena.len().div_ceil(4);
        let words = (0..n_words).map(|_| AtomicU32::new(0)).collect();
        Arc::new(Self { words })
    }

    /// A per-thread operation context using the process-wide
    /// [`SpinPolicy::from_env`]. `nthreads` is the number of barrier
    /// participants; `tid` must be unique per participant.
    ///
    /// # Panics
    /// Panics if `tid >= nthreads`.
    pub fn ctx(self: &Arc<Self>, tid: usize, nthreads: usize) -> HostCtx {
        self.ctx_with_policy(tid, nthreads, SpinPolicy::from_env())
    }

    /// Like [`HostMem::ctx`], but with an explicit spin policy — the
    /// builder knob for callers that know their subscription level.
    ///
    /// # Panics
    /// Panics if `tid >= nthreads`.
    pub fn ctx_with_policy(
        self: &Arc<Self>,
        tid: usize,
        nthreads: usize,
        policy: SpinPolicy,
    ) -> HostCtx {
        assert!(tid < nthreads, "tid {tid} out of range for {nthreads} threads");
        HostCtx { mem: Arc::clone(self), tid, nthreads, policy }
    }

    #[inline]
    fn word(&self, addr: Addr) -> &AtomicU32 {
        debug_assert_eq!(addr % 4, 0, "unaligned access at {addr:#x}");
        &self.words[(addr / 4) as usize]
    }
}

/// Per-thread handle over a [`HostMem`].
pub struct HostCtx {
    mem: Arc<HostMem>,
    tid: usize,
    nthreads: usize,
    policy: SpinPolicy,
}

impl HostCtx {
    /// This context's staged-waiting configuration.
    pub fn policy(&self) -> &SpinPolicy {
        &self.policy
    }

    fn spin<F: Fn(u32) -> bool>(&self, addr: Addr, pred: F) -> u32 {
        let w = self.mem.word(addr);
        let mut wait = self.policy.waiter();
        loop {
            let v = w.load(Ordering::Acquire);
            if pred(v) {
                return v;
            }
            wait.pause();
        }
    }
}

impl MemCtx for HostCtx {
    fn tid(&self) -> usize {
        self.tid
    }
    fn nthreads(&self) -> usize {
        self.nthreads
    }
    fn load(&self, addr: Addr) -> u32 {
        self.mem.word(addr).load(Ordering::Acquire)
    }
    fn store(&self, addr: Addr, value: u32) {
        self.mem.word(addr).store(value, Ordering::Release)
    }
    fn load_relaxed(&self, addr: Addr) -> u32 {
        self.mem.word(addr).load(Ordering::Relaxed)
    }
    fn store_relaxed(&self, addr: Addr, value: u32) {
        self.mem.word(addr).store(value, Ordering::Relaxed)
    }
    fn fence(&self) {
        std::sync::atomic::fence(Ordering::SeqCst)
    }
    fn fetch_add(&self, addr: Addr, delta: u32) -> u32 {
        self.mem.word(addr).fetch_add(delta, Ordering::AcqRel)
    }
    fn compare_exchange(&self, addr: Addr, current: u32, new: u32) -> u32 {
        match self.mem.word(addr).compare_exchange(
            current,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(prev) | Err(prev) => prev,
        }
    }
    fn swap(&self, addr: Addr, new: u32) -> u32 {
        self.mem.word(addr).swap(new, Ordering::AcqRel)
    }
    fn spin_until_eq(&self, addr: Addr, value: u32) -> u32 {
        self.spin(addr, |v| v == value)
    }
    fn spin_until_ge(&self, addr: Addr, value: u32) -> u32 {
        self.spin(addr, |v| v >= value)
    }
    fn spin_until_all_ge(&self, addrs: &[Addr], value: u32) {
        // One polling loop over all flags: the loads of different lines
        // issue back-to-back, letting the misses overlap.
        let mut wait = self.policy.waiter();
        loop {
            if addrs.iter().all(|&a| self.mem.word(a).load(Ordering::Acquire) >= value) {
                return;
            }
            wait.pause();
        }
    }
    fn compute_ns(&self, ns: f64) {
        // Host-side "work": a calibration-free busy wait. Coarse, but the
        // harness only needs the work to take *roughly* this long.
        let start = std::time::Instant::now();
        let target = std::time::Duration::from_nanos(ns as u64);
        while start.elapsed() < target {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_layout_is_materialized() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let b = arena.alloc_padded_u32(64);
        let mem = HostMem::new(&arena);
        let ctx = mem.ctx(0, 1);
        ctx.store(a, 11);
        ctx.store(b, 22);
        assert_eq!(ctx.load(a), 11);
        assert_eq!(ctx.load(b), 22);
    }

    #[test]
    fn fetch_add_is_atomic_across_threads() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let mem = HostMem::new(&arena);
        let threads = 4;
        let iters = 1000;
        std::thread::scope(|s| {
            for t in 0..threads {
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    let ctx = mem.ctx(t, threads);
                    for _ in 0..iters {
                        ctx.fetch_add(a, 1);
                    }
                });
            }
        });
        let ctx = mem.ctx(0, threads);
        assert_eq!(ctx.load(a), (threads * iters) as u32);
    }

    #[test]
    fn spin_until_sees_release_store() {
        let mut arena = Arena::new();
        let flag = arena.alloc_u32();
        let data = arena.alloc_u32();
        let mem = HostMem::new(&arena);
        std::thread::scope(|s| {
            {
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    let ctx = mem.ctx(0, 2);
                    ctx.store(data, 99);
                    ctx.store(flag, 1);
                });
            }
            let ctx = mem.ctx(1, 2);
            ctx.spin_until_eq(flag, 1);
            // Release/Acquire pairing makes the data store visible.
            assert_eq!(ctx.load(data), 99);
        });
    }

    #[test]
    fn spin_until_ge_handles_overshoot() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let mem = HostMem::new(&arena);
        let ctx = mem.ctx(0, 1);
        ctx.store(a, 10);
        assert_eq!(ctx.spin_until_ge(a, 3), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ctx_validates_tid() {
        let arena = Arena::new();
        let mem = HostMem::new(&arena);
        let _ = mem.ctx(3, 2);
    }

    #[test]
    fn compute_ns_takes_time() {
        let arena = Arena::new();
        let mem = HostMem::new(&arena);
        let ctx = mem.ctx(0, 1);
        let t0 = std::time::Instant::now();
        ctx.compute_ns(2_000_000.0); // 2 ms
        assert!(t0.elapsed() >= std::time::Duration::from_millis(2));
    }

    #[test]
    fn env_overrides_parse_and_clamp() {
        let p = SpinPolicy::from_vars(Some("512"), Some("5000"));
        assert_eq!(p.spins_per_yield, 512);
        assert_eq!(p.max_backoff, Duration::from_millis(5));
        assert!(p.initial_backoff <= p.max_backoff);

        // Garbage and zero spin values fall back to the default.
        let d = SpinPolicy::default();
        assert_eq!(SpinPolicy::from_vars(Some("bogus"), None), d);
        assert_eq!(SpinPolicy::from_vars(Some("0"), None).spins_per_yield, d.spins_per_yield);

        // Cap of zero disables sleeping.
        assert_eq!(SpinPolicy::from_vars(None, Some("0")).yields_before_backoff, u32::MAX);

        // A cap below the initial sleep drags the initial sleep down.
        let tight = SpinPolicy::from_vars(None, Some("1"));
        assert_eq!(tight.initial_backoff, Duration::from_micros(1));
    }

    #[test]
    fn malformed_env_overrides_warn_instead_of_silently_defaulting() {
        // Valid values: no warnings.
        let (_, w) = SpinPolicy::from_vars_checked(Some("512"), Some("0"));
        assert!(w.is_empty(), "{w:?}");
        let (_, w) = SpinPolicy::from_vars_checked(None, None);
        assert!(w.is_empty(), "{w:?}");

        // Unparseable values are rejected loudly, naming the variable.
        let (p, w) = SpinPolicy::from_vars_checked(Some("fast"), Some("1e6"));
        assert_eq!(p, SpinPolicy::default());
        assert_eq!(w.len(), 2);
        assert!(w[0].contains("ARMBAR_SPIN_YIELD=\"fast\""), "{}", w[0]);
        assert!(w[1].contains("ARMBAR_BACKOFF_CAP_US=\"1e6\""), "{}", w[1]);

        // Zero spins-per-yield would mean "yield every iteration, never
        // spin" — out of the knob's domain, so it warns too.
        let (p, w) = SpinPolicy::from_vars_checked(Some("0"), None);
        assert_eq!(p.spins_per_yield, SpinPolicy::default().spins_per_yield);
        assert_eq!(w.len(), 1);

        // One bad value does not take the other down with it.
        let (p, w) = SpinPolicy::from_vars_checked(Some("-7"), Some("250"));
        assert_eq!(p.max_backoff, Duration::from_micros(250));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn spin_wait_escalates_to_sleeping() {
        // One spin per yield and zero yields: every pause sleeps, so a
        // handful of pauses must take measurable wall time and the backoff
        // must stay capped.
        let p = SpinPolicy {
            spins_per_yield: 1,
            yields_before_backoff: 0,
            initial_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(400),
        };
        let mut w = p.waiter();
        let t0 = std::time::Instant::now();
        for _ in 0..4 {
            w.pause();
        }
        // 100 + 200 + 400 + 400 us of sleeping, minus scheduler slop.
        assert!(t0.elapsed() >= Duration::from_micros(900), "{:?}", t0.elapsed());
        assert_eq!(w.spins(), 4);
        assert_eq!(w.backoff, p.max_backoff);
    }

    #[test]
    fn oversubscribed_spin_completes() {
        // More waiter threads than the host is likely to have cores, all
        // released by one late store: the staged policy must not starve the
        // releasing thread.
        let mut arena = Arena::new();
        let flag = arena.alloc_u32();
        let mem = HostMem::new(&arena);
        let waiters = 16;
        let policy = SpinPolicy {
            spins_per_yield: 8,
            yields_before_backoff: 4,
            initial_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(200),
        };
        std::thread::scope(|s| {
            for t in 1..=waiters {
                let mem = Arc::clone(&mem);
                let policy = policy.clone();
                s.spawn(move || {
                    let ctx = mem.ctx_with_policy(t, waiters + 1, policy);
                    assert_eq!(ctx.spin_until_eq(flag, 7), 7);
                });
            }
            let ctx = mem.ctx(0, waiters + 1);
            ctx.compute_ns(1_000_000.0); // 1 ms head start for the waiters
            ctx.store(flag, 7);
        });
    }
}

//! TOUR — the tournament barrier (Hensgen, Finkel & Manber; Section
//! II-B-2).
//!
//! `⌈log₂P⌉` rounds of statically paired play-offs: in round `k`, thread
//! `i` with `i mod 2^(k+1) == 0` is the *winner* and waits for the *loser*
//! `i + 2^k`, who signals its arrival and drops out to await the global
//! release. Thread 0 is the champion by construction and flips the global
//! (epoch-valued) wake word — the original algorithm's global wake-up.
//!
//! Equivalent to a bottom-up static combining tree with fan-in 2 but with
//! no atomic read-modify-writes anywhere: every flag has exactly one
//! writer, which is why static tournaments behave so well on the modeled
//! ARMv8 parts (Figure 7).

use armbar_simcoh::{arena::padded_elem, Addr, Arena};
use armbar_topology::Topology;

use crate::env::{Barrier, MemCtx};
use crate::wakeup::EpochSlots;

/// Pairwise tournament barrier with global wake-up.
#[derive(Debug)]
pub struct TournamentBarrier {
    /// `flags + line·i + 4·k` = round-`k` arrival flag of winner `i`,
    /// packed in winner `i`'s line (written by its round-`k` loser).
    flags: Addr,
    gwake: Addr,
    line: usize,
    rounds: usize,
    epochs: EpochSlots,
}

impl TournamentBarrier {
    /// Builds the barrier for `p` threads.
    pub fn new(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        assert!(p >= 1);
        let line = topo.cacheline_bytes();
        let rounds = (usize::BITS - (p - 1).leading_zeros()) as usize;
        assert!(4 * rounds.max(1) <= line, "round flags exceed a cache line");
        Self {
            flags: arena.alloc_padded_u32_array(p, line),
            gwake: arena.alloc_padded_u32(line),
            line,
            rounds,
            epochs: EpochSlots::new(arena, p, line),
        }
    }

    fn flag(&self, winner: usize, round: usize) -> Addr {
        padded_elem(self.flags, winner, self.line) + 4 * round as Addr
    }

    /// Number of play-off rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

impl Barrier for TournamentBarrier {
    fn wait(&self, ctx: &dyn MemCtx) {
        let p = ctx.nthreads();
        if p == 1 {
            return;
        }
        let me = ctx.tid();
        let e = self.epochs.next(ctx);

        for k in 0..self.rounds {
            let pair = 1usize << (k + 1);
            if me.is_multiple_of(pair) {
                let loser = me + (1 << k);
                if loser < p {
                    ctx.spin_until_ge(self.flag(me, k), e);
                }
                // Bye (loser ≥ p): advance unopposed.
            } else {
                let winner = me - (1 << k);
                ctx.store(self.flag(winner, k), e);
                ctx.spin_until_ge(self.gwake, e);
                return;
            }
        }
        // Champion (thread 0): global release.
        ctx.mark(crate::env::MARK_ARRIVED);
        ctx.store(self.gwake, e);
    }

    fn name(&self) -> &str {
        "TOUR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{check_host, check_sim, HOST_SIZES, SIM_SIZES};
    use armbar_topology::Platform;

    #[test]
    fn sim_correct_across_sizes() {
        for &p in &SIM_SIZES {
            check_sim(Platform::Phytium2000Plus, p, 4, |a, p, t| {
                Box::new(TournamentBarrier::new(a, p, t))
            });
        }
    }

    #[test]
    fn sim_correct_on_all_arm_platforms() {
        for platform in Platform::ARM {
            check_sim(platform, 64, 3, |a, p, t| Box::new(TournamentBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn host_correct_across_sizes() {
        for &p in &HOST_SIZES {
            check_host(p, 30, |a, p, t| Box::new(TournamentBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn round_count_is_ceil_log2() {
        let topo = Topology::preset(Platform::ThunderX2);
        for (p, want) in [(2usize, 1usize), (3, 2), (16, 4), (33, 6), (64, 6)] {
            let mut arena = Arena::new();
            assert_eq!(TournamentBarrier::new(&mut arena, p, &topo).rounds(), want, "p={p}");
        }
    }

    #[test]
    fn each_flag_has_one_static_writer() {
        // Round-k flag of winner w is written only by w + 2^k: check the
        // pairing arithmetic covers every thread exactly once per loss.
        let p = 64;
        let rounds = 6;
        let mut writers = std::collections::HashMap::new();
        for i in 0..p {
            for k in 0..rounds {
                let pair = 1usize << (k + 1);
                if i % pair != 0 {
                    let winner = i - (1 << k);
                    assert!(writers.insert((winner, k), i).is_none());
                    break;
                }
            }
        }
        // Everyone but the champion loses exactly once.
        assert_eq!(writers.len(), p - 1);
    }
}

//! Shared correctness harness for barrier implementations.
//!
//! The fundamental barrier invariant: when `wait()` for episode `k` returns
//! in any thread, every participant has entered episode `k` — i.e. nobody
//! can be more than one episode behind an observer that has passed the
//! barrier. We check it with a per-thread progress array: each thread
//! publishes its episode number *before* the barrier and, *after* the
//! barrier, asserts every peer has published at least that episode.

use std::sync::Arc;

use armbar_simcoh::{arena::padded_elem, Arena, SimBuilder};
use armbar_topology::{Platform, Topology};

use crate::env::{Barrier, MemCtx};
use crate::host::HostMem;

/// Runs `episodes` barrier episodes under the simulator on `platform`,
/// checking the progress invariant each episode. Panics (failing the test)
/// on violation, deadlock, or livelock.
pub fn check_sim(
    platform: Platform,
    p: usize,
    episodes: u32,
    build: impl FnOnce(&mut Arena, usize, &Topology) -> Box<dyn Barrier>,
) {
    check_sim_on(Arc::new(Topology::preset(platform)), p, episodes, build);
}

/// [`check_sim`] on an explicit topology — for custom-built machines
/// (uneven clusters, single-core layers) that have no preset.
pub fn check_sim_on(
    topo: Arc<Topology>,
    p: usize,
    episodes: u32,
    build: impl FnOnce(&mut Arena, usize, &Topology) -> Box<dyn Barrier>,
) {
    let mut arena = Arena::new();
    let barrier: Arc<dyn Barrier> = Arc::from(build(&mut arena, p, &topo));
    let line = topo.cacheline_bytes();
    let progress = arena.alloc_padded_u32_array(p, line);
    let stride = line;

    SimBuilder::new(topo, p)
        .run(move |ctx| {
            run_episodes(&*barrier, ctx, progress, stride, episodes);
        })
        .unwrap_or_else(|e| panic!("simulated barrier failed at p={p}: {e}"));
}

/// Runs `episodes` barrier episodes with real host threads, checking the
/// progress invariant each episode.
pub fn check_host(
    p: usize,
    episodes: u32,
    build: impl FnOnce(&mut Arena, usize, &Topology) -> Box<dyn Barrier>,
) {
    // The topology only shapes the algorithm (grouping, padding); host
    // execution itself is topology-free.
    let topo = Topology::preset(Platform::Phytium2000Plus);
    let mut arena = Arena::new();
    let barrier: Arc<dyn Barrier> = Arc::from(build(&mut arena, p, &topo));
    let line = topo.cacheline_bytes();
    let progress = arena.alloc_padded_u32_array(p, line);
    let mem = HostMem::new(&arena);

    std::thread::scope(|s| {
        for tid in 0..p {
            let mem = Arc::clone(&mem);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let ctx = mem.ctx(tid, p);
                run_episodes(&*barrier, &ctx, progress, line, episodes);
            });
        }
    });
}

fn run_episodes(
    barrier: &dyn Barrier,
    ctx: &dyn MemCtx,
    progress: u32,
    stride: usize,
    episodes: u32,
) {
    let p = ctx.nthreads();
    let me = ctx.tid();
    for e in 1..=episodes {
        ctx.store(padded_elem(progress, me, stride), e);
        barrier.wait(ctx);
        for peer in 0..p {
            let seen = ctx.load(padded_elem(progress, peer, stride));
            assert!(
                seen >= e,
                "barrier violation: t{me} passed episode {e} but t{peer} was at {seen}"
            );
        }
    }
}

/// The standard sweep of participant counts exercised by every algorithm's
/// unit tests: edge cases (1, 2), non-powers of two, cluster boundaries,
/// and the full 64-core machine.
pub const SIM_SIZES: [usize; 8] = [1, 2, 3, 5, 8, 17, 33, 64];

/// Host sweeps stay small: the test host may have a single core, and each
/// simulated participant is an OS thread.
pub const HOST_SIZES: [usize; 4] = [1, 2, 4, 7];

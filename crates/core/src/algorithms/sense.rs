//! SENSE — the sense-reversing centralized barrier (Section II-B-1).
//!
//! Every arriving thread atomically decrements (here: increments) a shared
//! counter; the last arrival resets the counter and flips a global sense
//! word that everyone else spins on. This is the algorithm inside GCC's
//! libgomp, and the paper's Figure 7(a) shows why it collapses on ARMv8
//! many-cores: all P threads hammer a single cache line, so every arrival
//! pays an ownership transfer serialized behind P−1 others plus an
//! invalidation fan-out to the spinning crowd.
//!
//! Two layout variants are provided:
//!
//! * [`SenseBarrier::gcc_style`] — counter and global sense share one cache
//!   line, like libgomp's `gomp_barrier_t { total, generation }`. Arrivals
//!   and the release traffic interfere (worst case, and the faithful GCC
//!   baseline).
//! * [`SenseBarrier::separate_lines`] — the global sense lives on its own
//!   line, an ablation showing how much of SENSE's cost is false sharing
//!   versus the inherent hot-spot.

use armbar_simcoh::{arena::padded_elem, Addr, Arena};
use armbar_topology::Topology;

use crate::env::{Barrier, MemCtx};

/// Sense-reversing centralized barrier.
#[derive(Debug)]
pub struct SenseBarrier {
    counter: Addr,
    gsense: Addr,
    local_sense: Addr,
    stride: usize,
    name: &'static str,
}

impl SenseBarrier {
    /// libgomp-faithful layout: counter and global sense packed into the
    /// same cache line.
    pub fn gcc_style(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        assert!(p >= 1);
        let line = topo.cacheline_bytes();
        // One line holding [counter, gsense, ...padding].
        let base = arena.alloc(line, line);
        Self {
            counter: base,
            gsense: base + 4,
            local_sense: arena.alloc_padded_u32_array(p, line),
            stride: line,
            name: "SENSE",
        }
    }

    /// Ablation layout: global sense alone on its own line, so arrival
    /// RMW traffic does not invalidate the spinners' line.
    pub fn separate_lines(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        assert!(p >= 1);
        let line = topo.cacheline_bytes();
        Self {
            counter: arena.alloc_padded_u32(line),
            gsense: arena.alloc_padded_u32(line),
            local_sense: arena.alloc_padded_u32_array(p, line),
            stride: line,
            name: "SENSE-sep",
        }
    }
}

impl Barrier for SenseBarrier {
    fn wait(&self, ctx: &dyn MemCtx) {
        let p = ctx.nthreads() as u32;
        let me = ctx.tid();
        // Flip the thread-local sense (kept in the arena, padded: a purely
        // local access in both backends — relaxed, nobody else reads it).
        let ls_addr = padded_elem(self.local_sense, me, self.stride);
        let ls = 1 - ctx.load_relaxed(ls_addr);
        ctx.store_relaxed(ls_addr, ls);
        if p == 1 {
            return;
        }
        let prev = ctx.fetch_add(self.counter, 1);
        if prev == p - 1 {
            ctx.mark(crate::env::MARK_ARRIVED);
            // Last arrival: reset the counter *before* releasing (a thread
            // released by the flip may re-enter and increment immediately).
            // The reset itself may be relaxed — the following release store
            // of the sense flip orders it — but the flip must stay release:
            // were it relaxed too, the reset could commit *after* the flip
            // and a re-entering thread would increment the stale count.
            ctx.store_relaxed(self.counter, 0);
            ctx.store(self.gsense, ls);
        } else {
            ctx.spin_until_eq(self.gsense, ls);
        }
    }

    fn name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{check_host, check_sim, HOST_SIZES, SIM_SIZES};
    use armbar_topology::Platform;

    #[test]
    fn sim_correct_across_sizes() {
        for &p in &SIM_SIZES {
            check_sim(Platform::ThunderX2, p, 4, |a, p, t| {
                Box::new(SenseBarrier::gcc_style(a, p, t))
            });
        }
    }

    #[test]
    fn sim_correct_separate_lines() {
        for &p in &SIM_SIZES {
            check_sim(Platform::Kunpeng920, p, 4, |a, p, t| {
                Box::new(SenseBarrier::separate_lines(a, p, t))
            });
        }
    }

    #[test]
    fn host_correct_across_sizes() {
        for &p in &HOST_SIZES {
            check_host(p, 30, |a, p, t| Box::new(SenseBarrier::gcc_style(a, p, t)));
        }
    }

    #[test]
    fn host_correct_separate_lines() {
        for &p in &HOST_SIZES {
            check_host(p, 30, |a, p, t| Box::new(SenseBarrier::separate_lines(a, p, t)));
        }
    }

    #[test]
    fn counter_and_sense_share_a_line_in_gcc_style() {
        let topo = Topology::preset(Platform::Phytium2000Plus);
        let mut arena = Arena::new();
        let b = SenseBarrier::gcc_style(&mut arena, 8, &topo);
        let line = topo.cacheline_bytes() as u32;
        assert_eq!(b.counter / line, b.gsense / line);
    }

    #[test]
    fn counter_and_sense_are_apart_in_separate_layout() {
        let topo = Topology::preset(Platform::Phytium2000Plus);
        let mut arena = Arena::new();
        let b = SenseBarrier::separate_lines(&mut arena, 8, &topo);
        let line = topo.cacheline_bytes() as u32;
        assert_ne!(b.counter / line, b.gsense / line);
    }

    #[test]
    fn names_distinguish_variants() {
        let topo = Topology::preset(Platform::ThunderX2);
        let mut arena = Arena::new();
        assert_eq!(SenseBarrier::gcc_style(&mut arena, 2, &topo).name(), "SENSE");
        assert_eq!(SenseBarrier::separate_lines(&mut arena, 2, &topo).name(), "SENSE-sep");
    }
}

//! DIS — the dissemination barrier (Section II-B-3).
//!
//! `⌈log₂P⌉` rounds of pairwise signalling: in round `j`, thread `i`
//! notifies thread `(i + 2^j) mod P` and waits for `(i − 2^j) mod P`. There
//! is no distinguished champion and no Notification-Phase — after the last
//! round every thread has transitively heard from everyone.
//!
//! Flags are epoch-valued. Following the classic compact layout, each
//! thread's per-round in-flags are packed contiguously (4 bytes × rounds),
//! so on a 64-byte-line machine a thread's whole flag block lives in one
//! line — which is precisely why DIS suffers on ARMv8: every round, a
//! *different* remote writer dirties that line while its owner spins on it,
//! and once `P > N_c` those writers sit across cluster boundaries in every
//! round (not just the last few, as in tree barriers).

use armbar_simcoh::{arena::padded_elem, Addr, Arena};
use armbar_topology::Topology;

use crate::env::{Barrier, MemCtx};
use crate::wakeup::EpochSlots;

/// Dissemination barrier.
#[derive(Debug)]
pub struct DisseminationBarrier {
    /// `flags + line·i + 4·r` = in-flag of thread `i` for round `r`.
    flags: Addr,
    line: usize,
    rounds: usize,
    epochs: EpochSlots,
}

impl DisseminationBarrier {
    /// Builds the barrier for `p` threads.
    pub fn new(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        assert!(p >= 1);
        let line = topo.cacheline_bytes();
        let rounds = ceil_log2(p);
        // One line per thread holding all its round flags, packed. A round
        // count beyond line capacity would need more lines; with P ≤ 128,
        // rounds ≤ 7 → 28 bytes, comfortably within any real line.
        assert!(4 * rounds.max(1) <= line, "round flags exceed a cache line");
        Self {
            flags: arena.alloc_padded_u32_array(p.max(1), line),
            line,
            rounds,
            epochs: EpochSlots::new(arena, p, line),
        }
    }

    fn flag(&self, thread: usize, round: usize) -> Addr {
        padded_elem(self.flags, thread, self.line) + 4 * round as Addr
    }

    /// Number of pairwise rounds (`⌈log₂P⌉`).
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

impl Barrier for DisseminationBarrier {
    fn wait(&self, ctx: &dyn MemCtx) {
        let p = ctx.nthreads();
        if p == 1 {
            return;
        }
        let me = ctx.tid();
        let e = self.epochs.next(ctx);
        for r in 0..self.rounds {
            if r == self.rounds - 1 {
                // Symmetric barrier, no champion: each thread's final round
                // is its own arrival/notification boundary (the phase split
                // takes the latest such mark).
                ctx.mark(crate::env::MARK_ARRIVED);
            }
            let partner = (me + (1 << r)) % p;
            // The signal must stay a release store: round-r flags are how
            // each thread's pre-barrier writes (and the transitive writes
            // of everyone it already heard from) propagate to the partner.
            ctx.store(self.flag(partner, r), e);
            ctx.spin_until_ge(self.flag(me, r), e);
        }
    }

    fn name(&self) -> &str {
        "DIS"
    }
}

fn ceil_log2(p: usize) -> usize {
    assert!(p >= 1);
    (usize::BITS - (p - 1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{check_host, check_sim, HOST_SIZES, SIM_SIZES};
    use armbar_topology::Platform;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
    }

    #[test]
    fn sim_correct_across_sizes() {
        for &p in &SIM_SIZES {
            check_sim(Platform::Phytium2000Plus, p, 4, |a, p, t| {
                Box::new(DisseminationBarrier::new(a, p, t))
            });
        }
    }

    #[test]
    fn sim_correct_on_kunpeng_lines() {
        // 128-byte lines change the flag block layout; re-verify.
        for &p in &[2usize, 16, 64] {
            check_sim(Platform::Kunpeng920, p, 4, |a, p, t| {
                Box::new(DisseminationBarrier::new(a, p, t))
            });
        }
    }

    #[test]
    fn host_correct_across_sizes() {
        for &p in &HOST_SIZES {
            check_host(p, 30, |a, p, t| Box::new(DisseminationBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn round_count_matches_formula() {
        let topo = Topology::preset(Platform::ThunderX2);
        for (p, want) in [(2usize, 1usize), (4, 2), (5, 3), (32, 5), (33, 6), (64, 6)] {
            let mut arena = Arena::new();
            let b = DisseminationBarrier::new(&mut arena, p, &topo);
            assert_eq!(b.rounds(), want, "p={p}");
        }
    }

    #[test]
    fn flag_blocks_are_one_line_per_thread() {
        let topo = Topology::preset(Platform::ThunderX2);
        let mut arena = Arena::new();
        let b = DisseminationBarrier::new(&mut arena, 64, &topo);
        let line = topo.cacheline_bytes() as u32;
        for t in 0..64 {
            for r in 0..b.rounds() {
                assert_eq!(b.flag(t, r) / line, b.flag(t, 0) / line, "t={t} r={r}");
            }
        }
        assert_ne!(b.flag(0, 0) / line, b.flag(1, 0) / line);
    }
}

//! SHY-CTR / SHY-PROXY — the spinlock-guarded counter barriers the
//! rust_shyper / rtshyper hypervisors actually ship (SNIPPETS.md).
//!
//! The hypervisor's `CpuSyncToken` packs a spinlock and a *monotonic*
//! arrival counter into one struct. An arriving core takes the lock,
//! increments the counter, computes `next_count = round_up(count, n)` —
//! the end of the episode its own arrival belongs to — releases the lock,
//! and spins until the counter reaches `next_count`. Because the counter
//! never resets, a late waiter that only starts spinning after faster
//! cores have raced into the *next* episode still observes
//! `count ≥ next_count` and falls through: the `round_up` exit is what
//! makes the naive counter barrier reuse-safe (the classic counter-barrier
//! bug is resetting the count and stranding the straggler).
//!
//! Two variants:
//!
//! * [`ShyCtrBarrier`] (`SHY-CTR`) — the `barrier()` path verbatim: a
//!   CAS spinlock around the increment. Its arrival cost is dominated by
//!   the platform's CAS pricing (one successful CAS per arrival plus a
//!   failed CAS per contender that loses the grab), which is exactly the
//!   per-op-kind cost split the crossover experiment measures.
//! * [`ShyProxyBarrier`] (`SHY-PROXY`) — adds the hypervisor's
//!   `add_barrier_count()` entry point as [`ShyProxyBarrier::proxy_arrive`]:
//!   a locked increment *without* waiting, used to arrive on behalf of an
//!   offline core (shyper calls it when a secondary core is parked). The
//!   lock here is a SWP test-and-set — the other LSE primitive — and each
//!   thread tracks its episode in a padded per-thread slot so `wait` knows
//!   which multiple of `p` to spin for.
//!
//! Both are *contenders*, not paper algorithms: they exist to give the
//! atomics-aware cost model something to predict against SENSE/STOUR
//! (DESIGN.md §17), and they lose at scale for the same reason SENSE does
//! — a single hot line — plus the lock's serialization on top.

use armbar_simcoh::{arena::padded_elem, Addr, Arena};
use armbar_topology::Topology;

use crate::env::{Barrier, MemCtx};

/// Spinlock-guarded counter barrier with the `round_up` reuse-safe exit
/// (rust_shyper `barrier()`).
#[derive(Debug)]
pub struct ShyCtrBarrier {
    /// Test-and-set word; shares a cache line with `count`, like the
    /// hypervisor's `CpuSyncToken { lock, n, count, .. }`.
    lock: Addr,
    /// Monotonic arrival counter (never reset).
    count: Addr,
}

impl ShyCtrBarrier {
    pub fn new(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        assert!(p >= 1);
        let line = topo.cacheline_bytes();
        // One line holding [lock, count, ...padding].
        let base = arena.alloc(line, line);
        Self { lock: base, count: base + 4 }
    }

    /// Takes the CAS spinlock: one successful CAS per acquisition, one
    /// *failed* CAS per lost race (then a read-only spin until the lock
    /// looks free — test-and-test-and-set, so losers don't hammer
    /// exclusive grabs).
    fn lock(&self, ctx: &dyn MemCtx) {
        loop {
            if ctx.compare_exchange(self.lock, 0, 1) == 0 {
                return;
            }
            ctx.spin_until_eq(self.lock, 0);
        }
    }
}

impl Barrier for ShyCtrBarrier {
    fn wait(&self, ctx: &dyn MemCtx) {
        let p = ctx.nthreads() as u32;
        if p == 1 {
            return;
        }
        self.lock(ctx);
        // We hold the lock: plain read-increment-write (shyper's Volatile
        // update). The relaxed store is ordered before the lock release
        // below, so the next holder reads the fresh count.
        let c = ctx.load(self.count).wrapping_add(1);
        ctx.store_relaxed(self.count, c);
        // round_up(count, p): the counter value that ends this episode.
        let target = c.div_ceil(p) * p;
        ctx.store(self.lock, 0);
        if c == target {
            ctx.mark(crate::env::MARK_ARRIVED);
        }
        // Monotonic exit: `≥`, never `==` — a late waiter entering after
        // faster threads started the next episode still passes.
        ctx.spin_until_ge(self.count, target);
    }

    fn name(&self) -> &str {
        "SHY-CTR"
    }
}

/// Counter barrier with a proxy-arrival path (rust_shyper
/// `add_barrier_count()`), SWP test-and-set lock.
#[derive(Debug)]
pub struct ShyProxyBarrier {
    lock: Addr,
    count: Addr,
    /// Padded per-thread episode counters (purely local).
    episodes: Addr,
    stride: usize,
}

impl ShyProxyBarrier {
    pub fn new(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        assert!(p >= 1);
        let line = topo.cacheline_bytes();
        let base = arena.alloc(line, line);
        Self {
            lock: base,
            count: base + 4,
            episodes: arena.alloc_padded_u32_array(p, line),
            stride: line,
        }
    }

    /// The locked increment shared by `wait` and `proxy_arrive`; returns
    /// the post-increment count. The lock is a SWP test-and-test-and-set:
    /// `swap(lock, 1)` returning 0 means we took it.
    fn arrive(&self, ctx: &dyn MemCtx) -> u32 {
        loop {
            if ctx.swap(self.lock, 1) == 0 {
                break;
            }
            ctx.spin_until_eq(self.lock, 0);
        }
        let c = ctx.load(self.count).wrapping_add(1);
        ctx.store_relaxed(self.count, c);
        ctx.store(self.lock, 0);
        c
    }

    /// Arrives on behalf of an offline core without waiting — shyper's
    /// `add_barrier_count()`. Each episode needs `p` total increments; a
    /// survivor calls this once per offline core per episode (the
    /// hypervisor does it when a parked secondary core cannot reach the
    /// barrier itself).
    pub fn proxy_arrive(&self, ctx: &dyn MemCtx) {
        self.arrive(ctx);
    }
}

impl Barrier for ShyProxyBarrier {
    fn wait(&self, ctx: &dyn MemCtx) {
        let p = ctx.nthreads() as u32;
        // Track which episode this thread is in (local padded slot).
        let ep_addr = padded_elem(self.episodes, ctx.tid(), self.stride);
        let ep = ctx.load_relaxed(ep_addr).wrapping_add(1);
        ctx.store_relaxed(ep_addr, ep);
        if p == 1 {
            return;
        }
        let c = self.arrive(ctx);
        let target = ep * p;
        if c == target {
            ctx.mark(crate::env::MARK_ARRIVED);
        }
        // `count` only reaches `ep·p` once every participant of episode
        // `ep` has arrived (in person or by proxy); monotonic, so reuse
        // can never strand a late spinner.
        ctx.spin_until_ge(self.count, target);
    }

    fn name(&self) -> &str {
        "SHY-PROXY"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{check_host, check_sim, HOST_SIZES, SIM_SIZES};
    use armbar_simcoh::SimBuilder;
    use armbar_topology::Platform;
    use std::sync::Arc;

    #[test]
    fn shy_ctr_sim_correct_across_sizes() {
        for &p in &SIM_SIZES {
            check_sim(Platform::ThunderX2, p, 4, |a, p, t| Box::new(ShyCtrBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn shy_ctr_sim_correct_on_llsc_platform() {
        for &p in &SIM_SIZES {
            check_sim(Platform::Phytium2000Plus, p, 4, |a, p, t| {
                Box::new(ShyCtrBarrier::new(a, p, t))
            });
        }
    }

    #[test]
    fn shy_proxy_sim_correct_across_sizes() {
        for &p in &SIM_SIZES {
            check_sim(Platform::Kunpeng920, p, 4, |a, p, t| {
                Box::new(ShyProxyBarrier::new(a, p, t))
            });
        }
    }

    #[test]
    fn shy_ctr_host_correct_across_sizes() {
        for &p in &HOST_SIZES {
            check_host(p, 30, |a, p, t| Box::new(ShyCtrBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn shy_proxy_host_correct_across_sizes() {
        for &p in &HOST_SIZES {
            check_host(p, 30, |a, p, t| Box::new(ShyProxyBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn lock_and_count_share_a_line() {
        let topo = Topology::preset(Platform::Phytium2000Plus);
        let mut arena = Arena::new();
        let b = ShyCtrBarrier::new(&mut arena, 8, &topo);
        let line = topo.cacheline_bytes() as u32;
        assert_eq!(b.lock / line, b.count / line, "CpuSyncToken packs lock and count");
    }

    /// Litmus: the classic counter-barrier reuse bug. A straggler that
    /// begins spinning only after the other threads have raced through
    /// the barrier and *re-entered* for the next episode must still exit.
    /// With a reset-based exit it would hang forever (the count it waits
    /// for has been wiped); the `round_up` exit over a monotonic counter
    /// must pass. Five episodes, one thread heavily delayed each time.
    #[test]
    fn round_up_exit_does_not_strand_late_waiter() {
        for make in [
            |a: &mut Arena, p: usize, t: &Topology| {
                Box::new(ShyCtrBarrier::new(a, p, t)) as Box<dyn Barrier>
            },
            |a: &mut Arena, p: usize, t: &Topology| {
                Box::new(ShyProxyBarrier::new(a, p, t)) as Box<dyn Barrier>
            },
        ] {
            let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
            let mut arena = Arena::new();
            let barrier: Arc<Box<dyn Barrier>> = Arc::new(make(&mut arena, 4, &topo));
            let done = arena.alloc_padded_u32_array(4, topo.cacheline_bytes());
            let stride = topo.cacheline_bytes();
            SimBuilder::new(topo, 4)
                .run({
                    let barrier = Arc::clone(&barrier);
                    move |ctx| {
                        for ep in 0..5u32 {
                            if ctx.tid() == 3 {
                                // Enter long after the others have left the
                                // episode (and begun the next one).
                                ctx.compute_ns(50_000.0);
                            }
                            barrier.wait(ctx);
                            ctx.store(padded_elem(done, ctx.tid(), stride), ep + 1);
                        }
                    }
                })
                .expect("a stranded waiter would deadlock here");
        }
    }

    /// The proxy path: a 4-thread team where core 3 is offline and never
    /// reaches the barrier; core 0 arrives on its behalf each episode via
    /// `add_barrier_count`-style [`ShyProxyBarrier::proxy_arrive`].
    #[test]
    fn proxy_arrival_substitutes_for_offline_core() {
        let topo = Arc::new(Topology::preset(Platform::ThunderX2));
        let mut arena = Arena::new();
        let barrier = Arc::new(ShyProxyBarrier::new(&mut arena, 4, &topo));
        let stats = SimBuilder::new(topo, 4)
            .run({
                let barrier = Arc::clone(&barrier);
                move |ctx| {
                    if ctx.tid() == 3 {
                        return; // offline: parked before the first episode
                    }
                    for _ in 0..3 {
                        if ctx.tid() == 0 {
                            barrier.proxy_arrive(ctx);
                        }
                        barrier.wait(ctx);
                    }
                }
            })
            .expect("survivors must pass with the proxy arrivals");
        assert!(stats.max_time_ns() > 0.0);
    }

    #[test]
    fn names_are_stable() {
        let topo = Topology::preset(Platform::ThunderX2);
        let mut arena = Arena::new();
        assert_eq!(ShyCtrBarrier::new(&mut arena, 2, &topo).name(), "SHY-CTR");
        assert_eq!(ShyProxyBarrier::new(&mut arena, 2, &topo).name(), "SHY-PROXY");
    }
}

//! The barrier algorithms evaluated in the paper (Section II-B), plus the
//! LLVM OpenMP reference barrier.
//!
//! | Module | Paper name | Notes |
//! |---|---|---|
//! | [`sense`] | SENSE | sense-reversing centralized; = GCC libgomp |
//! | [`dissemination`] | DIS | ⌈log₂P⌉ pairwise rounds, no notification phase |
//! | [`combining`] | CMB | software combining tree (Yew/Tzeng/Lawrie), fan-in 2 |
//! | [`mcs`] | MCS | Mellor-Crummey & Scott P-node tree (4-ary arrive, binary wake) |
//! | [`tournament`] | TOUR | Hensgen/Finkel/Manber pairwise tournament, global wake-up |
//! | [`fway`] | STOUR / DTOUR | Grunwald & Vajracharya static/dynamic f-way tournament — and, fully configured, the paper's optimized barrier |
//! | [`hyper`] | (LLVM) | hypercube-embedded tree, branch factor 4; = LLVM libomp default |
//! | [`hybrid`] | (extension) | per-cluster counters + tournament over representatives |
//! | [`nway_dissemination`] | (cited, ref [4]) | Hoefler n-way dissemination |
//! | [`ring`] | (cited, ref [7]) | Aravind two-pass ring/token barrier |
//! | [`shyper`] | (contender) | rust_shyper/rtshyper spinlock-guarded counter, `round_up` reuse-safe exit + proxy arrival |

pub mod combining;
pub mod dissemination;
pub mod fway;
pub mod hybrid;
pub mod hyper;
pub mod mcs;
pub mod nway_dissemination;
pub mod ring;
pub mod sense;
pub mod shyper;
pub mod tournament;

pub use combining::CombiningTreeBarrier;
pub use dissemination::DisseminationBarrier;
pub use fway::{FwayBarrier, FwayConfig};
pub use hybrid::HybridBarrier;
pub use hyper::HyperBarrier;
pub use mcs::McsBarrier;
pub use nway_dissemination::NwayDisseminationBarrier;
pub use ring::RingBarrier;
pub use sense::SenseBarrier;
pub use shyper::{ShyCtrBarrier, ShyProxyBarrier};
pub use tournament::TournamentBarrier;

#[cfg(test)]
pub(crate) mod testutil;

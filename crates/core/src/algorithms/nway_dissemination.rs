//! n-way dissemination barrier (Hoefler et al., reference [4] of the
//! paper).
//!
//! Generalizes the dissemination barrier's pairwise rounds to `n`
//! simultaneous notifications per round: in round `r` of base `w = n+1`,
//! thread `i` signals threads `(i + j·w^r) mod P` for `j = 1..n` and waits
//! for the `n` mirrored in-flags. Round count drops from `⌈log₂P⌉` to
//! `⌈log_{n+1}P⌉` at the cost of more traffic per round — designed for
//! interconnects with hardware parallelism (InfiniBand in the original;
//! the MLP of a cache hierarchy here).
//!
//! With `n = 1` this *is* the classic dissemination barrier.

use armbar_simcoh::{arena::padded_elem, Addr, Arena};
use armbar_topology::Topology;

use crate::env::{Barrier, MemCtx};
use crate::wakeup::EpochSlots;

/// n-way dissemination barrier.
#[derive(Debug)]
pub struct NwayDisseminationBarrier {
    /// `flags + line·i + 4·(r·n + (j−1))` = in-flag of thread `i`, round
    /// `r`, peer slot `j`.
    flags: Addr,
    line: usize,
    rounds: usize,
    n: usize,
    epochs: EpochSlots,
}

impl NwayDisseminationBarrier {
    /// Builds the barrier for `p` threads with `n` partners per round.
    ///
    /// # Panics
    /// Panics when `n < 1` or the per-thread flag block exceeds one cache
    /// line (ensuring the classic compact layout stays honest).
    pub fn new(arena: &mut Arena, p: usize, topo: &Topology, n: usize) -> Self {
        assert!(p >= 1);
        assert!(n >= 1, "need at least one partner per round");
        let w = n + 1;
        let mut rounds = 0usize;
        let mut span = 1usize;
        while span < p {
            span = span.saturating_mul(w);
            rounds += 1;
        }
        let line = topo.cacheline_bytes();
        let slots = (rounds * n).max(1);
        assert!(
            4 * slots <= line,
            "flag block ({} slots) exceeds a {line}-byte cache line; lower n",
            slots
        );
        Self {
            flags: arena.alloc_padded_u32_array(p, line),
            line,
            rounds,
            n,
            epochs: EpochSlots::new(arena, p, line),
        }
    }

    fn flag(&self, thread: usize, round: usize, j: usize) -> Addr {
        debug_assert!(j >= 1 && j <= self.n);
        padded_elem(self.flags, thread, self.line) + 4 * (round * self.n + (j - 1)) as Addr
    }

    /// Number of rounds (`⌈log_{n+1}P⌉`).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Partners signalled per round.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl Barrier for NwayDisseminationBarrier {
    fn wait(&self, ctx: &dyn MemCtx) {
        let p = ctx.nthreads();
        if p == 1 {
            return;
        }
        let me = ctx.tid();
        let e = self.epochs.next(ctx);
        let w = self.n + 1;
        let mut stride = 1usize;
        for r in 0..self.rounds {
            if r == self.rounds - 1 {
                // Symmetric barrier, no champion: each thread's final round
                // is its own arrival/notification boundary.
                ctx.mark(crate::env::MARK_ARRIVED);
            }
            for j in 1..=self.n {
                let partner = (me + j * stride) % p;
                ctx.store(self.flag(partner, r, j), e);
            }
            let waits: Vec<Addr> = (1..=self.n).map(|j| self.flag(me, r, j)).collect();
            ctx.spin_until_all_ge(&waits, e);
            stride = stride.saturating_mul(w);
        }
    }

    fn name(&self) -> &str {
        "NDIS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{check_host, check_sim, HOST_SIZES, SIM_SIZES};
    use armbar_topology::Platform;

    #[test]
    fn sim_correct_across_sizes_and_widths() {
        for n in [1usize, 2, 3] {
            for &p in &SIM_SIZES {
                check_sim(Platform::Phytium2000Plus, p, 3, move |a, p, t| {
                    Box::new(NwayDisseminationBarrier::new(a, p, t, n))
                });
            }
        }
    }

    #[test]
    fn host_correct_across_sizes() {
        for &p in &HOST_SIZES {
            check_host(p, 25, |a, p, t| Box::new(NwayDisseminationBarrier::new(a, p, t, 2)));
        }
    }

    #[test]
    fn round_count_shrinks_with_n() {
        let topo = Topology::preset(Platform::ThunderX2);
        let mut arena = Arena::new();
        let one = NwayDisseminationBarrier::new(&mut arena, 64, &topo, 1);
        let two = NwayDisseminationBarrier::new(&mut arena, 64, &topo, 2);
        let three = NwayDisseminationBarrier::new(&mut arena, 64, &topo, 3);
        assert_eq!(one.rounds(), 6); // log2 64
        assert_eq!(two.rounds(), 4); // log3 64 = 3.79 → 4
        assert_eq!(three.rounds(), 3); // log4 64
    }

    #[test]
    fn n1_matches_classic_dissemination_round_count() {
        let topo = Topology::preset(Platform::Kunpeng920);
        for p in [2usize, 5, 17, 33, 64] {
            let mut arena = Arena::new();
            let b = NwayDisseminationBarrier::new(&mut arena, p, &topo, 1);
            let classic = crate::algorithms::DisseminationBarrier::new(&mut arena, p, &topo);
            assert_eq!(b.rounds(), classic.rounds(), "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_oversized_flag_blocks() {
        let topo = Topology::preset(Platform::ThunderX2); // 64 B lines
        let mut arena = Arena::new();
        // 9 partners × ⌈log10(64)⌉ = 2 rounds → 18 slots = 72 B > 64 B.
        let _ = NwayDisseminationBarrier::new(&mut arena, 64, &topo, 9);
    }
}

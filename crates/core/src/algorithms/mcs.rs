//! MCS — the Mellor-Crummey & Scott tree barrier (Section II-B-2).
//!
//! Every thread is an internal node of a static 4-ary arrival tree (not a
//! leaf, unlike the combining tree): node `i`'s arrival children are
//! `4i+1..4i+4`. A node waits for its children's arrival flags — four
//! packed words in the node's own cache-line-sized record, exactly the
//! original `childnotready` layout — then signals its slot in its parent's
//! record. Wake-up descends a separate binary tree (`2i+1`, `2i+2`) over
//! padded per-thread flags, as in the original algorithm.
//!
//! The paper's finding (Figure 7): because the 4-ary tree packs more
//! threads per level, synchronization partners quickly span core clusters,
//! so MCS loses to CMB beyond ~8 threads on these machines.

use armbar_simcoh::{arena::padded_elem, Addr, Arena};
use armbar_topology::Topology;

use crate::env::{Barrier, MemCtx};
use crate::trees::binary_children;
use crate::wakeup::EpochSlots;

/// Arrival fan-in of the MCS tree (fixed at 4 in the original).
const ARRIVAL_FANIN: usize = 4;

/// MCS P-node tree barrier.
#[derive(Debug)]
pub struct McsBarrier {
    /// Node records: `records + line·i + 4·s` = arrival flag of node `i`'s
    /// child slot `s` (packed within node `i`'s line).
    records: Addr,
    /// Padded per-thread wake flags for the binary wake-up tree.
    wake: Addr,
    line: usize,
    epochs: EpochSlots,
}

impl McsBarrier {
    /// Builds the barrier for `p` threads.
    pub fn new(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        assert!(p >= 1);
        let line = topo.cacheline_bytes();
        assert!(4 * ARRIVAL_FANIN <= line, "child slots must fit one line");
        Self {
            records: arena.alloc_padded_u32_array(p, line),
            wake: arena.alloc_padded_u32_array(p, line),
            line,
            epochs: EpochSlots::new(arena, p, line),
        }
    }

    fn arrival_slot(&self, parent: usize, slot: usize) -> Addr {
        padded_elem(self.records, parent, self.line) + 4 * slot as Addr
    }

    fn wake_flag(&self, i: usize) -> Addr {
        padded_elem(self.wake, i, self.line)
    }
}

impl Barrier for McsBarrier {
    fn wait(&self, ctx: &dyn MemCtx) {
        let p = ctx.nthreads();
        if p == 1 {
            return;
        }
        let me = ctx.tid();
        let e = self.epochs.next(ctx);

        // Arrival: wait for own children (one polling loop over the packed
        // slots — they share the node's line anyway), then notify parent.
        let slots: Vec<_> = (0..ARRIVAL_FANIN)
            .filter(|&s| ARRIVAL_FANIN * me + 1 + s < p)
            .map(|s| self.arrival_slot(me, s))
            .collect();
        if !slots.is_empty() {
            ctx.spin_until_all_ge(&slots, e);
        }
        if me != 0 {
            let parent = (me - 1) / ARRIVAL_FANIN;
            let slot = (me - 1) % ARRIVAL_FANIN;
            ctx.store(self.arrival_slot(parent, slot), e);
            // Wake-up: block until the binary tree reaches us.
            ctx.spin_until_ge(self.wake_flag(me), e);
        } else {
            // Root saw its subtree complete: the whole arrival tree is done.
            ctx.mark(crate::env::MARK_ARRIVED);
        }
        for c in binary_children(me, p) {
            ctx.store(self.wake_flag(c), e);
        }
    }

    fn name(&self) -> &str {
        "MCS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{check_host, check_sim, HOST_SIZES, SIM_SIZES};
    use armbar_topology::Platform;

    #[test]
    fn sim_correct_across_sizes() {
        for &p in &SIM_SIZES {
            check_sim(Platform::ThunderX2, p, 4, |a, p, t| Box::new(McsBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn sim_correct_on_kunpeng() {
        for &p in &[4usize, 20, 64] {
            check_sim(Platform::Kunpeng920, p, 3, |a, p, t| Box::new(McsBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn host_correct_across_sizes() {
        for &p in &HOST_SIZES {
            check_host(p, 30, |a, p, t| Box::new(McsBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn child_slots_pack_into_parent_record() {
        let topo = Topology::preset(Platform::ThunderX2);
        let mut arena = Arena::new();
        let b = McsBarrier::new(&mut arena, 21, &topo);
        let line = topo.cacheline_bytes() as u32;
        // All four slots of node 0 share node 0's line …
        for s in 1..4 {
            assert_eq!(b.arrival_slot(0, s) / line, b.arrival_slot(0, 0) / line);
        }
        // … and are distinct from node 1's record and from wake flags.
        assert_ne!(b.arrival_slot(0, 0) / line, b.arrival_slot(1, 0) / line);
        assert_ne!(b.arrival_slot(0, 0) / line, b.wake_flag(0) / line);
    }

    #[test]
    fn arrival_tree_parent_math_is_inverse() {
        for parent in 0..32usize {
            for s in 0..4 {
                let child = 4 * parent + 1 + s;
                assert_eq!((child - 1) / 4, parent);
                assert_eq!((child - 1) % 4, s);
            }
        }
    }
}

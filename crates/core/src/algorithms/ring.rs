//! Ring barrier (Aravind, reference [7] of the paper).
//!
//! Threads are arranged on a logical ring; a token (an epoch value) makes
//! two passes. In the **collect** pass, thread `i` waits for its
//! predecessor's token and forwards it — by the time the token returns to
//! thread 0, everyone has arrived. In the **release** pass the token
//! travels the ring again, releasing each thread in turn. Each thread
//! performs exactly one remote write and two local spins per episode —
//! "minimal remote memory references", the property the original paper
//! advertises — at the cost of an O(P) critical path.
//!
//! Included as a contrast algorithm: its per-thread traffic is the lowest
//! of any barrier here, but the linear token walk makes it uncompetitive
//! at 64 threads, which is precisely why the CLUSTER'21 paper's tree-based
//! optimization space is the interesting one.

use armbar_simcoh::{arena::padded_elem, Addr, Arena};
use armbar_topology::Topology;

use crate::env::{Barrier, MemCtx};
use crate::wakeup::EpochSlots;

/// Two-pass ring (token) barrier.
#[derive(Debug)]
pub struct RingBarrier {
    /// Collect-pass token slots, one padded line per thread.
    collect: Addr,
    /// Release-pass token slots.
    release: Addr,
    line: usize,
    epochs: EpochSlots,
}

impl RingBarrier {
    /// Builds the barrier for `p` threads.
    pub fn new(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        assert!(p >= 1);
        let line = topo.cacheline_bytes();
        Self {
            collect: arena.alloc_padded_u32_array(p, line),
            release: arena.alloc_padded_u32_array(p, line),
            line,
            epochs: EpochSlots::new(arena, p, line),
        }
    }

    fn collect_slot(&self, i: usize) -> Addr {
        padded_elem(self.collect, i, self.line)
    }

    fn release_slot(&self, i: usize) -> Addr {
        padded_elem(self.release, i, self.line)
    }
}

impl Barrier for RingBarrier {
    fn wait(&self, ctx: &dyn MemCtx) {
        let p = ctx.nthreads();
        if p == 1 {
            return;
        }
        let me = ctx.tid();
        let e = self.epochs.next(ctx);
        let next = (me + 1) % p;

        if me == 0 {
            // Ring head: start the collect pass, wait for it to return,
            // then start the release pass (its own release is implicit).
            ctx.store(self.collect_slot(next), e);
            ctx.spin_until_ge(self.collect_slot(0), e);
            // The collect token returned: every thread has arrived.
            ctx.mark(crate::env::MARK_ARRIVED);
            ctx.store(self.release_slot(next), e);
        } else {
            // Wait for the collect token, forward it.
            ctx.spin_until_ge(self.collect_slot(me), e);
            ctx.store(self.collect_slot(next), e);
            // Wait for the release token; forward unless we close the ring.
            ctx.spin_until_ge(self.release_slot(me), e);
            if next != 0 {
                ctx.store(self.release_slot(next), e);
            }
        }
    }

    fn name(&self) -> &str {
        "RING"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{check_host, check_sim, HOST_SIZES, SIM_SIZES};
    use armbar_topology::Platform;

    #[test]
    fn sim_correct_across_sizes() {
        for &p in &SIM_SIZES {
            check_sim(Platform::Kunpeng920, p, 3, |a, p, t| Box::new(RingBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn sim_correct_on_all_arm_platforms() {
        for platform in Platform::ARM {
            check_sim(platform, 64, 2, |a, p, t| Box::new(RingBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn host_correct_across_sizes() {
        for &p in &HOST_SIZES {
            check_host(p, 25, |a, p, t| Box::new(RingBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn slots_are_padded_apart() {
        let topo = Topology::preset(Platform::ThunderX2);
        let mut arena = Arena::new();
        let b = RingBarrier::new(&mut arena, 8, &topo);
        let line = topo.cacheline_bytes() as u32;
        for i in 0..7 {
            assert_ne!(b.collect_slot(i) / line, b.collect_slot(i + 1) / line);
        }
        assert_ne!(b.collect_slot(0) / line, b.release_slot(0) / line);
    }
}

//! STOUR / DTOUR — the f-way tournament barriers (Grunwald & Vajracharya,
//! Section II-B-2) and, fully configured, the **paper's optimized barrier**
//! (Section V).
//!
//! The f-way tournament generalizes pairwise play-offs to groups of `f`
//! threads per round. One [`FwayBarrier`] type covers the whole design
//! space studied by the paper:
//!
//! * **fan-in schedule** — the original *balanced* schedule (`f_l ≈
//!   P^(1/rounds)`, max 8) or the paper's *fixed* power-of-two fan-in
//!   (recommendation: `f = 4`, derived by minimizing Eq. 1);
//! * **arrival flag layout** — *packed* 4-byte flags (original; children of
//!   one group and even different groups share cache lines → serialized
//!   sibling writes and inter-subtree interference, Figure 8a) or *padded*
//!   one-flag-per-line (the paper's fix, Figure 8b);
//! * **winner selection** — *static* (first thread of the group; no atomics
//!   at all) or *dynamic* (last arrival via a group counter; DTOUR);
//! * **wake-up policy** — global sense, binary tree, or the paper's
//!   NUMA-aware tree ([`crate::wakeup`]).
//!
//! The named configurations of the paper map as:
//!
//! | Paper | Constructor |
//! |---|---|
//! | STOUR ("static f-way") | [`FwayBarrier::stour`] |
//! | DTOUR ("dynamic f-way") | [`FwayBarrier::dtour`] |
//! | "padding static f-way" (Fig. 11) | [`FwayConfig::padded_flags`] on STOUR |
//! | "padding static 4-way" (Fig. 11) | [`FwayBarrier::padded_4way`] |
//! | **optimized barrier** (Table IV) | [`FwayBarrier::optimized`] |

use armbar_simcoh::{arena::padded_elem, Addr, Arena};
use armbar_topology::Topology;

use crate::env::{Barrier, MemCtx};
use crate::trees::FaninPlan;
use crate::wakeup::{EpochSlots, Wakeup, WakeupKind};

/// Fan-in schedule selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fanin {
    /// The original balanced schedule with the given maximum fan-in
    /// (8 in the original publication).
    Balanced { max: usize },
    /// Fixed fan-in at every level (the paper recommends 4).
    Fixed(usize),
}

/// Full configuration of an f-way tournament barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FwayConfig {
    /// Fan-in schedule.
    pub fanin: Fanin,
    /// One cache line per arrival flag (true) or packed 4-byte flags
    /// (false, the original layout).
    pub padded_flags: bool,
    /// Winner selection: dynamic (group counter, DTOUR) or static.
    pub dynamic: bool,
    /// Notification-phase policy.
    pub wakeup: WakeupKind,
}

impl FwayConfig {
    /// The original STOUR: balanced fan-ins ≤ 8, packed flags, static
    /// winners, global wake-up.
    pub fn stour() -> Self {
        Self {
            fanin: Fanin::Balanced { max: 8 },
            padded_flags: false,
            dynamic: false,
            wakeup: WakeupKind::Global,
        }
    }

    /// The original DTOUR: like STOUR but dynamic winners.
    pub fn dtour() -> Self {
        Self { dynamic: true, ..Self::stour() }
    }

    /// The paper's optimized configuration for a given machine: padded
    /// flags, fixed fan-in 4, and the empirically best wake-up for the
    /// platform — global on Kunpeng 920 (cheap reader contention),
    /// NUMA-aware tree on Phytium 2000+ and ThunderX2 (Section VI-B).
    pub fn optimized(topo: &Topology) -> Self {
        let coh = topo.coherence();
        // Global wake-up costs ~(inv + read-contention) per extra thread;
        // tree wake-up costs ~log₂P extra hops. Prefer global only when the
        // per-thread contention coefficients are small (the paper's
        // Kunpeng 920 case).
        let cheap_contention = coh.inv_ns + coh.read_contention_ns < 7.0;
        let wakeup = if cheap_contention {
            WakeupKind::Global
        } else if topo.num_clusters() > 1 {
            WakeupKind::NumaTree
        } else {
            WakeupKind::BinaryTree
        };
        Self { fanin: Fanin::Fixed(4), padded_flags: true, dynamic: false, wakeup }
    }
}

/// One tournament level's flag (or counter) array.
#[derive(Debug)]
struct Level {
    /// Base address of this level's per-contestant flags (static) or
    /// per-group counters (dynamic).
    base: Addr,
    /// Stride between consecutive entries, bytes.
    stride: usize,
    /// Group size at this level.
    fanin: usize,
    /// Number of contestants entering this level.
    contestants: usize,
}

impl Level {
    fn entry(&self, i: usize) -> Addr {
        padded_elem(self.base, i, self.stride)
    }
}

/// The f-way tournament barrier family. See the module docs for the
/// configuration space.
#[derive(Debug)]
pub struct FwayBarrier {
    levels: Vec<Level>,
    config: FwayConfig,
    wakeup: Wakeup,
    epochs: EpochSlots,
    name: String,
}

impl FwayBarrier {
    /// Builds a barrier for `p` threads on `topo` with an explicit
    /// configuration.
    pub fn with_config(arena: &mut Arena, p: usize, topo: &Topology, config: FwayConfig) -> Self {
        assert!(p >= 1);
        let line = topo.cacheline_bytes();
        let plan = match config.fanin {
            Fanin::Balanced { max } => FaninPlan::balanced(p, max),
            Fanin::Fixed(f) => FaninPlan::fixed(p, f),
        };
        let mut levels = Vec::with_capacity(plan.rounds().len());
        for (l, &f) in plan.rounds().iter().enumerate() {
            let contestants = plan.contestants(p, l);
            let (base, stride) = if config.dynamic {
                // One padded counter per group (counters are RMW hot words;
                // packing them would be self-sabotage even in the original).
                let groups = contestants.div_ceil(f);
                (arena.alloc_padded_u32_array(groups, line), line)
            } else if config.padded_flags {
                (arena.alloc_padded_u32_array(contestants, line), line)
            } else {
                // Original layout: packed 4-byte flags, many per line.
                (arena.alloc_u32_array(contestants), 4)
            };
            levels.push(Level { base, stride, fanin: f, contestants });
        }
        let wakeup = Wakeup::new(arena, p, line, topo.n_c(), config.wakeup);
        let epochs = EpochSlots::new(arena, p, line);
        let name = Self::display_name(&config);
        Self { levels, config, wakeup, epochs, name }
    }

    fn display_name(config: &FwayConfig) -> String {
        match (config.dynamic, config.fanin, config.padded_flags) {
            (true, _, _) => "DTOUR".into(),
            (false, Fanin::Balanced { .. }, false) => "STOUR".into(),
            (false, Fanin::Balanced { .. }, true) => "STOUR-pad".into(),
            (false, Fanin::Fixed(f), true) => format!("OPT-{f}way"),
            (false, Fanin::Fixed(f), false) => format!("STOUR-{f}way"),
        }
    }

    /// The original static f-way tournament (STOUR).
    pub fn stour(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        Self::with_config(arena, p, topo, FwayConfig::stour())
    }

    /// The original dynamic f-way tournament (DTOUR).
    pub fn dtour(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        Self::with_config(arena, p, topo, FwayConfig::dtour())
    }

    /// Figure 11's "padding static f-way": STOUR with one line per flag.
    pub fn stour_padded(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        Self::with_config(arena, p, topo, FwayConfig { padded_flags: true, ..FwayConfig::stour() })
    }

    /// Figure 11's "padding static 4-way": padded flags and fixed fan-in 4,
    /// still with the original global wake-up.
    pub fn padded_4way(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        Self::with_config(
            arena,
            p,
            topo,
            FwayConfig { fanin: Fanin::Fixed(4), padded_flags: true, ..FwayConfig::stour() },
        )
    }

    /// The paper's optimized barrier for `topo` (Table IV's "ours").
    pub fn optimized(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        let mut b = Self::with_config(arena, p, topo, FwayConfig::optimized(topo));
        b.name = "OPT".into();
        b
    }

    /// The active configuration.
    pub fn config(&self) -> &FwayConfig {
        &self.config
    }

    /// Number of tournament rounds.
    pub fn rounds(&self) -> usize {
        self.levels.len()
    }

    fn wait_static(&self, ctx: &dyn MemCtx, e: u32) {
        let mut idx = ctx.tid();
        for level in &self.levels {
            let f = level.fanin;
            let group = idx / f;
            let pos = idx % f;
            if pos != 0 {
                // Loser: publish arrival on own flag, await release.
                ctx.store(level.entry(idx), e);
                self.wakeup.wait(ctx, e);
                return;
            }
            // Winner: poll the whole group in one loop. With packed flags
            // the first fetch brings every sibling's flag in one line (one
            // R_R); with padded flags the independent line fetches overlap.
            let size = f.min(level.contestants - group * f);
            if size > 1 {
                let flags: Vec<_> = (1..size).map(|q| level.entry(idx + q)).collect();
                ctx.spin_until_all_ge(&flags, e);
            }
            idx = group;
        }
        debug_assert_eq!(idx, 0, "static champion must be thread 0");
        self.wakeup.release(ctx, e);
    }

    fn wait_dynamic(&self, ctx: &dyn MemCtx, e: u32) {
        let mut idx = ctx.tid();
        for level in &self.levels {
            let f = level.fanin;
            let group = idx / f;
            let size = f.min(level.contestants - group * f);
            if size > 1 {
                let counter = level.entry(group);
                let prev = ctx.fetch_add(counter, 1);
                if prev != size as u32 - 1 {
                    self.wakeup.wait(ctx, e);
                    return;
                }
                // Last arrival wins the group; reset for the next episode
                // (safe: group peers are blocked until the release). May
                // relax — the winner's next operation is a higher-level
                // fetch_add (an RMW, which drains buffered stores) or the
                // wake-up release store, either of which orders the reset
                // before any peer can wake and re-enter.
                ctx.store_relaxed(counter, 0);
            }
            idx = group;
        }
        self.wakeup.release(ctx, e);
    }
}

impl Barrier for FwayBarrier {
    fn wait(&self, ctx: &dyn MemCtx) {
        if ctx.nthreads() == 1 {
            return;
        }
        let e = self.epochs.next(ctx);
        if self.config.dynamic {
            self.wait_dynamic(ctx, e);
        } else {
            self.wait_static(ctx, e);
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{check_host, check_sim, HOST_SIZES, SIM_SIZES};
    use armbar_topology::Platform;

    #[test]
    fn stour_sim_correct_across_sizes() {
        for &p in &SIM_SIZES {
            check_sim(Platform::Phytium2000Plus, p, 4, |a, p, t| {
                Box::new(FwayBarrier::stour(a, p, t))
            });
        }
    }

    #[test]
    fn dtour_sim_correct_across_sizes() {
        for &p in &SIM_SIZES {
            check_sim(Platform::ThunderX2, p, 4, |a, p, t| Box::new(FwayBarrier::dtour(a, p, t)));
        }
    }

    #[test]
    fn padded_variants_sim_correct() {
        for &p in &[1usize, 5, 17, 64] {
            check_sim(Platform::Kunpeng920, p, 3, |a, p, t| {
                Box::new(FwayBarrier::stour_padded(a, p, t))
            });
            check_sim(Platform::Kunpeng920, p, 3, |a, p, t| {
                Box::new(FwayBarrier::padded_4way(a, p, t))
            });
        }
    }

    #[test]
    fn optimized_sim_correct_on_all_platforms() {
        for platform in Platform::ARM {
            for &p in &[1usize, 2, 13, 32, 64] {
                check_sim(platform, p, 3, |a, p, t| Box::new(FwayBarrier::optimized(a, p, t)));
            }
        }
    }

    #[test]
    fn every_fixed_fanin_sim_correct() {
        for f in [2usize, 4, 8, 16, 32, 64] {
            check_sim(Platform::ThunderX2, 64, 3, move |a, p, t| {
                Box::new(FwayBarrier::with_config(
                    a,
                    p,
                    t,
                    FwayConfig { fanin: Fanin::Fixed(f), ..FwayConfig::stour() },
                ))
            });
        }
    }

    #[test]
    fn every_wakeup_policy_sim_correct() {
        for wakeup in [WakeupKind::Global, WakeupKind::BinaryTree, WakeupKind::NumaTree] {
            for &p in &[2usize, 16, 64] {
                check_sim(Platform::Phytium2000Plus, p, 3, move |a, p, t| {
                    Box::new(FwayBarrier::with_config(
                        a,
                        p,
                        t,
                        FwayConfig { wakeup, ..FwayConfig::optimized(t) },
                    ))
                });
            }
        }
    }

    #[test]
    fn dynamic_with_tree_wakeup_sim_correct() {
        // Dynamic champion may not be thread 0; the tree release must
        // still reach everyone.
        check_sim(Platform::ThunderX2, 32, 4, |a, p, t| {
            Box::new(FwayBarrier::with_config(
                a,
                p,
                t,
                FwayConfig { wakeup: WakeupKind::BinaryTree, ..FwayConfig::dtour() },
            ))
        });
    }

    #[test]
    fn host_correct_stour_and_optimized() {
        for &p in &HOST_SIZES {
            check_host(p, 30, |a, p, t| Box::new(FwayBarrier::stour(a, p, t)));
            check_host(p, 30, |a, p, t| Box::new(FwayBarrier::optimized(a, p, t)));
        }
    }

    #[test]
    fn host_correct_dtour() {
        for &p in &HOST_SIZES {
            check_host(p, 30, |a, p, t| Box::new(FwayBarrier::dtour(a, p, t)));
        }
    }

    #[test]
    fn optimized_config_picks_platform_wakeups() {
        // Paper Section VI-B: tree on Phytium/ThunderX2, global on KP920.
        let phy = FwayConfig::optimized(&Topology::preset(Platform::Phytium2000Plus));
        let tx2 = FwayConfig::optimized(&Topology::preset(Platform::ThunderX2));
        let kp = FwayConfig::optimized(&Topology::preset(Platform::Kunpeng920));
        assert_eq!(phy.wakeup, WakeupKind::NumaTree);
        assert_eq!(tx2.wakeup, WakeupKind::NumaTree);
        assert_eq!(kp.wakeup, WakeupKind::Global);
        for c in [phy, tx2, kp] {
            assert_eq!(c.fanin, Fanin::Fixed(4));
            assert!(c.padded_flags);
            assert!(!c.dynamic);
        }
    }

    #[test]
    fn padded_flags_shrink_invalidation_fanout() {
        // The false-sharing effect the paper's §V-A padding removes, now
        // observable: with packed 4-byte flags, every arrival store
        // invalidates the copies of all siblings (and unrelated groups)
        // spinning on the same line, so the run's total RFO invalidation
        // fan-out must be strictly larger than with one-flag-per-line.
        use armbar_simcoh::SimBuilder;
        use std::sync::Arc;

        let run = |padded: bool| {
            let topo = Arc::new(Topology::preset(Platform::Phytium2000Plus));
            let mut arena = Arena::new();
            let barrier = Arc::new(FwayBarrier::with_config(
                &mut arena,
                64,
                &topo,
                FwayConfig { padded_flags: padded, ..FwayConfig::stour() },
            ));
            let stats = SimBuilder::new(topo, 64)
                .run(move |ctx| {
                    for _ in 0..3 {
                        barrier.wait(ctx);
                    }
                })
                .unwrap();
            stats.coherence().total()
        };
        let packed = run(false);
        let padded = run(true);
        assert!(
            padded.rfo_invalidations < packed.rfo_invalidations,
            "padding must cut RFO fan-out: padded {} vs packed {}",
            padded.rfo_invalidations,
            packed.rfo_invalidations
        );
    }

    #[test]
    fn packed_layout_shares_lines_padded_does_not() {
        let topo = Topology::preset(Platform::ThunderX2);
        let line = topo.cacheline_bytes() as u32;
        let mut arena = Arena::new();
        let packed = FwayBarrier::stour(&mut arena, 64, &topo);
        let l0 = &packed.levels[0];
        assert_eq!(l0.entry(0) / line, l0.entry(1) / line, "packed flags share a line");

        let mut arena = Arena::new();
        let padded = FwayBarrier::stour_padded(&mut arena, 64, &topo);
        let l0 = &padded.levels[0];
        assert_ne!(l0.entry(0) / line, l0.entry(1) / line, "padded flags get own lines");
    }

    #[test]
    fn names_match_paper_labels() {
        let topo = Topology::preset(Platform::ThunderX2);
        let mut arena = Arena::new();
        assert_eq!(FwayBarrier::stour(&mut arena, 8, &topo).name(), "STOUR");
        assert_eq!(FwayBarrier::dtour(&mut arena, 8, &topo).name(), "DTOUR");
        assert_eq!(FwayBarrier::stour_padded(&mut arena, 8, &topo).name(), "STOUR-pad");
        assert_eq!(FwayBarrier::padded_4way(&mut arena, 8, &topo).name(), "OPT-4way");
        assert_eq!(FwayBarrier::optimized(&mut arena, 8, &topo).name(), "OPT");
    }

    #[test]
    fn rounds_follow_the_plan() {
        let topo = Topology::preset(Platform::ThunderX2);
        let mut arena = Arena::new();
        assert_eq!(FwayBarrier::stour(&mut arena, 64, &topo).rounds(), 2); // 8×8
        assert_eq!(FwayBarrier::padded_4way(&mut arena, 64, &topo).rounds(), 3); // 4×4×4
        assert_eq!(FwayBarrier::stour(&mut arena, 1, &topo).rounds(), 0);
    }
}

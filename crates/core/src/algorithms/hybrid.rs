//! HYBRID — a cluster-hierarchical barrier (extension).
//!
//! Not one of the paper's seven: this is the "hybrid" design direction the
//! paper's related-work section attributes to Rodchenko et al. —
//! centralized synchronization *within* a core cluster (where the shared
//! counter is cheap: every participant is an `L_0` neighbour) combined
//! with a tree *across* clusters. It composes naturally from this
//! workspace's pieces and serves as an ablation of the question "is the
//! f-way tournament actually better than clustering + counters?" on the
//! modeled machines.
//!
//! Arrival: each cluster's threads fetch-add a cluster-local padded
//! counter; the last arrival becomes the cluster representative and enters
//! a padded 4-way static tournament over representatives (one per
//! cluster). Notification: any [`WakeupKind`].

use armbar_simcoh::{arena::padded_elem, Addr, Arena};
use armbar_topology::Topology;

use crate::env::{Barrier, MemCtx};
use crate::trees::FaninPlan;
use crate::wakeup::{EpochSlots, Wakeup, WakeupKind};

/// Cluster-hierarchical barrier: per-cluster counters + a static f-way
/// tournament over cluster representatives.
#[derive(Debug)]
pub struct HybridBarrier {
    /// Padded per-cluster arrival counters.
    counters: Addr,
    /// Per-representative tournament levels (padded flags), flattened:
    /// `levels[l]` holds (base, fanin, contestants).
    levels: Vec<(Addr, usize, usize)>,
    line: usize,
    n_c: usize,
    clusters: usize,
    p: usize,
    wakeup: Wakeup,
    epochs: EpochSlots,
}

impl HybridBarrier {
    /// Builds the barrier for `p` threads on `topo`, clustering by the
    /// machine's `N_c` and using the machine-appropriate wake-up.
    pub fn new(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        Self::with_wakeup(
            arena,
            p,
            topo,
            crate::algorithms::fway::FwayConfig::optimized(topo).wakeup,
        )
    }

    /// Builds with an explicit wake-up policy.
    pub fn with_wakeup(arena: &mut Arena, p: usize, topo: &Topology, wakeup: WakeupKind) -> Self {
        assert!(p >= 1);
        let line = topo.cacheline_bytes();
        let n_c = topo.n_c().min(p).max(1);
        let clusters = p.div_ceil(n_c);
        let counters = arena.alloc_padded_u32_array(clusters, line);
        let plan = FaninPlan::fixed(clusters, 4);
        let mut levels = Vec::new();
        for (l, &f) in plan.rounds().iter().enumerate() {
            let contestants = plan.contestants(clusters, l);
            levels.push((arena.alloc_padded_u32_array(contestants, line), f, contestants));
        }
        Self {
            counters,
            levels,
            line,
            n_c,
            clusters,
            p,
            wakeup: Wakeup::new(arena, p, line, topo.n_c(), wakeup),
            epochs: EpochSlots::new(arena, p, line),
        }
    }

    /// Number of clusters participating.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    fn counter(&self, cluster: usize) -> Addr {
        padded_elem(self.counters, cluster, self.line)
    }
}

impl Barrier for HybridBarrier {
    fn wait(&self, ctx: &dyn MemCtx) {
        if ctx.nthreads() == 1 {
            return;
        }
        debug_assert_eq!(ctx.nthreads(), self.p, "built for {} threads", self.p);
        let me = ctx.tid();
        let e = self.epochs.next(ctx);

        // Intra-cluster: centralized counter among L_0 neighbours.
        let cluster = me / self.n_c;
        let members = self.n_c.min(self.p - cluster * self.n_c);
        if members > 1 {
            let counter = self.counter(cluster);
            let prev = ctx.fetch_add(counter, 1);
            if prev != members as u32 - 1 {
                self.wakeup.wait(ctx, e);
                return;
            }
            // Reset for reuse before anyone re-enters. May relax: every
            // representative path from here ends in a release store (loser
            // flag or wake-up release) before any cluster peer can wake and
            // re-enter, and that release orders the reset ahead of it.
            ctx.store_relaxed(counter, 0);
        }

        // Inter-cluster: padded 4-way static tournament over
        // representatives. The representative of cluster k plays as
        // contestant k; the *static* winner of a group is its first
        // contestant, but representatives are dynamic (last arrival), so
        // losers signal by flag exactly as in STOUR while winners poll.
        let mut idx = cluster;
        for &(base, f, contestants) in &self.levels {
            let group = idx / f;
            let pos = idx % f;
            if pos != 0 {
                ctx.store(padded_elem(base, idx, self.line), e);
                self.wakeup.wait(ctx, e);
                return;
            }
            let size = f.min(contestants - group * f);
            if size > 1 {
                let flags: Vec<_> =
                    (1..size).map(|q| padded_elem(base, idx + q, self.line)).collect();
                ctx.spin_until_all_ge(&flags, e);
            }
            idx = group;
        }
        self.wakeup.release(ctx, e);
    }

    fn name(&self) -> &str {
        "HYBRID"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{check_host, check_sim, HOST_SIZES, SIM_SIZES};
    use armbar_topology::Platform;

    #[test]
    fn sim_correct_across_sizes() {
        for &p in &SIM_SIZES {
            for platform in Platform::ARM {
                check_sim(platform, p, 3, |a, p, t| Box::new(HybridBarrier::new(a, p, t)));
            }
        }
    }

    #[test]
    fn sim_correct_with_every_wakeup() {
        for wakeup in [WakeupKind::Global, WakeupKind::BinaryTree, WakeupKind::NumaTree] {
            check_sim(Platform::ThunderX2, 64, 3, move |a, p, t| {
                Box::new(HybridBarrier::with_wakeup(a, p, t, wakeup))
            });
        }
    }

    #[test]
    fn host_correct_across_sizes() {
        for &p in &HOST_SIZES {
            check_host(p, 30, |a, p, t| Box::new(HybridBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn cluster_count_follows_topology() {
        let topo = Topology::preset(Platform::Kunpeng920); // N_c = 4
        let mut arena = Arena::new();
        assert_eq!(HybridBarrier::new(&mut arena, 64, &topo).clusters(), 16);
        assert_eq!(HybridBarrier::new(&mut arena, 6, &topo).clusters(), 2);
        assert_eq!(HybridBarrier::new(&mut arena, 3, &topo).clusters(), 1);
    }

    #[test]
    fn degenerate_single_cluster_works() {
        // P ≤ N_c: pure centralized counter + wake-up.
        check_sim(Platform::ThunderX2, 16, 4, |a, p, t| Box::new(HybridBarrier::new(a, p, t)));
    }
}

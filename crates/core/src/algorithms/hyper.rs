//! The LLVM OpenMP reference barrier: a hypercube-embedded tree with
//! branch factor 4 (libomp's default "hyper" barrier).
//!
//! Gather: in round `r` (stride `4^r`), surviving thread `i` is a parent if
//! `i mod 4^(r+1) == 0`, collecting arrivals from `i + j·4^r` (`j = 1..3`);
//! otherwise it publishes its own arrival flag and drops to the release
//! wait. Release mirrors the gather tree top-down.
//!
//! Flags are padded to 64 bytes — the fixed padding libomp uses — which is
//! deliberately *not* parameterized on the machine's real line size: on
//! Kunpeng 920's 128-byte lines two threads' flags share a line, so the
//! barrier false-shares there. That mismatch is part of why the paper's
//! optimized barrier beats LLVM by 9× on Kunpeng 920 while "only" 2.5–2.7×
//! elsewhere (Table IV).

use armbar_simcoh::{arena::padded_elem, Addr, Arena};
use armbar_topology::Topology;

use crate::env::{Barrier, MemCtx};
use crate::wakeup::EpochSlots;

/// libomp's branch factor for the hyper barrier.
const BRANCH: usize = 4;
/// libomp pads per-thread barrier flags to 64 bytes, regardless of the
/// actual cache-line size of the machine.
const LIBOMP_PAD: usize = 64;
/// Per-round runtime bookkeeping, ns. A real OpenMP barrier is not a bare
/// flag tree: at every gather/release step libomp maintains task-team
/// state, polls the task queue, and runs 64-bit flag machinery
/// (`__kmp_hyper_barrier_gather`/`_release`). The paper's Figure 6(b)
/// shows the resulting constant: LLVM's barrier costs microseconds at 64
/// threads where a bare tree of the same shape costs a fraction of that.
/// This charge models that per-step runtime work; see DESIGN.md §2.
const BOOKKEEPING_NS: f64 = 300.0;

/// Hypercube-embedded tree barrier (LLVM libomp style).
#[derive(Debug)]
pub struct HyperBarrier {
    /// Per-thread arrival flags, padded to 64 B.
    arrive: Addr,
    /// Per-thread release ("go") flags, padded to 64 B.
    go: Addr,
    rounds: usize,
    epochs: EpochSlots,
}

impl HyperBarrier {
    /// Builds the barrier for `p` threads.
    pub fn new(arena: &mut Arena, p: usize, topo: &Topology) -> Self {
        assert!(p >= 1);
        let rounds = rounds_for(p);
        Self {
            arrive: arena.alloc_padded_u32_array(p, LIBOMP_PAD),
            go: arena.alloc_padded_u32_array(p, LIBOMP_PAD),
            rounds,
            epochs: EpochSlots::new(arena, p, topo.cacheline_bytes()),
        }
    }

    fn arrive_flag(&self, i: usize) -> Addr {
        padded_elem(self.arrive, i, LIBOMP_PAD)
    }

    fn go_flag(&self, i: usize) -> Addr {
        padded_elem(self.go, i, LIBOMP_PAD)
    }

    /// Number of gather rounds (`⌈log₄P⌉`).
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

/// `⌈log₄ p⌉`.
fn rounds_for(p: usize) -> usize {
    let mut r = 0;
    let mut span = 1usize;
    while span < p {
        span *= BRANCH;
        r += 1;
    }
    r
}

impl Barrier for HyperBarrier {
    fn wait(&self, ctx: &dyn MemCtx) {
        let p = ctx.nthreads();
        if p == 1 {
            return;
        }
        let me = ctx.tid();
        let e = self.epochs.next(ctx);

        // Gather phase.
        for r in 0..self.rounds {
            let stride = BRANCH.pow(r as u32);
            ctx.compute_ns(BOOKKEEPING_NS);
            if me.is_multiple_of(stride * BRANCH) {
                for j in 1..BRANCH {
                    let child = me + j * stride;
                    if child < p {
                        ctx.spin_until_ge(self.arrive_flag(child), e);
                    }
                }
            } else {
                ctx.store(self.arrive_flag(me), e);
                break;
            }
        }

        // Release phase, mirroring the gather tree top-down.
        if me != 0 {
            ctx.spin_until_ge(self.go_flag(me), e);
        } else {
            // Root completed every gather round: all threads have arrived.
            ctx.mark(crate::env::MARK_ARRIVED);
        }
        for r in (0..self.rounds).rev() {
            let stride = BRANCH.pow(r as u32);
            if me.is_multiple_of(stride * BRANCH) {
                ctx.compute_ns(BOOKKEEPING_NS);
                for j in 1..BRANCH {
                    let child = me + j * stride;
                    if child < p {
                        ctx.store(self.go_flag(child), e);
                    }
                }
            }
        }
    }

    fn name(&self) -> &str {
        "LLVM-hyper"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{check_host, check_sim, HOST_SIZES, SIM_SIZES};
    use armbar_topology::Platform;

    #[test]
    fn rounds_formula() {
        assert_eq!(rounds_for(1), 0);
        assert_eq!(rounds_for(2), 1);
        assert_eq!(rounds_for(4), 1);
        assert_eq!(rounds_for(5), 2);
        assert_eq!(rounds_for(16), 2);
        assert_eq!(rounds_for(17), 3);
        assert_eq!(rounds_for(64), 3);
    }

    #[test]
    fn sim_correct_across_sizes() {
        for &p in &SIM_SIZES {
            check_sim(Platform::ThunderX2, p, 4, |a, p, t| Box::new(HyperBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn sim_correct_on_all_arm_platforms() {
        for platform in Platform::ARM {
            check_sim(platform, 64, 3, |a, p, t| Box::new(HyperBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn host_correct_across_sizes() {
        for &p in &HOST_SIZES {
            check_host(p, 30, |a, p, t| Box::new(HyperBarrier::new(a, p, t)));
        }
    }

    #[test]
    fn flags_false_share_on_kunpeng_lines() {
        // libomp's fixed 64-byte padding vs. Kunpeng 920's 128-byte lines:
        // adjacent threads' arrive flags land on the same line.
        let topo = Topology::preset(Platform::Kunpeng920);
        let mut arena = Arena::new();
        let b = HyperBarrier::new(&mut arena, 8, &topo);
        let line = topo.cacheline_bytes() as u32;
        assert_eq!(b.arrive_flag(0) / line, b.arrive_flag(1) / line);
        // …whereas on 64-byte-line machines they do not.
        let topo64 = Topology::preset(Platform::ThunderX2);
        let mut arena = Arena::new();
        let b64 = HyperBarrier::new(&mut arena, 8, &topo64);
        let line64 = topo64.cacheline_bytes() as u32;
        assert_ne!(b64.arrive_flag(0) / line64, b64.arrive_flag(1) / line64);
    }
}

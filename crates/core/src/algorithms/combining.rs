//! CMB — the software combining tree barrier (Section II-B-2).
//!
//! Yew, Tzeng & Lawrie's answer to the centralized hot-spot: threads are
//! partitioned into groups, each group shares a counter on its own cache
//! line, and the **last** arrival of each group climbs to the next level.
//! The paper evaluates fan-in 2 (`CMB`); the fan-in is a parameter here.
//! Notification is the classic global sense flip.

use armbar_simcoh::{arena::padded_elem, Addr, Arena};
use armbar_topology::Topology;

use crate::env::{Barrier, MemCtx};

/// One level of the combining tree: contestants are grouped `fanin` at a
/// time, each group owning a padded counter.
#[derive(Debug)]
struct Level {
    counters: Addr,
    groups: usize,
    contestants: usize,
}

/// Software combining tree barrier with configurable fan-in.
#[derive(Debug)]
pub struct CombiningTreeBarrier {
    levels: Vec<Level>,
    fanin: usize,
    gsense: Addr,
    local_sense: Addr,
    stride: usize,
    name: String,
}

impl CombiningTreeBarrier {
    /// Builds the tree for `p` threads with the given `fanin` (the paper's
    /// CMB uses 2).
    pub fn new(arena: &mut Arena, p: usize, topo: &Topology, fanin: usize) -> Self {
        assert!(p >= 1);
        assert!(fanin >= 2);
        let line = topo.cacheline_bytes();
        let mut levels = Vec::new();
        let mut m = p;
        while m > 1 {
            let groups = m.div_ceil(fanin);
            levels.push(Level {
                counters: arena.alloc_padded_u32_array(groups, line),
                groups,
                contestants: m,
            });
            m = groups;
        }
        Self {
            levels,
            fanin,
            gsense: arena.alloc_padded_u32(line),
            local_sense: arena.alloc_padded_u32_array(p, line),
            stride: line,
            name: if fanin == 2 { "CMB".to_string() } else { format!("CMB-{fanin}") },
        }
    }

    /// Tree height in levels.
    pub fn height(&self) -> usize {
        self.levels.len()
    }
}

impl Barrier for CombiningTreeBarrier {
    fn wait(&self, ctx: &dyn MemCtx) {
        let me = ctx.tid();
        // Thread-local sense word: relaxed, nobody else touches this slot.
        let ls_addr = padded_elem(self.local_sense, me, self.stride);
        let ls = 1 - ctx.load_relaxed(ls_addr);
        ctx.store_relaxed(ls_addr, ls);
        if ctx.nthreads() == 1 {
            return;
        }

        let mut idx = me;
        for level in &self.levels {
            let group = idx / self.fanin;
            let size = self.fanin.min(level.contestants - group * self.fanin);
            debug_assert!(group < level.groups);
            if size > 1 {
                let counter = padded_elem(level.counters, group, self.stride);
                let prev = ctx.fetch_add(counter, 1);
                if prev != size as u32 - 1 {
                    // Not the last of the group: wait for the global release.
                    ctx.spin_until_eq(self.gsense, ls);
                    return;
                }
                // Last arrival: reset for reuse before climbing (peers of
                // this group are blocked on gsense and cannot return here
                // until after the flip). Unlike SENSE's reset this must NOT
                // relax: the resetter may lose at a higher level and go
                // spin — with no release store of its own, a deferred reset
                // could commit after next episode's arrivals and erase them.
                ctx.store(counter, 0);
            }
            idx = group;
        }
        // Root winner releases everyone.
        ctx.mark(crate::env::MARK_ARRIVED);
        ctx.store(self.gsense, ls);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{check_host, check_sim, HOST_SIZES, SIM_SIZES};
    use armbar_topology::Platform;

    #[test]
    fn sim_correct_across_sizes_fanin2() {
        for &p in &SIM_SIZES {
            check_sim(Platform::ThunderX2, p, 4, |a, p, t| {
                Box::new(CombiningTreeBarrier::new(a, p, t, 2))
            });
        }
    }

    #[test]
    fn sim_correct_with_wider_fanin() {
        for fanin in [3, 4, 8] {
            for &p in &[1usize, 5, 16, 64] {
                check_sim(Platform::Kunpeng920, p, 3, |a, p, t| {
                    Box::new(CombiningTreeBarrier::new(a, p, t, fanin))
                });
            }
        }
    }

    #[test]
    fn host_correct_across_sizes() {
        for &p in &HOST_SIZES {
            check_host(p, 30, |a, p, t| Box::new(CombiningTreeBarrier::new(a, p, t, 2)));
        }
    }

    #[test]
    fn height_is_logarithmic() {
        let topo = Topology::preset(Platform::ThunderX2);
        let mut arena = Arena::new();
        assert_eq!(CombiningTreeBarrier::new(&mut arena, 64, &topo, 2).height(), 6);
        assert_eq!(CombiningTreeBarrier::new(&mut arena, 64, &topo, 4).height(), 3);
        assert_eq!(CombiningTreeBarrier::new(&mut arena, 1, &topo, 2).height(), 0);
    }

    #[test]
    fn name_reflects_fanin() {
        let topo = Topology::preset(Platform::ThunderX2);
        let mut arena = Arena::new();
        assert_eq!(CombiningTreeBarrier::new(&mut arena, 8, &topo, 2).name(), "CMB");
        assert_eq!(CombiningTreeBarrier::new(&mut arena, 8, &topo, 4).name(), "CMB-4");
    }
}

//! Hardened episodes: deadlines and poisoning on top of any [`Barrier`].
//!
//! The algorithms in this crate, like the paper's, assume every participant
//! arrives and every wakeup lands. On the host backend a violated
//! assumption — a crashed participant, a store that never happened, a
//! straggler that outlives everyone's patience — turns `wait` into an
//! infinite spin. [`RobustBarrier`] makes those failures *observable*
//! instead:
//!
//! * **Deadlines** — [`RobustBarrier::wait`] re-implements the inner
//!   barrier's spin waits as bounded polling loops (same Acquire loads,
//!   staged by a [`SpinPolicy`]) and returns
//!   [`BarrierError::Timeout`] when an episode exceeds its deadline,
//!   reporting the address the thread was stuck on and how many polls it
//!   burned.
//! * **Poisoning** — in the style of `std::sync::Mutex`: a participant
//!   that panics while holding a [`PoisonGuard`] (or while inside `wait`)
//!   marks the barrier poisoned, and every current and future waiter fails
//!   fast with [`BarrierError::Poisoned`] rather than spinning until its
//!   own deadline. A timeout also poisons, so one detected hang releases
//!   the whole team at the speed of a cache-line invalidation.
//!
//! The wrapper is backend-agnostic (it only speaks [`MemCtx`]), but it is
//! *aimed at the host*: the simulator already converts these failures into
//! typed `SimError`s at zero cost, and its virtual clock makes wall-clock
//! deadlines meaningless there. Use raw barriers under simulation and
//! `RobustBarrier` on real threads.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use armbar_simcoh::{Addr, Arena};

use crate::env::{Barrier, MemCtx};
use crate::host::SpinPolicy;
use crate::phaser::{phaser_mark, Phaser, PH_COMPLETED};

/// How a hardened episode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BarrierError {
    /// The episode did not complete within the deadline. `addr` is the
    /// word this thread was spinning on when time ran out and `spins` how
    /// many failed polls it had accumulated there — enough to tell a lost
    /// wakeup (stuck on the wake flag) from a missing arrival (stuck on a
    /// peer's arrival flag).
    Timeout { tid: usize, addr: Addr, spins: u64 },
    /// Another participant (`by`) crashed or timed out and poisoned the
    /// barrier; this thread failed fast instead of waiting for a wakeup
    /// that can never come.
    Poisoned { tid: usize, by: usize },
    /// A survivor evicted this slot from a [`Phaser`] team after it
    /// stalled: the survivor proxy-arrived on its behalf, `episode`
    /// completed degraded, and the team reformed without it. Reported
    /// exactly once, to the evictee's own slot.
    Evicted { tid: usize, episode: u32 },
}

impl std::fmt::Display for BarrierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BarrierError::Timeout { tid, addr, spins } => write!(
                f,
                "barrier timeout: t{tid} gave up on addr {addr:#x} after {spins} failed polls"
            ),
            BarrierError::Poisoned { tid, by } => {
                write!(f, "barrier poisoned: t{tid} failed fast (poisoned by t{by})")
            }
            BarrierError::Evicted { tid, episode } => {
                write!(f, "barrier evicted: t{tid} was voted out at episode {episode}")
            }
        }
    }
}

impl std::error::Error for BarrierError {}

/// Deadline and waiting strategy for a [`RobustBarrier`] /
/// [`RobustPhaser`].
#[derive(Debug, Clone)]
pub struct RobustConfig {
    /// Per-`wait` deadline. Generous by default: a deadline exists to turn
    /// a hang into an error, not to race healthy episodes.
    pub deadline: Duration,
    /// Staged spin/yield/backoff policy for the bounded waits.
    pub policy: SpinPolicy,
    /// Deterministic deadline: abort a bounded wait after this many failed
    /// polls, in addition to the wall clock. This is how timeouts become
    /// meaningful **on the simulator**, whose virtual clock makes
    /// wall-clock deadlines vacuous: poll counts are a pure function of
    /// the schedule, so the same seed detects the same stall at the same
    /// point on every run and transport. When set, the waiter skips the
    /// yield/backoff pauses (pointless against virtual time).
    pub max_polls: Option<u64>,
}

impl Default for RobustConfig {
    fn default() -> Self {
        Self { deadline: Duration::from_secs(5), policy: SpinPolicy::from_env(), max_polls: None }
    }
}

/// Typed unwind payload used to exit an inner `wait` that can no longer
/// succeed. Caught by [`RobustBarrier::wait_deadline`] and converted into a
/// [`BarrierError`]; never escapes this module.
enum WaitAbort {
    Timeout { addr: Addr, spins: u64 },
    Poisoned { by: usize },
}

/// A [`Barrier`] wrapper adding deadlines and std-Mutex-style poisoning.
///
/// All mutable state (the poison word) lives in the shared arena, so one
/// instance is shared by all participants exactly like the barrier it
/// wraps, on either backend.
pub struct RobustBarrier {
    inner: Box<dyn Barrier>,
    /// Padded poison word: `0` = healthy, `tid + 1` = poisoned by `tid`.
    poison: Addr,
    /// First-poisoner ticket: every detector `fetch_add`s here; only the
    /// ticket-0 winner writes the poison word, so the reported `by` is the
    /// *first* detection (lowest virtual time on the simulator) no matter
    /// how many waiters time out in the same dead episode.
    claim: Addr,
    config: RobustConfig,
}

impl RobustBarrier {
    /// Wraps `inner`, allocating the poison word from `arena` alone on a
    /// `line_bytes`-sized cache line (so fail-fast polling never false-shares
    /// with barrier state). Must be called before the arena is materialized.
    pub fn new(
        arena: &mut Arena,
        line_bytes: usize,
        inner: Box<dyn Barrier>,
        config: RobustConfig,
    ) -> Self {
        let poison = arena.alloc_padded_u32(line_bytes);
        let claim = arena.alloc_padded_u32(line_bytes);
        Self { inner, poison, claim, config }
    }

    /// The wrapped barrier's label.
    pub fn name(&self) -> &str {
        self.inner.name()
    }

    /// Who poisoned the barrier, if anyone.
    pub fn poisoned_by(&self, ctx: &dyn MemCtx) -> Option<usize> {
        match ctx.load(self.poison) {
            0 => None,
            tid1 => Some(tid1 as usize - 1),
        }
    }

    /// Clears the poison mark so a *new team* can reuse the allocation.
    /// Best-effort: the wrapped barrier's own state (counters, epoch flags)
    /// may still reflect the interrupted episode; monotonic epoch-based
    /// algorithms usually self-heal on the next episode, counter-based
    /// ones may not. Prefer rebuilding the barrier after a failure.
    pub fn clear_poison(&self, ctx: &dyn MemCtx) {
        ctx.store(self.poison, 0);
        ctx.store(self.claim, 0);
    }

    /// An episode guard for the calling participant: while it is live, a
    /// panic on this thread poisons the barrier so blocked peers fail fast
    /// (the host-backend analogue of `SimError::ThreadPanic`). Hold it
    /// across the whole parallel section, not just the `wait` calls.
    pub fn guard<'a>(&'a self, ctx: &'a dyn MemCtx) -> PoisonGuard<'a> {
        PoisonGuard { poison: self.poison, claim: self.claim, ctx, armed: true }
    }

    /// Blocks until all participants arrive, the configured deadline
    /// expires, or the barrier is poisoned.
    pub fn wait(&self, ctx: &dyn MemCtx) -> Result<(), BarrierError> {
        self.wait_deadline(ctx, self.config.deadline)
    }

    /// [`RobustBarrier::wait`] with an explicit deadline for this episode.
    ///
    /// On timeout the barrier is poisoned (so peers stuck in the same dead
    /// episode fail fast as [`BarrierError::Poisoned`]) and the wrapped
    /// barrier's state must be considered lost — see
    /// [`RobustBarrier::clear_poison`].
    pub fn wait_deadline(&self, ctx: &dyn MemCtx, deadline: Duration) -> Result<(), BarrierError> {
        silence_wait_aborts();
        if let Some(by) = self.poisoned_by(ctx) {
            return Err(BarrierError::Poisoned { tid: ctx.tid(), by });
        }
        let bounded = BoundedCtx {
            inner: ctx,
            poison: self.poison,
            deadline: Instant::now() + deadline,
            policy: self.config.policy.clone(),
            max_polls: self.config.max_polls,
        };
        match catch_unwind(AssertUnwindSafe(|| self.inner.wait(&bounded))) {
            Ok(()) => Ok(()),
            Err(payload) => match payload.downcast::<WaitAbort>() {
                Ok(abort) => Err(match *abort {
                    WaitAbort::Timeout { addr, spins } => {
                        // Poison so peers blocked on the same dead episode
                        // fail fast instead of each burning a full deadline.
                        claim_poison(ctx, self.claim, self.poison, addr, spins)
                    }
                    WaitAbort::Poisoned { by } => BarrierError::Poisoned { tid: ctx.tid(), by },
                }),
                Err(other) => {
                    // A genuine panic inside the wrapped algorithm: poison
                    // for the peers, then let the panic keep unwinding.
                    if ctx.fetch_add(self.claim, 1) == 0 {
                        ctx.store(self.poison, ctx.tid() as u32 + 1);
                    }
                    resume_unwind(other);
                }
            },
        }
    }
}

/// The first-poisoner protocol shared by [`RobustBarrier`] and
/// [`RobustPhaser`]: every timed-out detector takes a ticket; ticket 0
/// writes the poison word and reports the primary `Timeout`, every later
/// detector waits the (imminent) poison store and reports `Poisoned` by
/// the *winner* — so all participants agree on a single first poisoner
/// (the lowest-virtual-time detection on the simulator, where ticket
/// order is the deterministic schedule order).
fn claim_poison(
    ctx: &dyn MemCtx,
    claim: Addr,
    poison: Addr,
    addr: Addr,
    spins: u64,
) -> BarrierError {
    if ctx.fetch_add(claim, 1) == 0 {
        ctx.store(poison, ctx.tid() as u32 + 1);
        BarrierError::Timeout { tid: ctx.tid(), addr, spins }
    } else {
        let by = ctx.spin_until_ge(poison, 1) as usize - 1;
        BarrierError::Poisoned { tid: ctx.tid(), by }
    }
}

/// The [`WaitAbort`] escape is an implementation detail: it is always
/// caught by `wait_deadline`, so the default panic hook must not spray a
/// "Box<dyn Any>" message and backtrace on every timeout.
fn silence_wait_aborts() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<WaitAbort>() {
                prev(info);
            }
        }));
    });
}

/// Poisons the barrier if dropped during a panic — see
/// [`RobustBarrier::guard`].
pub struct PoisonGuard<'a> {
    poison: Addr,
    claim: Addr,
    ctx: &'a dyn MemCtx,
    armed: bool,
}

impl PoisonGuard<'_> {
    /// Consumes the guard without poisoning even if a panic is in flight
    /// (for participants that leave the team in an orderly way).
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        // Claim-first, and never spin in a destructor: a guard that loses
        // the ticket leaves the winner's attribution in place.
        if self.armed && std::thread::panicking() && self.ctx.fetch_add(self.claim, 1) == 0 {
            self.ctx.store(self.poison, self.ctx.tid() as u32 + 1);
        }
    }
}

/// A [`Phaser`] wrapper that turns stalls into **recovery** instead of
/// terminal poisoning: when a bounded wait times out, the detecting
/// survivor runs a seeded eviction vote — [`Phaser::find_victim`] names
/// the stalled member whose absence explains the stall, a first-claim-wins
/// ticket elects one evictor, the winner **proxy-arrives** for the victim
/// (shyper's `add_barrier_count` idiom), the episode completes *degraded*,
/// and the next epoch reforms with P−1 members. The victim's slot receives
/// [`BarrierError::Evicted`] exactly once. Poisoning remains the fallback
/// when eviction is disabled, the quorum floor would be violated, the
/// stall is never attributable to a member, or recovery attempts run out.
///
/// Timeouts are wall-clock on the host and poll-count
/// ([`RobustConfig::max_polls`]) on the simulator, where detection order
/// is deterministic: the same seed evicts the same victim at the same
/// virtual time on every run.
pub struct RobustPhaser {
    inner: Box<dyn Phaser>,
    poison: Addr,
    claim: Addr,
    config: RobustConfig,
    eviction: bool,
    min_members: u32,
}

impl RobustPhaser {
    /// Wraps `inner`; same arena discipline as [`RobustBarrier::new`].
    /// Eviction starts enabled with a quorum floor of 1 member.
    pub fn new(
        arena: &mut Arena,
        line_bytes: usize,
        inner: Box<dyn Phaser>,
        config: RobustConfig,
    ) -> Self {
        let poison = arena.alloc_padded_u32(line_bytes);
        let claim = arena.alloc_padded_u32(line_bytes);
        Self { inner, poison, claim, config, eviction: true, min_members: 1 }
    }

    /// Enables or disables the eviction vote; disabled means every timeout
    /// poisons, exactly like [`RobustBarrier`].
    pub fn with_eviction(mut self, enabled: bool) -> Self {
        self.eviction = enabled;
        self
    }

    /// The minimum member count the team may degrade to: an eviction that
    /// would drop below this floor poisons instead (quorum lost).
    pub fn with_min_members(mut self, floor: u32) -> Self {
        self.min_members = floor.max(1);
        self
    }

    /// The wrapped phaser's label.
    pub fn name(&self) -> &str {
        self.inner.name()
    }

    /// Who poisoned the team, if recovery gave up.
    pub fn poisoned_by(&self, ctx: &dyn MemCtx) -> Option<usize> {
        match ctx.load(self.poison) {
            0 => None,
            tid1 => Some(tid1 as usize - 1),
        }
    }

    /// The current epoch / committed member count (see [`Phaser`]).
    pub fn epoch(&self, ctx: &dyn MemCtx) -> u32 {
        self.inner.epoch(ctx)
    }
    /// See [`Phaser::members`].
    pub fn members(&self, ctx: &dyn MemCtx) -> u32 {
        self.inner.members(ctx)
    }

    /// Joins the team (unbounded: a join can only commit when the current
    /// members reach their boundary, so its latency is the team's, not a
    /// fault indicator). Returns the first member epoch.
    pub fn register(&self, ctx: &dyn MemCtx) -> u32 {
        self.inner.register(ctx)
    }

    /// See [`Phaser::request_join`] (non-blocking).
    pub fn request_join(&self, ctx: &dyn MemCtx) -> u32 {
        self.inner.request_join(ctx)
    }

    /// See [`Phaser::await_join`] (unbounded, like [`RobustPhaser::register`]).
    pub fn await_join(&self, ctx: &dyn MemCtx, token: u32) -> u32 {
        self.inner.await_join(ctx, token)
    }

    /// One hardened episode: bounded arrive, then bounded release wait,
    /// each with the eviction-vote recovery loop.
    pub fn arrive_and_wait(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError> {
        let epoch = self.recovering(ctx, |b| self.inner.arrive(b))?;
        self.recovering(ctx, |b| {
            self.inner.wait_epoch(b, epoch);
            Ok(epoch)
        })?;
        ctx.mark(phaser_mark(PH_COMPLETED, ctx.tid(), epoch));
        Ok(epoch)
    }

    /// Hardened leave: the final arrival is bounded like any episode.
    pub fn deregister(&self, ctx: &dyn MemCtx) -> Result<u32, BarrierError> {
        self.recovering(ctx, |b| self.inner.deregister(b))
    }

    /// Bounded wait for `epoch` to commit (a leaver waiting out its final
    /// epoch before re-registering, see [`Phaser::deregister`]).
    pub fn wait_epoch(&self, ctx: &dyn MemCtx, epoch: u32) -> Result<(), BarrierError> {
        self.recovering(ctx, |b| {
            self.inner.wait_epoch(b, epoch);
            Ok(())
        })
    }

    /// Bounded wait on an **out-of-band signal word** (e.g. a churn
    /// script's join-handshake gate) until it reaches `value`; same
    /// deadline/poll budget as the episode waits. Unlike those, a timeout
    /// here neither votes (the stall is the *peer* side of the handshake
    /// dying, not a phaser member desertion — there is no victim to
    /// evict) nor poisons the team (the phaser itself may be perfectly
    /// healthy); the caller just gets the `Timeout` and classifies its
    /// own failure. A poisoned team still fails fast.
    pub fn wait_signal(
        &self,
        ctx: &dyn MemCtx,
        addr: Addr,
        value: u32,
    ) -> Result<u32, BarrierError> {
        silence_wait_aborts();
        if let Some(by) = self.poisoned_by(ctx) {
            return Err(BarrierError::Poisoned { tid: ctx.tid(), by });
        }
        let bounded = BoundedCtx {
            inner: ctx,
            poison: self.poison,
            deadline: Instant::now() + self.config.deadline,
            policy: self.config.policy.clone(),
            max_polls: self.config.max_polls,
        };
        match catch_unwind(AssertUnwindSafe(|| bounded.spin_until_ge(addr, value))) {
            Ok(v) => Ok(v),
            Err(payload) => match payload.downcast::<WaitAbort>() {
                Ok(abort) => Err(match *abort {
                    WaitAbort::Timeout { addr, spins } => {
                        BarrierError::Timeout { tid: ctx.tid(), addr, spins }
                    }
                    WaitAbort::Poisoned { by } => BarrierError::Poisoned { tid: ctx.tid(), by },
                }),
                Err(other) => resume_unwind(other),
            },
        }
    }

    /// Runs `f` under a bounded context; on timeout, tries one recovery
    /// step and re-enters (phaser operations are idempotent per epoch, see
    /// [`Phaser::arrive`]), poisoning when recovery is exhausted.
    fn recovering<T>(
        &self,
        ctx: &dyn MemCtx,
        f: impl Fn(&dyn MemCtx) -> Result<T, BarrierError>,
    ) -> Result<T, BarrierError> {
        silence_wait_aborts();
        let mut attempts: u32 = 0;
        loop {
            if let Some(by) = self.poisoned_by(ctx) {
                return Err(BarrierError::Poisoned { tid: ctx.tid(), by });
            }
            // The epoch this attempt can stall on. A timeout only licenses
            // an eviction vote for *this* epoch: if the boundary commits
            // while the timeout is in flight, the stall was already
            // resolved (by the champion or another recoverer) and voting
            // against the fresh epoch — where no one has arrived yet —
            // would evict a healthy member.
            let stalled_epoch = self.inner.epoch(ctx);
            let bounded = BoundedCtx {
                inner: ctx,
                poison: self.poison,
                deadline: Instant::now() + self.config.deadline,
                policy: self.config.policy.clone(),
                max_polls: self.config.max_polls,
            };
            match catch_unwind(AssertUnwindSafe(|| f(&bounded))) {
                Ok(r) => return r,
                Err(payload) => match payload.downcast::<WaitAbort>() {
                    Ok(abort) => match *abort {
                        WaitAbort::Poisoned { by } => {
                            return Err(BarrierError::Poisoned { tid: ctx.tid(), by })
                        }
                        WaitAbort::Timeout { addr, spins } => {
                            if self.inner.epoch(ctx) != stalled_epoch {
                                // The boundary moved under the timeout:
                                // progress, not a stall. Re-enter the wait
                                // without consuming a recovery attempt.
                                continue;
                            }
                            attempts += 1;
                            if !self.try_recover(ctx, attempts, stalled_epoch) {
                                return Err(claim_poison(
                                    ctx,
                                    self.claim,
                                    self.poison,
                                    addr,
                                    spins,
                                ));
                            }
                        }
                    },
                    Err(other) => {
                        if ctx.fetch_add(self.claim, 1) == 0 {
                            ctx.store(self.poison, ctx.tid() as u32 + 1);
                        }
                        resume_unwind(other);
                    }
                },
            }
        }
    }

    /// One recovery step after a timeout on `stalled_epoch`. `true` means
    /// "state may have changed, re-enter the bounded wait"; `false` falls
    /// back to poison. The epoch pins the vote: victim search and the
    /// eviction claim both no-op if the boundary commits concurrently.
    fn try_recover(&self, ctx: &dyn MemCtx, attempts: u32, stalled_epoch: u32) -> bool {
        if !self.eviction {
            return false;
        }
        let members = self.inner.members(ctx);
        // Cap the vote rounds: every productive round evicts a member, so
        // anything past the member count (plus slack for rounds where the
        // stall was not yet attributable) is a stall eviction cannot fix.
        if attempts > members + 2 {
            return false;
        }
        match self.inner.find_victim(ctx, stalled_epoch) {
            Some(victim) => {
                if members <= self.min_members {
                    return false; // quorum lost: evicting would under-run the floor
                }
                // Claim losers fall through to re-wait: the winner's proxy
                // arrival is what unsticks them.
                self.inner.evict(ctx, victim, stalled_epoch);
                true
            }
            // Not attributable (e.g. the stalled member's own subtree is
            // still filling in): re-wait and look again.
            None => true,
        }
    }
}

/// Poll-check cadence of the bounded spin loops: the poison word is read
/// and the clock consulted every this many failed polls. The poison line is
/// shared read-mostly, so the checks stay out of the coherence traffic of
/// the barrier's own flags; the first check happens on the first failed
/// poll so poisoning is noticed even at tiny deadlines.
const CHECK_EVERY: u64 = 64;

/// A [`MemCtx`] view that re-implements the spin waits as bounded polling
/// loops over `load`, escaping by unwinding with a [`WaitAbort`] when the
/// deadline passes or the poison word is set. Everything else forwards.
struct BoundedCtx<'a> {
    inner: &'a dyn MemCtx,
    poison: Addr,
    deadline: Instant,
    policy: SpinPolicy,
    max_polls: Option<u64>,
}

impl BoundedCtx<'_> {
    /// Deadline/poison check; diverges (by unwinding) when the episode is
    /// lost. The poll-count deadline is exact (deterministic on the
    /// simulator); the poison/wall-clock checks are rate-limited by the
    /// poll counter, with the first on the first failed poll so poisoning
    /// is noticed even at tiny deadlines.
    fn check(&self, stuck_at: Addr, polls: u64) {
        if self.max_polls.is_some_and(|mp| polls >= mp) {
            std::panic::panic_any(WaitAbort::Timeout { addr: stuck_at, spins: polls });
        }
        if !polls.is_multiple_of(CHECK_EVERY) {
            return;
        }
        let p = self.inner.load(self.poison);
        if p != 0 {
            std::panic::panic_any(WaitAbort::Poisoned { by: p as usize - 1 });
        }
        if Instant::now() >= self.deadline {
            std::panic::panic_any(WaitAbort::Timeout { addr: stuck_at, spins: polls });
        }
    }

    /// Host-side pause between failed polls. Skipped under a poll-count
    /// deadline: against the simulator's virtual clock, yields and
    /// backoff sleeps only add host wall time.
    fn pause(&self, wait: &mut crate::host::SpinWait) {
        if self.max_polls.is_none() {
            wait.pause();
        }
    }

    fn poll(&self, addr: Addr, pred: impl Fn(u32) -> bool) -> u32 {
        let mut wait = self.policy.waiter();
        let mut polls: u64 = 0;
        loop {
            let v = self.inner.load(addr);
            if pred(v) {
                return v;
            }
            self.check(addr, polls);
            polls += 1;
            self.pause(&mut wait);
        }
    }
}

impl MemCtx for BoundedCtx<'_> {
    fn tid(&self) -> usize {
        self.inner.tid()
    }
    fn nthreads(&self) -> usize {
        self.inner.nthreads()
    }
    fn load(&self, addr: Addr) -> u32 {
        self.inner.load(addr)
    }
    fn store(&self, addr: Addr, value: u32) {
        self.inner.store(addr, value)
    }
    fn load_relaxed(&self, addr: Addr) -> u32 {
        self.inner.load_relaxed(addr)
    }
    fn store_relaxed(&self, addr: Addr, value: u32) {
        self.inner.store_relaxed(addr, value)
    }
    fn fence(&self) {
        self.inner.fence()
    }
    fn fetch_add(&self, addr: Addr, delta: u32) -> u32 {
        self.inner.fetch_add(addr, delta)
    }
    fn compare_exchange(&self, addr: Addr, current: u32, new: u32) -> u32 {
        self.inner.compare_exchange(addr, current, new)
    }
    fn swap(&self, addr: Addr, new: u32) -> u32 {
        self.inner.swap(addr, new)
    }
    fn spin_until_eq(&self, addr: Addr, value: u32) -> u32 {
        self.poll(addr, |v| v == value)
    }
    fn spin_until_ge(&self, addr: Addr, value: u32) -> u32 {
        self.poll(addr, |v| v >= value)
    }
    fn spin_until_all_ge(&self, addrs: &[Addr], value: u32) {
        let mut wait = self.policy.waiter();
        let mut polls: u64 = 0;
        loop {
            match addrs.iter().find(|&&a| self.inner.load(a) < value) {
                None => return,
                Some(&stuck) => self.check(stuck, polls),
            }
            polls += 1;
            self.pause(&mut wait);
        }
    }
    fn compute_ns(&self, ns: f64) {
        self.inner.compute_ns(ns)
    }
    fn mark(&self, label: u32) {
        self.inner.mark(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostMem;
    use crate::registry::AlgorithmId;
    use armbar_topology::{Platform, Topology};
    use std::sync::Arc;

    fn fast_config(deadline_ms: u64) -> RobustConfig {
        RobustConfig {
            deadline: Duration::from_millis(deadline_ms),
            policy: SpinPolicy {
                yields_before_backoff: 8,
                max_backoff: Duration::from_micros(200),
                ..SpinPolicy::default()
            },
            ..RobustConfig::default()
        }
    }

    /// The last arriver "forgets" its release store: a lost wakeup.
    struct LostWakeup {
        counter: Addr,
        wake: Addr,
    }

    impl Barrier for LostWakeup {
        fn wait(&self, ctx: &dyn MemCtx) {
            let p = ctx.nthreads() as u32;
            if ctx.fetch_add(self.counter, 1) < p - 1 {
                ctx.spin_until_eq(self.wake, 1);
            }
        }
        fn name(&self) -> &str {
            "lost-wakeup"
        }
    }

    #[test]
    fn healthy_episodes_pass_through() {
        let topo = Topology::preset(Platform::Kunpeng920);
        let p = 4;
        let mut arena = Arena::new();
        let inner = AlgorithmId::Optimized.build(&mut arena, p, &topo);
        let robust = Arc::new(RobustBarrier::new(&mut arena, 64, inner, RobustConfig::default()));
        assert_eq!(robust.name(), "OPT");
        let mem = HostMem::new(&arena);
        std::thread::scope(|s| {
            for tid in 0..p {
                let mem = Arc::clone(&mem);
                let robust = Arc::clone(&robust);
                s.spawn(move || {
                    let ctx = mem.ctx(tid, p);
                    for _ in 0..50 {
                        robust.wait(&ctx).unwrap();
                    }
                    assert_eq!(robust.poisoned_by(&ctx), None);
                });
            }
        });
    }

    #[test]
    fn lost_wakeup_times_out_and_poisons() {
        let p = 4;
        let mut arena = Arena::new();
        let inner = Box::new(LostWakeup {
            counter: arena.alloc_padded_u32(64),
            wake: arena.alloc_padded_u32(64),
        });
        let robust = Arc::new(RobustBarrier::new(&mut arena, 64, inner, fast_config(300)));
        let mem = HostMem::new(&arena);
        let t0 = Instant::now();
        let results: Vec<Result<(), BarrierError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..p)
                .map(|tid| {
                    let mem = Arc::clone(&mem);
                    let robust = Arc::clone(&robust);
                    s.spawn(move || robust.wait(&mem.ctx(tid, p)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // The last arriver returns Ok (it never waits); every waiter gets a
        // typed error, at least one of them the primary Timeout.
        assert!(t0.elapsed() < Duration::from_secs(10), "waiters must not hang");
        let oks = results.iter().filter(|r| r.is_ok()).count();
        let timeouts =
            results.iter().filter(|r| matches!(r, Err(BarrierError::Timeout { .. }))).count();
        let errors = results.len() - oks;
        assert_eq!(oks, 1, "{results:?}");
        assert_eq!(errors, p - 1, "{results:?}");
        assert!(timeouts >= 1, "{results:?}");
        let ctx = mem.ctx(0, p);
        assert!(robust.poisoned_by(&ctx).is_some());
        // Later arrivals fail fast without waiting out a deadline.
        let t1 = Instant::now();
        assert!(matches!(robust.wait(&ctx), Err(BarrierError::Poisoned { .. })));
        assert!(t1.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn crashed_participant_poisons_waiters() {
        let topo = Topology::preset(Platform::ThunderX2);
        let p = 4;
        let mut arena = Arena::new();
        let inner = AlgorithmId::Mcs.build(&mut arena, p, &topo);
        let robust = Arc::new(RobustBarrier::new(&mut arena, 64, inner, fast_config(5_000)));
        let mem = HostMem::new(&arena);
        let results: Vec<Result<(), BarrierError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..p)
                .map(|tid| {
                    let mem = Arc::clone(&mem);
                    let robust = Arc::clone(&robust);
                    s.spawn(move || {
                        let ctx = mem.ctx(tid, p);
                        if tid == 2 {
                            // Dies before ever reaching the barrier; the
                            // guard poisons on the way out.
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                let _guard = robust.guard(&ctx);
                                panic!("injected crash");
                            }));
                            assert!(r.is_err());
                            return Err(BarrierError::Poisoned { tid, by: tid });
                        }
                        robust.wait(&ctx)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (tid, r) in results.iter().enumerate() {
            if tid == 2 {
                continue;
            }
            match r {
                Err(BarrierError::Poisoned { by, .. }) => assert_eq!(*by, 2),
                other => panic!("t{tid}: expected Poisoned, got {other:?}"),
            }
        }
    }

    #[test]
    fn disarmed_guard_does_not_poison() {
        let mut arena = Arena::new();
        let topo = Topology::preset(Platform::Kunpeng920);
        let inner = AlgorithmId::Sense.build(&mut arena, 1, &topo);
        let robust = RobustBarrier::new(&mut arena, 64, inner, RobustConfig::default());
        let mem = HostMem::new(&arena);
        let ctx = mem.ctx(0, 1);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let guard = robust.guard(&ctx);
            guard.disarm();
            panic!("after disarm");
        }));
        assert!(r.is_err());
        assert_eq!(robust.poisoned_by(&ctx), None);
    }

    #[test]
    fn clear_poison_restores_service() {
        let mut arena = Arena::new();
        let topo = Topology::preset(Platform::Kunpeng920);
        let inner = AlgorithmId::Sense.build(&mut arena, 1, &topo);
        let robust = RobustBarrier::new(&mut arena, 64, inner, RobustConfig::default());
        let mem = HostMem::new(&arena);
        let ctx = mem.ctx(0, 1);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _guard = robust.guard(&ctx);
            panic!("poison it");
        }));
        assert!(r.is_err());
        assert!(matches!(robust.wait(&ctx), Err(BarrierError::Poisoned { .. })));
        robust.clear_poison(&ctx);
        robust.wait(&ctx).unwrap();
    }

    #[test]
    fn errors_render_usefully() {
        let t = BarrierError::Timeout { tid: 3, addr: 0x40, spins: 999 };
        let s = t.to_string();
        assert!(s.contains("t3") && s.contains("0x40") && s.contains("999"), "{s}");
        let p = BarrierError::Poisoned { tid: 1, by: 2 };
        assert!(p.to_string().contains("poisoned by t2"));
        let e = BarrierError::Evicted { tid: 5, episode: 7 };
        assert!(e.to_string().contains("t5") && e.to_string().contains("episode 7"));
    }

    /// Satellite: when several waiters time out in the same dead episode,
    /// every `Poisoned { by }` must name the *first* poisoner — the
    /// ticket-0 claimant — not whichever store landed last. On the
    /// simulator the claim order is the deterministic schedule order, so
    /// the attribution is reproducible; this regression drives the claim
    /// path on the sim with poll-count deadlines.
    #[test]
    fn first_poisoner_wins_attribution_deterministically() {
        use armbar_simcoh::SimBuilder;
        let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
        let p = 6;
        let run = || {
            let mut arena = Arena::new();
            let inner = Box::new(LostWakeup {
                counter: arena.alloc_padded_u32(64),
                wake: arena.alloc_padded_u32(64),
            });
            let config = RobustConfig { max_polls: Some(200), ..RobustConfig::default() };
            let robust = Arc::new(RobustBarrier::new(&mut arena, 64, inner, config));
            let results = Arc::new(std::sync::Mutex::new(vec![None; p]));
            SimBuilder::new(Arc::clone(&topo), p)
                .run({
                    let robust = Arc::clone(&robust);
                    let results = Arc::clone(&results);
                    move |ctx| {
                        let r = robust.wait(ctx);
                        results.lock().unwrap()[ctx.tid()] = Some(r);
                    }
                })
                .unwrap();
            let r = results.lock().unwrap().clone();
            r.into_iter().map(Option::unwrap).collect::<Vec<_>>()
        };
        let results = run();
        let winners: Vec<usize> = results
            .iter()
            .filter_map(|r| match r {
                Err(BarrierError::Timeout { tid, .. }) => Some(*tid),
                _ => None,
            })
            .collect();
        assert_eq!(winners.len(), 1, "exactly one primary Timeout: {results:?}");
        let by_set: std::collections::BTreeSet<usize> = results
            .iter()
            .filter_map(|r| match r {
                Err(BarrierError::Poisoned { by, .. }) => Some(*by),
                _ => None,
            })
            .collect();
        assert_eq!(
            by_set.into_iter().collect::<Vec<_>>(),
            winners,
            "all waiters agree on the first poisoner: {results:?}"
        );
        // Deterministic: the same seedless sim run elects the same winner.
        assert_eq!(results, run(), "attribution must be schedule-deterministic");
    }

    /// The tentpole's recovery path: a deserting member is evicted by a
    /// survivor's proxy arrival, every episode completes degraded (never
    /// poisoned), the team reforms with P-1 members, and the victim's
    /// slot sees exactly one `Evicted` report.
    #[test]
    fn robust_phaser_evicts_deserter_and_reforms() {
        use crate::phaser::{CentralPhaser, TreePhaser};
        use armbar_simcoh::SimBuilder;
        let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
        let p = 8;
        let episodes = 5u32;
        for which in ["ctr", "tree"] {
            let mut arena = Arena::new();
            let inner: Box<dyn Phaser> = match which {
                "ctr" => Box::new(CentralPhaser::full(&mut arena, p, &topo)),
                _ => Box::new(TreePhaser::full(&mut arena, p, &topo)),
            };
            let config = RobustConfig { max_polls: Some(3_000), ..RobustConfig::default() };
            let robust = Arc::new(RobustPhaser::new(&mut arena, 64, inner, config));
            let results = Arc::new(std::sync::Mutex::new(vec![Vec::new(); p]));
            SimBuilder::new(Arc::clone(&topo), p)
                .run({
                    let robust = Arc::clone(&robust);
                    let results = Arc::clone(&results);
                    move |ctx| {
                        let slot = ctx.tid();
                        let mut epoch = 0;
                        while epoch < episodes {
                            if slot == 3 && epoch == 2 {
                                // Deserts episode 3 silently (sits out the
                                // degraded epoch), then comes back to find
                                // itself evicted — reported exactly once.
                                robust.wait_epoch(ctx, 3).unwrap();
                                let r = robust.arrive_and_wait(ctx);
                                results.lock().unwrap()[slot].push(r.clone());
                                assert_eq!(
                                    r,
                                    Err(BarrierError::Evicted { tid: 3, episode: 3 }),
                                    "{which}"
                                );
                                return;
                            }
                            let r = robust.arrive_and_wait(ctx);
                            results.lock().unwrap()[slot].push(r.clone());
                            epoch = r.unwrap_or_else(|e| panic!("{which}: t{slot}: {e}"));
                        }
                        assert_eq!(
                            robust.poisoned_by(ctx),
                            None,
                            "{which}: degraded, not poisoned"
                        );
                        assert_eq!(robust.members(ctx), p as u32 - 1, "{which}: reformed P-1");
                    }
                })
                .unwrap();
            let all = results.lock().unwrap();
            let evicted: Vec<_> = all
                .iter()
                .flatten()
                .filter(|r| matches!(r, Err(BarrierError::Evicted { .. })))
                .collect();
            assert_eq!(evicted.len(), 1, "{which}: exactly one Evicted report: {all:?}");
            assert_eq!(*evicted[0], Err(BarrierError::Evicted { tid: 3, episode: 3 }), "{which}");
        }
    }

    /// Eviction disabled → the legacy terminal-poisoning behavior.
    #[test]
    fn robust_phaser_without_eviction_poisons() {
        use crate::phaser::CentralPhaser;
        use armbar_simcoh::SimBuilder;
        let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
        let p = 4;
        let mut arena = Arena::new();
        let inner: Box<dyn Phaser> = Box::new(CentralPhaser::full(&mut arena, p, &topo));
        let config = RobustConfig { max_polls: Some(500), ..RobustConfig::default() };
        let robust =
            Arc::new(RobustPhaser::new(&mut arena, 64, inner, config).with_eviction(false));
        let results = Arc::new(std::sync::Mutex::new(vec![None; p]));
        SimBuilder::new(Arc::clone(&topo), p)
            .run({
                let robust = Arc::clone(&robust);
                let results = Arc::clone(&results);
                move |ctx| {
                    if ctx.tid() == 2 {
                        return; // deserts the first episode
                    }
                    let r = robust.arrive_and_wait(ctx);
                    results.lock().unwrap()[ctx.tid()] = Some(r);
                }
            })
            .unwrap();
        let r = results.lock().unwrap();
        for (tid, res) in r.iter().enumerate() {
            if tid == 2 {
                continue;
            }
            assert!(
                matches!(
                    res,
                    Some(Err(BarrierError::Timeout { .. } | BarrierError::Poisoned { .. }))
                ),
                "t{tid}: expected Timeout/Poisoned, got {res:?}"
            );
        }
    }
}

//! Hardened episodes: deadlines and poisoning on top of any [`Barrier`].
//!
//! The algorithms in this crate, like the paper's, assume every participant
//! arrives and every wakeup lands. On the host backend a violated
//! assumption — a crashed participant, a store that never happened, a
//! straggler that outlives everyone's patience — turns `wait` into an
//! infinite spin. [`RobustBarrier`] makes those failures *observable*
//! instead:
//!
//! * **Deadlines** — [`RobustBarrier::wait`] re-implements the inner
//!   barrier's spin waits as bounded polling loops (same Acquire loads,
//!   staged by a [`SpinPolicy`]) and returns
//!   [`BarrierError::Timeout`] when an episode exceeds its deadline,
//!   reporting the address the thread was stuck on and how many polls it
//!   burned.
//! * **Poisoning** — in the style of `std::sync::Mutex`: a participant
//!   that panics while holding a [`PoisonGuard`] (or while inside `wait`)
//!   marks the barrier poisoned, and every current and future waiter fails
//!   fast with [`BarrierError::Poisoned`] rather than spinning until its
//!   own deadline. A timeout also poisons, so one detected hang releases
//!   the whole team at the speed of a cache-line invalidation.
//!
//! The wrapper is backend-agnostic (it only speaks [`MemCtx`]), but it is
//! *aimed at the host*: the simulator already converts these failures into
//! typed `SimError`s at zero cost, and its virtual clock makes wall-clock
//! deadlines meaningless there. Use raw barriers under simulation and
//! `RobustBarrier` on real threads.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use armbar_simcoh::{Addr, Arena};

use crate::env::{Barrier, MemCtx};
use crate::host::SpinPolicy;

/// How a hardened episode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BarrierError {
    /// The episode did not complete within the deadline. `addr` is the
    /// word this thread was spinning on when time ran out and `spins` how
    /// many failed polls it had accumulated there — enough to tell a lost
    /// wakeup (stuck on the wake flag) from a missing arrival (stuck on a
    /// peer's arrival flag).
    Timeout { tid: usize, addr: Addr, spins: u64 },
    /// Another participant (`by`) crashed or timed out and poisoned the
    /// barrier; this thread failed fast instead of waiting for a wakeup
    /// that can never come.
    Poisoned { tid: usize, by: usize },
}

impl std::fmt::Display for BarrierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BarrierError::Timeout { tid, addr, spins } => write!(
                f,
                "barrier timeout: t{tid} gave up on addr {addr:#x} after {spins} failed polls"
            ),
            BarrierError::Poisoned { tid, by } => {
                write!(f, "barrier poisoned: t{tid} failed fast (poisoned by t{by})")
            }
        }
    }
}

impl std::error::Error for BarrierError {}

/// Deadline and waiting strategy for a [`RobustBarrier`].
#[derive(Debug, Clone)]
pub struct RobustConfig {
    /// Per-`wait` deadline. Generous by default: a deadline exists to turn
    /// a hang into an error, not to race healthy episodes.
    pub deadline: Duration,
    /// Staged spin/yield/backoff policy for the bounded waits.
    pub policy: SpinPolicy,
}

impl Default for RobustConfig {
    fn default() -> Self {
        Self { deadline: Duration::from_secs(5), policy: SpinPolicy::from_env() }
    }
}

/// Typed unwind payload used to exit an inner `wait` that can no longer
/// succeed. Caught by [`RobustBarrier::wait_deadline`] and converted into a
/// [`BarrierError`]; never escapes this module.
enum WaitAbort {
    Timeout { addr: Addr, spins: u64 },
    Poisoned { by: usize },
}

/// A [`Barrier`] wrapper adding deadlines and std-Mutex-style poisoning.
///
/// All mutable state (the poison word) lives in the shared arena, so one
/// instance is shared by all participants exactly like the barrier it
/// wraps, on either backend.
pub struct RobustBarrier {
    inner: Box<dyn Barrier>,
    /// Padded poison word: `0` = healthy, `tid + 1` = poisoned by `tid`.
    poison: Addr,
    config: RobustConfig,
}

impl RobustBarrier {
    /// Wraps `inner`, allocating the poison word from `arena` alone on a
    /// `line_bytes`-sized cache line (so fail-fast polling never false-shares
    /// with barrier state). Must be called before the arena is materialized.
    pub fn new(
        arena: &mut Arena,
        line_bytes: usize,
        inner: Box<dyn Barrier>,
        config: RobustConfig,
    ) -> Self {
        let poison = arena.alloc_padded_u32(line_bytes);
        Self { inner, poison, config }
    }

    /// The wrapped barrier's label.
    pub fn name(&self) -> &str {
        self.inner.name()
    }

    /// Who poisoned the barrier, if anyone.
    pub fn poisoned_by(&self, ctx: &dyn MemCtx) -> Option<usize> {
        match ctx.load(self.poison) {
            0 => None,
            tid1 => Some(tid1 as usize - 1),
        }
    }

    /// Clears the poison mark so a *new team* can reuse the allocation.
    /// Best-effort: the wrapped barrier's own state (counters, epoch flags)
    /// may still reflect the interrupted episode; monotonic epoch-based
    /// algorithms usually self-heal on the next episode, counter-based
    /// ones may not. Prefer rebuilding the barrier after a failure.
    pub fn clear_poison(&self, ctx: &dyn MemCtx) {
        ctx.store(self.poison, 0);
    }

    /// An episode guard for the calling participant: while it is live, a
    /// panic on this thread poisons the barrier so blocked peers fail fast
    /// (the host-backend analogue of `SimError::ThreadPanic`). Hold it
    /// across the whole parallel section, not just the `wait` calls.
    pub fn guard<'a>(&'a self, ctx: &'a dyn MemCtx) -> PoisonGuard<'a> {
        PoisonGuard { poison: self.poison, ctx, armed: true }
    }

    /// Blocks until all participants arrive, the configured deadline
    /// expires, or the barrier is poisoned.
    pub fn wait(&self, ctx: &dyn MemCtx) -> Result<(), BarrierError> {
        self.wait_deadline(ctx, self.config.deadline)
    }

    /// [`RobustBarrier::wait`] with an explicit deadline for this episode.
    ///
    /// On timeout the barrier is poisoned (so peers stuck in the same dead
    /// episode fail fast as [`BarrierError::Poisoned`]) and the wrapped
    /// barrier's state must be considered lost — see
    /// [`RobustBarrier::clear_poison`].
    pub fn wait_deadline(&self, ctx: &dyn MemCtx, deadline: Duration) -> Result<(), BarrierError> {
        silence_wait_aborts();
        if let Some(by) = self.poisoned_by(ctx) {
            return Err(BarrierError::Poisoned { tid: ctx.tid(), by });
        }
        let bounded = BoundedCtx {
            inner: ctx,
            poison: self.poison,
            deadline: Instant::now() + deadline,
            policy: self.config.policy.clone(),
        };
        match catch_unwind(AssertUnwindSafe(|| self.inner.wait(&bounded))) {
            Ok(()) => Ok(()),
            Err(payload) => match payload.downcast::<WaitAbort>() {
                Ok(abort) => Err(match *abort {
                    WaitAbort::Timeout { addr, spins } => {
                        // Poison so peers blocked on the same dead episode
                        // fail fast instead of each burning a full deadline.
                        ctx.store(self.poison, ctx.tid() as u32 + 1);
                        BarrierError::Timeout { tid: ctx.tid(), addr, spins }
                    }
                    WaitAbort::Poisoned { by } => BarrierError::Poisoned { tid: ctx.tid(), by },
                }),
                Err(other) => {
                    // A genuine panic inside the wrapped algorithm: poison
                    // for the peers, then let the panic keep unwinding.
                    ctx.store(self.poison, ctx.tid() as u32 + 1);
                    resume_unwind(other);
                }
            },
        }
    }
}

/// The [`WaitAbort`] escape is an implementation detail: it is always
/// caught by `wait_deadline`, so the default panic hook must not spray a
/// "Box<dyn Any>" message and backtrace on every timeout.
fn silence_wait_aborts() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<WaitAbort>() {
                prev(info);
            }
        }));
    });
}

/// Poisons the barrier if dropped during a panic — see
/// [`RobustBarrier::guard`].
pub struct PoisonGuard<'a> {
    poison: Addr,
    ctx: &'a dyn MemCtx,
    armed: bool,
}

impl PoisonGuard<'_> {
    /// Consumes the guard without poisoning even if a panic is in flight
    /// (for participants that leave the team in an orderly way).
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            self.ctx.store(self.poison, self.ctx.tid() as u32 + 1);
        }
    }
}

/// Poll-check cadence of the bounded spin loops: the poison word is read
/// and the clock consulted every this many failed polls. The poison line is
/// shared read-mostly, so the checks stay out of the coherence traffic of
/// the barrier's own flags; the first check happens on the first failed
/// poll so poisoning is noticed even at tiny deadlines.
const CHECK_EVERY: u64 = 64;

/// A [`MemCtx`] view that re-implements the spin waits as bounded polling
/// loops over `load`, escaping by unwinding with a [`WaitAbort`] when the
/// deadline passes or the poison word is set. Everything else forwards.
struct BoundedCtx<'a> {
    inner: &'a dyn MemCtx,
    poison: Addr,
    deadline: Instant,
    policy: SpinPolicy,
}

impl BoundedCtx<'_> {
    /// Deadline/poison check, rate-limited by the poll counter; diverges
    /// (by unwinding) when the episode is lost.
    fn check(&self, stuck_at: Addr, polls: u64) {
        if !polls.is_multiple_of(CHECK_EVERY) {
            return;
        }
        let p = self.inner.load(self.poison);
        if p != 0 {
            std::panic::panic_any(WaitAbort::Poisoned { by: p as usize - 1 });
        }
        if Instant::now() >= self.deadline {
            std::panic::panic_any(WaitAbort::Timeout { addr: stuck_at, spins: polls });
        }
    }

    fn poll(&self, addr: Addr, pred: impl Fn(u32) -> bool) -> u32 {
        let mut wait = self.policy.waiter();
        loop {
            let v = self.inner.load(addr);
            if pred(v) {
                return v;
            }
            self.check(addr, wait.spins());
            wait.pause();
        }
    }
}

impl MemCtx for BoundedCtx<'_> {
    fn tid(&self) -> usize {
        self.inner.tid()
    }
    fn nthreads(&self) -> usize {
        self.inner.nthreads()
    }
    fn load(&self, addr: Addr) -> u32 {
        self.inner.load(addr)
    }
    fn store(&self, addr: Addr, value: u32) {
        self.inner.store(addr, value)
    }
    fn fetch_add(&self, addr: Addr, delta: u32) -> u32 {
        self.inner.fetch_add(addr, delta)
    }
    fn spin_until_eq(&self, addr: Addr, value: u32) -> u32 {
        self.poll(addr, |v| v == value)
    }
    fn spin_until_ge(&self, addr: Addr, value: u32) -> u32 {
        self.poll(addr, |v| v >= value)
    }
    fn spin_until_all_ge(&self, addrs: &[Addr], value: u32) {
        let mut wait = self.policy.waiter();
        loop {
            match addrs.iter().find(|&&a| self.inner.load(a) < value) {
                None => return,
                Some(&stuck) => self.check(stuck, wait.spins()),
            }
            wait.pause();
        }
    }
    fn compute_ns(&self, ns: f64) {
        self.inner.compute_ns(ns)
    }
    fn mark(&self, label: u32) {
        self.inner.mark(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostMem;
    use crate::registry::AlgorithmId;
    use armbar_topology::{Platform, Topology};
    use std::sync::Arc;

    fn fast_config(deadline_ms: u64) -> RobustConfig {
        RobustConfig {
            deadline: Duration::from_millis(deadline_ms),
            policy: SpinPolicy {
                yields_before_backoff: 8,
                max_backoff: Duration::from_micros(200),
                ..SpinPolicy::default()
            },
        }
    }

    /// The last arriver "forgets" its release store: a lost wakeup.
    struct LostWakeup {
        counter: Addr,
        wake: Addr,
    }

    impl Barrier for LostWakeup {
        fn wait(&self, ctx: &dyn MemCtx) {
            let p = ctx.nthreads() as u32;
            if ctx.fetch_add(self.counter, 1) < p - 1 {
                ctx.spin_until_eq(self.wake, 1);
            }
        }
        fn name(&self) -> &str {
            "lost-wakeup"
        }
    }

    #[test]
    fn healthy_episodes_pass_through() {
        let topo = Topology::preset(Platform::Kunpeng920);
        let p = 4;
        let mut arena = Arena::new();
        let inner = AlgorithmId::Optimized.build(&mut arena, p, &topo);
        let robust = Arc::new(RobustBarrier::new(&mut arena, 64, inner, RobustConfig::default()));
        assert_eq!(robust.name(), "OPT");
        let mem = HostMem::new(&arena);
        std::thread::scope(|s| {
            for tid in 0..p {
                let mem = Arc::clone(&mem);
                let robust = Arc::clone(&robust);
                s.spawn(move || {
                    let ctx = mem.ctx(tid, p);
                    for _ in 0..50 {
                        robust.wait(&ctx).unwrap();
                    }
                    assert_eq!(robust.poisoned_by(&ctx), None);
                });
            }
        });
    }

    #[test]
    fn lost_wakeup_times_out_and_poisons() {
        let p = 4;
        let mut arena = Arena::new();
        let inner = Box::new(LostWakeup {
            counter: arena.alloc_padded_u32(64),
            wake: arena.alloc_padded_u32(64),
        });
        let robust = Arc::new(RobustBarrier::new(&mut arena, 64, inner, fast_config(300)));
        let mem = HostMem::new(&arena);
        let t0 = Instant::now();
        let results: Vec<Result<(), BarrierError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..p)
                .map(|tid| {
                    let mem = Arc::clone(&mem);
                    let robust = Arc::clone(&robust);
                    s.spawn(move || robust.wait(&mem.ctx(tid, p)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // The last arriver returns Ok (it never waits); every waiter gets a
        // typed error, at least one of them the primary Timeout.
        assert!(t0.elapsed() < Duration::from_secs(10), "waiters must not hang");
        let oks = results.iter().filter(|r| r.is_ok()).count();
        let timeouts =
            results.iter().filter(|r| matches!(r, Err(BarrierError::Timeout { .. }))).count();
        let errors = results.len() - oks;
        assert_eq!(oks, 1, "{results:?}");
        assert_eq!(errors, p - 1, "{results:?}");
        assert!(timeouts >= 1, "{results:?}");
        let ctx = mem.ctx(0, p);
        assert!(robust.poisoned_by(&ctx).is_some());
        // Later arrivals fail fast without waiting out a deadline.
        let t1 = Instant::now();
        assert!(matches!(robust.wait(&ctx), Err(BarrierError::Poisoned { .. })));
        assert!(t1.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn crashed_participant_poisons_waiters() {
        let topo = Topology::preset(Platform::ThunderX2);
        let p = 4;
        let mut arena = Arena::new();
        let inner = AlgorithmId::Mcs.build(&mut arena, p, &topo);
        let robust = Arc::new(RobustBarrier::new(&mut arena, 64, inner, fast_config(5_000)));
        let mem = HostMem::new(&arena);
        let results: Vec<Result<(), BarrierError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..p)
                .map(|tid| {
                    let mem = Arc::clone(&mem);
                    let robust = Arc::clone(&robust);
                    s.spawn(move || {
                        let ctx = mem.ctx(tid, p);
                        if tid == 2 {
                            // Dies before ever reaching the barrier; the
                            // guard poisons on the way out.
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                let _guard = robust.guard(&ctx);
                                panic!("injected crash");
                            }));
                            assert!(r.is_err());
                            return Err(BarrierError::Poisoned { tid, by: tid });
                        }
                        robust.wait(&ctx)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (tid, r) in results.iter().enumerate() {
            if tid == 2 {
                continue;
            }
            match r {
                Err(BarrierError::Poisoned { by, .. }) => assert_eq!(*by, 2),
                other => panic!("t{tid}: expected Poisoned, got {other:?}"),
            }
        }
    }

    #[test]
    fn disarmed_guard_does_not_poison() {
        let mut arena = Arena::new();
        let topo = Topology::preset(Platform::Kunpeng920);
        let inner = AlgorithmId::Sense.build(&mut arena, 1, &topo);
        let robust = RobustBarrier::new(&mut arena, 64, inner, RobustConfig::default());
        let mem = HostMem::new(&arena);
        let ctx = mem.ctx(0, 1);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let guard = robust.guard(&ctx);
            guard.disarm();
            panic!("after disarm");
        }));
        assert!(r.is_err());
        assert_eq!(robust.poisoned_by(&ctx), None);
    }

    #[test]
    fn clear_poison_restores_service() {
        let mut arena = Arena::new();
        let topo = Topology::preset(Platform::Kunpeng920);
        let inner = AlgorithmId::Sense.build(&mut arena, 1, &topo);
        let robust = RobustBarrier::new(&mut arena, 64, inner, RobustConfig::default());
        let mem = HostMem::new(&arena);
        let ctx = mem.ctx(0, 1);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _guard = robust.guard(&ctx);
            panic!("poison it");
        }));
        assert!(r.is_err());
        assert!(matches!(robust.wait(&ctx), Err(BarrierError::Poisoned { .. })));
        robust.clear_poison(&ctx);
        robust.wait(&ctx).unwrap();
    }

    #[test]
    fn errors_render_usefully() {
        let t = BarrierError::Timeout { tid: 3, addr: 0x40, spins: 999 };
        let s = t.to_string();
        assert!(s.contains("t3") && s.contains("0x40") && s.contains("999"), "{s}");
        let p = BarrierError::Poisoned { tid: 1, by: 2 };
        assert!(p.to_string().contains("poisoned by t2"));
    }
}

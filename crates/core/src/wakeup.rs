//! Notification-phase (wake-up) policies — Section V-C of the paper.
//!
//! After the last thread arrives, everyone else must be released. The paper
//! studies three broadcast schemes:
//!
//! * **Global sense** — one shared wake word everybody spins on; the
//!   champion writes it once (Eq. 3 models the cost). Best on Kunpeng 920.
//! * **Binary tree** — each thread has a private, cache-line-padded wake
//!   flag; parents wake children `2n+1`, `2n+2` (Eq. 4). Best on Phytium
//!   2000+ and ThunderX2.
//! * **NUMA-aware tree** — the paper's new topology (Eq. 5): cluster
//!   masters form the cross-cluster tree so that only one edge per cluster
//!   crosses a cluster boundary. Scales past the binary tree at high
//!   thread counts on Phytium 2000+/ThunderX2.
//!
//! All policies are *epoch-based*: episode `e` releases threads by
//! publishing the value `e`, so flags never need re-initialization (the
//! paper's Re-initialization-Phase disappears into the monotonic counter).

use armbar_simcoh::{arena::padded_elem, Addr, Arena};

use crate::env::MemCtx;
use crate::trees::WakeTree;

/// Which broadcast scheme a barrier uses for its Notification-Phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WakeupKind {
    /// One shared wake word (sense-style, epoch-valued).
    Global,
    /// Binary tree over padded per-thread flags.
    BinaryTree,
    /// The paper's NUMA-aware tree (needs the machine's `N_c`).
    NumaTree,
}

impl WakeupKind {
    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            WakeupKind::Global => "global",
            WakeupKind::BinaryTree => "binary tree",
            WakeupKind::NumaTree => "NUMA-aware tree",
        }
    }
}

/// A constructed wake-up mechanism shared by all participants.
#[derive(Debug)]
pub struct Wakeup {
    kind: WakeupKind,
    /// Global wake word (Global) — padded, alone on its line.
    gwake: Addr,
    /// Per-thread wake flags (trees) — `flag(i) = base + stride·i`.
    flags: Addr,
    stride: usize,
    tree: Option<WakeTree>,
}

impl Wakeup {
    /// Allocates wake-up state for `p` threads on a machine with
    /// `line_bytes` cache lines and logical cluster size `n_c`.
    pub fn new(
        arena: &mut Arena,
        p: usize,
        line_bytes: usize,
        n_c: usize,
        kind: WakeupKind,
    ) -> Self {
        assert!(p >= 1);
        let (gwake, flags, stride, tree) = match kind {
            WakeupKind::Global => (arena.alloc_padded_u32(line_bytes), 0, 0, None),
            WakeupKind::BinaryTree => (
                0,
                arena.alloc_padded_u32_array(p, line_bytes),
                line_bytes,
                Some(WakeTree::binary(p)),
            ),
            WakeupKind::NumaTree => (
                0,
                arena.alloc_padded_u32_array(p, line_bytes),
                line_bytes,
                Some(WakeTree::numa(p, n_c)),
            ),
        };
        Self { kind, gwake, flags, stride, tree }
    }

    /// The policy in use.
    pub fn kind(&self) -> WakeupKind {
        self.kind
    }

    fn flag(&self, i: usize) -> Addr {
        padded_elem(self.flags, i, self.stride)
    }

    fn forward(&self, ctx: &dyn MemCtx, node: usize, epoch: u32) {
        let tree = self.tree.as_ref().expect("tree wakeup without a tree");
        for &c in &tree.children[node] {
            ctx.store(self.flag(c), epoch);
        }
    }

    /// Called by the **champion** (the thread that observed the last
    /// arrival) to release everyone else with epoch value `epoch`.
    ///
    /// With a tree policy the tree is rooted at thread 0; a champion other
    /// than thread 0 (possible in dynamic tournaments) first wakes the root,
    /// which then forwards as usual via its own [`Wakeup::wait`].
    pub fn release(&self, ctx: &dyn MemCtx, epoch: u32) {
        // The champion calling release IS the end of the Arrival-Phase:
        // record it here so every Wakeup-based barrier gets the phase hook
        // without its own instrumentation (free on the simulator, no-op on
        // the host).
        ctx.mark(crate::env::MARK_ARRIVED);
        match self.kind {
            WakeupKind::Global => ctx.store(self.gwake, epoch),
            WakeupKind::BinaryTree | WakeupKind::NumaTree => {
                let me = ctx.tid();
                if me == 0 {
                    self.forward(ctx, 0, epoch);
                } else {
                    // A dynamic champion is an interior node of the tree: it
                    // starts the broadcast at the root AND covers its own
                    // subtree (its parent will also write its flag, which is
                    // harmless — epochs are monotone and it isn't waiting).
                    ctx.store(self.flag(0), epoch);
                    self.forward(ctx, me, epoch);
                }
            }
        }
    }

    /// Called by every **non-champion** to block until released, forwarding
    /// the wake-up to its tree children where applicable.
    pub fn wait(&self, ctx: &dyn MemCtx, epoch: u32) {
        match self.kind {
            WakeupKind::Global => {
                ctx.spin_until_ge(self.gwake, epoch);
            }
            WakeupKind::BinaryTree | WakeupKind::NumaTree => {
                let me = ctx.tid();
                ctx.spin_until_ge(self.flag(me), epoch);
                self.forward(ctx, me, epoch);
            }
        }
    }
}

/// Per-thread monotone episode counters, each padded onto its own line.
/// Local state kept in the shared arena so that both backends (and the
/// simulator's cost accounting) see it identically.
#[derive(Debug)]
pub struct EpochSlots {
    base: Addr,
    stride: usize,
}

impl EpochSlots {
    /// Allocates `p` padded epoch slots.
    pub fn new(arena: &mut Arena, p: usize, line_bytes: usize) -> Self {
        Self { base: arena.alloc_padded_u32_array(p, line_bytes), stride: line_bytes }
    }

    /// Increments and returns this thread's episode number (first call
    /// returns 1). A purely local operation — relaxed: no other thread ever
    /// touches this slot, so it needs no ordering at all.
    pub fn next(&self, ctx: &dyn MemCtx) -> u32 {
        let a = padded_elem(self.base, ctx.tid(), self.stride);
        let e = ctx.load_relaxed(a).wrapping_add(1);
        ctx.store_relaxed(a, e);
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_simcoh::SimBuilder;
    use armbar_topology::{Platform, Topology};
    use std::sync::Arc;

    fn run_wakeup(kind: WakeupKind, p: usize) {
        let topo = Arc::new(Topology::preset(Platform::ThunderX2));
        let mut arena = Arena::new();
        let w = Arc::new(Wakeup::new(&mut arena, p, topo.cacheline_bytes(), topo.n_c(), kind));
        let done = arena.alloc_u32();
        let stats = SimBuilder::new(topo, p)
            .run(move |ctx| {
                for e in 1..=3u32 {
                    if ctx.tid() == 0 {
                        // "Champion": give others time to start waiting.
                        ctx.compute_ns(500.0);
                        w.release(ctx, e);
                    } else {
                        w.wait(ctx, e);
                    }
                }
                ctx.fetch_add(done, 1);
            })
            .unwrap();
        assert!(stats.max_time_ns() > 0.0);
    }

    #[test]
    fn global_wakeup_releases_everyone() {
        run_wakeup(WakeupKind::Global, 8);
        run_wakeup(WakeupKind::Global, 64);
    }

    #[test]
    fn binary_tree_wakeup_releases_everyone() {
        run_wakeup(WakeupKind::BinaryTree, 8);
        run_wakeup(WakeupKind::BinaryTree, 64);
    }

    #[test]
    fn numa_tree_wakeup_releases_everyone() {
        run_wakeup(WakeupKind::NumaTree, 8);
        run_wakeup(WakeupKind::NumaTree, 64);
    }

    #[test]
    fn tree_release_from_non_root_champion() {
        // A dynamic champion (not thread 0) must still be able to release.
        let topo = Arc::new(Topology::preset(Platform::ThunderX2));
        let p = 16;
        let mut arena = Arena::new();
        let w = Arc::new(Wakeup::new(
            &mut arena,
            p,
            topo.cacheline_bytes(),
            topo.n_c(),
            WakeupKind::BinaryTree,
        ));
        SimBuilder::new(topo, p)
            .run(move |ctx| {
                if ctx.tid() == 5 {
                    ctx.compute_ns(500.0);
                    w.release(ctx, 1);
                } else {
                    w.wait(ctx, 1);
                }
            })
            .unwrap();
    }

    #[test]
    fn epoch_slots_count_locally() {
        let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
        let mut arena = Arena::new();
        let slots = Arc::new(EpochSlots::new(&mut arena, 4, topo.cacheline_bytes()));
        SimBuilder::new(topo, 4)
            .run(move |ctx| {
                for want in 1..=10u32 {
                    assert_eq!(slots.next(ctx), want);
                }
            })
            .unwrap();
    }

    #[test]
    fn wakeup_kind_labels() {
        assert_eq!(WakeupKind::Global.label(), "global");
        assert_eq!(WakeupKind::BinaryTree.label(), "binary tree");
        assert_eq!(WakeupKind::NumaTree.label(), "NUMA-aware tree");
    }
}

//! The backend abstraction: one algorithm body, two execution worlds.
//!
//! Every barrier algorithm in this crate is written once against the
//! [`MemCtx`] trait and can then run either
//!
//! * on **host atomics** ([`crate::host::HostMem`]) — a real, usable barrier
//!   for real threads, with Acquire/Release orderings and polite spin
//!   loops; or
//! * on the **simulated machine** (`armbar_simcoh::SimThread`) — where every
//!   operation is charged its modeled coherence cost on a chosen ARMv8
//!   topology.
//!
//! Memory is a flat arena of 32-bit words addressed by byte offsets
//! ([`armbar_simcoh::Arena`] hands out the addresses for both worlds), so
//! decisions like "pack four arrival flags into one cache line" vs. "give
//! each flag its own line" are made *once*, in the allocation code, and have
//! the same layout in both backends.

use armbar_simcoh::Addr;

/// Per-thread memory-operation context. Object-safe so algorithms can be
/// boxed behind the [`Barrier`] trait.
pub trait MemCtx {
    /// This thread's id, in `0..nthreads()`. Thread `i` is assumed pinned
    /// to core `i` of the machine (the paper's setup).
    fn tid(&self) -> usize;
    /// Number of threads participating in the barrier episodes.
    fn nthreads(&self) -> usize;
    /// Loads the word at `addr` (Acquire).
    fn load(&self, addr: Addr) -> u32;
    /// Stores to the word at `addr` (Release).
    fn store(&self, addr: Addr, value: u32);
    /// Relaxed load: no ordering with surrounding accesses. Under the weak
    /// simulator a schedule policy may serve it a stale previously-observed
    /// value. Defaults to the acquire [`MemCtx::load`] — sound (strictly
    /// stronger) for any backend that doesn't override it.
    fn load_relaxed(&self, addr: Addr) -> u32 {
        self.load(addr)
    }
    /// Relaxed store: no ordering with surrounding accesses. Under the weak
    /// simulator its commit may be deferred past later operations. Defaults
    /// to the release [`MemCtx::store`] — sound for any backend that
    /// doesn't override it.
    fn store_relaxed(&self, addr: Addr, value: u32) {
        self.store(addr, value)
    }
    /// Full memory barrier (`dmb ish`): orders every preceding access before
    /// every following one. Defaults to a no-op, which is sound for backends
    /// whose `load`/`store` are already acquire/release.
    fn fence(&self) {}
    /// Atomic wrapping fetch-add (AcqRel); returns the previous value.
    fn fetch_add(&self, addr: Addr, delta: u32) -> u32;
    /// Atomic compare-exchange (AcqRel): stores `new` iff the word equals
    /// `current`. Returns the previous value either way — the exchange
    /// succeeded iff it equals `current`. This is the arbitration
    /// primitive for races that plain load/store cannot decide, e.g. a
    /// phaser member's own arrival versus a survivor's proxy arrival.
    fn compare_exchange(&self, addr: Addr, current: u32, new: u32) -> u32;
    /// Atomic exchange (AcqRel, ARMv8.1 `SWP`): unconditionally stores
    /// `new` and returns the previous value. The natural test-and-set
    /// primitive for spinlocks: unlike CAS it cannot fail, and on LSE
    /// parts it is priced like a fetch-add, below a compare-exchange.
    fn swap(&self, addr: Addr, new: u32) -> u32;
    /// Spins until the word at `addr` equals `value`; returns it.
    fn spin_until_eq(&self, addr: Addr, value: u32) -> u32;
    /// Spins until the word at `addr` is ≥ `value` (monotonic epochs).
    fn spin_until_ge(&self, addr: Addr, value: u32) -> u32;
    /// Spins until *every* word in `addrs` is ≥ `value`. Implementations
    /// poll all flags in one loop, so independent line fetches overlap
    /// (memory-level parallelism) instead of waiting for each flag in turn
    /// — the intended way for a tournament winner to observe its group.
    fn spin_until_all_ge(&self, addrs: &[Addr], value: u32);
    /// Burns `ns` nanoseconds of local compute (used by the EPCC harness to
    /// model out-of-barrier work).
    fn compute_ns(&self, ns: f64);
    /// Records an instrumentation timestamp (free: costs no virtual time).
    /// No-op on backends without a collector (the host); the simulator
    /// stores `(tid, label, virtual time)` tuples in its run statistics.
    /// Algorithms use the `MARK_*` labels to expose their phase structure.
    fn mark(&self, _label: u32) {}
}

/// Mark label: a thread entered the barrier (start of the Arrival-Phase).
pub const MARK_ENTER: u32 = 0xB000;
/// Mark label: the champion observed the last arrival (end of the
/// Arrival-Phase / start of the Notification-Phase).
pub const MARK_ARRIVED: u32 = 0xB001;
/// Mark label: a thread left the barrier (end of the Notification-Phase).
pub const MARK_EXIT: u32 = 0xB002;

/// A reusable P-thread barrier.
///
/// `wait` must be called by all `nthreads` participants with their own
/// contexts; the call returns only after every participant of the episode
/// has arrived. Implementations are immutable after construction — all
/// mutable state lives in the shared arena — so one instance is shared by
/// all threads and reused across any number of episodes.
pub trait Barrier: Send + Sync {
    /// Blocks until all participants reach the barrier.
    fn wait(&self, ctx: &dyn MemCtx);
    /// Short algorithm label (e.g. `"SENSE"`, `"STOUR"`).
    fn name(&self) -> &str;

    /// [`Barrier::wait`] bracketed by the phase hooks: [`MARK_ENTER`] as the
    /// episode starts and [`MARK_EXIT`] as this thread leaves. Together with
    /// the champion's [`MARK_ARRIVED`] (emitted inside the algorithms /
    /// [`crate::wakeup::Wakeup::release`]), every barrier reports an
    /// arrival/notification split without per-algorithm instrumentation.
    /// Free on the simulator (marks cost no virtual time) and a no-op on
    /// the host backend, so production episodes pay nothing.
    fn wait_traced(&self, ctx: &dyn MemCtx) {
        ctx.mark(MARK_ENTER);
        self.wait(ctx);
        ctx.mark(MARK_EXIT);
    }

    /// One audited episode: records entry in the shared
    /// [`crate::oracle::EpisodeOracle`] witness table, runs the traced wait
    /// (so the PR 1 phase marks double as the quiescence record), and
    /// audits every peer's episode on exit. Episodes are 1-based and must
    /// be issued in order. Panics with an `oracle`-prefixed message on a
    /// safety violation — the conformance checker converts that into a
    /// classified, replayable finding.
    fn wait_conformed(
        &self,
        ctx: &dyn MemCtx,
        oracle: &crate::oracle::EpisodeOracle,
        episode: u32,
    ) {
        oracle.enter(ctx, episode);
        self.wait_traced(ctx);
        oracle.verify_exit(ctx, episode, self.name());
    }
}

/// `MemCtx` for simulated threads: operations forward to the discrete-event
/// engine, which charges modeled coherence latencies.
impl MemCtx for armbar_simcoh::SimThread {
    fn tid(&self) -> usize {
        SimThread::tid(self)
    }
    fn nthreads(&self) -> usize {
        SimThread::nthreads(self)
    }
    fn load(&self, addr: Addr) -> u32 {
        SimThread::load(self, addr)
    }
    fn store(&self, addr: Addr, value: u32) {
        SimThread::store(self, addr, value)
    }
    fn load_relaxed(&self, addr: Addr) -> u32 {
        SimThread::load_relaxed(self, addr)
    }
    fn store_relaxed(&self, addr: Addr, value: u32) {
        SimThread::store_relaxed(self, addr, value)
    }
    fn fence(&self) {
        SimThread::fence(self)
    }
    fn fetch_add(&self, addr: Addr, delta: u32) -> u32 {
        SimThread::fetch_add(self, addr, delta)
    }
    fn compare_exchange(&self, addr: Addr, current: u32, new: u32) -> u32 {
        SimThread::compare_exchange(self, addr, current, new)
    }
    fn swap(&self, addr: Addr, new: u32) -> u32 {
        SimThread::swap(self, addr, new)
    }
    fn spin_until_eq(&self, addr: Addr, value: u32) -> u32 {
        SimThread::spin_until_eq(self, addr, value)
    }
    fn spin_until_ge(&self, addr: Addr, value: u32) -> u32 {
        SimThread::spin_until_ge(self, addr, value)
    }
    fn spin_until_all_ge(&self, addrs: &[Addr], value: u32) {
        SimThread::spin_until_all_ge(self, addrs, value)
    }
    fn compute_ns(&self, ns: f64) {
        SimThread::compute_ns(self, ns)
    }
    fn mark(&self, label: u32) {
        SimThread::mark(self, label)
    }
}

use armbar_simcoh::SimThread;

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_simcoh::{Arena, SimBuilder};
    use armbar_topology::{Platform, Topology};
    use std::sync::Arc;

    #[test]
    fn sim_thread_implements_memctx() {
        let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let stats = SimBuilder::new(topo, 2)
            .run(move |sim| {
                let ctx: &dyn MemCtx = sim;
                assert_eq!(ctx.nthreads(), 2);
                if ctx.tid() == 0 {
                    ctx.compute_ns(10.0);
                    ctx.fetch_add(a, 5);
                } else {
                    let v = ctx.spin_until_ge(a, 5);
                    assert_eq!(v, 5);
                    assert_eq!(ctx.load(a), 5);
                }
            })
            .unwrap();
        assert!(stats.max_time_ns() >= 10.0);
    }
}

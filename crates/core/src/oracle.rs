//! Barrier safety oracles: episode-witness state checked around every
//! `wait`, the correctness side of the paper's Sections II-B/V claims.
//!
//! A barrier is *safe* when no thread leaves episode `k` before every
//! participant has entered it (no early exit), every participant observes
//! every release (no lost wake-up, which the simulator surfaces as a
//! deadlock), and episode numbering stays consistent across threads (no
//! sense/epoch skew). The oracle materializes those properties as a shared
//! per-thread *entered-epoch* table that each thread bumps on entry and
//! audits on exit:
//!
//! * **enter(k)** — my slot must hold `k−1` (episodes are consumed in
//!   order, exactly once), then records `k`;
//! * **verify_exit(k)** — every peer's slot must hold `k` or `k+1`. A value
//!   `< k` is an early exit: I left an episode a peer never entered. A
//!   value `> k+1` is epoch skew: a peer raced two full episodes ahead
//!   while I was still inside `k`, which a correct barrier's own episode
//!   `k+1` would have blocked. (One ahead is legal — a released peer may
//!   re-enter the next episode before I run my audit.)
//!
//! The table is one padded word per thread, so oracle reads perturb the
//! schedule as little as possible while remaining *order*-correct under any
//! scheduling policy — the checks compare event order, never virtual time,
//! which schedule exploration deliberately distorts.
//!
//! Violations panic with an `oracle`-prefixed message; the conformance
//! checker classifies them out of `SimError::ThreadPanic` and replays the
//! offending seed.

use armbar_simcoh::{Addr, Arena};

use crate::env::MemCtx;

/// Shared witness state for episode-safety checks. Build once per run with
/// [`EpisodeOracle::new`] and share across threads (it is a plain value —
/// all mutable state lives in the arena).
#[derive(Debug, Clone, Copy)]
pub struct EpisodeOracle {
    /// Base of the per-thread entered-epoch array (one padded word each).
    entered: Addr,
    /// Byte stride between consecutive thread slots.
    stride: u32,
    /// Participant count.
    nthreads: usize,
}

impl EpisodeOracle {
    /// Allocates witness state for `nthreads` participants, one cache line
    /// per slot (padded so the oracle itself does not manufacture false
    /// sharing).
    pub fn new(arena: &mut Arena, nthreads: usize, line_bytes: usize) -> Self {
        assert!(nthreads >= 1);
        let entered = arena.alloc_padded_u32_array(nthreads, line_bytes);
        Self { entered, stride: line_bytes as u32, nthreads }
    }

    #[inline]
    fn slot(&self, tid: usize) -> Addr {
        self.entered + self.stride * tid as u32
    }

    /// Records that the calling thread is entering episode `episode`
    /// (1-based). Must precede the barrier's own `wait`.
    ///
    /// # Panics
    /// Panics (message prefixed `oracle:`) when episodes are entered out of
    /// order — a harness bug or a barrier that let a thread skip an episode.
    pub fn enter(&self, ctx: &dyn MemCtx, episode: u32) {
        let me = self.slot(ctx.tid());
        let prev = ctx.load_relaxed(me);
        if prev + 1 != episode {
            panic!(
                "oracle: thread {} entered episode {episode} after {prev} (episodes must be \
                 consumed in order, exactly once)",
                ctx.tid()
            );
        }
        // Deliberately relaxed: this write stands in for the user's *plain*
        // pre-barrier data writes. The barrier contract — everything written
        // before `wait` is visible to every thread after its own `wait`
        // returns — must be enforced by the barrier's own fences, not by
        // ordering the witness store itself. Under the weak simulator this
        // is what turns the oracle into a message-passing litmus embedded
        // in every episode.
        ctx.store_relaxed(me, episode);
    }

    /// Audits the episode the calling thread just left: every peer must
    /// have entered `episode` (else the barrier released us early) and none
    /// may have entered beyond `episode + 1` (else episode numbering
    /// skewed).
    ///
    /// # Panics
    /// Panics with an `oracle[name]:`-prefixed message on violation.
    pub fn verify_exit(&self, ctx: &dyn MemCtx, episode: u32, name: &str) {
        let me = ctx.tid();
        for peer in 0..self.nthreads {
            if peer == me {
                continue;
            }
            // Relaxed for the same reason as the witness store: a plain
            // post-barrier read. The acquire in the barrier's own exit path
            // (its final successful spin or RMW) is what must make every
            // peer's entry visible here.
            let seen = ctx.load_relaxed(self.slot(peer));
            if seen < episode {
                panic!(
                    "oracle[{name}]: early exit — thread {me} left episode {episode} but thread \
                     {peer} has only entered episode {seen}"
                );
            }
            if seen > episode + 1 {
                panic!(
                    "oracle[{name}]: epoch skew — thread {me} is exiting episode {episode} but \
                     thread {peer} already entered episode {seen}; episode {} should have held \
                     it back",
                    episode + 1
                );
            }
        }
    }

    /// Number of participants this oracle audits.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }
}

/// Whether a panic message came from an oracle check (either prefix form).
pub fn is_oracle_message(msg: &str) -> bool {
    msg.starts_with("oracle")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Barrier;
    use crate::registry::AlgorithmId;
    use armbar_simcoh::{SimBuilder, SimError};
    use armbar_topology::{Platform, Topology};
    use std::sync::Arc;

    fn run_conformed(episodes: u32) -> Result<(), SimError> {
        let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
        let p = 8;
        let mut arena = Arena::new();
        let line = topo.cacheline_bytes();
        let barrier: Arc<dyn Barrier> = Arc::from(AlgorithmId::Sense.build(&mut arena, p, &topo));
        let oracle = EpisodeOracle::new(&mut arena, p, line);
        SimBuilder::new(topo, p)
            .run(move |sim| {
                for e in 1..=episodes {
                    barrier.wait_conformed(sim, &oracle, e);
                }
            })
            .map(|_| ())
    }

    #[test]
    fn correct_barrier_passes_the_oracle() {
        run_conformed(4).unwrap();
    }

    #[test]
    fn out_of_order_entry_is_caught() {
        let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
        let mut arena = Arena::new();
        let line = topo.cacheline_bytes();
        let oracle = EpisodeOracle::new(&mut arena, 1, line);
        let err = SimBuilder::new(topo, 1)
            .run(move |sim| {
                oracle.enter(sim, 2); // episode 1 was skipped
            })
            .unwrap_err();
        match err {
            SimError::ThreadPanic { message, .. } => {
                assert!(message.starts_with("oracle:"), "{message}");
                assert!(is_oracle_message(&message));
            }
            other => panic!("expected oracle panic, got {other}"),
        }
    }

    /// A deliberately broken "barrier" that releases thread 1 without
    /// waiting: the no-early-exit oracle must flag it.
    struct BrokenBarrier {
        counter: Addr,
    }

    impl Barrier for BrokenBarrier {
        fn wait(&self, ctx: &dyn MemCtx) {
            if ctx.tid() == 1 {
                return; // leaves immediately — the bug
            }
            let n = ctx.nthreads() as u32;
            let prev = ctx.fetch_add(self.counter, 1);
            // Everyone but the deserter synchronizes properly.
            if prev + 1 < n - 1 {
                ctx.spin_until_ge(self.counter, n - 1);
            }
        }
        fn name(&self) -> &str {
            "BROKEN"
        }
    }

    #[test]
    fn early_exit_is_caught() {
        let topo = Arc::new(Topology::preset(Platform::Kunpeng920));
        let p = 4;
        let mut arena = Arena::new();
        let line = topo.cacheline_bytes();
        let counter = arena.alloc_padded_u32(line);
        let oracle = EpisodeOracle::new(&mut arena, p, line);
        let barrier = Arc::new(BrokenBarrier { counter });
        let err = SimBuilder::new(topo, p)
            .run(move |sim| {
                // The peers are held up before entering (as a delay-
                // injecting schedule would); thread 1 races through the
                // broken wait and its exit audit sees peers that never
                // entered the episode.
                if sim.tid() != 1 {
                    sim.compute_ns(50_000.0);
                }
                barrier.wait_conformed(sim, &oracle, 1);
            })
            .unwrap_err();
        match err {
            SimError::ThreadPanic { message, .. } => {
                assert!(message.contains("early exit") && message.contains("BROKEN"), "{message}");
            }
            other => panic!("expected early-exit oracle panic, got {other}"),
        }
    }

    #[test]
    fn oracle_message_classifier() {
        assert!(is_oracle_message("oracle: bad entry"));
        assert!(is_oracle_message("oracle[SENSE]: early exit"));
        assert!(!is_oracle_message("index out of bounds"));
    }
}

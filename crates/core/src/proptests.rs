//! Property-based tests: every algorithm, arbitrary thread counts and
//! platforms, must uphold the barrier invariant under simulation.

use proptest::prelude::*;

use armbar_topology::Platform;

use crate::algorithms::testutil::check_sim;
use crate::registry::AlgorithmId;

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop::sample::select(Platform::ARM.to_vec())
}

fn arb_algorithm() -> impl Strategy<Value = AlgorithmId> {
    prop::sample::select(AlgorithmId::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Any algorithm × platform × P ∈ [1, 64] completes and preserves the
    /// episode-progress invariant.
    #[test]
    fn any_barrier_any_size_is_correct(
        id in arb_algorithm(),
        platform in arb_platform(),
        p in 1usize..=64,
    ) {
        check_sim(platform, p, 2, move |a, p, t| id.build(a, p, t));
    }

    /// Fixed-fan-in f-way barriers are correct for any (P, f) pair.
    #[test]
    fn fway_any_fanin_is_correct(
        p in 1usize..=64,
        f in 2usize..=16,
        padded in any::<bool>(),
        dynamic in any::<bool>(),
    ) {
        use crate::algorithms::fway::{Fanin, FwayBarrier, FwayConfig};
        use crate::wakeup::WakeupKind;
        check_sim(Platform::Kunpeng920, p, 2, move |a, p, t| {
            Box::new(FwayBarrier::with_config(a, p, t, FwayConfig {
                fanin: Fanin::Fixed(f),
                padded_flags: padded,
                dynamic,
                wakeup: WakeupKind::Global,
            }))
        });
    }
}

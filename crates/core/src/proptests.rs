//! Property-based tests: every algorithm, arbitrary thread counts,
//! platforms, *and machine shapes* must uphold the barrier invariant under
//! simulation.

use std::sync::Arc;

use proptest::prelude::*;

use armbar_topology::{LayerId, Platform, Topology, TopologyBuilder};

use crate::algorithms::testutil::{check_sim, check_sim_on};
use crate::registry::AlgorithmId;

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop::sample::select(Platform::ARM.to_vec())
}

fn arb_algorithm() -> impl Strategy<Value = AlgorithmId> {
    prop::sample::select(AlgorithmId::ALL.to_vec())
}

/// Arbitrary machine shapes no preset covers: cores carved into *uneven*
/// clusters (sizes 1–5, so single-core clusters appear constantly), mapped
/// through `pair_layer_fn` onto a near/far layer pair whose far latency is
/// drawn from a wide range. Every structural assumption an algorithm bakes
/// in about "clusters have equal size ≥ 2" gets attacked here.
fn arb_uneven_topology() -> impl Strategy<Value = Arc<Topology>> {
    (2usize..=48, 0u64..u64::MAX, 20.0f64..150.0, 1usize..=5).prop_map(
        |(cores, seed, far_ns, n_c)| {
            // Deterministically carve `cores` into clusters of size 1..=5.
            let mut assign = Vec::with_capacity(cores);
            let (mut cluster, mut remaining, mut s) = (0usize, 0usize, seed);
            for _ in 0..cores {
                if remaining == 0 {
                    cluster += 1;
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    remaining = 1 + ((s >> 33) % 5) as usize;
                }
                assign.push(cluster);
                remaining -= 1;
            }
            let topo = TopologyBuilder::new("prop-uneven", cores)
                .epsilon_ns(1.0)
                .layer("near", 8.0, 0.5)
                .layer("far", far_ns, 0.7)
                .n_c(n_c.min(cores))
                .pair_layer_fn(|a, b| if assign[a] == assign[b] { LayerId(0) } else { LayerId(1) })
                .coherence(3.0, 2.0, 0.0)
                .build();
            Arc::new(topo)
        },
    )
}

/// Arbitrary *hierarchical* machines in the MemPool mold: tiles of 2–5
/// cores nested in groups of 2–4 tiles, 1–4 groups per cluster, with the
/// scheduler sharded either per tile (up to 40 tiny shards) or per group.
/// This is the shape family the kilocore presets come from; the property
/// pins that nothing in any algorithm — or in the sharded engine — assumes
/// a particular tile/group/shard alignment.
fn arb_hierarchical_topology() -> impl Strategy<Value = Arc<Topology>> {
    (2usize..=5, 2usize..=4, 1usize..=4, any::<bool>(), 5.0f64..40.0).prop_map(
        |(tile, tiles_per_group, groups, shard_at_tile, group_ns)| {
            let group = tile * tiles_per_group;
            let cores = group * groups;
            let topo = TopologyBuilder::new("prop-hier", cores)
                .epsilon_ns(0.5)
                .layer("within a tile", 2.0, 0.35)
                .layer("within a group", group_ns, 0.45)
                .layer("across groups", group_ns * 2.1, 0.55)
                .n_c(tile.min(4))
                .hierarchy(&[tile, group])
                .shard_cores(if shard_at_tile { tile } else { group })
                .coherence(1.5, 0.6, 0.01)
                .noc_ns(0.8)
                .build();
            Arc::new(topo)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Any algorithm × platform × P ∈ [1, 64] completes and preserves the
    /// episode-progress invariant.
    #[test]
    fn any_barrier_any_size_is_correct(
        id in arb_algorithm(),
        platform in arb_platform(),
        p in 1usize..=64,
    ) {
        check_sim(platform, p, 2, move |a, p, t| id.build(a, p, t));
    }

    /// Every registry barrier completes one episode without deadlock on
    /// machines with uneven clusters and single-core layers — shapes no
    /// platform preset exercises.
    #[test]
    fn any_barrier_on_arbitrary_machine_shapes(
        id in arb_algorithm(),
        topo in arb_uneven_topology(),
        p_raw in 1usize..=48,
    ) {
        let p = p_raw.min(topo.num_cores());
        check_sim_on(Arc::clone(&topo), p, 1, move |a, p, t| id.build(a, p, t));
    }

    /// Every registry barrier completes on arbitrary tile/group/cluster
    /// hierarchies — the kilocore shape family — at any thread count,
    /// regardless of how the engine is sharded across the machine.
    #[test]
    fn any_barrier_on_hierarchical_shapes(
        id in arb_algorithm(),
        topo in arb_hierarchical_topology(),
        p_raw in 1usize..=80,
    ) {
        let p = p_raw.min(topo.num_cores());
        check_sim_on(Arc::clone(&topo), p, 1, move |a, p, t| id.build(a, p, t));
    }

    /// Fixed-fan-in f-way barriers are correct for any (P, f) pair.
    #[test]
    fn fway_any_fanin_is_correct(
        p in 1usize..=64,
        f in 2usize..=16,
        padded in any::<bool>(),
        dynamic in any::<bool>(),
    ) {
        use crate::algorithms::fway::{Fanin, FwayBarrier, FwayConfig};
        use crate::wakeup::WakeupKind;
        check_sim(Platform::Kunpeng920, p, 2, move |a, p, t| {
            Box::new(FwayBarrier::with_config(a, p, t, FwayConfig {
                fanin: Fanin::Fixed(f),
                padded_flags: padded,
                dynamic,
                wakeup: WakeupKind::Global,
            }))
        });
    }
}

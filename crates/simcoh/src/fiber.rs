//! Stackful-coroutine ("fiber") transport for simulated threads.
//!
//! The OS transport rendezvouses through `park`/`unpark`, which costs a
//! futex round trip (~2µs) every time the engine switches between simulated
//! threads — and a barrier episode is nothing *but* switches. This module
//! runs every simulated thread of an episode as a fiber on **one** OS
//! thread: blocking becomes a userspace context switch (a dozen
//! instructions saving the six SysV callee-saved registers), two orders of
//! magnitude cheaper, and on a single-core host it also removes all
//! scheduler pressure.
//!
//! Determinism is untouched: the engine under its mutex processes exactly
//! the same operations in exactly the same order as under the OS transport
//! — only the mechanism that resumes a blocked thread changes. The
//! cross-transport identity is pinned by `team_matches_fresh_spawn_results`
//! (OS-team vs fiber run) and the golden-master fixtures.
//!
//! Enabled by default on `x86_64` unix hosts; set `ARMBAR_SIM_FIBERS=0` (or
//! `off`) to fall back to OS threads. Other architectures always use the OS
//! transport (the context switch is hand-written assembly).

use std::sync::Arc;

use crate::engine::{SimBuilder, SimThread};
use crate::error::SimError;
use crate::stats::RunStats;

/// Whether episodes run on the fiber transport. Read once per process:
/// flipping mid-run would mix transports within one ambient team.
pub(crate) fn fibers_enabled() -> bool {
    #[cfg(not(all(target_arch = "x86_64", unix)))]
    {
        false
    }
    #[cfg(all(target_arch = "x86_64", unix))]
    {
        static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *ON.get_or_init(|| {
            !std::env::var("ARMBAR_SIM_FIBERS")
                .is_ok_and(|v| v == "0" || v.eq_ignore_ascii_case("off"))
        })
    }
}

#[cfg(all(target_arch = "x86_64", unix))]
pub(crate) use imp::{run_on_fibers, FiberRt};

#[cfg(all(target_arch = "x86_64", unix))]
mod imp {
    use super::*;
    use std::cell::RefCell;
    use std::collections::VecDeque;
    use std::ptr::NonNull;

    /// Fiber stack size. Simulation bodies are shallow (a barrier algorithm
    /// plus the engine rendezvous), but proptest/debug builds are greedy;
    /// 256 KiB leaves a wide margin. Allocated without zeroing, so untouched
    /// pages never become resident.
    const STACK_SIZE: usize = 256 * 1024;

    /// Written at the low end of every stack; checked when the stack is
    /// returned to the pool. An overflow would have to march through this
    /// word first.
    const CANARY: usize = 0xFEED_FACE_CAFE_BEEF;

    /// Saved execution context: just the stack pointer. Everything else
    /// (the six SysV callee-saved registers and the return address) lives
    /// on the fiber's own stack, pushed by [`fiber_switch`].
    struct Context {
        rsp: usize,
    }

    /// x86_64 SysV context switch: saves the callee-saved registers and the
    /// return address on the current stack, stores the stack pointer to
    /// `*save`, installs `*restore`, and returns on the other stack.
    ///
    /// The floating-point control words (`mxcsr`, `x87 cw`) are deliberately
    /// *not* switched: nothing in this process modifies them, so every fiber
    /// observes the process defaults.
    #[unsafe(naked)]
    unsafe extern "C" fn fiber_switch(save: *mut usize, restore: *const usize) {
        core::arch::naked_asm!(
            "push rbp",
            "push rbx",
            "push r12",
            "push r13",
            "push r14",
            "push r15",
            "mov [rdi], rsp",
            "mov rsp, [rsi]",
            "pop r15",
            "pop r14",
            "pop r13",
            "pop r12",
            "pop rbx",
            "pop rbp",
            "ret",
        )
    }

    /// First frame of every fiber: [`prepare_stack`] seeds r12 with the
    /// boot-args pointer and "returns" here. Moves the argument into place,
    /// terminates the frame-pointer chain, restores the SysV stack
    /// alignment a real `call` would have produced, and enters Rust.
    /// [`fiber_entry`] never returns (the `ud2` is unreachable).
    #[unsafe(naked)]
    unsafe extern "C" fn fiber_boot() {
        core::arch::naked_asm!(
            "mov rdi, r12",
            "xor ebp, ebp",
            "sub rsp, 8",
            "call {entry}",
            "ud2",
            entry = sym fiber_entry,
        )
    }

    /// A pooled fiber stack (raw allocation; never zeroed).
    struct Stack {
        base: NonNull<u8>,
    }

    impl Stack {
        fn layout() -> std::alloc::Layout {
            std::alloc::Layout::from_size_align(STACK_SIZE, 16).expect("static layout")
        }

        fn new() -> Self {
            // SAFETY: non-zero-sized, 16-aligned layout.
            let p = unsafe { std::alloc::alloc(Self::layout()) };
            let base =
                NonNull::new(p).unwrap_or_else(|| std::alloc::handle_alloc_error(Self::layout()));
            // SAFETY: in-bounds write at the low end of the fresh block.
            unsafe { base.as_ptr().cast::<usize>().write(CANARY) };
            Self { base }
        }

        /// One-past-the-end of the stack (stacks grow down); 16-aligned.
        fn top(&self) -> *mut usize {
            // SAFETY: one-past-the-end pointer of the allocation.
            unsafe { self.base.as_ptr().add(STACK_SIZE).cast() }
        }

        fn check_canary(&self) {
            // SAFETY: reads the word written in `new`.
            let w = unsafe { self.base.as_ptr().cast::<usize>().read() };
            assert_eq!(w, CANARY, "fiber stack overflow detected");
        }
    }

    impl Drop for Stack {
        fn drop(&mut self) {
            // SAFETY: allocated in `new` with the same layout.
            unsafe { std::alloc::dealloc(self.base.as_ptr(), Self::layout()) };
        }
    }

    thread_local! {
        /// Stacks reused across episodes on this host thread — the fiber
        /// analogue of [`crate::SimTeam`]'s worker reuse.
        static STACK_POOL: RefCell<Vec<Stack>> = const { RefCell::new(Vec::new()) };
    }

    fn pool_take() -> Stack {
        STACK_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_else(Stack::new)
    }

    fn pool_put(stack: Stack) {
        stack.check_canary();
        STACK_POOL.with(|p| p.borrow_mut().push(stack));
    }

    /// What a booting fiber needs: its runtime and identity. Boxed and kept
    /// alive in the [`Fiber`], so the raw pointer seeded into r12 stays
    /// valid for the fiber's whole life.
    struct BootArgs {
        rt: *const FiberRt,
        tid: usize,
    }

    struct Fiber {
        ctx: Context,
        stack: Stack,
        /// Owner of the allocation `BootArgs` pointers refer to.
        _boot: Box<BootArgs>,
    }

    /// Seeds a fresh stack so that switching into it lands in
    /// [`fiber_boot`] with r12 = `arg`. Layout, from the top down: a zeroed
    /// fake return address, `fiber_boot`'s address, then the six
    /// callee-saved slots [`fiber_switch`] will pop (rbp, rbx, r12, r13,
    /// r14, r15 — r12 carries `arg`).
    fn prepare_stack(stack: &Stack, arg: *mut BootArgs) -> Context {
        let top = stack.top();
        // SAFETY: eight in-bounds words below the top of a 256 KiB stack.
        unsafe {
            top.sub(1).write(0);
            top.sub(2).write(fiber_boot as *const () as usize);
            top.sub(3).write(0); // rbp
            top.sub(4).write(0); // rbx
            top.sub(5).write(arg as usize); // r12
            top.sub(6).write(0); // r13
            top.sub(7).write(0); // r14
            top.sub(8).write(0); // r15
            Context { rsp: top.sub(8) as usize }
        }
    }

    struct RtInner {
        /// The driver's saved context while a fiber runs.
        sched_ctx: Context,
        /// One fiber per simulated thread, indexed by tid. Never grows
        /// after `run_on_fibers` seeds it (context pointers must not move).
        fibers: Vec<Fiber>,
        /// Fibers with a delivered reply (or not yet started), in wake
        /// order.
        runnable: VecDeque<usize>,
        /// The fiber currently executing, if any.
        current: Option<usize>,
        finished: usize,
        shared: Arc<crate::engine::Shared>,
        body: Arc<dyn Fn(&SimThread) + Send + Sync>,
    }

    /// The single-threaded fiber scheduler driving one episode.
    ///
    /// Boxed by [`run_on_fibers`] so the pointer handed to every fiber (and
    /// stored in each [`SimThread`]) is stable. The `RefCell` enforces the
    /// discipline that matters here: no borrow is ever held across a
    /// context switch.
    pub(crate) struct FiberRt {
        inner: RefCell<RtInner>,
    }

    impl FiberRt {
        /// Runs fibers until all have finished. The scheduler is strict
        /// about liveness: the engine only quiesces with no runnable fiber
        /// when it has delivered an outcome (completion or abort), so an
        /// empty queue with unfinished fibers is a transport bug, not a
        /// simulation deadlock — those are detected (and aborted) by the
        /// engine itself.
        fn drive(&self) {
            loop {
                let next = {
                    let mut inner = self.inner.borrow_mut();
                    if inner.finished == inner.fibers.len() {
                        break;
                    }
                    match inner.runnable.pop_front() {
                        Some(t) => {
                            inner.current = Some(t);
                            t
                        }
                        None => panic!(
                            "fiber scheduler wedged: {}/{} fibers finished with none runnable",
                            inner.finished,
                            inner.fibers.len()
                        ),
                    }
                };
                let (save, restore) = {
                    let mut inner = self.inner.borrow_mut();
                    let save: *mut usize = &mut inner.sched_ctx.rsp;
                    let restore: *const usize = &inner.fibers[next].ctx.rsp;
                    (save, restore)
                };
                // SAFETY: both pointers outlive the switch (the Vec never
                // reallocates mid-run) and no RefCell borrow is active.
                unsafe { fiber_switch(save, restore) };
            }
        }

        /// Yields the current fiber back to the scheduler; returns when a
        /// wake re-enqueues it and the scheduler switches back in.
        pub(crate) fn suspend(&self) {
            let (save, restore) = {
                let mut inner = self.inner.borrow_mut();
                let t = inner.current.take().expect("suspend outside a fiber");
                let save: *mut usize = &mut inner.fibers[t].ctx.rsp;
                let restore: *const usize = &inner.sched_ctx.rsp;
                (save, restore)
            };
            // SAFETY: as in `drive` — stable pointers, no live borrow.
            unsafe { fiber_switch(save, restore) };
        }

        /// Marks the engine-woken tids runnable (self excluded — the caller
        /// is running and checks its own reply cell directly).
        pub(crate) fn enqueue_wakes(&self, wakes: &[usize], me: usize) {
            if wakes.is_empty() {
                return;
            }
            let mut inner = self.inner.borrow_mut();
            for &t in wakes {
                if t != me {
                    inner.runnable.push_back(t);
                }
            }
        }

        /// Terminal yield of a finished fiber. Never returns: a finished
        /// tid has no pending op and no waiter registration, so nothing can
        /// re-enqueue it (the defensive loop turns a transport bug into a
        /// wedge panic in `drive` instead of undefined behavior).
        fn finish_current(&self) -> ! {
            self.inner.borrow_mut().finished += 1;
            loop {
                self.suspend();
            }
        }
    }

    /// Rust-side entry of every fiber (called by [`fiber_boot`]): runs the
    /// episode body with a fiber-transport [`SimThread`], then routes
    /// through the engine's finish protocol. Panics — user or the engine's
    /// internal `AbortSignal` tear-down — are caught here; unwinding past
    /// the hand-seeded boot frame would be undefined behavior.
    unsafe extern "C" fn fiber_entry(arg: *mut BootArgs) -> ! {
        // SAFETY: `arg` points at the Box the Fiber owns; the runtime (and
        // therefore the fiber table) outlives this fiber.
        let (rt, tid) = unsafe { ((*arg).rt, (*arg).tid) };
        let rt = unsafe { &*rt };
        let (shared, body, nthreads) = {
            let inner = rt.inner.borrow();
            (Arc::clone(&inner.shared), Arc::clone(&inner.body), inner.fibers.len())
        };
        let ctx = SimThread::new_fiber(Arc::clone(&shared), tid, nthreads, NonNull::from(rt));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx)));
        let panic_msg = match result {
            Ok(()) => None,
            Err(p) => {
                if (*p).is::<crate::engine::AbortSignal>() {
                    None // internal tear-down, not a user panic
                } else {
                    Some(crate::engine::panic_message(&*p))
                }
            }
        };
        let deferred = ctx.take_deferred();
        drop(ctx);
        let (wakes, _all_done) = shared.finish_thread_core(tid, panic_msg, deferred);
        rt.enqueue_wakes(&wakes, tid);
        rt.finish_current()
    }

    /// Runs one episode entirely on fibers: every simulated thread becomes
    /// a coroutine on the calling OS thread. Semantics and results are
    /// identical to the OS-thread transport.
    pub(crate) fn run_on_fibers(
        builder: SimBuilder,
        body: Arc<dyn Fn(&SimThread) + Send + Sync>,
    ) -> Result<RunStats, SimError> {
        crate::engine::silence_abort_panics();
        let nthreads = builder.nthreads;
        let shared = Arc::new(builder.into_shared());
        let rt = Box::new(FiberRt {
            inner: RefCell::new(RtInner {
                sched_ctx: Context { rsp: 0 },
                fibers: Vec::with_capacity(nthreads),
                runnable: VecDeque::with_capacity(nthreads),
                current: None,
                finished: 0,
                shared: Arc::clone(&shared),
                body,
            }),
        });
        let rt_ptr: *const FiberRt = &*rt;
        {
            let mut inner = rt.inner.borrow_mut();
            for tid in 0..nthreads {
                let stack = pool_take();
                let mut boot = Box::new(BootArgs { rt: rt_ptr, tid });
                let arg: *mut BootArgs = &mut *boot;
                let ctx = prepare_stack(&stack, arg);
                inner.fibers.push(Fiber { ctx, stack, _boot: boot });
                // Seed in tid order: before any operation is posted, every
                // start order yields the same engine schedule, but tid
                // order keeps the very first rendezvous sequence obvious.
                inner.runnable.push_back(tid);
            }
        }
        rt.drive();
        let result = shared.collect();
        for f in rt.inner.borrow_mut().fibers.drain(..) {
            pool_put(f.stack);
        }
        result
    }
}

#[cfg(not(all(target_arch = "x86_64", unix)))]
pub(crate) use stub::{run_on_fibers, FiberRt};

#[cfg(not(all(target_arch = "x86_64", unix)))]
mod stub {
    use super::*;

    /// Placeholder so [`SimThread`](crate::engine::SimThread) compiles on
    /// architectures without a fiber implementation; never instantiated
    /// ([`fibers_enabled`](super::fibers_enabled) is `false`).
    pub(crate) struct FiberRt {
        _never: std::convert::Infallible,
    }

    impl FiberRt {
        pub(crate) fn suspend(&self) {
            match self._never {}
        }

        pub(crate) fn enqueue_wakes(&self, _wakes: &[usize], _me: usize) {
            match self._never {}
        }
    }

    pub(crate) fn run_on_fibers(
        _builder: SimBuilder,
        _body: Arc<dyn Fn(&SimThread) + Send + Sync>,
    ) -> Result<RunStats, SimError> {
        unreachable!("fiber transport is gated off on this architecture")
    }
}

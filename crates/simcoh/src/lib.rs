//! # armbar-simcoh — a cache-coherence *latency* simulator
//!
//! A deterministic discrete-event simulator that executes real Rust thread
//! bodies against a modeled many-core machine ([`armbar_topology::Topology`])
//! and charges every memory operation its cache-coherence cost, following
//! the analytical model of Section III of the CLUSTER'21 paper this
//! workspace reproduces:
//!
//! * local read hit — `ε`;
//! * remote read — `L_i` (the latency layer joining reader and owner), plus
//!   the reader-contention term `c·(j−1)` when `j` readers pile onto one
//!   line;
//! * write / atomic RMW — ownership transfer (`L_i` from the current owner)
//!   plus the read-for-ownership (RFO) fan-out `α_i·L_i` to the farthest
//!   sharer and a per-extra-sharer serialization charge; writes to the same
//!   line **serialize**, which is precisely the hot-spot effect that makes
//!   centralized barriers collapse on many-core machines.
//!
//! The simulated machine is *not* cycle-accurate: it is an executable form
//! of the paper's cost model, sufficient to reproduce the relative shapes of
//! the paper's figures. Because line occupancy, sharer sets and invalidation
//! fan-outs are tracked per real byte address, effects like false sharing of
//! packed 4-byte arrival flags emerge from the same code that exhibits them
//! on hardware.
//!
//! ## Execution model
//!
//! Each simulated thread runs arbitrary Rust code; every [`SimThread`]
//! operation posts to a shared engine that processes operations in
//! virtual-time order (ties broken by thread id), one at a time. The engine
//! is *cooperative*: whichever thread posts an operation runs the
//! scheduling loop inline while it holds the state lock, so serial phases
//! of a simulation advance without any context switches. The interleaving
//! is **fully deterministic** — independent of host scheduling and host
//! core count — and a blocked simulation (a buggy barrier) is detected and
//! reported rather than hanging.
//!
//! Two transports carry the simulated threads. On `x86_64` unix hosts,
//! [`SimBuilder::run`] executes them as *fibers* — stackful coroutines on
//! one OS thread, switching in userspace instead of through the kernel (the
//! `fiber` module; `ARMBAR_SIM_FIBERS=0` opts out). Elsewhere (and
//! in explicit [`SimTeam`] runs) they are OS threads pooled in
//! episode-reusable teams. Results are byte-identical across transports.
//!
//! At P≥256 the engine's scheduler is additionally *sharded* per machine
//! cluster (see `DESIGN.md` §13) — a pure scheduling-data-structure
//! partition that never changes the processing order.
//!
//! ```
//! use std::sync::Arc;
//! use armbar_topology::{Platform, Topology};
//! use armbar_simcoh::{Arena, SimBuilder};
//!
//! let topo = Arc::new(Topology::preset(Platform::ThunderX2));
//! let mut arena = Arena::new();
//! let flag = arena.alloc_u32();
//!
//! let stats = SimBuilder::new(topo, 2)
//!     .run(move |ctx| {
//!         if ctx.tid() == 0 {
//!             ctx.store(flag, 1); // costs a local write
//!         } else {
//!             ctx.spin_until(flag, |v| v == 1); // blocks, then pays L_0
//!         }
//!     })
//!     .unwrap();
//! assert!(stats.max_time_ns() > 0.0);
//! ```

pub mod arena;
pub mod engine;
#[cfg(test)]
mod engine_tests;
pub mod error;
pub(crate) mod fiber;
pub mod line;
pub mod rng;
pub mod schedule;
pub mod stats;
pub mod team;

pub use arena::{Addr, Arena};
pub use engine::{SimBuilder, SimThread};
pub use error::{DeadlockWaiter, SimError, WaitKind};
pub use schedule::{
    LoadOrder, MinTimePolicy, ReadyOp, ReadyOpKind, ScheduleDecision, SchedulePolicy, StoreOrder,
    WeakDecision, WeakOp, WeakOpKind,
};
pub use stats::{CoherenceCounters, CoherenceStats, LineTraffic, Mark, OpKind, RunStats};
pub use team::SimTeam;

//! Simulation failure modes.

/// Why a simulation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Every live simulated thread is blocked in `spin_until` and no write
    /// can ever satisfy any of them: the program under simulation (usually
    /// a barrier implementation) has deadlocked.
    ///
    /// Carries the ids of the blocked threads and the addresses they were
    /// spinning on.
    Deadlock { waiters: Vec<(usize, u32)> },
    /// The simulation exceeded the configured operation budget — a live-lock
    /// or runaway loop in the simulated program.
    OpBudgetExhausted { ops: u64 },
    /// A simulated thread panicked; the message is forwarded.
    ThreadPanic { tid: usize, message: String },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { waiters } => {
                write!(f, "simulated deadlock: {} thread(s) blocked forever: ", waiters.len())?;
                for (i, (tid, addr)) in waiters.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "t{tid} on addr {addr:#x}")?;
                }
                Ok(())
            }
            SimError::OpBudgetExhausted { ops } => {
                write!(f, "simulation exceeded its operation budget ({ops} ops): live-lock?")
            }
            SimError::ThreadPanic { tid, message } => {
                write!(f, "simulated thread {tid} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_message_lists_waiters() {
        let e = SimError::Deadlock { waiters: vec![(0, 0x40), (3, 0x80)] };
        let s = e.to_string();
        assert!(s.contains("t0 on addr 0x40"), "{s}");
        assert!(s.contains("t3 on addr 0x80"), "{s}");
    }

    #[test]
    fn budget_message_mentions_ops() {
        let e = SimError::OpBudgetExhausted { ops: 123 };
        assert!(e.to_string().contains("123"));
    }

    #[test]
    fn panic_message_forwards() {
        let e = SimError::ThreadPanic { tid: 7, message: "boom".into() };
        assert!(e.to_string().contains("thread 7"));
        assert!(e.to_string().contains("boom"));
    }
}

//! Simulation failure modes.

/// What a blocked simulated thread was waiting *for* — recorded when the
/// thread parks so that a deadlock report can say not just where a thread
/// was stuck but what condition could never be met (a lost-wakeup report
/// reads "t3 on addr 0x40 waiting for == 1" instead of a bare address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// `spin_until_eq`: waiting for the word to equal the value.
    Eq(u32),
    /// `spin_until_ge`: waiting for the word to reach the epoch.
    Ge(u32),
    /// `spin_until_all_ge`: waiting for *every* watched word to reach the
    /// epoch; the reported address is one that had not yet.
    AllGe(u32),
    /// An opaque `spin_until` predicate (no target value recoverable).
    Pred,
}

impl std::fmt::Display for WaitKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitKind::Eq(v) => write!(f, "== {v}"),
            WaitKind::Ge(v) => write!(f, ">= {v}"),
            WaitKind::AllGe(v) => write!(f, "all >= {v}"),
            WaitKind::Pred => write!(f, "<predicate>"),
        }
    }
}

/// One thread blocked forever in a deadlocked simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlockWaiter {
    /// The blocked thread.
    pub tid: usize,
    /// The address it was spinning on (for all-ge waits: the first watched
    /// address still below the epoch).
    pub addr: u32,
    /// The condition that could never be satisfied.
    pub kind: WaitKind,
    /// The word's committed (coherence-state) value at detection time.
    pub last_value: u32,
    /// What the waiter itself would read: the committed value overlaid with
    /// the waiter's own store buffer and stale-value cache. Equal to
    /// `last_value` outside weak mode; when they differ, the divergence is
    /// itself the diagnosis — a reordering hid the committed value from
    /// this thread (or vice versa), which no fence-free reading of
    /// `last_value` alone could explain.
    pub view: u32,
}

impl std::fmt::Display for DeadlockWaiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t{} on addr {:#x} waiting for {} (saw {}",
            self.tid, self.addr, self.kind, self.last_value
        )?;
        if self.view != self.last_value {
            write!(f, ", thread view {}", self.view)?;
        }
        write!(f, ")")
    }
}

/// Why a simulation could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Every live simulated thread is blocked in `spin_until` and no write
    /// can ever satisfy any of them: the program under simulation (usually
    /// a barrier implementation) has deadlocked.
    ///
    /// Carries, per blocked thread, the address it was spinning on, the
    /// wait condition, and the value last observed there.
    Deadlock { waiters: Vec<DeadlockWaiter> },
    /// The simulation exceeded the configured operation budget — a live-lock
    /// or runaway loop in the simulated program. Carries both the configured
    /// budget and the number of operations issued when the guard tripped, so
    /// the message tells the reader what limit to raise.
    OpBudgetExhausted { ops: u64, budget: u64 },
    /// A simulated thread panicked; the message is forwarded. `waiters`
    /// snapshots every *other* thread that was blocked in a spin-wait when
    /// the panic tore the run down — often the interesting part of the
    /// diagnosis (the panicking thread is frequently an assertion that a
    /// release store never happened, and the waiters say who was stuck
    /// because of it).
    ThreadPanic { tid: usize, message: String, waiters: Vec<DeadlockWaiter> },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { waiters } => {
                write!(f, "simulated deadlock: {} thread(s) blocked forever: ", waiters.len())?;
                for (i, w) in waiters.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{w}")?;
                }
                Ok(())
            }
            SimError::OpBudgetExhausted { ops, budget } => {
                write!(
                    f,
                    "simulation exceeded its operation budget of {budget} ops \
                     (issued {ops}): live-lock?"
                )
            }
            SimError::ThreadPanic { tid, message, waiters } => {
                write!(f, "simulated thread {tid} panicked: {message}")?;
                if !waiters.is_empty() {
                    write!(f, "; {} thread(s) were blocked: ", waiters.len())?;
                    for (i, w) in waiters.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{w}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_message_lists_waiters_with_conditions() {
        let e = SimError::Deadlock {
            waiters: vec![
                DeadlockWaiter {
                    tid: 0,
                    addr: 0x40,
                    kind: WaitKind::Eq(1),
                    last_value: 0,
                    view: 0,
                },
                DeadlockWaiter {
                    tid: 3,
                    addr: 0x80,
                    kind: WaitKind::Ge(7),
                    last_value: 6,
                    view: 6,
                },
            ],
        };
        let s = e.to_string();
        assert!(s.contains("t0 on addr 0x40 waiting for == 1 (saw 0)"), "{s}");
        assert!(s.contains("t3 on addr 0x80 waiting for >= 7 (saw 6)"), "{s}");
    }

    #[test]
    fn divergent_weak_view_is_reported_alongside_committed_value() {
        let w =
            DeadlockWaiter { tid: 1, addr: 0x44, kind: WaitKind::Eq(2), last_value: 2, view: 0 };
        let s = w.to_string();
        assert!(s.contains("(saw 2, thread view 0)"), "{s}");
        // Identical views keep the pre-weak message shape.
        let w =
            DeadlockWaiter { tid: 1, addr: 0x44, kind: WaitKind::Eq(2), last_value: 2, view: 2 };
        assert!(w.to_string().ends_with("(saw 2)"), "{w}");
    }

    #[test]
    fn wait_kind_display_covers_all_variants() {
        assert_eq!(WaitKind::Eq(2).to_string(), "== 2");
        assert_eq!(WaitKind::Ge(3).to_string(), ">= 3");
        assert_eq!(WaitKind::AllGe(4).to_string(), "all >= 4");
        assert_eq!(WaitKind::Pred.to_string(), "<predicate>");
    }

    #[test]
    fn budget_message_mentions_ops_and_budget() {
        let e = SimError::OpBudgetExhausted { ops: 123, budget: 100 };
        let s = e.to_string();
        assert!(s.contains("123"), "{s}");
        assert!(s.contains("budget of 100 ops"), "{s}");
    }

    #[test]
    fn panic_message_forwards() {
        let e = SimError::ThreadPanic { tid: 7, message: "boom".into(), waiters: vec![] };
        assert!(e.to_string().contains("thread 7"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn panic_message_lists_blocked_peers() {
        let e = SimError::ThreadPanic {
            tid: 2,
            message: "boom".into(),
            waiters: vec![DeadlockWaiter {
                tid: 0,
                addr: 0x40,
                kind: WaitKind::Ge(1),
                last_value: 0,
                view: 0,
            }],
        };
        let s = e.to_string();
        assert!(s.contains("1 thread(s) were blocked"), "{s}");
        assert!(s.contains("t0 on addr 0x40 waiting for >= 1 (saw 0)"), "{s}");
    }
}

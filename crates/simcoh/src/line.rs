//! Per-cache-line coherence directory state.

use armbar_topology::CoreId;

/// A set of cores holding a valid copy of a line. The simulator supports up
/// to [`CoreSet::CAPACITY`] cores (sixteen 64-bit words), which covers the
/// paper's machines and the MemPool-style kilocore topologies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreSet {
    bits: [u64; Self::WORDS],
}

impl CoreSet {
    /// Bitset width in 64-bit words.
    const WORDS: usize = 16;

    /// Largest supported core count.
    pub const CAPACITY: usize = Self::WORDS * 64;

    /// The empty set.
    pub const EMPTY: CoreSet = CoreSet { bits: [0; Self::WORDS] };

    /// Inserts a core.
    #[inline]
    pub fn insert(&mut self, c: CoreId) {
        debug_assert!(c < Self::CAPACITY);
        self.bits[c / 64] |= 1u64 << (c % 64);
    }

    /// Removes a core.
    #[inline]
    pub fn remove(&mut self, c: CoreId) {
        debug_assert!(c < Self::CAPACITY);
        self.bits[c / 64] &= !(1u64 << (c % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, c: CoreId) -> bool {
        debug_assert!(c < Self::CAPACITY);
        self.bits[c / 64] & (1u64 << (c % 64)) != 0
    }

    /// Number of cores in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == [0; Self::WORDS]
    }

    /// Clears the set.
    #[inline]
    pub fn clear(&mut self) {
        self.bits = [0; Self::WORDS];
    }

    /// Iterates over member core ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..Self::WORDS).flat_map(move |w| {
            let mut word = self.bits[w];
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let b = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(w * 64 + b)
                }
            })
        })
    }
}

impl FromIterator<CoreId> for CoreSet {
    fn from_iter<T: IntoIterator<Item = CoreId>>(iter: T) -> Self {
        let mut s = CoreSet::EMPTY;
        for c in iter {
            s.insert(c);
        }
        s
    }
}

/// Directory entry for one cache line.
///
/// `owner` is the core whose cache holds the authoritative (most recently
/// written) copy; `sharers` are cores holding valid read copies (the owner
/// is always a sharer of its own line). `available_at` is the virtual time
/// at which the line next becomes free for an ownership transfer — writes
/// and RMWs to one line serialize on it, producing hot-spot queueing.
#[derive(Debug, Clone, Copy)]
pub struct Line {
    /// Core owning the authoritative copy (last writer), if any.
    pub owner: Option<CoreId>,
    /// Cores with a valid copy.
    pub sharers: CoreSet,
    /// Virtual time when the line is next available for a write/RMW.
    pub available_at: f64,
    /// Readers that piled onto the line since its last write — used for the
    /// paper's `c·(j−1)` reader-contention term (Eq. 3).
    pub readers_since_write: u32,
}

impl Default for Line {
    fn default() -> Self {
        Self { owner: None, sharers: CoreSet::EMPTY, available_at: 0.0, readers_since_write: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coreset_basic_ops() {
        let mut s = CoreSet::EMPTY;
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(127);
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(127));
        assert!(!s.contains(1));
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn coreset_iter_ascending() {
        let s: CoreSet = [5usize, 1, 64, 99].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![1, 5, 64, 99]);
    }

    #[test]
    fn coreset_insert_idempotent() {
        let mut s = CoreSet::EMPTY;
        s.insert(7);
        s.insert(7);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn coreset_clear() {
        let mut s: CoreSet = (0..100).collect();
        assert_eq!(s.len(), 100);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn coreset_covers_kilocore_range() {
        let mut s = CoreSet::EMPTY;
        s.insert(128);
        s.insert(512);
        s.insert(CoreSet::CAPACITY - 1);
        assert_eq!(s.len(), 3);
        assert!(s.contains(128) && s.contains(512) && s.contains(1023));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![128, 512, 1023]);
        s.remove(512);
        assert_eq!(s.len(), 2);
        let full: CoreSet = (0..CoreSet::CAPACITY).collect();
        assert_eq!(full.len(), 1024);
    }

    #[test]
    fn line_default_is_cold() {
        let l = Line::default();
        assert!(l.owner.is_none());
        assert!(l.sharers.is_empty());
        assert_eq!(l.available_at, 0.0);
    }
}

//! Flag arena: byte-addressed allocation of simulated shared memory.
//!
//! Barrier implementations allocate their flags and counters from an
//! [`Arena`] *before* the simulation starts. Addresses are plain byte
//! offsets; the simulator derives the cache line of an access as
//! `addr / cacheline_bytes`, so the allocation layout — packed 4-byte flags
//! versus one-flag-per-line padding — has exactly the coherence consequences
//! it would have on hardware. The host-atomics backend in `armbar-core`
//! uses the *same* addresses as offsets into one contiguous atomic array,
//! keeping both backends layout-identical.

/// A simulated (or arena-relative) byte address of a 4-byte word.
pub type Addr = u32;

/// Bump allocator for simulated shared memory.
///
/// All values are 32-bit words; `alloc*` methods return 4-byte-aligned
/// addresses. Memory is zero-initialized (like freshly mapped pages).
#[derive(Debug, Clone, Default)]
pub struct Arena {
    next: Addr,
}

impl Arena {
    /// An empty arena starting at address 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes allocated so far (= size of the host backing array).
    pub fn len(&self) -> usize {
        self.next as usize
    }

    /// True when nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.next == 0
    }

    /// Number of 4-byte word slots the allocation spans — the exact size of
    /// the simulator's dense value table for programs that only touch arena
    /// addresses.
    pub fn word_slots(&self) -> usize {
        self.len().div_ceil(4)
    }

    /// Number of `line_bytes`-sized cache-line slots the allocation spans —
    /// the exact size of the simulator's dense directory for programs that
    /// only touch arena addresses.
    ///
    /// # Panics
    /// Panics unless `line_bytes` is a power of two ≥ 4.
    pub fn line_slots(&self, line_bytes: usize) -> usize {
        assert!(line_bytes >= 4 && line_bytes.is_power_of_two(), "bad line size {line_bytes}");
        self.len().div_ceil(line_bytes)
    }

    /// Allocates `bytes` bytes aligned to `align` (a power of two ≥ 4).
    ///
    /// # Panics
    /// Panics on a zero size, a non-power-of-two alignment, or address
    /// space exhaustion (the arena is 4 GiB).
    pub fn alloc(&mut self, bytes: usize, align: usize) -> Addr {
        assert!(bytes > 0, "zero-size allocation");
        assert!(align >= 4 && align.is_power_of_two(), "bad alignment {align}");
        let mask = (align - 1) as Addr;
        let base = (self.next + mask) & !mask;
        let end = base
            .checked_add(u32::try_from(bytes).expect("allocation too large"))
            .expect("arena address space exhausted");
        self.next = end;
        base
    }

    /// Allocates one 4-byte word (packed; may share a cache line with
    /// neighbouring allocations).
    pub fn alloc_u32(&mut self) -> Addr {
        self.alloc(4, 4)
    }

    /// Allocates `n` consecutive packed 4-byte words and returns the base
    /// address; word `i` lives at `base + 4·i`.
    pub fn alloc_u32_array(&mut self, n: usize) -> Addr {
        assert!(n > 0);
        self.alloc(4 * n, 4)
    }

    /// Allocates one 4-byte word alone on a cache line of `line_bytes`
    /// (flag *padding*, Section V-B-1 of the paper: "representing the flag
    /// of each child node with a cache line").
    pub fn alloc_padded_u32(&mut self, line_bytes: usize) -> Addr {
        let a = self.alloc(line_bytes, line_bytes);
        // The word sits at the line start; the rest of the line is padding.
        a
    }

    /// Allocates `n` words, each alone on its own `line_bytes` cache line.
    /// Word `i` lives at `base + line_bytes·i`.
    pub fn alloc_padded_u32_array(&mut self, n: usize, line_bytes: usize) -> Addr {
        assert!(n > 0);
        self.alloc(line_bytes * n, line_bytes)
    }
}

/// Address of element `i` of a packed u32 array at `base`.
#[inline]
pub fn packed_elem(base: Addr, i: usize) -> Addr {
    base + 4 * i as Addr
}

/// Address of element `i` of a padded array at `base` with `line_bytes`
/// stride.
#[inline]
pub fn padded_elem(base: Addr, i: usize, line_bytes: usize) -> Addr {
    base + (line_bytes * i) as Addr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut a = Arena::new();
        let x = a.alloc(4, 4);
        let y = a.alloc(8, 8);
        let z = a.alloc(4, 64);
        assert_eq!(x % 4, 0);
        assert_eq!(y % 8, 0);
        assert_eq!(z % 64, 0);
        assert!(x + 4 <= y);
        assert!(y + 8 <= z);
    }

    #[test]
    fn packed_array_shares_lines() {
        let mut a = Arena::new();
        let base = a.alloc_u32_array(16);
        // 16 packed words span exactly 64 bytes: one 64-byte line if aligned.
        let first_line = packed_elem(base, 0) / 64;
        let last_line = packed_elem(base, 15) / 64;
        assert!(last_line - first_line <= 1);
    }

    #[test]
    fn padded_array_separates_lines() {
        let mut a = Arena::new();
        let base = a.alloc_padded_u32_array(8, 64);
        let mut lines: Vec<u32> = (0..8).map(|i| padded_elem(base, i, 64) / 64).collect();
        lines.dedup();
        assert_eq!(lines.len(), 8, "each padded element must own its line");
    }

    #[test]
    fn padded_single_is_line_aligned() {
        let mut a = Arena::new();
        let _ = a.alloc_u32(); // misalign the bump pointer
        let p = a.alloc_padded_u32(128);
        assert_eq!(p % 128, 0);
    }

    #[test]
    fn len_tracks_high_water_mark() {
        let mut a = Arena::new();
        assert!(a.is_empty());
        a.alloc_u32_array(10);
        assert_eq!(a.len(), 40);
        a.alloc_padded_u32(64);
        assert_eq!(a.len(), 128);
    }

    #[test]
    fn slot_counts_cover_the_allocation() {
        let mut a = Arena::new();
        assert_eq!(a.word_slots(), 0);
        assert_eq!(a.line_slots(64), 0);
        a.alloc_u32_array(3); // 12 bytes
        assert_eq!(a.word_slots(), 3);
        assert_eq!(a.line_slots(64), 1);
        a.alloc_padded_u32(64); // rounds up to 64, ends at 128
        assert_eq!(a.word_slots(), 32);
        assert_eq!(a.line_slots(64), 2);
        assert_eq!(a.line_slots(128), 1);
    }

    #[test]
    #[should_panic(expected = "zero-size allocation")]
    fn rejects_zero_size() {
        Arena::new().alloc(0, 4);
    }

    #[test]
    #[should_panic(expected = "bad alignment")]
    fn rejects_small_alignment() {
        Arena::new().alloc(4, 2);
    }
}

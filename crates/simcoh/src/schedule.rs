//! Pluggable interleaving control for the discrete-event engine.
//!
//! PR 4's heap scheduler made the interleaving decision a single point:
//! whenever the engine may make progress it picks one posted-but-unprocessed
//! operation and executes it. A [`SchedulePolicy`] externalizes that pick.
//! The default (no policy installed) remains the virtual-time heap order and
//! is byte-identical to the pre-hook engine; a policy opts a run into
//! *explored* scheduling, where any ready operation may be chosen — or
//! delayed — regardless of its virtual timestamp.
//!
//! ## Why arbitrary picks are sound
//!
//! Each simulated thread has at most one outstanding operation (the
//! rendezvous protocol enforces program order per thread), so executing
//! ready operations in *any* order yields a sequentially consistent
//! interleaving of the program — exactly the set of executions a barrier
//! must survive. What a non-default order gives up is the *cost model*:
//! virtual timestamps stop being globally consistent (an op may observe the
//! effects of a later-stamped op), so explored runs are for correctness
//! checking, not for latency measurement. This is the simulator-level
//! analogue of schedule-bounding stress search — systematic within
//! sequential consistency, and deliberately weaker than weak-memory model
//! checking (see `DESIGN.md` §12).
//!
//! Policies are consulted only at decision points and must be deterministic
//! functions of their own state — a seeded policy makes the whole run a pure
//! function of `(topology, seed, program, policy)`, so any violation found
//! replays bit-for-bit.

use crate::arena::Addr;

/// What kind of operation a ready thread has posted — enough for a policy
/// to target synchronization-relevant sites (flag writes, spin entries)
/// without seeing values or predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadyOpKind {
    /// A plain load.
    Read,
    /// A store.
    Write,
    /// An atomic read-modify-write.
    Rmw,
    /// Entry into a (possibly batched) spin-wait.
    Spin,
    /// An operation with no memory effect (mark, clock read, counter
    /// snapshot).
    Free,
}

/// One posted-but-unprocessed operation offered to a [`SchedulePolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadyOp {
    /// The posting thread.
    pub tid: usize,
    /// The thread's virtual time at the post (its scheduler key).
    pub time_ns: f64,
    /// Operation class.
    pub kind: ReadyOpKind,
    /// Target address (first watched address for batched waits; `None` for
    /// [`ReadyOpKind::Free`] operations).
    pub addr: Option<Addr>,
}

/// Memory-ordering annotation on a load (see `DESIGN.md` §15).
///
/// `Acquire` loads always read the committed coherence state and discard the
/// thread's stale-value cache; `Relaxed` loads may (policy permitting) return
/// a value the thread observed earlier, modeling a read satisfied before an
/// invalidation arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOrder {
    /// `ldar`-style load-acquire: fresh read, orders subsequent accesses.
    Acquire,
    /// Plain `ldr`: may be satisfied early from stale local state.
    Relaxed,
}

/// Memory-ordering annotation on a store (see `DESIGN.md` §15).
///
/// `Release` stores drain the thread's store buffer (in FIFO order) and then
/// commit immediately; `Relaxed` stores may (policy permitting) sit in the
/// thread's store buffer and commit late.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOrder {
    /// `stlr`-style store-release: flushes the buffer, commits now.
    Release,
    /// Plain `str`: may be buffered and commit after later operations.
    Relaxed,
}

/// Class of a weak-memory decision point offered to a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeakOpKind {
    /// A relaxed store that may be deferred into the thread's store buffer.
    RelaxedStore,
    /// A relaxed load for which a stale previously-observed value exists.
    RelaxedLoad,
}

/// One weak-memory decision point: the engine is about to execute a relaxed
/// operation and offers the policy the chance to weaken it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeakOp {
    /// The executing thread.
    pub tid: usize,
    /// Target address.
    pub addr: Addr,
    /// Which weakening is on offer.
    pub kind: WeakOpKind,
}

/// A policy's verdict for one weak-memory decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeakDecision {
    /// Execute with sequentially consistent semantics (commit the store now /
    /// read the committed value).
    Strong,
    /// Take the weak behavior (buffer the store / return the stale value).
    Weak,
}

/// A policy's verdict for one decision point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleDecision {
    /// Execute `ready[i]` now.
    Run(usize),
    /// Push `ready[index]` `ns` nanoseconds into the future and decide
    /// again. The delay advances the thread's clock (and counts against the
    /// run's op budget, so delay loops cannot live-lock the engine).
    Delay {
        /// Index into the offered `ready` slice.
        index: usize,
        /// Non-negative, finite delay in virtual ns.
        ns: f64,
    },
    /// Process nothing: wait for a currently running thread to post its
    /// next operation. Ignored (treated as "run the oldest") when no thread
    /// is running, since waiting then would hang the engine.
    Wait,
}

/// Chooses which ready operation the engine processes next.
///
/// Installed per run via `SimBuilder::schedule_policy`. The engine protects
/// itself against misbehaving policies: out-of-range indices and
/// non-finite/negative delays fall back to the oldest ready op, and `Wait`
/// with an empty running set is overridden — a policy can therefore bias
/// the search but never wedge or crash the engine.
pub trait SchedulePolicy: Send {
    /// Picks the next action given every ready operation, sorted by
    /// `(time_ns, tid)`. `ready` is non-empty.
    ///
    /// The engine consults policies only at *settlement points* — no thread
    /// is executing user code, so the ready set is complete and canonical
    /// (host scheduling cannot perturb it). `min_running` is therefore
    /// `None` under the current engine; it carries the earliest running
    /// thread's `(time_ns, tid)` key should a future engine relax the
    /// settlement discipline, and policies should [`ScheduleDecision::Wait`]
    /// when they want to defer to it.
    fn pick(&mut self, ready: &[ReadyOp], min_running: Option<(f64, usize)>) -> ScheduleDecision;

    /// Decides whether one relaxed operation takes its weak behavior.
    ///
    /// Consulted only in policy mode, only for operations annotated relaxed,
    /// and (for loads) only when a stale value is actually available. The
    /// default keeps every operation strong, so policies that never override
    /// this — including every pre-weak policy — reproduce sequentially
    /// consistent execution byte-for-byte.
    fn weak(&mut self, _op: &WeakOp) -> WeakDecision {
        WeakDecision::Strong
    }
}

/// Index of the oldest ready op — minimum `(time, tid)` key, matching the
/// default heap order exactly.
pub fn oldest_index(ready: &[ReadyOp]) -> usize {
    let mut best = 0;
    for (i, r) in ready.iter().enumerate().skip(1) {
        let b = &ready[best];
        if r.time_ns.total_cmp(&b.time_ns).then(r.tid.cmp(&b.tid)).is_lt() {
            best = i;
        }
    }
    best
}

/// Reference policy reproducing the engine's default order: run the oldest
/// ready op exactly when the default scheduler would (its key not after the
/// earliest running thread's key), otherwise wait. Exists to prove the
/// policy-mode engine path is semantically identical to the default path —
/// see the `policy_mode_matches_default` tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinTimePolicy;

impl SchedulePolicy for MinTimePolicy {
    fn pick(&mut self, ready: &[ReadyOp], min_running: Option<(f64, usize)>) -> ScheduleDecision {
        let i = oldest_index(ready);
        match min_running {
            Some((t, tid))
                if ready[i].time_ns.total_cmp(&t).then(ready[i].tid.cmp(&tid)).is_gt() =>
            {
                ScheduleDecision::Wait
            }
            _ => ScheduleDecision::Run(i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(tid: usize, t: f64) -> ReadyOp {
        ReadyOp { tid, time_ns: t, kind: ReadyOpKind::Write, addr: Some(0) }
    }

    #[test]
    fn oldest_index_orders_by_time_then_tid() {
        assert_eq!(oldest_index(&[op(0, 5.0), op(1, 3.0)]), 1);
        assert_eq!(oldest_index(&[op(2, 3.0), op(1, 3.0)]), 1);
        assert_eq!(oldest_index(&[op(0, 0.0)]), 0);
    }

    #[test]
    fn min_time_policy_defers_to_earlier_running_threads() {
        let mut p = MinTimePolicy;
        let ready = [op(3, 10.0)];
        assert_eq!(p.pick(&ready, None), ScheduleDecision::Run(0));
        assert_eq!(p.pick(&ready, Some((20.0, 0))), ScheduleDecision::Run(0));
        assert_eq!(p.pick(&ready, Some((5.0, 0))), ScheduleDecision::Wait);
        // Equal time: the running thread's lower tid wins, like the heap.
        assert_eq!(p.pick(&ready, Some((10.0, 1))), ScheduleDecision::Wait);
        assert_eq!(p.pick(&ready, Some((10.0, 7))), ScheduleDecision::Run(0));
    }
}

//! Run statistics: virtual completion times, operation counts, user marks.

/// Kind of a simulated memory operation, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Read satisfied from the local cache (`R_L`, cost ε).
    LocalRead,
    /// Read served from a remote cache (`R_R`, cost `L_i`).
    RemoteRead,
    /// Store or atomic RMW that already owned the line (`W_L`).
    LocalWrite,
    /// Store or atomic RMW that had to acquire the line (`W_R`).
    RemoteWrite,
    /// A `spin_until` that blocked and was woken by a write.
    SpinWakeup,
    /// Pure local compute (`compute_ns`).
    Compute,
}

impl OpKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [OpKind; 6] = [
        OpKind::LocalRead,
        OpKind::RemoteRead,
        OpKind::LocalWrite,
        OpKind::RemoteWrite,
        OpKind::SpinWakeup,
        OpKind::Compute,
    ];

    fn idx(self) -> usize {
        match self {
            OpKind::LocalRead => 0,
            OpKind::RemoteRead => 1,
            OpKind::LocalWrite => 2,
            OpKind::RemoteWrite => 3,
            OpKind::SpinWakeup => 4,
            OpKind::Compute => 5,
        }
    }
}

/// A user-recorded timestamp (`SimThread::mark`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mark {
    /// Thread that recorded the mark.
    pub tid: usize,
    /// User-chosen label.
    pub label: u32,
    /// Virtual time (ns) at which the mark was recorded.
    pub time_ns: f64,
}

/// Per-cache-line traffic accounting — the "hot spot" evidence (Pfister &
/// Norton) that motivates tree barriers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineTraffic {
    /// Stores and RMWs that committed to this line.
    pub writes: u64,
    /// Total invalidation messages those writes fanned out.
    pub invalidations: u64,
    /// Largest sharer-set size ever invalidated at once.
    pub peak_sharers: u32,
}

/// Statistics of one completed simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    per_thread_time_ns: Vec<f64>,
    op_counts: [u64; 6],
    marks: Vec<Mark>,
    line_traffic: std::collections::HashMap<u32, LineTraffic>,
}

impl RunStats {
    pub(crate) fn new(nthreads: usize) -> Self {
        Self {
            per_thread_time_ns: vec![0.0; nthreads],
            op_counts: [0; 6],
            marks: Vec::new(),
            line_traffic: std::collections::HashMap::new(),
        }
    }

    pub(crate) fn set_thread_time(&mut self, tid: usize, t: f64) {
        self.per_thread_time_ns[tid] = t;
    }

    pub(crate) fn count_op(&mut self, kind: OpKind) {
        self.op_counts[kind.idx()] += 1;
    }

    pub(crate) fn push_mark(&mut self, m: Mark) {
        self.marks.push(m);
    }

    pub(crate) fn record_write(&mut self, line: u32, invalidated: usize) {
        let t = self.line_traffic.entry(line).or_default();
        t.writes += 1;
        t.invalidations += invalidated as u64;
        t.peak_sharers = t.peak_sharers.max(invalidated as u32);
    }

    /// Virtual completion time of each thread, in ns.
    pub fn per_thread_time_ns(&self) -> &[f64] {
        &self.per_thread_time_ns
    }

    /// Virtual time at which the last thread finished — the makespan.
    pub fn max_time_ns(&self) -> f64 {
        self.per_thread_time_ns.iter().copied().fold(0.0, f64::max)
    }

    /// Number of operations of a kind across all threads.
    pub fn ops(&self, kind: OpKind) -> u64 {
        self.op_counts[kind.idx()]
    }

    /// Total memory operations (excluding compute).
    pub fn total_mem_ops(&self) -> u64 {
        OpKind::ALL
            .iter()
            .filter(|k| !matches!(k, OpKind::Compute))
            .map(|&k| self.ops(k))
            .sum()
    }

    /// All marks, in the order they were committed in virtual time.
    pub fn marks(&self) -> &[Mark] {
        &self.marks
    }

    /// Per-line write/invalidation traffic, keyed by line index
    /// (`addr / line_bytes`).
    pub fn line_traffic(&self) -> &std::collections::HashMap<u32, LineTraffic> {
        &self.line_traffic
    }

    /// The `n` most-written lines, descending — the hot spots.
    pub fn hottest_lines(&self, n: usize) -> Vec<(u32, LineTraffic)> {
        let mut v: Vec<(u32, LineTraffic)> =
            self.line_traffic.iter().map(|(&k, &t)| (k, t)).collect();
        v.sort_by(|a, b| b.1.writes.cmp(&a.1.writes).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Fraction of all committed writes that landed on the single hottest
    /// line — 1.0 means a perfect hot spot (centralized barrier), values
    /// near `1/lines` mean the traffic is spread (trees).
    pub fn hotspot_concentration(&self) -> f64 {
        let total: u64 = self.line_traffic.values().map(|t| t.writes).sum();
        if total == 0 {
            return 0.0;
        }
        let max = self.line_traffic.values().map(|t| t.writes).max().unwrap_or(0);
        max as f64 / total as f64
    }

    /// The latest time at which any thread recorded `label` — useful for
    /// "everyone passed episode k" timestamps.
    pub fn last_mark_time(&self, label: u32) -> Option<f64> {
        self.marks
            .iter()
            .filter(|m| m.label == label)
            .map(|m| m.time_ns)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_time_is_max() {
        let mut s = RunStats::new(3);
        s.set_thread_time(0, 5.0);
        s.set_thread_time(1, 9.0);
        s.set_thread_time(2, 2.0);
        assert_eq!(s.max_time_ns(), 9.0);
    }

    #[test]
    fn op_counting_accumulates() {
        let mut s = RunStats::new(1);
        s.count_op(OpKind::RemoteRead);
        s.count_op(OpKind::RemoteRead);
        s.count_op(OpKind::LocalWrite);
        assert_eq!(s.ops(OpKind::RemoteRead), 2);
        assert_eq!(s.ops(OpKind::LocalWrite), 1);
        assert_eq!(s.ops(OpKind::RemoteWrite), 0);
        assert_eq!(s.total_mem_ops(), 3);
    }

    #[test]
    fn compute_not_a_mem_op() {
        let mut s = RunStats::new(1);
        s.count_op(OpKind::Compute);
        assert_eq!(s.total_mem_ops(), 0);
    }

    #[test]
    fn last_mark_time_filters_by_label() {
        let mut s = RunStats::new(2);
        s.push_mark(Mark { tid: 0, label: 1, time_ns: 10.0 });
        s.push_mark(Mark { tid: 1, label: 1, time_ns: 30.0 });
        s.push_mark(Mark { tid: 0, label: 2, time_ns: 50.0 });
        assert_eq!(s.last_mark_time(1), Some(30.0));
        assert_eq!(s.last_mark_time(2), Some(50.0));
        assert_eq!(s.last_mark_time(3), None);
    }
}

//! Run statistics: virtual completion times, operation counts, user marks.

/// Kind of a simulated memory operation, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Read satisfied from the local cache (`R_L`, cost ε).
    LocalRead,
    /// Read served from a remote cache (`R_R`, cost `L_i`).
    RemoteRead,
    /// Store or atomic RMW that already owned the line (`W_L`).
    LocalWrite,
    /// Store or atomic RMW that had to acquire the line (`W_R`).
    RemoteWrite,
    /// A `spin_until` that blocked and was woken by a write.
    SpinWakeup,
    /// Pure local compute (`compute_ns`).
    Compute,
}

impl OpKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [OpKind; 6] = [
        OpKind::LocalRead,
        OpKind::RemoteRead,
        OpKind::LocalWrite,
        OpKind::RemoteWrite,
        OpKind::SpinWakeup,
        OpKind::Compute,
    ];

    fn idx(self) -> usize {
        match self {
            OpKind::LocalRead => 0,
            OpKind::RemoteRead => 1,
            OpKind::LocalWrite => 2,
            OpKind::RemoteWrite => 3,
            OpKind::SpinWakeup => 4,
            OpKind::Compute => 5,
        }
    }
}

/// A user-recorded timestamp (`SimThread::mark`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mark {
    /// Thread that recorded the mark.
    pub tid: usize,
    /// User-chosen label.
    pub label: u32,
    /// Virtual time (ns) at which the mark was recorded.
    pub time_ns: f64,
}

/// Per-cache-line traffic accounting — the "hot spot" evidence (Pfister &
/// Norton) that motivates tree barriers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineTraffic {
    /// Stores and RMWs that committed to this line.
    pub writes: u64,
    /// Total invalidation messages those writes fanned out.
    pub invalidations: u64,
    /// Largest sharer-set size ever invalidated at once.
    pub peak_sharers: u32,
    /// Remote read transfers that pulled this line.
    pub remote_reads: u64,
    /// Remote reads that paid the `c·(j−1)` reader-contention term, i.e.
    /// arrived while other readers were already piling onto the line.
    pub contended_reads: u64,
}

/// Per-thread coherence-operation counters, the observable form of the
/// paper's Section III cost model: every simulated memory operation lands in
/// exactly one read/write bucket, and the stall/fan-out fields expose the
/// serialization effects that the latency numbers alone hide.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoherenceCounters {
    /// Reads satisfied from the local cache (`R_L`, cost ε).
    pub local_reads: u64,
    /// Reads served by a remote transfer (`R_R`, cost `L_i`).
    pub remote_reads: u64,
    /// Remote reads that additionally paid reader contention `c·(j−1)`.
    pub reader_contention_events: u64,
    /// Stores/RMWs that already owned the line (`W_L`).
    pub local_writes: u64,
    /// Stores/RMWs that had to acquire ownership remotely (`W_R`).
    pub remote_writes: u64,
    /// Total invalidation messages this thread's writes fanned out (the RFO
    /// crowd cost; a padded-flag layout shrinks this, a packed one inflates
    /// it via false sharing).
    pub rfo_invalidations: u64,
    /// Times a store/RMW found its line busy (a write in flight) and had to
    /// wait for `available_at` — write serialization.
    pub write_stalls: u64,
    /// Virtual ns spent in those write stalls.
    pub write_stall_ns: f64,
    /// Times a read/spin found its line busy and had to wait.
    pub read_stalls: u64,
    /// Virtual ns spent in those read stalls.
    pub read_stall_ns: f64,
    /// Blocking spin-waits woken by a write.
    pub spin_wakeups: u64,
}

impl CoherenceCounters {
    /// Field-wise accumulation (for totals across threads or episodes).
    pub fn accumulate(&mut self, other: &CoherenceCounters) {
        self.local_reads += other.local_reads;
        self.remote_reads += other.remote_reads;
        self.reader_contention_events += other.reader_contention_events;
        self.local_writes += other.local_writes;
        self.remote_writes += other.remote_writes;
        self.rfo_invalidations += other.rfo_invalidations;
        self.write_stalls += other.write_stalls;
        self.write_stall_ns += other.write_stall_ns;
        self.read_stalls += other.read_stalls;
        self.read_stall_ns += other.read_stall_ns;
        self.spin_wakeups += other.spin_wakeups;
    }

    /// Field-wise difference (`self − earlier`), for per-episode deltas
    /// between two snapshots of monotonically growing counters.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is not component-wise ≤ `self`.
    pub fn delta_since(&self, earlier: &CoherenceCounters) -> CoherenceCounters {
        CoherenceCounters {
            local_reads: self.local_reads - earlier.local_reads,
            remote_reads: self.remote_reads - earlier.remote_reads,
            reader_contention_events: self.reader_contention_events
                - earlier.reader_contention_events,
            local_writes: self.local_writes - earlier.local_writes,
            remote_writes: self.remote_writes - earlier.remote_writes,
            rfo_invalidations: self.rfo_invalidations - earlier.rfo_invalidations,
            write_stalls: self.write_stalls - earlier.write_stalls,
            write_stall_ns: self.write_stall_ns - earlier.write_stall_ns,
            read_stalls: self.read_stalls - earlier.read_stalls,
            read_stall_ns: self.read_stall_ns - earlier.read_stall_ns,
            spin_wakeups: self.spin_wakeups - earlier.spin_wakeups,
        }
    }

    /// All memory operations (reads + writes, excluding wakeups/stalls
    /// which are attributes of those operations rather than extra ones).
    pub fn total_mem_ops(&self) -> u64 {
        self.local_reads + self.remote_reads + self.local_writes + self.remote_writes
    }
}

/// Snapshot of the per-thread coherence counters of a run.
#[derive(Debug, Clone, Default)]
pub struct CoherenceStats {
    per_thread: Vec<CoherenceCounters>,
}

impl CoherenceStats {
    pub(crate) fn new(nthreads: usize) -> Self {
        Self { per_thread: vec![CoherenceCounters::default(); nthreads] }
    }

    pub(crate) fn thread_mut(&mut self, tid: usize) -> &mut CoherenceCounters {
        &mut self.per_thread[tid]
    }

    /// Counters of each thread, indexed by tid.
    pub fn per_thread(&self) -> &[CoherenceCounters] {
        &self.per_thread
    }

    /// Counters of one thread.
    pub fn thread(&self, tid: usize) -> &CoherenceCounters {
        &self.per_thread[tid]
    }

    /// Sum over all threads.
    pub fn total(&self) -> CoherenceCounters {
        let mut acc = CoherenceCounters::default();
        for c in &self.per_thread {
            acc.accumulate(c);
        }
        acc
    }
}

/// Statistics of one completed simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    per_thread_time_ns: Vec<f64>,
    op_counts: [u64; 6],
    marks: Vec<Mark>,
    line_traffic: std::collections::HashMap<u32, LineTraffic>,
    coherence: CoherenceStats,
    schedule_hash: u64,
}

impl RunStats {
    pub(crate) fn new(nthreads: usize) -> Self {
        Self {
            per_thread_time_ns: vec![0.0; nthreads],
            op_counts: [0; 6],
            marks: Vec::new(),
            line_traffic: std::collections::HashMap::new(),
            coherence: CoherenceStats::new(nthreads),
            schedule_hash: 0,
        }
    }

    /// Folds one scheduling event into the run's order fingerprint
    /// (SplitMix64-style finalizer over the running hash and the event).
    /// Called once per processed op — and per injected delay — so two runs
    /// share a hash only if the engine made the same decisions in the same
    /// order.
    pub(crate) fn mix_schedule(&mut self, tag: u64, payload: u64) {
        let mut z = self
            .schedule_hash
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tag)
            .wrapping_add(payload.rotate_left(17));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.schedule_hash = z ^ (z >> 31);
    }

    pub(crate) fn set_thread_time(&mut self, tid: usize, t: f64) {
        self.per_thread_time_ns[tid] = t;
    }

    pub(crate) fn count_ops(&mut self, kind: OpKind, n: u64) {
        self.op_counts[kind.idx()] += n;
    }

    pub(crate) fn push_mark(&mut self, m: Mark) {
        self.marks.push(m);
    }

    /// Accounts one read by `tid` of `line` (op counts, per-thread
    /// coherence counters, per-line traffic).
    pub(crate) fn record_read(&mut self, tid: usize, line: u32, local: bool, contended: bool) {
        let c = self.coherence.thread_mut(tid);
        if local {
            c.local_reads += 1;
            self.op_counts[OpKind::LocalRead.idx()] += 1;
        } else {
            c.remote_reads += 1;
            if contended {
                c.reader_contention_events += 1;
            }
            self.op_counts[OpKind::RemoteRead.idx()] += 1;
            let t = self.line_traffic.entry(line).or_default();
            t.remote_reads += 1;
            if contended {
                t.contended_reads += 1;
            }
        }
    }

    /// Accounts one committed write by `tid` to `line` that invalidated
    /// `invalidated` other sharers.
    pub(crate) fn record_write(&mut self, tid: usize, line: u32, remote: bool, invalidated: usize) {
        let c = self.coherence.thread_mut(tid);
        if remote {
            c.remote_writes += 1;
            self.op_counts[OpKind::RemoteWrite.idx()] += 1;
        } else {
            c.local_writes += 1;
            self.op_counts[OpKind::LocalWrite.idx()] += 1;
        }
        c.rfo_invalidations += invalidated as u64;
        let t = self.line_traffic.entry(line).or_default();
        t.writes += 1;
        t.invalidations += invalidated as u64;
        t.peak_sharers = t.peak_sharers.max(invalidated as u32);
    }

    /// Accounts `ns` of virtual time `tid` spent waiting for a busy line
    /// (`write` selects write- vs read-side serialization).
    pub(crate) fn record_stall(&mut self, tid: usize, write: bool, ns: f64) {
        let c = self.coherence.thread_mut(tid);
        if write {
            c.write_stalls += 1;
            c.write_stall_ns += ns;
        } else {
            c.read_stalls += 1;
            c.read_stall_ns += ns;
        }
    }

    /// Accounts one blocking spin-wait of `tid` woken by a write.
    pub(crate) fn record_spin_wakeup(&mut self, tid: usize) {
        self.coherence.thread_mut(tid).spin_wakeups += 1;
        self.op_counts[OpKind::SpinWakeup.idx()] += 1;
    }

    /// Virtual completion time of each thread, in ns.
    pub fn per_thread_time_ns(&self) -> &[f64] {
        &self.per_thread_time_ns
    }

    /// Virtual time at which the last thread finished — the makespan.
    pub fn max_time_ns(&self) -> f64 {
        self.per_thread_time_ns.iter().copied().fold(0.0, f64::max)
    }

    /// Number of operations of a kind across all threads.
    pub fn ops(&self, kind: OpKind) -> u64 {
        self.op_counts[kind.idx()]
    }

    /// Total memory operations (excluding compute).
    pub fn total_mem_ops(&self) -> u64 {
        OpKind::ALL.iter().filter(|k| !matches!(k, OpKind::Compute)).map(|&k| self.ops(k)).sum()
    }

    /// All marks, in the order they were committed in virtual time.
    pub fn marks(&self) -> &[Mark] {
        &self.marks
    }

    /// Per-line write/invalidation traffic, keyed by line index
    /// (`addr / line_bytes`).
    pub fn line_traffic(&self) -> &std::collections::HashMap<u32, LineTraffic> {
        &self.line_traffic
    }

    /// Per-thread coherence-op counters accumulated over the run.
    pub fn coherence(&self) -> &CoherenceStats {
        &self.coherence
    }

    /// The `n` most-written lines, descending — the hot spots.
    pub fn hottest_lines(&self, n: usize) -> Vec<(u32, LineTraffic)> {
        let mut v: Vec<(u32, LineTraffic)> =
            self.line_traffic.iter().map(|(&k, &t)| (k, t)).collect();
        v.sort_by(|a, b| b.1.writes.cmp(&a.1.writes).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Fraction of all committed writes that landed on the single hottest
    /// line — 1.0 means a perfect hot spot (centralized barrier), values
    /// near `1/lines` mean the traffic is spread (trees).
    pub fn hotspot_concentration(&self) -> f64 {
        let total: u64 = self.line_traffic.values().map(|t| t.writes).sum();
        if total == 0 {
            return 0.0;
        }
        let max = self.line_traffic.values().map(|t| t.writes).max().unwrap_or(0);
        max as f64 / total as f64
    }

    /// Order fingerprint of the run's scheduling decisions. Runs that
    /// processed the same operations in the same order (with the same
    /// injected delays) share a hash; the conformance checker counts
    /// distinct hashes to report how many genuinely different interleavings
    /// a search explored. Identical for repeated runs of one seed.
    pub fn schedule_hash(&self) -> u64 {
        self.schedule_hash
    }

    /// The latest time at which any thread recorded `label` — useful for
    /// "everyone passed episode k" timestamps.
    pub fn last_mark_time(&self, label: u32) -> Option<f64> {
        self.marks
            .iter()
            .filter(|m| m.label == label)
            .map(|m| m.time_ns)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_time_is_max() {
        let mut s = RunStats::new(3);
        s.set_thread_time(0, 5.0);
        s.set_thread_time(1, 9.0);
        s.set_thread_time(2, 2.0);
        assert_eq!(s.max_time_ns(), 9.0);
    }

    #[test]
    fn op_counting_accumulates() {
        let mut s = RunStats::new(1);
        s.count_ops(OpKind::RemoteRead, 2);
        s.count_ops(OpKind::LocalWrite, 1);
        assert_eq!(s.ops(OpKind::RemoteRead), 2);
        assert_eq!(s.ops(OpKind::LocalWrite), 1);
        assert_eq!(s.ops(OpKind::RemoteWrite), 0);
        assert_eq!(s.total_mem_ops(), 3);
    }

    #[test]
    fn compute_not_a_mem_op() {
        let mut s = RunStats::new(1);
        s.count_ops(OpKind::Compute, 1);
        assert_eq!(s.total_mem_ops(), 0);
    }

    #[test]
    fn coherence_counters_track_reads_writes_and_stalls() {
        let mut s = RunStats::new(2);
        s.record_read(0, 7, true, false);
        s.record_read(1, 7, false, true);
        s.record_write(1, 7, true, 3);
        s.record_stall(0, true, 12.5);
        s.record_stall(0, false, 2.5);
        s.record_spin_wakeup(1);

        let c0 = s.coherence().thread(0);
        assert_eq!(c0.local_reads, 1);
        assert_eq!(c0.write_stalls, 1);
        assert_eq!(c0.write_stall_ns, 12.5);
        assert_eq!(c0.read_stalls, 1);
        assert_eq!(c0.read_stall_ns, 2.5);

        let c1 = s.coherence().thread(1);
        assert_eq!(c1.remote_reads, 1);
        assert_eq!(c1.reader_contention_events, 1);
        assert_eq!(c1.remote_writes, 1);
        assert_eq!(c1.rfo_invalidations, 3);
        assert_eq!(c1.spin_wakeups, 1);

        // The aggregate op counts stay consistent with the per-thread view.
        assert_eq!(s.ops(OpKind::LocalRead), 1);
        assert_eq!(s.ops(OpKind::RemoteRead), 1);
        assert_eq!(s.ops(OpKind::RemoteWrite), 1);
        assert_eq!(s.ops(OpKind::SpinWakeup), 1);
        let total = s.coherence().total();
        assert_eq!(total.total_mem_ops(), 3);
        assert_eq!(total.rfo_invalidations, 3);

        // Line traffic picked up the read side too.
        let t = s.line_traffic()[&7];
        assert_eq!(t.writes, 1);
        assert_eq!(t.invalidations, 3);
        assert_eq!(t.remote_reads, 1);
        assert_eq!(t.contended_reads, 1);
    }

    #[test]
    fn coherence_delta_between_snapshots() {
        let mut s = RunStats::new(1);
        s.record_write(0, 1, false, 0);
        let before = s.coherence().total();
        s.record_write(0, 1, true, 5);
        s.record_read(0, 2, false, false);
        let after = s.coherence().total();
        let d = after.delta_since(&before);
        assert_eq!(d.local_writes, 0);
        assert_eq!(d.remote_writes, 1);
        assert_eq!(d.rfo_invalidations, 5);
        assert_eq!(d.remote_reads, 1);
    }

    #[test]
    fn last_mark_time_filters_by_label() {
        let mut s = RunStats::new(2);
        s.push_mark(Mark { tid: 0, label: 1, time_ns: 10.0 });
        s.push_mark(Mark { tid: 1, label: 1, time_ns: 30.0 });
        s.push_mark(Mark { tid: 0, label: 2, time_ns: 50.0 });
        assert_eq!(s.last_mark_time(1), Some(30.0));
        assert_eq!(s.last_mark_time(2), Some(50.0));
        assert_eq!(s.last_mark_time(3), None);
    }
}

//! Additional engine tests: the batched (MLP) wait, the NoC bandwidth
//! queue, and the busy-line requeue discipline. Split from `engine.rs` to
//! keep the engine readable.

use std::sync::Arc;

use armbar_topology::{Topology, TopologyBuilder};

use crate::arena::Arena;
use crate::engine::SimBuilder;
use crate::error::SimError;
use crate::stats::OpKind;

/// 8 cores, clusters of 4, zero jitter, no NoC charge:
/// ε = 1, L0 = 10 (α 0.5), L1 = 40 (α 0.5), inv = 2, read contention = 3.
fn topo() -> Arc<Topology> {
    Arc::new(
        TopologyBuilder::new("t8", 8)
            .epsilon_ns(1.0)
            .layer("near", 10.0, 0.5)
            .layer("far", 40.0, 0.5)
            .hierarchy(&[4])
            .coherence(2.0, 3.0, 0.0)
            .build(),
    )
}

/// Same machine with a 5 ns/transaction NoC.
fn topo_noc() -> Arc<Topology> {
    Arc::new(
        TopologyBuilder::new("t8noc", 8)
            .epsilon_ns(1.0)
            .layer("near", 10.0, 0.5)
            .layer("far", 40.0, 0.5)
            .hierarchy(&[4])
            .coherence(2.0, 3.0, 0.0)
            .noc_ns(5.0)
            .build(),
    )
}

#[test]
fn batched_wait_pays_max_not_sum() {
    // Thread 3 batch-waits on flags owned by threads 0 (L0), 1 (L0) and
    // 4 (L1 = 40). All were written before the wait begins, so the probe
    // fetches three lines: max(40) + 0.3·(10+10) = 46, not 60.
    let mut arena = Arena::new();
    let f0 = arena.alloc_padded_u32(64);
    let f1 = arena.alloc_padded_u32(64);
    let f4 = arena.alloc_padded_u32(64);
    let stats = SimBuilder::new(topo(), 5)
        .run(move |ctx| match ctx.tid() {
            0 => ctx.store(f0, 1),
            1 => ctx.store(f1, 1),
            4 => ctx.store(f4, 1),
            3 => {
                ctx.compute_ns(1000.0); // let the writers go first
                let t0 = ctx.now_ns();
                ctx.spin_until_all_ge(&[f0, f1, f4], 1);
                let dt = ctx.now_ns() - t0;
                assert!((dt - 46.0).abs() < 1e-9, "batched probe cost {dt}");
            }
            _ => {}
        })
        .unwrap();
    assert_eq!(stats.ops(OpKind::RemoteRead), 3);
}

#[test]
fn batched_wait_blocks_until_all_satisfied() {
    let mut arena = Arena::new();
    let f0 = arena.alloc_padded_u32(64);
    let f1 = arena.alloc_padded_u32(64);
    let stats = SimBuilder::new(topo(), 3)
        .run(move |ctx| match ctx.tid() {
            0 => {
                ctx.compute_ns(100.0);
                ctx.store(f0, 1);
            }
            1 => {
                ctx.compute_ns(500.0);
                ctx.store(f1, 1);
            }
            2 => {
                ctx.spin_until_all_ge(&[f0, f1], 1);
                // Released only after the slower writer (t=500) plus wake.
                assert!(ctx.now_ns() > 500.0, "woke at {}", ctx.now_ns());
            }
            _ => unreachable!(),
        })
        .unwrap();
    assert_eq!(stats.ops(OpKind::SpinWakeup), 1);
}

#[test]
fn batched_wait_empty_list_is_noop() {
    let stats = SimBuilder::new(topo(), 1)
        .run(move |ctx| {
            ctx.spin_until_all_ge(&[], 99);
            ctx.compute_ns(7.0);
        })
        .unwrap();
    assert_eq!(stats.max_time_ns(), 7.0);
}

#[test]
fn batched_deadlock_is_detected() {
    let mut arena = Arena::new();
    let f0 = arena.alloc_padded_u32(64);
    let f1 = arena.alloc_padded_u32(64);
    let err = SimBuilder::new(topo(), 2)
        .run(move |ctx| {
            if ctx.tid() == 0 {
                ctx.store(f0, 1); // f1 never written
            } else {
                ctx.spin_until_all_ge(&[f0, f1], 1);
            }
        })
        .unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
}

#[test]
fn noc_queue_serializes_concurrent_remote_traffic() {
    // Seven threads each pull a line owned by thread 0 at the same time.
    // Without the NoC each pays its own latency; with a 5 ns service
    // interval the k-th transaction queues behind k−1 others.
    let run = |topo: Arc<Topology>| {
        let mut arena = Arena::new();
        let lines = arena.alloc_padded_u32_array(8, 64);
        SimBuilder::new(topo, 8)
            .run(move |ctx| {
                let me = ctx.tid();
                if me == 0 {
                    for i in 0..8usize {
                        ctx.store(lines + 64 * i as u32, 1);
                    }
                    ctx.store(lines + 64 * 7, 2); // "ready" signal on line 7
                } else {
                    ctx.spin_until(lines + 64 * 7, |v| v >= 1);
                    ctx.load(lines + 64 * me as u32);
                }
            })
            .unwrap()
            .max_time_ns()
    };
    let without = run(topo());
    let with = run(topo_noc());
    assert!(with > without + 10.0, "NoC queueing should slow the burst: {without} vs {with}");
}

#[test]
fn noc_charge_skips_local_traffic() {
    // A thread hammering its own exclusive line never touches the NoC.
    let run = |topo: Arc<Topology>| {
        let mut arena = Arena::new();
        let a = arena.alloc_padded_u32(64);
        SimBuilder::new(topo, 1)
            .run(move |ctx| {
                for i in 0..100 {
                    ctx.store(a, i);
                }
            })
            .unwrap()
            .max_time_ns()
    };
    assert_eq!(run(topo()), run(topo_noc()));
}

#[test]
fn busy_line_requeue_interleaves_spinner_registration() {
    // The signature effect of the requeue discipline: a spinner that
    // *issues* its first read while a queue of RMWs is draining still
    // registers mid-queue, so later RMWs pay invalidations to it. With
    // five RMW threads and one spinner, the spinner's crowd presence makes
    // the total strictly larger than the sum of uncontended RMWs.
    let mut arena = Arena::new();
    let counter = arena.alloc_padded_u32(64);
    let stats = SimBuilder::new(topo(), 6)
        .run(move |ctx| {
            if ctx.tid() == 0 {
                ctx.spin_until(counter, |v| v >= 5);
            } else {
                ctx.fetch_add(counter, 1);
            }
        })
        .unwrap();
    // All five RMWs completed and the spinner woke exactly once.
    assert_eq!(stats.ops(OpKind::SpinWakeup), 1);
    let total = stats.max_time_ns();
    assert!(total > 5.0 * 16.0, "crowd effects missing? total {total}");
}

#[test]
fn rmw_surcharge_makes_atomics_costlier_than_stores() {
    let mut arena = Arena::new();
    let a = arena.alloc_padded_u32(64);
    let b = arena.alloc_padded_u32(64);
    let stats = SimBuilder::new(topo(), 2)
        .run(move |ctx| {
            if ctx.tid() == 0 {
                ctx.store(a, 1);
                ctx.store(b, 1);
            } else {
                ctx.spin_until(a, |v| v == 1);
                ctx.spin_until(b, |v| v == 1);
                let t0 = ctx.now_ns();
                ctx.store(a, 2); // plain store to a remote-owned line
                let store_cost = ctx.now_ns() - t0;
                let t1 = ctx.now_ns();
                ctx.fetch_add(b, 1); // RMW on an equivalent line
                let rmw_cost = ctx.now_ns() - t1;
                assert!(rmw_cost > store_cost, "RMW ({rmw_cost}) must exceed store ({store_cost})");
            }
        })
        .unwrap();
    assert!(stats.total_mem_ops() > 0);
}

#[test]
fn hotspot_accounting_identifies_the_hot_line() {
    // Everyone hammers one counter; a second line sees a single write.
    let mut arena = Arena::new();
    let hot = arena.alloc_padded_u32(64);
    let cold = arena.alloc_padded_u32(64);
    let stats = SimBuilder::new(topo(), 8)
        .run(move |ctx| {
            for _ in 0..10 {
                ctx.fetch_add(hot, 1);
            }
            if ctx.tid() == 0 {
                ctx.store(cold, 1);
            }
        })
        .unwrap();
    let hottest = stats.hottest_lines(1);
    assert_eq!(hottest.len(), 1);
    assert_eq!(hottest[0].0, hot / 64);
    assert_eq!(hottest[0].1.writes, 80);
    assert!(stats.hotspot_concentration() > 0.95);
}

#[test]
fn spread_traffic_has_low_concentration() {
    let mut arena = Arena::new();
    let lines = arena.alloc_padded_u32_array(8, 64);
    let stats = SimBuilder::new(topo(), 8)
        .run(move |ctx| {
            let mine = lines + 64 * ctx.tid() as u32;
            for i in 0..10 {
                ctx.store(mine, i);
            }
        })
        .unwrap();
    assert!((stats.hotspot_concentration() - 0.125).abs() < 1e-9);
    assert_eq!(stats.hottest_lines(100).len(), 8);
}

#[test]
fn invalidation_counts_reflect_sharer_crowds() {
    let mut arena = Arena::new();
    let flag = arena.alloc_padded_u32(64);
    let stats = SimBuilder::new(topo(), 5)
        .run(move |ctx| {
            if ctx.tid() == 0 {
                ctx.compute_ns(500.0); // let all four spinners subscribe
                ctx.store(flag, 1);
            } else {
                ctx.spin_until(flag, |v| v == 1);
            }
        })
        .unwrap();
    let t = stats.line_traffic()[&(flag / 64)];
    assert_eq!(t.writes, 1);
    assert_eq!(t.invalidations, 4, "the release must invalidate all four spinners");
    assert_eq!(t.peak_sharers, 4);
}

// ---------------------------------------------------------------------------
// Schedule-policy tests: the policy engine path must be semantically
// identical to the default heap path under MinTimePolicy, stay deterministic
// under perturbation, and survive adversarial policies.

use crate::schedule::{MinTimePolicy, ReadyOp, ScheduleDecision, SchedulePolicy};

/// A contended episode body: every thread RMWs a shared counter, the last
/// arriver releases a flag, the rest spin on it.
fn barrier_body(counter: u32, flag: u32, n: u32) -> impl Fn(&crate::engine::SimThread) + Clone {
    move |ctx: &crate::engine::SimThread| {
        for round in 1..=3u32 {
            let prev = ctx.fetch_add(counter, 1);
            if prev + 1 == round * n {
                ctx.store(flag, round);
            } else {
                ctx.spin_until_ge(flag, round);
            }
        }
    }
}

#[test]
fn policy_mode_matches_default_with_min_time_policy() {
    let make = |policy: bool| {
        let mut arena = Arena::new();
        let counter = arena.alloc_padded_u32(64);
        let flag = arena.alloc_padded_u32(64);
        let b = SimBuilder::new(topo(), 6).seed(42);
        let b = if policy { b.schedule_policy(MinTimePolicy) } else { b };
        b.run(barrier_body(counter, flag, 6)).unwrap()
    };
    let default = make(false);
    let policied = make(true);
    assert_eq!(default.per_thread_time_ns(), policied.per_thread_time_ns());
    assert_eq!(default.total_mem_ops(), policied.total_mem_ops());
    assert_eq!(
        default.schedule_hash(),
        policied.schedule_hash(),
        "MinTimePolicy must reproduce the default processing order exactly"
    );
}

/// Always runs the highest-index ready op: a maximally unfair order that
/// ignores virtual time entirely.
struct ReversePolicy;

impl SchedulePolicy for ReversePolicy {
    fn pick(&mut self, ready: &[ReadyOp], _min: Option<(f64, usize)>) -> ScheduleDecision {
        ScheduleDecision::Run(ready.len() - 1)
    }
}

#[test]
fn adversarial_order_still_completes_the_barrier() {
    let mut arena = Arena::new();
    let counter = arena.alloc_padded_u32(64);
    let flag = arena.alloc_padded_u32(64);
    let stats = SimBuilder::new(topo(), 8)
        .schedule_policy(ReversePolicy)
        .run(barrier_body(counter, flag, 8))
        .unwrap();
    // 3 rounds × 7 spinners woke (the releaser never spins).
    assert_eq!(stats.ops(OpKind::SpinWakeup), 21);
}

/// Delays every flag-site write once by a fixed amount, then behaves
/// normally.
struct DelayOncePolicy {
    delays_left: u32,
}

impl SchedulePolicy for DelayOncePolicy {
    fn pick(&mut self, ready: &[ReadyOp], min: Option<(f64, usize)>) -> ScheduleDecision {
        if self.delays_left > 0 {
            if let Some(i) =
                ready.iter().position(|r| matches!(r.kind, crate::schedule::ReadyOpKind::Write))
            {
                self.delays_left -= 1;
                return ScheduleDecision::Delay { index: i, ns: 250.0 };
            }
        }
        MinTimePolicy.pick(ready, min)
    }
}

#[test]
fn injected_delays_change_the_schedule_but_not_the_outcome() {
    let run = |delays: u32| {
        let mut arena = Arena::new();
        let counter = arena.alloc_padded_u32(64);
        let flag = arena.alloc_padded_u32(64);
        SimBuilder::new(topo(), 4)
            .schedule_policy(DelayOncePolicy { delays_left: delays })
            .run(barrier_body(counter, flag, 4))
            .unwrap()
    };
    let plain = run(0);
    let delayed = run(3);
    assert_eq!(plain.ops(OpKind::SpinWakeup), delayed.ops(OpKind::SpinWakeup));
    assert_ne!(
        plain.schedule_hash(),
        delayed.schedule_hash(),
        "delay injection must register as a distinct schedule"
    );
}

/// Returns garbage decisions; the engine must fall back instead of wedging.
struct MisbehavingPolicy;

impl SchedulePolicy for MisbehavingPolicy {
    fn pick(&mut self, ready: &[ReadyOp], _min: Option<(f64, usize)>) -> ScheduleDecision {
        // Out-of-range index and, via Wait-with-nobody-running at episode
        // start, an unservable stall request.
        if ready.len().is_multiple_of(2) {
            ScheduleDecision::Run(usize::MAX)
        } else {
            ScheduleDecision::Delay { index: 0, ns: f64::NAN }
        }
    }
}

#[test]
fn misbehaving_policy_falls_back_to_oldest() {
    let mut arena = Arena::new();
    let counter = arena.alloc_padded_u32(64);
    let flag = arena.alloc_padded_u32(64);
    let stats = SimBuilder::new(topo(), 4)
        .schedule_policy(MisbehavingPolicy)
        .run(barrier_body(counter, flag, 4))
        .unwrap();
    assert_eq!(stats.ops(OpKind::SpinWakeup), 9);
}

#[test]
fn policy_runs_are_deterministic() {
    let run = || {
        let mut arena = Arena::new();
        let counter = arena.alloc_padded_u32(64);
        let flag = arena.alloc_padded_u32(64);
        let s = SimBuilder::new(topo(), 8)
            .schedule_policy(ReversePolicy)
            .run(barrier_body(counter, flag, 8))
            .unwrap();
        (s.schedule_hash(), s.total_mem_ops())
    };
    assert_eq!(run(), run());
}

#[test]
fn policy_mode_detects_deadlock() {
    let mut arena = Arena::new();
    let a = arena.alloc_u32();
    let err = SimBuilder::new(topo(), 2)
        .schedule_policy(ReversePolicy)
        .run(move |ctx| {
            ctx.spin_until_ge(a, 1); // nobody ever writes
        })
        .unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
}

#[test]
fn policy_mode_respects_op_budget() {
    let mut arena = Arena::new();
    let a = arena.alloc_u32();
    let err = SimBuilder::new(topo(), 1)
        .schedule_policy(ReversePolicy)
        .op_budget(500)
        .run(move |ctx| loop {
            ctx.store(a, 1);
        })
        .unwrap_err();
    assert!(matches!(err, SimError::OpBudgetExhausted { .. }), "{err}");
}

#[test]
fn default_schedule_hash_is_stable_and_seed_independent_ops() {
    // Zero-jitter topology: different seeds draw identical jitter factors,
    // so the processing order — and hence the hash — must match.
    let run = |seed: u64| {
        let mut arena = Arena::new();
        let counter = arena.alloc_padded_u32(64);
        let flag = arena.alloc_padded_u32(64);
        SimBuilder::new(topo(), 4).seed(seed).run(barrier_body(counter, flag, 4)).unwrap()
    };
    assert_eq!(run(1).schedule_hash(), run(2).schedule_hash());
    assert_ne!(run(1).schedule_hash(), 0, "hash must record the processed ops");
}

//! The discrete-event engine: deterministic execution of real thread bodies
//! with per-operation coherence costing.
//!
//! Simulated threads are stackful fibers multiplexed on the calling thread
//! (the default; see the `fiber` module) or OS threads (the fallback
//! transport, and what explicit [`SimTeam`](crate::team::SimTeam) runs
//! use). Either way each [`SimThread`] operation is a rendezvous with the
//! engine, which processes operations in virtual-time order (ties broken
//! by thread id). Host scheduling therefore cannot influence results: a
//! run is a pure function of `(topology, seed, program)` — identical bytes
//! under both transports.
//!
//! ## Sharded scheduler
//!
//! The ready/running tables are sharded by the topology's
//! `shard_cores` boundary (one shard per cluster/group on the hierarchical
//! presets). A pass drains the active shard until the global rendezvous
//! invariant — "process the minimal ready key iff it is ≤ every running
//! key" — would be violated, then re-merges the S shard heads. Identical
//! processing order to a single global heap at any shard count; see
//! `DESIGN.md` §13.
//!
//! ## Cooperative scheduling
//!
//! There is no dedicated scheduler thread. The engine state lives inside one
//! mutex, and whichever worker posts an operation runs the engine *inline*
//! under that lock until no further operation is processable. The scheduling
//! rule exploits a lookahead invariant: a thread that is executing user code
//! ("running") will post its next operation at exactly its current
//! engine-known virtual time, so the operation at the head of the ready
//! queue can be processed as soon as its `(time, tid)` key is smaller than
//! every running thread's key — *without* waiting for global settlement.
//! The processing order is provably identical to a lock-step "wait for all,
//! pick the minimum" scheduler, but a serial phase (one thread strictly
//! ahead of the rest) executes with zero context switches: the worker posts,
//! services its own operation, and continues.
//!
//! Replies travel through per-thread lock-free cells (a sequence counter
//! plus a slot); a blocked simulated thread resumes via a ~100 ns fiber
//! switch on the fiber transport or `thread::unpark` on the OS transport —
//! receipt never touches the lock, and pending wakeups are deferred until
//! the engine lock is released so a woken worker never piles onto a held
//! mutex. State
//! tables are dense `Vec`s indexed by arena-derived word/line slots rather
//! than hash maps — see `DESIGN.md` §11 for the performance numbers.

use std::cell::UnsafeCell;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use armbar_topology::{CoreId, RmwOp, Topology};

use crate::arena::{Addr, Arena};
use crate::error::{DeadlockWaiter, SimError, WaitKind};
use crate::line::{CoreSet, Line};
use crate::rng::SplitMix64;
use crate::schedule::{
    LoadOrder, ReadyOp, ReadyOpKind, ScheduleDecision, SchedulePolicy, StoreOrder, WeakDecision,
    WeakOp, WeakOpKind,
};
use crate::stats::{CoherenceCounters, Mark, OpKind, RunStats};

/// Typed panic payload used to tear down worker threads when the simulation
/// aborts (deadlock, budget exhaustion). Recognized and swallowed by the
/// worker wrapper; never reported as a user panic.
pub(crate) struct AbortSignal;

/// Saturation point of the per-extra-sharer invalidation charge. Real
/// interconnects multicast invalidations; the serialization at the network
/// controller grows with the crowd only up to a point. Without this cap a
/// centralized barrier would cost Θ(P²·inv_ns), whereas measurements (the
/// paper's Figures 5–6) show near-linear growth from 32 to 64 threads.
const INV_FANOUT_CAP: usize = 16;

/// Iterations a worker spins on its reply cell before parking. Only used on
/// multi-core hosts, where the engine can publish the reply concurrently; on
/// a single-core host nothing can progress while we spin, so workers park
/// immediately (see [`spin_replies`]).
const REPLY_SPIN_LIMIT: u32 = 64;

/// Deferred-compute accumulator cap: after this many lazily-buffered
/// `compute_ns` calls the thread posts a heartbeat op, so a compute-only
/// infinite loop still trips the operation budget instead of hanging.
const DEFERRED_COMPUTE_FLUSH: u64 = 1024;

/// Whether spinning on the reply cell can ever help: only when another core
/// could be running the engine concurrently.
fn spin_replies() -> bool {
    static SPIN: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SPIN.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()) > 1)
}

type Pred = Box<dyn Fn(u32) -> bool + Send>;

enum OpReq {
    Load(Addr, LoadOrder),
    Store(Addr, u32, StoreOrder),
    FetchAdd(Addr, u32),
    /// Compare-exchange `(addr, current, new)`: stores `new` iff the word
    /// equals `current`; replies with the previous value either way.
    CmpXchg(Addr, u32, u32),
    SpinUntil(Addr, Pred, WaitKind),
    /// Wait until every listed word is ≥ the epoch. The fetches of the
    /// involved lines overlap (memory-level parallelism), unlike a chain of
    /// `SpinUntil`s.
    SpinUntilAllGe(Vec<Addr>, u32),
    Mark(u32),
    Now,
    /// Zero-cost snapshot of the machine-wide coherence counters.
    Counters,
    /// Full barrier (`dmb ish`): drains the thread's store buffer and
    /// discards its stale-value cache. A no-op outside weak mode.
    Fence,
    /// Atomic exchange `(addr, new)`: stores `new` unconditionally and
    /// replies with the previous value (ARMv8.1 `SWP`).
    Swap(Addr, u32),
}

enum Reply {
    Value(u32),
    TimeNs(f64),
    Counters(Box<CoherenceCounters>),
    Abort,
}

/// Classifies a pending op for a [`SchedulePolicy`] (kind + target address;
/// no values or predicates leak to the policy).
fn describe_op(op: &OpReq) -> (ReadyOpKind, Option<Addr>) {
    match op {
        OpReq::Load(a, _) => (ReadyOpKind::Read, Some(*a)),
        OpReq::Store(a, _, _) => (ReadyOpKind::Write, Some(*a)),
        OpReq::FetchAdd(a, _) => (ReadyOpKind::Rmw, Some(*a)),
        OpReq::CmpXchg(a, _, _) => (ReadyOpKind::Rmw, Some(*a)),
        OpReq::Swap(a, _) => (ReadyOpKind::Rmw, Some(*a)),
        OpReq::SpinUntil(a, _, _) => (ReadyOpKind::Spin, Some(*a)),
        OpReq::SpinUntilAllGe(addrs, _) => (ReadyOpKind::Spin, addrs.first().copied()),
        OpReq::Mark(_) | OpReq::Now | OpReq::Counters | OpReq::Fence => (ReadyOpKind::Free, None),
    }
}

/// Small distinct tag per op class for the schedule fingerprint.
fn op_tag(op: &OpReq) -> u64 {
    match op {
        OpReq::Load(..) => 1,
        OpReq::Store(..) => 2,
        OpReq::FetchAdd(..) => 3,
        OpReq::SpinUntil(..) => 4,
        OpReq::SpinUntilAllGe(..) => 5,
        OpReq::Mark(_) => 6,
        OpReq::Now => 7,
        OpReq::Counters => 8,
        OpReq::CmpXchg(..) => 9,
        // Appended (never reordered) so pre-weak schedule fingerprints are
        // unchanged for programs that issue no fences.
        OpReq::Fence => 10,
        // Appended in PR 10: fingerprints of swap-free programs are
        // unchanged.
        OpReq::Swap(..) => 11,
    }
}

/// Total order on virtual times for the scheduler's ready/running keys.
/// `total_cmp` matches the tie-breaking of the original `min_by` scan.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TimeKey(f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Scheduler key: `(virtual time, tid)`. Unique per thread (a thread is in
/// exactly one of the ready queue or the running set), so comparisons are
/// never ambiguous.
type SchedKey = (TimeKey, usize);

/// One scheduler shard: the ready heap and running set of the threads whose
/// cores fall in one [`Topology::shard_cores`]-sized slice of the machine.
#[derive(Default)]
struct Shard {
    /// Posted-but-unprocessed operations of this shard's threads.
    ready: BinaryHeap<Reverse<SchedKey>>,
    /// This shard's threads executing user code.
    running: BTreeSet<SchedKey>,
}

/// The cluster-sharded scheduler (DESIGN.md §13). Threads are partitioned
/// by core into shards; each shard keeps its own flat ready heap and
/// running set, and the engine processes a shard's intra-cluster traffic
/// without touching the other shards' structures until a *cross-shard
/// rendezvous* is required — when the active shard's head key crosses the
/// floor imposed by the other shards.
///
/// Sharding never changes which operation is processed next: `pop_next`
/// implements exactly the global rule "process the minimal ready key iff it
/// is ≤ every running key", so results are byte-identical at any shard
/// size. A machine with one shard degenerates to the classic single-heap
/// scheduler.
struct Sched {
    shards: Vec<Shard>,
    /// tid → shard index (threads pin to cores 1:1).
    shard_of: Vec<u32>,
    /// Shard currently being drained by an engine pass, if any.
    active: Option<usize>,
    /// Frozen at rendezvous time: the minimal ready head among *non-active*
    /// shards. Exact for the duration of an active stretch because no pass
    /// ever pushes ready work into another shard (re-posts stay on the
    /// posting thread's shard).
    ready_floor: Option<SchedKey>,
    /// Minimal running key among *non-active* shards; maintained
    /// incrementally as replies promote threads of other shards back into
    /// their running sets (keys only ever at or above the op being
    /// processed, so a min update is exact).
    run_floor: Option<SchedKey>,
}

impl Sched {
    fn new(nthreads: usize, shard_map: Vec<u32>) -> Self {
        debug_assert_eq!(shard_map.len(), nthreads);
        let nshards = shard_map.iter().copied().max().map_or(1, |m| m as usize + 1);
        let mut shards: Vec<Shard> = (0..nshards).map(|_| Shard::default()).collect();
        for t in 0..nthreads {
            shards[shard_map[t] as usize].running.insert((TimeKey(0.0), t));
        }
        Self { shards, shard_of: shard_map, active: None, ready_floor: None, run_floor: None }
    }

    #[inline]
    fn shard(&self, tid: usize) -> usize {
        self.shard_of[tid] as usize
    }

    /// Invalidates the active-shard cache; called at engine-pass entry and
    /// by any mutation the incremental floors do not cover.
    #[inline]
    fn begin_pass(&mut self) {
        self.active = None;
    }

    fn push_ready(&mut self, key: SchedKey) {
        let s = self.shard(key.1);
        if self.active.is_some_and(|a| a != s) {
            // Only re-posts (same shard) happen mid-pass; anything else
            // forces a fresh rendezvous.
            self.active = None;
        }
        self.shards[s].ready.push(Reverse(key));
    }

    fn insert_running(&mut self, key: SchedKey) {
        let s = self.shard(key.1);
        self.shards[s].running.insert(key);
        if self.active.is_some_and(|a| a != s) && self.run_floor.is_none_or(|f| key < f) {
            self.run_floor = Some(key);
        }
    }

    fn remove_running(&mut self, key: &SchedKey) -> bool {
        let s = self.shard(key.1);
        let removed = self.shards[s].running.remove(key);
        // Removals happen only between passes (a thread posting or
        // finishing); the next pass rescans, but drop the cache anyway.
        self.active = None;
        removed
    }

    fn running_first(&self) -> Option<SchedKey> {
        self.shards.iter().filter_map(|s| s.running.first().copied()).min()
    }

    fn running_is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.running.is_empty())
    }

    fn ready_is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.ready.is_empty())
    }

    fn clear(&mut self) {
        for s in &mut self.shards {
            s.ready.clear();
            s.running.clear();
        }
        self.active = None;
    }

    /// Cross-shard rendezvous: pick the shard owning the globally minimal
    /// ready key and freeze the floors the other shards impose on it.
    fn rendezvous(&mut self) -> Option<usize> {
        let mut best: Option<(SchedKey, usize)> = None;
        for (i, sh) in self.shards.iter().enumerate() {
            if let Some(&Reverse(k)) = sh.ready.peek() {
                if best.is_none_or(|(bk, _)| k < bk) {
                    best = Some((k, i));
                }
            }
        }
        let (_, s) = best?;
        let mut ready_floor: Option<SchedKey> = None;
        let mut run_floor: Option<SchedKey> = None;
        for (i, sh) in self.shards.iter().enumerate() {
            if i == s {
                continue;
            }
            if let Some(&Reverse(k)) = sh.ready.peek() {
                if ready_floor.is_none_or(|f| k < f) {
                    ready_floor = Some(k);
                }
            }
            if let Some(&k) = sh.running.first() {
                if run_floor.is_none_or(|f| k < f) {
                    run_floor = Some(k);
                }
            }
        }
        self.active = Some(s);
        self.ready_floor = ready_floor;
        self.run_floor = run_floor;
        Some(s)
    }

    /// Pops the next processable operation under the exact global rule:
    /// the minimal ready key, iff it is ≤ every running key. Returns `None`
    /// when the pass must end (no ready op, or the head is gated by a
    /// running thread that will post an earlier key).
    fn pop_next(&mut self) -> Option<SchedKey> {
        loop {
            let s = match self.active {
                Some(s) => s,
                None => self.rendezvous()?,
            };
            let Some(&Reverse(head)) = self.shards[s].ready.peek() else {
                // Active shard drained; rendezvous with the rest.
                self.active = None;
                continue;
            };
            if self.ready_floor.is_some_and(|f| f < head) {
                // Another shard now owns the global minimum.
                self.active = None;
                continue;
            }
            // After the checks above `head` is the global ready minimum;
            // it is processable iff no running thread anywhere is below it.
            let own_run = self.shards[s].running.first().copied();
            let gate = match (self.run_floor, own_run) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            if gate.is_some_and(|g| g < head) {
                return None;
            }
            self.shards[s].ready.pop();
            return Some(head);
        }
    }
}

/// A registered spin-waiter with its registration sequence number. The seq
/// defines the global wake order (identical to the registration order of
/// the flat list this table replaced) and guards slot reuse: a stale
/// `(seq, slot)` index entry whose slot was recycled no longer matches.
struct WaiterTable {
    slots: Vec<Option<(u64, Waiter)>>,
    free: Vec<usize>,
    /// line key → `(seq, slot)` registrations in seq (= append) order.
    /// Dense, parallel to the line directory, so a store's waiter lookup is
    /// one indexed load instead of an O(waiters) scan.
    by_line: Vec<Vec<(u64, u32)>>,
    next_seq: u64,
    len: usize,
}

impl WaiterTable {
    fn new() -> Self {
        Self { slots: Vec::new(), free: Vec::new(), by_line: Vec::new(), next_seq: 0, len: 0 }
    }

    /// Registers a waiter under every distinct line key it watches.
    fn register(&mut self, w: Waiter, line_keys: &[u32]) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some((seq, w));
                i
            }
            None => {
                self.slots.push(Some((seq, w)));
                self.slots.len() - 1
            }
        };
        self.len += 1;
        for &k in line_keys {
            let i = k as usize;
            if i >= self.by_line.len() {
                self.by_line.resize_with(i + 1, Vec::new);
            }
            self.by_line[i].push((seq, slot as u32));
        }
    }

    /// Takes the registration bucket for one line (possibly containing
    /// stale entries for already-woken multi-line waiters).
    fn take_bucket(&mut self, line_key: u32) -> Vec<(u64, u32)> {
        match self.by_line.get_mut(line_key as usize) {
            Some(b) => std::mem::take(b),
            None => Vec::new(),
        }
    }

    /// Restores the still-blocked entries of a bucket after a wake sweep.
    fn put_bucket(&mut self, line_key: u32, bucket: Vec<(u64, u32)>) {
        if bucket.is_empty() {
            return;
        }
        let i = line_key as usize;
        debug_assert!(self.by_line[i].is_empty(), "bucket repopulated during wake sweep");
        self.by_line[i] = bucket;
    }

    /// Takes the waiter out of `slot` if it still matches `seq`; the caller
    /// either wakes it (slot stays free) or restores it via `restore`.
    fn take_slot(&mut self, slot: u32, seq: u64) -> Option<Waiter> {
        let entry = self.slots.get_mut(slot as usize)?;
        match entry {
            Some((s, _)) if *s == seq => {
                let (_, w) = entry.take().expect("checked above");
                Some(w)
            }
            _ => None,
        }
    }

    /// Puts a still-unsatisfied waiter back into its slot (same seq, so its
    /// other index entries stay valid).
    fn restore(&mut self, slot: u32, seq: u64, w: Waiter) {
        debug_assert!(self.slots[slot as usize].is_none());
        self.slots[slot as usize] = Some((seq, w));
    }

    /// Frees a woken waiter's slot for reuse.
    fn release(&mut self, slot: u32) {
        debug_assert!(self.slots[slot as usize].is_none());
        self.free.push(slot as usize);
        self.len -= 1;
    }

    /// All blocked waiters in registration order (diagnostics snapshots).
    fn in_order(&self) -> Vec<&Waiter> {
        let mut v: Vec<(u64, &Waiter)> =
            self.slots.iter().flatten().map(|(s, w)| (*s, w)).collect();
        v.sort_unstable_by_key(|&(s, _)| s);
        v.into_iter().map(|(_, w)| w).collect()
    }

    /// Drains every waiter in registration order (abort tear-down).
    fn drain_in_order(&mut self) -> Vec<Waiter> {
        let mut v: Vec<(u64, Waiter)> = self.slots.drain(..).flatten().collect();
        v.sort_unstable_by_key(|&(s, _)| s);
        self.free.clear();
        for b in &mut self.by_line {
            b.clear();
        }
        self.len = 0;
        v.into_iter().map(|(_, w)| w).collect()
    }
}

/// Per-thread lock-free reply mailbox. The engine (always the lock holder)
/// writes the reply and then bumps `seq` with release ordering; the owning
/// worker observes the bump with acquire ordering and takes the reply
/// without touching the lock. Alignment keeps cells on distinct cache lines
/// so spinning workers do not false-share.
#[repr(align(128))]
struct ReplyCell {
    seq: AtomicU32,
    reply: UnsafeCell<Option<Reply>>,
}

// SAFETY: the cell is a single-producer single-consumer mailbox. Only the
// engine (serialized by the state mutex) writes `reply`, and only while the
// owning worker is provably blocked awaiting it; the owner reads only after
// observing the `seq` bump that the write precedes (release/acquire pair).
unsafe impl Sync for ReplyCell {}

impl ReplyCell {
    fn new() -> Self {
        Self { seq: AtomicU32::new(0), reply: UnsafeCell::new(None) }
    }
}

struct Slot {
    pending: Option<OpReq>,
    finished: bool,
}

enum WaitCond {
    /// Single-address predicate wait.
    Pred(Pred),
    /// All listed addresses ≥ epoch (batched, MLP-overlapped).
    AllGe(u32),
}

struct Waiter {
    tid: usize,
    addrs: Vec<Addr>,
    cond: WaitCond,
    /// Reporting-only copy of the wait condition for deadlock diagnostics.
    kind: WaitKind,
}

/// The complete mutable episode state, engine tables included. Everything
/// lives behind one mutex so the worker that holds it can both post its
/// operation and run the engine to quiescence.
struct State {
    slots: Vec<Slot>,
    /// The sharded ready/running scheduler. Used for ready ordering only in
    /// default (heap-order) mode; the running sets are live in both modes.
    sched: Sched,
    /// Posted-but-unprocessed operations in policy mode, unordered — the
    /// installed [`SchedulePolicy`] picks among them.
    ready_list: Vec<SchedKey>,
    /// Per-run schedule policy; `None` = default heap order. Taken out of
    /// the state for the duration of a policy engine pass, so routing must
    /// consult `policy_mode`, not this option.
    policy: Option<Box<dyn SchedulePolicy>>,
    /// Whether this run was configured with a policy (stable across the
    /// take/restore in `run_engine_policy`).
    policy_mode: bool,
    /// Blocked spin-waiters, indexed by watched line.
    waiters: WaiterTable,
    time: Vec<f64>,
    /// Dense per-line directory, indexed `addr >> line_shift`.
    lines: Vec<Line>,
    /// Dense word values, indexed `addr >> 2`.
    values: Vec<u32>,
    stats: RunStats,
    rng: SplitMix64,
    ops: u64,
    op_budget: u64,
    /// Machine-wide interconnect serialization point: each remote transfer
    /// occupies the network for `noc_ns`, so all-to-all communication
    /// phases (dissemination) queue here while O(log P)-message tree phases
    /// barely notice.
    noc_available_at: f64,
    /// Threads whose replies were published during the current engine pass.
    /// Their `unpark` is deferred until after the state lock is released, so
    /// a woken worker never immediately blocks on the held mutex (which
    /// would double the context switches per operation).
    wake_list: Vec<usize>,
    finished: usize,
    panics: Vec<(usize, String)>,
    /// Waiter snapshot taken when a body panic tears the run down; attached
    /// to the resulting `ThreadPanic` diagnostic.
    panic_waiters: Vec<DeadlockWaiter>,
    aborted: bool,
    outcome: Option<Result<(), SimError>>,
    /// Bounded ARMv8-style weak-memory state. `Some` only in policy mode —
    /// the default heap engine never buffers or stales, so default runs are
    /// byte-identical to the pre-weak engine. With a policy installed but a
    /// zero reordering budget every decision resolves to
    /// [`WeakDecision::Strong`] and the buffers stay empty, reproducing
    /// sequentially consistent execution exactly.
    weak: Option<WeakMem>,
}

/// Per-thread weak-memory machinery (see `DESIGN.md` §15).
struct WeakMem {
    /// FIFO store buffers: relaxed stores a policy chose to defer, not yet
    /// committed to the coherence state. Drained by release stores, RMWs,
    /// fences, spins watching a buffered address, and the quiescence drain.
    buffers: Vec<std::collections::VecDeque<(Addr, u32)>>,
    /// Stale-value caches: the last value each thread observed per address.
    /// A relaxed load may (policy permitting) be satisfied from here,
    /// modeling a read that completes before an invalidation arrives.
    /// Cleared by acquire loads, RMWs, fences, and spin entries.
    last_seen: Vec<std::collections::HashMap<Addr, u32>>,
}

impl WeakMem {
    fn new(nthreads: usize) -> Self {
        Self {
            buffers: (0..nthreads).map(|_| std::collections::VecDeque::new()).collect(),
            last_seen: (0..nthreads).map(|_| std::collections::HashMap::new()).collect(),
        }
    }

    /// Youngest buffered value this thread holds for `addr`, if any —
    /// store-to-load forwarding reads from here unconditionally, keeping
    /// each thread's own program order intact.
    fn forwarded(&self, tid: usize, addr: Addr) -> Option<u32> {
        self.buffers[tid].iter().rev().find(|(a, _)| *a == addr).map(|&(_, v)| v)
    }
}

impl State {
    fn new(
        nthreads: usize,
        shard_map: Vec<u32>,
        seed: u64,
        op_budget: u64,
        reserve_bytes: usize,
        line_shift: u32,
        policy: Option<Box<dyn SchedulePolicy>>,
    ) -> Self {
        let policy_mode = policy.is_some();
        Self {
            slots: (0..nthreads).map(|_| Slot { pending: None, finished: false }).collect(),
            sched: Sched::new(nthreads, shard_map),
            ready_list: if policy_mode { Vec::with_capacity(nthreads) } else { Vec::new() },
            policy,
            policy_mode,
            waiters: WaiterTable::new(),
            time: vec![0.0; nthreads],
            lines: vec![Line::default(); reserve_bytes.div_ceil(1usize << line_shift)],
            values: vec![0; reserve_bytes.div_ceil(4)],
            stats: RunStats::new(nthreads),
            rng: SplitMix64::new(seed),
            ops: 0,
            op_budget,
            noc_available_at: 0.0,
            wake_list: Vec::with_capacity(nthreads),
            finished: 0,
            panics: Vec::new(),
            panic_waiters: Vec::new(),
            aborted: false,
            outcome: None,
            weak: policy_mode.then(|| WeakMem::new(nthreads)),
        }
    }

    /// Posts an operation key into whichever ready structure this run's
    /// scheduling mode uses.
    #[inline]
    fn post_ready(&mut self, key: SchedKey) {
        if self.policy_mode {
            self.ready_list.push(key);
        } else {
            self.sched.push_ready(key);
        }
    }
}

/// Everything one episode's threads share: the state mutex, the reply cells,
/// the worker park handles, and the immutable machine model.
pub(crate) struct Shared {
    mx: Mutex<State>,
    done_cv: Condvar,
    cells: Vec<ReplyCell>,
    /// Park/unpark handles, registered by each worker at episode entry
    /// (before it can post, and therefore before anything can address it).
    handles: Vec<std::sync::OnceLock<std::thread::Thread>>,
    topo: Arc<Topology>,
    line_shift: u32,
}

/// Handle through which a simulated thread performs memory operations.
///
/// Thread `tid` is pinned to core `tid` of the modeled machine, mirroring
/// the paper's methodology ("each thread is pinned to a distinct physical
/// core").
pub struct SimThread {
    shared: Arc<Shared>,
    tid: usize,
    nthreads: usize,
    /// Fiber transport: when the episode runs on the single-threaded fiber
    /// runtime, wakes are enqueued with the scheduler and blocking yields
    /// the fiber instead of parking the OS thread. `None` = OS transport.
    /// (Makes `SimThread` `!Send`, which is fine — a handle never leaves
    /// the thread it was created on in either transport.)
    fiber: Option<std::ptr::NonNull<crate::fiber::FiberRt>>,
    /// Locally accumulated `compute_ns` time `(total ns, op count)` not yet
    /// applied to the engine clock. A compute touches no line, draws no
    /// jitter and occupies no interconnect — its only effect is to raise
    /// this thread's own scheduling key — so it needs no rendezvous: the
    /// accumulator is folded into the clock at the next real operation (or
    /// at thread finish). Other threads' operations gate on this thread's
    /// key exactly as they would have gated on the posted compute op, so
    /// results are bit-identical; only the context switches disappear.
    deferred: std::cell::Cell<(f64, u64)>,
}

impl SimThread {
    /// Must be called on the worker thread itself: registers its park handle
    /// so reply deliveries can wake it.
    pub(crate) fn new(shared: Arc<Shared>, tid: usize, nthreads: usize) -> Self {
        shared.handles[tid]
            .set(std::thread::current())
            .expect("worker registered twice for one episode");
        Self { shared, tid, nthreads, fiber: None, deferred: std::cell::Cell::new((0.0, 0)) }
    }

    /// Fiber-transport constructor: no park handle — the fiber runtime, not
    /// `unpark`, resumes blocked threads.
    pub(crate) fn new_fiber(
        shared: Arc<Shared>,
        tid: usize,
        nthreads: usize,
        rt: std::ptr::NonNull<crate::fiber::FiberRt>,
    ) -> Self {
        Self { shared, tid, nthreads, fiber: Some(rt), deferred: std::cell::Cell::new((0.0, 0)) }
    }

    /// Takes the not-yet-applied compute accumulator (for the finish path).
    pub(crate) fn take_deferred(&self) -> (f64, u64) {
        self.deferred.replace((0.0, 0))
    }

    /// This thread's id (= its core id).
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Number of threads participating in the simulation.
    #[inline]
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    fn call(&self, op: OpReq) -> Reply {
        let cell = &self.shared.cells[self.tid];
        // Our own sequence number only advances when the engine replies to
        // us, and we have consumed every previous reply; read it before
        // posting so the bump cannot be missed.
        let my_seq = cell.seq.load(Ordering::Acquire);
        let wakes = {
            let mut g = self.shared.mx.lock();
            if g.aborted {
                drop(g);
                std::panic::panic_any(AbortSignal);
            }
            debug_assert!(g.slots[self.tid].pending.is_none(), "op already pending");
            let old_key = (TimeKey(g.time[self.tid]), self.tid);
            let was_running = g.sched.remove_running(&old_key);
            debug_assert!(was_running, "posting thread must be in the running set");
            let (def_ns, def_count) = self.deferred.replace((0.0, 0));
            if def_count > 0 {
                g.time[self.tid] += def_ns;
                g.ops += def_count;
                g.stats.count_ops(OpKind::Compute, def_count);
            }
            let key = (TimeKey(g.time[self.tid]), self.tid);
            g.slots[self.tid].pending = Some(op);
            g.post_ready(key);
            self.shared.run_engine(&mut g);
            std::mem::take(&mut g.wake_list)
        };
        // Fast path: when our own op was processable (the common case for
        // serial phases), the inline engine run above already delivered the
        // reply — no context switch, no further synchronization (both
        // transports). Otherwise block: a fiber yields to its scheduler
        // (the deliverer enqueues it runnable); an OS worker parks (the
        // deliverer's deferred `unpark` cannot be lost — a token posted
        // before we park makes the park return immediately, and a stale
        // token merely costs one extra loop iteration).
        match self.fiber {
            Some(rt) => {
                // SAFETY: the runtime outlives every fiber it drives, and
                // all fibers run on its OS thread (no concurrent access).
                let rt = unsafe { rt.as_ref() };
                rt.enqueue_wakes(&wakes, self.tid);
                while cell.seq.load(Ordering::Acquire) == my_seq {
                    rt.suspend();
                }
            }
            None => {
                self.shared.unpark(&wakes, self.tid);
                let mut spins = 0u32;
                while cell.seq.load(Ordering::Acquire) == my_seq {
                    if spin_replies() && spins < REPLY_SPIN_LIMIT {
                        spins += 1;
                        std::hint::spin_loop();
                        continue;
                    }
                    std::thread::park();
                }
            }
        }
        // SAFETY: the seq bump (release) happens after the engine published
        // our reply, and the engine will not touch the cell again until our
        // next post.
        let r = unsafe { (*cell.reply.get()).take() }.expect("reply published without a value");
        if matches!(r, Reply::Abort) {
            std::panic::panic_any(AbortSignal);
        }
        r
    }

    fn call_value(&self, op: OpReq) -> u32 {
        match self.call(op) {
            Reply::Value(v) => v,
            _ => unreachable!("engine sent a non-value reply to a value op"),
        }
    }

    /// Load-acquire of the 32-bit word at `addr` (`ldar`), paying `ε` on a
    /// local hit or `L_i` (plus contention) on a remote transfer. Always
    /// reads the committed coherence state, even under weak mode.
    pub fn load(&self, addr: Addr) -> u32 {
        self.call_value(OpReq::Load(addr, LoadOrder::Acquire))
    }

    /// Relaxed load (`ldr`): under weak mode a schedule policy may satisfy
    /// it from this thread's stale-value cache instead of the committed
    /// state. Identical to [`SimThread::load`] in default mode.
    pub fn load_relaxed(&self, addr: Addr) -> u32 {
        self.call_value(OpReq::Load(addr, LoadOrder::Relaxed))
    }

    /// Store-release to the word at `addr` (`stlr`), acquiring line
    /// ownership and paying the RFO fan-out to current sharers. Under weak
    /// mode it first drains this thread's store buffer, so every earlier
    /// store is visible before this one.
    pub fn store(&self, addr: Addr, value: u32) {
        self.call_value(OpReq::Store(addr, value, StoreOrder::Release));
    }

    /// Relaxed store (`str`): under weak mode a schedule policy may defer
    /// its commit past later operations of this thread. Identical to
    /// [`SimThread::store`] in default mode.
    pub fn store_relaxed(&self, addr: Addr, value: u32) {
        self.call_value(OpReq::Store(addr, value, StoreOrder::Relaxed));
    }

    /// Full memory barrier (`dmb ish`): drains this thread's store buffer
    /// and discards its stale-value cache. Free outside weak mode (charged
    /// `ε` like a local op either way).
    pub fn fence(&self) {
        self.call_value(OpReq::Fence);
    }

    /// Atomic wrapping fetch-add; returns the previous value. Serializes
    /// with other writes/RMWs on the same line.
    pub fn fetch_add(&self, addr: Addr, delta: u32) -> u32 {
        self.call_value(OpReq::FetchAdd(addr, delta))
    }

    /// Atomic compare-exchange: stores `new` iff the word equals `current`
    /// and returns the previous value either way (success iff it equals
    /// `current`). Charged like any RMW — an ARMv8.1 `CAS` takes the line
    /// exclusively whether or not the comparison succeeds — but the
    /// success and failure paths may carry different surcharges
    /// (`RmwCosts::cas_ok` vs `RmwCosts::cas_fail`).
    pub fn compare_exchange(&self, addr: Addr, current: u32, new: u32) -> u32 {
        self.call_value(OpReq::CmpXchg(addr, current, new))
    }

    /// Atomic exchange (ARMv8.1 `SWP`): unconditionally stores `new` and
    /// returns the previous value. Serializes with other writes/RMWs on
    /// the same line; charged with the platform's `RmwCosts::swap` entry.
    pub fn swap(&self, addr: Addr, new: u32) -> u32 {
        self.call_value(OpReq::Swap(addr, new))
    }

    /// Spins until `pred(value_at(addr))` holds; returns the satisfying
    /// value. While blocked, this thread holds a read copy of the line, so
    /// every intervening write pays invalidation costs to it — exactly the
    /// crowd effect of hardware spin-waiting.
    ///
    /// The predicate is opaque to deadlock diagnostics; prefer
    /// [`SimThread::spin_until_eq`] / [`SimThread::spin_until_ge`] when the
    /// condition has one of those shapes, so a hang reports its target.
    pub fn spin_until(&self, addr: Addr, pred: impl Fn(u32) -> bool + Send + 'static) -> u32 {
        self.call_value(OpReq::SpinUntil(addr, Box::new(pred), WaitKind::Pred))
    }

    /// Spins until the word at `addr` equals `value`. Identical costs to
    /// [`SimThread::spin_until`], but a deadlock report names the target.
    pub fn spin_until_eq(&self, addr: Addr, value: u32) -> u32 {
        self.call_value(OpReq::SpinUntil(addr, Box::new(move |v| v == value), WaitKind::Eq(value)))
    }

    /// Spins until the word at `addr` is ≥ `value` (monotonic epochs), with
    /// the target recorded for deadlock diagnostics.
    pub fn spin_until_ge(&self, addr: Addr, value: u32) -> u32 {
        self.call_value(OpReq::SpinUntil(addr, Box::new(move |v| v >= value), WaitKind::Ge(value)))
    }

    /// Spins until every word in `addrs` is ≥ `value`. A polling loop over
    /// independent flags keeps several line fetches in flight at once
    /// (memory-level parallelism), so on satisfaction the thread pays the
    /// *slowest* outstanding fetch plus a small pipelining charge per extra
    /// line — not the sum of all fetches. This is how a tournament winner
    /// with one-flag-per-line children observes all arrivals in roughly one
    /// transfer time.
    pub fn spin_until_all_ge(&self, addrs: &[Addr], value: u32) {
        if addrs.is_empty() {
            return;
        }
        self.call_value(OpReq::SpinUntilAllGe(addrs.to_vec(), value));
    }

    /// Advances this thread's clock by `ns` of pure local computation.
    ///
    /// Free of any engine rendezvous: the time is accumulated locally and
    /// folded into the clock at the next real operation. A long compute-only
    /// stretch still posts a heartbeat every [`DEFERRED_COMPUTE_FLUSH`] ops
    /// so the live-lock budget keeps counting.
    pub fn compute_ns(&self, ns: f64) {
        assert!(ns >= 0.0 && ns.is_finite(), "bad compute duration {ns}");
        let (acc, count) = self.deferred.get();
        self.deferred.set((acc + ns, count + 1));
        if count + 1 >= DEFERRED_COMPUTE_FLUSH {
            self.call(OpReq::Now); // flushes the accumulator as a side effect
        }
    }

    /// Records a timestamp with a user label (see `RunStats::marks`).
    pub fn mark(&self, label: u32) {
        self.call_value(OpReq::Mark(label));
    }

    /// This thread's current virtual time in ns.
    pub fn now_ns(&self) -> f64 {
        match self.call(OpReq::Now) {
            Reply::TimeNs(t) => t,
            _ => unreachable!(),
        }
    }

    /// Machine-wide coherence-op counters accumulated so far, summed over
    /// all threads. Free: advances no virtual time and touches no lines, so
    /// instrumented and uninstrumented runs report identical latencies.
    ///
    /// Because threads progress at different virtual times, a snapshot taken
    /// right after a barrier episode may include a few operations of threads
    /// that already raced into the next episode; per-episode deltas are
    /// therefore attributions, exact only at full-run granularity.
    pub fn coherence_counters(&self) -> CoherenceCounters {
        match self.call(OpReq::Counters) {
            Reply::Counters(c) => *c,
            _ => unreachable!("engine sent a non-counter reply to a counter op"),
        }
    }
}

/// Configures and launches simulations.
pub struct SimBuilder {
    pub(crate) topo: Arc<Topology>,
    pub(crate) nthreads: usize,
    pub(crate) seed: u64,
    pub(crate) op_budget: u64,
    pub(crate) reserve_bytes: usize,
    pub(crate) policy: Option<Box<dyn SchedulePolicy>>,
}

impl SimBuilder {
    /// Prepares a simulation of `nthreads` threads on `topo` (thread `i`
    /// pinned to core `i`).
    ///
    /// # Panics
    /// Panics when `nthreads` is zero or exceeds the core count.
    pub fn new(topo: Arc<Topology>, nthreads: usize) -> Self {
        assert!(nthreads >= 1, "need at least one thread");
        assert!(
            nthreads <= topo.num_cores(),
            "{} threads exceed the {} cores of {}",
            nthreads,
            topo.num_cores(),
            topo.name()
        );
        assert!(
            topo.num_cores() <= CoreSet::CAPACITY,
            "simulator supports at most {} cores",
            CoreSet::CAPACITY
        );
        Self {
            topo,
            nthreads,
            seed: 0x5EED,
            op_budget: 200_000_000,
            reserve_bytes: 0,
            policy: None,
        }
    }

    /// Installs a [`SchedulePolicy`] controlling which ready operation the
    /// engine processes next. Without one (the default) the engine keeps its
    /// virtual-time heap order, byte-identical to previous releases; with
    /// one, interleavings follow the policy and latency figures lose their
    /// meaning — policy runs are for conformance checking, not measurement.
    pub fn schedule_policy(mut self, policy: impl SchedulePolicy + 'static) -> Self {
        self.policy = Some(Box::new(policy));
        self
    }

    /// Sets the jitter seed (default `0x5EED`). Runs with equal seeds are
    /// bit-identical.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the operation budget guarding against live-lock (default 2·10⁸).
    pub fn op_budget(mut self, ops: u64) -> Self {
        assert!(ops > 0);
        self.op_budget = ops;
        self
    }

    /// Pre-sizes the engine's dense value/directory tables to cover every
    /// address `arena` has handed out, eliminating growth reallocation
    /// during the run. Purely a performance hint — results are identical
    /// with or without it (the tables grow on demand).
    pub fn reserve_for(mut self, arena: &Arena) -> Self {
        self.reserve_bytes = arena.len();
        self
    }

    pub(crate) fn into_shared(self) -> Shared {
        let line_bytes = self.topo.cacheline_bytes();
        debug_assert!(line_bytes.is_power_of_two(), "topology validates the line size");
        let line_shift = line_bytes.trailing_zeros();
        let shard_map = (0..self.nthreads).map(|t| self.topo.shard_of(t) as u32).collect();
        Shared {
            mx: Mutex::new(State::new(
                self.nthreads,
                shard_map,
                self.seed,
                self.op_budget,
                self.reserve_bytes,
                line_shift,
                self.policy,
            )),
            done_cv: Condvar::new(),
            cells: (0..self.nthreads).map(|_| ReplyCell::new()).collect(),
            handles: (0..self.nthreads).map(|_| std::sync::OnceLock::new()).collect(),
            topo: self.topo,
            line_shift,
        }
    }

    /// Runs `body` on every simulated thread to completion and returns the
    /// run statistics, or an error on deadlock / live-lock / panic.
    ///
    /// Episodes execute on a per-host-thread ambient [`crate::SimTeam`]
    /// whose workers are reused across calls; set `ARMBAR_SIM_TEAM=0` to
    /// spawn fresh workers per run instead (results are identical).
    pub fn run(
        self,
        body: impl Fn(&SimThread) + Send + Sync + 'static,
    ) -> Result<RunStats, SimError> {
        crate::team::run_with_ambient_team(self, Arc::new(body))
    }
}

/// Installs (once per process) a panic hook that suppresses the default
/// stderr report for [`AbortSignal`] tear-down panics — they are an internal
/// control-flow mechanism, not failures — while delegating everything else
/// to the previous hook.
pub(crate) fn silence_abort_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<AbortSignal>() {
                prev(info);
            }
        }));
    });
}

pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Shared {
    /// Marks `tid` finished (recording its panic message, if any) and lets
    /// the engine drain anything its departure unblocked. Returns the wake
    /// list and whether every participant is now finished; the transport
    /// wrapper decides how to deliver the wakes.
    pub(crate) fn finish_thread_core(
        &self,
        tid: usize,
        panic_msg: Option<String>,
        deferred: (f64, u64),
    ) -> (Vec<usize>, bool) {
        let mut g = self.mx.lock();
        let key = (TimeKey(g.time[tid]), tid);
        g.sched.remove_running(&key); // may already be gone after an abort
        let (def_ns, def_count) = deferred;
        if def_count > 0 && !g.aborted {
            // Trailing computes never followed by a real op: fold them
            // in now so per-thread times include them.
            g.time[tid] += def_ns;
            g.ops += def_count;
            g.stats.count_ops(OpKind::Compute, def_count);
        }
        if let Some(m) = panic_msg {
            g.panics.push((tid, m));
        }
        debug_assert!(!g.slots[tid].finished, "thread finished twice");
        g.slots[tid].finished = true;
        g.finished += 1;
        self.run_engine(&mut g);
        (std::mem::take(&mut g.wake_list), g.finished == g.slots.len())
    }

    /// OS-transport finish: processes the departure, unparks the woken
    /// workers, and notifies the collecting driver.
    pub(crate) fn finish_thread(
        &self,
        tid: usize,
        panic_msg: Option<String>,
        deferred: (f64, u64),
    ) {
        let (wakes, all_done) = self.finish_thread_core(tid, panic_msg, deferred);
        self.unpark(&wakes, tid);
        if all_done {
            self.done_cv.notify_all();
        }
    }

    /// Issues the deferred wakeups of an engine pass (self excluded: the
    /// caller checks its own reply cell directly, and skipping it avoids a
    /// stale park token).
    fn unpark(&self, tids: &[usize], me: usize) {
        for &t in tids {
            if t != me {
                self.handles[t].get().expect("woken thread never registered").unpark();
            }
        }
    }

    /// Driver side: blocks until every participant has passed its finish
    /// point, then converts the episode outcome into the public result.
    pub(crate) fn collect(&self) -> Result<RunStats, SimError> {
        let mut g = self.mx.lock();
        let n = g.slots.len();
        while g.finished < n {
            self.done_cv.wait(&mut g);
        }
        // A body panic takes precedence over the (sentinel-Ok) outcome.
        if !g.panics.is_empty() {
            let (tid, message) = g.panics.remove(0);
            let waiters = std::mem::take(&mut g.panic_waiters);
            return Err(SimError::ThreadPanic { tid, message, waiters });
        }
        match g.outcome.take().expect("all threads finished without an outcome") {
            Err(e) => Err(e),
            Ok(()) => {
                let mut stats = std::mem::replace(&mut g.stats, RunStats::new(0));
                for tid in 0..n {
                    stats.set_thread_time(tid, g.time[tid]);
                }
                Ok(stats)
            }
        }
    }

    /// Processes ready operations until none is processable, then applies
    /// the terminal checks. Called with the state lock held, from whichever
    /// thread last changed the schedule.
    fn run_engine(&self, g: &mut State) {
        if g.policy_mode {
            self.run_engine_policy(g);
            return;
        }
        g.sched.begin_pass();
        while g.outcome.is_none() && g.panics.is_empty() {
            // `pop_next` yields the globally minimal ready key unless it is
            // gated by a running thread that will post an earlier one.
            let Some(key) = g.sched.pop_next() else { break };
            g.ops += 1;
            if g.ops > g.op_budget {
                g.outcome =
                    Some(Err(SimError::OpBudgetExhausted { ops: g.ops, budget: g.op_budget }));
                self.abort(g);
                return;
            }
            let tid = key.1;
            let op = g.slots[tid].pending.take().expect("ready thread has no pending op");
            g.stats.mix_schedule(op_tag(&op), tid as u64);
            self.step(g, tid, op, WeakDecision::Strong);
        }
        self.terminal_check(g);
    }

    /// Policy-mode engine pass: at every decision point, describe all ready
    /// operations to the installed [`SchedulePolicy`] and act on its pick.
    /// The policy is moved out of the state for the pass (it and the state
    /// cannot be borrowed simultaneously), so all posting paths route on
    /// `policy_mode` instead of `policy.is_some()`.
    ///
    /// Determinism: the policy is consulted only at *settlement points* —
    /// when no thread is executing user code, so every live thread has
    /// either posted its next op or parked in a spin-wait. The ready set at
    /// such a point is a pure function of simulation history (host posting
    /// order cannot change it), and sorting it by `(time, tid)` makes the
    /// indices the policy sees canonical. This lock-step discipline still
    /// reaches every sequentially consistent interleaving: at each step any
    /// posted op may be chosen.
    fn run_engine_policy(&self, g: &mut State) {
        let mut policy = g.policy.take().expect("policy mode without a policy");
        'pass: loop {
            while g.outcome.is_none()
                && g.panics.is_empty()
                && !g.ready_list.is_empty()
                && g.sched.running_is_empty()
            {
                g.ready_list.sort_unstable();
                let ready: Vec<ReadyOp> = g
                    .ready_list
                    .iter()
                    .map(|&(TimeKey(t), tid)| {
                        let (kind, addr) = g.slots[tid]
                            .pending
                            .as_ref()
                            .map(describe_op)
                            .expect("ready thread has no pending op");
                        ReadyOp { tid, time_ns: t, kind, addr }
                    })
                    .collect();
                let min_running = g.sched.running_first().map(|(TimeKey(t), tid)| (t, tid));
                let pick = match policy.pick(&ready, min_running) {
                    ScheduleDecision::Run(i) if i < ready.len() => i,
                    ScheduleDecision::Delay { index, ns }
                        if index < ready.len() && ns.is_finite() && ns >= 0.0 =>
                    {
                        // A delay consumes budget (so delay storms cannot
                        // live-lock the run) and advances the thread's clock;
                        // the op stays posted and is offered again.
                        if self.charge_op(g) {
                            break;
                        }
                        let tid = ready[index].tid;
                        g.time[tid] += ns;
                        g.ready_list[index] = (TimeKey(g.time[tid]), tid);
                        g.stats.mix_schedule(0xDE1A, (tid as u64) ^ ns.to_bits());
                        continue;
                    }
                    ScheduleDecision::Wait if min_running.is_some() => break,
                    // Misbehaving policy (bad index, bad delay, or Wait with
                    // nothing running): fall back to the oldest ready op rather
                    // than wedging the engine.
                    _ => crate::schedule::oldest_index(&ready),
                };
                if self.charge_op(g) {
                    break;
                }
                let (TimeKey(_), tid) = g.ready_list.swap_remove(pick);
                let op = g.slots[tid].pending.take().expect("ready thread has no pending op");
                g.stats.mix_schedule(op_tag(&op), tid as u64);
                let weak = match self.weak_offer(g, tid, &op) {
                    Some(wop) => policy.weak(&wop),
                    None => WeakDecision::Strong,
                };
                self.step(g, tid, op, weak);
            }
            // Quiescence drain: nobody ready or running, threads still
            // blocked, buffered stores pending — not a deadlock yet. ARMv8
            // store buffers drain in finite time, so every buffered store
            // commits (lowest tid first, FIFO within a thread) before the
            // terminal check may call this state stuck. Infinite deferral is
            // not an ARMv8 behavior.
            if g.outcome.is_none()
                && g.panics.is_empty()
                && g.ready_list.is_empty()
                && g.sched.running_is_empty()
                && g.finished < g.slots.len()
                && self.weak_drain_one(g)
            {
                continue 'pass;
            }
            break;
        }
        debug_assert!(g.policy.is_none(), "policy restored twice");
        g.policy = Some(policy);
        self.terminal_check(g);
    }

    /// Counts one scheduling action against the op budget; on exhaustion
    /// records the error, aborts the episode, and returns `true`.
    fn charge_op(&self, g: &mut State) -> bool {
        g.ops += 1;
        if g.ops > g.op_budget {
            g.outcome = Some(Err(SimError::OpBudgetExhausted { ops: g.ops, budget: g.op_budget }));
            self.abort(g);
            true
        } else {
            false
        }
    }

    /// Detects episode completion, deadlock, and body panics once the
    /// engine has quiesced.
    fn terminal_check(&self, g: &mut State) {
        if g.outcome.is_some() {
            return;
        }
        if !g.panics.is_empty() {
            // A body panicked (surfaced by the caller as ThreadPanic, with
            // the blocked peers attached). Tear everyone else down — parked
            // waiters AND threads still running or mid-rendezvous — so the
            // driver can hand the workers back.
            g.panic_waiters = self.waiter_info(g);
            g.outcome = Some(Ok(())); // sentinel; collect() reports the panic
            self.abort(g);
        } else if g.finished == g.slots.len() {
            g.outcome = Some(Ok(()));
        } else if g.sched.ready_is_empty() && g.ready_list.is_empty() && g.sched.running_is_empty()
        {
            // Everyone alive is parked in a spin-wait: deadlock. (This also
            // catches stragglers still spinning after every peer finished.)
            let waiters = self.waiter_info(g);
            g.outcome = Some(Err(SimError::Deadlock { waiters }));
            self.abort(g);
        }
    }

    /// Snapshot of every blocked thread for diagnostics. For batched waits,
    /// points at the first flag still below the epoch — that is the arrival
    /// the waiter never observed.
    fn waiter_info(&self, g: &State) -> Vec<DeadlockWaiter> {
        g.waiters
            .in_order()
            .into_iter()
            .map(|w| {
                let addr = match w.kind {
                    WaitKind::AllGe(epoch) => w
                        .addrs
                        .iter()
                        .copied()
                        .find(|&a| self.value(g, a) < epoch)
                        .unwrap_or(w.addrs[0]),
                    _ => w.addrs[0],
                };
                let committed = self.value(g, addr);
                // The waiter's own view: its buffered store (youngest) wins,
                // then its stale cache, then the committed value. Reported
                // so weak-mode reproducers never show a "last seen" value
                // that no fence ordering could explain.
                let view = g
                    .weak
                    .as_ref()
                    .and_then(|wm| {
                        wm.forwarded(w.tid, addr)
                            .or_else(|| wm.last_seen[w.tid].get(&addr).copied())
                    })
                    .unwrap_or(committed);
                DeadlockWaiter { tid: w.tid, addr, kind: w.kind, last_value: committed, view }
            })
            .collect()
    }

    /// Tears the episode down: every thread blocked in a rendezvous (posted
    /// or spin-waiting) receives `Reply::Abort`; running threads observe the
    /// `aborted` flag at their next call. Does not block — the driver waits
    /// for the workers in `collect`.
    fn abort(&self, g: &mut State) {
        g.aborted = true;
        g.sched.clear();
        g.ready_list.clear();
        for tid in 0..g.slots.len() {
            if g.slots[tid].pending.take().is_some() {
                self.deliver(g, tid, Reply::Abort);
            }
        }
        let blocked: Vec<usize> = g.waiters.drain_in_order().into_iter().map(|w| w.tid).collect();
        for tid in blocked {
            self.deliver(g, tid, Reply::Abort);
        }
    }

    /// Publishes a reply to a blocked thread's cell and queues its wakeup
    /// (issued by the engine-pass caller after the lock drops).
    ///
    /// Only call for threads provably blocked in [`SimThread::call`] — a
    /// running thread may still be draining its previous reply, and writing
    /// its cell would race with that lock-free read.
    fn deliver(&self, g: &mut State, tid: usize, r: Reply) {
        // SAFETY: see ReplyCell — the owner is blocked awaiting this reply,
        // and we hold the state lock, serializing all writers.
        unsafe {
            *self.cells[tid].reply.get() = Some(r);
        }
        self.cells[tid].seq.fetch_add(1, Ordering::Release);
        g.wake_list.push(tid);
    }

    /// Replies to a processed operation: the thread resumes user code, so it
    /// re-enters the running set at its (new) virtual time.
    fn reply(&self, g: &mut State, tid: usize, r: Reply) {
        g.sched.insert_running((TimeKey(g.time[tid]), tid));
        self.deliver(g, tid, r);
    }

    #[inline]
    fn line_key(&self, addr: Addr) -> u32 {
        addr >> self.line_shift
    }

    /// Read-only directory lookup; unbacked lines read as cold defaults.
    #[inline]
    fn line_at(&self, g: &State, key: u32) -> Line {
        g.lines.get(key as usize).copied().unwrap_or_default()
    }

    /// Mutable directory lookup, growing the dense table on demand.
    #[inline]
    fn line_mut<'a>(&self, g: &'a mut State, key: u32) -> &'a mut Line {
        let i = key as usize;
        if i >= g.lines.len() {
            g.lines.resize(i + 1, Line::default());
        }
        &mut g.lines[i]
    }

    #[inline]
    fn value(&self, g: &State, addr: Addr) -> u32 {
        g.values.get((addr >> 2) as usize).copied().unwrap_or(0)
    }

    #[inline]
    fn set_value(&self, g: &mut State, addr: Addr, v: u32) {
        let i = (addr >> 2) as usize;
        if i >= g.values.len() {
            g.values.resize(i + 1, 0);
        }
        g.values[i] = v;
    }

    /// Cost of acquiring ownership for a write by `t`, and whether it was
    /// remote. Does not include the RFO fan-out.
    fn write_transfer(&self, t: CoreId, line: &Line) -> (f64, bool) {
        match line.owner {
            Some(o) if o == t => (self.topo.epsilon_ns(), false),
            Some(o) => (self.topo.latency_row(t)[o], true),
            None if line.sharers.is_empty() => (self.topo.epsilon_ns(), false),
            None => {
                let row = self.topo.latency_row(t);
                let l = line.sharers.iter().map(|s| row[s]).fold(f64::INFINITY, f64::min);
                (l, true)
            }
        }
    }

    /// RFO fan-out cost for a write by `t` to a line with the given sharer
    /// set: the farthest invalidation `α_i·L_i` plus the per-extra-sharer
    /// serialization charge at the network controller.
    fn rfo_cost(&self, t: CoreId, sharers: &CoreSet) -> f64 {
        let row = self.topo.rfo_row(t);
        let mut n_other = 0usize;
        let mut worst = 0.0f64;
        for s in sharers.iter() {
            if s == t {
                continue;
            }
            n_other += 1;
            worst = worst.max(row[s]);
        }
        if n_other == 0 {
            0.0
        } else {
            worst + self.topo.coherence().inv_ns * (n_other - 1).min(INV_FANOUT_CAP) as f64
        }
    }

    /// Latency to the farthest core currently holding a copy (owner or
    /// sharer), excluding `t` itself. An exclusive-ownership acquisition
    /// cannot commit before the farthest holder has acknowledged, so this
    /// bounds the transfer term of a write from below — it is what makes a
    /// write to a line whose *spinning reader* sits across the machine cost
    /// the paper's `W_R = (1+α)·L_far` even when the previous writer was
    /// nearby.
    fn farthest_holder_latency(&self, t: CoreId, line: &Line) -> f64 {
        let row = self.topo.latency_row(t);
        let mut worst = 0.0f64;
        if let Some(o) = line.owner {
            if o != t {
                worst = worst.max(row[o]);
            }
        }
        for s in line.sharers.iter() {
            if s != t {
                worst = worst.max(row[s]);
            }
        }
        worst
    }

    fn jitter(&self, g: &mut State) -> f64 {
        let amp = self.topo.coherence().jitter;
        g.rng.jitter_factor(amp)
    }

    /// Charges one remote transaction to the shared interconnect starting
    /// no earlier than `start`; returns the queueing delay incurred.
    fn noc_queue(&self, g: &mut State, start: f64) -> f64 {
        let nu = self.topo.coherence().noc_ns;
        if nu == 0.0 {
            return 0.0;
        }
        let begin = g.noc_available_at.max(start);
        g.noc_available_at = begin + nu;
        begin - start
    }

    /// Describes the weak-memory decision point `op` offers, if any: a
    /// relaxed store (always deferrable), or a relaxed load for which the
    /// thread holds a stale value and no forwardable buffered store (own
    /// buffered stores take precedence — program order within a thread is
    /// never weakened). `None` outside weak mode and for every ordered op,
    /// so the policy's `weak` hook is never consulted — and its rng never
    /// drawn — unless an actual weakening is on offer.
    fn weak_offer(&self, g: &State, tid: usize, op: &OpReq) -> Option<WeakOp> {
        let w = g.weak.as_ref()?;
        match op {
            OpReq::Store(a, _, StoreOrder::Relaxed) => {
                Some(WeakOp { tid, addr: *a, kind: WeakOpKind::RelaxedStore })
            }
            OpReq::Load(a, LoadOrder::Relaxed)
                if w.forwarded(tid, *a).is_none() && w.last_seen[tid].contains_key(a) =>
            {
                Some(WeakOp { tid, addr: *a, kind: WeakOpKind::RelaxedLoad })
            }
            _ => None,
        }
    }

    /// Drains `tid`'s store buffer in FIFO order, committing each entry to
    /// the coherence state (paying full write costs now) and waking any spin
    /// waiters the commits satisfy.
    fn weak_flush(&self, g: &mut State, tid: usize) {
        while let Some((addr, v)) = g.weak.as_mut().and_then(|w| w.buffers[tid].pop_front()) {
            self.do_write(g, tid, addr, v, None);
            self.wake_waiters(g, addr, tid);
        }
    }

    /// Commits (oldest first) every buffered store of `tid` to an address in
    /// `watched`: a thread about to spin must not block waiting for a value
    /// it is itself hiding in its own store buffer.
    fn weak_commit_watched(&self, g: &mut State, tid: usize, watched: &[Addr]) {
        loop {
            let Some(pos) = g
                .weak
                .as_ref()
                .and_then(|w| w.buffers[tid].iter().position(|(a, _)| watched.contains(a)))
            else {
                return;
            };
            let (addr, v) = g.weak.as_mut().unwrap().buffers[tid].remove(pos).unwrap();
            self.do_write(g, tid, addr, v, None);
            self.wake_waiters(g, addr, tid);
        }
    }

    /// Acquire obligation of a satisfied spin: the successful load of the
    /// loop orders everything after it, so the stale cache is discarded and
    /// reseeded with the value the spin observed.
    fn weak_spin_success(&self, g: &mut State, tid: usize, addr: Addr, v: u32) {
        if let Some(w) = g.weak.as_mut() {
            w.last_seen[tid].clear();
            w.last_seen[tid].insert(addr, v);
        }
    }

    /// Commits the oldest buffered store of the lowest-tid thread holding
    /// one; returns `false` when every buffer is empty. The deterministic
    /// unit of the quiescence drain.
    fn weak_drain_one(&self, g: &mut State) -> bool {
        let Some(tid) =
            g.weak.as_ref().and_then(|w| (0..w.buffers.len()).find(|&t| !w.buffers[t].is_empty()))
        else {
            return false;
        };
        let (addr, v) = g.weak.as_mut().unwrap().buffers[tid].pop_front().unwrap();
        g.stats.mix_schedule(0xD5A1, (tid as u64) ^ u64::from(addr));
        self.do_write(g, tid, addr, v, None);
        self.wake_waiters(g, addr, tid);
        true
    }

    /// Weak-mode front end for one operation (`DESIGN.md` §15). Returns
    /// `None` when the op was fully satisfied from per-thread weak state
    /// (deferred store, forwarded or stale load) without touching the
    /// coherence machinery; otherwise applies the op's drain/invalidate
    /// obligations and hands the op back for strong execution.
    fn weak_pre(&self, g: &mut State, tid: usize, op: OpReq, weak: WeakDecision) -> Option<OpReq> {
        let eps = self.topo.epsilon_ns();
        match &op {
            OpReq::Store(addr, v, StoreOrder::Relaxed) => {
                let (addr, v) = (*addr, *v);
                if weak == WeakDecision::Weak {
                    // Defer: the store sits in this thread's buffer until
                    // the next drain point (or the quiescence drain). ε —
                    // a store-buffer entry costs no coherence traffic.
                    g.weak.as_mut().unwrap().buffers[tid].push_back((addr, v));
                    g.time[tid] += eps;
                    g.stats.mix_schedule(0xB0FD, (tid as u64) ^ u64::from(addr));
                    self.reply(g, tid, Reply::Value(0));
                    return None;
                }
                // Committing now: coalesce away older buffered stores to the
                // same address (committing them after this one would invert
                // per-location order; a zero-length visibility window for
                // the overwritten values is ARMv8-legal write coalescing).
                g.weak.as_mut().unwrap().buffers[tid].retain(|&(a, _)| a != addr);
                Some(op)
            }
            // A release store publishes everything before it: drain the
            // buffer, then commit this store through the normal write path.
            OpReq::Store(_, _, StoreOrder::Release) => {
                self.weak_flush(g, tid);
                Some(op)
            }
            OpReq::Load(addr, order) => {
                let addr = *addr;
                if *order == LoadOrder::Acquire {
                    // Acquire discards local stale state; it must observe
                    // the committed coherence value.
                    g.weak.as_mut().unwrap().last_seen[tid].clear();
                }
                if let Some(v) = g.weak.as_ref().unwrap().forwarded(tid, addr) {
                    // Store-to-load forwarding from the thread's own buffer.
                    g.time[tid] += eps;
                    g.stats.record_read(tid, self.line_key(addr), true, false);
                    self.reply(g, tid, Reply::Value(v));
                    return None;
                }
                if *order == LoadOrder::Relaxed && weak == WeakDecision::Weak {
                    if let Some(&v) = g.weak.as_ref().unwrap().last_seen[tid].get(&addr) {
                        // Stale read: satisfied from the thread's local copy
                        // before the invalidation arrives. Touches no line
                        // state — the copy is already local.
                        g.time[tid] += eps;
                        g.stats.record_read(tid, self.line_key(addr), true, false);
                        g.stats.mix_schedule(0x57A1, (tid as u64) ^ u64::from(addr));
                        self.reply(g, tid, Reply::Value(v));
                        return None;
                    }
                }
                Some(op)
            }
            // RMWs are acquire+release: drain the buffer and discard stale
            // state, then run the committed read-modify-write.
            OpReq::FetchAdd(..) | OpReq::CmpXchg(..) | OpReq::Swap(..) | OpReq::Fence => {
                self.weak_flush(g, tid);
                g.weak.as_mut().unwrap().last_seen[tid].clear();
                Some(op)
            }
            // Spin entries evaluate the committed state (and their wakeups
            // deliver committed values). The acquire obligation — clearing
            // the stale cache — lands at spin *success* (the final load of
            // the loop is the one that orders subsequent accesses), so a
            // still-blocked waiter keeps its pre-spin view for diagnostics.
            // The self-hiding rule applies at entry: a thread must not block
            // waiting for a value sitting in its own store buffer.
            OpReq::SpinUntil(a, _, _) => {
                self.weak_commit_watched(g, tid, std::slice::from_ref(a));
                Some(op)
            }
            OpReq::SpinUntilAllGe(addrs, _) => {
                let watched = addrs.clone();
                self.weak_commit_watched(g, tid, &watched);
                Some(op)
            }
            OpReq::Mark(_) | OpReq::Now | OpReq::Counters => Some(op),
        }
    }

    fn step(&self, g: &mut State, tid: usize, op: OpReq, weak: WeakDecision) {
        let op = if g.weak.is_some() {
            match self.weak_pre(g, tid, op, weak) {
                Some(op) => op,
                // Satisfied from weak per-thread state; no coherence traffic.
                None => return,
            }
        } else {
            op
        };
        // Memory ops that hit a busy line (a write in flight) do not jump
        // the queue: the thread's clock advances to the line's availability
        // point and the op is re-posted. This interleaves spin-loop
        // registrations with queued RMWs in true time order — without it,
        // all arrivals of a centralized barrier would be serviced before
        // any spinner subscribes to the line, and the invalidation-crowd
        // cost that dominates SENSE on many-cores would vanish.
        let busy_until = match &op {
            OpReq::Load(a, _)
            | OpReq::Store(a, _, _)
            | OpReq::FetchAdd(a, _)
            | OpReq::CmpXchg(a, _, _)
            | OpReq::Swap(a, _)
            | OpReq::SpinUntil(a, _, _) => self.line_at(g, self.line_key(*a)).available_at,
            OpReq::SpinUntilAllGe(addrs, _) => addrs
                .iter()
                .map(|&a| self.line_at(g, self.line_key(a)).available_at)
                .fold(0.0, f64::max),
            _ => 0.0,
        };
        if busy_until > g.time[tid] {
            let is_write = matches!(
                op,
                OpReq::Store(..) | OpReq::FetchAdd(..) | OpReq::CmpXchg(..) | OpReq::Swap(..)
            );
            g.stats.record_stall(tid, is_write, busy_until - g.time[tid]);
            g.time[tid] = busy_until;
            g.slots[tid].pending = Some(op);
            g.post_ready((TimeKey(busy_until), tid));
            return;
        }

        match op {
            OpReq::Load(addr, _) => {
                let v = self.value(g, addr);
                self.do_read(g, tid, addr);
                if let Some(w) = g.weak.as_mut() {
                    // Remember the observed value: a later relaxed load may
                    // (policy permitting) be satisfied from this stale copy.
                    w.last_seen[tid].insert(addr, v);
                }
                self.reply(g, tid, Reply::Value(v));
            }
            OpReq::Store(addr, v, _) => {
                self.do_write(g, tid, addr, v, None);
                self.wake_waiters(g, addr, tid);
                self.reply(g, tid, Reply::Value(0));
            }
            OpReq::FetchAdd(addr, d) => {
                let old = self.value(g, addr);
                self.do_write(g, tid, addr, old.wrapping_add(d), Some(RmwOp::FetchAdd));
                self.wake_waiters(g, addr, tid);
                self.reply(g, tid, Reply::Value(old));
            }
            OpReq::CmpXchg(addr, current, new) => {
                // ARMv8.1 LSE `CAS` issues the RMW regardless of the
                // comparison outcome — a failed exchange still takes the
                // line exclusively — so both branches perform the RMW write
                // (the failure rewrites the unchanged value). Only the
                // *surcharge* differs: the platform's `RmwCosts` may price
                // the failed compare below the successful exchange.
                let old = self.value(g, addr);
                let (stored, kind) = if old == current {
                    (new, RmwOp::CmpXchgOk)
                } else {
                    (old, RmwOp::CmpXchgFail)
                };
                self.do_write(g, tid, addr, stored, Some(kind));
                self.wake_waiters(g, addr, tid);
                self.reply(g, tid, Reply::Value(old));
            }
            OpReq::Swap(addr, new) => {
                let old = self.value(g, addr);
                self.do_write(g, tid, addr, new, Some(RmwOp::Swap));
                self.wake_waiters(g, addr, tid);
                self.reply(g, tid, Reply::Value(old));
            }
            OpReq::SpinUntil(addr, pred, kind) => {
                let v = self.value(g, addr);
                self.do_read(g, tid, addr);
                if pred(v) {
                    self.weak_spin_success(g, tid, addr, v);
                    self.reply(g, tid, Reply::Value(v));
                } else {
                    let keys = [self.line_key(addr)];
                    g.waiters.register(
                        Waiter { tid, addrs: vec![addr], cond: WaitCond::Pred(pred), kind },
                        &keys,
                    );
                }
            }
            OpReq::SpinUntilAllGe(addrs, epoch) => {
                self.do_batched_probe(g, tid, &addrs);
                if self.all_ge(g, &addrs, epoch) {
                    let seen = self.value(g, addrs[0]);
                    self.weak_spin_success(g, tid, addrs[0], seen);
                    self.reply(g, tid, Reply::Value(epoch));
                } else {
                    let mut keys: Vec<u32> = addrs.iter().map(|&a| self.line_key(a)).collect();
                    keys.sort_unstable();
                    keys.dedup();
                    g.waiters.register(
                        Waiter {
                            tid,
                            addrs,
                            cond: WaitCond::AllGe(epoch),
                            kind: WaitKind::AllGe(epoch),
                        },
                        &keys,
                    );
                }
            }
            OpReq::Mark(label) => {
                g.stats.push_mark(Mark { tid, label, time_ns: g.time[tid] });
                self.reply(g, tid, Reply::Value(0));
            }
            OpReq::Now => {
                let t = g.time[tid];
                self.reply(g, tid, Reply::TimeNs(t));
            }
            OpReq::Counters => {
                let total = g.stats.coherence().total();
                self.reply(g, tid, Reply::Counters(Box::new(total)));
            }
            OpReq::Fence => {
                // Drain/invalidate obligations ran in `weak_pre`; outside
                // weak mode a fence only costs its issue slot.
                g.time[tid] += self.topo.epsilon_ns();
                self.reply(g, tid, Reply::Value(0));
            }
        }
    }

    fn do_read(&self, g: &mut State, tid: usize, addr: Addr) {
        let now = g.time[tid];
        let eps = self.topo.epsilon_ns();
        let read_c = self.topo.coherence().read_contention_ns;
        let key = self.line_key(addr);
        let line = self.line_at(g, key);
        if line.sharers.contains(tid) {
            g.time[tid] = now + eps;
            g.stats.record_read(tid, key, true, false);
        } else {
            let start = now.max(line.available_at);
            let row = self.topo.latency_row(tid);
            let src = if let Some(o) = line.owner {
                row[o]
            } else if !line.sharers.is_empty() {
                line.sharers.iter().map(|s| row[s]).fold(f64::INFINITY, f64::min)
            } else {
                self.topo.max_latency_ns()
            };
            let queue = self.noc_queue(g, start);
            let lm = self.line_mut(g, key);
            lm.readers_since_write += 1;
            let contended = lm.readers_since_write > 1;
            let contention = read_c * (lm.readers_since_write - 1) as f64;
            lm.sharers.insert(tid);
            let jf = self.jitter(g);
            g.time[tid] = start + queue + (src + contention) * jf;
            g.stats.record_read(tid, key, false, contended);
        }
    }

    fn all_ge(&self, g: &State, addrs: &[Addr], epoch: u32) -> bool {
        addrs.iter().all(|&a| self.value(g, a) >= epoch)
    }

    /// Initial probe of a batched wait: fetch every line the thread does
    /// not already share, overlapping the misses — pay the slowest fetch in
    /// full and a pipelining fraction of the rest.
    fn do_batched_probe(&self, g: &mut State, tid: usize, addrs: &[Addr]) {
        /// Fraction of each additional overlapped miss that still shows up
        /// on the critical path (finite load-queue bandwidth).
        const MLP_OVERLAP: f64 = 0.3;
        let read_c = self.topo.coherence().read_contention_ns;
        let now = g.time[tid];
        let mut max_l = 0.0f64;
        let mut sum_l = 0.0f64;
        let mut fetched = 0usize;
        for &a in addrs {
            let key = self.line_key(a);
            let snapshot = self.line_at(g, key);
            if snapshot.sharers.contains(tid) {
                continue;
            }
            let row = self.topo.latency_row(tid);
            let src = if let Some(o) = snapshot.owner {
                row[o]
            } else if !snapshot.sharers.is_empty() {
                snapshot.sharers.iter().map(|s| row[s]).fold(f64::INFINITY, f64::min)
            } else {
                self.topo.max_latency_ns()
            };
            let queue = self.noc_queue(g, now);
            let line = self.line_mut(g, key);
            line.readers_since_write += 1;
            let contended = line.readers_since_write > 1;
            let contention = read_c * (line.readers_since_write - 1) as f64;
            line.sharers.insert(tid);
            max_l = max_l.max(src + contention + queue);
            sum_l += src + contention + queue;
            fetched += 1;
            g.stats.record_read(tid, key, false, contended);
        }
        let jf = self.jitter(g);
        let cost = if fetched == 0 {
            self.topo.epsilon_ns()
        } else {
            max_l + MLP_OVERLAP * (sum_l - max_l)
        };
        g.time[tid] = now + cost * jf;
    }

    fn do_write(&self, g: &mut State, tid: usize, addr: Addr, new_value: u32, rmw: Option<RmwOp>) {
        let now = g.time[tid];
        let key = self.line_key(addr);
        let line_snapshot = self.line_at(g, key);
        let start = now.max(line_snapshot.available_at);
        let (near_transfer, remote) = self.write_transfer(tid, &line_snapshot);
        let transfer = near_transfer.max(self.farthest_holder_latency(tid, &line_snapshot));
        let sharers_snapshot = line_snapshot.sharers;
        let rfo = self.rfo_cost(tid, &sharers_snapshot);
        // Atomic RMWs carry a surcharge beyond a plain store: on ARMv8 the
        // far-atomic / exclusive-monitor handshake adds another partial
        // round trip. This is the cost the paper credits static tournament
        // schemes for avoiding ("no overhead introduced by atomic
        // instructions of a dynamic scheme", Section V-A). The surcharge is
        // per-op-kind (DESIGN.md §17): LSE parts price FAA/SWP below CAS,
        // LL/SC parts the reverse, and a failed CAS has its own entry.
        // Under `RmwCosts::legacy` this is bit-identical to the pre-split
        // `ε + 0.5·transfer`.
        let rmw_alu = match rmw {
            Some(op) => self.topo.rmw_costs().surcharge_ns(op, self.topo.epsilon_ns(), transfer),
            None => 0.0,
        };
        // Remote transfers occupy the shared interconnect; local writes to
        // an exclusively-held line do not.
        let queue = if remote || sharers_snapshot.iter().any(|s| s != tid) {
            self.noc_queue(g, start)
        } else {
            0.0
        };
        let jf = self.jitter(g);
        let end = start + queue + (transfer + rfo + rmw_alu) * jf;

        let line = self.line_mut(g, key);
        line.owner = Some(tid);
        line.sharers.clear();
        line.sharers.insert(tid);
        line.available_at = end;
        line.readers_since_write = 0;

        self.set_value(g, addr, new_value);
        if let Some(w) = g.weak.as_mut() {
            // CoWR: the writer's own stale copy is superseded by its write —
            // a later relaxed load of this thread must never read backward
            // past it (other threads' copies stay stale; that is the model).
            w.last_seen[tid].insert(addr, new_value);
        }
        g.time[tid] = end;
        let invalidated = sharers_snapshot.iter().filter(|&s| s != tid).count();
        g.stats.record_write(tid, key, remote, invalidated);
    }

    /// After a write to `addr`'s line completes: waiters whose predicate is
    /// now satisfied wake (paying the transfer from the writer plus the
    /// staggered reader-contention term); unsatisfied waiters on the same
    /// line immediately re-fetch it (they are spinning), so they rejoin the
    /// sharer set and future writes keep paying invalidation costs to them.
    fn wake_waiters(&self, g: &mut State, addr: Addr, writer: usize) {
        let key = self.line_key(addr);
        // Only waiters indexed under this line can match; the per-line
        // bucket replaces the old scan over every blocked thread in the
        // machine. Entries are `(seq, slot)` in registration order, so the
        // wake order (and therefore every staggered wake time and jitter
        // draw) is identical to the flat list's.
        let bucket = g.waiters.take_bucket(key);
        if bucket.is_empty() {
            return;
        }
        let end = g.time[writer];
        let read_c = self.topo.coherence().read_contention_ns;

        let mut woken = 0usize;
        let mut remaining = Vec::with_capacity(bucket.len());
        for (seq, slot) in bucket {
            // A stale entry (multi-line waiter already woken via another of
            // its lines) no longer matches its slot's seq; drop it.
            let Some(w) = g.waiters.take_slot(slot, seq) else { continue };
            let satisfied = match &w.cond {
                WaitCond::Pred(pred) => pred(self.value(g, w.addrs[0])),
                WaitCond::AllGe(epoch) => self.all_ge(g, &w.addrs, *epoch),
            };
            // Whether woken or still spinning, the waiter re-fetches the
            // written line immediately, rejoining the sharer set so that
            // subsequent writes keep paying invalidation costs to it.
            let line = self.line_mut(g, key);
            line.sharers.insert(w.tid);
            line.readers_since_write += 1;
            if satisfied {
                let lat = self.topo.latency_row(w.tid)[writer];
                // A batched waiter re-fetched every other flag line as its
                // writers dirtied it; those (pipelined) refetches are paid
                // now, as the overlap fraction of each line's pull from its
                // current owner. Without this, a flat 64-way group would
                // observe 63 arrivals for the price of one.
                let mlp_extra: f64 = match &w.cond {
                    WaitCond::Pred(_) => 0.0,
                    WaitCond::AllGe(_) => w
                        .addrs
                        .iter()
                        .filter(|&&a| self.line_key(a) != key)
                        .map(|&a| {
                            self.line_at(g, self.line_key(a))
                                .owner
                                .map_or(0.0, |o| 0.3 * self.topo.latency_row(w.tid)[o])
                        })
                        .sum(),
                };
                let jf = self.jitter(g);
                g.time[w.tid] = end + (lat + mlp_extra + read_c * woken as f64) * jf;
                woken += 1;
                let reply_value = self.value(g, w.addrs[0]);
                self.weak_spin_success(g, w.tid, w.addrs[0], reply_value);
                g.stats.record_spin_wakeup(w.tid);
                self.reply(g, w.tid, Reply::Value(reply_value));
                g.waiters.release(slot);
            } else {
                g.waiters.restore(slot, seq, w);
                remaining.push((seq, slot));
            }
        }
        g.waiters.put_bucket(key, remaining);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;
    use armbar_topology::TopologyBuilder;

    /// 8 cores, clusters of 4; zero jitter, known constants:
    /// ε = 1, L0 = 10 (α .5), L1 = 40 (α .5), inv = 2, read contention = 3.
    fn topo() -> Arc<Topology> {
        Arc::new(
            TopologyBuilder::new("test8", 8)
                .epsilon_ns(1.0)
                .layer("near", 10.0, 0.5)
                .layer("far", 40.0, 0.5)
                .hierarchy(&[4])
                .coherence(2.0, 3.0, 0.0)
                .build(),
        )
    }

    #[test]
    fn single_thread_local_costs() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let stats = SimBuilder::new(topo(), 1)
            .run(move |ctx| {
                ctx.store(a, 7); // cold line, local: ε = 1
                assert_eq!(ctx.load(a), 7); // local hit: ε = 1
                ctx.compute_ns(5.0);
            })
            .unwrap();
        assert_eq!(stats.max_time_ns(), 7.0);
        assert_eq!(stats.ops(OpKind::LocalWrite), 1);
        assert_eq!(stats.ops(OpKind::LocalRead), 1);
    }

    #[test]
    fn remote_read_pays_layer_latency() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        // Thread 0 writes (owner), thread 1 (same cluster) then reads.
        let stats = SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                if ctx.tid() == 0 {
                    // Compute first so t1 parks before the store happens.
                    ctx.compute_ns(100.0);
                    ctx.store(a, 1);
                } else {
                    ctx.spin_until(a, |v| v == 1);
                    // After waking, the next read is a local hit.
                    let t0 = ctx.now_ns();
                    ctx.load(a);
                    assert_eq!(ctx.now_ns() - t0, 1.0);
                }
            })
            .unwrap();
        // t1's initial read of the cold line makes it a sharer. t0's store
        // at t=100 then transfers from that sharer (L0 = 10) and pays RFO to
        // it (α·L0 = 5), ending at 115. t1 wakes at 115 + L0 = 125 and its
        // local re-read adds ε → 126.
        assert_eq!(stats.per_thread_time_ns()[1], 126.0);
        assert_eq!(stats.ops(OpKind::SpinWakeup), 1);
    }

    #[test]
    fn cross_cluster_read_costs_more() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let stats = SimBuilder::new(topo(), 5)
            .run(move |ctx| match ctx.tid() {
                0 => ctx.store(a, 1),
                4 => {
                    // Core 4 is in the other cluster: wake pays L1 = 40.
                    ctx.spin_until(a, |v| v == 1);
                }
                _ => {}
            })
            .unwrap();
        assert_eq!(stats.per_thread_time_ns()[4], 1.0 + 40.0);
    }

    #[test]
    fn writes_to_one_line_serialize() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        // Both threads fetch_add the same counter at t=0. The winner (t0)
        // runs first (tie broken by tid): cold local write ε + RMW
        // surcharge (ε + 0.5·ε) = 2.5. t1 must wait for available_at=2.5,
        // then pays L0 transfer (10) + RFO to t0's copy (α·L0 = 5) + RMW
        // surcharge (ε + 0.5·10 = 6) = 21 → ends at 23.5.
        let stats = SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                ctx.fetch_add(a, 1);
            })
            .unwrap();
        assert_eq!(stats.per_thread_time_ns()[0], 2.5);
        assert_eq!(stats.per_thread_time_ns()[1], 23.5);
        assert_eq!(stats.ops(OpKind::RemoteWrite), 1);
    }

    #[test]
    fn fetch_add_returns_old_and_accumulates() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let stats = SimBuilder::new(topo(), 4)
            .run(move |ctx| {
                let old = ctx.fetch_add(a, 1);
                assert!(old < 4);
                if old == 3 {
                    // Last arriver observes the full count.
                    assert_eq!(ctx.load(a), 4);
                }
            })
            .unwrap();
        assert!(stats.total_mem_ops() >= 4);
    }

    #[test]
    fn compare_exchange_arbitrates_one_winner() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        // All four threads CAS 0 -> tid+1 on the same word: exactly one
        // succeeds and every loser observes a non-zero previous value.
        let winners = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        SimBuilder::new(topo(), 4)
            .run({
                let winners = std::sync::Arc::clone(&winners);
                move |ctx| {
                    let old = ctx.compare_exchange(a, 0, ctx.tid() as u32 + 1);
                    if old == 0 {
                        winners.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    let settled = ctx.load(a);
                    assert!((1..=4).contains(&settled), "some CAS must have landed");
                }
            })
            .unwrap();
        assert_eq!(winners.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn compare_exchange_success_and_failure_report_previous() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        SimBuilder::new(topo(), 1)
            .run(move |ctx| {
                assert_eq!(ctx.compare_exchange(a, 0, 7), 0); // success
                assert_eq!(ctx.load(a), 7);
                assert_eq!(ctx.compare_exchange(a, 3, 9), 7); // failure
                assert_eq!(ctx.load(a), 7, "failed CAS must not store");
                assert_eq!(ctx.compare_exchange(a, 7, 9), 7); // success again
                assert_eq!(ctx.load(a), 9);
            })
            .unwrap();
    }

    #[test]
    fn swap_returns_old_stores_new_and_wakes_spinners() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                if ctx.tid() == 0 {
                    ctx.compute_ns(100.0); // let t1 park first
                    assert_eq!(ctx.swap(a, 5), 0);
                    assert_eq!(ctx.swap(a, 9), 5);
                    assert_eq!(ctx.load(a), 9);
                } else {
                    // Both exchanges wake the spinner chain.
                    assert_eq!(ctx.spin_until_eq(a, 5), 5);
                    assert_eq!(ctx.spin_until_eq(a, 9), 9);
                }
            })
            .unwrap();
    }

    #[test]
    fn failed_cas_charged_below_successful_under_split_costs() {
        use armbar_topology::{RmwCost, RmwCosts};
        // A part that prices a failed compare below a successful exchange
        // (both LSE and LL/SC shapes do). Jitter off → exact durations.
        let costs = RmwCosts {
            fetch_add: RmwCost::new(1.0, 0.5),
            swap: RmwCost::new(1.0, 0.5),
            cas_ok: RmwCost::new(1.0, 0.5),
            cas_fail: RmwCost::new(0.5, 0.2),
        };
        let topo = std::sync::Arc::new(
            TopologyBuilder::new("split8", 8)
                .epsilon_ns(1.0)
                .layer("near", 10.0, 0.5)
                .layer("far", 40.0, 0.5)
                .hierarchy(&[4])
                .coherence(2.0, 3.0, 0.0)
                .rmw_costs(costs)
                .build(),
        );
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        SimBuilder::new(topo, 1)
            .run(move |ctx| {
                ctx.store(a, 5); // own the line: both RMWs below are local
                let t0 = ctx.now_ns();
                assert_eq!(ctx.compare_exchange(a, 5, 6), 5); // success
                let ok_dt = ctx.now_ns() - t0;
                let t1 = ctx.now_ns();
                assert_eq!(ctx.compare_exchange(a, 9, 7), 6); // failure
                let fail_dt = ctx.now_ns() - t1;
                // Local exclusive write: transfer = ε = 1, no RFO. Success
                // pays 1 + (1.0·1 + 0.5·1) = 2.5; failure 1 + (0.5·1 +
                // 0.2·1) = 1.7.
                assert!((ok_dt - 2.5).abs() < 1e-9, "ok_dt = {ok_dt}");
                assert!((fail_dt - 1.7).abs() < 1e-9, "fail_dt = {fail_dt}");
                assert!(fail_dt < ok_dt);
            })
            .unwrap();
    }

    #[test]
    fn legacy_costs_charge_every_rmw_kind_alike() {
        // Under the default (legacy) table, FAA, SWP, successful CAS and
        // failed CAS on an owned line all cost ε + (ε + 0.5·ε) = 2.5 —
        // the pre-split engine's single surcharge.
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        SimBuilder::new(topo(), 1)
            .run(move |ctx| {
                ctx.store(a, 0);
                let mut durations = Vec::new();
                let t = ctx.now_ns();
                ctx.fetch_add(a, 1);
                durations.push(ctx.now_ns() - t);
                let t = ctx.now_ns();
                ctx.swap(a, 3);
                durations.push(ctx.now_ns() - t);
                let t = ctx.now_ns();
                ctx.compare_exchange(a, 3, 4); // success
                durations.push(ctx.now_ns() - t);
                let t = ctx.now_ns();
                ctx.compare_exchange(a, 0, 9); // failure
                durations.push(ctx.now_ns() - t);
                for d in durations {
                    assert_eq!(d, 2.5);
                }
            })
            .unwrap();
    }

    #[test]
    fn compare_exchange_wakes_spinners_on_success() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                if ctx.tid() == 0 {
                    ctx.compute_ns(100.0); // let t1 park first
                    assert_eq!(ctx.compare_exchange(a, 0, 5), 0);
                } else {
                    assert_eq!(ctx.spin_until_eq(a, 5), 5);
                }
            })
            .unwrap();
    }

    #[test]
    fn spinner_false_sharing_charges_writer() {
        let mut arena = Arena::new();
        let base = arena.alloc_u32_array(2); // two words, same line
        let w0 = base;
        let w1 = base + 4;
        // t1 spins on word 1. t0 writes word 0 (same line): must pay RFO to
        // the spinning t1 even though the value t1 wants never changes.
        let stats = SimBuilder::new(topo(), 3)
            .run(move |ctx| match ctx.tid() {
                0 => {
                    ctx.compute_ns(100.0); // let t1 get parked first
                    let t0 = ctx.now_ns();
                    ctx.store(w0, 9);
                    let dt = ctx.now_ns() - t0;
                    // Ownership transfer: t1 read the cold line and became a
                    // sharer (no owner); transfer = L0 (10, remote) + RFO to
                    // t1 (α·L0 = 5) = 15.
                    assert_eq!(dt, 15.0);
                    ctx.store(w1, 1); // release the spinner
                }
                1 => {
                    ctx.spin_until(w1, |v| v == 1);
                }
                _ => {}
            })
            .unwrap();
        assert!(stats.max_time_ns() > 100.0);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let err = SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                // Nobody ever writes 1: both threads block forever.
                ctx.spin_until(a, |v| v == 1);
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { waiters } => {
                assert_eq!(waiters.len(), 2);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn straggler_spinner_is_a_deadlock() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        // t0 finishes immediately; t1 spins forever.
        let err = SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                if ctx.tid() == 1 {
                    ctx.spin_until(a, |v| v == 1);
                }
            })
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn deadlock_reports_wait_kind_and_target() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let b = arena.alloc_padded_u32(64);
        let err = SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                if ctx.tid() == 0 {
                    ctx.spin_until_eq(a, 3);
                } else {
                    ctx.spin_until_ge(b, 7);
                }
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { waiters } => {
                let w0 = waiters.iter().find(|w| w.tid == 0).unwrap();
                assert_eq!((w0.addr, w0.kind, w0.last_value), (a, WaitKind::Eq(3), 0));
                let w1 = waiters.iter().find(|w| w.tid == 1).unwrap();
                assert_eq!((w1.addr, w1.kind), (b, WaitKind::Ge(7)));
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn batched_deadlock_points_at_the_missing_flag() {
        let mut arena = Arena::new();
        let a = arena.alloc_padded_u32(64);
        let b = arena.alloc_padded_u32(64);
        let err = SimBuilder::new(topo(), 1)
            .run(move |ctx| {
                ctx.store(a, 1); // a satisfied, b never written
                ctx.spin_until_all_ge(&[a, b], 1);
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { waiters } => {
                assert_eq!(waiters.len(), 1);
                assert_eq!(waiters[0].addr, b, "must name the flag still unsatisfied");
                assert_eq!(waiters[0].kind, WaitKind::AllGe(1));
                assert_eq!(waiters[0].last_value, 0);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn op_budget_catches_livelock() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let err = SimBuilder::new(topo(), 1)
            .op_budget(1000)
            .run(move |ctx| loop {
                ctx.store(a, 1);
            })
            .unwrap_err();
        match err {
            SimError::OpBudgetExhausted { ops, budget } => {
                assert_eq!(budget, 1000, "error must carry the configured budget");
                assert!(ops > budget);
            }
            other => panic!("expected budget error, got {other}"),
        }
    }

    #[test]
    fn thread_panic_is_reported() {
        let err = SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                if ctx.tid() == 1 {
                    panic!("intentional test failure");
                }
            })
            .unwrap_err();
        match err {
            SimError::ThreadPanic { tid, message, waiters } => {
                assert_eq!(tid, 1);
                assert!(message.contains("intentional"));
                assert!(waiters.is_empty(), "no thread was blocked here");
            }
            other => panic!("expected panic error, got {other}"),
        }
    }

    #[test]
    fn thread_panic_attaches_blocked_peer_snapshot() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        // t0 parks on a flag t1 was supposed to release; t1 dies first. The
        // diagnostic must name the orphaned waiter and its target.
        let err = SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                if ctx.tid() == 0 {
                    ctx.spin_until_ge(a, 1);
                } else {
                    // A real rendezvous op: its reply is gated behind t0's
                    // wait registration, so the snapshot is deterministic.
                    ctx.now_ns();
                    panic!("writer died before releasing");
                }
            })
            .unwrap_err();
        match err {
            SimError::ThreadPanic { tid, message, waiters } => {
                assert_eq!(tid, 1);
                assert!(message.contains("before releasing"));
                assert_eq!(waiters.len(), 1, "the parked spinner must be snapshotted");
                assert_eq!(waiters[0].tid, 0);
                assert_eq!(waiters[0].addr, a);
                assert_eq!(waiters[0].kind, WaitKind::Ge(1));
                assert_eq!(waiters[0].last_value, 0);
            }
            other => panic!("expected panic error, got {other}"),
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let jittery = Arc::new(
            TopologyBuilder::new("jitter8", 8)
                .epsilon_ns(1.0)
                .layer("near", 10.0, 0.5)
                .layer("far", 40.0, 0.5)
                .hierarchy(&[4])
                .coherence(2.0, 3.0, 0.2)
                .build(),
        );
        let run = |seed: u64| {
            let mut arena = Arena::new();
            let a = arena.alloc_u32();
            SimBuilder::new(Arc::clone(&jittery), 8)
                .seed(seed)
                .run(move |ctx| {
                    for _ in 0..50 {
                        ctx.fetch_add(a, 1);
                        ctx.compute_ns(3.0);
                    }
                })
                .unwrap()
                .max_time_ns()
        };
        assert_eq!(run(1), run(1));
        assert_eq!(run(2), run(2));
        assert_ne!(run(1), run(3), "different seeds should jitter differently");
    }

    #[test]
    fn arena_reservation_changes_nothing() {
        // reserve_for is a pure pre-sizing hint: identical results with it.
        let body = |a: Addr| {
            move |ctx: &SimThread| {
                let prev = ctx.fetch_add(a, 1);
                if prev + 1 < ctx.nthreads() as u32 {
                    ctx.spin_until_ge(a, ctx.nthreads() as u32);
                }
            }
        };
        let mut arena = Arena::new();
        let a = arena.alloc_padded_u32(64);
        let plain = SimBuilder::new(topo(), 4).run(body(a)).unwrap();
        let mut arena2 = Arena::new();
        let a2 = arena2.alloc_padded_u32(64);
        let reserved = SimBuilder::new(topo(), 4).reserve_for(&arena2).run(body(a2)).unwrap();
        assert_eq!(plain.max_time_ns(), reserved.max_time_ns());
        assert_eq!(plain.per_thread_time_ns(), reserved.per_thread_time_ns());
        assert_eq!(plain.total_mem_ops(), reserved.total_mem_ops());
    }

    #[test]
    fn marks_are_recorded_in_time() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let stats = SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                ctx.mark(1);
                if ctx.tid() == 0 {
                    ctx.store(a, 1);
                } else {
                    ctx.spin_until(a, |v| v == 1);
                }
                ctx.mark(2);
            })
            .unwrap();
        let m1 = stats.last_mark_time(1).unwrap();
        let m2 = stats.last_mark_time(2).unwrap();
        assert_eq!(m1, 0.0);
        assert!(m2 > 0.0);
    }

    #[test]
    fn many_threads_complete() {
        let t = Arc::new(
            TopologyBuilder::new("wide", 64)
                .epsilon_ns(1.0)
                .layer("near", 10.0, 0.5)
                .layer("far", 40.0, 0.5)
                .hierarchy(&[8])
                .coherence(2.0, 1.0, 0.0)
                .build(),
        );
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let g = arena.alloc_padded_u32(64);
        let stats = SimBuilder::new(t, 64)
            .run(move |ctx| {
                // A hand-rolled centralized barrier episode.
                let prev = ctx.fetch_add(a, 1);
                if prev == 63 {
                    ctx.store(g, 1);
                } else {
                    ctx.spin_until(g, |v| v == 1);
                }
            })
            .unwrap();
        assert_eq!(stats.ops(OpKind::SpinWakeup), 63);
        assert!(stats.max_time_ns() > 0.0);
    }

    #[test]
    fn coherence_counters_capture_rfo_and_stalls() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let g64 = arena.alloc_padded_u32(64);
        // Four threads hammer one counter, then rendezvous on a flag: the
        // RMWs serialize (write stalls), the flag write invalidates the
        // spinners' copies (RFO fan-out), and the spinners wake remotely.
        let stats = SimBuilder::new(topo(), 4)
            .run(move |ctx| {
                let prev = ctx.fetch_add(a, 1);
                if prev == 3 {
                    ctx.store(g64, 1);
                } else {
                    ctx.spin_until(g64, |v| v == 1);
                }
            })
            .unwrap();
        let total = stats.coherence().total();
        // Aggregate counters must agree with the legacy op-kind counts.
        assert_eq!(total.local_reads, stats.ops(OpKind::LocalRead));
        assert_eq!(total.remote_reads, stats.ops(OpKind::RemoteRead));
        assert_eq!(
            total.local_writes + total.remote_writes,
            stats.ops(OpKind::LocalWrite) + stats.ops(OpKind::RemoteWrite)
        );
        assert_eq!(total.spin_wakeups, 3);
        // Three of the four RMWs found the counter line busy.
        assert!(total.write_stalls >= 3, "stalls: {total:?}");
        assert!(total.write_stall_ns > 0.0);
        // The release store invalidated the three spinners' copies.
        assert!(total.rfo_invalidations >= 3, "fan-out: {total:?}");
        // Per-thread view: the thread that never owned the counter line
        // first must have paid a remote write.
        assert!(stats.coherence().per_thread().iter().any(|c| c.remote_writes > 0));
    }

    #[test]
    fn live_counter_snapshot_is_free_and_monotone() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let stats = SimBuilder::new(topo(), 1)
            .run(move |ctx| {
                let before = ctx.coherence_counters();
                let t0 = ctx.now_ns();
                let mid = ctx.coherence_counters();
                assert_eq!(ctx.now_ns(), t0, "snapshot must cost no virtual time");
                ctx.store(a, 1);
                ctx.load(a);
                let after = ctx.coherence_counters();
                let d = after.delta_since(&mid);
                assert_eq!(d.local_writes, 1);
                assert_eq!(d.local_reads, 1);
                assert_eq!(before.total_mem_ops(), 0);
            })
            .unwrap();
        assert_eq!(stats.coherence().total().total_mem_ops(), 2);
    }

    #[test]
    fn shard_count_never_changes_results() {
        // The same machine at 1, 2, 4, and 8 scheduler shards must produce
        // bit-identical runs: sharding is a scheduling partition, not a
        // model change.
        let run = |shard_cores: usize| {
            let t = Arc::new(
                TopologyBuilder::new("shardtest", 16)
                    .epsilon_ns(1.0)
                    .layer("near", 10.0, 0.5)
                    .layer("far", 40.0, 0.5)
                    .hierarchy(&[4])
                    .shard_cores(shard_cores)
                    .coherence(2.0, 3.0, 0.2)
                    .build(),
            );
            let mut arena = Arena::new();
            let a = arena.alloc_padded_u32(64);
            let gflag = arena.alloc_padded_u32(64);
            let stats = SimBuilder::new(t, 16)
                .seed(42)
                .run(move |ctx| {
                    for round in 1..=3u32 {
                        let prev = ctx.fetch_add(a, 1);
                        if prev == 16 * round - 1 {
                            ctx.store(gflag, round);
                        } else {
                            ctx.spin_until_ge(gflag, round);
                        }
                        ctx.compute_ns(5.0 * ctx.tid() as f64);
                    }
                })
                .unwrap();
            (stats.per_thread_time_ns().to_vec(), stats.schedule_hash())
        };
        let baseline = run(16);
        for shards in [8, 4, 2] {
            assert_eq!(run(shards), baseline, "shard_cores={shards} diverged");
        }
    }

    #[test]
    fn reader_contention_staggers_wakeups() {
        let mut arena = Arena::new();
        let g = arena.alloc_padded_u32(64);
        let stats = SimBuilder::new(topo(), 5)
            .run(move |ctx| {
                if ctx.tid() == 0 {
                    ctx.compute_ns(50.0);
                    ctx.store(g, 1);
                } else {
                    ctx.spin_until(g, |v| v == 1);
                }
            })
            .unwrap();
        // Waiters 1..4 wake at end + L + c·j; with L identical within the
        // cluster the wake times must be strictly increasing for same-layer
        // waiters and all distinct here.
        let mut times: Vec<f64> = stats.per_thread_time_ns()[1..].to_vec();
        let orig = times.clone();
        times.sort_by(f64::total_cmp);
        times.dedup();
        assert_eq!(times.len(), 4, "staggered wakeups must differ: {orig:?}");
    }

    /// Min-time scheduling (deterministic interleaving by virtual time) that
    /// takes every weak behavior on offer — the maximally weak execution.
    struct AlwaysWeak;

    impl SchedulePolicy for AlwaysWeak {
        fn pick(
            &mut self,
            ready: &[ReadyOp],
            min_running: Option<(f64, usize)>,
        ) -> ScheduleDecision {
            MinTimePolicy.pick(ready, min_running)
        }

        fn weak(&mut self, _op: &WeakOp) -> WeakDecision {
            WeakDecision::Weak
        }
    }

    use crate::schedule::MinTimePolicy;

    #[test]
    fn buffered_store_forwards_to_own_loads() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        SimBuilder::new(topo(), 1)
            .schedule_policy(AlwaysWeak)
            .run(move |ctx| {
                ctx.store_relaxed(a, 9); // deferred into the store buffer
                assert_eq!(ctx.load_relaxed(a), 9, "relaxed load must forward");
                assert_eq!(ctx.load(a), 9, "acquire load must forward");
                ctx.fence(); // drains the buffer
                assert_eq!(ctx.load(a), 9, "committed after the fence");
            })
            .unwrap();
    }

    #[test]
    fn release_store_publishes_buffered_stores_first() {
        // Message passing: the data store is relaxed and deferred, but the
        // release flag store must flush it, so the reader can never observe
        // flag == 1 with stale data.
        let mut arena = Arena::new();
        let data = arena.alloc_padded_u32(64);
        let flag = arena.alloc_padded_u32(64);
        SimBuilder::new(topo(), 2)
            .schedule_policy(AlwaysWeak)
            .run(move |ctx| {
                if ctx.tid() == 0 {
                    ctx.store_relaxed(data, 42);
                    ctx.store(flag, 1); // release: flushes data first
                } else {
                    ctx.spin_until_eq(flag, 1);
                    assert_eq!(ctx.load(data), 42);
                }
            })
            .unwrap();
    }

    #[test]
    fn quiescence_drain_commits_buffered_stores_instead_of_deadlocking() {
        // The writer's only store stays in its buffer when it finishes; the
        // spinner must still be released (ARMv8 buffers drain in finite
        // time), so this run completes instead of reporting a deadlock.
        let mut arena = Arena::new();
        let flag = arena.alloc_padded_u32(64);
        SimBuilder::new(topo(), 2)
            .schedule_policy(AlwaysWeak)
            .run(move |ctx| {
                if ctx.tid() == 0 {
                    ctx.store_relaxed(flag, 1);
                } else {
                    ctx.spin_until_eq(flag, 1);
                }
            })
            .unwrap();
    }

    #[test]
    fn relaxed_load_may_return_stale_value_until_acquire() {
        // t0 observes a == 0, then t1 commits a = 7 (virtual-time ordered);
        // t0's later relaxed load is served the stale 0, and its acquire
        // load discards the stale copy and sees the committed 7.
        let mut arena = Arena::new();
        let a = arena.alloc_padded_u32(64);
        SimBuilder::new(topo(), 2)
            .schedule_policy(AlwaysWeak)
            .run(move |ctx| {
                if ctx.tid() == 0 {
                    assert_eq!(ctx.load(a), 0); // caches 0
                    ctx.compute_ns(1000.0); // let t1's store land
                    assert_eq!(ctx.load_relaxed(a), 0, "stale read");
                    assert_eq!(ctx.load(a), 7, "acquire reads committed state");
                    assert_eq!(ctx.load_relaxed(a), 7, "stale cache was refreshed");
                } else {
                    ctx.compute_ns(100.0);
                    ctx.store(a, 7);
                }
            })
            .unwrap();
    }

    #[test]
    fn same_address_relaxed_stores_coalesce_in_order() {
        // Per-location order: two buffered stores to one address drain FIFO,
        // so the final committed value is the program-order-last one.
        let mut arena = Arena::new();
        let a = arena.alloc_padded_u32(64);
        SimBuilder::new(topo(), 2)
            .schedule_policy(AlwaysWeak)
            .run(move |ctx| {
                if ctx.tid() == 0 {
                    ctx.store_relaxed(a, 1);
                    ctx.store_relaxed(a, 2);
                    ctx.fence();
                    assert_eq!(ctx.load(a), 2);
                } else {
                    ctx.spin_until_ge(a, 2);
                    assert_eq!(ctx.load(a), 2);
                }
            })
            .unwrap();
    }

    #[test]
    fn weak_mode_with_strong_decisions_matches_default_engine() {
        // Budget-0 byte-identity: a policy that keeps every relaxed op
        // strong must reproduce the default heap engine's results exactly,
        // even for programs using the relaxed/fence API.
        let body = |ctx: &SimThread, a: Addr, flag: Addr| {
            if ctx.tid() == 0 {
                ctx.store_relaxed(a, 5);
                ctx.store(flag, 1);
            } else {
                ctx.spin_until_eq(flag, 1);
                assert_eq!(ctx.load_relaxed(a), 5);
            }
        };
        let run = |policy: bool| {
            let mut arena = Arena::new();
            let a = arena.alloc_padded_u32(64);
            let flag = arena.alloc_padded_u32(64);
            let mut b = SimBuilder::new(topo(), 2).seed(7);
            if policy {
                b = b.schedule_policy(MinTimePolicy);
            }
            let stats = b.run(move |ctx| body(ctx, a, flag)).unwrap();
            (stats.per_thread_time_ns().to_vec(), stats.schedule_hash())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn deadlock_report_carries_divergent_thread_view() {
        // t1 cached a == 0 before spinning for a value that never comes;
        // the committed word reaches 2. The report must show both: the
        // committed 2 and the 0 the thread itself last observed.
        let mut arena = Arena::new();
        let a = arena.alloc_padded_u32(64);
        let err = SimBuilder::new(topo(), 2)
            .schedule_policy(AlwaysWeak)
            .run(move |ctx| {
                if ctx.tid() == 0 {
                    ctx.compute_ns(500.0);
                    ctx.store(a, 2);
                } else {
                    assert_eq!(ctx.load(a), 0); // caches 0
                    ctx.spin_until_eq(a, 3); // never satisfied
                }
            })
            .unwrap_err();
        let SimError::Deadlock { waiters } = err else { panic!("expected deadlock: {err}") };
        assert_eq!(waiters.len(), 1);
        assert_eq!(waiters[0].last_value, 2);
        assert_eq!(waiters[0].view, 0);
        assert!(waiters[0].to_string().contains("saw 2, thread view 0"), "{}", waiters[0]);
    }

    #[test]
    fn cowr_own_committed_store_not_read_backward() {
        let mut arena = Arena::new();
        let a = arena.alloc_padded_u32(64);
        SimBuilder::new(topo(), 1)
            .schedule_policy(AlwaysWeak)
            .run(move |ctx| {
                assert_eq!(ctx.load(a), 0); // caches 0
                ctx.store(a, 5); // release store, committed
                assert_eq!(
                    ctx.load_relaxed(a),
                    5,
                    "CoWR: relaxed load after own committed store must not go backward"
                );
            })
            .unwrap();
    }
}

//! The discrete-event engine: deterministic lock-step execution of real
//! thread bodies with per-operation coherence costing.
//!
//! Simulated threads are OS threads; each [`SimThread`] operation is a
//! rendezvous with the engine, which processes exactly one operation at a
//! time, always the one whose issuing thread has the smallest virtual time
//! (ties broken by thread id). Host scheduling therefore cannot influence
//! results: a run is a pure function of `(topology, seed, program)`.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use armbar_topology::{CoreId, Topology};

use crate::arena::Addr;
use crate::error::{DeadlockWaiter, SimError, WaitKind};
use crate::line::{CoreSet, Line};
use crate::rng::SplitMix64;
use crate::stats::{CoherenceCounters, Mark, OpKind, RunStats};

/// Typed panic payload used to tear down worker threads when the simulation
/// aborts (deadlock, budget exhaustion). Recognized and swallowed by the
/// worker wrapper; never reported as a user panic.
struct AbortSignal;

/// Saturation point of the per-extra-sharer invalidation charge. Real
/// interconnects multicast invalidations; the serialization at the network
/// controller grows with the crowd only up to a point. Without this cap a
/// centralized barrier would cost Θ(P²·inv_ns), whereas measurements (the
/// paper's Figures 5–6) show near-linear growth from 32 to 64 threads.
const INV_FANOUT_CAP: usize = 16;

type Pred = Box<dyn Fn(u32) -> bool + Send>;

enum OpReq {
    Load(Addr),
    Store(Addr, u32),
    FetchAdd(Addr, u32),
    SpinUntil(Addr, Pred, WaitKind),
    /// Wait until every listed word is ≥ the epoch. The fetches of the
    /// involved lines overlap (memory-level parallelism), unlike a chain of
    /// `SpinUntil`s.
    SpinUntilAllGe(Vec<Addr>, u32),
    Compute(f64),
    Mark(u32),
    Now,
    /// Zero-cost snapshot of the machine-wide coherence counters.
    Counters,
}

enum Reply {
    Value(u32),
    TimeNs(f64),
    Counters(Box<CoherenceCounters>),
    Abort,
}

struct Slot {
    pending: Option<OpReq>,
    reply: Option<Reply>,
    finished: bool,
    parked: bool,
}

struct State {
    slots: Vec<Slot>,
    panics: Vec<(usize, String)>,
    aborted: bool,
}

struct Shared {
    mx: Mutex<State>,
    sched_cv: Condvar,
    thread_cv: Vec<Condvar>,
}

/// Handle through which a simulated thread performs memory operations.
///
/// Thread `tid` is pinned to core `tid` of the modeled machine, mirroring
/// the paper's methodology ("each thread is pinned to a distinct physical
/// core").
pub struct SimThread {
    shared: Arc<Shared>,
    tid: usize,
    nthreads: usize,
}

impl SimThread {
    /// This thread's id (= its core id).
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Number of threads participating in the simulation.
    #[inline]
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    fn call(&self, op: OpReq) -> Reply {
        let mut g = self.shared.mx.lock();
        if g.aborted {
            drop(g);
            std::panic::panic_any(AbortSignal);
        }
        debug_assert!(g.slots[self.tid].pending.is_none(), "op already pending");
        g.slots[self.tid].pending = Some(op);
        self.shared.sched_cv.notify_one();
        loop {
            if let Some(r) = g.slots[self.tid].reply.take() {
                if matches!(r, Reply::Abort) {
                    drop(g);
                    std::panic::panic_any(AbortSignal);
                }
                return r;
            }
            self.shared.thread_cv[self.tid].wait(&mut g);
        }
    }

    fn call_value(&self, op: OpReq) -> u32 {
        match self.call(op) {
            Reply::Value(v) => v,
            _ => unreachable!("engine sent a non-value reply to a value op"),
        }
    }

    /// Loads the 32-bit word at `addr`, paying `ε` on a local hit or `L_i`
    /// (plus contention) on a remote transfer.
    pub fn load(&self, addr: Addr) -> u32 {
        self.call_value(OpReq::Load(addr))
    }

    /// Stores to the word at `addr`, acquiring line ownership and paying
    /// the RFO fan-out to current sharers.
    pub fn store(&self, addr: Addr, value: u32) {
        self.call_value(OpReq::Store(addr, value));
    }

    /// Atomic wrapping fetch-add; returns the previous value. Serializes
    /// with other writes/RMWs on the same line.
    pub fn fetch_add(&self, addr: Addr, delta: u32) -> u32 {
        self.call_value(OpReq::FetchAdd(addr, delta))
    }

    /// Spins until `pred(value_at(addr))` holds; returns the satisfying
    /// value. While blocked, this thread holds a read copy of the line, so
    /// every intervening write pays invalidation costs to it — exactly the
    /// crowd effect of hardware spin-waiting.
    ///
    /// The predicate is opaque to deadlock diagnostics; prefer
    /// [`SimThread::spin_until_eq`] / [`SimThread::spin_until_ge`] when the
    /// condition has one of those shapes, so a hang reports its target.
    pub fn spin_until(&self, addr: Addr, pred: impl Fn(u32) -> bool + Send + 'static) -> u32 {
        self.call_value(OpReq::SpinUntil(addr, Box::new(pred), WaitKind::Pred))
    }

    /// Spins until the word at `addr` equals `value`. Identical costs to
    /// [`SimThread::spin_until`], but a deadlock report names the target.
    pub fn spin_until_eq(&self, addr: Addr, value: u32) -> u32 {
        self.call_value(OpReq::SpinUntil(addr, Box::new(move |v| v == value), WaitKind::Eq(value)))
    }

    /// Spins until the word at `addr` is ≥ `value` (monotonic epochs), with
    /// the target recorded for deadlock diagnostics.
    pub fn spin_until_ge(&self, addr: Addr, value: u32) -> u32 {
        self.call_value(OpReq::SpinUntil(addr, Box::new(move |v| v >= value), WaitKind::Ge(value)))
    }

    /// Spins until every word in `addrs` is ≥ `value`. A polling loop over
    /// independent flags keeps several line fetches in flight at once
    /// (memory-level parallelism), so on satisfaction the thread pays the
    /// *slowest* outstanding fetch plus a small pipelining charge per extra
    /// line — not the sum of all fetches. This is how a tournament winner
    /// with one-flag-per-line children observes all arrivals in roughly one
    /// transfer time.
    pub fn spin_until_all_ge(&self, addrs: &[Addr], value: u32) {
        if addrs.is_empty() {
            return;
        }
        self.call_value(OpReq::SpinUntilAllGe(addrs.to_vec(), value));
    }

    /// Advances this thread's clock by `ns` of pure local computation.
    pub fn compute_ns(&self, ns: f64) {
        assert!(ns >= 0.0 && ns.is_finite(), "bad compute duration {ns}");
        self.call_value(OpReq::Compute(ns));
    }

    /// Records a timestamp with a user label (see `RunStats::marks`).
    pub fn mark(&self, label: u32) {
        self.call_value(OpReq::Mark(label));
    }

    /// This thread's current virtual time in ns.
    pub fn now_ns(&self) -> f64 {
        match self.call(OpReq::Now) {
            Reply::TimeNs(t) => t,
            _ => unreachable!(),
        }
    }

    /// Machine-wide coherence-op counters accumulated so far, summed over
    /// all threads. Free: advances no virtual time and touches no lines, so
    /// instrumented and uninstrumented runs report identical latencies.
    ///
    /// Because threads progress at different virtual times, a snapshot taken
    /// right after a barrier episode may include a few operations of threads
    /// that already raced into the next episode; per-episode deltas are
    /// therefore attributions, exact only at full-run granularity.
    pub fn coherence_counters(&self) -> CoherenceCounters {
        match self.call(OpReq::Counters) {
            Reply::Counters(c) => *c,
            _ => unreachable!("engine sent a non-counter reply to a counter op"),
        }
    }
}

enum WaitCond {
    /// Single-address predicate wait.
    Pred(Pred),
    /// All listed addresses ≥ epoch (batched, MLP-overlapped).
    AllGe(u32),
}

struct Waiter {
    tid: usize,
    addrs: Vec<Addr>,
    cond: WaitCond,
    /// Reporting-only copy of the wait condition for deadlock diagnostics.
    kind: WaitKind,
}

/// Configures and launches simulations.
pub struct SimBuilder {
    topo: Arc<Topology>,
    nthreads: usize,
    seed: u64,
    op_budget: u64,
}

impl SimBuilder {
    /// Prepares a simulation of `nthreads` threads on `topo` (thread `i`
    /// pinned to core `i`).
    ///
    /// # Panics
    /// Panics when `nthreads` is zero or exceeds the core count.
    pub fn new(topo: Arc<Topology>, nthreads: usize) -> Self {
        assert!(nthreads >= 1, "need at least one thread");
        assert!(
            nthreads <= topo.num_cores(),
            "{} threads exceed the {} cores of {}",
            nthreads,
            topo.num_cores(),
            topo.name()
        );
        assert!(topo.num_cores() <= 128, "simulator supports at most 128 cores");
        Self { topo, nthreads, seed: 0x5EED, op_budget: 200_000_000 }
    }

    /// Sets the jitter seed (default `0x5EED`). Runs with equal seeds are
    /// bit-identical.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the operation budget guarding against live-lock (default 2·10⁸).
    pub fn op_budget(mut self, ops: u64) -> Self {
        assert!(ops > 0);
        self.op_budget = ops;
        self
    }

    /// Runs `body` on every simulated thread to completion and returns the
    /// run statistics, or an error on deadlock / live-lock / panic.
    pub fn run(
        self,
        body: impl Fn(&SimThread) + Send + Sync + 'static,
    ) -> Result<RunStats, SimError> {
        silence_abort_panics();
        let nthreads = self.nthreads;
        let shared = Arc::new(Shared {
            mx: Mutex::new(State {
                slots: (0..nthreads)
                    .map(|_| Slot { pending: None, reply: None, finished: false, parked: false })
                    .collect(),
                panics: Vec::new(),
                aborted: false,
            }),
            sched_cv: Condvar::new(),
            thread_cv: (0..nthreads).map(|_| Condvar::new()).collect(),
        });
        let body = Arc::new(body);

        let mut handles = Vec::with_capacity(nthreads);
        for tid in 0..nthreads {
            let shared = Arc::clone(&shared);
            let body = Arc::clone(&body);
            handles.push(std::thread::spawn(move || {
                let ctx = SimThread { shared: Arc::clone(&shared), tid, nthreads };
                let result = catch_unwind(AssertUnwindSafe(|| body(&ctx)));
                let mut g = shared.mx.lock();
                g.slots[tid].finished = true;
                if let Err(p) = result {
                    // NB: `&*p` reborrows the payload itself; `&p` would
                    // unsize the Box and defeat the downcasts.
                    if !(*p).is::<AbortSignal>() {
                        g.panics.push((tid, panic_message(&*p)));
                    }
                }
                shared.sched_cv.notify_one();
            }));
        }

        let mut engine = Engine {
            topo: self.topo,
            time: vec![0.0; nthreads],
            lines: HashMap::new(),
            values: HashMap::new(),
            waiters: Vec::new(),
            stats: RunStats::new(nthreads),
            rng: SplitMix64::new(self.seed),
            ops: 0,
            noc_available_at: 0.0,
        };

        let outcome = engine.drive(&shared, self.op_budget);

        for h in handles {
            let _ = h.join();
        }

        let panics = {
            let g = shared.mx.lock();
            g.panics.clone()
        };
        if let Some((tid, message)) = panics.into_iter().next() {
            return Err(SimError::ThreadPanic { tid, message });
        }
        outcome?;

        for tid in 0..nthreads {
            engine.stats.set_thread_time(tid, engine.time[tid]);
        }
        Ok(engine.stats)
    }
}

/// Installs (once per process) a panic hook that suppresses the default
/// stderr report for [`AbortSignal`] tear-down panics — they are an internal
/// control-flow mechanism, not failures — while delegating everything else
/// to the previous hook.
fn silence_abort_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<AbortSignal>() {
                prev(info);
            }
        }));
    });
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

struct Engine {
    topo: Arc<Topology>,
    time: Vec<f64>,
    lines: HashMap<u32, Line>,
    values: HashMap<Addr, u32>,
    waiters: Vec<Waiter>,
    stats: RunStats,
    rng: SplitMix64,
    ops: u64,
    /// Machine-wide interconnect serialization point: each remote transfer
    /// occupies the network for `noc_ns`, so all-to-all communication
    /// phases (dissemination) queue here while O(log P)-message tree phases
    /// barely notice.
    noc_available_at: f64,
}

impl Engine {
    fn drive(&mut self, shared: &Shared, op_budget: u64) -> Result<(), SimError> {
        let mut g = shared.mx.lock();
        loop {
            if !g.panics.is_empty() {
                // A body panicked (surfaced by the caller as ThreadPanic).
                // Tear everyone else down — parked waiters AND threads that
                // are still running or mid-rendezvous — so the caller can
                // join the workers.
                let waiters = self.drain_waiter_info();
                let _ = waiters;
                self.abort(&mut g, shared);
                return Ok(());
            }
            if g.slots.iter().all(|s| s.finished) {
                // Completed. Wake any stragglers parked in spin_until: with
                // peers gone they can never be satisfied; abort them.
                if g.slots.iter().any(|s| s.parked) {
                    let waiters = self.drain_waiter_info();
                    self.abort(&mut g, shared);
                    return Err(SimError::Deadlock { waiters });
                }
                return Ok(());
            }

            let all_settled = g.slots.iter().all(|s| s.finished || s.parked || s.pending.is_some());
            if !all_settled {
                shared.sched_cv.wait(&mut g);
                continue;
            }

            let runnable = (0..g.slots.len())
                .filter(|&t| g.slots[t].pending.is_some())
                .min_by(|&a, &b| self.time[a].total_cmp(&self.time[b]).then(a.cmp(&b)));

            let Some(tid) = runnable else {
                // Everyone alive is parked: deadlock.
                let waiters = self.drain_waiter_info();
                self.abort(&mut g, shared);
                return Err(SimError::Deadlock { waiters });
            };

            self.ops += 1;
            if self.ops > op_budget {
                self.abort(&mut g, shared);
                return Err(SimError::OpBudgetExhausted { ops: self.ops });
            }

            let op = g.slots[tid].pending.take().expect("pending op vanished");
            self.step(&mut g, shared, tid, op);
        }
    }

    fn drain_waiter_info(&mut self) -> Vec<DeadlockWaiter> {
        let values = &self.values;
        let value_of = |a: Addr| *values.get(&a).unwrap_or(&0);
        self.waiters
            .drain(..)
            .map(|w| {
                // For batched waits, point at the first flag still below the
                // epoch — that is the arrival the waiter never observed.
                let addr = match w.kind {
                    WaitKind::AllGe(epoch) => {
                        w.addrs.iter().copied().find(|&a| value_of(a) < epoch).unwrap_or(w.addrs[0])
                    }
                    _ => w.addrs[0],
                };
                DeadlockWaiter { tid: w.tid, addr, kind: w.kind, last_value: value_of(addr) }
            })
            .collect()
    }

    fn abort(&mut self, g: &mut parking_lot::MutexGuard<'_, State>, shared: &Shared) {
        g.aborted = true;
        for t in 0..g.slots.len() {
            if !g.slots[t].finished {
                g.slots[t].pending = None;
                g.slots[t].parked = false;
                g.slots[t].reply = Some(Reply::Abort);
                shared.thread_cv[t].notify_one();
            }
        }
        // Wait for every worker to acknowledge (mark itself finished) so the
        // engine's caller can join them without racing on the state.
        while !g.slots.iter().all(|s| s.finished) {
            shared.sched_cv.wait(g);
        }
    }

    fn reply(
        &self,
        g: &mut parking_lot::MutexGuard<'_, State>,
        shared: &Shared,
        tid: usize,
        r: Reply,
    ) {
        g.slots[tid].reply = Some(r);
        g.slots[tid].parked = false;
        shared.thread_cv[tid].notify_one();
    }

    fn value(&self, addr: Addr) -> u32 {
        *self.values.get(&addr).unwrap_or(&0)
    }

    /// Cost of acquiring ownership for a write by `t`, and whether it was
    /// remote. Does not include the RFO fan-out.
    fn write_transfer(&self, t: CoreId, line: &Line) -> (f64, bool) {
        match line.owner {
            Some(o) if o == t => (self.topo.epsilon_ns(), false),
            Some(o) => (self.topo.latency_ns(t, o), true),
            None if line.sharers.is_empty() => (self.topo.epsilon_ns(), false),
            None => {
                let l = line
                    .sharers
                    .iter()
                    .map(|s| self.topo.latency_ns(t, s))
                    .fold(f64::INFINITY, f64::min);
                (l, true)
            }
        }
    }

    /// RFO fan-out cost for a write by `t` to a line with the given sharer
    /// set: the farthest invalidation `α_i·L_i` plus the per-extra-sharer
    /// serialization charge at the network controller.
    fn rfo_cost(&self, t: CoreId, sharers: &CoreSet) -> f64 {
        let mut n_other = 0usize;
        let mut worst = 0.0f64;
        for s in sharers.iter() {
            if s == t {
                continue;
            }
            n_other += 1;
            worst = worst.max(self.topo.rfo_ns(t, s));
        }
        if n_other == 0 {
            0.0
        } else {
            worst + self.topo.coherence().inv_ns * (n_other - 1).min(INV_FANOUT_CAP) as f64
        }
    }

    /// Latency to the farthest core currently holding a copy (owner or
    /// sharer), excluding `t` itself. An exclusive-ownership acquisition
    /// cannot commit before the farthest holder has acknowledged, so this
    /// bounds the transfer term of a write from below — it is what makes a
    /// write to a line whose *spinning reader* sits across the machine cost
    /// the paper's `W_R = (1+α)·L_far` even when the previous writer was
    /// nearby.
    fn farthest_holder_latency(&self, t: CoreId, line: &Line) -> f64 {
        let mut worst = 0.0f64;
        if let Some(o) = line.owner {
            if o != t {
                worst = worst.max(self.topo.latency_ns(t, o));
            }
        }
        for s in line.sharers.iter() {
            if s != t {
                worst = worst.max(self.topo.latency_ns(t, s));
            }
        }
        worst
    }

    fn jitter(&mut self) -> f64 {
        let amp = self.topo.coherence().jitter;
        self.rng.jitter_factor(amp)
    }

    /// Charges one remote transaction to the shared interconnect starting
    /// no earlier than `start`; returns the queueing delay incurred.
    fn noc_queue(&mut self, start: f64) -> f64 {
        let nu = self.topo.coherence().noc_ns;
        if nu == 0.0 {
            return 0.0;
        }
        let begin = self.noc_available_at.max(start);
        self.noc_available_at = begin + nu;
        begin - start
    }

    fn step(
        &mut self,
        g: &mut parking_lot::MutexGuard<'_, State>,
        shared: &Shared,
        tid: usize,
        op: OpReq,
    ) {
        // Memory ops that hit a busy line (a write in flight) do not jump
        // the queue: the thread's clock advances to the line's availability
        // point and the op is re-posted. This interleaves spin-loop
        // registrations with queued RMWs in true time order — without it,
        // all arrivals of a centralized barrier would be serviced before
        // any spinner subscribes to the line, and the invalidation-crowd
        // cost that dominates SENSE on many-cores would vanish.
        let busy_until = match &op {
            OpReq::Load(a)
            | OpReq::Store(a, _)
            | OpReq::FetchAdd(a, _)
            | OpReq::SpinUntil(a, _, _) => {
                let key = *a / self.topo.cacheline_bytes() as u32;
                self.lines.entry(key).or_default().available_at
            }
            OpReq::SpinUntilAllGe(addrs, _) => {
                let lb = self.topo.cacheline_bytes() as u32;
                addrs
                    .iter()
                    .map(|&a| self.lines.entry(a / lb).or_default().available_at)
                    .fold(0.0, f64::max)
            }
            _ => 0.0,
        };
        if busy_until > self.time[tid] {
            let is_write = matches!(op, OpReq::Store(..) | OpReq::FetchAdd(..));
            self.stats.record_stall(tid, is_write, busy_until - self.time[tid]);
            self.time[tid] = busy_until;
            g.slots[tid].pending = Some(op);
            return;
        }

        match op {
            OpReq::Load(addr) => {
                let v = self.value(addr);
                self.do_read(tid, addr);
                self.reply(g, shared, tid, Reply::Value(v));
            }
            OpReq::Store(addr, v) => {
                self.do_write(tid, addr, v, false);
                self.wake_waiters(g, shared, addr, tid);
                self.reply(g, shared, tid, Reply::Value(0));
            }
            OpReq::FetchAdd(addr, d) => {
                let old = self.value(addr);
                self.do_write(tid, addr, old.wrapping_add(d), true);
                self.wake_waiters(g, shared, addr, tid);
                self.reply(g, shared, tid, Reply::Value(old));
            }
            OpReq::SpinUntil(addr, pred, kind) => {
                let v = self.value(addr);
                self.do_read(tid, addr);
                if pred(v) {
                    self.reply(g, shared, tid, Reply::Value(v));
                } else {
                    g.slots[tid].parked = true;
                    self.waiters.push(Waiter {
                        tid,
                        addrs: vec![addr],
                        cond: WaitCond::Pred(pred),
                        kind,
                    });
                }
            }
            OpReq::SpinUntilAllGe(addrs, epoch) => {
                self.do_batched_probe(tid, &addrs);
                if self.all_ge(&addrs, epoch) {
                    self.reply(g, shared, tid, Reply::Value(epoch));
                } else {
                    g.slots[tid].parked = true;
                    self.waiters.push(Waiter {
                        tid,
                        addrs,
                        cond: WaitCond::AllGe(epoch),
                        kind: WaitKind::AllGe(epoch),
                    });
                }
            }
            OpReq::Compute(ns) => {
                self.time[tid] += ns;
                self.stats.count_op(OpKind::Compute);
                self.reply(g, shared, tid, Reply::Value(0));
            }
            OpReq::Mark(label) => {
                self.stats.push_mark(Mark { tid, label, time_ns: self.time[tid] });
                self.reply(g, shared, tid, Reply::Value(0));
            }
            OpReq::Now => {
                let t = self.time[tid];
                self.reply(g, shared, tid, Reply::TimeNs(t));
            }
            OpReq::Counters => {
                let total = self.stats.coherence().total();
                self.reply(g, shared, tid, Reply::Counters(Box::new(total)));
            }
        }
    }

    fn do_read(&mut self, tid: usize, addr: Addr) {
        let now = self.time[tid];
        let eps = self.topo.epsilon_ns();
        let read_c = self.topo.coherence().read_contention_ns;
        let key = addr / self.topo.cacheline_bytes() as u32;
        let line = self.lines.entry(key).or_default();
        if line.sharers.contains(tid) {
            self.time[tid] = now + eps;
            self.stats.record_read(tid, key, true, false);
        } else {
            let start = now.max(line.available_at);
            let src = if let Some(o) = line.owner {
                self.topo.latency_ns(tid, o)
            } else if !line.sharers.is_empty() {
                line.sharers
                    .iter()
                    .map(|s| self.topo.latency_ns(tid, s))
                    .fold(f64::INFINITY, f64::min)
            } else {
                self.topo.max_latency_ns()
            };
            let queue = self.noc_queue(start);
            let line = self.lines.entry(key).or_default();
            line.readers_since_write += 1;
            let contended = line.readers_since_write > 1;
            let contention = read_c * (line.readers_since_write - 1) as f64;
            line.sharers.insert(tid);
            let jf = self.jitter();
            self.time[tid] = start + queue + (src + contention) * jf;
            self.stats.record_read(tid, key, false, contended);
        }
    }

    fn all_ge(&self, addrs: &[Addr], epoch: u32) -> bool {
        addrs.iter().all(|&a| self.value(a) >= epoch)
    }

    /// Initial probe of a batched wait: fetch every line the thread does
    /// not already share, overlapping the misses — pay the slowest fetch in
    /// full and a pipelining fraction of the rest.
    fn do_batched_probe(&mut self, tid: usize, addrs: &[Addr]) {
        /// Fraction of each additional overlapped miss that still shows up
        /// on the critical path (finite load-queue bandwidth).
        const MLP_OVERLAP: f64 = 0.3;
        let lb = self.topo.cacheline_bytes() as u32;
        let read_c = self.topo.coherence().read_contention_ns;
        let now = self.time[tid];
        let mut max_l = 0.0f64;
        let mut sum_l = 0.0f64;
        let mut fetched = 0usize;
        for &a in addrs {
            let key = a / lb;
            let snapshot = self.lines.entry(key).or_default().clone();
            if snapshot.sharers.contains(tid) {
                continue;
            }
            let src = if let Some(o) = snapshot.owner {
                self.topo.latency_ns(tid, o)
            } else if !snapshot.sharers.is_empty() {
                snapshot
                    .sharers
                    .iter()
                    .map(|s| self.topo.latency_ns(tid, s))
                    .fold(f64::INFINITY, f64::min)
            } else {
                self.topo.max_latency_ns()
            };
            let queue = self.noc_queue(now);
            let line = self.lines.entry(key).or_default();
            line.readers_since_write += 1;
            let contended = line.readers_since_write > 1;
            let contention = read_c * (line.readers_since_write - 1) as f64;
            line.sharers.insert(tid);
            max_l = max_l.max(src + contention + queue);
            sum_l += src + contention + queue;
            fetched += 1;
            self.stats.record_read(tid, key, false, contended);
        }
        let jf = self.jitter();
        let cost = if fetched == 0 {
            self.topo.epsilon_ns()
        } else {
            max_l + MLP_OVERLAP * (sum_l - max_l)
        };
        self.time[tid] = now + cost * jf;
    }

    fn do_write(&mut self, tid: usize, addr: Addr, new_value: u32, is_rmw: bool) {
        let now = self.time[tid];
        let key = addr / self.topo.cacheline_bytes() as u32;
        let line_snapshot = self.lines.entry(key).or_default().clone();
        let start = now.max(line_snapshot.available_at);
        let (near_transfer, remote) = self.write_transfer(tid, &line_snapshot);
        let transfer = near_transfer.max(self.farthest_holder_latency(tid, &line_snapshot));
        let sharers_snapshot = line_snapshot.sharers;
        let rfo = self.rfo_cost(tid, &sharers_snapshot);
        // Atomic RMWs carry a surcharge beyond a plain store: on ARMv8 the
        // far-atomic / exclusive-monitor handshake adds another partial
        // round trip. This is the cost the paper credits static tournament
        // schemes for avoiding ("no overhead introduced by atomic
        // instructions of a dynamic scheme", Section V-A).
        let rmw_alu = if is_rmw { self.topo.epsilon_ns() + 0.5 * transfer } else { 0.0 };
        // Remote transfers occupy the shared interconnect; local writes to
        // an exclusively-held line do not.
        let queue = if remote || sharers_snapshot.iter().any(|s| s != tid) {
            self.noc_queue(start)
        } else {
            0.0
        };
        let jf = self.jitter();
        let end = start + queue + (transfer + rfo + rmw_alu) * jf;

        let line = self.lines.entry(key).or_default();
        line.owner = Some(tid);
        line.sharers.clear();
        line.sharers.insert(tid);
        line.available_at = end;
        line.readers_since_write = 0;

        self.values.insert(addr, new_value);
        self.time[tid] = end;
        let invalidated = sharers_snapshot.iter().filter(|&s| s != tid).count();
        self.stats.record_write(tid, key, remote, invalidated);
    }

    /// After a write to `addr`'s line completes: waiters whose predicate is
    /// now satisfied wake (paying the transfer from the writer plus the
    /// staggered reader-contention term); unsatisfied waiters on the same
    /// line immediately re-fetch it (they are spinning), so they rejoin the
    /// sharer set and future writes keep paying invalidation costs to them.
    fn wake_waiters(
        &mut self,
        g: &mut parking_lot::MutexGuard<'_, State>,
        shared: &Shared,
        addr: Addr,
        writer: usize,
    ) {
        let key = addr / self.topo.cacheline_bytes() as u32;
        let end = self.time[writer];
        let read_c = self.topo.coherence().read_contention_ns;

        let lb = self.topo.cacheline_bytes() as u32;
        let mut woken = 0usize;
        let mut remaining = Vec::with_capacity(self.waiters.len());
        let waiters = std::mem::take(&mut self.waiters);
        for w in waiters {
            if !w.addrs.iter().any(|&a| a / lb == key) {
                remaining.push(w);
                continue;
            }
            let satisfied = match &w.cond {
                WaitCond::Pred(pred) => pred(self.value(w.addrs[0])),
                WaitCond::AllGe(epoch) => self.all_ge(&w.addrs, *epoch),
            };
            // Whether woken or still spinning, the waiter re-fetches the
            // written line immediately, rejoining the sharer set so that
            // subsequent writes keep paying invalidation costs to it.
            let line = self.lines.entry(key).or_default();
            line.sharers.insert(w.tid);
            line.readers_since_write += 1;
            if satisfied {
                let lat = self.topo.latency_ns(w.tid, writer);
                // A batched waiter re-fetched every other flag line as its
                // writers dirtied it; those (pipelined) refetches are paid
                // now, as the overlap fraction of each line's pull from its
                // current owner. Without this, a flat 64-way group would
                // observe 63 arrivals for the price of one.
                let mlp_extra: f64 = match &w.cond {
                    WaitCond::Pred(_) => 0.0,
                    WaitCond::AllGe(_) => w
                        .addrs
                        .iter()
                        .filter(|&&a| a / lb != key)
                        .map(|&a| {
                            self.lines
                                .get(&(a / lb))
                                .and_then(|l| l.owner)
                                .map_or(0.0, |o| 0.3 * self.topo.latency_ns(w.tid, o))
                        })
                        .sum(),
                };
                let jf = self.jitter();
                self.time[w.tid] = end + (lat + mlp_extra + read_c * woken as f64) * jf;
                woken += 1;
                let reply_value = self.value(w.addrs[0]);
                self.stats.record_spin_wakeup(w.tid);
                self.reply(g, shared, w.tid, Reply::Value(reply_value));
            } else {
                remaining.push(w);
            }
        }
        self.waiters = remaining;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;
    use armbar_topology::TopologyBuilder;

    /// 8 cores, clusters of 4; zero jitter, known constants:
    /// ε = 1, L0 = 10 (α .5), L1 = 40 (α .5), inv = 2, read contention = 3.
    fn topo() -> Arc<Topology> {
        Arc::new(
            TopologyBuilder::new("test8", 8)
                .epsilon_ns(1.0)
                .layer("near", 10.0, 0.5)
                .layer("far", 40.0, 0.5)
                .hierarchy(&[4])
                .coherence(2.0, 3.0, 0.0)
                .build(),
        )
    }

    #[test]
    fn single_thread_local_costs() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let stats = SimBuilder::new(topo(), 1)
            .run(move |ctx| {
                ctx.store(a, 7); // cold line, local: ε = 1
                assert_eq!(ctx.load(a), 7); // local hit: ε = 1
                ctx.compute_ns(5.0);
            })
            .unwrap();
        assert_eq!(stats.max_time_ns(), 7.0);
        assert_eq!(stats.ops(OpKind::LocalWrite), 1);
        assert_eq!(stats.ops(OpKind::LocalRead), 1);
    }

    #[test]
    fn remote_read_pays_layer_latency() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        // Thread 0 writes (owner), thread 1 (same cluster) then reads.
        let stats = SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                if ctx.tid() == 0 {
                    // Compute first so t1 parks before the store happens.
                    ctx.compute_ns(100.0);
                    ctx.store(a, 1);
                } else {
                    ctx.spin_until(a, |v| v == 1);
                    // After waking, the next read is a local hit.
                    let t0 = ctx.now_ns();
                    ctx.load(a);
                    assert_eq!(ctx.now_ns() - t0, 1.0);
                }
            })
            .unwrap();
        // t1's initial read of the cold line makes it a sharer. t0's store
        // at t=100 then transfers from that sharer (L0 = 10) and pays RFO to
        // it (α·L0 = 5), ending at 115. t1 wakes at 115 + L0 = 125 and its
        // local re-read adds ε → 126.
        assert_eq!(stats.per_thread_time_ns()[1], 126.0);
        assert_eq!(stats.ops(OpKind::SpinWakeup), 1);
    }

    #[test]
    fn cross_cluster_read_costs_more() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let stats = SimBuilder::new(topo(), 5)
            .run(move |ctx| match ctx.tid() {
                0 => ctx.store(a, 1),
                4 => {
                    // Core 4 is in the other cluster: wake pays L1 = 40.
                    ctx.spin_until(a, |v| v == 1);
                }
                _ => {}
            })
            .unwrap();
        assert_eq!(stats.per_thread_time_ns()[4], 1.0 + 40.0);
    }

    #[test]
    fn writes_to_one_line_serialize() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        // Both threads fetch_add the same counter at t=0. The winner (t0)
        // runs first (tie broken by tid): cold local write ε + RMW
        // surcharge (ε + 0.5·ε) = 2.5. t1 must wait for available_at=2.5,
        // then pays L0 transfer (10) + RFO to t0's copy (α·L0 = 5) + RMW
        // surcharge (ε + 0.5·10 = 6) = 21 → ends at 23.5.
        let stats = SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                ctx.fetch_add(a, 1);
            })
            .unwrap();
        assert_eq!(stats.per_thread_time_ns()[0], 2.5);
        assert_eq!(stats.per_thread_time_ns()[1], 23.5);
        assert_eq!(stats.ops(OpKind::RemoteWrite), 1);
    }

    #[test]
    fn fetch_add_returns_old_and_accumulates() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let stats = SimBuilder::new(topo(), 4)
            .run(move |ctx| {
                let old = ctx.fetch_add(a, 1);
                assert!(old < 4);
                if old == 3 {
                    // Last arriver observes the full count.
                    assert_eq!(ctx.load(a), 4);
                }
            })
            .unwrap();
        assert!(stats.total_mem_ops() >= 4);
    }

    #[test]
    fn spinner_false_sharing_charges_writer() {
        let mut arena = Arena::new();
        let base = arena.alloc_u32_array(2); // two words, same line
        let w0 = base;
        let w1 = base + 4;
        // t1 spins on word 1. t0 writes word 0 (same line): must pay RFO to
        // the spinning t1 even though the value t1 wants never changes.
        let stats = SimBuilder::new(topo(), 3)
            .run(move |ctx| match ctx.tid() {
                0 => {
                    ctx.compute_ns(100.0); // let t1 get parked first
                    let t0 = ctx.now_ns();
                    ctx.store(w0, 9);
                    let dt = ctx.now_ns() - t0;
                    // Ownership transfer: t1 read the cold line and became a
                    // sharer (no owner); transfer = L0 (10, remote) + RFO to
                    // t1 (α·L0 = 5) = 15.
                    assert_eq!(dt, 15.0);
                    ctx.store(w1, 1); // release the spinner
                }
                1 => {
                    ctx.spin_until(w1, |v| v == 1);
                }
                _ => {}
            })
            .unwrap();
        assert!(stats.max_time_ns() > 100.0);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let err = SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                // Nobody ever writes 1: both threads block forever.
                ctx.spin_until(a, |v| v == 1);
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { waiters } => {
                assert_eq!(waiters.len(), 2);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn straggler_spinner_is_a_deadlock() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        // t0 finishes immediately; t1 spins forever.
        let err = SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                if ctx.tid() == 1 {
                    ctx.spin_until(a, |v| v == 1);
                }
            })
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn deadlock_reports_wait_kind_and_target() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let b = arena.alloc_padded_u32(64);
        let err = SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                if ctx.tid() == 0 {
                    ctx.spin_until_eq(a, 3);
                } else {
                    ctx.spin_until_ge(b, 7);
                }
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { waiters } => {
                let w0 = waiters.iter().find(|w| w.tid == 0).unwrap();
                assert_eq!((w0.addr, w0.kind, w0.last_value), (a, WaitKind::Eq(3), 0));
                let w1 = waiters.iter().find(|w| w.tid == 1).unwrap();
                assert_eq!((w1.addr, w1.kind), (b, WaitKind::Ge(7)));
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn batched_deadlock_points_at_the_missing_flag() {
        let mut arena = Arena::new();
        let a = arena.alloc_padded_u32(64);
        let b = arena.alloc_padded_u32(64);
        let err = SimBuilder::new(topo(), 1)
            .run(move |ctx| {
                ctx.store(a, 1); // a satisfied, b never written
                ctx.spin_until_all_ge(&[a, b], 1);
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { waiters } => {
                assert_eq!(waiters.len(), 1);
                assert_eq!(waiters[0].addr, b, "must name the flag still unsatisfied");
                assert_eq!(waiters[0].kind, WaitKind::AllGe(1));
                assert_eq!(waiters[0].last_value, 0);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn op_budget_catches_livelock() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let err = SimBuilder::new(topo(), 1)
            .op_budget(1000)
            .run(move |ctx| loop {
                ctx.store(a, 1);
            })
            .unwrap_err();
        assert!(matches!(err, SimError::OpBudgetExhausted { .. }));
    }

    #[test]
    fn thread_panic_is_reported() {
        let err = SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                if ctx.tid() == 1 {
                    panic!("intentional test failure");
                }
            })
            .unwrap_err();
        match err {
            SimError::ThreadPanic { tid, message } => {
                assert_eq!(tid, 1);
                assert!(message.contains("intentional"));
            }
            other => panic!("expected panic error, got {other}"),
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let jittery = Arc::new(
            TopologyBuilder::new("jitter8", 8)
                .epsilon_ns(1.0)
                .layer("near", 10.0, 0.5)
                .layer("far", 40.0, 0.5)
                .hierarchy(&[4])
                .coherence(2.0, 3.0, 0.2)
                .build(),
        );
        let run = |seed: u64| {
            let mut arena = Arena::new();
            let a = arena.alloc_u32();
            SimBuilder::new(Arc::clone(&jittery), 8)
                .seed(seed)
                .run(move |ctx| {
                    for _ in 0..50 {
                        ctx.fetch_add(a, 1);
                        ctx.compute_ns(3.0);
                    }
                })
                .unwrap()
                .max_time_ns()
        };
        assert_eq!(run(1), run(1));
        assert_eq!(run(2), run(2));
        assert_ne!(run(1), run(3), "different seeds should jitter differently");
    }

    #[test]
    fn marks_are_recorded_in_time() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let stats = SimBuilder::new(topo(), 2)
            .run(move |ctx| {
                ctx.mark(1);
                if ctx.tid() == 0 {
                    ctx.store(a, 1);
                } else {
                    ctx.spin_until(a, |v| v == 1);
                }
                ctx.mark(2);
            })
            .unwrap();
        let m1 = stats.last_mark_time(1).unwrap();
        let m2 = stats.last_mark_time(2).unwrap();
        assert_eq!(m1, 0.0);
        assert!(m2 > 0.0);
    }

    #[test]
    fn many_threads_complete() {
        let t = Arc::new(
            TopologyBuilder::new("wide", 64)
                .epsilon_ns(1.0)
                .layer("near", 10.0, 0.5)
                .layer("far", 40.0, 0.5)
                .hierarchy(&[8])
                .coherence(2.0, 1.0, 0.0)
                .build(),
        );
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let g = arena.alloc_padded_u32(64);
        let stats = SimBuilder::new(t, 64)
            .run(move |ctx| {
                // A hand-rolled centralized barrier episode.
                let prev = ctx.fetch_add(a, 1);
                if prev == 63 {
                    ctx.store(g, 1);
                } else {
                    ctx.spin_until(g, |v| v == 1);
                }
            })
            .unwrap();
        assert_eq!(stats.ops(OpKind::SpinWakeup), 63);
        assert!(stats.max_time_ns() > 0.0);
    }

    #[test]
    fn coherence_counters_capture_rfo_and_stalls() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let g64 = arena.alloc_padded_u32(64);
        // Four threads hammer one counter, then rendezvous on a flag: the
        // RMWs serialize (write stalls), the flag write invalidates the
        // spinners' copies (RFO fan-out), and the spinners wake remotely.
        let stats = SimBuilder::new(topo(), 4)
            .run(move |ctx| {
                let prev = ctx.fetch_add(a, 1);
                if prev == 3 {
                    ctx.store(g64, 1);
                } else {
                    ctx.spin_until(g64, |v| v == 1);
                }
            })
            .unwrap();
        let total = stats.coherence().total();
        // Aggregate counters must agree with the legacy op-kind counts.
        assert_eq!(total.local_reads, stats.ops(OpKind::LocalRead));
        assert_eq!(total.remote_reads, stats.ops(OpKind::RemoteRead));
        assert_eq!(
            total.local_writes + total.remote_writes,
            stats.ops(OpKind::LocalWrite) + stats.ops(OpKind::RemoteWrite)
        );
        assert_eq!(total.spin_wakeups, 3);
        // Three of the four RMWs found the counter line busy.
        assert!(total.write_stalls >= 3, "stalls: {total:?}");
        assert!(total.write_stall_ns > 0.0);
        // The release store invalidated the three spinners' copies.
        assert!(total.rfo_invalidations >= 3, "fan-out: {total:?}");
        // Per-thread view: the thread that never owned the counter line
        // first must have paid a remote write.
        assert!(stats.coherence().per_thread().iter().any(|c| c.remote_writes > 0));
    }

    #[test]
    fn live_counter_snapshot_is_free_and_monotone() {
        let mut arena = Arena::new();
        let a = arena.alloc_u32();
        let stats = SimBuilder::new(topo(), 1)
            .run(move |ctx| {
                let before = ctx.coherence_counters();
                let t0 = ctx.now_ns();
                let mid = ctx.coherence_counters();
                assert_eq!(ctx.now_ns(), t0, "snapshot must cost no virtual time");
                ctx.store(a, 1);
                ctx.load(a);
                let after = ctx.coherence_counters();
                let d = after.delta_since(&mid);
                assert_eq!(d.local_writes, 1);
                assert_eq!(d.local_reads, 1);
                assert_eq!(before.total_mem_ops(), 0);
            })
            .unwrap();
        assert_eq!(stats.coherence().total().total_mem_ops(), 2);
    }

    #[test]
    fn reader_contention_staggers_wakeups() {
        let mut arena = Arena::new();
        let g = arena.alloc_padded_u32(64);
        let stats = SimBuilder::new(topo(), 5)
            .run(move |ctx| {
                if ctx.tid() == 0 {
                    ctx.compute_ns(50.0);
                    ctx.store(g, 1);
                } else {
                    ctx.spin_until(g, |v| v == 1);
                }
            })
            .unwrap();
        // Waiters 1..4 wake at end + L + c·j; with L identical within the
        // cluster the wake times must be strictly increasing for same-layer
        // waiters and all distinct here.
        let mut times: Vec<f64> = stats.per_thread_time_ns()[1..].to_vec();
        let orig = times.clone();
        times.sort_by(f64::total_cmp);
        times.dedup();
        assert_eq!(times.len(), 4, "staggered wakeups must differ: {orig:?}");
    }
}

//! Episode-reusable simulation teams.
//!
//! Spawning P OS threads per [`SimBuilder::run`] call dominated the cost of
//! short episodes — an experiment sweep at quick scale launches tens of
//! thousands of simulations of a few hundred virtual operations each. A
//! [`SimTeam`] spawns its workers **once** and replays them across episodes:
//! each run publishes a fresh episode (shared engine state + body) under an
//! epoch counter, the participating workers pick it up, and the driver
//! blocks until the episode's engine declares it finished.
//!
//! Teams are deterministic by construction: every episode gets a fresh
//! engine [`State`](crate::engine), so which OS threads execute the bodies
//! is invisible to the model. A failed episode (deadlock, budget, panic)
//! tears down via the engine's abort protocol — the worker catches the
//! internal unwind and survives to serve the next episode.
//!
//! [`SimBuilder::run`] routes through a per-host-thread *ambient* team
//! automatically, so `epcc`, the experiments runner, the fault harness and
//! the tracing CLI all reuse workers without any call-site changes. Set
//! `ARMBAR_SIM_TEAM=0` to disable reuse (fresh workers per run; results are
//! byte-identical either way).

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::engine::{panic_message, silence_abort_panics, AbortSignal, SimBuilder, SimThread};
use crate::error::SimError;
use crate::stats::RunStats;

/// One published episode: the engine state the workers attach to, the body
/// they run, and how many of them take part.
#[derive(Clone)]
struct Episode {
    shared: Arc<crate::engine::Shared>,
    body: Arc<dyn Fn(&SimThread) + Send + Sync>,
    participants: usize,
}

struct CtrlState {
    /// Bumped once per published episode; workers compare against the last
    /// epoch they served to detect new work.
    epoch: u64,
    job: Option<Episode>,
    shutdown: bool,
}

struct Ctrl {
    mx: Mutex<CtrlState>,
    /// One start condvar per worker, so publishing a P-thread episode on a
    /// larger team wakes exactly P workers instead of all of them.
    start_cv: Vec<Condvar>,
}

/// A pool of simulation workers reused across episodes.
///
/// ```
/// use std::sync::Arc;
/// use armbar_topology::{Platform, Topology};
/// use armbar_simcoh::{Arena, SimBuilder, SimTeam};
///
/// let topo = Arc::new(Topology::preset(Platform::ThunderX2));
/// let mut team = SimTeam::new(2);
/// for episode in 0..3 {
///     let mut arena = Arena::new();
///     let flag = arena.alloc_u32();
///     let stats = team
///         .run(SimBuilder::new(Arc::clone(&topo), 2).seed(episode), move |ctx| {
///             if ctx.tid() == 0 {
///                 ctx.store(flag, 1);
///             } else {
///                 ctx.spin_until(flag, |v| v == 1);
///             }
///         })
///         .unwrap();
///     assert!(stats.max_time_ns() > 0.0);
/// }
/// ```
pub struct SimTeam {
    ctrl: Arc<Ctrl>,
    workers: Vec<JoinHandle<()>>,
    capacity: usize,
}

impl SimTeam {
    /// Spawns a team of `capacity` workers. Episodes of up to `capacity`
    /// threads can run on it; smaller episodes leave the surplus workers
    /// parked.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a team needs at least one worker");
        silence_abort_panics();
        let ctrl = Arc::new(Ctrl {
            mx: Mutex::new(CtrlState { epoch: 0, job: None, shutdown: false }),
            start_cv: (0..capacity).map(|_| Condvar::new()).collect(),
        });
        let workers = (0..capacity)
            .map(|index| {
                let ctrl = Arc::clone(&ctrl);
                std::thread::Builder::new()
                    .name(format!("simcoh-w{index}"))
                    .spawn(move || worker_loop(index, &ctrl))
                    .expect("failed to spawn simulation worker")
            })
            .collect();
        Self { ctrl, workers, capacity }
    }

    /// Number of workers (the largest episode this team can host).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Runs one episode configured by `builder` on this team's workers.
    /// Identical semantics and results to [`SimBuilder::run`], minus the
    /// per-run thread spawn/join.
    ///
    /// # Panics
    /// Panics when the builder asks for more threads than the team has.
    pub fn run(
        &mut self,
        builder: SimBuilder,
        body: impl Fn(&SimThread) + Send + Sync + 'static,
    ) -> Result<RunStats, SimError> {
        self.run_arc(builder, Arc::new(body))
    }

    pub(crate) fn run_arc(
        &mut self,
        builder: SimBuilder,
        body: Arc<dyn Fn(&SimThread) + Send + Sync>,
    ) -> Result<RunStats, SimError> {
        let participants = builder.nthreads;
        assert!(
            participants <= self.capacity,
            "{participants} threads exceed this team's capacity of {}",
            self.capacity
        );
        let shared = Arc::new(builder.into_shared());
        {
            let mut c = self.ctrl.mx.lock();
            c.epoch += 1;
            c.job = Some(Episode { shared: Arc::clone(&shared), body, participants });
        }
        // Notify with the lock released: a woken worker re-acquires the ctrl
        // mutex inside its wait, and piling 64 workers onto a held lock costs
        // an extra context-switch round each. (The epoch was published under
        // the lock, so a worker mid-check cannot miss it.)
        for cv in &self.ctrl.start_cv[..participants] {
            cv.notify_one();
        }
        // `collect` returns only after every participant passed its finish
        // point, so the next episode cannot race this one's workers.
        shared.collect()
    }
}

impl Drop for SimTeam {
    fn drop(&mut self) {
        {
            let mut c = self.ctrl.mx.lock();
            c.shutdown = true;
        }
        for cv in &self.ctrl.start_cv {
            cv.notify_one();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(index: usize, ctrl: &Ctrl) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut c = ctrl.mx.lock();
            loop {
                if c.shutdown {
                    return;
                }
                if c.epoch != seen {
                    seen = c.epoch;
                    let job = c.job.clone().expect("epoch advanced without a job");
                    if index < job.participants {
                        break job;
                    }
                    // Not a participant this episode; fall through to wait.
                    // (No missed work: the driver blocks until an episode
                    // fully finishes before publishing the next, so a
                    // participant is always parked here — or about to
                    // re-check the epoch — when its episode appears.)
                    continue;
                }
                ctrl.start_cv[index].wait(&mut c);
            }
        };
        let ctx = SimThread::new(Arc::clone(&job.shared), index, job.participants);
        let result = catch_unwind(AssertUnwindSafe(|| (job.body)(&ctx)));
        let panic_msg = match result {
            Ok(()) => None,
            // NB: `&*p` reborrows the payload itself; `&p` would unsize the
            // Box and defeat the downcasts.
            Err(p) => {
                if (*p).is::<AbortSignal>() {
                    None // internal tear-down, not a user panic
                } else {
                    Some(panic_message(&*p))
                }
            }
        };
        job.shared.finish_thread(index, panic_msg, ctx.take_deferred());
    }
}

thread_local! {
    /// The calling thread's ambient team, grown on demand. One per host
    /// thread so concurrent sweep-pool workers never contend on a team.
    static AMBIENT_TEAM: RefCell<Option<SimTeam>> = const { RefCell::new(None) };
}

/// `ARMBAR_SIM_TEAM=0` (or `off`) disables ambient worker reuse. Read once:
/// flipping it mid-process would silently mix execution modes.
fn team_reuse_disabled() -> bool {
    static DISABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DISABLED.get_or_init(|| {
        std::env::var("ARMBAR_SIM_TEAM").is_ok_and(|v| v == "0" || v.eq_ignore_ascii_case("off"))
    })
}

/// Entry point for [`SimBuilder::run`]: reuses (or creates) the calling
/// thread's ambient team. The team is taken out of the slot for the duration
/// of the run, so a simulated body that itself launches simulations (from
/// its worker threads) composes safely.
pub(crate) fn run_with_ambient_team(
    builder: SimBuilder,
    body: Arc<dyn Fn(&SimThread) + Send + Sync>,
) -> Result<RunStats, SimError> {
    // Preferred transport: fibers on one OS thread (see `crate::fiber`).
    // `ARMBAR_SIM_FIBERS=0` falls through to the OS-thread teams below;
    // explicit `SimTeam::run` calls always use OS threads.
    if crate::fiber::fibers_enabled() {
        return crate::fiber::run_on_fibers(builder, body);
    }
    if team_reuse_disabled() {
        let mut team = SimTeam::new(builder.nthreads);
        return team.run_arc(builder, body);
    }
    let mut team = AMBIENT_TEAM
        .with(|cell| {
            let mut slot = cell.borrow_mut();
            match slot.take() {
                Some(t) if t.capacity() >= builder.nthreads => Some(t),
                // Absent or too small: drop the old team (if any) and grow.
                _ => None,
            }
        })
        .unwrap_or_else(|| SimTeam::new(builder.nthreads));
    let result = team.run_arc(builder, body);
    AMBIENT_TEAM.with(move |cell| {
        let mut slot = cell.borrow_mut();
        match slot.as_ref() {
            // Keep the larger team if something re-populated the slot.
            Some(existing) if existing.capacity() >= team.capacity() => {}
            _ => *slot = Some(team),
        }
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;
    use crate::error::WaitKind;
    use armbar_topology::{Topology, TopologyBuilder};

    fn topo() -> Arc<Topology> {
        Arc::new(
            TopologyBuilder::new("team8", 8)
                .epsilon_ns(1.0)
                .layer("near", 10.0, 0.5)
                .layer("far", 40.0, 0.5)
                .hierarchy(&[4])
                .coherence(2.0, 3.0, 0.1)
                .build(),
        )
    }

    fn barrier_body(counter: u32, flag: u32, p: u32) -> impl Fn(&SimThread) + Send + Sync {
        move |ctx: &SimThread| {
            let prev = ctx.fetch_add(counter, 1);
            if prev == p - 1 {
                ctx.store(flag, 1);
            } else {
                ctx.spin_until(flag, |v| v == 1);
            }
        }
    }

    #[test]
    fn reused_team_reproduces_identical_stats() {
        let t = topo();
        let mut team = SimTeam::new(4);
        let run = |team: &mut SimTeam| {
            let mut arena = Arena::new();
            let counter = arena.alloc_u32();
            let flag = arena.alloc_padded_u32(64);
            team.run(SimBuilder::new(Arc::clone(&t), 4).seed(7), barrier_body(counter, flag, 4))
                .unwrap()
        };
        let first = run(&mut team);
        let second = run(&mut team);
        assert_eq!(first.max_time_ns(), second.max_time_ns());
        assert_eq!(first.per_thread_time_ns(), second.per_thread_time_ns());
        assert_eq!(first.total_mem_ops(), second.total_mem_ops());
        assert_eq!(
            first.coherence().total().total_mem_ops(),
            second.coherence().total().total_mem_ops()
        );
    }

    #[test]
    fn team_matches_fresh_spawn_results() {
        let t = topo();
        let mut arena = Arena::new();
        let counter = arena.alloc_u32();
        let flag = arena.alloc_padded_u32(64);
        let via_builder =
            SimBuilder::new(Arc::clone(&t), 4).seed(3).run(barrier_body(counter, flag, 4)).unwrap();
        let mut team = SimTeam::new(4);
        let via_team = team
            .run(SimBuilder::new(Arc::clone(&t), 4).seed(3), barrier_body(counter, flag, 4))
            .unwrap();
        assert_eq!(via_builder.max_time_ns(), via_team.max_time_ns());
        assert_eq!(via_builder.per_thread_time_ns(), via_team.per_thread_time_ns());
    }

    #[test]
    fn deadlock_in_one_episode_does_not_poison_the_next() {
        let t = topo();
        let mut team = SimTeam::new(4);
        // Episode 1: everyone spins on a flag nobody writes.
        let mut arena = Arena::new();
        let dead = arena.alloc_u32();
        let err = team
            .run(SimBuilder::new(Arc::clone(&t), 4), move |ctx| {
                ctx.spin_until_ge(dead, 1);
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { waiters } => {
                assert_eq!(waiters.len(), 4);
                assert!(waiters.iter().all(|w| w.kind == WaitKind::Ge(1)));
            }
            other => panic!("expected deadlock, got {other}"),
        }
        // Episode 2 on the same workers must run clean.
        let mut arena = Arena::new();
        let counter = arena.alloc_u32();
        let flag = arena.alloc_padded_u32(64);
        let stats =
            team.run(SimBuilder::new(Arc::clone(&t), 4), barrier_body(counter, flag, 4)).unwrap();
        assert_eq!(stats.ops(crate::stats::OpKind::SpinWakeup), 3);
    }

    #[test]
    fn panic_in_one_episode_does_not_poison_the_next() {
        let t = topo();
        let mut team = SimTeam::new(2);
        let err = team
            .run(SimBuilder::new(Arc::clone(&t), 2), |ctx| {
                if ctx.tid() == 1 {
                    panic!("episode-one failure");
                }
            })
            .unwrap_err();
        assert!(matches!(err, SimError::ThreadPanic { tid: 1, .. }), "{err}");
        let mut arena = Arena::new();
        let flag = arena.alloc_u32();
        let stats = team
            .run(SimBuilder::new(Arc::clone(&t), 2), move |ctx| {
                if ctx.tid() == 0 {
                    ctx.store(flag, 1);
                } else {
                    ctx.spin_until(flag, |v| v == 1);
                }
            })
            .unwrap();
        assert!(stats.max_time_ns() > 0.0);
    }

    #[test]
    fn smaller_episodes_leave_surplus_workers_parked() {
        let t = topo();
        let mut team = SimTeam::new(8);
        for p in [1usize, 3, 8, 2] {
            let mut arena = Arena::new();
            let counter = arena.alloc_u32();
            let flag = arena.alloc_padded_u32(64);
            let stats = team
                .run(SimBuilder::new(Arc::clone(&t), p), barrier_body(counter, flag, p as u32))
                .unwrap();
            assert_eq!(stats.per_thread_time_ns().len(), p);
        }
    }

    #[test]
    #[should_panic(expected = "exceed this team's capacity")]
    fn oversubscribing_a_team_panics() {
        let t = topo();
        let mut team = SimTeam::new(2);
        let _ = team.run(SimBuilder::new(t, 4), |_| {});
    }
}

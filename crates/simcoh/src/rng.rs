//! Tiny deterministic RNG for simulation jitter.
//!
//! A SplitMix64 generator: stateless-simple, high quality for this purpose,
//! and — unlike pulling in a full RNG crate here — guaranteed to produce the
//! same jitter sequence on every platform and toolchain, which keeps the
//! experiment pipelines byte-reproducible.

/// SplitMix64 PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Multiplicative jitter factor uniform in `[1 − amp, 1 + amp]`.
    #[inline]
    pub fn jitter_factor(&mut self, amp: f64) -> f64 {
        if amp == 0.0 {
            return 1.0;
        }
        1.0 + amp * (2.0 * self.next_f64() - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_covers_the_interval() {
        let mut r = SplitMix64::new(7);
        let xs: Vec<f64> = (0..10_000).map(|_| r.next_f64()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
        assert!(xs.iter().any(|&x| x < 0.01));
        assert!(xs.iter().any(|&x| x > 0.99));
    }

    #[test]
    fn jitter_zero_amp_is_identity() {
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            assert_eq!(r.jitter_factor(0.0), 1.0);
        }
    }

    #[test]
    fn jitter_bounded_by_amplitude() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let f = r.jitter_factor(0.25);
            assert!((0.75..=1.25).contains(&f), "factor {f} out of range");
        }
    }
}

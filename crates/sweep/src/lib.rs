//! # armbar-sweep — deterministic parallel sweep engine
//!
//! Every sweep in the workspace (figure regeneration, the chaos matrix,
//! repeated overhead measurements) is a list of *independent* jobs: each
//! simulator run is a pure function of `(topology, seed, program)`, so the
//! only thing serial execution buys is wasted wall time. [`SweepPool`]
//! fans such a list out over a scoped worker pool while keeping every
//! observable output **byte-identical to the serial path**:
//!
//! * results are collected into slots indexed by *submission order*, never
//!   by completion order;
//! * a panicking job does not race its siblings — the first panic in
//!   submission order is the one re-raised, regardless of worker count;
//! * jobs that measure host wall time ([`Job::serial`]) bypass the pool
//!   entirely and run alone on the caller thread after the parallel batch
//!   has drained, so oversubscription can never skew their timings. The
//!   bypass is part of the job's type, not a calling convention.
//!
//! Nesting is safe by construction: a `run` issued from inside a pool
//! worker executes its jobs inline on that worker, so layered sweeps
//! (curve → repetitions) parallelize at the outermost level only instead
//! of multiplying worker counts.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a job interacts with the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobKind {
    /// Pure CPU work (simulator runs): may share the machine with other
    /// jobs.
    Parallel,
    /// Wall-clock-sensitive work (host-backend measurements): must run
    /// alone, on the caller thread, with the pool idle.
    Serial,
}

/// One unit of sweep work producing a `T`.
pub struct Job<'a, T> {
    kind: JobKind,
    run: Box<dyn FnOnce() -> T + Send + 'a>,
}

impl<'a, T: Send> Job<'a, T> {
    /// A job the pool may run concurrently with others — correct for any
    /// deterministic simulation (virtual time cannot observe the host
    /// scheduler).
    pub fn parallel(f: impl FnOnce() -> T + Send + 'a) -> Self {
        Self { kind: JobKind::Parallel, run: Box::new(f) }
    }

    /// A job that measures host wall time and therefore bypasses the
    /// worker pool: it runs on the submitting thread after all parallel
    /// jobs have finished, one at a time.
    pub fn serial(f: impl FnOnce() -> T + Send + 'a) -> Self {
        Self { kind: JobKind::Serial, run: Box::new(f) }
    }
}

thread_local! {
    /// Set while the current thread is a pool worker; makes nested `run`
    /// calls execute inline instead of spawning a second tier of workers.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Requested worker count for ambient pools: 0 = unset (resolve from the
/// environment on first use).
static GLOBAL_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the ambient worker count (the `--jobs` CLI flag). Takes
/// precedence over `ARMBAR_JOBS`; clamped to at least 1.
pub fn set_global_jobs(n: usize) {
    GLOBAL_JOBS.store(n.max(1), Ordering::Relaxed);
}

/// The host's core count, the upper bound and default for worker counts.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1)
}

/// Resolves the ambient worker request: [`set_global_jobs`] wins, then
/// `ARMBAR_JOBS`, then every available core. Malformed `ARMBAR_JOBS`
/// values warn once on stderr and fall back to the default — they are
/// never silently dropped.
fn requested_jobs() -> usize {
    match GLOBAL_JOBS.load(Ordering::Relaxed) {
        0 => match std::env::var_os("ARMBAR_JOBS") {
            // var_os, not var: a non-unicode value must reach the warning
            // below, not vanish into a silent `VarError` fallback.
            Some(raw) => match raw.to_str().and_then(parse_jobs_var) {
                Some(n) => n,
                None => {
                    static WARNED: std::sync::Once = std::sync::Once::new();
                    WARNED.call_once(|| {
                        eprintln!(
                            "armbar: ignoring unparseable ARMBAR_JOBS={raw:?} \
                             (expected a positive integer); using all cores"
                        );
                    });
                    available_parallelism()
                }
            },
            None => available_parallelism(),
        },
        n => n,
    }
}

/// Parses an `ARMBAR_JOBS`-style value: a positive integer, or `None` for
/// anything else (empty, zero, garbage).
fn parse_jobs_var(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// A deterministic scoped worker pool. Cheap to construct: threads are
/// spawned per [`SweepPool::run`] call and joined before it returns, so a
/// pool owns no state beyond its worker count.
#[derive(Debug, Clone)]
pub struct SweepPool {
    workers: usize,
}

impl SweepPool {
    /// A pool with exactly `workers` workers (at least 1). `new(1)` is the
    /// reference serial path: jobs run on the caller thread in submission
    /// order.
    pub fn new(workers: usize) -> Self {
        Self { workers: workers.max(1) }
    }

    /// The process-wide pool: `min(--jobs | ARMBAR_JOBS, available
    /// cores)`, defaulting to all cores.
    pub fn ambient() -> Self {
        Self::new(requested_jobs().min(available_parallelism()))
    }

    /// Worker count this pool runs with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job and returns their results in submission order.
    ///
    /// [`Job::parallel`] jobs are distributed over the workers;
    /// [`Job::serial`] jobs then run one at a time on the calling thread
    /// while the pool is idle. If any job panics, the panic of the
    /// *lowest-indexed* panicking job is re-raised after all jobs have been
    /// attempted — the same panic the serial path would surface first.
    pub fn run<'a, T: Send>(&self, jobs: Vec<Job<'a, T>>) -> Vec<T> {
        let n = jobs.len();
        if self.workers <= 1 || n <= 1 || IN_POOL_WORKER.with(Cell::get) {
            // The serial reference path (also taken for nested runs).
            return collect(jobs.into_iter().map(|j| catch_unwind_job(j.run)));
        }

        let mut slots: Vec<Mutex<Option<std::thread::Result<T>>>> = Vec::with_capacity(n);
        slots.resize_with(n, || Mutex::new(None));
        let mut parallel = VecDeque::new();
        let mut serial = Vec::new();
        for (i, job) in jobs.into_iter().enumerate() {
            match job.kind {
                JobKind::Parallel => parallel.push_back((i, job.run)),
                JobKind::Serial => serial.push((i, job.run)),
            }
        }

        let queue = Mutex::new(parallel);
        let spawn_count = self.workers.min(queue.lock().unwrap().len());
        if spawn_count > 0 {
            std::thread::scope(|s| {
                for _ in 0..spawn_count {
                    s.spawn(|| {
                        IN_POOL_WORKER.with(|f| f.set(true));
                        loop {
                            // Pop under the lock, run outside it.
                            let Some((i, f)) = queue.lock().unwrap().pop_front() else {
                                break;
                            };
                            *slots[i].lock().unwrap() = Some(catch_unwind_job(f));
                        }
                    });
                }
            });
        }

        // Host-measurement jobs: caller thread, pool drained, no overlap.
        for (i, f) in serial {
            *slots[i].lock().unwrap() = Some(catch_unwind_job(f));
        }

        collect(slots.into_iter().map(|m| m.into_inner().unwrap().expect("job slot unfilled")))
    }
}

fn catch_unwind_job<T>(f: Box<dyn FnOnce() -> T + Send + '_>) -> std::thread::Result<T> {
    catch_unwind(AssertUnwindSafe(f))
}

/// Unwraps job results in submission order, re-raising the first panic.
fn collect<T>(results: impl IntoIterator<Item = std::thread::Result<T>>) -> Vec<T> {
    let mut out = Vec::new();
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize};

    fn squares(pool: &SweepPool, n: usize) -> Vec<usize> {
        pool.run((0..n).map(|i| Job::parallel(move || i * i)).collect())
    }

    #[test]
    fn results_arrive_in_submission_order() {
        let expected: Vec<usize> = (0..64).map(|i| i * i).collect();
        for workers in [1, 2, 4, 16] {
            assert_eq!(squares(&SweepPool::new(workers), 64), expected, "workers={workers}");
        }
    }

    #[test]
    fn serial_jobs_never_overlap_parallel_ones() {
        // While a serial job runs, no parallel job may be in flight.
        let in_flight = AtomicUsize::new(0);
        let jobs: Vec<Job<'_, bool>> = (0..32)
            .map(|i| {
                let in_flight = &in_flight;
                if i % 4 == 0 {
                    Job::serial(move || in_flight.load(Ordering::SeqCst) == 0)
                } else {
                    Job::parallel(move || {
                        in_flight.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        true
                    })
                }
            })
            .collect();
        let results = SweepPool::new(8).run(jobs);
        assert_eq!(results.len(), 32);
        assert!(results.iter().all(|&alone| alone), "a serial job saw parallel work in flight");
    }

    #[test]
    fn nested_runs_execute_inline() {
        // A job that runs a sub-sweep must not deadlock or over-spawn; the
        // inner run happens inline on the worker.
        let pool = SweepPool::new(4);
        let outer = pool.run(
            (0..4)
                .map(|i| {
                    Job::parallel(move || {
                        let inner = SweepPool::new(4)
                            .run((0..4).map(|j| Job::parallel(move || i * 10 + j)).collect());
                        inner.iter().sum::<usize>()
                    })
                })
                .collect(),
        );
        assert_eq!(outer, vec![6, 46, 86, 126]);
    }

    #[test]
    fn first_panic_in_submission_order_wins() {
        for workers in [1, 4] {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                SweepPool::new(workers).run(vec![
                    Job::parallel(|| 1),
                    Job::parallel(|| panic!("first failure")),
                    Job::parallel(|| -> i32 { panic!("second failure") }),
                ]);
            }))
            .expect_err("must propagate the panic");
            let msg = caught.downcast_ref::<&str>().copied().unwrap_or_default();
            assert_eq!(msg, "first failure", "workers={workers}");
        }
    }

    #[test]
    fn later_jobs_still_run_after_a_panic() {
        // The pool attempts every job before re-raising, so sibling work
        // is never silently skipped (matters for serial host cells).
        let ran = AtomicBool::new(false);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            SweepPool::new(2).run(vec![
                Job::parallel(|| panic!("boom")),
                Job::serial(|| ran.store(true, Ordering::SeqCst)),
            ]);
        }));
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn worker_count_is_clamped_to_at_least_one() {
        assert_eq!(SweepPool::new(0).workers(), 1);
        assert!(SweepPool::ambient().workers() >= 1);
    }

    #[test]
    fn jobs_var_parsing_accepts_positive_integers_only() {
        assert_eq!(parse_jobs_var("8"), Some(8));
        assert_eq!(parse_jobs_var(" 2 "), Some(2));
        assert_eq!(parse_jobs_var("0"), None);
        assert_eq!(parse_jobs_var("-3"), None);
        assert_eq!(parse_jobs_var("many"), None);
        assert_eq!(parse_jobs_var(""), None);
    }

    #[test]
    fn jobs_var_non_unicode_values_hit_the_malformed_path() {
        // `requested_jobs` reads with `var_os` precisely so a non-unicode
        // value takes the warn-and-default branch (`to_str()` -> None)
        // rather than disappearing into a `VarError::NotUnicode` fallback.
        #[cfg(unix)]
        {
            use std::os::unix::ffi::OsStrExt as _;
            let raw = std::ffi::OsStr::from_bytes(&[0x38, 0xFF, 0xFE]); // "8" + invalid UTF-8
            assert_eq!(raw.to_str().and_then(parse_jobs_var), None);
        }
        assert_eq!(std::ffi::OsStr::new("8").to_str().and_then(parse_jobs_var), Some(8));
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u8> = SweepPool::new(4).run(Vec::new());
        assert!(out.is_empty());
    }
}

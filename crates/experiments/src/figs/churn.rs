//! Churn overhead: phaser episode cost vs. membership churn rate.
//!
//! The paper's barriers assume a fixed team; the workspace's phasers relax
//! that (ROADMAP item 2). This experiment prices the relaxation: both
//! phasers run `episodes` epochs while one slot *flaps* — an orderly
//! `deregister`, one epoch out, then `request_join`/`await_join` back in —
//! on a fixed schedule, and the table reports simulated ns/episode against
//! the churn rate (flap leave-events per 100 epochs). Rate 0 is the
//! steady-state baseline, so the rightmost column is the direct answer to
//! "what does dynamic membership cost when it is actually exercised?".
//!
//! Rejoin liveness uses the same shepherd idiom as the chaos harness: the
//! shepherd slot holds its arrival for the gate epoch (two after the
//! leave) on a handshake word the churner stores after requesting the
//! rejoin, so a boundary is guaranteed to scan the request — without it, a
//! request landing after the team's final boundary would never be acked.

use std::sync::Arc;

use armbar_core::prelude::*;
use armbar_simcoh::{Addr, Arena, SimBuilder};
use armbar_sweep::{Job, SweepPool};
use armbar_topology::{Platform, Topology};

use crate::report::{us, Report};
use crate::runner::{topo, Scale};

/// Churn rates swept: flap leave-events per 100 epochs. 0 = steady team.
const RATES: [u32; 4] = [0, 5, 10, 20];

/// (platform, threads) points: the paper's 64-core machine plus the
/// kilocore projection's 256-core MemPool for the largest team.
const POINTS: [(Platform, usize); 3] =
    [(Platform::Kunpeng920, 16), (Platform::Kunpeng920, 64), (Platform::MemPool256, 256)];

/// Per-episode compute between arrivals, matching the standard overhead
/// measurement (`OverheadConfig::delay_ns`).
const WORK_NS: f64 = 100.0;

/// Runs the churn sweep: one report, every (phaser, P, rate) cell.
pub fn run(scale: &Scale) -> Vec<Report> {
    let pool = SweepPool::ambient();
    let mut r = Report::new(
        "Churn — phaser overhead vs. membership churn rate (us/episode)",
        &["algorithm", "platform", "threads", "churn %/100 epochs", "overhead (us)"],
    );
    let cells: Vec<(AlgorithmId, Platform, usize, u32)> = AlgorithmId::PHASERS
        .iter()
        .flat_map(|&id| {
            POINTS.iter().flat_map(move |&(pf, p)| RATES.iter().map(move |&rate| (id, pf, p, rate)))
        })
        .collect();
    let jobs = cells
        .iter()
        .map(|&(id, pf, p, rate)| Job::parallel(move || churn_overhead_ns(pf, p, id, rate, scale)))
        .collect();
    for (&(id, pf, p, rate), ns) in cells.iter().zip(pool.run(jobs)) {
        r.row(vec![
            id.label().to_string(),
            topo(pf).name().to_string(),
            p.to_string(),
            rate.to_string(),
            us(ns),
        ]);
    }
    r.note("one slot flaps (orderly leave, one epoch out, rejoin) every 100/rate epochs;");
    r.note("boundary commits pay the membership scan, so churn prices the reform path.");
    vec![r]
}

/// Mean simulated ns/episode of `algorithm` at `p` threads under `rate`
/// flap leave-events per 100 epochs, over `scale.reps` seeded runs.
fn churn_overhead_ns(
    platform: Platform,
    p: usize,
    algorithm: AlgorithmId,
    rate: u32,
    scale: &Scale,
) -> f64 {
    let t = topo(platform);
    let episodes = scale.episodes;
    let period = 100u32.checked_div(rate);
    let mut total = 0.0;
    for rep in 0..scale.reps {
        total += churn_run_ns(&t, p, algorithm, period, episodes, scale.cfg(rep).seed);
    }
    total / scale.reps as f64 / episodes as f64
}

/// One seeded churn run; returns the total simulated time. Public so the
/// churn bench (`bench_churn`) can time the identical workload wall-clock.
pub fn churn_run_ns(
    t: &Arc<Topology>,
    p: usize,
    algorithm: AlgorithmId,
    period: Option<u32>,
    episodes: u32,
    seed: u64,
) -> f64 {
    let mut arena = Arena::new();
    let phaser: Arc<dyn Phaser> = match algorithm {
        AlgorithmId::PhaserCentral => Arc::new(CentralPhaser::full(&mut arena, p, t)),
        AlgorithmId::PhaserTree => Arc::new(TreePhaser::full(&mut arena, p, t)),
        other => panic!("churn experiment needs a phaser, got {other}"),
    };
    let aux = arena.alloc_padded_u32(t.cacheline_bytes());
    let stats = SimBuilder::new(Arc::clone(t), p)
        .seed(seed)
        .run(move |sim| churn_worker(&*phaser, sim, aux, p, episodes, period))
        .unwrap_or_else(|e| panic!("{algorithm} churn run at p={p}: {e}"));
    stats.max_time_ns()
}

/// One thread of the churn workload. The last slot is the churner, slot 0
/// the shepherd; everyone else arrives every epoch. Both the churner and
/// the shepherd derive flap `cycle` boundaries from the same schedule, so
/// their handshakes pair up without shared bookkeeping.
fn churn_worker(
    phaser: &dyn Phaser,
    ctx: &dyn MemCtx,
    aux: Addr,
    p: usize,
    episodes: u32,
    period: Option<u32>,
) {
    let tid = ctx.tid();
    let churner = p - 1;
    let mut cycle: u32 = 0;
    let mut next: u32 = 1;
    while next <= episodes {
        // A flap cycle needs the leave epoch plus two more boundaries
        // (ack gate, first rejoined arrival) to fit inside the run.
        let flap =
            period.map(|per| (cycle + 1).saturating_mul(per)).filter(|leave| leave + 3 <= episodes);
        if tid == churner && flap == Some(next) {
            let final_epoch = phaser.deregister(ctx).expect("orderly leave cannot fail");
            phaser.wait_epoch(ctx, final_epoch);
            let token = phaser.request_join(ctx);
            ctx.store(aux, cycle + 1);
            next = phaser.await_join(ctx, token);
            cycle += 1;
            continue;
        }
        if tid == 0 {
            if let Some(leave) = flap {
                // Shepherd: hold the gate epoch's arrival until the
                // churner's rejoin request is visible.
                if next == leave + 2 {
                    ctx.spin_until_ge(aux, cycle + 1);
                    cycle += 1;
                }
            }
        }
        ctx.compute_ns(WORK_NS);
        phaser.arrive(ctx).expect("steady member cannot be evicted");
        phaser.wait_epoch(ctx, next);
        next += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Enough episodes for a 20%-rate flap (period 5) to fit twice.
    fn tiny() -> Scale {
        Scale { reps: 1, episodes: 12, sweep: vec![] }
    }

    #[test]
    fn churn_grid_covers_phasers_rates_and_scales() {
        let reports = run(&tiny());
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.rows.len(), 2 * POINTS.len() * RATES.len());
        assert!(r.rows.iter().all(|row| row[4].parse::<f64>().unwrap() > 0.0));
    }

    #[test]
    fn churn_costs_more_than_steady_state() {
        // Flap cycles hold a shepherd gate and re-commit membership; they
        // cannot be free. One cycle's cost is within single-schedule
        // noise of the out-epoch's savings (one member fewer arrives), so
        // measure across enough epochs for several cycles — at period 5
        // over 24 epochs (4 flaps) the structural overhead dominates on
        // every seed.
        let t = topo(Platform::Kunpeng920);
        let steady = churn_run_ns(&t, 16, AlgorithmId::PhaserCentral, None, 24, 0x5EED);
        let churned = churn_run_ns(&t, 16, AlgorithmId::PhaserCentral, Some(5), 24, 0x5EED);
        assert!(churned > steady, "churned {churned} vs steady {steady}");
    }

    #[test]
    fn churn_runs_are_seed_deterministic() {
        let t = topo(Platform::Kunpeng920);
        let a = churn_run_ns(&t, 16, AlgorithmId::PhaserTree, Some(10), 12, 0x7);
        let b = churn_run_ns(&t, 16, AlgorithmId::PhaserTree, Some(10), 12, 0x7);
        assert_eq!(a, b);
    }
}

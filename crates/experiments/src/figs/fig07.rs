//! Figure 7: overhead comparison of the seven barrier algorithms on the
//! three ARMv8 platforms, versus thread count.
//!
//! Panel (a) isolates SENSE (an order of magnitude above the rest); panels
//! (b)–(d) compare DIS/CMB/MCS/TOUR/STOUR/DTOUR per platform. Expected
//! shapes (Section IV-B): SENSE grows ~linearly and dominates everything;
//! MCS loses to CMB past ~8 threads and is clearly worse than TOUR on
//! Kunpeng 920; DIS scales poorly once threads exceed the cluster size;
//! the tournament family performs best, with DTOUR strongest on ThunderX2.

use armbar_core::prelude::*;
use armbar_topology::Platform;

use crate::report::{us, Report};
use crate::runner::{algo_curve, topo, Scale};

/// Runs Figure 7: one report for SENSE across platforms (panel a) and one
/// per platform for the remaining six algorithms (panels b–d).
pub fn run(scale: &Scale) -> Vec<Report> {
    let mut out = Vec::new();

    let mut a = Report::new(
        "Figure 7(a) — SENSE overhead vs threads (us)",
        &["threads", "Phytium 2000+", "ThunderX2", "Kunpeng920"],
    );
    let sense: Vec<Vec<(usize, f64)>> =
        Platform::ARM.iter().map(|&pf| algo_curve(&topo(pf), AlgorithmId::Sense, scale)).collect();
    for (i, &(p, phytium_ns)) in sense[0].iter().enumerate() {
        a.row(vec![p.to_string(), us(phytium_ns), us(sense[1][i].1), us(sense[2][i].1)]);
    }
    a.note("paper: grows linearly with threads; worst on ThunderX2; separated from");
    a.note("the other algorithms because it is several times more expensive.");
    out.push(a);

    const OTHERS: [AlgorithmId; 6] = [
        AlgorithmId::Dissemination,
        AlgorithmId::Combining,
        AlgorithmId::Mcs,
        AlgorithmId::Tournament,
        AlgorithmId::Stour,
        AlgorithmId::Dtour,
    ];
    for (panel, platform) in ["b", "c", "d"].into_iter().zip(Platform::ARM) {
        let t = topo(platform);
        let mut r = Report::new(
            format!("Figure 7({panel}) — algorithms on {} (us)", t.name()),
            &["threads", "DIS", "CMB", "MCS", "TOUR", "STOUR", "DTOUR"],
        );
        let curves: Vec<Vec<(usize, f64)>> =
            OTHERS.iter().map(|&id| algo_curve(&t, id, scale)).collect();
        for i in 0..curves[0].len() {
            let mut row = vec![curves[0][i].0.to_string()];
            row.extend(curves.iter().map(|c| us(c[i].1)));
            r.row(row);
        }
        r.note("paper: MCS overtakes CMB beyond ~8 threads; tournament family best;");
        r.note("DIS scales poorly once threads exceed the cluster size N_c.");
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::algo_overhead_ns;

    #[test]
    fn sense_dominates_every_other_algorithm_at_64() {
        let scale = Scale::quick();
        for platform in Platform::ARM {
            let t = topo(platform);
            let sense = algo_overhead_ns(&t, 64, AlgorithmId::Sense, &scale);
            for id in [AlgorithmId::Dissemination, AlgorithmId::Mcs, AlgorithmId::Stour] {
                let v = algo_overhead_ns(&t, 64, id, &scale);
                assert!(sense > 3.0 * v, "{platform:?}: SENSE {sense} vs {id} {v}");
            }
        }
    }

    #[test]
    fn mcs_beats_cmb_small_but_loses_large() {
        let scale = Scale::quick();
        let t = topo(Platform::Kunpeng920);
        let mcs64 = algo_overhead_ns(&t, 64, AlgorithmId::Mcs, &scale);
        let cmb64 = algo_overhead_ns(&t, 64, AlgorithmId::Combining, &scale);
        assert!(mcs64 > cmb64, "at 64 threads MCS ({mcs64}) must exceed CMB ({cmb64})");
        let mcs4 = algo_overhead_ns(&t, 4, AlgorithmId::Mcs, &scale);
        let cmb4 = algo_overhead_ns(&t, 4, AlgorithmId::Combining, &scale);
        assert!(mcs4 <= cmb4 * 1.2, "at 4 threads MCS ({mcs4}) should not trail CMB ({cmb4})");
    }

    #[test]
    fn mcs_clearly_worse_than_tour_on_kunpeng() {
        let scale = Scale::quick();
        let t = topo(Platform::Kunpeng920);
        let mcs = algo_overhead_ns(&t, 64, AlgorithmId::Mcs, &scale);
        let tour = algo_overhead_ns(&t, 64, AlgorithmId::Tournament, &scale);
        assert!(mcs > 1.25 * tour, "MCS {mcs} vs TOUR {tour}");
    }

    #[test]
    fn reports_have_expected_shape() {
        let reports = run(&Scale::quick());
        assert_eq!(reports.len(), 4);
        assert!(reports[0].title.contains("SENSE"));
        for r in &reports[1..] {
            assert_eq!(r.columns.len(), 7);
        }
    }
}

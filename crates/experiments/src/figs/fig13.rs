//! Figure 13: overhead of the (padded) static f-way tournament with
//! different fan-ins at 64 threads.
//!
//! The paper sweeps the fan-in and finds the minimum at `f = 4` on all
//! three platforms — the empirical confirmation of the Eq. 1/2 model,
//! which brackets the continuous optimum in `[e, 3.59]` and prefers the
//! power of two for cluster alignment.

use armbar_core::prelude::*;
use armbar_model::optimal_fanin_int;
use armbar_topology::Platform;

use crate::report::{us, Report};
use crate::runner::{fway_overhead_ns, topo, Scale};

/// Thread count of the figure.
const P: usize = 64;
/// Fan-ins swept (power-of-two ladder up to the machine width).
pub const FANINS: [usize; 6] = [2, 4, 8, 16, 32, 64];

/// Runs the Figure 13 fan-in sweep.
pub fn run(scale: &Scale) -> Vec<Report> {
    let mut r = Report::new(
        format!("Figure 13 — static f-way tournament by fan-in at {P} threads (us)"),
        &["fan-in", "Phytium 2000+", "ThunderX2", "Kunpeng920"],
    );
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for platform in Platform::ARM {
        let t = topo(platform);
        curves.push(
            FANINS
                .iter()
                .map(|&f| {
                    fway_overhead_ns(
                        &t,
                        P,
                        FwayConfig {
                            fanin: Fanin::Fixed(f),
                            padded_flags: true,
                            ..FwayConfig::stour()
                        },
                        scale,
                    )
                })
                .collect(),
        );
    }
    for (i, &f) in FANINS.iter().enumerate() {
        r.row(vec![f.to_string(), us(curves[0][i]), us(curves[1][i]), us(curves[2][i])]);
    }
    for platform in Platform::ARM {
        let t = topo(platform);
        r.note(format!(
            "Eq. 1 model for {}: optimal integer fan-in = {}",
            t.name(),
            optimal_fanin_int(&t, P)
        ));
    }
    r.note("paper: the sweep's minimum sits at fan-in 4 on all three platforms.");
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_is_at_fanin_4_on_every_platform() {
        let r = &run(&Scale::quick())[0];
        for col in 1..=3 {
            let vals: Vec<f64> = r.rows.iter().map(|row| row[col].parse().unwrap()).collect();
            let min_idx = vals.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
            assert_eq!(
                FANINS[min_idx], 4,
                "platform column {col}: minimum at fan-in {} ({vals:?})",
                FANINS[min_idx]
            );
        }
    }

    #[test]
    fn model_agrees_with_sweep() {
        for platform in Platform::ARM {
            let t = topo(platform);
            assert_eq!(optimal_fanin_int(&t, P), 4);
        }
    }
}
